#include "query/query_engine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/percentile.h"
#include "telemetry/metric_store.h"

namespace headroom::query {
namespace {

using telemetry::MetricKind;
using telemetry::MetricStore;
using telemetry::SeriesKey;
using telemetry::SimTime;

const SeriesKey kCpu{0, 0, SeriesKey::kPoolScope,
                     MetricKind::kCpuPercentTotal};

/// Deterministic pseudo-random value stream for test data.
double noise(std::uint64_t& state) {
  state = state * 6364136223846793005ull + 1442695040888963407ull;
  return static_cast<double>(state >> 40) / 1e4;
}

TEST(QueryEngine, RejectsNullStore) {
  EXPECT_THROW(QueryEngine(nullptr), std::invalid_argument);
}

TEST(QueryEngine, EmptyStoreAndEmptyRange) {
  MetricStore store;
  const QueryEngine engine(&store);
  QueryResult r = engine.run({kCpu, 0, 86400, 0, Aggregation::kMean});
  EXPECT_TRUE(r.points.empty());
  EXPECT_EQ(r.tier, SourceTier::kNone);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.scanned, 0u);

  store.record(kCpu, 0, 1.0);
  r = engine.run({kCpu, 120, 120, 0, Aggregation::kMean});  // to <= from
  EXPECT_TRUE(r.points.empty());
  EXPECT_EQ(r.tier, SourceTier::kNone);
}

TEST(QueryEngine, RawNativeResolutionIsBitIdenticalToSeries) {
  MetricStore store;
  std::uint64_t state = 7;
  for (SimTime t = 0; t < 86400; t += 120) store.record(kCpu, t, noise(state));

  const QueryEngine engine(&store);
  ASSERT_TRUE(engine.raw_covers(0, 86400));
  const QueryResult r = engine.run({kCpu, 3600, 7200, 0, Aggregation::kMean});
  EXPECT_EQ(r.tier, SourceTier::kRaw);
  EXPECT_TRUE(r.exact);
  ASSERT_EQ(r.points.size(), 30u);
  EXPECT_EQ(r.scanned, 30u);

  const telemetry::SeriesView direct = engine.raw_window(kCpu, 3600, 7200);
  ASSERT_EQ(direct.size(), r.points.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(r.points[i].start, direct.time_at(i));
    // Bit-identical, not just close: the golden-pinned paths rely on it.
    EXPECT_EQ(r.points[i].value, direct.value_at(i));
  }
}

TEST(QueryEngine, RawResolutionGridReduces) {
  MetricStore store;
  for (SimTime t = 0; t < 3600; t += 120) {
    store.record(kCpu, t, static_cast<double>(t / 120));  // 0,1,...,29
  }
  const QueryEngine engine(&store);

  const QueryResult mean = engine.run({kCpu, 0, 3600, 600, Aggregation::kMean});
  ASSERT_EQ(mean.points.size(), 6u);  // five 120 s samples per 600 s point
  EXPECT_EQ(mean.points[0].start, 0);
  EXPECT_EQ(mean.points[1].start, 600);
  EXPECT_DOUBLE_EQ(mean.points[0].value, 2.0);  // mean of 0..4
  EXPECT_DOUBLE_EQ(mean.points[5].value, 27.0);  // mean of 25..29

  const QueryResult sum = engine.run({kCpu, 0, 3600, 600, Aggregation::kSum});
  EXPECT_DOUBLE_EQ(sum.points[0].value, 10.0);
  const QueryResult cnt = engine.run({kCpu, 0, 3600, 600, Aggregation::kCount});
  EXPECT_DOUBLE_EQ(cnt.points[0].value, 5.0);
  const QueryResult mn = engine.run({kCpu, 0, 3600, 600, Aggregation::kMin});
  EXPECT_DOUBLE_EQ(mn.points[3].value, 15.0);
  const QueryResult mx = engine.run({kCpu, 0, 3600, 600, Aggregation::kMax});
  EXPECT_DOUBLE_EQ(mx.points[3].value, 19.0);

  // Grid is absolute (floor(t / res) * res), not from-relative: an offset
  // request lands on the same grid starts.
  const QueryResult off = engine.run({kCpu, 60, 1300, 600, Aggregation::kMean});
  ASSERT_EQ(off.points.size(), 3u);
  EXPECT_EQ(off.points[0].start, 0);
  EXPECT_EQ(off.points[1].start, 600);
  EXPECT_EQ(off.points[2].start, 1200);
}

TEST(QueryEngine, RawP95IsExactPercentile) {
  MetricStore store;
  std::vector<double> values;
  std::uint64_t state = 99;
  for (SimTime t = 0; t < 3600; t += 120) {
    const double v = noise(state);
    store.record(kCpu, t, v);
    values.push_back(v);
  }
  const QueryEngine engine(&store);
  const QueryResult r = engine.run({kCpu, 0, 3600, 3600, Aggregation::kP95});
  ASSERT_EQ(r.points.size(), 1u);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.points[0].value, stats::percentile(values, 95.0));
}

/// Fixture with a tiered store: three days at 120 s cadence, raw retention
/// two hours, window buckets promoted to the day tier after one day.
class TieredQueryTest : public ::testing::Test {
 protected:
  TieredQueryTest() {
    MetricStore::TieringPolicy policy;
    policy.window_bucket_seconds = 3600;
    policy.day_bucket_seconds = 86400;
    policy.window_tier_retention = 86400;
    store_.set_tiering(policy);
    store_.set_retention(7200);
    std::uint64_t state = 12345;
    for (SimTime t = 0; t < kHorizon; t += 120) {
      const double v = 30.0 + noise(state);
      store_.record(kCpu, t, v);
      values_.push_back(v);
    }
  }

  /// Exact mean of the recorded values with window start in [from, to).
  [[nodiscard]] double exact_mean(SimTime from, SimTime to) const {
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < values_.size(); ++i) {
      const SimTime t = static_cast<SimTime>(i) * 120;
      if (t >= from && t < to) {
        sum += values_[i];
        ++n;
      }
    }
    return n == 0 ? 0.0 : sum / static_cast<double>(n);
  }

  static constexpr SimTime kHorizon = 3 * 86400;
  MetricStore store_;
  std::vector<double> values_;
};

TEST_F(TieredQueryTest, EvictedRangeRoutesToTiers) {
  const QueryEngine engine(&store_);
  ASSERT_GT(store_.evicted_before(), 86400);
  ASSERT_FALSE(engine.raw_covers(0, 7200));

  // Fully inside the promoted day tier: one point per day bucket, exact
  // moments, far fewer sources scanned than raw samples covered.
  const QueryResult day = engine.run({kCpu, 0, 86400, 0, Aggregation::kMean});
  EXPECT_EQ(day.tier, SourceTier::kDayDigest);
  EXPECT_TRUE(day.exact);
  ASSERT_EQ(day.points.size(), 1u);
  EXPECT_EQ(day.points[0].start, 0);
  // Promotion merges per-window digest sums hierarchically, so the mean can
  // differ from a flat sequential scan by rounding only.
  EXPECT_NEAR(day.points[0].value, exact_mean(0, 86400), 1e-6);
  EXPECT_EQ(day.scanned, 1u);

  // An evicted-but-not-promoted stretch routes to the window tier.
  const SimTime wfrom = 2 * 86400;
  const SimTime wto = wfrom + 4 * 3600;
  ASSERT_LE(wto, store_.evicted_before());
  const QueryResult win =
      engine.run({kCpu, wfrom, wto, 0, Aggregation::kMean});
  EXPECT_EQ(win.tier, SourceTier::kWindowDigest);
  ASSERT_EQ(win.points.size(), 4u);
  for (const QueryPoint& p : win.points) {
    EXPECT_DOUBLE_EQ(p.value, exact_mean(p.start, p.start + 3600));
  }
}

TEST_F(TieredQueryTest, StraddlingQueryStitchesTiersAndRaw) {
  const QueryEngine engine(&store_);
  const SimTime cutoff = store_.evicted_before();

  // Whole-history query at day resolution: day tier + window tier + raw.
  const QueryResult all =
      engine.run({kCpu, 0, kHorizon, 86400, Aggregation::kMean});
  EXPECT_EQ(all.tier, SourceTier::kMixed);
  EXPECT_TRUE(all.exact);
  ASSERT_EQ(all.points.size(), 3u);
  for (const QueryPoint& p : all.points) {
    // The eviction boundary falls inside the last day: its point merges
    // digest moments with raw samples; moments stay exact (up to summation
    // order) across the stitch.
    EXPECT_NEAR(p.value, exact_mean(p.start, p.start + 86400), 1e-6);
  }
  // Count aggregation conserves samples across the stitch.
  const QueryResult cnt =
      engine.run({kCpu, 0, kHorizon, 86400, Aggregation::kCount});
  double total = 0.0;
  for (const QueryPoint& p : cnt.points) total += p.value;
  EXPECT_EQ(static_cast<std::size_t>(total), values_.size());

  // Native resolution across the boundary: tier buckets then raw samples,
  // time-ordered with no duplicate starts.
  const QueryResult native = engine.run(
      {kCpu, cutoff - 3600, cutoff + 3600, 0, Aggregation::kMean});
  EXPECT_EQ(native.tier, SourceTier::kMixed);
  for (std::size_t i = 1; i < native.points.size(); ++i) {
    EXPECT_LT(native.points[i - 1].start, native.points[i].start);
  }
}

TEST_F(TieredQueryTest, DigestP95MarksResultApproximateWithinBound) {
  const QueryEngine engine(&store_);
  const QueryResult r = engine.run({kCpu, 0, 86400, 0, Aggregation::kP95});
  ASSERT_EQ(r.points.size(), 1u);
  EXPECT_FALSE(r.exact);
  std::vector<double> day(values_.begin(), values_.begin() + 86400 / 120);
  const double exact = stats::percentile(day, 95.0);
  EXPECT_NEAR(r.points[0].value, exact, exact * 0.03);

  // Raw-only p95 through the same engine stays exact.
  const QueryResult raw = engine.run(
      {kCpu, store_.evicted_before(), kHorizon, kHorizon, Aggregation::kP95});
  EXPECT_TRUE(raw.exact);
}

TEST_F(TieredQueryTest, EmptyTiersForUnknownKeyYieldNone) {
  const QueryEngine engine(&store_);
  const SeriesKey other{5, 5, SeriesKey::kPoolScope,
                        MetricKind::kErrorsPerSecond};
  const QueryResult r = engine.run({other, 0, kHorizon, 0, Aggregation::kMean});
  EXPECT_TRUE(r.points.empty());
  EXPECT_EQ(r.tier, SourceTier::kNone);
  EXPECT_EQ(r.scanned, 0u);
  EXPECT_FALSE(engine.window_value(other, 0).has_value());
}

TEST_F(TieredQueryTest, WindowValueRoutesPerCoverage) {
  const QueryEngine engine(&store_);
  const SimTime cutoff = store_.evicted_before();

  // Raw-covered window: the sample itself.
  const SimTime raw_t = cutoff + ((cutoff % 120) == 0 ? 0 : 120 - cutoff % 120);
  const auto raw = engine.window_value(kCpu, raw_t);
  ASSERT_TRUE(raw.has_value());
  EXPECT_EQ(*raw, values_[static_cast<std::size_t>(raw_t / 120)]);

  // Evicted window: the containing window-tier bucket's mean.
  const SimTime tier_t = cutoff - 3600;
  const auto tiered = engine.window_value(kCpu, tier_t);
  ASSERT_TRUE(tiered.has_value());
  const SimTime bucket = tier_t / 3600 * 3600;
  EXPECT_DOUBLE_EQ(*tiered, exact_mean(bucket, bucket + 3600));

  // Promoted window: the day bucket's mean.
  const auto day = engine.window_value(kCpu, 3600);
  ASSERT_TRUE(day.has_value());
  EXPECT_NEAR(*day, exact_mean(0, 86400), 1e-6);
}

TEST_F(TieredQueryTest, TierQueriesScanFewerSourcesThanRaw) {
  const QueryEngine engine(&store_);
  const QueryResult day = engine.run({kCpu, 0, 86400, 0, Aggregation::kMean});
  const std::size_t raw_equivalent = 86400 / 120;
  EXPECT_LT(day.scanned, raw_equivalent / 100);
}

}  // namespace
}  // namespace headroom::query
