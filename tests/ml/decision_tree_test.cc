#include "ml/decision_tree.h"

#include <gtest/gtest.h>

#include <random>
#include <stdexcept>
#include <vector>

namespace headroom::ml {
namespace {

using Labels = std::vector<std::uint8_t>;

Dataset one_dimensional(const std::vector<double>& xs) {
  Dataset d({"x"});
  for (double x : xs) d.add_row({x});
  return d;
}

TEST(DecisionTree, UntrainedPredictThrows) {
  DecisionTree tree;
  EXPECT_FALSE(tree.trained());
  const std::vector<double> features = {1.0};
  EXPECT_THROW((void)tree.predict(features), std::logic_error);
}

TEST(DecisionTree, EmptyDataThrows) {
  DecisionTree tree;
  Dataset d({"x"});
  EXPECT_THROW(tree.fit(d, Labels{}), std::invalid_argument);
}

TEST(DecisionTree, LabelMismatchThrows) {
  DecisionTree tree;
  const Dataset d = one_dimensional({1.0, 2.0});
  const Labels labels = {1};
  EXPECT_THROW(tree.fit(d, labels), std::invalid_argument);
}

TEST(DecisionTree, LearnsSingleThreshold) {
  const Dataset d = one_dimensional({1.0, 2.0, 3.0, 10.0, 11.0, 12.0});
  const Labels labels = {0, 0, 0, 1, 1, 1};
  DecisionTree tree;
  tree.fit(d, labels);
  EXPECT_EQ(tree.split_count(), 1u);
  const std::vector<double> low = {2.5};
  const std::vector<double> high = {10.5};
  EXPECT_FALSE(tree.predict(low));
  EXPECT_TRUE(tree.predict(high));
  EXPECT_DOUBLE_EQ(tree.predict_proba(low), 0.0);
  EXPECT_DOUBLE_EQ(tree.predict_proba(high), 1.0);
}

TEST(DecisionTree, PureDataNeedsNoSplit) {
  const Dataset d = one_dimensional({1.0, 2.0, 3.0});
  const Labels labels = {1, 1, 1};
  DecisionTree tree;
  tree.fit(d, labels);
  EXPECT_EQ(tree.split_count(), 0u);
  const std::vector<double> any = {99.0};
  EXPECT_TRUE(tree.predict(any));
}

TEST(DecisionTree, MinLeafSizePreventsSplit) {
  const Dataset d = one_dimensional({1.0, 2.0, 10.0, 11.0});
  const Labels labels = {0, 0, 1, 1};
  DecisionTreeOptions opt;
  opt.min_leaf_size = 3;  // a split would make leaves of 2 < 3
  DecisionTree tree;
  tree.fit(d, labels, opt);
  EXPECT_EQ(tree.split_count(), 0u);
  const std::vector<double> q = {1.0};
  EXPECT_DOUBLE_EQ(tree.predict_proba(q), 0.5);
}

TEST(DecisionTree, MaxSplitsBudgetIsRespected) {
  // Alternating blocks force many potential splits.
  std::vector<double> xs;
  Labels labels;
  for (int i = 0; i < 64; ++i) {
    xs.push_back(static_cast<double>(i));
    labels.push_back((i / 8) % 2 == 0 ? 0 : 1);
  }
  const Dataset d = one_dimensional(xs);
  DecisionTreeOptions opt;
  opt.max_splits = 3;
  DecisionTree tree;
  tree.fit(d, labels, opt);
  EXPECT_LE(tree.split_count(), 3u);
}

TEST(DecisionTree, BestFirstSpendsBudgetOnMostInformativeSplit) {
  // Feature 0 separates classes almost perfectly; feature 1 is noise.
  Dataset d({"signal", "noise"});
  Labels labels;
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  for (int i = 0; i < 200; ++i) {
    const bool positive = i % 2 == 0;
    d.add_row({positive ? 1.0 + u(rng) : -1.0 - u(rng), u(rng)});
    labels.push_back(positive ? 1 : 0);
  }
  DecisionTreeOptions opt;
  opt.max_splits = 1;
  DecisionTree tree;
  tree.fit(d, labels, opt);
  ASSERT_EQ(tree.split_count(), 1u);
  // With only one split allowed, the tree must use the signal feature:
  const std::vector<double> pos = {2.0, 0.5};
  const std::vector<double> neg = {-2.0, 0.5};
  EXPECT_TRUE(tree.predict(pos));
  EXPECT_FALSE(tree.predict(neg));
}

TEST(DecisionTree, MaxDepthLimitsLevels) {
  std::vector<double> xs;
  Labels labels;
  for (int i = 0; i < 128; ++i) {
    xs.push_back(static_cast<double>(i));
    labels.push_back((i / 4) % 2 == 0 ? 0 : 1);
  }
  const Dataset d = one_dimensional(xs);
  DecisionTreeOptions opt;
  opt.max_depth = 2;
  DecisionTree tree;
  tree.fit(d, labels, opt);
  EXPECT_LE(tree.depth(), 2u);
}

TEST(DecisionTree, TwoFeatureAndLogic) {
  // Positive iff x > 0.5 AND y > 0.5 — needs two levels of splits.
  Dataset d({"x", "y"});
  Labels labels;
  for (double x : {0.1, 0.3, 0.7, 0.9}) {
    for (double y : {0.1, 0.3, 0.7, 0.9}) {
      d.add_row({x, y});
      labels.push_back(x > 0.5 && y > 0.5 ? 1 : 0);
    }
  }
  DecisionTree tree;
  tree.fit(d, labels);
  const std::vector<double> tt = {0.8, 0.8};
  const std::vector<double> tf = {0.8, 0.2};
  const std::vector<double> ft = {0.2, 0.8};
  EXPECT_TRUE(tree.predict(tt));
  EXPECT_FALSE(tree.predict(tf));
  EXPECT_FALSE(tree.predict(ft));
}

TEST(DecisionTree, ProbabilityIsLeafFrequency) {
  // One region mixes labels 3:1.
  const Dataset d = one_dimensional({1.0, 1.1, 1.2, 1.3, 9.0, 9.1, 9.2, 9.3});
  const Labels labels = {0, 0, 0, 0, 1, 1, 1, 0};
  DecisionTreeOptions opt;
  opt.min_leaf_size = 4;
  DecisionTree tree;
  tree.fit(d, labels, opt);
  const std::vector<double> high = {9.05};
  EXPECT_DOUBLE_EQ(tree.predict_proba(high), 0.75);
}

TEST(DecisionTree, ShortFeatureVectorThrows) {
  Dataset d({"a", "b"});
  d.add_row({0.0, 0.0});
  d.add_row({0.0, 1.0});
  d.add_row({1.0, 0.0});
  d.add_row({1.0, 1.0});
  const Labels labels = {0, 1, 0, 1};  // splits on feature b
  DecisionTree tree;
  tree.fit(d, labels);
  ASSERT_GE(tree.split_count(), 1u);
  const std::vector<double> too_short = {};
  EXPECT_THROW((void)tree.predict(too_short), std::invalid_argument);
}

TEST(DecisionTree, ToStringRendersStructure) {
  const Dataset d = one_dimensional({1.0, 2.0, 10.0, 11.0});
  const Labels labels = {0, 0, 1, 1};
  DecisionTree tree;
  tree.fit(d, labels);
  const std::string rendered = tree.to_string(d);
  EXPECT_NE(rendered.find("x <="), std::string::npos);
  EXPECT_NE(rendered.find("leaf"), std::string::npos);
}

// Separation sweep: accuracy should rise with class separation.
class SeparationSweep : public ::testing::TestWithParam<double> {};

TEST_P(SeparationSweep, AccuracyImprovesWithSeparation) {
  const double gap = GetParam();
  std::mt19937_64 rng(17);
  std::normal_distribution<double> noise(0.0, 1.0);
  Dataset d({"x"});
  Labels labels;
  for (int i = 0; i < 600; ++i) {
    const bool positive = i % 2 == 0;
    d.add_row({(positive ? gap : 0.0) + noise(rng)});
    labels.push_back(positive ? 1 : 0);
  }
  DecisionTreeOptions opt;
  opt.min_leaf_size = 30;
  DecisionTree tree;
  tree.fit(d, labels, opt);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < d.rows(); ++i) {
    if (tree.predict(d.row(i)) == static_cast<bool>(labels[i])) ++correct;
  }
  const double accuracy =
      static_cast<double>(correct) / static_cast<double>(d.rows());
  if (gap >= 3.0) {
    EXPECT_GT(accuracy, 0.90) << "gap=" << gap;
  } else {
    EXPECT_GT(accuracy, 0.60) << "gap=" << gap;
  }
}

INSTANTIATE_TEST_SUITE_P(Gaps, SeparationSweep,
                         ::testing::Values(1.0, 2.0, 3.0, 5.0));

}  // namespace
}  // namespace headroom::ml
