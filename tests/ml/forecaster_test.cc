#include "ml/forecaster.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace headroom::ml {
namespace {

ForecasterOptions small_options() {
  ForecasterOptions opt;
  opt.season_seconds = 400;  // 4 buckets of 100 s
  opt.buckets = 4;
  opt.level_smoothing = 0.5;
  opt.ratio_smoothing = 0.5;
  return opt;
}

TEST(DemandForecaster, ValidatesOptions) {
  ForecasterOptions bad = small_options();
  bad.buckets = 0;
  EXPECT_THROW(DemandForecaster{bad}, std::invalid_argument);
  bad = small_options();
  bad.season_seconds = 0;
  EXPECT_THROW(DemandForecaster{bad}, std::invalid_argument);
  bad = small_options();
  bad.level_smoothing = 0.0;
  EXPECT_THROW(DemandForecaster{bad}, std::invalid_argument);
  bad = small_options();
  bad.ratio_smoothing = 1.5;
  EXPECT_THROW(DemandForecaster{bad}, std::invalid_argument);
  EXPECT_NO_THROW(DemandForecaster{});
}

TEST(DemandForecaster, FallsBackToPersistenceUntilBucketIsSeen) {
  DemandForecaster f(small_options());
  EXPECT_DOUBLE_EQ(f.predict(0), 0.0);  // nothing observed at all
  f.observe(0, 100.0);
  // Bucket 0 is seen; buckets 1-3 are not -> persistence.
  EXPECT_DOUBLE_EQ(f.predict(150), 100.0);
  EXPECT_DOUBLE_EQ(f.predict(350), 100.0);
  EXPECT_DOUBLE_EQ(f.predict(0), 100.0);
}

TEST(DemandForecaster, LearnsTheSeasonalShape) {
  DemandForecaster f(small_options());
  // Two identical seasons of a square wave: levels converge per bucket and
  // the ratio stays at 1 (every repeat matches its bucket level exactly).
  for (int season = 0; season < 2; ++season) {
    const telemetry::SimTime base = season * 400;
    f.observe(base + 0, 100.0);
    f.observe(base + 100, 300.0);
    f.observe(base + 200, 300.0);
    f.observe(base + 300, 100.0);
  }
  EXPECT_EQ(f.observations(), 8u);
  EXPECT_DOUBLE_EQ(f.predict(800), 100.0);   // bucket 0, one season ahead
  EXPECT_DOUBLE_EQ(f.predict(900), 300.0);   // bucket 1
  EXPECT_DOUBLE_EQ(f.predict(1100), 100.0);  // bucket 3
}

TEST(DemandForecaster, RatioTracksSustainedGrowth) {
  DemandForecaster f(small_options());
  f.observe(0, 100.0);
  // Next season the same bucket runs 50% hot: the ratio moves halfway
  // (alpha 0.5) to 1.5, and the level halfway to 150.
  f.observe(400, 150.0);
  EXPECT_DOUBLE_EQ(f.predict(800), 125.0 * 1.25);
  // The global ratio also lifts forecasts for *other* seen buckets.
  f.observe(100, 200.0);
  EXPECT_DOUBLE_EQ(f.predict(500), 200.0 * 1.25);
}

TEST(DemandForecaster, BucketOfWrapsNegativeTimestamps) {
  DemandForecaster f(small_options());
  f.observe(-300, 42.0);  // phase 100 -> bucket 1
  EXPECT_DOUBLE_EQ(f.predict(100), 42.0);
  EXPECT_DOUBLE_EQ(f.predict(500), 42.0);
}

TEST(DemandForecaster, BlindToUnseasonalSpikesByDesign) {
  // The flash-crowd caveat from the header doc: a one-off spike nudges the
  // EWMA but the next-season prediction stays near the diurnal level, so a
  // planner trusting this forecaster under-provisions for true surprises.
  ForecasterOptions opt = small_options();
  opt.level_smoothing = 0.25;
  opt.ratio_smoothing = 0.10;
  DemandForecaster f(opt);
  for (int season = 0; season < 4; ++season) {
    for (int b = 0; b < 4; ++b) {
      f.observe(season * 400 + b * 100, 100.0);
    }
  }
  f.observe(4 * 400, 1000.0);  // 10x flash crowd in bucket 0
  // Level moves a quarter of the way (100 -> 325) and the ratio a tenth
  // (1 -> 1.9): the forecast absorbs some of the spike but stays far
  // below it.
  EXPECT_DOUBLE_EQ(f.predict(5 * 400), 325.0 * 1.9);
  EXPECT_LT(f.predict(5 * 400), 1000.0);
}

}  // namespace
}  // namespace headroom::ml
