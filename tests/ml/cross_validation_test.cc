#include "ml/cross_validation.h"

#include <gtest/gtest.h>

#include <random>
#include <stdexcept>

namespace headroom::ml {
namespace {

using Labels = std::vector<std::uint8_t>;

struct SyntheticProblem {
  Dataset data{std::vector<std::string>{"x", "y"}};
  Labels labels;
};

SyntheticProblem separable_problem(std::size_t n, double gap,
                                   std::uint64_t seed) {
  SyntheticProblem p;
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> noise(0.0, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    const bool positive = i % 2 == 0;
    p.data.add_row({(positive ? gap : 0.0) + noise(rng), noise(rng)});
    p.labels.push_back(positive ? 1 : 0);
  }
  return p;
}

TEST(CrossValidate, RejectsBadK) {
  SyntheticProblem p = separable_problem(20, 3.0, 1);
  EXPECT_THROW((void)cross_validate(p.data, p.labels, 1, {}),
               std::invalid_argument);
}

TEST(CrossValidate, RejectsFewerRowsThanFolds) {
  SyntheticProblem p = separable_problem(4, 3.0, 1);
  EXPECT_THROW((void)cross_validate(p.data, p.labels, 10, {}),
               std::invalid_argument);
}

TEST(CrossValidate, RejectsLabelMismatch) {
  SyntheticProblem p = separable_problem(20, 3.0, 1);
  p.labels.pop_back();
  EXPECT_THROW((void)cross_validate(p.data, p.labels, 5, {}),
               std::invalid_argument);
}

TEST(CrossValidate, ProducesKFolds) {
  SyntheticProblem p = separable_problem(100, 3.0, 2);
  const CrossValidationResult r = cross_validate(p.data, p.labels, 5, {});
  EXPECT_EQ(r.folds.size(), 5u);
}

TEST(CrossValidate, HighAccuracyOnSeparableData) {
  SyntheticProblem p = separable_problem(400, 4.0, 3);
  DecisionTreeOptions opt;
  opt.min_leaf_size = 10;
  const CrossValidationResult r = cross_validate(p.data, p.labels, 5, opt);
  EXPECT_GT(r.mean.accuracy, 0.9);
  EXPECT_GT(r.mean.auc, 0.95);
  EXPECT_GT(r.mean.r_squared, 0.5);
}

TEST(CrossValidate, ChanceLevelOnRandomLabels) {
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  Dataset d({"x"});
  Labels labels;
  for (int i = 0; i < 300; ++i) {
    d.add_row({u(rng)});
    labels.push_back(u(rng) < 0.5 ? 1 : 0);
  }
  DecisionTreeOptions opt;
  opt.min_leaf_size = 20;
  const CrossValidationResult r = cross_validate(d, labels, 5, opt);
  EXPECT_LT(r.mean.auc, 0.65);   // no signal to find
  EXPECT_GT(r.mean.auc, 0.35);
}

TEST(CrossValidate, DeterministicForFixedSeed) {
  SyntheticProblem p = separable_problem(200, 2.0, 7);
  const CrossValidationResult a = cross_validate(p.data, p.labels, 4, {}, 99);
  const CrossValidationResult b = cross_validate(p.data, p.labels, 4, {}, 99);
  ASSERT_EQ(a.folds.size(), b.folds.size());
  for (std::size_t i = 0; i < a.folds.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.folds[i].accuracy, b.folds[i].accuracy);
    EXPECT_DOUBLE_EQ(a.folds[i].auc, b.folds[i].auc);
  }
}

TEST(CrossValidate, DifferentSeedsShuffleDifferently) {
  SyntheticProblem p = separable_problem(200, 1.0, 11);
  const CrossValidationResult a = cross_validate(p.data, p.labels, 4, {}, 1);
  const CrossValidationResult b = cross_validate(p.data, p.labels, 4, {}, 2);
  // Not a strict requirement fold-by-fold, but at least one fold metric
  // should differ for noisy data under different shuffles.
  bool any_difference = false;
  for (std::size_t i = 0; i < a.folds.size(); ++i) {
    if (a.folds[i].accuracy != b.folds[i].accuracy) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(CrossValidate, MeanIsAverageOfFolds) {
  SyntheticProblem p = separable_problem(150, 3.0, 13);
  const CrossValidationResult r = cross_validate(p.data, p.labels, 3, {});
  double acc = 0.0;
  for (const FoldMetrics& f : r.folds) acc += f.accuracy;
  EXPECT_NEAR(r.mean.accuracy, acc / 3.0, 1e-12);
}

// Paper-shaped scenario: the §II-A2 tree used min_leaf_size=2000 machines
// over manually labeled pools and achieved AUC 0.98 / R² 0.75. At our test
// scale the analogous configuration should land in the same quality band.
TEST(CrossValidate, PaperStyleConfigurationQualityBand) {
  SyntheticProblem p = separable_problem(2000, 3.5, 17);
  DecisionTreeOptions opt;
  opt.min_leaf_size = 100;  // scaled-down analogue of 2000 machines
  opt.max_splits = 34;      // the paper's split count
  const CrossValidationResult r = cross_validate(p.data, p.labels, 5, opt);
  EXPECT_GT(r.mean.auc, 0.95);
  EXPECT_GT(r.mean.r_squared, 0.55);
}

}  // namespace
}  // namespace headroom::ml
