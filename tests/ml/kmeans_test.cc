#include "ml/kmeans.h"

#include <gtest/gtest.h>

#include <random>
#include <stdexcept>

namespace headroom::ml {
namespace {

Dataset two_blobs(std::size_t per_cluster, double separation,
                  std::uint64_t seed) {
  Dataset d({"x", "y"});
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> noise(0.0, 0.5);
  for (std::size_t i = 0; i < per_cluster; ++i) {
    d.add_row({noise(rng), noise(rng)});
    d.add_row({separation + noise(rng), separation + noise(rng)});
  }
  return d;
}

TEST(KMeans, RejectsBadK) {
  Dataset d({"x"});
  d.add_row({1.0});
  KMeansOptions opt;
  opt.k = 0;
  EXPECT_THROW((void)kmeans(d, opt), std::invalid_argument);
  opt.k = 2;
  EXPECT_THROW((void)kmeans(d, opt), std::invalid_argument);  // rows < k
}

TEST(KMeans, SingleClusterCentroidIsMean) {
  Dataset d({"x"});
  d.add_row({1.0});
  d.add_row({2.0});
  d.add_row({3.0});
  KMeansOptions opt;
  opt.k = 1;
  const KMeansResult r = kmeans(d, opt);
  ASSERT_EQ(r.centroids.size(), 1u);
  EXPECT_NEAR(r.centroids[0][0], 2.0, 1e-12);
}

TEST(KMeans, SeparatesTwoBlobs) {
  const Dataset d = two_blobs(50, 10.0, 3);
  KMeansOptions opt;
  opt.k = 2;
  const KMeansResult r = kmeans(d, opt);
  // All even rows (blob 0) share a cluster; odd rows the other.
  const std::size_t c0 = r.assignment[0];
  const std::size_t c1 = r.assignment[1];
  EXPECT_NE(c0, c1);
  for (std::size_t i = 0; i < d.rows(); ++i) {
    EXPECT_EQ(r.assignment[i], i % 2 == 0 ? c0 : c1) << "row " << i;
  }
}

TEST(KMeans, InertiaDecreasesWithMoreClusters) {
  const Dataset d = two_blobs(40, 6.0, 5);
  KMeansOptions opt1;
  opt1.k = 1;
  KMeansOptions opt2;
  opt2.k = 2;
  EXPECT_LT(kmeans(d, opt2).inertia, kmeans(d, opt1).inertia);
}

TEST(KMeans, DeterministicForFixedSeed) {
  const Dataset d = two_blobs(30, 4.0, 7);
  KMeansOptions opt;
  opt.k = 2;
  opt.seed = 42;
  const KMeansResult a = kmeans(d, opt);
  const KMeansResult b = kmeans(d, opt);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(Silhouette, WellSeparatedNearOne) {
  const Dataset d = two_blobs(40, 20.0, 9);
  KMeansOptions opt;
  opt.k = 2;
  const KMeansResult r = kmeans(d, opt);
  EXPECT_GT(silhouette_score(d, r.assignment, 2), 0.85);
}

TEST(Silhouette, OverlappingBlobsScoreLow) {
  const Dataset d = two_blobs(40, 0.3, 11);
  KMeansOptions opt;
  opt.k = 2;
  const KMeansResult r = kmeans(d, opt);
  EXPECT_LT(silhouette_score(d, r.assignment, 2), 0.5);
}

TEST(Silhouette, SingleClusterIsZero) {
  const Dataset d = two_blobs(10, 3.0, 13);
  const std::vector<std::size_t> assignment(d.rows(), 0);
  EXPECT_EQ(silhouette_score(d, assignment, 1), 0.0);
}

TEST(Silhouette, MismatchedAssignmentThrows) {
  const Dataset d = two_blobs(5, 3.0, 15);
  const std::vector<std::size_t> assignment(3, 0);
  EXPECT_THROW((void)silhouette_score(d, assignment, 2), std::invalid_argument);
}

TEST(Silhouette, OutOfRangeClusterIdThrows) {
  const Dataset d = two_blobs(5, 3.0, 15);
  std::vector<std::size_t> assignment(d.rows(), 0);
  assignment.back() = 2;  // k = 2 admits ids 0 and 1 only.
  EXPECT_THROW((void)silhouette_score(d, assignment, 2), std::invalid_argument);
}

TEST(ChooseK, FindsTwoForBimodalPool) {
  // The Fig. 3 scenario: a pool whose servers split by hardware generation.
  const Dataset d = two_blobs(60, 12.0, 17);
  EXPECT_EQ(choose_k(d, 4), 2u);
}

TEST(ChooseK, FindsOneForUnimodalPool) {
  Dataset d({"x", "y"});
  std::mt19937_64 rng(19);
  std::normal_distribution<double> noise(5.0, 1.0);
  for (int i = 0; i < 100; ++i) d.add_row({noise(rng), noise(rng)});
  EXPECT_EQ(choose_k(d, 4), 1u);
}

TEST(ChooseK, FindsThreeForThreeBlobs) {
  Dataset d({"x", "y"});
  std::mt19937_64 rng(21);
  std::normal_distribution<double> noise(0.0, 0.4);
  for (int i = 0; i < 60; ++i) {
    const double cx = (i % 3) * 15.0;
    d.add_row({cx + noise(rng), noise(rng)});
  }
  EXPECT_EQ(choose_k(d, 5), 3u);
}

TEST(ChooseK, EmptyThrows) {
  Dataset d({"x"});
  EXPECT_THROW((void)choose_k(d, 3), std::invalid_argument);
}

}  // namespace
}  // namespace headroom::ml
