#include "ml/dataset.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace headroom::ml {
namespace {

TEST(Dataset, EmptyByDefault) {
  Dataset d;
  EXPECT_EQ(d.rows(), 0u);
  EXPECT_EQ(d.cols(), 0u);
}

TEST(Dataset, AddRowFixesColumnCount) {
  Dataset d;
  d.add_row({1.0, 2.0});
  EXPECT_EQ(d.cols(), 2u);
  EXPECT_THROW(d.add_row({1.0}), std::invalid_argument);
  EXPECT_THROW(d.add_row({1.0, 2.0, 3.0}), std::invalid_argument);
}

TEST(Dataset, NamedColumnsEnforceWidth) {
  Dataset d({"a", "b", "c"});
  EXPECT_EQ(d.cols(), 3u);
  EXPECT_THROW(d.add_row({1.0}), std::invalid_argument);
  d.add_row({1.0, 2.0, 3.0});
  EXPECT_EQ(d.rows(), 1u);
}

TEST(Dataset, RowAndAtAccess) {
  Dataset d;
  d.add_row({1.0, 2.0});
  d.add_row({3.0, 4.0});
  EXPECT_DOUBLE_EQ(d.at(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(d.row(0)[1], 2.0);
  EXPECT_THROW((void)d.row(2), std::out_of_range);
  EXPECT_THROW((void)d.at(0, 5), std::out_of_range);
}

TEST(Dataset, FeatureNameFallsBackToIndex) {
  Dataset named({"p5", "p95"});
  EXPECT_EQ(named.feature_name(0), "p5");
  Dataset anonymous;
  anonymous.add_row({1.0, 2.0});
  EXPECT_EQ(anonymous.feature_name(1), "f1");
}

TEST(Dataset, ColumnExtraction) {
  Dataset d;
  d.add_row({1.0, 10.0});
  d.add_row({2.0, 20.0});
  d.add_row({3.0, 30.0});
  const std::vector<double> col = d.column(1);
  ASSERT_EQ(col.size(), 3u);
  EXPECT_DOUBLE_EQ(col[0], 10.0);
  EXPECT_DOUBLE_EQ(col[2], 30.0);
}

}  // namespace
}  // namespace headroom::ml
