// SeasonalProfile is the single seasonal-bucket implementation shared by
// DemandForecaster and TrendSeasonDecomposition; its bucket mapping and
// EWMA semantics are pinned here (the forecaster goldens depend on them
// staying bit-identical to the pre-refactor private copy).
#include "ml/seasonal.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace headroom::ml {
namespace {

TEST(SeasonalProfile, RejectsBadOptions) {
  SeasonalOptions bad;
  bad.season_seconds = 0;
  EXPECT_THROW(SeasonalProfile{bad}, std::invalid_argument);
  bad = {};
  bad.buckets = 0;
  EXPECT_THROW(SeasonalProfile{bad}, std::invalid_argument);
  bad = {};
  bad.smoothing = 0.0;
  EXPECT_THROW(SeasonalProfile{bad}, std::invalid_argument);
  bad = {};
  bad.smoothing = 1.5;
  EXPECT_THROW(SeasonalProfile{bad}, std::invalid_argument);
  SeasonalOptions edge;
  edge.smoothing = 1.0;  // inclusive upper bound
  EXPECT_NO_THROW(SeasonalProfile{edge});
}

TEST(SeasonalProfile, BucketMappingCoversSeasonAndWraps) {
  SeasonalOptions options;
  options.season_seconds = 86400;
  options.buckets = 48;
  const SeasonalProfile profile(options);

  EXPECT_EQ(profile.bucket_of(0), 0u);
  EXPECT_EQ(profile.bucket_of(1799), 0u);
  EXPECT_EQ(profile.bucket_of(1800), 1u);
  EXPECT_EQ(profile.bucket_of(86399), 47u);
  // A full season later lands in the same bucket.
  EXPECT_EQ(profile.bucket_of(86400), 0u);
  EXPECT_EQ(profile.bucket_of(86400 + 1800), 1u);
  // Negative timestamps wrap consistently: -1800 is the season's last
  // half-hour.
  EXPECT_EQ(profile.bucket_of(-1800), 47u);
  EXPECT_EQ(profile.bucket_of(-86400), 0u);
}

TEST(SeasonalProfile, FirstObservationInitializesThenEwma) {
  SeasonalOptions options;
  options.smoothing = 0.25;
  SeasonalProfile profile(options);

  EXPECT_FALSE(profile.seen(0));
  EXPECT_EQ(profile.seen_count(), 0u);

  profile.observe(0, 100.0);
  ASSERT_TRUE(profile.seen(0));
  EXPECT_EQ(profile.seen_count(), 1u);
  EXPECT_DOUBLE_EQ(profile.level(0), 100.0);  // init, not EWMA from zero

  profile.observe(86400, 200.0);  // same bucket, one season later
  EXPECT_DOUBLE_EQ(profile.level(0), 100.0 + 0.25 * (200.0 - 100.0));
  EXPECT_EQ(profile.seen_count(), 1u) << "same bucket must not recount";

  profile.observe(1800, 50.0);  // a different bucket
  EXPECT_EQ(profile.seen_count(), 2u);
  EXPECT_DOUBLE_EQ(profile.level(1), 50.0);
  EXPECT_DOUBLE_EQ(profile.level(0), 125.0) << "other buckets untouched";
}

TEST(SeasonalProfile, ConvergesToPeriodicSignal) {
  SeasonalOptions options;
  options.season_seconds = 4800;
  options.buckets = 4;  // 1200 s per bucket
  options.smoothing = 0.5;
  SeasonalProfile profile(options);

  // Periodic step pattern: buckets carry 10, 20, 30, 40.
  for (int season = 0; season < 20; ++season) {
    for (int b = 0; b < 4; ++b) {
      profile.observe(season * 4800 + b * 1200, 10.0 * (b + 1));
    }
  }
  EXPECT_EQ(profile.seen_count(), 4u);
  for (int b = 0; b < 4; ++b) {
    EXPECT_NEAR(profile.level(b), 10.0 * (b + 1), 1e-3) << "bucket " << b;
  }
}

}  // namespace
}  // namespace headroom::ml
