// TrendSeasonDecomposition: growth trend x seasonal profile with
// residual-quantile bands — the model under every capacity forecast.
#include "ml/trend_season.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace headroom::ml {
namespace {

TEST(TrendSeason, RejectsBadOptions) {
  TrendSeasonOptions bad;
  bad.trend_lookback = 0;
  EXPECT_THROW(TrendSeasonDecomposition{bad}, std::invalid_argument);
  bad = {};
  bad.residual_lookback = 0;
  EXPECT_THROW(TrendSeasonDecomposition{bad}, std::invalid_argument);
  bad = {};
  bad.band_percentile = 50.0;  // must leave room for a mirror quantile
  EXPECT_THROW(TrendSeasonDecomposition{bad}, std::invalid_argument);
  bad = {};
  bad.band_percentile = 100.0;
  EXPECT_THROW(TrendSeasonDecomposition{bad}, std::invalid_argument);
}

TEST(TrendSeason, EmptyDecompositionPredictsZero) {
  const TrendSeasonDecomposition decomposition;
  EXPECT_EQ(decomposition.observations(), 0u);
  EXPECT_EQ(decomposition.seasonal_coverage(), 0u);
  EXPECT_DOUBLE_EQ(decomposition.growth_per_day(), 0.0);
  const TrendSeasonForecast f = decomposition.predict(86400);
  EXPECT_DOUBLE_EQ(f.value, 0.0);
  EXPECT_DOUBLE_EQ(f.lower, f.value);
  EXPECT_DOUBLE_EQ(f.upper, f.value);
}

TEST(TrendSeason, RecoversPureLinearGrowthExactly) {
  // demand(t) = 100 + 0.01 t: a perfect line has ratio 1 in every seasonal
  // bucket and zero residuals, so the extrapolation is the analytic line
  // and the band collapses onto it.
  TrendSeasonDecomposition decomposition;
  for (telemetry::SimTime t = 0; t < 7 * 86400; t += 120) {
    decomposition.observe(t, 100.0 + 0.01 * static_cast<double>(t));
  }
  EXPECT_NEAR(decomposition.growth_per_day(), 0.01 * 86400.0, 1e-6);

  const telemetry::SimTime future = 10 * 86400;
  const TrendSeasonForecast f = decomposition.predict(future);
  const double analytic = 100.0 + 0.01 * static_cast<double>(future);
  EXPECT_NEAR(f.value, analytic, 1e-6);
  EXPECT_NEAR(f.trend, analytic, 1e-6);
  EXPECT_NEAR(f.season, 1.0, 1e-9);
  EXPECT_NEAR(f.upper - f.lower, 0.0, 1e-6) << "zero residuals, tight band";
  EXPECT_LE(f.lower, f.value);
  EXPECT_GE(f.upper, f.value);
}

TEST(TrendSeason, RecoversMultiplicativeSeasonOverGrowth) {
  // demand(t) = (1000 + 0.005 t) x season(t), season alternating between
  // 0.8 and 1.2 every half season. The decomposition should attribute the
  // oscillation to the seasonal profile, not the trend.
  TrendSeasonOptions options;
  options.season_seconds = 86400;
  options.buckets = 2;
  options.seasonal_smoothing = 0.5;
  TrendSeasonDecomposition decomposition(options);

  for (telemetry::SimTime t = 0; t < 14 * 86400; t += 1200) {
    const double trend = 1000.0 + 0.005 * static_cast<double>(t);
    const double season = (t % 86400) < 43200 ? 0.8 : 1.2;
    decomposition.observe(t, trend * season);
  }
  EXPECT_EQ(decomposition.seasonal_coverage(), 2u);

  // Growth survives the oscillation to within a few percent.
  EXPECT_NEAR(decomposition.growth_per_day(), 0.005 * 86400.0,
              0.05 * 0.005 * 86400.0);

  // Forecasts into each half-season carry the right multiplier.
  const telemetry::SimTime morning = 20 * 86400 + 6 * 3600;
  const telemetry::SimTime evening = 20 * 86400 + 18 * 3600;
  const TrendSeasonForecast low = decomposition.predict(morning);
  const TrendSeasonForecast high = decomposition.predict(evening);
  EXPECT_NEAR(low.season, 0.8, 0.05);
  EXPECT_NEAR(high.season, 1.2, 0.05);
  EXPECT_GT(high.value, low.value);
  EXPECT_LE(low.lower, low.value);
  EXPECT_GE(low.upper, low.value);
}

TEST(TrendSeason, ResidualBandWidensWithNoise) {
  // A deterministic square-wave disturbance the 1-bucket seasonal profile
  // cannot absorb becomes residual spread: the band must cover it.
  TrendSeasonOptions options;
  options.buckets = 1;
  TrendSeasonDecomposition decomposition(options);
  for (telemetry::SimTime t = 0; t < 4 * 86400; t += 1200) {
    const double wobble = (t / 1200) % 2 == 0 ? 25.0 : -25.0;
    decomposition.observe(t, 500.0 + wobble);
  }
  const TrendSeasonForecast f = decomposition.predict(5 * 86400);
  EXPECT_GT(f.upper - f.lower, 25.0) << "band must reflect the wobble";
  EXPECT_LE(f.lower, f.value);
  EXPECT_GE(f.upper, f.value);
}

TEST(TrendSeason, DeterministicReplayIsBitIdentical) {
  const auto run = [] {
    TrendSeasonDecomposition decomposition;
    for (telemetry::SimTime t = 0; t < 3 * 86400; t += 120) {
      const double v =
          800.0 + 0.002 * static_cast<double>(t) +
          60.0 * std::sin(static_cast<double>(t) * 6.283185307179586 / 86400.0);
      decomposition.observe(t, v);
    }
    return decomposition.predict(5 * 86400);
  };
  const TrendSeasonForecast a = run();
  const TrendSeasonForecast b = run();
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.lower, b.lower);
  EXPECT_EQ(a.upper, b.upper);
}

}  // namespace
}  // namespace headroom::ml
