#include "stats/percentile.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

namespace headroom::stats {
namespace {

TEST(Percentile, EmptyReturnsZero) {
  EXPECT_EQ(percentile({}, 50.0), 0.0);
}

TEST(Percentile, SingleElement) {
  const std::vector<double> xs = {7.0};
  EXPECT_EQ(percentile(xs, 0.0), 7.0);
  EXPECT_EQ(percentile(xs, 50.0), 7.0);
  EXPECT_EQ(percentile(xs, 100.0), 7.0);
}

TEST(Percentile, MedianOfOddCount) {
  const std::vector<double> xs = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 3.0);
}

TEST(Percentile, MedianInterpolatesEvenCount) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 2.5);
}

TEST(Percentile, ExtremesAreMinAndMax) {
  const std::vector<double> xs = {9.0, -1.0, 4.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), -1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 9.0);
}

TEST(Percentile, OutOfRangePIsClamped) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(xs, -5.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 150.0), 3.0);
}

TEST(Percentile, LinearInterpolationBetweenOrderStatistics) {
  const std::vector<double> xs = {0.0, 10.0};  // p at rank p/100
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(xs, 75.0), 7.5);
}

TEST(Percentile, DoesNotRequireSortedInput) {
  const std::vector<double> shuffled = {5.0, 2.0, 9.0, 1.0, 7.0};
  std::vector<double> sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_DOUBLE_EQ(percentile(shuffled, 40.0), percentile_sorted(sorted, 40.0));
}

TEST(Percentile, BatchMatchesIndividual) {
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(dist(rng));
  const std::vector<double> ps = {5.0, 25.0, 50.0, 75.0, 95.0};
  const std::vector<double> batch = percentiles(xs, ps);
  ASSERT_EQ(batch.size(), ps.size());
  for (std::size_t i = 0; i < ps.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], percentile(xs, ps[i]));
  }
}

TEST(Percentile, MonotoneInP) {
  std::mt19937_64 rng(5);
  std::lognormal_distribution<double> dist(0.0, 1.0);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(dist(rng));
  double prev = percentile(xs, 0.0);
  for (double p = 5.0; p <= 100.0; p += 5.0) {
    const double cur = percentile(xs, p);
    EXPECT_GE(cur, prev) << "p=" << p;
    prev = cur;
  }
}

// Property sweep: for uniform data on [0,1], the p-th percentile of a large
// sample approaches p/100.
class PercentileUniformSweep : public ::testing::TestWithParam<double> {};

TEST_P(PercentileUniformSweep, ApproximatesTheoreticalQuantile) {
  const double p = GetParam();
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(dist(rng));
  EXPECT_NEAR(percentile(xs, p), p / 100.0, 0.02) << "p=" << p;
}

INSTANTIATE_TEST_SUITE_P(Quantiles, PercentileUniformSweep,
                         ::testing::Values(5.0, 25.0, 50.0, 75.0, 95.0, 99.0));

// The selection path (two nth_element order statistics) must reproduce the
// sorted-reference result bit for bit — same order statistics, same
// interpolation arithmetic — across distributions, including duplicate-heavy
// ones where nth_element partitions around equal pivots.
TEST(Percentile, SelectionIsBitIdenticalToSortedReferenceOnRandomInput) {
  std::mt19937_64 rng(17);
  std::lognormal_distribution<double> dist(1.0, 2.0);
  for (const std::size_t n : {2u, 3u, 7u, 100u, 1231u}) {
    std::vector<double> xs;
    xs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) xs.push_back(dist(rng));
    std::vector<double> sorted = xs;
    std::sort(sorted.begin(), sorted.end());
    for (double p = 0.0; p <= 100.0; p += 0.7) {
      // EXPECT_EQ, not EXPECT_DOUBLE_EQ: exact bits, not 4-ulp closeness.
      EXPECT_EQ(percentile(xs, p), percentile_sorted(sorted, p))
          << "n=" << n << " p=" << p;
    }
  }
}

TEST(Percentile, SelectionIsBitIdenticalOnDuplicateHeavyInput) {
  std::mt19937_64 rng(19);
  std::uniform_int_distribution<int> coarse(0, 4);  // many exact ties
  std::vector<double> xs;
  for (int i = 0; i < 2000; ++i) xs.push_back(0.25 * coarse(rng));
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  for (double p = 0.0; p <= 100.0; p += 0.3) {
    EXPECT_EQ(percentile(xs, p), percentile_sorted(sorted, p)) << "p=" << p;
  }
  // All-equal input: every percentile is that value exactly.
  const std::vector<double> flat(64, 3.125);
  for (const double p : {0.0, 12.5, 50.0, 99.0, 100.0}) {
    EXPECT_EQ(percentile(flat, p), 3.125);
  }
}

// --- Degenerate-input edges -------------------------------------------------

TEST(Percentile, SortedVariantMatchesOnEmptyAndSingleton) {
  EXPECT_EQ(percentile_sorted({}, 50.0), 0.0);
  EXPECT_EQ(percentile_sorted({}, 0.0), 0.0);
  const double one[] = {9.75};
  for (const double p : {0.0, 37.0, 100.0}) {
    EXPECT_EQ(percentile_sorted(one, p), 9.75);
  }
}

TEST(Percentile, BatchOverEmptyDataIsAllZeros) {
  const std::vector<double> got = percentiles({}, kGroupingPercentiles);
  ASSERT_EQ(got.size(), std::size(kGroupingPercentiles));
  for (const double v : got) EXPECT_EQ(v, 0.0);
}

TEST(Percentile, BatchWithNoRequestedPercentilesIsEmpty) {
  const double xs[] = {1.0, 2.0, 3.0};
  EXPECT_TRUE(percentiles(xs, {}).empty());
}

TEST(Percentile, BatchOnSingletonRepeatsTheElement) {
  const double xs[] = {-2.5};
  const std::vector<double> got = percentiles(xs, kGroupingPercentiles);
  ASSERT_EQ(got.size(), 5u);
  for (const double v : got) EXPECT_EQ(v, -2.5);
}

TEST(Percentile, GroupingPercentilesAreThePapersFive) {
  ASSERT_EQ(std::size(kGroupingPercentiles), 5u);
  EXPECT_EQ(kGroupingPercentiles[0], 5.0);
  EXPECT_EQ(kGroupingPercentiles[4], 95.0);
}

}  // namespace
}  // namespace headroom::stats
