#include "stats/roc.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

namespace headroom::stats {
namespace {

using Labels = std::vector<std::uint8_t>;

TEST(Auc, PerfectSeparationIsOne) {
  const std::vector<double> scores = {0.1, 0.2, 0.8, 0.9};
  const Labels labels = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(auc(scores, labels), 1.0);
}

TEST(Auc, PerfectInversionIsZero) {
  const std::vector<double> scores = {0.9, 0.8, 0.2, 0.1};
  const Labels labels = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(auc(scores, labels), 0.0);
}

TEST(Auc, AllTiedScoresIsHalf) {
  const std::vector<double> scores = {0.5, 0.5, 0.5, 0.5};
  const Labels labels = {0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(auc(scores, labels), 0.5);
}

TEST(Auc, SingleClassReturnsHalf) {
  const std::vector<double> scores = {0.1, 0.9};
  const Labels all_positive = {1, 1};
  EXPECT_DOUBLE_EQ(auc(scores, all_positive), 0.5);
}

TEST(Auc, KnownMixedCase) {
  // Positives at ranks {2,4} of {0.1<0.4<0.35?...} — compute explicitly:
  // scores sorted: 0.1(neg) 0.2(pos) 0.3(neg) 0.4(pos)
  // U = pairs where pos > neg = (0.2>0.1) + (0.4>0.1) + (0.4>0.3) = 3 of 4.
  const std::vector<double> scores = {0.1, 0.2, 0.3, 0.4};
  const Labels labels = {0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(auc(scores, labels), 0.75);
}

TEST(Auc, TieBetweenClassesCountsHalf) {
  const std::vector<double> scores = {0.5, 0.5, 0.9};
  const Labels labels = {0, 1, 1};
  // Pairs: (pos .5 vs neg .5) = 0.5, (pos .9 vs neg .5) = 1  => 1.5/2.
  EXPECT_DOUBLE_EQ(auc(scores, labels), 0.75);
}

TEST(Auc, SizeMismatchThrows) {
  const std::vector<double> scores = {0.5};
  const Labels labels = {0, 1};
  EXPECT_THROW((void)auc(scores, labels), std::invalid_argument);
}

TEST(RocCurve, StartsAtOriginEndsAtOneOne) {
  const std::vector<double> scores = {0.1, 0.4, 0.35, 0.8};
  const Labels labels = {0, 1, 0, 1};
  const auto curve = roc_curve(scores, labels);
  ASSERT_GE(curve.size(), 2u);
  EXPECT_DOUBLE_EQ(curve.front().false_positive_rate, 0.0);
  EXPECT_DOUBLE_EQ(curve.front().true_positive_rate, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().false_positive_rate, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().true_positive_rate, 1.0);
}

TEST(RocCurve, MonotoneNonDecreasing) {
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::vector<double> scores;
  Labels labels;
  for (int i = 0; i < 500; ++i) {
    const bool pos = u(rng) < 0.4;
    labels.push_back(pos ? 1 : 0);
    scores.push_back(pos ? u(rng) * 0.7 + 0.3 : u(rng) * 0.7);
  }
  const auto curve = roc_curve(scores, labels);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].false_positive_rate, curve[i - 1].false_positive_rate);
    EXPECT_GE(curve[i].true_positive_rate, curve[i - 1].true_positive_rate);
  }
}

TEST(RocCurve, TrapezoidAreaMatchesRankAuc) {
  std::mt19937_64 rng(9);
  std::normal_distribution<double> neg(0.0, 1.0);
  std::normal_distribution<double> pos(1.5, 1.0);
  std::vector<double> scores;
  Labels labels;
  for (int i = 0; i < 2000; ++i) {
    const bool is_pos = i % 2 == 0;
    labels.push_back(is_pos ? 1 : 0);
    scores.push_back(is_pos ? pos(rng) : neg(rng));
  }
  const auto curve = roc_curve(scores, labels);
  double area = 0.0;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    const double dx =
        curve[i].false_positive_rate - curve[i - 1].false_positive_rate;
    area += dx * (curve[i].true_positive_rate + curve[i - 1].true_positive_rate) / 2.0;
  }
  EXPECT_NEAR(area, auc(scores, labels), 1e-9);
}

TEST(Auc, WellSeparatedGaussiansNearTheory) {
  // For N(0,1) vs N(d,1), AUC = Phi(d/sqrt(2)); d = 3 gives ~0.983 — the
  // regime of the paper's 0.9804 tree.
  std::mt19937_64 rng(13);
  std::normal_distribution<double> neg(0.0, 1.0);
  std::normal_distribution<double> pos(3.0, 1.0);
  std::vector<double> scores;
  Labels labels;
  for (int i = 0; i < 20000; ++i) {
    const bool is_pos = i % 2 == 0;
    labels.push_back(is_pos ? 1 : 0);
    scores.push_back(is_pos ? pos(rng) : neg(rng));
  }
  EXPECT_NEAR(auc(scores, labels), 0.983, 0.01);
}

}  // namespace
}  // namespace headroom::stats
