#include "stats/p2_quantile.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <stdexcept>
#include <vector>

#include "stats/percentile.h"

namespace headroom::stats {
namespace {

TEST(P2Quantile, RejectsInvalidQuantile) {
  EXPECT_THROW(P2Quantile(0.0), std::invalid_argument);
  EXPECT_THROW(P2Quantile(1.0), std::invalid_argument);
  EXPECT_THROW(P2Quantile(-0.5), std::invalid_argument);
}

TEST(P2Quantile, EmptyIsZero) {
  P2Quantile q(0.95);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.value(), 0.0);
}

TEST(P2Quantile, ExactForFewerThanFiveSamples) {
  P2Quantile q(0.5);
  q.add(3.0);
  EXPECT_DOUBLE_EQ(q.value(), 3.0);
  q.add(1.0);
  // Exact median of {1,3} with interpolation = 2.
  EXPECT_DOUBLE_EQ(q.value(), 2.0);
  q.add(5.0);
  EXPECT_DOUBLE_EQ(q.value(), 3.0);
}

TEST(P2Quantile, CountTracksAdds) {
  P2Quantile q(0.9);
  for (int i = 0; i < 20; ++i) q.add(static_cast<double>(i));
  EXPECT_EQ(q.count(), 20u);
}

TEST(P2Quantile, ResetRestoresEmptyState) {
  P2Quantile q(0.9);
  for (int i = 0; i < 100; ++i) q.add(static_cast<double>(i));
  q.reset();
  EXPECT_TRUE(q.empty());
  q.add(7.0);
  EXPECT_DOUBLE_EQ(q.value(), 7.0);
}

// Accuracy sweep across quantile levels and distributions: P² must land
// within a small relative error of the exact sample percentile.
struct P2Case {
  double q;
  int distribution;  // 0 uniform, 1 normal, 2 lognormal
};

class P2AccuracySweep : public ::testing::TestWithParam<P2Case> {};

TEST_P(P2AccuracySweep, TracksExactPercentile) {
  const P2Case c = GetParam();
  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> uni(0.0, 100.0);
  std::normal_distribution<double> norm(50.0, 10.0);
  std::lognormal_distribution<double> logn(2.0, 0.6);

  P2Quantile estimator(c.q);
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) {
    double x = 0.0;
    switch (c.distribution) {
      case 0: x = uni(rng); break;
      case 1: x = norm(rng); break;
      default: x = logn(rng); break;
    }
    estimator.add(x);
    xs.push_back(x);
  }
  const double exact = percentile(xs, c.q * 100.0);
  EXPECT_NEAR(estimator.value(), exact, std::max(0.5, exact * 0.03))
      << "q=" << c.q << " dist=" << c.distribution;
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, P2AccuracySweep,
    ::testing::Values(P2Case{0.05, 0}, P2Case{0.25, 0}, P2Case{0.5, 0},
                      P2Case{0.75, 0}, P2Case{0.95, 0}, P2Case{0.5, 1},
                      P2Case{0.95, 1}, P2Case{0.5, 2}, P2Case{0.95, 2},
                      P2Case{0.99, 2}));

TEST(P2Quantile, MonotoneIncreasingStreamTracksTail) {
  P2Quantile q(0.95);
  for (int i = 1; i <= 10000; ++i) q.add(static_cast<double>(i));
  // Exact P95 of 1..10000 is ~9500.
  EXPECT_NEAR(q.value(), 9500.0, 200.0);
}

TEST(P2Quantile, ConstantStreamIsExact) {
  P2Quantile q(0.95);
  for (int i = 0; i < 1000; ++i) q.add(8.25);
  EXPECT_DOUBLE_EQ(q.value(), 8.25);
}

TEST(P2Quantile, ConstantStreamsStayFiniteAcrossQuantiles) {
  // Regression: degenerate marker spacing in the parabolic update must not
  // divide by zero (NaN would poison every later estimate).
  for (const double quantile : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    P2Quantile q(quantile);
    for (int i = 0; i < 5000; ++i) q.add(3.5);
    EXPECT_TRUE(std::isfinite(q.value())) << "q=" << quantile;
    EXPECT_DOUBLE_EQ(q.value(), 3.5) << "q=" << quantile;
  }
}

TEST(P2Quantile, ConstantThenStepStreamStaysBracketed) {
  P2Quantile q(0.5);
  for (int i = 0; i < 500; ++i) q.add(5.0);
  for (int i = 0; i < 1500; ++i) q.add(6.0);
  EXPECT_TRUE(std::isfinite(q.value()));
  EXPECT_GE(q.value(), 5.0);
  EXPECT_LE(q.value(), 6.0);
}

TEST(P2Quantile, FewSamplePrefixIsKeptSorted) {
  // Regression: value() used to copy + sort the buffer on every call; the
  // prefix is now kept sorted by add(), and repeated const calls agree.
  P2Quantile q(0.5);
  q.add(9.0);
  q.add(1.0);
  q.add(5.0);
  q.add(3.0);
  EXPECT_DOUBLE_EQ(q.value(), 4.0);  // exact median of {1,3,5,9}
  EXPECT_DOUBLE_EQ(q.value(), 4.0);  // and stable across calls
  q.add(7.0);                        // fifth sample switches to P² markers
  EXPECT_DOUBLE_EQ(q.value(), 5.0);
}

TEST(P2Quantile, TwoLevelStreamLandsOnUpperLevelForP95) {
  // 90% of mass at 1.0, 10% at 10.0: P95 must be near 10.
  P2Quantile q(0.95);
  std::mt19937_64 rng(1);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  for (int i = 0; i < 20000; ++i) q.add(u(rng) < 0.9 ? 1.0 : 10.0);
  EXPECT_GT(q.value(), 8.0);
}

}  // namespace
}  // namespace headroom::stats
