#include "stats/ransac.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

namespace headroom::stats {
namespace {

TEST(Ransac, CleanDataMatchesLeastSquares) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 50; ++i) {
    const double x = static_cast<double>(i);
    xs.push_back(x);
    ys.push_back(0.004 * x * x - 0.2 * x + 40.0);
  }
  RansacOptions opt;
  opt.inlier_threshold = 0.5;
  const RansacResult r = fit_ransac(xs, ys, opt);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.inliers.size(), xs.size());
  EXPECT_NEAR(r.fit.coeffs[2], 0.004, 1e-6);
  EXPECT_NEAR(r.fit.coeffs[1], -0.2, 1e-4);
  EXPECT_NEAR(r.fit.coeffs[0], 40.0, 1e-3);
}

TEST(Ransac, IgnoresGrossOutliers) {
  // The paper's motivation: deployment windows contaminate experiment data
  // with unrelated latency spikes; RANSAC must recover the true curve.
  std::mt19937_64 rng(7);
  std::normal_distribution<double> noise(0.0, 0.2);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 200; ++i) {
    const double x = static_cast<double>(i) / 2.0;
    xs.push_back(x);
    double y = 0.01 * x * x - 0.3 * x + 25.0 + noise(rng);
    if (i % 10 == 0) y += 40.0;  // 10% contamination
    ys.push_back(y);
  }
  RansacOptions opt;
  opt.inlier_threshold = 1.0;
  opt.iterations = 400;
  const RansacResult r = fit_ransac(xs, ys, opt);
  EXPECT_NEAR(r.fit.coeffs[2], 0.01, 5e-4);
  EXPECT_NEAR(r.fit.coeffs[1], -0.3, 0.05);
  EXPECT_NEAR(r.fit.coeffs[0], 25.0, 1.0);
  // Roughly the 90% clean points should be inliers.
  EXPECT_GT(r.inliers.size(), 160u);
  EXPECT_LT(r.inliers.size(), 195u);
}

TEST(Ransac, PlainFitWouldBeBiasedByOutliers) {
  // Control for the test above: the non-robust fit IS pulled upward.
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 100; ++i) {
    const double x = static_cast<double>(i);
    xs.push_back(x);
    ys.push_back(10.0 + (i % 10 == 0 ? 50.0 : 0.0));
  }
  const PolynomialFit plain = fit_polynomial(xs, ys, 2);
  EXPECT_GT(plain.coeffs[0], 11.0);  // biased intercept

  RansacOptions opt;
  opt.inlier_threshold = 0.5;
  const RansacResult robust = fit_ransac(xs, ys, opt);
  EXPECT_NEAR(robust.fit.predict(50.0), 10.0, 0.2);
}

TEST(Ransac, TooFewPointsFallsBackUnconverged) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const std::vector<double> ys = {1.0, 4.0, 9.0};
  RansacOptions opt;
  opt.degree = 2;
  const RansacResult r = fit_ransac(xs, ys, opt);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.inliers.size(), 3u);
}

TEST(Ransac, MinInliersGateControlsConvergence) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 30; ++i) {
    xs.push_back(static_cast<double>(i));
    ys.push_back(static_cast<double>(i % 7) * 5.0);  // structureless
  }
  RansacOptions opt;
  opt.inlier_threshold = 0.01;
  opt.min_inliers = 25;
  const RansacResult r = fit_ransac(xs, ys, opt);
  EXPECT_FALSE(r.converged);
}

TEST(Ransac, DeterministicForFixedSeed) {
  std::vector<double> xs;
  std::vector<double> ys;
  std::mt19937_64 rng(3);
  std::normal_distribution<double> noise(0.0, 1.0);
  for (int i = 0; i < 80; ++i) {
    xs.push_back(static_cast<double>(i));
    ys.push_back(2.0 * static_cast<double>(i) + noise(rng) * 3.0);
  }
  RansacOptions opt;
  opt.degree = 1;
  opt.seed = 1234;
  const RansacResult a = fit_ransac(xs, ys, opt);
  const RansacResult b = fit_ransac(xs, ys, opt);
  ASSERT_EQ(a.fit.coeffs.size(), b.fit.coeffs.size());
  for (std::size_t i = 0; i < a.fit.coeffs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.fit.coeffs[i], b.fit.coeffs[i]);
  }
  EXPECT_EQ(a.inliers, b.inliers);
}

TEST(Ransac, SizeMismatchThrows) {
  const std::vector<double> xs = {1.0, 2.0};
  const std::vector<double> ys = {1.0};
  EXPECT_THROW((void)fit_ransac(xs, ys, RansacOptions{}), std::invalid_argument);
}

// Contamination sweep: the robust fit should hold up to ~40% outliers.
class ContaminationSweep : public ::testing::TestWithParam<double> {};

TEST_P(ContaminationSweep, RecoversLineUnderContamination) {
  const double rate = GetParam();
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::normal_distribution<double> noise(0.0, 0.1);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 300; ++i) {
    const double x = static_cast<double>(i) / 3.0;
    xs.push_back(x);
    ys.push_back(u(rng) < rate ? 500.0 * u(rng)
                               : 1.5 * x + 10.0 + noise(rng));
  }
  RansacOptions opt;
  opt.degree = 1;
  opt.inlier_threshold = 0.5;
  opt.iterations = 500;
  const RansacResult r = fit_ransac(xs, ys, opt);
  ASSERT_EQ(r.fit.coeffs.size(), 2u);
  EXPECT_NEAR(r.fit.coeffs[1], 1.5, 0.05) << "contamination=" << rate;
  EXPECT_NEAR(r.fit.coeffs[0], 10.0, 1.5) << "contamination=" << rate;
}

INSTANTIATE_TEST_SUITE_P(Rates, ContaminationSweep,
                         ::testing::Values(0.05, 0.15, 0.25, 0.40));

}  // namespace
}  // namespace headroom::stats
