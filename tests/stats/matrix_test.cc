#include "stats/matrix.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace headroom::stats {
namespace {

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 1.5);
  m.at(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m.at(0, 1), -2.0);
}

TEST(Matrix, AtThrowsOutOfRange) {
  Matrix m(2, 2);
  EXPECT_THROW((void)m.at(2, 0), std::out_of_range);
  EXPECT_THROW((void)m.at(0, 2), std::out_of_range);
}

TEST(Matrix, TransposeSwapsShape) {
  Matrix m(2, 3);
  m.at(0, 2) = 7.0;
  const Matrix t = m.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t.at(2, 0), 7.0);
}

TEST(Matrix, MultiplyIdentityIsNoop) {
  Matrix m(2, 2);
  m.at(0, 0) = 1.0;
  m.at(0, 1) = 2.0;
  m.at(1, 0) = 3.0;
  m.at(1, 1) = 4.0;
  const Matrix r = m.multiply(Matrix::identity(2));
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_DOUBLE_EQ(r.at(i, j), m.at(i, j));
    }
  }
}

TEST(Matrix, MultiplyKnownProduct) {
  Matrix a(2, 3);
  Matrix b(3, 1);
  // a = [1 2 3; 4 5 6], b = [1;2;3] => [14; 32]
  int v = 1;
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 3; ++j) a.at(i, j) = v++;
  }
  for (std::size_t i = 0; i < 3; ++i) b.at(i, 0) = static_cast<double>(i + 1);
  const Matrix c = a.multiply(b);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 14.0);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 32.0);
}

TEST(Matrix, MultiplyShapeMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_THROW(a.multiply(b), std::invalid_argument);
}

TEST(SolveLinearSystem, SolvesDiagonal) {
  Matrix a(2, 2);
  a.at(0, 0) = 2.0;
  a.at(1, 1) = 4.0;
  const auto x = solve_linear_system(a, {6.0, 8.0});
  ASSERT_TRUE(x.has_value());
  EXPECT_DOUBLE_EQ((*x)[0], 3.0);
  EXPECT_DOUBLE_EQ((*x)[1], 2.0);
}

TEST(SolveLinearSystem, RequiresPivoting) {
  // Zero on the diagonal forces a row swap.
  Matrix a(2, 2);
  a.at(0, 0) = 0.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 0.0;
  const auto x = solve_linear_system(a, {5.0, 7.0});
  ASSERT_TRUE(x.has_value());
  EXPECT_DOUBLE_EQ((*x)[0], 7.0);
  EXPECT_DOUBLE_EQ((*x)[1], 5.0);
}

TEST(SolveLinearSystem, SingularReturnsNullopt) {
  Matrix a(2, 2);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 2.0;
  a.at(1, 1) = 4.0;  // rank 1
  EXPECT_FALSE(solve_linear_system(a, {1.0, 2.0}).has_value());
}

TEST(SolveLinearSystem, ThreeByThreeKnownSolution) {
  Matrix a(3, 3);
  const double rows[3][3] = {{2, 1, -1}, {-3, -1, 2}, {-2, 1, 2}};
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) a.at(i, j) = rows[i][j];
  }
  const auto x = solve_linear_system(a, {8.0, -11.0, -3.0});
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 2.0, 1e-10);
  EXPECT_NEAR((*x)[1], 3.0, 1e-10);
  EXPECT_NEAR((*x)[2], -1.0, 1e-10);
}

TEST(LeastSquares, ExactFitWhenSquare) {
  Matrix x(2, 2);
  x.at(0, 0) = 1.0;
  x.at(0, 1) = 0.0;
  x.at(1, 0) = 1.0;
  x.at(1, 1) = 1.0;
  const auto beta = least_squares(x, {2.0, 5.0});
  ASSERT_TRUE(beta.has_value());
  EXPECT_NEAR((*beta)[0], 2.0, 1e-10);
  EXPECT_NEAR((*beta)[1], 3.0, 1e-10);
}

TEST(LeastSquares, OverdeterminedMinimizesResidual) {
  // y = 2x fit over noisy-free overdetermined system: exact recovery.
  Matrix x(4, 1);
  std::vector<double> y(4);
  for (std::size_t i = 0; i < 4; ++i) {
    x.at(i, 0) = static_cast<double>(i + 1);
    y[i] = 2.0 * static_cast<double>(i + 1);
  }
  const auto beta = least_squares(x, y);
  ASSERT_TRUE(beta.has_value());
  EXPECT_NEAR((*beta)[0], 2.0, 1e-12);
}

TEST(LeastSquares, DuplicateColumnsAreSingular) {
  Matrix x(3, 2);
  for (std::size_t i = 0; i < 3; ++i) {
    x.at(i, 0) = static_cast<double>(i);
    x.at(i, 1) = static_cast<double>(i);
  }
  EXPECT_FALSE(least_squares(x, {0.0, 1.0, 2.0}).has_value());
}

TEST(LeastSquares, ShapeMismatchThrows) {
  Matrix x(3, 1);
  EXPECT_THROW((void)least_squares(x, {1.0, 2.0}), std::invalid_argument);
}

}  // namespace
}  // namespace headroom::stats
