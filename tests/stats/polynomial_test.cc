#include "stats/polynomial.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

namespace headroom::stats {
namespace {

std::vector<double> range(double lo, double hi, std::size_t n) {
  std::vector<double> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(lo + (hi - lo) * static_cast<double>(i) /
                           static_cast<double>(n - 1));
  }
  return out;
}

TEST(EvaluatePolynomial, HornerAscendingOrder) {
  const std::vector<double> coeffs = {1.0, 2.0, 3.0};  // 3x² + 2x + 1
  EXPECT_DOUBLE_EQ(evaluate_polynomial(coeffs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(evaluate_polynomial(coeffs, 2.0), 17.0);
}

TEST(EvaluatePolynomial, EmptyIsZero) {
  EXPECT_EQ(evaluate_polynomial({}, 3.0), 0.0);
}

TEST(FitPolynomial, RecoversPaperPoolBQuadratic) {
  // Fig. 9: y = 4.028e-5 x² - 0.031 x + 36.68 over the observed RPS range.
  const std::vector<double> xs = range(100.0, 700.0, 60);
  std::vector<double> ys;
  for (double x : xs) ys.push_back(4.028e-5 * x * x - 0.031 * x + 36.68);
  const PolynomialFit fit = fit_quadratic(xs, ys);
  ASSERT_EQ(fit.coeffs.size(), 3u);
  EXPECT_NEAR(fit.coeffs[2], 4.028e-5, 1e-9);
  EXPECT_NEAR(fit.coeffs[1], -0.031, 1e-6);
  EXPECT_NEAR(fit.coeffs[0], 36.68, 1e-4);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

TEST(FitPolynomial, RecoversPaperPoolDQuadratic) {
  // Fig. 11: y = 4.66e-3 x² - 0.80 x + 86.50.
  const std::vector<double> xs = range(10.0, 130.0, 40);
  std::vector<double> ys;
  for (double x : xs) ys.push_back(4.66e-3 * x * x - 0.80 * x + 86.50);
  const PolynomialFit fit = fit_quadratic(xs, ys);
  ASSERT_EQ(fit.coeffs.size(), 3u);
  EXPECT_NEAR(fit.coeffs[2], 4.66e-3, 1e-7);
  EXPECT_NEAR(fit.coeffs[1], -0.80, 1e-5);
  EXPECT_NEAR(fit.coeffs[0], 86.50, 1e-3);
}

TEST(FitPolynomial, VertexOfPoolDQuadratic) {
  PolynomialFit fit;
  fit.coeffs = {86.50, -0.80, 4.66e-3};
  // Vertex at -b/2a = 0.80 / (2*4.66e-3) ≈ 85.8 RPS — the latency minimum.
  EXPECT_NEAR(fit.vertex_x(), 85.84, 0.05);
}

TEST(FitPolynomial, VertexOfNonQuadraticIsZero) {
  PolynomialFit fit;
  fit.coeffs = {1.0, 2.0};
  EXPECT_EQ(fit.vertex_x(), 0.0);
}

TEST(FitPolynomial, DegreeZeroIsMean) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const std::vector<double> ys = {4.0, 6.0, 8.0};
  const PolynomialFit fit = fit_polynomial(xs, ys, 0);
  ASSERT_EQ(fit.coeffs.size(), 1u);
  EXPECT_DOUBLE_EQ(fit.coeffs[0], 6.0);
}

TEST(FitPolynomial, InsufficientPointsFallsBackToConstant) {
  const std::vector<double> xs = {1.0, 2.0};
  const std::vector<double> ys = {3.0, 5.0};
  const PolynomialFit fit = fit_polynomial(xs, ys, 2);  // needs 3 points
  ASSERT_EQ(fit.coeffs.size(), 1u);
  EXPECT_DOUBLE_EQ(fit.coeffs[0], 4.0);
}

TEST(FitPolynomial, AllEqualXFallsBackToConstant) {
  const std::vector<double> xs = {2.0, 2.0, 2.0, 2.0};
  const std::vector<double> ys = {1.0, 3.0, 5.0, 7.0};
  const PolynomialFit fit = fit_polynomial(xs, ys, 2);
  ASSERT_EQ(fit.coeffs.size(), 1u);
  EXPECT_DOUBLE_EQ(fit.coeffs[0], 4.0);
}

TEST(FitPolynomial, SizeMismatchThrows) {
  const std::vector<double> xs = {1.0};
  const std::vector<double> ys = {1.0, 2.0};
  EXPECT_THROW((void)fit_polynomial(xs, ys, 1), std::invalid_argument);
}

TEST(FitPolynomial, WellConditionedAtLargeXOffsets) {
  // Raw normal equations on x ∈ [1e6, 1e6+100] would be hopeless; the
  // internal standardization must keep the fit exact.
  const std::vector<double> xs = range(1e6, 1e6 + 100.0, 30);
  std::vector<double> ys;
  for (double x : xs) {
    const double u = x - 1e6;
    ys.push_back(0.5 * u * u - 3.0 * u + 10.0);
  }
  const PolynomialFit fit = fit_quadratic(xs, ys);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_NEAR(fit.predict(xs[i]), ys[i], 1e-4);
  }
  EXPECT_GT(fit.r_squared, 0.999999);
}

// Degree sweep: an exact degree-k polynomial is recovered by any fit of
// degree >= k.
class DegreeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DegreeSweep, ExactRecoveryAtOrAboveTrueDegree) {
  const std::size_t fit_degree = GetParam();
  const std::vector<double> xs = range(-5.0, 5.0, 41);
  std::vector<double> ys;
  for (double x : xs) ys.push_back(2.0 * x * x - x + 3.0);  // true degree 2
  const PolynomialFit fit = fit_polynomial(xs, ys, fit_degree);
  for (double x : {-4.0, 0.0, 2.5}) {
    EXPECT_NEAR(fit.predict(x), 2.0 * x * x - x + 3.0, 1e-6)
        << "degree=" << fit_degree;
  }
}

INSTANTIATE_TEST_SUITE_P(Degrees, DegreeSweep, ::testing::Values(2u, 3u, 4u));

TEST(FitPolynomial, NoisyQuadraticCloseToTruth) {
  std::mt19937_64 rng(23);
  std::normal_distribution<double> noise(0.0, 0.5);
  const std::vector<double> xs = range(0.0, 100.0, 200);
  std::vector<double> ys;
  for (double x : xs) ys.push_back(0.01 * x * x - 0.5 * x + 30.0 + noise(rng));
  const PolynomialFit fit = fit_quadratic(xs, ys);
  EXPECT_NEAR(fit.coeffs[2], 0.01, 2e-4);
  EXPECT_NEAR(fit.coeffs[1], -0.5, 0.02);
  EXPECT_NEAR(fit.coeffs[0], 30.0, 0.5);
}

}  // namespace
}  // namespace headroom::stats
