#include "stats/histogram.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace headroom::stats {
namespace {

TEST(Histogram, RejectsDegenerateConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, BinEdgesAreEqualWidth) {
  Histogram h(0.0, 100.0, 10);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(9), 90.0);
  EXPECT_DOUBLE_EQ(h.bin_center(4), 45.0);
}

TEST(Histogram, CountsLandInCorrectBins) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(5.5);
  h.add(5.9);
  h.add(9.99);
  EXPECT_EQ(h.count_in_bin(0), 1u);
  EXPECT_EQ(h.count_in_bin(5), 2u);
  EXPECT_EQ(h.count_in_bin(9), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, MergeSumsCountsBinByBin) {
  Histogram a(0.0, 10.0, 5);
  Histogram b(0.0, 10.0, 5);
  a.add(1.0);
  a.add(9.0);
  b.add(1.5);
  b.add(5.0);
  a.merge(b);
  EXPECT_EQ(a.total(), 4u);
  EXPECT_EQ(a.count_in_bin(0), 2u);
  EXPECT_EQ(a.count_in_bin(2), 1u);
  EXPECT_EQ(a.count_in_bin(4), 1u);
  EXPECT_EQ(b.total(), 2u);  // source untouched
}

TEST(Histogram, MergeRejectsMismatchedBinning) {
  Histogram a(0.0, 10.0, 5);
  const Histogram different_bins(0.0, 10.0, 10);
  const Histogram different_range(0.0, 20.0, 5);
  EXPECT_THROW(a.merge(different_bins), std::invalid_argument);
  EXPECT_THROW(a.merge(different_range), std::invalid_argument);
}

TEST(Histogram, ResetZeroesCountsKeepsBinning) {
  Histogram h(0.0, 10.0, 5);
  h.add(2.0);
  h.add(7.0);
  h.reset();
  EXPECT_EQ(h.total(), 0u);
  for (std::size_t i = 0; i < h.bin_count(); ++i) {
    EXPECT_EQ(h.count_in_bin(i), 0u);
  }
  h.add(2.0);
  EXPECT_EQ(h.count_in_bin(1), 1u);
}

TEST(Histogram, OutOfRangeValuesClampToEdgeBins) {
  Histogram h(0.0, 10.0, 5);
  h.add(-3.0);
  h.add(42.0);
  EXPECT_EQ(h.count_in_bin(0), 1u);
  EXPECT_EQ(h.count_in_bin(4), 1u);
  EXPECT_EQ(h.total(), 2u);  // no mass silently dropped
}

TEST(Histogram, FractionsSumToOne) {
  Histogram h(0.0, 1.0, 4);
  for (double x : {0.1, 0.3, 0.6, 0.9, 0.95}) h.add(x);
  double sum = 0.0;
  for (std::size_t i = 0; i < h.bin_count(); ++i) sum += h.fraction(i);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Histogram, FractionAboveAndBelowArePartition) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i) + 0.5);
  EXPECT_NEAR(h.fraction_above(25.0), 0.74, 1e-9);
  EXPECT_NEAR(h.fraction_at_or_below(25.0) + h.fraction_above(25.0), 1.0,
              1e-12);
}

TEST(Histogram, EmptyHistogramFractionsAreZero) {
  Histogram h(0.0, 1.0, 3);
  EXPECT_EQ(h.fraction(1), 0.0);
  EXPECT_EQ(h.fraction_above(0.5), 0.0);
}

TEST(Histogram, CdfIsMonotoneAndEndsAtOne) {
  Histogram h(0.0, 10.0, 10);
  for (double x : {1.0, 2.0, 3.0, 7.0, 8.5, 9.5}) h.add(x);
  const std::vector<double> cdf = h.cdf();
  ASSERT_EQ(cdf.size(), 10u);
  for (std::size_t i = 1; i < cdf.size(); ++i) EXPECT_GE(cdf[i], cdf[i - 1]);
  EXPECT_DOUBLE_EQ(cdf.back(), 1.0);
}

TEST(Histogram, AddAllMatchesLoop) {
  const std::vector<double> xs = {0.1, 0.2, 0.7, 0.8};
  Histogram a(0.0, 1.0, 4);
  Histogram b(0.0, 1.0, 4);
  a.add_all(xs);
  for (double x : xs) b.add(x);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(a.count_in_bin(i), b.count_in_bin(i));
  }
}

TEST(EmpiricalCdf, CollapsesDuplicatesToHighestFraction) {
  const std::vector<double> xs = {1.0, 1.0, 2.0};
  const auto cdf = empirical_cdf(xs);
  ASSERT_EQ(cdf.size(), 2u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 1.0);
  EXPECT_NEAR(cdf[0].fraction, 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(cdf[1].value, 2.0);
  EXPECT_DOUBLE_EQ(cdf[1].fraction, 1.0);
}

TEST(EmpiricalCdf, EmptyInputYieldsEmptyCurve) {
  EXPECT_TRUE(empirical_cdf({}).empty());
}

TEST(EmpiricalCdf, SortedAndMonotone) {
  const std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
  const auto cdf = empirical_cdf(xs);
  ASSERT_EQ(cdf.size(), 5u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GT(cdf[i].value, cdf[i - 1].value);
    EXPECT_GT(cdf[i].fraction, cdf[i - 1].fraction);
  }
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
}

}  // namespace
}  // namespace headroom::stats
