#include "stats/descriptive.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

namespace headroom::stats {
namespace {

TEST(Descriptive, MeanOfEmptyIsZero) {
  EXPECT_EQ(mean({}), 0.0);
}

TEST(Descriptive, MeanOfConstants) {
  const std::vector<double> xs(17, 3.5);
  EXPECT_DOUBLE_EQ(mean(xs), 3.5);
}

TEST(Descriptive, MeanSimple) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Descriptive, VarianceIsUnbiasedSample) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // Sum of squared deviations = 32; n-1 = 7.
  EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);
}

TEST(Descriptive, VarianceOfSinglePointIsZero) {
  const std::vector<double> xs = {42.0};
  EXPECT_EQ(variance(xs), 0.0);
}

TEST(Descriptive, StddevMatchesVariance) {
  const std::vector<double> xs = {1.0, 3.0, 5.0, 7.0};
  EXPECT_DOUBLE_EQ(stddev(xs), std::sqrt(variance(xs)));
}

TEST(Descriptive, SummaryTracksMinMaxCount) {
  const std::vector<double> xs = {-2.0, 7.5, 0.0, 3.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.min, -2.0);
  EXPECT_DOUBLE_EQ(s.max, 7.5);
  EXPECT_DOUBLE_EQ(s.mean, 2.125);
}

TEST(RunningStats, EmptyAccumulatorIsAllZero) {
  RunningStats acc;
  EXPECT_TRUE(acc.empty());
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
  EXPECT_EQ(acc.min(), 0.0);
  EXPECT_EQ(acc.max(), 0.0);
}

TEST(RunningStats, MatchesBatchComputation) {
  std::mt19937_64 rng(7);
  std::normal_distribution<double> dist(10.0, 3.0);
  std::vector<double> xs;
  RunningStats acc;
  for (int i = 0; i < 1000; ++i) {
    const double x = dist(rng);
    xs.push_back(x);
    acc.add(x);
  }
  const Summary batch = summarize(xs);
  EXPECT_NEAR(acc.mean(), batch.mean, 1e-9);
  EXPECT_NEAR(acc.variance(), batch.variance, 1e-9);
  EXPECT_DOUBLE_EQ(acc.min(), batch.min);
  EXPECT_DOUBLE_EQ(acc.max(), batch.max);
}

TEST(RunningStats, MergeEqualsConcatenation) {
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> dist(0.0, 100.0);
  RunningStats a;
  RunningStats b;
  std::vector<double> all;
  for (int i = 0; i < 500; ++i) {
    const double x = dist(rng);
    (i % 3 == 0 ? a : b).add(x);
    all.push_back(x);
  }
  a.merge(b);
  const Summary batch = summarize(all);
  EXPECT_EQ(a.count(), 500u);
  EXPECT_NEAR(a.mean(), batch.mean, 1e-9);
  EXPECT_NEAR(a.variance(), batch.variance, 1e-9);
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);

  RunningStats c;
  c.merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), 1.5);
}

TEST(RunningStats, SumIsMeanTimesCount) {
  RunningStats acc;
  for (double x : {1.0, 2.0, 3.0, 4.5}) acc.add(x);
  EXPECT_NEAR(acc.sum(), 10.5, 1e-12);
}

TEST(RunningStats, ResetClears) {
  RunningStats acc;
  acc.add(5.0);
  acc.reset();
  EXPECT_TRUE(acc.empty());
  EXPECT_EQ(acc.mean(), 0.0);
}

// Welford must stay numerically stable for large offsets — a classic
// failure of the naive sum-of-squares formula.
TEST(RunningStats, NumericallyStableWithLargeOffset) {
  RunningStats acc;
  const double offset = 1e9;
  for (int i = 0; i < 1000; ++i) {
    acc.add(offset + static_cast<double>(i % 2));
  }
  EXPECT_NEAR(acc.variance(), 0.25 * 1000.0 / 999.0, 1e-6);
}

// --- Degenerate-input edges -------------------------------------------------
// The health layer summarizes whatever a degraded window leaves behind,
// which can legitimately be nothing or a single sample.

TEST(Descriptive, SummarizeEmptySpanIsAllZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.variance, 0.0);
  EXPECT_EQ(s.stddev, 0.0);
  EXPECT_EQ(s.min, 0.0);
  EXPECT_EQ(s.max, 0.0);
}

TEST(Descriptive, VarianceAndStddevOfEmptyAndSingletonAreZero) {
  EXPECT_EQ(variance({}), 0.0);
  EXPECT_EQ(stddev({}), 0.0);
  const double one[] = {42.0};
  EXPECT_EQ(variance(one), 0.0);
  EXPECT_EQ(stddev(one), 0.0);
}

TEST(Descriptive, SummarizeSinglePointCollapsesTheRange) {
  const double one[] = {-7.5};
  const Summary s = summarize(one);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, -7.5);
  EXPECT_EQ(s.variance, 0.0);
  EXPECT_DOUBLE_EQ(s.min, -7.5);
  EXPECT_DOUBLE_EQ(s.max, -7.5);
}

TEST(Descriptive, SummarizeConstantSeriesHasZeroSpread) {
  const std::vector<double> flat(17, 3.25);
  const Summary s = summarize(flat);
  EXPECT_EQ(s.count, 17u);
  EXPECT_DOUBLE_EQ(s.mean, 3.25);
  EXPECT_EQ(s.variance, 0.0);
  EXPECT_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 3.25);
  EXPECT_DOUBLE_EQ(s.max, 3.25);
}

}  // namespace
}  // namespace headroom::stats
