#include "stats/correlation.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

namespace headroom::stats {
namespace {

TEST(Pearson, PerfectPositive) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys = {2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
}

TEST(Pearson, PerfectNegative) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const std::vector<double> ys = {3.0, 2.0, 1.0};
  EXPECT_NEAR(pearson(xs, ys), -1.0, 1e-12);
}

TEST(Pearson, ZeroVarianceIsZero) {
  const std::vector<double> xs = {1.0, 1.0, 1.0};
  const std::vector<double> ys = {1.0, 2.0, 3.0};
  EXPECT_EQ(pearson(xs, ys), 0.0);
}

TEST(Pearson, FewerThanTwoPointsIsZero) {
  const std::vector<double> xs = {1.0};
  const std::vector<double> ys = {2.0};
  EXPECT_EQ(pearson(xs, ys), 0.0);
}

TEST(Pearson, SizeMismatchThrows) {
  const std::vector<double> xs = {1.0, 2.0};
  const std::vector<double> ys = {1.0};
  EXPECT_THROW((void)pearson(xs, ys), std::invalid_argument);
}

TEST(Pearson, UncorrelatedNearZero) {
  std::mt19937_64 rng(31);
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 5000; ++i) {
    xs.push_back(dist(rng));
    ys.push_back(dist(rng));
  }
  EXPECT_NEAR(pearson(xs, ys), 0.0, 0.05);
}

TEST(Pearson, InvariantToAffineTransforms) {
  const std::vector<double> xs = {1.0, 4.0, 2.0, 8.0, 5.0};
  const std::vector<double> ys = {2.0, 3.0, 2.5, 6.0, 4.0};
  std::vector<double> xs2;
  std::vector<double> ys2;
  for (double x : xs) xs2.push_back(3.0 * x + 7.0);
  for (double y : ys) ys2.push_back(0.5 * y - 2.0);
  EXPECT_NEAR(pearson(xs, ys), pearson(xs2, ys2), 1e-12);
}

TEST(Spearman, MonotoneNonlinearIsOne) {
  // Spearman sees through monotone nonlinearity; Pearson does not.
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 1; i <= 30; ++i) {
    xs.push_back(static_cast<double>(i));
    ys.push_back(std::exp(0.3 * static_cast<double>(i)));
  }
  EXPECT_NEAR(spearman(xs, ys), 1.0, 1e-12);
  EXPECT_LT(pearson(xs, ys), 0.95);
}

TEST(Spearman, HandlesTiesWithAverageRanks) {
  const std::vector<double> xs = {1.0, 2.0, 2.0, 3.0};
  const std::vector<double> ys = {10.0, 20.0, 20.0, 30.0};
  EXPECT_NEAR(spearman(xs, ys), 1.0, 1e-12);
}

TEST(Spearman, PerfectNegativeMonotone) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 20; ++i) {
    xs.push_back(static_cast<double>(i));
    ys.push_back(1.0 / (1.0 + static_cast<double>(i)));
  }
  EXPECT_NEAR(spearman(xs, ys), -1.0, 1e-12);
}

TEST(Spearman, SizeMismatchThrows) {
  const std::vector<double> xs = {1.0, 2.0};
  const std::vector<double> ys = {1.0};
  EXPECT_THROW((void)spearman(xs, ys), std::invalid_argument);
}

}  // namespace
}  // namespace headroom::stats
