// RollingOls / linear_fit_from_sums: the running-sum OLS shared by
// core::RollingPoolPlanner and ml::TrendSeasonDecomposition.
#include "stats/rolling_ols.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace headroom::stats {
namespace {

TEST(LinearFitFromSums, DegeneratesToFlatMean) {
  // Fewer than 2 points: flat fit through the mean.
  const LinearFit empty = linear_fit_from_sums(0, 0, 0, 0, 0, 0);
  EXPECT_DOUBLE_EQ(empty.slope, 0.0);
  EXPECT_DOUBLE_EQ(empty.intercept, 0.0);
  EXPECT_DOUBLE_EQ(empty.r_squared, 0.0);

  const LinearFit one = linear_fit_from_sums(1, 2.0, 4.0, 7.0, 14.0, 49.0);
  EXPECT_DOUBLE_EQ(one.slope, 0.0);
  EXPECT_DOUBLE_EQ(one.intercept, 7.0);

  // Zero x-variance (all x equal): flat fit through the y mean.
  const LinearFit flat = linear_fit_from_sums(2, 4.0, 8.0, 10.0, 20.0, 58.0);
  EXPECT_DOUBLE_EQ(flat.slope, 0.0);
  EXPECT_DOUBLE_EQ(flat.intercept, 5.0);
}

TEST(LinearFitFromSums, ExactLine) {
  // y = 3x + 1 over x = 0, 1, 2: sums by hand.
  const LinearFit fit =
      linear_fit_from_sums(3, 3.0, 5.0, 12.0, 18.0, 66.0);
  EXPECT_DOUBLE_EQ(fit.slope, 3.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 1.0);
  EXPECT_DOUBLE_EQ(fit.r_squared, 1.0);
  EXPECT_DOUBLE_EQ(fit.predict(10.0), 31.0);
}

TEST(RollingOls, RejectsZeroLookback) {
  EXPECT_THROW(RollingOls{0}, std::invalid_argument);
}

TEST(RollingOls, FitsALineIncrementally) {
  RollingOls ols(100);
  EXPECT_EQ(ols.size(), 0u);
  for (int i = 0; i < 50; ++i) {
    ols.add(static_cast<double>(i), 2.0 * i + 5.0);
  }
  EXPECT_EQ(ols.size(), 50u);
  const LinearFit fit = ols.fit();
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 5.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(RollingOls, EvictionForgetsOldRegime) {
  // First a flat regime, then a steep one; with the ring sized to the
  // second regime only, the fit must match the second line exactly.
  RollingOls ols(10);
  for (int i = 0; i < 25; ++i) ols.add(static_cast<double>(i), 3.0);
  for (int i = 25; i < 40; ++i) {
    ols.add(static_cast<double>(i), 10.0 * i - 100.0);
  }
  EXPECT_EQ(ols.size(), 10u);
  const LinearFit fit = ols.fit();
  EXPECT_NEAR(fit.slope, 10.0, 1e-6);
  EXPECT_NEAR(fit.intercept, -100.0, 1e-4);
}

TEST(RollingOls, MatchesBatchFitAfterManyEvictions) {
  // Drift control: after thousands of evictions (with periodic rebuilds)
  // the running sums must still agree with a from-scratch fit over the
  // ring's exact contents.
  const std::size_t lookback = 64;
  RollingOls ols(lookback);
  std::vector<double> xs, ys;
  std::uint64_t state = 42;
  for (int i = 0; i < 5000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const double y = 0.7 * i + static_cast<double>(state >> 48) / 1000.0;
    ols.add(static_cast<double>(i), y);
    xs.push_back(static_cast<double>(i));
    ys.push_back(y);
  }
  EXPECT_GT(ols.rebuilds(), 0u);

  double sx = 0, sx2 = 0, sy = 0, sxy = 0, sy2 = 0;
  for (std::size_t i = xs.size() - lookback; i < xs.size(); ++i) {
    sx += xs[i];
    sx2 += xs[i] * xs[i];
    sy += ys[i];
    sxy += xs[i] * ys[i];
    sy2 += ys[i] * ys[i];
  }
  const LinearFit batch = linear_fit_from_sums(lookback, sx, sx2, sy, sxy, sy2);
  const LinearFit rolling = ols.fit();
  EXPECT_NEAR(rolling.slope, batch.slope, 1e-9);
  EXPECT_NEAR(rolling.intercept, batch.intercept, 1e-6);
}

}  // namespace
}  // namespace headroom::stats
