#include "stats/linear_model.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

namespace headroom::stats {
namespace {

TEST(FitLinear, RecoversExactLine) {
  const std::vector<double> xs = {0.0, 1.0, 2.0, 3.0};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(0.028 * x + 1.37);  // pool B's line
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, 0.028, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.37, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_EQ(fit.n, 4u);
}

TEST(FitLinear, SizeMismatchThrows) {
  const std::vector<double> xs = {1.0, 2.0};
  const std::vector<double> ys = {1.0};
  EXPECT_THROW((void)fit_linear(xs, ys), std::invalid_argument);
}

TEST(FitLinear, FewerThanTwoPointsIsFlat) {
  const std::vector<double> one_x = {5.0};
  const std::vector<double> one_y = {9.0};
  const LinearFit fit = fit_linear(one_x, one_y);
  EXPECT_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 9.0);
}

TEST(FitLinear, ZeroXVarianceIsFlatThroughMean) {
  const std::vector<double> xs = {2.0, 2.0, 2.0};
  const std::vector<double> ys = {1.0, 2.0, 3.0};
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 2.0);
  EXPECT_EQ(fit.r_squared, 0.0);
}

TEST(FitLinear, NoisyFitHasReasonableRSquared) {
  std::mt19937_64 rng(13);
  std::normal_distribution<double> noise(0.0, 0.5);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 500; ++i) {
    const double x = static_cast<double>(i) / 5.0;
    xs.push_back(x);
    ys.push_back(3.0 * x + 1.0 + noise(rng));
  }
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 0.05);
  EXPECT_NEAR(fit.intercept, 1.0, 0.2);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(FitLinear, PredictEvaluatesLine) {
  LinearFit fit;
  fit.slope = 2.0;
  fit.intercept = -1.0;
  EXPECT_DOUBLE_EQ(fit.predict(3.0), 5.0);
}

TEST(FitLinear, NegativeSlopeRecovered) {
  const std::vector<double> xs = {0.0, 1.0, 2.0};
  const std::vector<double> ys = {4.0, 2.0, 0.0};
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, -2.0, 1e-12);
}

TEST(RSquared, PerfectPredictionIsOne) {
  const std::vector<double> ys = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(r_squared(ys, ys), 1.0);
}

TEST(RSquared, MeanPredictionIsZero) {
  const std::vector<double> ys = {1.0, 2.0, 3.0};
  const std::vector<double> preds = {2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(r_squared(ys, preds), 0.0);
}

TEST(RSquared, WorseThanMeanIsNegative) {
  const std::vector<double> ys = {1.0, 2.0, 3.0};
  const std::vector<double> preds = {3.0, 2.0, 1.0};  // anti-correlated
  EXPECT_LT(r_squared(ys, preds), 0.0);
}

TEST(RSquared, ZeroVarianceTargetsReturnZero) {
  const std::vector<double> ys = {2.0, 2.0};
  const std::vector<double> preds = {1.0, 3.0};
  EXPECT_EQ(r_squared(ys, preds), 0.0);
}

// Noise sweep: R² should fall as noise grows relative to signal.
class RSquaredNoiseSweep : public ::testing::TestWithParam<double> {};

TEST_P(RSquaredNoiseSweep, DecreasesWithNoise) {
  const double sigma = GetParam();
  std::mt19937_64 rng(17);
  std::normal_distribution<double> noise(0.0, sigma);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 2000; ++i) {
    const double x = static_cast<double>(i % 100);
    xs.push_back(x);
    ys.push_back(x + noise(rng));
  }
  const LinearFit fit = fit_linear(xs, ys);
  // Theoretical R² = var_signal / (var_signal + sigma²); var of 0..99 ≈ 833.
  const double expected = 833.25 / (833.25 + sigma * sigma);
  EXPECT_NEAR(fit.r_squared, expected, 0.02) << "sigma=" << sigma;
}

INSTANTIATE_TEST_SUITE_P(Noise, RSquaredNoiseSweep,
                         ::testing::Values(1.0, 5.0, 15.0, 30.0, 60.0));

}  // namespace
}  // namespace headroom::stats
