#include "baseline/queueing.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace headroom::baseline {
namespace {

TEST(ErlangB, KnownValues) {
  // Classic reference values: B(a=1, c=1) = 1/2; B(2, 2) = 0.4.
  EXPECT_NEAR(erlang_b(1.0, 1), 0.5, 1e-12);
  EXPECT_NEAR(erlang_b(2.0, 2), 0.4, 1e-12);
  // B(10 Erlang, 10 trunks) ≈ 0.215.
  EXPECT_NEAR(erlang_b(10.0, 10), 0.215, 0.001);
}

TEST(ErlangB, ZeroLoadZeroBlocking) {
  EXPECT_DOUBLE_EQ(erlang_b(0.0, 5), 0.0);
}

TEST(ErlangB, ZeroServersAlwaysBlocks) {
  EXPECT_DOUBLE_EQ(erlang_b(1.0, 0), 1.0);
}

TEST(ErlangB, NegativeLoadThrows) {
  EXPECT_THROW((void)erlang_b(-1.0, 5), std::invalid_argument);
}

TEST(ErlangB, MonotoneInLoadAndServers) {
  EXPECT_LT(erlang_b(5.0, 10), erlang_b(8.0, 10));
  EXPECT_GT(erlang_b(5.0, 5), erlang_b(5.0, 10));
}

TEST(ErlangC, KnownValues) {
  // C(a=2, c=3): B = 0.2105..., C = B / (1 - rho(1-B)) with rho=2/3.
  const double b = erlang_b(2.0, 3);
  const double expected = b / (1.0 - (2.0 / 3.0) * (1.0 - b));
  EXPECT_NEAR(erlang_c(2.0, 3), expected, 1e-12);
  EXPECT_NEAR(erlang_c(2.0, 3), 0.4444, 0.001);
}

TEST(ErlangC, UnstableSystemWaitsCertainly) {
  EXPECT_DOUBLE_EQ(erlang_c(5.0, 5), 1.0);
  EXPECT_DOUBLE_EQ(erlang_c(6.0, 5), 1.0);
}

TEST(ErlangC, ExceedsErlangB) {
  // Queueing (C) probability >= blocking (B) probability for stable systems.
  for (double a : {1.0, 3.0, 7.0}) {
    EXPECT_GE(erlang_c(a, 10), erlang_b(a, 10));
  }
}

TEST(MMc, MeanWaitMatchesMM1ClosedForm) {
  // c=1: W_q = rho / (mu - lambda) * ... classic: Wq = lambda/(mu(mu-lambda)).
  const double lambda = 0.5;
  const double mu = 1.0;
  EXPECT_NEAR(mm_c_mean_wait_s(lambda, mu, 1),
              lambda / (mu * (mu - lambda)), 1e-12);
}

TEST(MMc, SojournIsWaitPlusService) {
  EXPECT_NEAR(mm_c_mean_sojourn_s(0.5, 1.0, 1),
              mm_c_mean_wait_s(0.5, 1.0, 1) + 1.0, 1e-12);
}

TEST(MMc, UnstableIsInfinite) {
  EXPECT_TRUE(std::isinf(mm_c_mean_wait_s(10.0, 1.0, 5)));
  EXPECT_TRUE(std::isinf(mm_c_p95_sojourn_s(10.0, 1.0, 5)));
}

TEST(MMc, ZeroArrivalsZeroWait) {
  EXPECT_DOUBLE_EQ(mm_c_mean_wait_s(0.0, 1.0, 4), 0.0);
}

TEST(MMc, MoreServersLessWait) {
  EXPECT_GT(mm_c_mean_wait_s(3.0, 1.0, 4), mm_c_mean_wait_s(3.0, 1.0, 8));
}

TEST(MMc, P95SojournAboveMeanSojourn) {
  for (std::size_t c : {2u, 8u, 32u}) {
    const double lambda = 0.7 * static_cast<double>(c);
    EXPECT_GT(mm_c_p95_sojourn_s(lambda, 1.0, c),
              mm_c_mean_sojourn_s(lambda, 1.0, c));
  }
}

TEST(MMc, LightLoadP95ApproachesServiceQuantile) {
  // At negligible load nobody waits: P95 sojourn ≈ -ln(0.05)/mu ≈ 3/mu.
  EXPECT_NEAR(mm_c_p95_sojourn_s(0.001, 1.0, 16), -std::log(0.05), 0.01);
}

TEST(MMc, BadRatesThrow) {
  EXPECT_THROW((void)mm_c_mean_wait_s(-1.0, 1.0, 1), std::invalid_argument);
  EXPECT_THROW((void)mm_c_mean_wait_s(1.0, 0.0, 1), std::invalid_argument);
  EXPECT_THROW((void)mm_c_p95_sojourn_s(1.0, 0.0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace headroom::baseline
