#include "baseline/queueing.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace headroom::baseline {
namespace {

TEST(ErlangB, KnownValues) {
  // Classic reference values: B(a=1, c=1) = 1/2; B(2, 2) = 0.4.
  EXPECT_NEAR(erlang_b(1.0, 1), 0.5, 1e-12);
  EXPECT_NEAR(erlang_b(2.0, 2), 0.4, 1e-12);
  // B(10 Erlang, 10 trunks) ≈ 0.215.
  EXPECT_NEAR(erlang_b(10.0, 10), 0.215, 0.001);
}

TEST(ErlangB, ZeroLoadZeroBlocking) {
  EXPECT_DOUBLE_EQ(erlang_b(0.0, 5), 0.0);
}

TEST(ErlangB, ZeroServersAlwaysBlocks) {
  EXPECT_DOUBLE_EQ(erlang_b(1.0, 0), 1.0);
}

TEST(ErlangB, NegativeLoadThrows) {
  EXPECT_THROW((void)erlang_b(-1.0, 5), std::invalid_argument);
}

TEST(ErlangB, MonotoneInLoadAndServers) {
  EXPECT_LT(erlang_b(5.0, 10), erlang_b(8.0, 10));
  EXPECT_GT(erlang_b(5.0, 5), erlang_b(5.0, 10));
}

TEST(ErlangC, KnownValues) {
  // C(a=2, c=3): B = 0.2105..., C = B / (1 - rho(1-B)) with rho=2/3.
  const double b = erlang_b(2.0, 3);
  const double expected = b / (1.0 - (2.0 / 3.0) * (1.0 - b));
  EXPECT_NEAR(erlang_c(2.0, 3), expected, 1e-12);
  EXPECT_NEAR(erlang_c(2.0, 3), 0.4444, 0.001);
}

TEST(ErlangC, UnstableSystemWaitsCertainly) {
  EXPECT_DOUBLE_EQ(erlang_c(5.0, 5), 1.0);
  EXPECT_DOUBLE_EQ(erlang_c(6.0, 5), 1.0);
}

TEST(ErlangC, ExceedsErlangB) {
  // Queueing (C) probability >= blocking (B) probability for stable systems.
  for (double a : {1.0, 3.0, 7.0}) {
    EXPECT_GE(erlang_c(a, 10), erlang_b(a, 10));
  }
}

TEST(MMc, MeanWaitMatchesMM1ClosedForm) {
  // c=1: W_q = rho / (mu - lambda) * ... classic: Wq = lambda/(mu(mu-lambda)).
  const double lambda = 0.5;
  const double mu = 1.0;
  EXPECT_NEAR(mm_c_mean_wait_s(lambda, mu, 1),
              lambda / (mu * (mu - lambda)), 1e-12);
}

TEST(MMc, SojournIsWaitPlusService) {
  EXPECT_NEAR(mm_c_mean_sojourn_s(0.5, 1.0, 1),
              mm_c_mean_wait_s(0.5, 1.0, 1) + 1.0, 1e-12);
}

TEST(MMc, UnstableIsInfinite) {
  EXPECT_TRUE(std::isinf(mm_c_mean_wait_s(10.0, 1.0, 5)));
  EXPECT_TRUE(std::isinf(mm_c_p95_sojourn_s(10.0, 1.0, 5)));
}

TEST(MMc, ZeroArrivalsZeroWait) {
  EXPECT_DOUBLE_EQ(mm_c_mean_wait_s(0.0, 1.0, 4), 0.0);
}

TEST(MMc, MoreServersLessWait) {
  EXPECT_GT(mm_c_mean_wait_s(3.0, 1.0, 4), mm_c_mean_wait_s(3.0, 1.0, 8));
}

TEST(MMc, P95SojournAboveMeanSojourn) {
  for (std::size_t c : {2u, 8u, 32u}) {
    const double lambda = 0.7 * static_cast<double>(c);
    EXPECT_GT(mm_c_p95_sojourn_s(lambda, 1.0, c),
              mm_c_mean_sojourn_s(lambda, 1.0, c));
  }
}

TEST(MMc, LightLoadP95ApproachesServiceQuantile) {
  // At negligible load nobody waits: P95 sojourn ≈ -ln(0.05)/mu ≈ 3/mu.
  EXPECT_NEAR(mm_c_p95_sojourn_s(0.001, 1.0, 16), -std::log(0.05), 0.01);
}

TEST(MMc, AtTheStabilityBoundary) {
  // a == c exactly: the queue has no stationary distribution. Everything
  // downstream of erlang_c must report that, not divide by zero.
  EXPECT_DOUBLE_EQ(erlang_c(4.0, 4), 1.0);
  EXPECT_TRUE(std::isinf(mm_c_mean_wait_s(4.0, 1.0, 4)));
  EXPECT_TRUE(std::isinf(mm_c_p95_sojourn_s(4.0, 1.0, 4)));
  // Just inside the boundary the answers are finite but explode as a -> c.
  const double near = mm_c_p95_sojourn_s(4.0 - 1e-9, 1.0, 4);
  EXPECT_TRUE(std::isfinite(near));
  EXPECT_GT(near, mm_c_p95_sojourn_s(3.9, 1.0, 4));
}

TEST(MMc, P95LowWaitProbabilityBranchIsServiceQuantileExactly) {
  // When P(wait) <= 0.05 the P95 sojourn is the service quantile alone —
  // the wait term must vanish exactly, not approximately, and the result
  // must be continuous across the branch (never below the service P95).
  const double mu = 2.0;
  // lambda = 0.5, a = lambda/mu = 0.25 on c = 8: pw is far below 0.05.
  ASSERT_LE(erlang_c(0.25, 8), 0.05);
  EXPECT_DOUBLE_EQ(mm_c_p95_sojourn_s(0.5, mu, 8), -std::log(0.05) / mu);
  // On the other branch the sojourn strictly exceeds the service quantile.
  const double lambda_heavy = 7.5 * mu;  // a = 7.5 on c = 8, pw >> 0.05
  ASSERT_GT(erlang_c(7.5, 8), 0.05);
  EXPECT_GT(mm_c_p95_sojourn_s(lambda_heavy, mu, 8), -std::log(0.05) / mu);
}

TEST(MMc, ZeroServersInfiniteSojourn) {
  EXPECT_TRUE(std::isinf(mm_c_mean_wait_s(1.0, 1.0, 0)));
  EXPECT_TRUE(std::isinf(mm_c_p95_sojourn_s(1.0, 1.0, 0)));
  // Even at zero arrivals, zero servers cannot complete the request that
  // defines the sojourn quantile.
  EXPECT_TRUE(std::isinf(mm_c_p95_sojourn_s(0.0, 1.0, 0)));
  EXPECT_DOUBLE_EQ(erlang_c(0.0, 0), 1.0);
}

TEST(ErlangB, NearBoundaryStaysInUnitInterval) {
  // The recurrence must stay numerically inside [0, 1] even at a == c and
  // far beyond (a >> c), where naive factorial formulas overflow.
  for (const double a : {16.0, 64.0, 512.0}) {
    const double b = erlang_b(a, 16);
    EXPECT_GE(b, 0.0);
    EXPECT_LE(b, 1.0);
  }
  EXPECT_GT(erlang_b(512.0, 16), 0.95);  // overload: almost everything blocks
}

TEST(MMc, BadRatesThrow) {
  EXPECT_THROW((void)mm_c_mean_wait_s(-1.0, 1.0, 1), std::invalid_argument);
  EXPECT_THROW((void)mm_c_mean_wait_s(1.0, 0.0, 1), std::invalid_argument);
  EXPECT_THROW((void)mm_c_p95_sojourn_s(1.0, 0.0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace headroom::baseline
