#include "baseline/reactive_autoscaler.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace headroom::baseline {
namespace {

using telemetry::SimTime;
using telemetry::TimeSeries;

// Diurnal offered load at 120 s cadence over `days`.
TimeSeries diurnal_trace(double peak, double trough, int days) {
  TimeSeries trace;
  for (SimTime t = 0; t < days * 86400; t += 120) {
    const double hour = std::fmod(static_cast<double>(t) / 3600.0, 24.0);
    const double shape =
        0.5 * (1.0 + std::cos(2.0 * 3.14159265358979 * (hour - 20.0) / 24.0));
    trace.append(t, trough + (peak - trough) * shape);
  }
  return trace;
}

AutoscalerOptions default_options() {
  AutoscalerOptions opt;
  opt.target_cpu_pct = 50.0;
  opt.scale_out_threshold = 60.0;
  opt.scale_in_threshold = 35.0;
  opt.provision_lag_s = 1800;
  opt.drain_lag_s = 300;
  opt.control_interval_s = 120;
  opt.min_servers = 4;
  opt.cpu_per_rps = 0.028;
  opt.cpu_base = 1.4;
  opt.cpu_slo_pct = 75.0;
  return opt;
}

TEST(ReactiveAutoscaler, RejectsBadOptions) {
  AutoscalerOptions bad = default_options();
  bad.min_servers = 0;
  EXPECT_THROW(ReactiveAutoscaler{bad}, std::invalid_argument);
  bad = default_options();
  bad.control_interval_s = 0;
  EXPECT_THROW(ReactiveAutoscaler{bad}, std::invalid_argument);
  bad = default_options();
  bad.cpu_per_rps = 0.0;
  EXPECT_THROW(ReactiveAutoscaler{bad}, std::invalid_argument);
}

// Regression: target_cpu_pct <= cpu_base used to slip through construction
// and flip the sizing division negative; the damping clamp then silently
// turned every scale-out decision into a scale-in toward min_servers.
TEST(ReactiveAutoscaler, RejectsTargetCpuAtOrBelowCpuBase) {
  AutoscalerOptions bad = default_options();
  bad.target_cpu_pct = 50.0;
  bad.cpu_base = 55.0;  // pre-fix: silently drains the pool under load
  EXPECT_THROW(
      {
        try {
          ReactiveAutoscaler scaler(bad);
        } catch (const std::invalid_argument& e) {
          EXPECT_STREQ(e.what(),
                       "ReactiveAutoscaler: target_cpu_pct must exceed "
                       "cpu_base");
          throw;
        }
      },
      std::invalid_argument);
  bad.cpu_base = 50.0;  // equality is just as degenerate (division by zero)
  EXPECT_THROW(ReactiveAutoscaler{bad}, std::invalid_argument);
}

// Regression: max_step_fraction >= 1 used to be accepted; the lower damping
// bound target*(1 - f) then goes non-positive, so "damping" could swing the
// pool to (almost) zero in one decision.
TEST(ReactiveAutoscaler, RejectsMaxStepFractionOutsideUnitInterval) {
  for (const double f : {1.0, 3.0, 0.0, -0.5}) {
    AutoscalerOptions bad = default_options();
    bad.max_step_fraction = f;
    EXPECT_THROW(
        {
          try {
            ReactiveAutoscaler scaler(bad);
          } catch (const std::invalid_argument& e) {
            EXPECT_STREQ(e.what(),
                         "ReactiveAutoscaler: max_step_fraction must be in "
                         "(0, 1)");
            throw;
          }
        },
        std::invalid_argument)
        << "max_step_fraction=" << f;
  }
}

// Regression: mis-ordered thresholds (scale_in >= scale_out) used to be
// accepted; every CPU reading then lands outside the dead band and the
// controller thrashes between out and in each interval.
TEST(ReactiveAutoscaler, RejectsMisorderedThresholds) {
  AutoscalerOptions bad = default_options();
  bad.scale_out_threshold = 60.0;
  bad.scale_in_threshold = 70.0;
  EXPECT_THROW(
      {
        try {
          ReactiveAutoscaler scaler(bad);
        } catch (const std::invalid_argument& e) {
          EXPECT_STREQ(e.what(),
                       "ReactiveAutoscaler: scale_in_threshold must be below "
                       "scale_out_threshold");
          throw;
        }
      },
      std::invalid_argument);
  bad.scale_in_threshold = 60.0;  // equality also leaves no dead band
  EXPECT_THROW(ReactiveAutoscaler{bad}, std::invalid_argument);
}

TEST(ReactiveAutoscaler, EmptyTraceEmptyRun) {
  const ReactiveAutoscaler scaler(default_options());
  const AutoscalerRun run = scaler.replay({}, 10);
  EXPECT_TRUE(run.samples.empty());
  EXPECT_EQ(run.violation_fraction(), 0.0);
}

TEST(ReactiveAutoscaler, TracksDiurnalLoad) {
  const ReactiveAutoscaler scaler(default_options());
  const TimeSeries trace = diurnal_trace(40000.0, 15000.0, 3);
  const AutoscalerRun run = scaler.replay(trace, 30);
  // Capacity must breathe: peak serving well above the minimum serving.
  std::size_t min_serving = run.samples.front().serving;
  for (const auto& s : run.samples) {
    min_serving = std::min(min_serving, s.serving);
  }
  EXPECT_GT(run.peak_serving, min_serving + 5);
  // Mean CPU near target once warmed up.
  double cpu_sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = run.samples.size() / 2; i < run.samples.size(); ++i) {
    cpu_sum += run.samples[i].cpu_pct;
    ++n;
  }
  EXPECT_NEAR(cpu_sum / static_cast<double>(n), 50.0, 12.0);
}

TEST(ReactiveAutoscaler, UsesFewerServerHoursThanStaticPeak) {
  const AutoscalerOptions opt = default_options();
  const ReactiveAutoscaler scaler(opt);
  const TimeSeries trace = diurnal_trace(40000.0, 15000.0, 3);
  const AutoscalerRun run = scaler.replay(trace, 30);
  // Static sizing for peak at target CPU:
  const double static_servers =
      opt.cpu_per_rps * 40000.0 / (50.0 - opt.cpu_base);
  EXPECT_LT(run.mean_serving(), static_servers);
}

TEST(ReactiveAutoscaler, ProvisioningLagCausesViolationsOnSpike) {
  // The paper's argument: a sudden failover spike outruns reactive scaling
  // because new capacity takes ~30 min to serve.
  AutoscalerOptions opt = default_options();
  opt.provision_lag_s = 1800;
  const ReactiveAutoscaler scaler(opt);
  TimeSeries trace;
  for (SimTime t = 0; t < 4 * 3600; t += 120) {
    trace.append(t, t >= 3600 && t < 3600 + 7200 ? 35000.0 : 12000.0);
  }
  const AutoscalerRun run = scaler.replay(trace, 10);
  EXPECT_GT(run.violation_seconds, 600.0);
}

TEST(ReactiveAutoscaler, ZeroLagScalesThroughSpikeCleanly) {
  AutoscalerOptions opt = default_options();
  opt.provision_lag_s = 0;
  opt.drain_lag_s = 0;
  opt.max_step_fraction = 0.95;  // near-unconstrained jumps, still valid
  const ReactiveAutoscaler scaler(opt);
  TimeSeries trace;
  for (SimTime t = 0; t < 4 * 3600; t += 120) {
    trace.append(t, t >= 3600 && t < 3600 + 7200 ? 35000.0 : 12000.0);
  }
  const AutoscalerRun run = scaler.replay(trace, 10);
  // With instantaneous provisioning the spike is absorbed within a couple
  // of control periods.
  EXPECT_LT(run.violation_seconds, 600.0);
}

TEST(ReactiveAutoscaler, RespectsMinServers) {
  const ReactiveAutoscaler scaler(default_options());
  TimeSeries trace;
  for (SimTime t = 0; t < 86400; t += 120) trace.append(t, 10.0);  // ~no load
  const AutoscalerRun run = scaler.replay(trace, 10);
  for (const auto& s : run.samples) EXPECT_GE(s.serving, 4u);
}

TEST(ReactiveAutoscaler, StepDampingLimitsChangeRate) {
  AutoscalerOptions opt = default_options();
  opt.max_step_fraction = 0.10;
  opt.provision_lag_s = 0;
  const ReactiveAutoscaler scaler(opt);
  TimeSeries trace;
  for (SimTime t = 0; t < 7200; t += 120) trace.append(t, 50000.0);
  const AutoscalerRun run = scaler.replay(trace, 10);
  for (std::size_t i = 1; i < run.samples.size(); ++i) {
    const double prev = static_cast<double>(run.samples[i - 1].target);
    const double cur = static_cast<double>(run.samples[i].target);
    EXPECT_LE(cur, std::ceil(prev * 1.10) + 1.0) << "i=" << i;
  }
}

TEST(ReactiveAutoscaler, DecideHoldsInsideDeadBand) {
  const ReactiveAutoscaler scaler(default_options());
  // CPU inside [scale_in, scale_out]: the committed target is untouched.
  EXPECT_EQ(scaler.decide(30000.0, 45.0, 17), 17u);
  EXPECT_EQ(scaler.decide(30000.0, 35.0, 17), 17u);
  EXPECT_EQ(scaler.decide(30000.0, 60.0, 17), 17u);
  // Above the band it grows, below it shrinks.
  EXPECT_GT(scaler.decide(60000.0, 80.0, 17), 17u);
  EXPECT_LT(scaler.decide(5000.0, 10.0, 17), 17u);
}

TEST(ReactiveAutoscaler, ServerSecondsIntegratesCapacity) {
  const ReactiveAutoscaler scaler(default_options());
  TimeSeries trace;
  for (SimTime t = 0; t < 1200; t += 120) trace.append(t, 7000.0);
  const AutoscalerRun run = scaler.replay(trace, 10);
  EXPECT_NEAR(run.total_seconds, 1200.0, 1e-9);
  EXPECT_GE(run.server_seconds, 10.0 * 1200.0 * 0.5);
}

}  // namespace
}  // namespace headroom::baseline
