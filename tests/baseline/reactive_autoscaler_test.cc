#include "baseline/reactive_autoscaler.h"

#include <gtest/gtest.h>

#include <cmath>

namespace headroom::baseline {
namespace {

using telemetry::SimTime;
using telemetry::TimeSeries;

// Diurnal offered load at 120 s cadence over `days`.
TimeSeries diurnal_trace(double peak, double trough, int days) {
  TimeSeries trace;
  for (SimTime t = 0; t < days * 86400; t += 120) {
    const double hour = std::fmod(static_cast<double>(t) / 3600.0, 24.0);
    const double shape =
        0.5 * (1.0 + std::cos(2.0 * 3.14159265358979 * (hour - 20.0) / 24.0));
    trace.append(t, trough + (peak - trough) * shape);
  }
  return trace;
}

AutoscalerOptions default_options() {
  AutoscalerOptions opt;
  opt.target_cpu_pct = 50.0;
  opt.scale_out_threshold = 60.0;
  opt.scale_in_threshold = 35.0;
  opt.provision_lag_s = 1800;
  opt.drain_lag_s = 300;
  opt.control_interval_s = 120;
  opt.min_servers = 4;
  return opt;
}

constexpr double kCpuPerRps = 0.028;
constexpr double kCpuBase = 1.4;
constexpr double kCpuSlo = 75.0;

TEST(ReactiveAutoscaler, RejectsBadOptions) {
  AutoscalerOptions bad = default_options();
  bad.min_servers = 0;
  EXPECT_THROW(ReactiveAutoscaler{bad}, std::invalid_argument);
  bad = default_options();
  bad.control_interval_s = 0;
  EXPECT_THROW(ReactiveAutoscaler{bad}, std::invalid_argument);
}

TEST(ReactiveAutoscaler, EmptyTraceEmptyRun) {
  const ReactiveAutoscaler scaler(default_options());
  const AutoscalerRun run = scaler.replay({}, 10, kCpuPerRps, kCpuBase, kCpuSlo);
  EXPECT_TRUE(run.samples.empty());
  EXPECT_EQ(run.violation_fraction(), 0.0);
}

TEST(ReactiveAutoscaler, TracksDiurnalLoad) {
  const ReactiveAutoscaler scaler(default_options());
  const TimeSeries trace = diurnal_trace(40000.0, 15000.0, 3);
  const AutoscalerRun run =
      scaler.replay(trace, 30, kCpuPerRps, kCpuBase, kCpuSlo);
  // Capacity must breathe: peak serving well above the minimum serving.
  std::size_t min_serving = run.samples.front().serving;
  for (const auto& s : run.samples) {
    min_serving = std::min(min_serving, s.serving);
  }
  EXPECT_GT(run.peak_serving, min_serving + 5);
  // Mean CPU near target once warmed up.
  double cpu_sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = run.samples.size() / 2; i < run.samples.size(); ++i) {
    cpu_sum += run.samples[i].cpu_pct;
    ++n;
  }
  EXPECT_NEAR(cpu_sum / static_cast<double>(n), 50.0, 12.0);
}

TEST(ReactiveAutoscaler, UsesFewerServerHoursThanStaticPeak) {
  const ReactiveAutoscaler scaler(default_options());
  const TimeSeries trace = diurnal_trace(40000.0, 15000.0, 3);
  const AutoscalerRun run =
      scaler.replay(trace, 30, kCpuPerRps, kCpuBase, kCpuSlo);
  // Static sizing for peak at target CPU:
  const double static_servers =
      kCpuPerRps * 40000.0 / (50.0 - kCpuBase);
  EXPECT_LT(run.mean_serving(), static_servers);
}

TEST(ReactiveAutoscaler, ProvisioningLagCausesViolationsOnSpike) {
  // The paper's argument: a sudden failover spike outruns reactive scaling
  // because new capacity takes ~30 min to serve.
  AutoscalerOptions opt = default_options();
  opt.provision_lag_s = 1800;
  const ReactiveAutoscaler scaler(opt);
  TimeSeries trace;
  for (SimTime t = 0; t < 4 * 3600; t += 120) {
    trace.append(t, t >= 3600 && t < 3600 + 7200 ? 35000.0 : 12000.0);
  }
  const AutoscalerRun run =
      scaler.replay(trace, 10, kCpuPerRps, kCpuBase, kCpuSlo);
  EXPECT_GT(run.violation_seconds, 600.0);
}

TEST(ReactiveAutoscaler, ZeroLagScalesThroughSpikeCleanly) {
  AutoscalerOptions opt = default_options();
  opt.provision_lag_s = 0;
  opt.drain_lag_s = 0;
  opt.max_step_fraction = 3.0;  // allow big jumps
  const ReactiveAutoscaler scaler(opt);
  TimeSeries trace;
  for (SimTime t = 0; t < 4 * 3600; t += 120) {
    trace.append(t, t >= 3600 && t < 3600 + 7200 ? 35000.0 : 12000.0);
  }
  const AutoscalerRun run =
      scaler.replay(trace, 10, kCpuPerRps, kCpuBase, kCpuSlo);
  // With instantaneous provisioning the spike is absorbed within a couple
  // of control periods.
  EXPECT_LT(run.violation_seconds, 600.0);
}

TEST(ReactiveAutoscaler, RespectsMinServers) {
  const ReactiveAutoscaler scaler(default_options());
  TimeSeries trace;
  for (SimTime t = 0; t < 86400; t += 120) trace.append(t, 10.0);  // ~no load
  const AutoscalerRun run =
      scaler.replay(trace, 10, kCpuPerRps, kCpuBase, kCpuSlo);
  for (const auto& s : run.samples) EXPECT_GE(s.serving, 4u);
}

TEST(ReactiveAutoscaler, StepDampingLimitsChangeRate) {
  AutoscalerOptions opt = default_options();
  opt.max_step_fraction = 0.10;
  opt.provision_lag_s = 0;
  const ReactiveAutoscaler scaler(opt);
  TimeSeries trace;
  for (SimTime t = 0; t < 7200; t += 120) trace.append(t, 50000.0);
  const AutoscalerRun run =
      scaler.replay(trace, 10, kCpuPerRps, kCpuBase, kCpuSlo);
  for (std::size_t i = 1; i < run.samples.size(); ++i) {
    const double prev = static_cast<double>(run.samples[i - 1].target);
    const double cur = static_cast<double>(run.samples[i].target);
    EXPECT_LE(cur, std::ceil(prev * 1.10) + 1.0) << "i=" << i;
  }
}

TEST(ReactiveAutoscaler, ServerSecondsIntegratesCapacity) {
  const ReactiveAutoscaler scaler(default_options());
  TimeSeries trace;
  for (SimTime t = 0; t < 1200; t += 120) trace.append(t, 7000.0);
  const AutoscalerRun run =
      scaler.replay(trace, 10, kCpuPerRps, kCpuBase, kCpuSlo);
  EXPECT_NEAR(run.total_seconds, 1200.0, 1e-9);
  EXPECT_GE(run.server_seconds, 10.0 * 1200.0 * 0.5);
}

}  // namespace
}  // namespace headroom::baseline
