#include "baseline/queueing_planner.h"

#include <gtest/gtest.h>

namespace headroom::baseline {
namespace {

QueueingPlannerOptions default_options() {
  QueueingPlannerOptions opt;
  opt.service_time_ms = 5.0;
  opt.concurrency_per_server = 16.0;
  opt.max_utilization = 0.85;
  return opt;
}

TEST(QueueingPlanner, RejectsBadOptions) {
  QueueingPlannerOptions bad = default_options();
  bad.service_time_ms = 0.0;
  EXPECT_THROW(QueueingPlanner{bad}, std::invalid_argument);
}

TEST(QueueingPlanner, PlanSatisfiesSloAndUtilizationCeiling) {
  const QueueingPlanner planner(default_options());
  const core::LatencySlo slo{20.0};
  const QueueingPlan plan = planner.plan(10000.0, slo);
  EXPECT_GE(plan.servers, 1u);
  EXPECT_LE(plan.predicted_p95_latency_ms, 20.0);
  EXPECT_LE(plan.utilization, 0.85 + 1e-9);
}

TEST(QueueingPlanner, PlanIsMinimal) {
  const QueueingPlanner planner(default_options());
  const core::LatencySlo slo{20.0};
  const QueueingPlan plan = planner.plan(10000.0, slo);
  if (plan.servers > 1) {
    // One fewer server violates either the SLO or the utilization ceiling.
    const double mu = 1000.0 / 5.0;
    const double fewer_util =
        10000.0 / (static_cast<double>(plan.servers - 1) * 16.0 * mu);
    const double fewer_latency =
        planner.predict_p95_latency_ms(10000.0, plan.servers - 1);
    EXPECT_TRUE(fewer_latency > 20.0 || fewer_util > 0.85);
  }
}

TEST(QueueingPlanner, MoreLoadMoreServers) {
  const QueueingPlanner planner(default_options());
  const core::LatencySlo slo{20.0};
  EXPECT_LT(planner.plan(5000.0, slo).servers,
            planner.plan(20000.0, slo).servers);
}

TEST(QueueingPlanner, TighterSloNeverFewerServers) {
  const QueueingPlanner planner(default_options());
  EXPECT_LE(planner.plan(10000.0, core::LatencySlo{50.0}).servers,
            planner.plan(10000.0, core::LatencySlo{15.6}).servers);
}

TEST(QueueingPlanner, PredictionDecreasesWithServers) {
  const QueueingPlanner planner(default_options());
  // Near saturation the smaller pool queues; the larger one barely waits.
  EXPECT_GT(planner.predict_p95_latency_ms(120000.0, 40),
            planner.predict_p95_latency_ms(120000.0, 80));
  // Far from saturation both are service-time bound (no strict ordering).
  EXPECT_GE(planner.predict_p95_latency_ms(10000.0, 40),
            planner.predict_p95_latency_ms(10000.0, 80));
}

TEST(QueueingPlanner, StaleServiceTimeMisSizesThePool) {
  // The paper's core criticism of white-box models: parameters go stale.
  // The "real" system needs 8 ms per request, but the model still believes
  // 4 ms — it recommends roughly half the servers actually needed.
  QueueingPlannerOptions stale = default_options();
  stale.service_time_ms = 4.0;
  QueueingPlannerOptions truth = default_options();
  truth.service_time_ms = 8.0;
  const core::LatencySlo slo{25.0};
  const QueueingPlan stale_plan = QueueingPlanner(stale).plan(12000.0, slo);
  const QueueingPlan true_plan = QueueingPlanner(truth).plan(12000.0, slo);
  EXPECT_LT(static_cast<double>(stale_plan.servers),
            0.6 * static_cast<double>(true_plan.servers));
}

// Regression: with fractional concurrency_per_server, plan()'s utilization
// floor used the un-truncated product servers * concurrency while
// predict_p95_latency_ms() truncated it to the integer c the M/M/c formulas
// need. The search could then start below the real floor and return a plan
// whose *effective* utilization exceeds the ceiling it reports.
TEST(QueueingPlanner, FractionalConcurrencyRespectsUtilizationCeiling) {
  QueueingPlannerOptions opt = default_options();
  opt.service_time_ms = 1.0;  // mu = 1000 per logical server
  opt.concurrency_per_server = 1.7;
  opt.max_utilization = 0.85;
  const QueueingPlanner planner(opt);
  const QueueingPlan plan = planner.plan(2800.0, core::LatencySlo{50.0});
  // Pre-fix: servers = ceil(2800 / (0.85 * 1.7 * 1000)) = 2, but the
  // truncated c_eff = floor(2 * 1.7) = 3, so the pool really runs at
  // 2800 / 3000 = 0.933 while reporting 0.82. Post-fix the floor demands
  // c_eff >= 4, i.e. servers >= 3.
  EXPECT_GE(plan.servers, 3u);
  const double mu = 1000.0;
  const double effective_util =
      2800.0 /
      (static_cast<double>(planner.effective_servers(plan.servers)) * mu);
  EXPECT_LE(effective_util, 0.85 + 1e-9);
  EXPECT_NEAR(plan.utilization, effective_util, 1e-12);
}

TEST(QueueingPlanner, HalfConcurrencyPerServer) {
  // concurrency_per_server = 0.5: every logical server costs two physical
  // ones, and odd physical counts waste the remainder to truncation.
  QueueingPlannerOptions opt = default_options();
  opt.service_time_ms = 1.0;
  opt.concurrency_per_server = 0.5;
  opt.max_utilization = 0.85;
  const QueueingPlanner planner(opt);
  const QueueingPlan plan = planner.plan(1900.0, core::LatencySlo{50.0});
  // Floor: c_eff >= ceil(1900 / 850) = 3 logical servers, which needs 6
  // physical ones. Pre-fix the un-truncated floor accepted 5 physical
  // (2.5 logical), truncating to c_eff = 2 and a real utilization of 0.95.
  EXPECT_EQ(plan.servers, 6u);
  EXPECT_EQ(planner.effective_servers(plan.servers), 3u);
  EXPECT_NEAR(plan.utilization, 1900.0 / 3000.0, 1e-12);
  EXPECT_LE(plan.predicted_p95_latency_ms, 50.0);
}

TEST(QueueingPlanner, PlanAndPredictShareEffectiveServers) {
  // The plan's predicted latency must be exactly what predict() reports for
  // the same operating point — one truncation, one answer.
  QueueingPlannerOptions opt = default_options();
  opt.service_time_ms = 2.0;
  opt.concurrency_per_server = 2.3;
  const QueueingPlanner planner(opt);
  const QueueingPlan plan = planner.plan(4321.0, core::LatencySlo{30.0});
  EXPECT_DOUBLE_EQ(plan.predicted_p95_latency_ms,
                   planner.predict_p95_latency_ms(4321.0, plan.servers));
}

TEST(QueueingPlanner, IntegerConcurrencyUnchangedByEffectiveServersFix) {
  // For integer concurrency truncation is exact, so the fixed floor must
  // agree with the old closed form: servers = ceil(ceil(lambda / (u*mu)) / c)
  // has the same value as the pre-fix ceil(lambda / (u*mu*c)).
  const QueueingPlanner planner(default_options());
  const QueueingPlan plan = planner.plan(10000.0, core::LatencySlo{20.0});
  EXPECT_EQ(planner.effective_servers(plan.servers), plan.servers * 16u);
  EXPECT_LE(plan.utilization, 0.85 + 1e-9);
}

TEST(QueueingPlanner, RejectsOutOfRangeUtilization) {
  QueueingPlannerOptions bad = default_options();
  bad.max_utilization = 0.0;
  EXPECT_THROW(QueueingPlanner{bad}, std::invalid_argument);
  bad.max_utilization = 1.5;
  EXPECT_THROW(QueueingPlanner{bad}, std::invalid_argument);
}

TEST(QueueingPlanner, PlanRejectsNonPositiveLoad) {
  const QueueingPlanner planner(default_options());
  EXPECT_THROW((void)planner.plan(0.0, core::LatencySlo{20.0}),
               std::invalid_argument);
}

TEST(QueueingPlanner, PredictRejectsZeroServers) {
  const QueueingPlanner planner(default_options());
  EXPECT_THROW((void)planner.predict_p95_latency_ms(100.0, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace headroom::baseline
