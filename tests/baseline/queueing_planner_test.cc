#include "baseline/queueing_planner.h"

#include <gtest/gtest.h>

namespace headroom::baseline {
namespace {

QueueingPlannerOptions default_options() {
  QueueingPlannerOptions opt;
  opt.service_time_ms = 5.0;
  opt.concurrency_per_server = 16.0;
  opt.max_utilization = 0.85;
  return opt;
}

TEST(QueueingPlanner, RejectsBadOptions) {
  QueueingPlannerOptions bad = default_options();
  bad.service_time_ms = 0.0;
  EXPECT_THROW(QueueingPlanner{bad}, std::invalid_argument);
}

TEST(QueueingPlanner, PlanSatisfiesSloAndUtilizationCeiling) {
  const QueueingPlanner planner(default_options());
  const core::LatencySlo slo{20.0};
  const QueueingPlan plan = planner.plan(10000.0, slo);
  EXPECT_GE(plan.servers, 1u);
  EXPECT_LE(plan.predicted_p95_latency_ms, 20.0);
  EXPECT_LE(plan.utilization, 0.85 + 1e-9);
}

TEST(QueueingPlanner, PlanIsMinimal) {
  const QueueingPlanner planner(default_options());
  const core::LatencySlo slo{20.0};
  const QueueingPlan plan = planner.plan(10000.0, slo);
  if (plan.servers > 1) {
    // One fewer server violates either the SLO or the utilization ceiling.
    const double mu = 1000.0 / 5.0;
    const double fewer_util =
        10000.0 / (static_cast<double>(plan.servers - 1) * 16.0 * mu);
    const double fewer_latency =
        planner.predict_p95_latency_ms(10000.0, plan.servers - 1);
    EXPECT_TRUE(fewer_latency > 20.0 || fewer_util > 0.85);
  }
}

TEST(QueueingPlanner, MoreLoadMoreServers) {
  const QueueingPlanner planner(default_options());
  const core::LatencySlo slo{20.0};
  EXPECT_LT(planner.plan(5000.0, slo).servers,
            planner.plan(20000.0, slo).servers);
}

TEST(QueueingPlanner, TighterSloNeverFewerServers) {
  const QueueingPlanner planner(default_options());
  EXPECT_LE(planner.plan(10000.0, core::LatencySlo{50.0}).servers,
            planner.plan(10000.0, core::LatencySlo{15.6}).servers);
}

TEST(QueueingPlanner, PredictionDecreasesWithServers) {
  const QueueingPlanner planner(default_options());
  // Near saturation the smaller pool queues; the larger one barely waits.
  EXPECT_GT(planner.predict_p95_latency_ms(120000.0, 40),
            planner.predict_p95_latency_ms(120000.0, 80));
  // Far from saturation both are service-time bound (no strict ordering).
  EXPECT_GE(planner.predict_p95_latency_ms(10000.0, 40),
            planner.predict_p95_latency_ms(10000.0, 80));
}

TEST(QueueingPlanner, StaleServiceTimeMisSizesThePool) {
  // The paper's core criticism of white-box models: parameters go stale.
  // The "real" system needs 8 ms per request, but the model still believes
  // 4 ms — it recommends roughly half the servers actually needed.
  QueueingPlannerOptions stale = default_options();
  stale.service_time_ms = 4.0;
  QueueingPlannerOptions truth = default_options();
  truth.service_time_ms = 8.0;
  const core::LatencySlo slo{25.0};
  const QueueingPlan stale_plan = QueueingPlanner(stale).plan(12000.0, slo);
  const QueueingPlan true_plan = QueueingPlanner(truth).plan(12000.0, slo);
  EXPECT_LT(static_cast<double>(stale_plan.servers),
            0.6 * static_cast<double>(true_plan.servers));
}

TEST(QueueingPlanner, PlanRejectsNonPositiveLoad) {
  const QueueingPlanner planner(default_options());
  EXPECT_THROW((void)planner.plan(0.0, core::LatencySlo{20.0}),
               std::invalid_argument);
}

TEST(QueueingPlanner, PredictRejectsZeroServers) {
  const QueueingPlanner planner(default_options());
  EXPECT_THROW((void)planner.predict_p95_latency_ms(100.0, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace headroom::baseline
