// Unit coverage for the bake-off roster: the three native planners
// (prediction-augmented scaling, switching-cost right-sizing, throughput
// probing) and the window adapters around the pre-existing queueing and
// reactive baselines. All tests run against a synthetic response surface
// with closed-form inverses so expected serving counts are exact.
#include "baseline/planner_roster.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/capacity_planner.h"

namespace headroom::baseline {
namespace {

// latency(r) = 5 + 0.0005 r^2 ms, cpu(r) = 0.08 r + 2 %. With the 50 ms
// SLO and the planners' default 1 ms margin, per-server load must stay at
// or below sqrt(44 / 0.0005) ~= 296.6 rps: 900 total rps needs 4 servers,
// 1800 needs 7, 100 needs 1.
core::PoolResponseModel test_surface() {
  stats::LinearFit cpu;
  cpu.slope = 0.08;
  cpu.intercept = 2.0;
  cpu.r_squared = 1.0;
  cpu.n = 100;
  stats::PolynomialFit latency;
  latency.coeffs = {5.0, 0.0, 0.0005};
  latency.r_squared = 1.0;
  latency.n = 100;
  return core::PoolResponseModel::from_fits(cpu, latency);
}

core::PlannerContext test_context(const core::PoolResponseModel* model,
                                  std::size_t pool_size = 32) {
  core::PlannerContext ctx;
  ctx.model = model;
  ctx.latency_slo_ms = 50.0;
  ctx.pool_size = pool_size;
  ctx.min_servers = 1;
  ctx.window_seconds = 120;
  return ctx;
}

core::PlannerWindow make_window(std::size_t index, double total_rps,
                                double latency_ms = 0.0,
                                double cpu_pct = 0.0) {
  core::PlannerWindow w;
  w.start = static_cast<telemetry::SimTime>(index) * 120;
  w.seconds = 120;
  w.total_rps = total_rps;
  w.latency_p95_ms = latency_ms;
  w.cpu_pct = cpu_pct;
  return w;
}

// ---------------------------------------------------------------------------
// PredictionScalingPlanner

TEST(PredictionScaling, RejectsOutOfRangeTrust) {
  for (double trust : {-0.1, 1.5}) {
    PredictionScalingOptions opt;
    opt.trust = trust;
    EXPECT_THROW(PredictionScalingPlanner{opt}, std::invalid_argument);
  }
}

TEST(PredictionScaling, ZeroTrustScalesUpFastAndReleasesLazily) {
  const core::PoolResponseModel surface = test_surface();
  PredictionScalingOptions opt;
  opt.trust = 0.0;
  opt.switch_cost_windows = 3;  // hold = (1 - 0) * 3 = 3 windows
  PredictionScalingPlanner planner(opt);
  EXPECT_EQ(planner.name(), "prediction_ml");

  planner.start(test_context(&surface), 4);
  // Spike: the need jumps to 7 and is served immediately.
  EXPECT_EQ(planner.plan_window(make_window(0, 1800.0)), 7u);
  // Demand back down (need 4): the ski-rental hold keeps capacity for
  // three consecutive lower-need windows, releasing on the fourth.
  EXPECT_EQ(planner.plan_window(make_window(1, 900.0)), 7u);
  EXPECT_EQ(planner.plan_window(make_window(2, 900.0)), 7u);
  EXPECT_EQ(planner.plan_window(make_window(3, 900.0)), 7u);
  EXPECT_EQ(planner.plan_window(make_window(4, 900.0)), 4u);
}

TEST(PredictionScaling, FullTrustPreProvisionsForTheForecastSpike) {
  const core::PoolResponseModel surface = test_surface();
  PredictionScalingOptions opt;
  opt.trust = 1.0;
  opt.lead_windows = 2;
  opt.forecaster.season_seconds = 480;  // 4 windows per season
  opt.forecaster.buckets = 4;
  PredictionScalingPlanner planner(opt);

  planner.start(test_context(&surface), 1);
  // Season one teaches the shape: a spike in bucket 2.
  (void)planner.plan_window(make_window(0, 100.0));
  (void)planner.plan_window(make_window(1, 100.0));
  (void)planner.plan_window(make_window(2, 2000.0));
  (void)planner.plan_window(make_window(3, 100.0));
  // Season two, bucket 0: demand is low (need 1) but the forecast two
  // windows ahead lands on the learned spike (2000 rps -> 7 servers), and
  // full trust pre-provisions for it.
  EXPECT_EQ(planner.plan_window(make_window(4, 100.0)), 7u);
  // Full trust also releases immediately once the forecast horizon clears
  // the spike: at bucket 2 the lead points at bucket 0 (100 rps).
  EXPECT_EQ(planner.plan_window(make_window(6, 2000.0)), 7u);
  EXPECT_EQ(planner.plan_window(make_window(7, 100.0)), 1u);
}

// ---------------------------------------------------------------------------
// RightSizingPlanner

TEST(RightSizing, HoldsCapacityForTheBreakEvenThenReleases) {
  const core::PoolResponseModel surface = test_surface();
  RightSizingOptions opt;
  opt.switching_cost_windows = 3;
  RightSizingPlanner planner(opt);
  EXPECT_EQ(planner.name(), "right_sizing");

  planner.start(test_context(&surface), 1);
  // One spike window (need 7), then sustained low demand (need 1): the
  // spike level stays provisioned for exactly beta = 3 further windows.
  EXPECT_EQ(planner.plan_window(make_window(0, 1800.0)), 7u);
  EXPECT_EQ(planner.plan_window(make_window(1, 100.0)), 7u);
  EXPECT_EQ(planner.plan_window(make_window(2, 100.0)), 7u);
  EXPECT_EQ(planner.plan_window(make_window(3, 100.0)), 7u);
  EXPECT_EQ(planner.plan_window(make_window(4, 100.0)), 1u);
}

TEST(RightSizing, ZeroSwitchingCostDegeneratesToFollowTheNeed) {
  const core::PoolResponseModel surface = test_surface();
  RightSizingOptions opt;
  opt.switching_cost_windows = 0;
  RightSizingPlanner planner(opt);

  planner.start(test_context(&surface), 1);
  EXPECT_EQ(planner.plan_window(make_window(0, 1800.0)), 7u);
  EXPECT_EQ(planner.plan_window(make_window(1, 900.0)), 4u);
  EXPECT_EQ(planner.plan_window(make_window(2, 100.0)), 1u);
}

TEST(RightSizing, InterveningDemandRefreshesTheHold) {
  const core::PoolResponseModel surface = test_surface();
  RightSizingOptions opt;
  opt.switching_cost_windows = 2;
  RightSizingPlanner planner(opt);

  planner.start(test_context(&surface), 1);
  EXPECT_EQ(planner.plan_window(make_window(0, 1800.0)), 7u);
  EXPECT_EQ(planner.plan_window(make_window(1, 100.0)), 7u);
  // A fresh (smaller) burst restarts the clock for its own level once the
  // spike ages out: 900 rps needs 4.
  EXPECT_EQ(planner.plan_window(make_window(2, 900.0)), 7u);
  EXPECT_EQ(planner.plan_window(make_window(3, 100.0)), 4u);
  EXPECT_EQ(planner.plan_window(make_window(4, 100.0)), 4u);
  EXPECT_EQ(planner.plan_window(make_window(5, 100.0)), 1u);
}

// ---------------------------------------------------------------------------
// ThroughputProbingPlanner

TEST(Probing, ValidatesOptions) {
  ThroughputProbingOptions opt;
  opt.settle_windows = 0;
  EXPECT_THROW(ThroughputProbingPlanner{opt}, std::invalid_argument);
  for (double fraction : {0.0, 1.0, -0.2}) {
    ThroughputProbingOptions bad;
    bad.probe_step_fraction = fraction;
    EXPECT_THROW(ThroughputProbingPlanner{bad}, std::invalid_argument);
  }
}

TEST(Probing, MeasuredViolationStepsUpImmediately) {
  const core::PoolResponseModel surface = test_surface();
  ThroughputProbingPlanner planner;
  EXPECT_EQ(planner.name(), "probing");

  planner.start(test_context(&surface, /*pool_size=*/20), 10);
  // 60 ms measured against the 50 ms SLO: step up by ceil(10 * 0.10) = 1
  // without waiting out the settle period.
  EXPECT_EQ(planner.plan_window(make_window(0, 900.0, /*latency=*/60.0)),
            11u);
  // Capped at the pool.
  planner.start(test_context(&surface, /*pool_size=*/10), 10);
  EXPECT_EQ(planner.plan_window(make_window(0, 900.0, 60.0)), 10u);
}

TEST(Probing, WalksDownWhileComfortable) {
  const core::PoolResponseModel surface = test_surface();
  ThroughputProbingOptions opt;
  opt.settle_windows = 2;
  ThroughputProbingPlanner planner(opt);

  planner.start(test_context(&surface), 10);
  // First settle period at 10 is comfortable (10 ms << 47 ms comfort
  // line): probe down one step.
  EXPECT_EQ(planner.plan_window(make_window(0, 900.0, 10.0)), 10u);
  EXPECT_EQ(planner.plan_window(make_window(1, 900.0, 10.0)), 9u);
  // The probe settles comfortably: adopted, and the walk continues.
  EXPECT_EQ(planner.plan_window(make_window(2, 900.0, 10.0)), 9u);
  EXPECT_EQ(planner.plan_window(make_window(3, 900.0, 10.0)), 9u);
  EXPECT_EQ(planner.plan_window(make_window(4, 900.0, 10.0)), 9u);
  EXPECT_EQ(planner.plan_window(make_window(5, 900.0, 10.0)), 8u);
}

TEST(Probing, FailedProbeRevertsAndBacksOff) {
  const core::PoolResponseModel surface = test_surface();
  ThroughputProbingOptions opt;
  opt.settle_windows = 2;
  opt.backoff_periods = 2;
  ThroughputProbingPlanner planner(opt);

  planner.start(test_context(&surface), 10);
  // Comfortable hold -> probe down to 9.
  EXPECT_EQ(planner.plan_window(make_window(0, 900.0, 10.0)), 10u);
  EXPECT_EQ(planner.plan_window(make_window(1, 900.0, 10.0)), 9u);
  // At 9 the latency creeps to 48 ms — inside the SLO but past the 47 ms
  // comfort line: the probe fails, capacity reverts, probing backs off.
  EXPECT_EQ(planner.plan_window(make_window(2, 900.0, 48.0)), 9u);
  EXPECT_EQ(planner.plan_window(make_window(3, 900.0, 48.0)), 10u);
  // Two full settle periods of comfort burn the backoff without probing.
  for (std::size_t i = 4; i < 8; ++i) {
    EXPECT_EQ(planner.plan_window(make_window(i, 900.0, 10.0)), 10u) << i;
  }
  // Backoff spent: the next judged period probes again.
  EXPECT_EQ(planner.plan_window(make_window(8, 900.0, 10.0)), 10u);
  EXPECT_EQ(planner.plan_window(make_window(9, 900.0, 10.0)), 9u);
}

TEST(Probing, ProactivelyStepsUpNearTheSlo) {
  const core::PoolResponseModel surface = test_surface();
  ThroughputProbingOptions opt;
  opt.settle_windows = 2;
  ThroughputProbingPlanner planner(opt);

  planner.start(test_context(&surface, /*pool_size=*/20), 10);
  // 48 ms: no violation yet, but within the 3 ms headroom of the SLO —
  // after the settle period the controller steps up without waiting to
  // get burned.
  EXPECT_EQ(planner.plan_window(make_window(0, 900.0, 48.0)), 10u);
  EXPECT_EQ(planner.plan_window(make_window(1, 900.0, 48.0)), 11u);
}

// ---------------------------------------------------------------------------
// Window adapters

TEST(QueueingWindow, PlansForTheRunningPeakAndNeverReleases) {
  const core::PoolResponseModel surface = test_surface();
  QueueingWindowPlanner planner;
  EXPECT_EQ(planner.name(), "queueing");

  planner.start(test_context(&surface), 4);
  const std::size_t at_spike = planner.plan_window(make_window(0, 5000.0));
  EXPECT_GE(at_spike, 1u);
  // Demand collapses; the white-box plan stays sized for the peak.
  EXPECT_EQ(planner.plan_window(make_window(1, 100.0)), at_spike);
  EXPECT_EQ(planner.plan_window(make_window(2, 0.0)), at_spike);
}

TEST(QueueingWindow, ZeroDemandKeepsTheCurrentServing) {
  const core::PoolResponseModel surface = test_surface();
  QueueingWindowPlanner planner;
  planner.start(test_context(&surface), 4);
  core::PlannerWindow w = make_window(0, 0.0);
  w.serving = 6.0;
  EXPECT_EQ(planner.plan_window(w), 6u);
}

TEST(QueueingWindow, AutoCalibrationMatchesAnExplicitServiceTime) {
  // The auto path reads the surface's warm floor (5 ms) as an exponential
  // P95 -> service time 5 / 2.9957... ms; pinning that same number by hand
  // must produce identical plans.
  const core::PoolResponseModel surface = test_surface();
  QueueingWindowPlanner auto_cal;
  QueueingWindowOptions pinned_opt;
  pinned_opt.service_time_ms = 5.0 / 2.9957322735539909;
  QueueingWindowPlanner pinned(pinned_opt);

  auto_cal.start(test_context(&surface), 4);
  pinned.start(test_context(&surface), 4);
  for (std::size_t i = 0; i < 4; ++i) {
    const double rps = 500.0 * static_cast<double>(i + 1);
    EXPECT_EQ(auto_cal.plan_window(make_window(i, rps)),
              pinned.plan_window(make_window(i, rps)))
        << rps;
  }
}

TEST(ReactiveWindow, ScalesOutUnderSustainedHighCpuAfterTheLag) {
  const core::PoolResponseModel surface = test_surface();
  ReactiveWindowPlanner planner;
  EXPECT_EQ(planner.name(), "reactive");

  core::PlannerContext ctx = test_context(&surface, /*pool_size=*/64);
  planner.start(ctx, 8);
  // Hot windows: measured CPU far above the surface-derived scale-out
  // threshold. The decision is immediate (control interval == window) but
  // provisioned capacity arrives only after the provisioning lag
  // (1800 s = 15 windows), so early windows still serve 8.
  std::size_t serving = 8;
  std::vector<std::size_t> path;
  for (std::size_t i = 0; i < 20; ++i) {
    serving = planner.plan_window(make_window(i, 6000.0, 20.0, 90.0));
    path.push_back(serving);
  }
  EXPECT_EQ(path.front(), 8u);
  EXPECT_GT(path.back(), 8u);
  // Nothing lands before the lag has elapsed.
  for (std::size_t i = 0; i + 1 < 15; ++i) {
    EXPECT_EQ(path[i], 8u) << i;
  }
}

TEST(ReactiveWindow, IdleCpuScalesInWithoutBreachingTheFloor) {
  const core::PoolResponseModel surface = test_surface();
  ReactiveWindowPlanner planner;
  core::PlannerContext ctx = test_context(&surface, /*pool_size=*/64);
  ctx.min_servers = 2;
  planner.start(ctx, 16);
  std::size_t serving = 16;
  for (std::size_t i = 0; i < 60; ++i) {
    serving = planner.plan_window(make_window(i, 50.0, 5.5, 2.5));
  }
  EXPECT_LT(serving, 16u);
  EXPECT_GE(serving, 2u);
}

TEST(DefaultRoster, FixedFrontierOrder) {
  const auto roster = default_roster();
  ASSERT_EQ(roster.size(), 5u);
  EXPECT_EQ(roster[0]->name(), "queueing");
  EXPECT_EQ(roster[1]->name(), "reactive");
  EXPECT_EQ(roster[2]->name(), "prediction_ml");
  EXPECT_EQ(roster[3]->name(), "right_sizing");
  EXPECT_EQ(roster[4]->name(), "probing");
}

}  // namespace
}  // namespace headroom::baseline
