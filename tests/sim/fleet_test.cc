#include "sim/fleet.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "stats/linear_model.h"
#include "stats/percentile.h"

namespace headroom::sim {
namespace {

constexpr telemetry::SimTime kDay = 86400;
using telemetry::MetricKind;

// Small single-DC, single-pool config for focused tests.
FleetConfig tiny_config(const MicroserviceCatalog& catalog,
                        const std::string& service = "B",
                        std::size_t servers = 20) {
  FleetConfig config;
  DatacenterConfig dc;
  dc.name = "DC1";
  dc.demand_weight = 1.0;
  PoolConfig pool;
  pool.service = service;
  pool.servers = servers;
  pool.maintenance = MaintenancePolicy{.deploy_offline_hours = 0.0,
                                       .repurpose_fraction = 0.0,
                                       .repurpose_start_hour = 1.0,
                                       .repurpose_hours = 0.0,
                                       .infra_event_daily_prob = 0.0,
                                       .infra_event_hours = 0.0};
  dc.pools.push_back(pool);
  config.datacenters.push_back(dc);
  const MicroserviceProfile& profile = catalog.by_name(service);
  config.diurnal.peak_rps =
      profile.target_rps_per_server_p95 * static_cast<double>(servers) /
      profile.request_fan;
  config.diurnal.trough_fraction = 0.45;
  config.diurnal.noise_sigma = 0.02;
  config.seed = 5;
  return config;
}

TEST(FleetSimulator, RejectsEmptyTopology) {
  const MicroserviceCatalog catalog;
  FleetConfig config;
  EXPECT_THROW(FleetSimulator(std::move(config), catalog),
               std::invalid_argument);
}

TEST(FleetSimulator, RunAdvancesClockByWindows) {
  const MicroserviceCatalog catalog;
  FleetSimulator fleet(tiny_config(catalog), catalog);
  EXPECT_EQ(fleet.now(), 0);
  fleet.run_until(600);
  EXPECT_EQ(fleet.now(), 600);  // 5 windows of 120 s
}

TEST(FleetSimulator, EmitsPoolSeriesPerWindow) {
  const MicroserviceCatalog catalog;
  FleetSimulator fleet(tiny_config(catalog), catalog);
  fleet.run_until(1200);
  const auto& rps =
      fleet.store().pool_series(0, 0, MetricKind::kRequestsPerSecond);
  EXPECT_EQ(rps.size(), 10u);
}

TEST(FleetSimulator, CpuTracksPaperLinearModel) {
  const MicroserviceCatalog catalog;
  FleetSimulator fleet(tiny_config(catalog), catalog);
  fleet.run_until(kDay);
  const auto scatter = fleet.store().pool_scatter(
      0, 0, MetricKind::kRequestsPerSecond, MetricKind::kCpuPercentAttributed);
  const stats::LinearFit fit = stats::fit_linear(scatter.x, scatter.y);
  EXPECT_NEAR(fit.slope, 0.028, 0.002);     // Fig. 8
  EXPECT_NEAR(fit.intercept, 1.37, 0.25);   // Fig. 8
  EXPECT_GT(fit.r_squared, 0.95);
}

TEST(FleetSimulator, PerServerLoadNearTargetAtPeak) {
  const MicroserviceCatalog catalog;
  FleetSimulator fleet(tiny_config(catalog), catalog);
  fleet.run_until(kDay);
  const auto rps =
      fleet.store().pool_series(0, 0, MetricKind::kRequestsPerSecond).values();
  EXPECT_NEAR(stats::percentile(rps, 95.0), 377.0, 25.0);
}

TEST(FleetSimulator, ServingCountReductionRaisesPerServerLoad) {
  const MicroserviceCatalog catalog;
  FleetSimulator fleet(tiny_config(catalog), catalog);
  fleet.run_until(kDay);
  fleet.set_serving_count(0, 0, 14);  // -30%
  fleet.run_until(2 * kDay);
  const auto& series =
      fleet.store().pool_series(0, 0, MetricKind::kRequestsPerSecond);
  const auto before = series.values_between(0, kDay);
  const auto after = series.values_between(kDay, 2 * kDay);
  const double p95_before = stats::percentile(before, 95.0);
  const double p95_after = stats::percentile(after, 95.0);
  // Table II: the 30% reduction raises per-server RPS by ~43%+.
  EXPECT_GT(p95_after / p95_before, 1.35);
}

TEST(FleetSimulator, ServingCountValidation) {
  const MicroserviceCatalog catalog;
  FleetSimulator fleet(tiny_config(catalog), catalog);
  EXPECT_THROW(fleet.set_serving_count(0, 0, 0), std::invalid_argument);
  EXPECT_THROW(fleet.set_serving_count(0, 0, 21), std::invalid_argument);
  EXPECT_THROW(fleet.set_serving_count(0, 9, 5), std::out_of_range);
  EXPECT_EQ(fleet.pool_size(0, 0), 20u);
  fleet.set_serving_count(0, 0, 10);
  EXPECT_EQ(fleet.serving_count(0, 0), 10u);
}

TEST(FleetSimulator, ActiveServersMetricReflectsReduction) {
  const MicroserviceCatalog catalog;
  FleetSimulator fleet(tiny_config(catalog), catalog);
  fleet.set_serving_count(0, 0, 12);
  fleet.run_until(600);
  const auto active =
      fleet.store().pool_series(0, 0, MetricKind::kActiveServers).values();
  for (double a : active) EXPECT_DOUBLE_EQ(a, 12.0);
}

TEST(FleetSimulator, DeterministicForFixedSeed) {
  const MicroserviceCatalog catalog;
  FleetSimulator a(tiny_config(catalog), catalog);
  FleetSimulator b(tiny_config(catalog), catalog);
  a.run_until(3600);
  b.run_until(3600);
  const auto va =
      a.store().pool_series(0, 0, MetricKind::kLatencyP95Ms).values();
  const auto vb =
      b.store().pool_series(0, 0, MetricKind::kLatencyP95Ms).values();
  ASSERT_EQ(va.size(), vb.size());
  for (std::size_t i = 0; i < va.size(); ++i) {
    EXPECT_DOUBLE_EQ(va[i], vb[i]);
  }
}

TEST(FleetSimulator, DatacenterOutageRedistributesTraffic) {
  const MicroserviceCatalog catalog;
  StandardFleetOptions opt;
  opt.services = {"D"};
  opt.regional_peak_rps = 2000.0;
  FleetConfig config = standard_fleet(catalog, opt);
  workload::CapacityEvent outage;
  outage.kind = workload::EventKind::kDatacenterOutage;
  outage.start = 10 * 3600;
  outage.end = 12 * 3600;  // the paper's two-hour event
  outage.datacenter = 0;
  config.events.add(outage);
  const FleetSimulator fleet(std::move(config), catalog);

  const double before = fleet.datacenter_demand(9 * 3600, 0);
  EXPECT_GT(before, 0.0);
  EXPECT_EQ(fleet.datacenter_demand(11 * 3600, 0), 0.0);
  // Survivors absorb the orphaned demand: global sum is conserved.
  double total_during = 0.0;
  double total_before = 0.0;
  for (std::uint32_t dc = 0; dc < 9; ++dc) {
    total_before += fleet.datacenter_demand(9 * 3600, dc);
    total_during += fleet.datacenter_demand(11 * 3600, dc);
  }
  // Demand moves with time of day; compare against the same instant's
  // no-outage sum via a twin simulator.
  StandardFleetOptions opt2;
  opt2.services = {"D"};
  opt2.regional_peak_rps = 2000.0;
  const FleetSimulator no_outage(standard_fleet(catalog, opt2), catalog);
  double expected_during = 0.0;
  for (std::uint32_t dc = 0; dc < 9; ++dc) {
    expected_during += no_outage.datacenter_demand(11 * 3600, dc);
  }
  EXPECT_NEAR(total_during, expected_during, expected_during * 1e-9);
  // And at least one survivor sees a large increase (nearest neighbour).
  double max_increase = 0.0;
  for (std::uint32_t dc = 1; dc < 9; ++dc) {
    const double base = no_outage.datacenter_demand(11 * 3600, dc);
    const double with = fleet.datacenter_demand(11 * 3600, dc);
    max_increase = std::max(max_increase, with / base - 1.0);
  }
  EXPECT_GT(max_increase, 0.20);
}

TEST(FleetSimulator, TrafficMultiplierScalesDemand) {
  const MicroserviceCatalog catalog;
  FleetConfig config = tiny_config(catalog);
  workload::CapacityEvent surge;
  surge.kind = workload::EventKind::kTrafficMultiplier;
  surge.start = 0;
  surge.end = 3600;
  surge.multiplier = 4.0;  // Fig. 6's event
  surge.datacenter = 0;
  config.events.add(surge);
  const MicroserviceCatalog catalog2;
  FleetSimulator fleet(std::move(config), catalog2);
  const double during = fleet.datacenter_demand(1800, 0);
  const double after = fleet.datacenter_demand(1800 + 86400, 0);
  EXPECT_NEAR(during / after, 4.0, 1e-9);
}

TEST(FleetSimulator, AvailabilityLedgerSeesMaintenance) {
  const MicroserviceCatalog catalog;
  FleetConfig config = tiny_config(catalog);
  config.datacenters[0].pools[0].maintenance.deploy_offline_hours = 2.4;
  FleetSimulator fleet(std::move(config), catalog);
  fleet.run_until(2 * kDay);
  EXPECT_NEAR(fleet.ledger().fleet_average(), 0.90, 0.02);
}

TEST(FleetSimulator, ServerDayDigestsFlushOnDayBoundary) {
  const MicroserviceCatalog catalog;
  FleetSimulator fleet(tiny_config(catalog), catalog);
  fleet.run_until(kDay + 600);
  // Day 0 closed: 20 servers' digests recorded.
  EXPECT_EQ(fleet.server_day_cpu().size(), 20u);
  fleet.finish_day();
  EXPECT_EQ(fleet.server_day_cpu().size(), 40u);
}

TEST(FleetSimulator, ServerSeriesOnlyWhenEnabled) {
  const MicroserviceCatalog catalog;
  FleetConfig config = tiny_config(catalog);
  config.record_server_series = false;
  FleetSimulator fleet(std::move(config), catalog);
  fleet.run_until(600);
  EXPECT_TRUE(fleet.store()
                  .server_keys(0, 0, MetricKind::kRequestsPerSecond)
                  .empty());

  FleetConfig config2 = tiny_config(catalog);
  config2.record_server_series = true;
  FleetSimulator fleet2(std::move(config2), catalog);
  fleet2.run_until(600);
  EXPECT_EQ(
      fleet2.store().server_keys(0, 0, MetricKind::kRequestsPerSecond).size(),
      20u);
}

TEST(FleetSimulator, AttributionOffMakesCpuMetricNoisy) {
  const MicroserviceCatalog catalog;
  FleetConfig with = tiny_config(catalog, "A", 10);  // A has hourly spikes
  with.attribution_enabled = true;
  FleetConfig without = tiny_config(catalog, "A", 10);
  without.attribution_enabled = false;
  FleetSimulator fa(std::move(with), catalog);
  FleetSimulator fb(std::move(without), catalog);
  fa.run_until(kDay);
  fb.run_until(kDay);
  const auto fit_of = [](const FleetSimulator& f) {
    const auto scatter = f.store().pool_scatter(
        0, 0, MetricKind::kRequestsPerSecond,
        MetricKind::kCpuPercentAttributed);
    return stats::fit_linear(scatter.x, scatter.y);
  };
  // The paper's Step-1 lesson: blind measurement degrades the fit.
  EXPECT_GT(fit_of(fa).r_squared, fit_of(fb).r_squared + 0.02);
}

TEST(FleetSimulator, TotalsAccountants) {
  const MicroserviceCatalog catalog;
  const FleetSimulator fleet(tiny_config(catalog), catalog);
  EXPECT_EQ(fleet.total_pools(), 1u);
  EXPECT_EQ(fleet.total_servers(), 20u);
}

TEST(FleetSimulator, OutageOfTheOnlyDatacenterStaysFinite) {
  // When every DC is down the failover math has no survivor to shift
  // traffic onto: the orphaned demand must be dropped (not divided by a
  // zero total share), demand must read exactly 0, and the telemetry the
  // pool emitted before/after the outage must stay finite.
  const MicroserviceCatalog catalog;
  FleetConfig config = tiny_config(catalog);
  workload::CapacityEvent outage;
  outage.kind = workload::EventKind::kDatacenterOutage;
  outage.start = 2 * 3600;
  outage.end = 4 * 3600;
  outage.datacenter = 0;  // the only DC there is
  config.events.add(outage);
  FleetSimulator fleet(std::move(config), catalog);

  EXPECT_GT(fleet.datacenter_demand(3600, 0), 0.0);
  EXPECT_EQ(fleet.datacenter_demand(2 * 3600, 0), 0.0);
  EXPECT_EQ(fleet.datacenter_demand(3 * 3600, 0), 0.0);
  EXPECT_GT(fleet.datacenter_demand(4 * 3600, 0), 0.0);

  fleet.run_until(6 * 3600);
  for (const MetricKind kind :
       {MetricKind::kRequestsPerSecond, MetricKind::kCpuPercentTotal,
        MetricKind::kLatencyP95Ms}) {
    for (const double v : fleet.store().pool_series(0, 0, kind).values()) {
      EXPECT_TRUE(std::isfinite(v))
          << "non-finite " << telemetry::to_string(kind) << " sample";
      EXPECT_GE(v, 0.0);
    }
  }
  // Servers keep running during the demand blackout (the outage empties
  // the request stream, it does not break the fleet's bookkeeping).
  const auto rps =
      fleet.store().pool_series(0, 0, MetricKind::kRequestsPerSecond).values();
  EXPECT_EQ(rps.size(), 6u * 3600u / 120u);
}

TEST(FleetSimulator, FailoverConcentratesOnNearestSurvivor) {
  // Two far-apart DCs plus one adjacent to the failed region: the nearby
  // survivor must absorb the larger share (the paper's +127% neighbour),
  // and total demand must be conserved across the failover.
  const MicroserviceCatalog catalog;
  FleetConfig config = tiny_config(catalog);
  config.datacenters[0].timezone_offset_hours = -8.0;
  DatacenterConfig near = config.datacenters[0];
  near.name = "DC2";
  near.timezone_offset_hours = -5.0;
  DatacenterConfig far = config.datacenters[0];
  far.name = "DC3";
  far.timezone_offset_hours = 8.0;
  config.datacenters.push_back(near);
  config.datacenters.push_back(far);
  workload::CapacityEvent outage;
  outage.kind = workload::EventKind::kDatacenterOutage;
  outage.start = 0;
  outage.end = 3600;
  outage.datacenter = 0;
  config.events.add(outage);
  const FleetSimulator fleet(std::move(config), catalog);

  FleetConfig baseline_config = tiny_config(catalog);
  baseline_config.datacenters[0].timezone_offset_hours = -8.0;
  baseline_config.datacenters.push_back(near);
  baseline_config.datacenters.push_back(far);
  const FleetSimulator baseline(std::move(baseline_config), catalog);

  const telemetry::SimTime t = 1800;
  const double orphaned = baseline.datacenter_demand(t, 0);
  const double near_gain =
      fleet.datacenter_demand(t, 1) - baseline.datacenter_demand(t, 1);
  const double far_gain =
      fleet.datacenter_demand(t, 2) - baseline.datacenter_demand(t, 2);
  EXPECT_GT(near_gain, far_gain);
  EXPECT_NEAR(near_gain + far_gain, orphaned, 1e-9 * orphaned);
}

}  // namespace
}  // namespace headroom::sim
