#include "sim/engine.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace headroom::sim {
namespace {

TEST(EventQueue, EmptyQueueRunNextIsFalse) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.run_next());
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
}

TEST(EventQueue, EventsFireInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  while (q.run_next()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, EqualTimesFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  while (q.run_next()) {
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CallbacksMayScheduleMoreEvents) {
  EventQueue q;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 10) q.schedule(q.now() + 1.0, chain);
  };
  q.schedule(0.0, chain);
  while (q.run_next()) {
  }
  EXPECT_EQ(fired, 10);
  EXPECT_DOUBLE_EQ(q.now(), 9.0);
}

TEST(EventQueue, SchedulingInThePastThrows) {
  EventQueue q;
  q.schedule(5.0, [] {});
  q.run_next();
  EXPECT_THROW(q.schedule(4.0, [] {}), std::invalid_argument);
  EXPECT_NO_THROW(q.schedule(5.0, [] {}));  // "now" is allowed
}

TEST(EventQueue, RunUntilStopsBeforeBoundary) {
  EventQueue q;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    q.schedule(t, [&fired, t] { fired.push_back(t); });
  }
  q.run_until(3.0);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));  // 3.0 not strictly before
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
  EXPECT_EQ(q.pending(), 2u);
}

TEST(EventQueue, RunUntilAdvancesClockOnEmptyQueue) {
  EventQueue q;
  q.run_until(42.0);
  EXPECT_DOUBLE_EQ(q.now(), 42.0);
}

}  // namespace
}  // namespace headroom::sim
