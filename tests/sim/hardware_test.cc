#include "sim/hardware.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace headroom::sim {
namespace {

TEST(AssignHardware, RejectsEmptyOrDegenerateShares) {
  EXPECT_THROW((void)assign_hardware({}, 10), std::invalid_argument);
  HardwareShare negative;
  negative.fraction = -0.5;
  EXPECT_THROW((void)assign_hardware({negative}, 10), std::invalid_argument);
  HardwareShare zero;
  zero.fraction = 0.0;
  EXPECT_THROW((void)assign_hardware({zero}, 10), std::invalid_argument);
}

TEST(AssignHardware, SingleShareCoversAll) {
  HardwareShare share;
  share.generation.name = "gen1";
  const auto assignment = assign_hardware({share}, 7);
  ASSERT_EQ(assignment.size(), 7u);
  for (const auto& gen : assignment) EXPECT_EQ(gen.name, "gen1");
}

TEST(AssignHardware, FiftyFiftySplit) {
  HardwareGeneration gen1;
  gen1.name = "gen1";
  HardwareGeneration gen2;
  gen2.name = "gen2";
  gen2.cpu_scale = 1.6;
  const auto assignment =
      assign_hardware({{gen1, 0.5}, {gen2, 0.5}}, 10);
  ASSERT_EQ(assignment.size(), 10u);
  std::size_t gen1_count = 0;
  for (const auto& gen : assignment) gen1_count += gen.name == "gen1" ? 1u : 0u;
  EXPECT_EQ(gen1_count, 5u);
  // Earlier shares take lower indices.
  EXPECT_EQ(assignment[0].name, "gen1");
  EXPECT_EQ(assignment[9].name, "gen2");
}

TEST(AssignHardware, UnnormalizedFractionsAreNormalized) {
  HardwareGeneration a;
  a.name = "a";
  HardwareGeneration b;
  b.name = "b";
  const auto assignment = assign_hardware({{a, 3.0}, {b, 1.0}}, 8);
  std::size_t a_count = 0;
  for (const auto& gen : assignment) a_count += gen.name == "a" ? 1u : 0u;
  EXPECT_EQ(a_count, 6u);
}

TEST(AssignHardware, RoundingNeverLosesServers) {
  HardwareGeneration a;
  a.name = "a";
  HardwareGeneration b;
  b.name = "b";
  HardwareGeneration c;
  c.name = "c";
  for (std::size_t n : {1u, 3u, 7u, 10u, 101u}) {
    const auto assignment =
        assign_hardware({{a, 1.0}, {b, 1.0}, {c, 1.0}}, n);
    EXPECT_EQ(assignment.size(), n) << "n=" << n;
  }
}

TEST(AssignHardware, ZeroServersIsEmpty) {
  HardwareShare share;
  EXPECT_TRUE(assign_hardware({share}, 0).empty());
}

}  // namespace
}  // namespace headroom::sim
