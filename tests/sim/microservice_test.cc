#include "sim/microservice.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

namespace headroom::sim {
namespace {

TEST(MicroserviceCatalog, ContainsTableOneServices) {
  const MicroserviceCatalog catalog;
  // Table I lists A-G; H and I appear in figures only.
  for (const char* name : {"A", "B", "C", "D", "E", "F", "G"}) {
    EXPECT_NO_THROW((void)catalog.by_name(name)) << name;
  }
}

TEST(MicroserviceCatalog, UnknownServiceThrows) {
  const MicroserviceCatalog catalog;
  EXPECT_THROW((void)catalog.by_name("Z"), std::invalid_argument);
}

TEST(MicroserviceCatalog, NamesAreUnique) {
  const MicroserviceCatalog catalog;
  std::set<std::string> names;
  for (const auto& profile : catalog.all()) {
    EXPECT_TRUE(names.insert(profile.name).second) << profile.name;
  }
}

TEST(MicroserviceCatalog, IndexOfRoundTrips) {
  const MicroserviceCatalog catalog;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const auto& profile = catalog.by_index(i);
    EXPECT_EQ(catalog.index_of(profile.name), i);
  }
  EXPECT_FALSE(catalog.index_of("nope").has_value());
  EXPECT_THROW((void)catalog.by_index(catalog.size()), std::out_of_range);
}

TEST(MicroserviceCatalog, PoolBCalibration) {
  // The paper's Fig. 8 line: %CPU = 0.028 RPS + 1.37 on 16 cores.
  const MicroserviceCatalog catalog;
  const MicroserviceProfile& b = catalog.by_name("B");
  EXPECT_NEAR(b.cost_ms_per_request / (10.0 * 16.0), 0.028, 1e-4);
  EXPECT_NEAR(b.process_base_cpu_pct, 1.37, 1e-9);
  EXPECT_NEAR(b.target_rps_per_server_p95, 377.0, 1e-9);
}

TEST(MicroserviceCatalog, PoolDCalibration) {
  // Fig. 10: %CPU = 0.0916 RPS + 5.0; Table III P95 = 77.7 RPS/server.
  const MicroserviceCatalog catalog;
  const MicroserviceProfile& d = catalog.by_name("D");
  EXPECT_NEAR(d.cost_ms_per_request / (10.0 * 16.0), 0.0916, 2e-4);
  EXPECT_NEAR(d.process_base_cpu_pct, 5.0, 1e-9);
  EXPECT_NEAR(d.target_rps_per_server_p95, 77.7, 1e-9);
}

TEST(MicroserviceCatalog, AllProfilesPhysicallySensible) {
  const MicroserviceCatalog catalog;
  for (const auto& p : catalog.all()) {
    EXPECT_GT(p.cost_ms_per_request, 0.0) << p.name;
    EXPECT_GT(p.warm_latency_ms, 0.0) << p.name;
    EXPECT_GE(p.cold_latency_ms, 0.0) << p.name;
    EXPECT_GT(p.cold_decay_rps, 0.0) << p.name;
    EXPECT_GT(p.target_rps_per_server_p95, 0.0) << p.name;
    EXPECT_GE(p.overprovision_factor, 1.0) << p.name;
    EXPECT_GT(p.latency_slo_ms, p.warm_latency_ms) << p.name;
    EXPECT_GT(p.request_fan, 0.0) << p.name;
  }
}

TEST(MicroserviceCatalog, DescriptionsMatchTableOneRoles) {
  const MicroserviceCatalog catalog;
  EXPECT_NE(catalog.by_name("A").description.find("MemCached"),
            std::string::npos);
  EXPECT_NE(catalog.by_name("B").description.find("spelling"),
            std::string::npos);
  EXPECT_NE(catalog.by_name("E").description.find("proxy"),
            std::string::npos);
  EXPECT_NE(catalog.by_name("G").description.find("metrics"),
            std::string::npos);
}

}  // namespace
}  // namespace headroom::sim
