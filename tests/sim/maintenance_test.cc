#include "sim/maintenance.h"

#include <gtest/gtest.h>

namespace headroom::sim {
namespace {

constexpr telemetry::SimTime kDay = 86400;

MaintenancePolicy quiet_policy() {
  MaintenancePolicy p;
  p.deploy_offline_hours = 0.0;
  p.repurpose_fraction = 0.0;
  p.infra_event_daily_prob = 0.0;
  return p;
}

double measured_availability(const MaintenanceSchedule& schedule,
                             std::uint32_t server, std::size_t pool_size,
                             telemetry::SimTime from, telemetry::SimTime to,
                             telemetry::SimTime step = 60) {
  std::size_t online = 0;
  std::size_t total = 0;
  for (telemetry::SimTime t = from; t < to; t += step) {
    ++total;
    online += schedule.offline(server, pool_size, t) ? 0u : 1u;
  }
  return static_cast<double>(online) / static_cast<double>(total);
}

TEST(MaintenanceSchedule, QuietPolicyAlwaysOnline) {
  const MaintenanceSchedule schedule(quiet_policy(), 1, 0.0);
  for (telemetry::SimTime t = 0; t < 3 * kDay; t += 3600) {
    EXPECT_FALSE(schedule.offline(0, 100, t));
  }
}

TEST(MaintenanceSchedule, DeployHoursMatchConfiguredBudget) {
  MaintenancePolicy p = quiet_policy();
  p.deploy_offline_hours = 2.4;  // 10% of the day
  const MaintenanceSchedule schedule(p, 7, 0.0);
  // Average availability across servers and days ≈ 90%.
  double acc = 0.0;
  const int servers = 40;
  for (int s = 0; s < servers; ++s) {
    acc += measured_availability(schedule, static_cast<std::uint32_t>(s), 100,
                                 0, 5 * kDay);
  }
  EXPECT_NEAR(acc / servers, 0.90, 0.01);
}

TEST(MaintenanceSchedule, DeploySlotsAreStaggeredAcrossServers) {
  MaintenancePolicy p = quiet_policy();
  p.deploy_offline_hours = 2.0;
  const MaintenanceSchedule schedule(p, 11, 0.0);
  // At any instant, only a fraction of the pool should be deploying —
  // never everyone at once (that would be an outage, not a rolling deploy).
  for (telemetry::SimTime t = 0; t < kDay; t += 7200) {
    std::size_t offline = 0;
    for (std::uint32_t s = 0; s < 200; ++s) {
      offline += schedule.offline(s, 200, t) ? 1u : 0u;
    }
    EXPECT_LT(offline, 60u) << "t=" << t;  // well below the whole pool
  }
}

TEST(MaintenanceSchedule, RepurposedServersAreTheLowIndices) {
  MaintenancePolicy p = quiet_policy();
  p.repurpose_fraction = 0.25;
  p.repurpose_start_hour = 2.0;
  p.repurpose_hours = 4.0;
  const MaintenanceSchedule schedule(p, 13, 0.0);
  const telemetry::SimTime inside = 3 * 3600;   // 03:00
  const telemetry::SimTime outside = 12 * 3600;  // noon
  EXPECT_TRUE(schedule.offline(0, 100, inside));
  EXPECT_TRUE(schedule.offline(24, 100, inside));
  EXPECT_FALSE(schedule.offline(25, 100, inside));
  EXPECT_FALSE(schedule.offline(0, 100, outside));
}

TEST(MaintenanceSchedule, RepurposeWindowRespectsTimezone) {
  MaintenancePolicy p = quiet_policy();
  p.repurpose_fraction = 1.0;
  p.repurpose_start_hour = 2.0;
  p.repurpose_hours = 1.0;
  // +8h timezone: local 02:00 == UTC 18:00.
  const MaintenanceSchedule schedule(p, 17, 8.0);
  EXPECT_TRUE(schedule.offline(0, 10, (18 * 3600) + 60));
  EXPECT_FALSE(schedule.offline(0, 10, (2 * 3600) + 60));
}

TEST(MaintenanceSchedule, InfraEventsHitConfiguredFractionOfServerDays) {
  MaintenancePolicy p = quiet_policy();
  p.infra_event_daily_prob = 0.10;
  p.infra_event_hours = 4.0;
  const MaintenanceSchedule schedule(p, 19, 0.0);
  std::size_t affected_days = 0;
  std::size_t total_days = 0;
  for (std::uint32_t s = 0; s < 50; ++s) {
    for (std::int64_t day = 0; day < 40; ++day) {
      ++total_days;
      bool any_offline = false;
      for (telemetry::SimTime t = day * kDay; t < (day + 1) * kDay; t += 900) {
        if (schedule.offline(s, 100, t)) {
          any_offline = true;
          break;
        }
      }
      affected_days += any_offline ? 1u : 0u;
    }
  }
  EXPECT_NEAR(static_cast<double>(affected_days) /
                  static_cast<double>(total_days),
              0.10, 0.02);
}

TEST(MaintenanceSchedule, IncidentTakesConfiguredFractionOffline) {
  MaintenancePolicy p = quiet_policy();
  MaintenanceSchedule schedule(p, 23, 0.0);
  PoolIncident incident;
  incident.day = 2;
  incident.offline_fraction = 0.4;
  incident.start_hour = 8.0;
  incident.duration_hours = 6.0;
  schedule.add_incident(incident);

  const telemetry::SimTime during = 2 * kDay + 10 * 3600;
  std::size_t offline = 0;
  const std::size_t pool = 200;
  for (std::uint32_t s = 0; s < pool; ++s) {
    offline += schedule.offline(s, pool, during) ? 1u : 0u;
  }
  EXPECT_NEAR(static_cast<double>(offline) / static_cast<double>(pool), 0.4,
              0.05);

  // Other days and hours unaffected.
  EXPECT_FALSE(schedule.offline(0, pool, kDay + 10 * 3600) &&
               schedule.offline(1, pool, kDay + 10 * 3600) &&
               schedule.offline(2, pool, kDay + 10 * 3600));
}

TEST(MaintenanceSchedule, DeterministicAcrossInstances) {
  MaintenancePolicy p = quiet_policy();
  p.deploy_offline_hours = 1.0;
  p.infra_event_daily_prob = 0.05;
  const MaintenanceSchedule a(p, 31, 0.0);
  const MaintenanceSchedule b(p, 31, 0.0);
  for (telemetry::SimTime t = 0; t < kDay; t += 1800) {
    for (std::uint32_t s = 0; s < 20; ++s) {
      EXPECT_EQ(a.offline(s, 50, t), b.offline(s, 50, t));
    }
  }
}

TEST(MaintenanceSchedule, DifferentSeedsDifferentSchedules) {
  MaintenancePolicy p = quiet_policy();
  p.deploy_offline_hours = 2.0;
  const MaintenanceSchedule a(p, 1, 0.0);
  const MaintenanceSchedule b(p, 2, 0.0);
  std::size_t differences = 0;
  for (telemetry::SimTime t = 0; t < kDay; t += 600) {
    for (std::uint32_t s = 0; s < 10; ++s) {
      if (a.offline(s, 50, t) != b.offline(s, 50, t)) ++differences;
    }
  }
  EXPECT_GT(differences, 0u);
}

}  // namespace
}  // namespace headroom::sim
