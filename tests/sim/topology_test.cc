#include "sim/topology.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <stdexcept>

namespace headroom::sim {
namespace {

TEST(SizePool, CeilsToWholeServers) {
  EXPECT_EQ(size_pool(1000.0, 100.0), 10u);
  EXPECT_EQ(size_pool(1001.0, 100.0), 11u);
  EXPECT_EQ(size_pool(50.0, 100.0), 1u);
}

TEST(SizePool, RejectsNonPositive) {
  EXPECT_THROW((void)size_pool(0.0, 100.0), std::invalid_argument);
  EXPECT_THROW((void)size_pool(100.0, 0.0), std::invalid_argument);
}

TEST(StandardDatacenters, NineRegionsWithDistinctTimezones) {
  const auto dcs = standard_datacenters();
  ASSERT_EQ(dcs.size(), 9u);  // the paper's nine geographic regions
  std::set<double> timezones;
  for (const auto& dc : dcs) {
    timezones.insert(dc.timezone_offset_hours);
    EXPECT_GT(dc.demand_weight, 0.0);
  }
  EXPECT_EQ(timezones.size(), 9u);
  // Spread across the globe: range of at least 12 hours.
  EXPECT_GE(*timezones.rbegin() - *timezones.begin(), 12.0);
}

TEST(StandardFleet, OnePoolPerServicePerDatacenter) {
  const MicroserviceCatalog catalog;
  const FleetConfig config = standard_fleet(catalog);
  ASSERT_EQ(config.datacenters.size(), 9u);
  for (const auto& dc : config.datacenters) {
    ASSERT_EQ(dc.pools.size(), 7u);  // A-G by default
    for (const auto& pool : dc.pools) {
      EXPECT_GE(pool.servers, 1u);
    }
  }
}

TEST(StandardFleet, PoolSizesScaleWithDemandWeight) {
  const MicroserviceCatalog catalog;
  const FleetConfig config = standard_fleet(catalog);
  // DC1 (weight 1.2) must have more D servers than DC3 (weight 0.5).
  const auto find_pool = [&](std::size_t dc, const std::string& service) {
    for (const auto& pool : config.datacenters[dc].pools) {
      if (pool.service == service) return pool.servers;
    }
    return std::size_t{0};
  };
  EXPECT_GT(find_pool(0, "D"), find_pool(2, "D"));
}

TEST(StandardFleet, PoolSizeMatchesOperatingPoint) {
  const MicroserviceCatalog catalog;
  StandardFleetOptions opt;
  opt.services = {"B"};
  opt.regional_peak_rps = 20000.0;
  const FleetConfig config = standard_fleet(catalog, opt);
  // DC1: weight 1.2 → peak 24000 RPS; at 377 RPS/server → 64 servers.
  EXPECT_EQ(config.datacenters[0].pools[0].servers,
            size_pool(24000.0, 377.0));
}

TEST(StandardFleet, PoolIGetsHardwareMixWhenRequested) {
  const MicroserviceCatalog catalog;
  StandardFleetOptions opt;
  opt.services = {"I"};
  opt.hardware_refresh_in_pool_i = true;
  const FleetConfig config = standard_fleet(catalog, opt);
  EXPECT_EQ(config.datacenters[0].pools[0].hardware.size(), 2u);

  opt.hardware_refresh_in_pool_i = false;
  const FleetConfig plain = standard_fleet(catalog, opt);
  EXPECT_EQ(plain.datacenters[0].pools[0].hardware.size(), 1u);
}

TEST(StandardFleet, HeterogeneousUtilizationCreatesHotPools) {
  const MicroserviceCatalog catalog;
  StandardFleetOptions opt;
  opt.heterogeneous_utilization = true;
  const FleetConfig config = standard_fleet(catalog, opt);
  std::size_t hot = 0;
  std::size_t total = 0;
  for (const auto& dc : config.datacenters) {
    for (const auto& pool : dc.pools) {
      ++total;
      if (pool.demand_multiplier > 1.0) ++hot;
    }
  }
  EXPECT_GT(hot, 0u);
  EXPECT_LT(hot, total);  // most pools stay cool
}

TEST(StandardFleet, HomogeneousByDefault) {
  const MicroserviceCatalog catalog;
  const FleetConfig config = standard_fleet(catalog);
  for (const auto& dc : config.datacenters) {
    for (const auto& pool : dc.pools) {
      EXPECT_DOUBLE_EQ(pool.demand_multiplier, 1.0);
    }
  }
}

TEST(StandardFleet, MaintenancePracticesDifferByService) {
  const MicroserviceCatalog catalog;
  const FleetConfig config = standard_fleet(catalog);
  const auto policy_of = [&](const std::string& service) {
    for (const auto& pool : config.datacenters[0].pools) {
      if (pool.service == service) return pool.maintenance;
    }
    return MaintenancePolicy{};
  };
  // Pool B is re-purposed off-peak (the <80% availability cohort);
  // pool D is well-managed (~2% downtime).
  EXPECT_GT(policy_of("B").repurpose_fraction, 0.0);
  EXPECT_EQ(policy_of("D").repurpose_fraction, 0.0);
  EXPECT_LT(policy_of("D").deploy_offline_hours,
            policy_of("C").deploy_offline_hours);
}

}  // namespace
}  // namespace headroom::sim
