// Serial-vs-threaded equivalence: for any thread count the fleet simulator
// must produce a bit-identical MetricStore, AvailabilityLedger, CPU sample
// histogram, and server-day digest list (ISSUE 2 acceptance criterion).
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "sim/fleet.h"

namespace headroom::sim {
namespace {

constexpr telemetry::SimTime kDay = 86400;
using telemetry::MetricKind;
using telemetry::SeriesKey;

/// Multi-DC fleet with the full event mix: maintenance, a pool incident,
/// a DC outage, and a flash-crowd traffic multiplier.
FleetConfig eventful_config(const MicroserviceCatalog& catalog,
                            std::size_t datacenters = 4,
                            std::size_t servers = 12) {
  FleetConfig config =
      multi_dc_pool_fleet(catalog, "B", datacenters, servers, 11);
  // Give one pool a non-trivial maintenance mix and an incident day.
  auto& pool0 = config.datacenters[0].pools[0];
  pool0.maintenance.deploy_offline_hours = 1.2;
  pool0.maintenance.infra_event_daily_prob = 0.1;
  pool0.incidents.push_back(
      {.day = 0, .offline_fraction = 0.25, .start_hour = 6.0,
       .duration_hours = 3.0});
  // Outage: DC1 dark for two hours; survivors absorb its traffic.
  workload::CapacityEvent outage;
  outage.kind = workload::EventKind::kDatacenterOutage;
  outage.start = 10 * 3600;
  outage.end = 12 * 3600;
  outage.datacenter = 1;
  config.events.add(outage);
  // Flash crowd on DC2.
  workload::CapacityEvent surge;
  surge.kind = workload::EventKind::kTrafficMultiplier;
  surge.start = 15 * 3600;
  surge.end = 16 * 3600;
  surge.multiplier = 3.0;
  surge.datacenter = 2;
  config.events.add(surge);
  config.record_server_series = true;
  return config;
}

bool key_less(const SeriesKey& a, const SeriesKey& b) {
  return std::tuple(a.datacenter, a.pool, a.server,
                    static_cast<int>(a.metric)) <
         std::tuple(b.datacenter, b.pool, b.server, static_cast<int>(b.metric));
}

void expect_identical(const FleetSimulator& a, const FleetSimulator& b) {
  // MetricStore: same keys, and every series bit-identical.
  std::vector<SeriesKey> keys_a = a.store().keys();
  std::vector<SeriesKey> keys_b = b.store().keys();
  std::sort(keys_a.begin(), keys_a.end(), key_less);
  std::sort(keys_b.begin(), keys_b.end(), key_less);
  ASSERT_EQ(keys_a.size(), keys_b.size());
  for (std::size_t i = 0; i < keys_a.size(); ++i) {
    ASSERT_TRUE(keys_a[i] == keys_b[i]);
  }
  EXPECT_EQ(a.store().sample_count(), b.store().sample_count());
  for (const SeriesKey& key : keys_a) {
    const auto& sa = a.store().series(key);
    const auto& sb = b.store().series(key);
    ASSERT_EQ(sa.size(), sb.size());
    for (std::size_t i = 0; i < sa.size(); ++i) {
      EXPECT_EQ(sa.at(i).window_start, sb.at(i).window_start);
      EXPECT_DOUBLE_EQ(sa.at(i).value, sb.at(i).value);  // exact equality
    }
  }

  // AvailabilityLedger: day totals are integer-second sums.
  EXPECT_DOUBLE_EQ(a.ledger().fleet_average(), b.ledger().fleet_average());
  std::vector<double> daily_a = a.ledger().all_daily_availabilities();
  std::vector<double> daily_b = b.ledger().all_daily_availabilities();
  std::sort(daily_a.begin(), daily_a.end());
  std::sort(daily_b.begin(), daily_b.end());
  ASSERT_EQ(daily_a.size(), daily_b.size());
  for (std::size_t i = 0; i < daily_a.size(); ++i) {
    EXPECT_DOUBLE_EQ(daily_a[i], daily_b[i]);
  }

  // Fleet-wide CPU sample histogram.
  ASSERT_EQ(a.cpu_sample_histogram().bin_count(),
            b.cpu_sample_histogram().bin_count());
  EXPECT_EQ(a.cpu_sample_histogram().total(), b.cpu_sample_histogram().total());
  for (std::size_t i = 0; i < a.cpu_sample_histogram().bin_count(); ++i) {
    EXPECT_EQ(a.cpu_sample_histogram().count_in_bin(i),
              b.cpu_sample_histogram().count_in_bin(i));
  }

  // Per-server-day digests (flushed on the main thread in pool order).
  ASSERT_EQ(a.server_day_cpu().size(), b.server_day_cpu().size());
  for (std::size_t i = 0; i < a.server_day_cpu().size(); ++i) {
    const ServerDayCpu& da = a.server_day_cpu()[i];
    const ServerDayCpu& db = b.server_day_cpu()[i];
    EXPECT_EQ(da.datacenter, db.datacenter);
    EXPECT_EQ(da.pool, db.pool);
    EXPECT_EQ(da.server, db.server);
    EXPECT_EQ(da.day, db.day);
    EXPECT_EQ(da.cpu.count, db.cpu.count);
    EXPECT_DOUBLE_EQ(da.cpu.p5, db.cpu.p5);
    EXPECT_DOUBLE_EQ(da.cpu.p50, db.cpu.p50);
    EXPECT_DOUBLE_EQ(da.cpu.p95, db.cpu.p95);
    EXPECT_DOUBLE_EQ(da.cpu.mean, db.cpu.mean);
    EXPECT_DOUBLE_EQ(da.cpu.max, db.cpu.max);
  }
}

TEST(FleetParallel, ThreadedMatchesSerialWithOutageAndMaintenance) {
  const MicroserviceCatalog catalog;
  FleetConfig serial_cfg = eventful_config(catalog);
  serial_cfg.threads = 1;
  FleetConfig par_cfg = eventful_config(catalog);
  par_cfg.threads = 4;

  FleetSimulator serial(std::move(serial_cfg), catalog);
  FleetSimulator parallel(std::move(par_cfg), catalog);
  EXPECT_EQ(serial.thread_count(), 1u);
  EXPECT_EQ(parallel.thread_count(), 4u);

  serial.run_until(kDay + kDay / 2);
  parallel.run_until(kDay + kDay / 2);
  serial.finish_day();
  parallel.finish_day();
  expect_identical(serial, parallel);
}

TEST(FleetParallel, SetServingCountMidRunUnderThreads) {
  const MicroserviceCatalog catalog;
  FleetConfig serial_cfg = eventful_config(catalog);
  serial_cfg.threads = 1;
  FleetConfig par_cfg = eventful_config(catalog);
  par_cfg.threads = 3;

  FleetSimulator serial(std::move(serial_cfg), catalog);
  FleetSimulator parallel(std::move(par_cfg), catalog);

  serial.run_until(kDay);
  parallel.run_until(kDay);
  serial.set_serving_count(0, 0, 8);  // -33% reduction experiment
  parallel.set_serving_count(0, 0, 8);
  serial.run_until(2 * kDay);
  parallel.run_until(2 * kDay);
  serial.finish_day();
  parallel.finish_day();
  expect_identical(serial, parallel);

  // The reduction semantics survive the parallel path: per-server load rose.
  const auto& series =
      parallel.store().pool_series(0, 0, MetricKind::kRequestsPerSecond);
  const auto before = series.values_between(0, kDay);
  const auto after = series.values_between(kDay, 2 * kDay);
  double peak_before = 0.0;
  double peak_after = 0.0;
  for (double v : before) peak_before = std::max(peak_before, v);
  for (double v : after) peak_after = std::max(peak_after, v);
  EXPECT_GT(peak_after / peak_before, 1.2);
}

TEST(FleetParallel, ThreadCountClampsToPoolCount) {
  const MicroserviceCatalog catalog;
  FleetConfig config = multi_dc_pool_fleet(catalog, "D", 2, 6, 3);
  config.threads = 16;  // only 2 pools exist
  const FleetSimulator fleet(std::move(config), catalog);
  EXPECT_EQ(fleet.thread_count(), 2u);
}

TEST(FleetParallel, ZeroThreadsResolvesToHardwareConcurrency) {
  const MicroserviceCatalog catalog;
  FleetConfig config = multi_dc_pool_fleet(catalog, "D", 3, 6, 3);
  config.threads = 0;
  const FleetSimulator fleet(std::move(config), catalog);
  EXPECT_GE(fleet.thread_count(), 1u);
  EXPECT_LE(fleet.thread_count(), 3u);  // clamped to the pool count
}

TEST(FleetParallel, ManyThreadCountsAgreeOnShortRun) {
  const MicroserviceCatalog catalog;
  FleetConfig base = eventful_config(catalog, 3, 8);
  base.threads = 1;
  FleetSimulator serial(std::move(base), catalog);
  serial.run_until(6 * 3600);
  for (const std::size_t threads : {2u, 3u, 5u}) {
    FleetConfig cfg = eventful_config(catalog, 3, 8);
    cfg.threads = threads;
    FleetSimulator par(std::move(cfg), catalog);
    par.run_until(6 * 3600);
    expect_identical(serial, par);
  }
}

}  // namespace
}  // namespace headroom::sim
