// Unit pins for the pluggable failover policies (sim/failover.h).
//
// kNearestSurvivor must stay bit-identical to the pre-refactor hardcoded
// redistribution loop (the scenario goldens pin it end to end; here the
// share arithmetic is pinned against hand math), and the two alternative
// worlds must honour their documented semantics.
#include "sim/failover.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace headroom::sim {
namespace {

std::vector<DatacenterConfig> four_dcs() {
  // Timezones chosen so DC1 is closest to DC0 and the wrap matters for
  // DC3: |0 - 16| = 16 -> wrapped 8.
  std::vector<DatacenterConfig> dcs(4);
  dcs[0].timezone_offset_hours = 0.0;
  dcs[0].demand_weight = 1.0;
  dcs[1].timezone_offset_hours = 2.0;
  dcs[1].demand_weight = 2.0;
  dcs[2].timezone_offset_hours = 7.0;
  dcs[2].demand_weight = 1.0;
  dcs[3].timezone_offset_hours = 16.0;
  dcs[3].demand_weight = 4.0;
  return dcs;
}

TEST(FailoverAffinity, MatchesClosedFormAndWraps) {
  // 1 / (1 + (d/2.5)^2) with the 24h wrap.
  EXPECT_DOUBLE_EQ(failover_affinity(0.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(failover_affinity(0.0, 2.5), 0.5);
  EXPECT_DOUBLE_EQ(failover_affinity(2.5, 0.0), 0.5);
  // 16h apart wraps to 8h, identical to a plain 8h separation.
  EXPECT_DOUBLE_EQ(failover_affinity(0.0, 16.0), failover_affinity(0.0, 8.0));
  const double d = 8.0 / 2.5;
  EXPECT_DOUBLE_EQ(failover_affinity(0.0, 16.0), 1.0 / (1.0 + d * d));
}

TEST(FailoverNames, RoundTrip) {
  for (const FailoverPolicyKind kind :
       {FailoverPolicyKind::kNearestSurvivor, FailoverPolicyKind::kLatencyAware,
        FailoverPolicyKind::kCostAware}) {
    FailoverPolicyKind parsed{};
    ASSERT_TRUE(failover_policy_from_string(to_string(kind), parsed))
        << to_string(kind);
    EXPECT_EQ(parsed, kind);
  }
  FailoverPolicyKind unused = FailoverPolicyKind::kCostAware;
  EXPECT_FALSE(failover_policy_from_string("closest", unused));
  EXPECT_FALSE(failover_policy_from_string("", unused));
  EXPECT_EQ(unused, FailoverPolicyKind::kCostAware) << "out must stay put";
}

TEST(NearestSurvivor, MatchesHandComputedShares) {
  const std::vector<DatacenterConfig> dcs = four_dcs();
  const auto policy =
      make_failover_policy(FailoverPolicyKind::kNearestSurvivor, dcs);
  ASSERT_EQ(policy->kind(), FailoverPolicyKind::kNearestSurvivor);

  std::vector<double> demand = {10.0, 20.0, 30.0, 40.0};
  const std::vector<std::uint8_t> down = {1, 0, 0, 0};
  policy->redistribute(down, demand);

  // Exactly the pre-refactor loop, by hand: survivor share is
  // weight_d * affinity(tz_d, tz_0), normalised over survivors in order.
  const double s1 = 2.0 * failover_affinity(2.0, 0.0);
  const double s2 = 1.0 * failover_affinity(7.0, 0.0);
  const double s3 = 4.0 * failover_affinity(16.0, 0.0);
  double total = 0.0;
  total += s1;
  total += s2;
  total += s3;
  EXPECT_DOUBLE_EQ(demand[0], 0.0);
  EXPECT_DOUBLE_EQ(demand[1], 20.0 + 10.0 * (s1 / total));
  EXPECT_DOUBLE_EQ(demand[2], 30.0 + 10.0 * (s2 / total));
  EXPECT_DOUBLE_EQ(demand[3], 40.0 + 10.0 * (s3 / total));
  // Traffic is conserved when someone survives.
  EXPECT_NEAR(demand[1] + demand[2] + demand[3], 100.0, 1e-9);
}

TEST(NearestSurvivor, DropsTrafficWhenEveryoneIsDown) {
  const std::vector<DatacenterConfig> dcs = four_dcs();
  const auto policy =
      make_failover_policy(FailoverPolicyKind::kNearestSurvivor, dcs);
  std::vector<double> demand = {10.0, 20.0, 30.0, 40.0};
  const std::vector<std::uint8_t> down = {1, 1, 1, 1};
  policy->redistribute(down, demand);
  for (const double d : demand) EXPECT_DOUBLE_EQ(d, 0.0);
}

TEST(LatencyAware, AllTrafficToClosestSurvivor) {
  const std::vector<DatacenterConfig> dcs = four_dcs();
  const auto policy =
      make_failover_policy(FailoverPolicyKind::kLatencyAware, dcs);
  ASSERT_EQ(policy->kind(), FailoverPolicyKind::kLatencyAware);

  std::vector<double> demand = {10.0, 20.0, 30.0, 40.0};
  const std::vector<std::uint8_t> down = {1, 0, 0, 0};
  policy->redistribute(down, demand);

  // DC1 (2h away) is strictly closest to DC0: it takes everything.
  EXPECT_DOUBLE_EQ(demand[0], 0.0);
  EXPECT_DOUBLE_EQ(demand[1], 30.0);
  EXPECT_DOUBLE_EQ(demand[2], 30.0);
  EXPECT_DOUBLE_EQ(demand[3], 40.0);
}

TEST(LatencyAware, TiesSplitByWeightAndCascadeToNextClosest) {
  // DC1 and DC2 are both 3h from DC0, with weights 1 and 3.
  std::vector<DatacenterConfig> dcs(3);
  dcs[0].timezone_offset_hours = 0.0;
  dcs[0].demand_weight = 1.0;
  dcs[1].timezone_offset_hours = 3.0;
  dcs[1].demand_weight = 1.0;
  dcs[2].timezone_offset_hours = -3.0;
  dcs[2].demand_weight = 3.0;
  const auto policy =
      make_failover_policy(FailoverPolicyKind::kLatencyAware, dcs);

  std::vector<double> demand = {8.0, 1.0, 1.0};
  const std::vector<std::uint8_t> down = {1, 0, 0};
  policy->redistribute(down, demand);
  EXPECT_DOUBLE_EQ(demand[1], 1.0 + 8.0 * 0.25);
  EXPECT_DOUBLE_EQ(demand[2], 1.0 + 8.0 * 0.75);

  // With the closest survivor also down, the next-closest takes over.
  std::vector<double> cascade = {8.0, 1.0, 1.0};
  const std::vector<std::uint8_t> both = {1, 1, 0};
  policy->redistribute(both, cascade);
  EXPECT_DOUBLE_EQ(cascade[1], 0.0);
  EXPECT_DOUBLE_EQ(cascade[2], 10.0);
}

TEST(CostAware, ProportionalToWeightIgnoringGeography) {
  const std::vector<DatacenterConfig> dcs = four_dcs();
  const auto policy = make_failover_policy(FailoverPolicyKind::kCostAware, dcs);
  ASSERT_EQ(policy->kind(), FailoverPolicyKind::kCostAware);

  std::vector<double> demand = {14.0, 20.0, 30.0, 40.0};
  const std::vector<std::uint8_t> down = {1, 0, 0, 0};
  policy->redistribute(down, demand);

  // Survivor weights 2:1:4 over total 7.
  EXPECT_DOUBLE_EQ(demand[0], 0.0);
  EXPECT_DOUBLE_EQ(demand[1], 20.0 + 14.0 * (2.0 / 7.0));
  EXPECT_DOUBLE_EQ(demand[2], 30.0 + 14.0 * (1.0 / 7.0));
  EXPECT_DOUBLE_EQ(demand[3], 40.0 + 14.0 * (4.0 / 7.0));
}

TEST(Failover, MultipleDownDcsProcessInIndexOrder) {
  // With DC0 and DC1 both down, each orphaned demand goes straight to the
  // surviving DCs (a down DC never receives failover traffic), failed DCs
  // processed in index order — the pre-refactor loop's exact semantics.
  const std::vector<DatacenterConfig> dcs = four_dcs();
  const auto policy =
      make_failover_policy(FailoverPolicyKind::kNearestSurvivor, dcs);
  std::vector<double> demand = {10.0, 20.0, 30.0, 40.0};
  const std::vector<std::uint8_t> down = {1, 1, 0, 0};
  policy->redistribute(down, demand);

  const auto shares = [&](double tz_f, double orphaned, double& d2,
                          double& d3) {
    const double s2 = 1.0 * failover_affinity(7.0, tz_f);
    const double s3 = 4.0 * failover_affinity(16.0, tz_f);
    double total = 0.0;
    total += s2;
    total += s3;
    d2 = orphaned * (s2 / total);
    d3 = orphaned * (s3 / total);
  };
  double a2 = 0.0, a3 = 0.0, b2 = 0.0, b3 = 0.0;
  shares(0.0, 10.0, a2, a3);
  shares(2.0, 20.0, b2, b3);
  EXPECT_DOUBLE_EQ(demand[0], 0.0);
  EXPECT_DOUBLE_EQ(demand[1], 0.0);
  EXPECT_DOUBLE_EQ(demand[2], 30.0 + a2 + b2);
  EXPECT_DOUBLE_EQ(demand[3], 40.0 + a3 + b3);
  EXPECT_NEAR(demand[2] + demand[3], 100.0, 1e-9);
}

}  // namespace
}  // namespace headroom::sim
