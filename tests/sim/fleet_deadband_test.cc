// Large-fleet stepping controls: the quiescent dead band and the
// per-server accounting switch (FleetConfig::quiescent_dead_band,
// FleetConfig::per_server_accounting). Both must degrade gracefully —
// identical series shapes, bounded value drift, bit-identical pool series
// where the contract promises it — and stay deterministic across thread
// counts.
#include "sim/fleet.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace headroom::sim {
namespace {

constexpr telemetry::SimTime kDay = 86400;
using telemetry::MetricKind;
using telemetry::SeriesKey;

/// Two DCs, three pools: enough structure for sharding to matter.
FleetConfig small_fleet(const MicroserviceCatalog& catalog,
                        double dead_band = 0.0, bool accounting = true,
                        std::size_t threads = 1) {
  FleetConfig config;
  for (std::uint32_t d = 0; d < 2; ++d) {
    DatacenterConfig dc;
    dc.name = "DC" + std::to_string(d + 1);
    dc.demand_weight = 1.0;
    for (const char* service : {"B", "D"}) {
      if (d == 1 && service[0] == 'D') continue;
      PoolConfig pool;
      pool.service = service;
      pool.servers = 12;
      dc.pools.push_back(pool);
    }
    config.datacenters.push_back(dc);
  }
  const MicroserviceProfile& profile = catalog.by_name("B");
  config.diurnal.peak_rps = profile.target_rps_per_server_p95 * 12.0 /
                            profile.request_fan * 2.0;
  config.diurnal.trough_fraction = 0.45;
  config.diurnal.noise_sigma = 0.02;
  config.seed = 5;
  config.quiescent_dead_band = dead_band;
  config.per_server_accounting = accounting;
  config.threads = threads;
  return config;
}

/// Asserts every pool-scope series of `a` is bit-identical in `b`.
void expect_stores_identical(const telemetry::MetricStore& a,
                             const telemetry::MetricStore& b) {
  ASSERT_EQ(a.series_count(), b.series_count());
  ASSERT_EQ(a.sample_count(), b.sample_count());
  for (const SeriesKey& key : a.keys()) {
    const telemetry::TimeSeries& sa = a.series(key);
    const telemetry::TimeSeries& sb = b.series(key);
    ASSERT_EQ(sa.size(), sb.size());
    for (std::size_t i = 0; i < sa.size(); ++i) {
      ASSERT_EQ(sa.time_at(i), sb.time_at(i));
      ASSERT_EQ(sa.value_at(i), sb.value_at(i));  // bit-identical
    }
  }
}

TEST(FleetDeadBand, RejectsOutOfRangeBand) {
  const MicroserviceCatalog catalog;
  EXPECT_THROW(FleetSimulator(small_fleet(catalog, 1.0), catalog),
               std::invalid_argument);
  EXPECT_THROW(FleetSimulator(small_fleet(catalog, -0.1), catalog),
               std::invalid_argument);
}

TEST(FleetDeadBand, HeldWindowsKeepSeriesShapeAndBoundedDrift) {
  const MicroserviceCatalog catalog;
  FleetSimulator exact(small_fleet(catalog, 0.0), catalog);
  FleetSimulator banded(small_fleet(catalog, 0.05), catalog);
  exact.run_until(kDay);
  banded.run_until(kDay);

  // Same series at the same cadence: holding a pool re-emits its window,
  // it never goes dark.
  ASSERT_EQ(exact.store().series_count(), banded.store().series_count());
  ASSERT_EQ(exact.store().sample_count(), banded.store().sample_count());

  // Replayed windows pin the pool to a <=5%-stale workload, so the daily
  // mean of per-server RPS drifts by at most a few percent.
  for (std::uint32_t dc = 0; dc < 2; ++dc) {
    const auto ex = exact.store()
                        .pool_series(dc, 0, MetricKind::kRequestsPerSecond)
                        .values();
    const auto bd = banded.store()
                        .pool_series(dc, 0, MetricKind::kRequestsPerSecond)
                        .values();
    ASSERT_EQ(ex.size(), bd.size());
    double sum_ex = 0.0;
    double sum_bd = 0.0;
    for (std::size_t i = 0; i < ex.size(); ++i) {
      sum_ex += ex[i];
      sum_bd += bd[i];
    }
    EXPECT_NEAR(sum_bd / sum_ex, 1.0, 0.08);
  }
}

TEST(FleetDeadBand, DeterministicAcrossThreadCounts) {
  const MicroserviceCatalog catalog;
  FleetSimulator serial(small_fleet(catalog, 0.05, true, 1), catalog);
  FleetSimulator threaded(small_fleet(catalog, 0.05, true, 3), catalog);
  serial.run_until(kDay / 2);
  threaded.run_until(kDay / 2);
  EXPECT_EQ(threaded.thread_count(), 3u);
  expect_stores_identical(serial.store(), threaded.store());
  EXPECT_EQ(serial.ledger().fleet_average(), threaded.ledger().fleet_average());
}

TEST(FleetDeadBand, ServingChangeInvalidatesHeldPool) {
  const MicroserviceCatalog catalog;
  FleetSimulator fleet(small_fleet(catalog, 0.10), catalog);
  fleet.run_until(kDay / 4);
  fleet.set_serving_count(0, 0, 8);  // -33% mid-run
  fleet.run_until(kDay / 2);
  const auto& active =
      fleet.store().pool_series(0, 0, MetricKind::kActiveServers);
  // The reduction shows up in the very next window — a stale replay would
  // keep reporting 12 serving servers.
  const std::size_t boundary = static_cast<std::size_t>(kDay / 4 / 120);
  ASSERT_GT(active.size(), boundary);
  EXPECT_LE(active.value_at(boundary), 8.0);
}

TEST(FleetDeadBand, HourlySpikeWindowsDoNotPoisonTheCache) {
  const MicroserviceCatalog catalog;
  FleetConfig exact_cfg = small_fleet(catalog, 0.0);
  exact_cfg.datacenters[0].pools[0].hourly_spike_extra_pct = 12.0;
  FleetConfig banded_cfg = exact_cfg;
  banded_cfg.quiescent_dead_band = 0.05;

  FleetSimulator exact(std::move(exact_cfg), catalog);
  FleetSimulator banded(std::move(banded_cfg), catalog);
  exact.run_until(kDay);
  banded.run_until(kDay);

  const auto ex =
      exact.store().pool_series(0, 0, MetricKind::kCpuPercentTotal).values();
  const auto bd =
      banded.store().pool_series(0, 0, MetricKind::kCpuPercentTotal).values();
  ASSERT_EQ(ex.size(), bd.size());
  double sum_ex = 0.0;
  double sum_bd = 0.0;
  for (std::size_t i = 0; i < ex.size(); ++i) {
    sum_ex += ex[i];
    sum_bd += bd[i];
  }
  // A spike window must never populate the replay cache: if it did, the
  // quiescent windows that follow would replay its spike-elevated CPU for
  // up to an hour, lifting the daily mean by roughly the spike amplitude
  // (+12pp here). Honest replays track the exact mean to within the same
  // drift bound as the workload itself.
  EXPECT_NEAR(sum_bd / sum_ex, 1.0, 0.08);
}

TEST(FleetDeadBand, IncidentPoolsAreNeverHeld) {
  const MicroserviceCatalog catalog;
  FleetConfig with_incident = small_fleet(catalog, 0.0);
  PoolIncident incident;
  incident.day = 0;
  incident.offline_fraction = 0.5;
  incident.start_hour = 8.0;
  incident.duration_hours = 4.0;
  with_incident.datacenters[0].pools[0].incidents.push_back(incident);
  FleetConfig banded = with_incident;
  banded.quiescent_dead_band = 0.25;  // aggressive band

  FleetSimulator exact(std::move(with_incident), catalog);
  FleetSimulator held(std::move(banded), catalog);
  exact.run_until(kDay);
  held.run_until(kDay);

  // The incident pool opts out of the dead band entirely, so its series
  // are bit-identical to the exact run — the availability cliff is what
  // incident scenarios measure.
  const auto& ex = exact.store().pool_series(0, 0, MetricKind::kActiveServers);
  const auto& hd = held.store().pool_series(0, 0, MetricKind::kActiveServers);
  ASSERT_EQ(ex.size(), hd.size());
  for (std::size_t i = 0; i < ex.size(); ++i) {
    EXPECT_EQ(ex.value_at(i), hd.value_at(i));
  }
}

TEST(FleetAccounting, DisablingPerServerAccountingKeepsPoolSeriesExact) {
  const MicroserviceCatalog catalog;
  FleetSimulator full(small_fleet(catalog, 0.0, true), catalog);
  FleetSimulator lean(small_fleet(catalog, 0.0, false), catalog);
  full.run_until(kDay);
  lean.run_until(kDay);
  full.finish_day();
  lean.finish_day();

  // Pool-scope series are bit-identical: the switch only drops the ledger
  // and the per-server-day digests, never the pool telemetry.
  expect_stores_identical(full.store(), lean.store());

  EXPECT_FALSE(full.ledger().all_daily_availabilities().empty());
  EXPECT_TRUE(lean.ledger().all_daily_availabilities().empty());
  EXPECT_FALSE(full.server_day_cpu().empty());
  EXPECT_TRUE(lean.server_day_cpu().empty());

  // The fleet-wide CPU sample histogram survives the switch (Fig. 13 stays
  // renderable at million-server scale).
  EXPECT_EQ(full.cpu_sample_histogram().total(),
            lean.cpu_sample_histogram().total());
}

TEST(FleetAccounting, LeanModeComposesWithDeadBand) {
  const MicroserviceCatalog catalog;
  FleetSimulator fleet(small_fleet(catalog, 0.05, false, 2), catalog);
  fleet.run_until(kDay / 2);
  EXPECT_EQ(fleet.store()
                .pool_series(0, 0, MetricKind::kRequestsPerSecond)
                .size(),
            static_cast<std::size_t>(kDay / 2 / 120));
  EXPECT_TRUE(fleet.ledger().all_daily_availabilities().empty());
}

}  // namespace
}  // namespace headroom::sim
