#include "sim/worker_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace headroom::sim {
namespace {

TEST(WorkerPool, RunsEveryTaskExactlyOnce) {
  WorkerPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(64);
  pool.run(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(WorkerPool, SingleLaneRunsInline) {
  WorkerPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran(8);
  pool.run(ran.size(), [&](std::size_t i) { ran[i] = std::this_thread::get_id(); });
  for (const auto& id : ran) EXPECT_EQ(id, caller);
}

TEST(WorkerPool, ZeroTasksIsNoop) {
  WorkerPool pool(3);
  pool.run(0, [](std::size_t) { FAIL() << "no task should run"; });
}

TEST(WorkerPool, ReusableAcrossBatches) {
  WorkerPool pool(3);
  std::atomic<std::size_t> sum{0};
  for (int batch = 0; batch < 50; ++batch) {
    pool.run(16, [&](std::size_t i) { sum += i; });
  }
  EXPECT_EQ(sum.load(), 50u * (15u * 16u / 2u));
}

TEST(WorkerPool, MoreTasksThanLanes) {
  WorkerPool pool(2);
  std::vector<std::atomic<int>> hits(100);
  pool.run(hits.size(), [&](std::size_t i) { ++hits[i]; });
  int total = 0;
  for (const auto& h : hits) total += h.load();
  EXPECT_EQ(total, 100);
}

TEST(WorkerPool, PropagatesFirstException) {
  WorkerPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.run(16,
               [&](std::size_t i) {
                 if (i == 7) throw std::runtime_error("boom");
                 ++completed;
               }),
      std::runtime_error);
  // Remaining tasks still ran; the pool stays usable afterwards.
  EXPECT_EQ(completed.load(), 15);
  std::atomic<int> after{0};
  pool.run(4, [&](std::size_t) { ++after; });
  EXPECT_EQ(after.load(), 4);
}

}  // namespace
}  // namespace headroom::sim
