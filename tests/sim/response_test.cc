#include "sim/response.h"

#include <gtest/gtest.h>

namespace headroom::sim {
namespace {

MicroserviceProfile pool_b_profile() {
  MicroserviceCatalog catalog;
  return catalog.by_name("B");
}

TEST(ResponseModel, CpuIsLinearInRps) {
  const ResponseModel model(pool_b_profile(), HardwareGeneration{});
  const double at100 = model.cpu_attributed_pct(100.0);
  const double at200 = model.cpu_attributed_pct(200.0);
  const double at300 = model.cpu_attributed_pct(300.0);
  EXPECT_NEAR(at200 - at100, at300 - at200, 1e-12);
  EXPECT_NEAR(at100, 2.8, 1e-9);  // 0.028 %/RPS
}

TEST(ResponseModel, FasterHardwareLowersCpuSlope) {
  HardwareGeneration fast;
  fast.cpu_scale = 2.0;
  const MicroserviceProfile profile = pool_b_profile();
  const ResponseModel slow_model(profile, HardwareGeneration{});
  const ResponseModel fast_model(profile, fast);
  EXPECT_NEAR(fast_model.cpu_attributed_pct(100.0),
              slow_model.cpu_attributed_pct(100.0) / 2.0, 1e-12);
}

TEST(ResponseModel, UtilizationIncludesProcessBaseAndBackground) {
  const ResponseModel model(pool_b_profile(), HardwareGeneration{});
  // At zero load, utilization is (process_base + background)/100.
  EXPECT_NEAR(model.utilization(0.0, 1.0), (1.37 + 1.0) / 100.0, 1e-9);
}

TEST(ResponseModel, UtilizationIsClamped) {
  const ResponseModel model(pool_b_profile(), HardwareGeneration{});
  EXPECT_LE(model.utilization(1e9, 0.0), 0.97);
}

TEST(ResponseModel, LatencyHasColdStartDip) {
  // The paper's Fig. 6/11 shape: latency is *elevated* at very low RPS
  // (cache priming, JIT), dips at moderate load, then rises again.
  const ResponseModel model(pool_b_profile(), HardwareGeneration{});
  const double cold = model.latency_p95_ms(5.0, 1.0);
  const double warm = model.latency_p95_ms(400.0, 1.0);
  const double hot = model.latency_p95_ms(2500.0, 1.0);
  EXPECT_GT(cold, warm);
  EXPECT_GT(hot, warm);
}

TEST(ResponseModel, LatencyMonotoneAboveTheDip) {
  const ResponseModel model(pool_b_profile(), HardwareGeneration{});
  double prev = model.latency_p95_ms(500.0, 1.0);
  for (double rps = 600.0; rps <= 3000.0; rps += 100.0) {
    const double cur = model.latency_p95_ms(rps, 1.0);
    EXPECT_GE(cur, prev - 1e-9) << "rps=" << rps;
    prev = cur;
  }
}

TEST(ResponseModel, PoolBLatencyNearPaperAnchors) {
  // Fig. 9 anchors: ~30.5 ms at 377 RPS, ~30.9 at 540 RPS.
  const ResponseModel model(pool_b_profile(), HardwareGeneration{});
  EXPECT_NEAR(model.latency_p95_ms(377.0, 1.0), 30.7, 1.0);
  EXPECT_NEAR(model.latency_p95_ms(540.0, 1.0), 31.5, 1.5);
}

TEST(ResponseModel, PoolDLatencyNearPaperAnchors) {
  // Fig. 11 anchors: ~52.8 ms at 78 RPS, ~50.7 at 95 RPS, elevated at 20.
  MicroserviceCatalog catalog;
  const ResponseModel model(catalog.by_name("D"), HardwareGeneration{});
  EXPECT_NEAR(model.latency_p95_ms(77.7, 1.8), 52.8, 2.0);
  EXPECT_NEAR(model.latency_p95_ms(94.9, 1.8), 52.0, 2.5);
  EXPECT_GT(model.latency_p95_ms(20.0, 1.8), 65.0);
}

TEST(ResponseModel, ErrorsZeroBelowKneeGrowAbove) {
  const ResponseModel model(pool_b_profile(), HardwareGeneration{});
  EXPECT_EQ(model.errors_per_s(100.0, 1.0), 0.0);
  // Push utilization past the 90% knee: need rps ~ 0.9*100/0.028 ≈ 3200.
  const double past_knee = model.errors_per_s(3350.0, 1.0);
  EXPECT_GT(past_knee, 0.0);
  EXPECT_GT(model.errors_per_s(3450.0, 1.0), past_knee);
}

TEST(ResponseModel, SampleIsDeterministicPerSeed) {
  const ResponseModel model(pool_b_profile(), HardwareGeneration{});
  SplitMix64 rng1(42);
  SplitMix64 rng2(42);
  const ServerWindowMetrics a = model.sample(250.0, 1000, rng1);
  const ServerWindowMetrics b = model.sample(250.0, 1000, rng2);
  EXPECT_DOUBLE_EQ(a.cpu_pct_total, b.cpu_pct_total);
  EXPECT_DOUBLE_EQ(a.latency_p95_ms, b.latency_p95_ms);
  EXPECT_DOUBLE_EQ(a.network_bytes_per_s, b.network_bytes_per_s);
}

TEST(ResponseModel, SampleMetricsArePhysical) {
  const ResponseModel model(pool_b_profile(), HardwareGeneration{});
  SplitMix64 rng(7);
  for (int i = 0; i < 200; ++i) {
    const ServerWindowMetrics m = model.sample(300.0, i * 120, rng);
    EXPECT_GE(m.cpu_pct_attributed, 0.0);
    EXPECT_LE(m.cpu_pct_total, 100.0);
    EXPECT_GE(m.cpu_pct_total, m.cpu_pct_attributed);
    EXPECT_GT(m.latency_p95_ms, 0.0);
    EXPECT_GE(m.network_bytes_per_s, 0.0);
    EXPECT_GE(m.memory_pages_per_s, 0.0);
    EXPECT_GE(m.disk_queue_length, 0.0);
  }
}

TEST(ResponseModel, BackgroundSpikeRaisesTotalNotAttributed) {
  MicroserviceCatalog catalog;
  const MicroserviceProfile& a = catalog.by_name("A");  // has hourly spikes
  const ResponseModel model(a, HardwareGeneration{});
  // t=0 is inside the spike window (first 2 min of the hour); t=1800 not.
  double spike_total = 0.0;
  double quiet_total = 0.0;
  double spike_attr = 0.0;
  double quiet_attr = 0.0;
  for (int i = 0; i < 100; ++i) {
    SplitMix64 rng_a(static_cast<std::uint64_t>(i));
    SplitMix64 rng_b(static_cast<std::uint64_t>(i));
    spike_total += model.sample(500.0, 0, rng_a).cpu_pct_total;
    quiet_total += model.sample(500.0, 1800, rng_b).cpu_pct_total;
    SplitMix64 rng_c(static_cast<std::uint64_t>(i));
    spike_attr += model.sample(500.0, 0, rng_c).cpu_pct_attributed;
    SplitMix64 rng_d(static_cast<std::uint64_t>(i));
    quiet_attr += model.sample(500.0, 1800, rng_d).cpu_pct_attributed;
  }
  EXPECT_NEAR((spike_total - quiet_total) / 100.0, a.background_spike_pct,
              2.0);  // ~12% spike in the total-CPU counter
  EXPECT_NEAR(spike_attr / 100.0, quiet_attr / 100.0,
              1.0);  // attribution shields the per-workload metric
}

TEST(ResponseModel, SpikesCanBeDisabled) {
  MicroserviceCatalog catalog;
  const ResponseModel model(catalog.by_name("A"), HardwareGeneration{});
  SplitMix64 rng1(5);
  SplitMix64 rng2(5);
  const auto with = model.sample(500.0, 0, rng1, true);
  const auto without = model.sample(500.0, 0, rng2, false);
  EXPECT_GT(with.cpu_pct_total, without.cpu_pct_total + 5.0);
}

}  // namespace
}  // namespace headroom::sim
