#include "sim/request_sim.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "workload/synthetic.h"

namespace headroom::sim {
namespace {

workload::SyntheticWorkload simple_workload() {
  workload::RequestType t;
  t.name = "uniform";
  t.weight = 1.0;
  t.cost_mean = 1.0;
  t.cost_sigma = 0.1;
  return workload::SyntheticWorkload(workload::RequestMix({t}));
}

RequestSimConfig light_config() {
  RequestSimConfig config;
  config.servers = 4;
  config.cores = 8.0;
  config.base_service_ms = 4.0;
  config.warmup_requests = 0;  // disable cold start unless a test wants it
  config.window_seconds = 30;
  return config;
}

TEST(RequestSim, RejectsBadConfig) {
  const auto stream = simple_workload().generate(10.0, 1.0, 1);
  RequestSimConfig config = light_config();
  config.servers = 0;
  EXPECT_THROW((void)simulate_pool(config, stream), std::invalid_argument);
  config = light_config();
  config.cores = 0.0;
  EXPECT_THROW((void)simulate_pool(config, stream), std::invalid_argument);
}

TEST(RequestSim, RejectsUnorderedStream) {
  std::vector<workload::Request> stream(2);
  stream[0].arrival_s = 5.0;
  stream[1].arrival_s = 1.0;
  EXPECT_THROW((void)simulate_pool(light_config(), stream),
               std::invalid_argument);
}

TEST(RequestSim, EmptyStreamEmptyResult) {
  const RequestSimResult r = simulate_pool(light_config(), {});
  EXPECT_TRUE(r.completed.empty());
  EXPECT_EQ(r.latency.count, 0u);
}

TEST(RequestSim, AllRequestsComplete) {
  const auto stream = simple_workload().generate(200.0, 20.0, 3);
  const RequestSimResult r = simulate_pool(light_config(), stream);
  EXPECT_EQ(r.completed.size(), stream.size());
}

TEST(RequestSim, UnloadedLatencyEqualsServiceTime) {
  // One request at a time: latency == its service demand.
  std::vector<workload::Request> stream;
  for (int i = 0; i < 10; ++i) {
    workload::Request r;
    r.arrival_s = static_cast<double>(i);  // 1s apart, 4ms service: no overlap
    r.cost = 1.0;
    stream.push_back(r);
  }
  const RequestSimResult r = simulate_pool(light_config(), stream);
  ASSERT_EQ(r.completed.size(), 10u);
  for (const CompletedRequest& c : r.completed) {
    EXPECT_NEAR(c.latency_ms, 4.0, 1e-6);
  }
}

TEST(RequestSim, DependencyLatencyAddsToResponse) {
  std::vector<workload::Request> stream(1);
  stream[0].arrival_s = 0.0;
  stream[0].cost = 1.0;
  stream[0].dependency_ms = 25.0;
  const RequestSimResult r = simulate_pool(light_config(), stream);
  ASSERT_EQ(r.completed.size(), 1u);
  EXPECT_NEAR(r.completed[0].latency_ms, 29.0, 1e-6);
}

TEST(RequestSim, LatencyRisesWithLoad) {
  const auto workload = simple_workload();
  RequestSimConfig config = light_config();
  config.servers = 2;
  config.cores = 4.0;
  // Low load: ~100 RPS over 2 servers * 4 cores at 4ms → utilization 5%.
  const auto light = workload.generate(100.0, 30.0, 5);
  // Heavy load: utilization ~90%.
  const auto heavy = workload.generate(1800.0, 30.0, 7);
  const double l_light = simulate_pool(config, light).latency_p95_ms;
  const double l_heavy = simulate_pool(config, heavy).latency_p95_ms;
  EXPECT_GT(l_heavy, l_light * 1.5);
}

TEST(RequestSim, CpuUtilizationMatchesOfferedWork) {
  RequestSimConfig config = light_config();
  config.servers = 2;
  config.cores = 4.0;
  // 500 RPS * 4ms = 2 core-seconds/sec over 8 cores = 25%.
  const auto stream = simple_workload().generate(500.0, 60.0, 9);
  const RequestSimResult r = simulate_pool(config, stream);
  EXPECT_NEAR(r.mean_cpu_pct, 25.0, 3.0);
}

TEST(RequestSim, RoundRobinBalancesServers) {
  const auto stream = simple_workload().generate(400.0, 10.0, 11);
  const RequestSimResult r = simulate_pool(light_config(), stream);
  std::vector<std::size_t> counts(4, 0);
  for (const CompletedRequest& c : r.completed) ++counts[c.server];
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_NEAR(static_cast<double>(counts[s]),
                static_cast<double>(stream.size()) / 4.0,
                static_cast<double>(stream.size()) * 0.02);
  }
}

TEST(RequestSim, ColdStartElevatesEarlyLatency) {
  RequestSimConfig config = light_config();
  config.warmup_requests = 100;
  config.cold_cost_multiplier = 3.0;
  const auto stream = simple_workload().generate(200.0, 30.0, 13);
  const RequestSimResult r = simulate_pool(config, stream);
  // Mean latency of the first 200 completions vs the last 200.
  double early = 0.0;
  double late = 0.0;
  const std::size_t n = r.completed.size();
  ASSERT_GT(n, 800u);
  for (std::size_t i = 0; i < 200; ++i) early += r.completed[i].latency_ms;
  for (std::size_t i = n - 200; i < n; ++i) late += r.completed[i].latency_ms;
  EXPECT_GT(early / 200.0, late / 200.0 * 1.5);
}

TEST(RequestSim, ServiceFactorDefectInflatesCpuAndLatency) {
  const auto stream = simple_workload().generate(600.0, 30.0, 15);
  RequestSimConfig baseline = light_config();
  RequestSimConfig slow = light_config();
  slow.defect.service_factor = 1.5;
  const RequestSimResult rb = simulate_pool(baseline, stream);
  const RequestSimResult rs = simulate_pool(slow, stream);
  EXPECT_NEAR(rs.mean_cpu_pct / rb.mean_cpu_pct, 1.5, 0.1);
  EXPECT_GT(rs.latency.mean, rb.latency.mean * 1.3);
}

TEST(RequestSim, LeakDefectDegradesOverTime) {
  RequestSimConfig config = light_config();
  config.defect.leak_per_1k_requests = 0.5;  // +50% service per 1k served
  const auto stream = simple_workload().generate(400.0, 60.0, 17);
  const RequestSimResult r = simulate_pool(config, stream);
  const auto& latency =
      r.store.pool_series(0, 0, telemetry::MetricKind::kLatencyMeanMs);
  ASSERT_GE(latency.size(), 2u);
  EXPECT_GT(latency.at(latency.size() - 1).value, latency.at(0).value * 1.2);
}

TEST(RequestSim, OverloadDefectOnlyFiresAtHighConcurrency) {
  RequestSimConfig baseline = light_config();
  RequestSimConfig defect = light_config();
  defect.defect.overload_concurrency = 4;
  defect.defect.overload_extra_ms = 20.0;
  const auto light_load = simple_workload().generate(50.0, 20.0, 19);
  const auto heavy_load = simple_workload().generate(4000.0, 20.0, 21);
  // At light load the defect is invisible...
  EXPECT_NEAR(simulate_pool(defect, light_load).latency_p95_ms,
              simulate_pool(baseline, light_load).latency_p95_ms, 1.0);
  // ...at heavy load it bites. (The paper's Fig. 16 regression had exactly
  // this only-under-load signature.)
  EXPECT_GT(simulate_pool(defect, heavy_load).latency_p95_ms,
            simulate_pool(baseline, heavy_load).latency_p95_ms + 10.0);
}

TEST(RequestSim, WindowSeriesCoverRun) {
  RequestSimConfig config = light_config();
  config.window_seconds = 10;
  const auto stream = simple_workload().generate(300.0, 45.0, 23);
  const RequestSimResult r = simulate_pool(config, stream);
  const auto& rps =
      r.store.pool_series(0, 0, telemetry::MetricKind::kRequestsPerSecond);
  EXPECT_GE(rps.size(), 4u);
  // Per-server RPS ≈ 300/4 = 75.
  EXPECT_NEAR(rps.at(1).value, 75.0, 10.0);
}

TEST(RequestSim, DeterministicGivenIdenticalStream) {
  const auto stream = simple_workload().generate(500.0, 15.0, 25);
  const RequestSimResult a = simulate_pool(light_config(), stream);
  const RequestSimResult b = simulate_pool(light_config(), stream);
  ASSERT_EQ(a.completed.size(), b.completed.size());
  EXPECT_DOUBLE_EQ(a.latency_p95_ms, b.latency_p95_ms);
  EXPECT_DOUBLE_EQ(a.mean_cpu_pct, b.mean_cpu_pct);
}

}  // namespace
}  // namespace headroom::sim
