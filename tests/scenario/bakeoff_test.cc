// Golden frontier pins for the optimizer bake-off.
//
// Every shipped scenario (except the dead-band 100x smoke, which the
// bake-off refuses by design) runs the full tournament — RSM plus the five
// baseline planners over the identical observation grid — and the
// machine-readable frontier is pinned byte-for-byte against
// tests/scenario/golden/bakeoff/<name>.frontier, serial and at 4 stepping
// threads. Regenerate after an intentional change with
// HEADROOM_UPDATE_GOLDENS=1.
#include "scenario/bakeoff.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/scenario_parser.h"

#ifndef HEADROOM_SCENARIO_DIR
#error "HEADROOM_SCENARIO_DIR must point at examples/scenarios"
#endif
#ifndef HEADROOM_GOLDEN_DIR
#error "HEADROOM_GOLDEN_DIR must point at tests/scenario/golden"
#endif

namespace headroom::scenario {
namespace {

namespace fs = std::filesystem;

std::vector<std::string> bakeoff_stems() {
  std::vector<std::string> stems;
  for (const auto& entry : fs::directory_iterator(HEADROOM_SCENARIO_DIR)) {
    if (entry.is_regular_file() && entry.path().extension() == ".scn") {
      stems.push_back(entry.path().stem().string());
    }
  }
  // The 100x-scale smoke opts into approximate dead-band stepping;
  // run_bakeoff() rejects it (tested below) rather than pinning an
  // approximate frontier.
  std::erase(stems, std::string("standard_fleet_x100"));
  std::sort(stems.begin(), stems.end());
  return stems;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class BakeoffGolden : public ::testing::TestWithParam<std::string> {};

TEST_P(BakeoffGolden, FrontierMatchesPinAndIsThreadInvariant) {
  const fs::path scenario_path =
      fs::path(HEADROOM_SCENARIO_DIR) / (GetParam() + ".scn");
  ParseResult parsed = load_scenario_file(scenario_path.string());
  ASSERT_TRUE(parsed.ok()) << parsed.error;

  const BakeoffResult result = run_bakeoff(parsed.spec);
  const std::string frontier = format_frontier(result);

  // Structure: the RSM entrant plus at least four baseline planners, every
  // line accounted for the full observation span.
  ASSERT_GE(result.scores.size(), 5u);
  EXPECT_EQ(result.scores.front().planner, "rsm");
  for (const core::PlannerScore& s : result.scores) {
    EXPECT_GT(s.server_seconds, 0.0) << s.planner;
    EXPECT_DOUBLE_EQ(
        s.total_seconds,
        static_cast<double>(result.windows) *
            static_cast<double>(parsed.spec.window_seconds))
        << s.planner;
  }

  // Thread invariance: the frontier must not depend on stepping lanes.
  ScenarioSpec threaded = parsed.spec;
  threaded.threads = 4;
  const std::string threaded_frontier = format_frontier(run_bakeoff(threaded));
  EXPECT_EQ(frontier, threaded_frontier)
      << "frontier depends on the thread count";

  const fs::path golden_path =
      fs::path(HEADROOM_GOLDEN_DIR) / "bakeoff" / (GetParam() + ".frontier");
  if (std::getenv("HEADROOM_UPDATE_GOLDENS") != nullptr) {
    fs::create_directories(golden_path.parent_path());
    std::ofstream out(golden_path, std::ios::binary);
    out << frontier;
    ASSERT_TRUE(out.good()) << "failed to write " << golden_path;
    GTEST_SKIP() << "updated " << golden_path;
  }
  ASSERT_TRUE(fs::exists(golden_path))
      << "no frontier pin for " << GetParam()
      << "; run with HEADROOM_UPDATE_GOLDENS=1 to create it";
  EXPECT_EQ(frontier, read_file(golden_path))
      << "frontier drifted from " << golden_path
      << "; if intentional, regenerate with HEADROOM_UPDATE_GOLDENS=1";
}

INSTANTIATE_TEST_SUITE_P(Library, BakeoffGolden,
                         ::testing::ValuesIn(bakeoff_stems()));

TEST(Bakeoff, RejectsDeadBandScenarios) {
  const fs::path path =
      fs::path(HEADROOM_SCENARIO_DIR) / "standard_fleet_x100.scn";
  ParseResult parsed = load_scenario_file(path.string());
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ASSERT_GT(parsed.spec.quiescent_dead_band, 0.0);
  EXPECT_THROW((void)run_bakeoff(parsed.spec), std::invalid_argument);
}

TEST(Bakeoff, FrontierLinesAreMachineReadable) {
  ParseResult parsed = load_scenario_file(
      (fs::path(HEADROOM_SCENARIO_DIR) / "fig6_flash_crowd.scn").string());
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const BakeoffResult result = run_bakeoff(parsed.spec);
  const std::string frontier = format_frontier(result);

  std::istringstream lines(frontier);
  std::string line;
  std::size_t frontier_lines = 0;
  bool saw_header = false;
  while (std::getline(lines, line)) {
    if (line.rfind("bakeoff = ", 0) == 0) saw_header = true;
    if (line.rfind("frontier ", 0) == 0) {
      ++frontier_lines;
      EXPECT_NE(line.find(" server_seconds = "), std::string::npos) << line;
      EXPECT_NE(line.find(" violation_seconds = "), std::string::npos)
          << line;
      EXPECT_NE(line.find(" switched_servers = "), std::string::npos) << line;
    }
  }
  EXPECT_TRUE(saw_header);
  EXPECT_EQ(frontier_lines, result.scores.size());
}

}  // namespace
}  // namespace headroom::scenario
