// Trace directory loading: manifest/CSV diagnostics and replay-input
// validation. The happy path (export -> replay byte-identity) lives in
// tests/integration/trace_roundtrip_test.cc; this file exercises the
// failure surface on hand-crafted directories, no simulation involved.
#include "scenario/trace.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <string>

namespace headroom::scenario {
namespace {

namespace fs = std::filesystem;

constexpr const char* kScenario =
    "[scenario]\n"
    "name = trace_test\n"
    "days = 1\n"
    "window_seconds = 120\n"
    "steps = model\n"
    "\n"
    "[fleet]\n"
    "kind = single_pool\n"
    "service = D\n"
    "servers = 4\n";

constexpr const char* kManifest =
    "version = 1\n"
    "scenario = scenario.scn\n"
    "window_seconds = 120\n"
    "horizon_seconds = 86400\n"
    "server_day_cpu = server_day_cpu.csv\n"
    "pool = 0 0 pool_0_0.csv\n";

constexpr const char* kServerDays =
    "datacenter,pool,server,day,p5,p25,p50,p75,p95,mean,min,max,count\n"
    "0,0,0,0,1,2,3,4,5,3,1,5,10\n";

/// A minimal-but-valid pool CSV covering one day plus one RSM day.
std::string make_pool_csv() {
  std::string csv =
      "window_start,rps,cpu_pct_attributed,latency_p95_ms,active_servers\n";
  for (std::int64_t t = 0; t < 2 * 86400; t += 120) {
    csv += std::to_string(t) + ",100,40,20,4\n";
  }
  return csv;
}

/// Writes a trace directory from name -> contents, with overridable files.
fs::path write_trace_dir(const std::string& tag,
                         const std::map<std::string, std::string>& overrides) {
  const fs::path dir = fs::temp_directory_path() / ("headroom_tt_" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  std::map<std::string, std::string> files = {
      {"manifest.ini", kManifest},
      {"scenario.scn", kScenario},
      {"server_day_cpu.csv", kServerDays},
      {"pool_0_0.csv", make_pool_csv()},
  };
  for (const auto& [name, contents] : overrides) files[name] = contents;
  for (const auto& [name, contents] : files) {
    if (contents == "<absent>") continue;
    std::ofstream out(dir / name, std::ios::binary);
    out << contents;
  }
  return dir;
}

TEST(TraceLoad, HandCraftedTraceReplays) {
  const fs::path dir = write_trace_dir("ok", {});
  const TraceReplayResult replayed = replay_trace(dir.string());
  ASSERT_TRUE(replayed.ok()) << replayed.error;
  // steps = model only: no simulator-derived metrics beyond the
  // environment block, but the summary machinery must still run.
  EXPECT_EQ(replayed.result.spec.name, "trace_test");
  EXPECT_EQ(replayed.result.metrics.at("total_servers"), 4.0);
  EXPECT_EQ(replayed.result.metrics.count("model_equivalent"), 1u);
  fs::remove_all(dir);
}

TEST(TraceLoad, MissingDirectoryAndMissingFilesAreDiagnosed) {
  const TraceReplayResult none = replay_trace("/nonexistent/trace/dir");
  ASSERT_FALSE(none.ok());
  EXPECT_NE(none.error.find("cannot open trace manifest"), std::string::npos)
      << none.error;

  const fs::path no_pool = write_trace_dir("nopool", {{"pool_0_0.csv",
                                                       "<absent>"}});
  const TraceReplayResult missing_pool = replay_trace(no_pool.string());
  ASSERT_FALSE(missing_pool.ok());
  EXPECT_NE(missing_pool.error.find("cannot open pool trace"),
            std::string::npos)
      << missing_pool.error;
  fs::remove_all(no_pool);

  const fs::path no_days =
      write_trace_dir("nodays", {{"server_day_cpu.csv", "<absent>"}});
  const TraceReplayResult missing_days = replay_trace(no_days.string());
  ASSERT_FALSE(missing_days.ok());
  EXPECT_NE(missing_days.error.find("cannot open server-day trace"),
            std::string::npos)
      << missing_days.error;
  fs::remove_all(no_days);
}

TEST(TraceLoad, ManifestDiagnosticsCarryFileAndLine) {
  const struct {
    const char* tag;
    const char* manifest;
    const char* expected;  // substring of the error
  } cases[] = {
      {"vers", "version = 99\n", "unsupported trace format version '99'"},
      {"novers", "scenario = s\n", "missing 'version' key"},
      {"junk", "version = 1\nwhat is this\n",
       "manifest.ini:2: expected 'key = value'"},
      {"badkey", "version = 1\nfrobnicate = 3\n",
       "manifest.ini:2: unknown manifest key 'frobnicate'"},
      {"badpool", "version = 1\npool = 0 zero file.csv\n",
       "bad pool entry '0 zero file.csv'"},
      {"badwin", "version = 1\nwindow_seconds = -5\n",
       "bad window_seconds '-5'"},
      {"noscn",
       "version = 1\nwindow_seconds = 120\nhorizon_seconds = 86400\n"
       "server_day_cpu = d.csv\npool = 0 0 p.csv\n",
       "missing 'scenario' key"},
      {"nopools",
       "version = 1\nscenario = scenario.scn\nwindow_seconds = 120\n"
       "horizon_seconds = 86400\nserver_day_cpu = server_day_cpu.csv\n",
       "no 'pool' entries"},
  };
  for (const auto& c : cases) {
    const fs::path dir = write_trace_dir(c.tag, {{"manifest.ini", c.manifest}});
    const TraceReplayResult replayed = replay_trace(dir.string());
    ASSERT_FALSE(replayed.ok()) << c.tag;
    EXPECT_NE(replayed.error.find(c.expected), std::string::npos)
        << c.tag << ": " << replayed.error;
    fs::remove_all(dir);
  }
}

TEST(TraceLoad, ManifestMustAgreeWithTheScenario) {
  const std::string bad_window =
      std::string(kManifest).replace(std::string(kManifest).find("120"), 3,
                                     "600");
  const fs::path dir1 = write_trace_dir("win", {{"manifest.ini", bad_window}});
  const TraceReplayResult w = replay_trace(dir1.string());
  ASSERT_FALSE(w.ok());
  EXPECT_NE(w.error.find("window_seconds disagrees with the scenario"),
            std::string::npos)
      << w.error;
  fs::remove_all(dir1);

  const std::string bad_horizon =
      "version = 1\nscenario = scenario.scn\nwindow_seconds = 120\n"
      "horizon_seconds = 172800\nserver_day_cpu = server_day_cpu.csv\n"
      "pool = 0 0 pool_0_0.csv\n";
  const fs::path dir2 =
      write_trace_dir("hor", {{"manifest.ini", bad_horizon}});
  const TraceReplayResult h = replay_trace(dir2.string());
  ASSERT_FALSE(h.ok());
  EXPECT_NE(h.error.find("horizon_seconds disagrees"), std::string::npos)
      << h.error;
  fs::remove_all(dir2);
}

TEST(TraceLoad, RequiresTheTargetPool) {
  const std::string manifest =
      "version = 1\nscenario = scenario.scn\nwindow_seconds = 120\n"
      "horizon_seconds = 86400\nserver_day_cpu = server_day_cpu.csv\n"
      "pool = 1 0 pool_0_0.csv\n";
  const fs::path dir = write_trace_dir("notarget", {{"manifest.ini", manifest}});
  const TraceReplayResult replayed = replay_trace(dir.string());
  ASSERT_FALSE(replayed.ok());
  EXPECT_NE(replayed.error.find("no pool (0, 0)"), std::string::npos)
      << replayed.error;
  fs::remove_all(dir);
}

TEST(TraceLoad, ServerDayDiagnostics) {
  const struct {
    const char* tag;
    const char* contents;
    const char* expected;
  } cases[] = {
      {"hdr", "wrong,header\n", "server_day_cpu.csv:1: bad header"},
      {"fields",
       "datacenter,pool,server,day,p5,p25,p50,p75,p95,mean,min,max,count\n"
       "0,0,0\n",
       "server_day_cpu.csv:2: expected 13 fields, got 3"},
      {"key",
       "datacenter,pool,server,day,p5,p25,p50,p75,p95,mean,min,max,count\n"
       "x,0,0,0,1,2,3,4,5,3,1,5,10\n",
       "server_day_cpu.csv:2: bad row key"},
      {"value",
       "datacenter,pool,server,day,p5,p25,p50,p75,p95,mean,min,max,count\n"
       "0,0,0,0,nan,2,3,4,5,3,1,5,10\n",
       "server_day_cpu.csv:2: bad value 'nan'"},
      {"count",
       "datacenter,pool,server,day,p5,p25,p50,p75,p95,mean,min,max,count\n"
       "0,0,0,0,1,2,3,4,5,3,1,5,-1\n",
       "server_day_cpu.csv:2: bad count '-1'"},
  };
  for (const auto& c : cases) {
    const fs::path dir =
        write_trace_dir(c.tag, {{"server_day_cpu.csv", c.contents}});
    const TraceReplayResult replayed = replay_trace(dir.string());
    ASSERT_FALSE(replayed.ok()) << c.tag;
    EXPECT_NE(replayed.error.find(c.expected), std::string::npos)
        << c.tag << ": " << replayed.error;
    fs::remove_all(dir);
  }
}

TEST(TraceRoundTrip, SurvivesAWindowThatDoesNotDivideTheHorizon) {
  // With window_seconds = 7000, one day is 12.34 windows: the recording's
  // RSM phase starts at the overshot boundary t = 13 * 7000, and each
  // day-long observation covers ceil(86400/7000) = 13 windows. Replay
  // must follow the same grid or it reads shifted windows (or falsely
  // reports the trace exhausted).
  ScenarioSpec spec;
  spec.name = "odd_window";
  spec.days = 1;
  spec.servers = 8;
  spec.window_seconds = 7000;
  spec.steps = step_bit(PipelineStep::kMeasure) |
               step_bit(PipelineStep::kOptimize);

  const fs::path dir = fs::temp_directory_path() / "headroom_tt_oddwin";
  fs::remove_all(dir);
  ScenarioRunResult recorded;
  const TraceExportResult exported =
      export_trace(spec, dir.string(), &recorded);
  ASSERT_TRUE(exported.ok()) << exported.error;

  const TraceReplayResult replayed = replay_trace(dir.string());
  ASSERT_TRUE(replayed.ok()) << replayed.error;
  EXPECT_EQ(format_summary(replayed.result), format_summary(recorded));
  fs::remove_all(dir);
}

TEST(TraceExport, ReportsUnwritableDirectory) {
  ScenarioSpec spec;
  spec.name = "t";
  spec.days = 1;
  spec.servers = 4;
  spec.steps = step_bit(PipelineStep::kModel);
  const TraceExportResult exported =
      export_trace(spec, "/proc/headroom_cannot_write_here", nullptr);
  ASSERT_FALSE(exported.ok());
  EXPECT_NE(exported.error.find("cannot create trace directory"),
            std::string::npos)
      << exported.error;
}

}  // namespace
}  // namespace headroom::scenario
