#include "scenario/scenario_runner.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "scenario/scenario_spec.h"
#include "sim/microservice.h"
#include "sim/topology.h"

namespace headroom::scenario {
namespace {

ScenarioSpec measure_only(const std::string& name) {
  ScenarioSpec spec;
  spec.name = name;
  spec.days = 1;
  spec.steps = step_bit(PipelineStep::kMeasure);
  // Built via std::string rather than a char* assignment: the latter trips
  // GCC 12's -Wrestrict false positive (PR 105329) when inlined here.
  spec.service = std::string("B");
  spec.servers = 8;
  return spec;
}

TEST(ScenarioRunnerBuild, SinglePoolAppliesKnobs) {
  const sim::MicroserviceCatalog catalog;
  ScenarioSpec spec = measure_only("knobs");
  spec.window_seconds = 60;
  spec.threads = 3;
  const sim::FleetConfig config = ScenarioRunner::build_fleet(spec, catalog);
  ASSERT_EQ(config.datacenters.size(), 1u);
  ASSERT_EQ(config.datacenters[0].pools.size(), 1u);
  EXPECT_EQ(config.datacenters[0].pools[0].servers, 8u);
  EXPECT_EQ(config.window_seconds, 60);
  EXPECT_EQ(config.threads, 3u);
  EXPECT_EQ(config.seed, 5u);
}

TEST(ScenarioRunnerBuild, TrafficEventInstallsIntoSchedule) {
  const sim::MicroserviceCatalog catalog;
  ScenarioSpec spec = measure_only("traffic");
  ScenarioEvent e;
  e.kind = ScenarioEventKind::kTrafficMultiplier;
  e.start_hour = 2.0;
  e.duration_hours = 1.5;
  e.multiplier = 4.0;
  spec.events.push_back(e);
  const sim::FleetConfig config = ScenarioRunner::build_fleet(spec, catalog);
  EXPECT_DOUBLE_EQ(config.events.traffic_multiplier(2 * 3600, 0), 4.0);
  EXPECT_DOUBLE_EQ(config.events.traffic_multiplier(3 * 3600 + 1800, 0), 1.0);
}

TEST(ScenarioRunnerBuild, MaintenanceWaveBecomesPoolIncidents) {
  const sim::MicroserviceCatalog catalog;
  ScenarioSpec spec = measure_only("wave");
  spec.fleet = FleetKind::kMultiDc;
  spec.datacenters = 3;
  ScenarioEvent e;
  e.kind = ScenarioEventKind::kMaintenanceWave;
  e.datacenter = 1;
  e.start_hour = 10.0;
  e.duration_hours = 2.0;
  e.offline_fraction = 0.5;
  spec.events.push_back(e);
  const sim::FleetConfig config = ScenarioRunner::build_fleet(spec, catalog);
  EXPECT_TRUE(config.datacenters[0].pools[0].incidents.empty());
  ASSERT_EQ(config.datacenters[1].pools[0].incidents.size(), 1u);
  EXPECT_TRUE(config.datacenters[2].pools[0].incidents.empty());
  EXPECT_DOUBLE_EQ(
      config.datacenters[1].pools[0].incidents[0].offline_fraction, 0.5);
}

TEST(ScenarioRunnerBuild, MaintenanceWaveCrossingMidnightIsSplit) {
  // A wave whose local window runs past 24:00 must become one incident per
  // touched local day (MaintenanceSchedule never wraps a window), with the
  // pieces seamless and the total duration preserved.
  const sim::MicroserviceCatalog catalog;
  ScenarioSpec spec = measure_only("midnight");
  ScenarioEvent e;
  e.kind = ScenarioEventKind::kMaintenanceWave;
  e.start_hour = 22.0;
  e.duration_hours = 6.0;  // local 22:00 -> 04:00 next day
  e.offline_fraction = 0.4;
  spec.events.push_back(e);
  const sim::FleetConfig config = ScenarioRunner::build_fleet(spec, catalog);
  const auto& incidents = config.datacenters[0].pools[0].incidents;
  ASSERT_EQ(incidents.size(), 2u);
  EXPECT_EQ(incidents[0].day, 0);
  EXPECT_DOUBLE_EQ(incidents[0].start_hour, 22.0);
  EXPECT_DOUBLE_EQ(incidents[0].duration_hours, 2.0);
  EXPECT_EQ(incidents[1].day, 1);
  EXPECT_DOUBLE_EQ(incidents[1].start_hour, 0.0);
  EXPECT_DOUBLE_EQ(incidents[1].duration_hours, 4.0);
  EXPECT_DOUBLE_EQ(incidents[1].offline_fraction, 0.4);
}

TEST(ScenarioRunnerBuild, OverridesApply) {
  const sim::MicroserviceCatalog catalog;
  ScenarioSpec spec = measure_only("overrides");
  spec.fleet = FleetKind::kMultiDc;
  spec.datacenters = 2;
  spec.datacenter_overrides.push_back(
      {.datacenter = 1, .demand_weight = 2.5, .timezone_offset_hours = {}});
  spec.pool_overrides.push_back({.datacenter = 0,
                                 .pool = 0,
                                 .servers = 12,
                                 .demand_multiplier = 1.5,
                                 .burst_multiplier = {},
                                 .burst_start_hour = {},
                                 .burst_hours = {}});
  const sim::FleetConfig config = ScenarioRunner::build_fleet(spec, catalog);
  EXPECT_DOUBLE_EQ(config.datacenters[1].demand_weight, 2.5);
  EXPECT_EQ(config.datacenters[0].pools[0].servers, 12u);
  EXPECT_DOUBLE_EQ(config.datacenters[0].pools[0].demand_multiplier, 1.5);
}

TEST(ScenarioRunnerBuild, RejectsUnknownService) {
  const sim::MicroserviceCatalog catalog;
  ScenarioSpec spec = measure_only("nope");
  spec.service = std::string("Z");
  EXPECT_THROW((void)ScenarioRunner::build_fleet(spec, catalog),
               std::invalid_argument);
}

TEST(ScenarioRunnerBuild, RejectsInvalidSpec) {
  const sim::MicroserviceCatalog catalog;
  ScenarioSpec spec;  // name empty -> validate() fails
  EXPECT_THROW((void)ScenarioRunner::build_fleet(spec, catalog),
               std::invalid_argument);
}

TEST(ScenarioRunnerRun, RejectsReductionBeyondPoolSize) {
  ScenarioSpec spec = measure_only("too_big");
  ScenarioEvent e;
  e.kind = ScenarioEventKind::kServingReduction;
  e.datacenter = 0;
  e.pool = 0;
  e.start_hour = 1.0;
  e.serving = 9;  // pool has 8
  spec.events.push_back(e);
  EXPECT_THROW((void)ScenarioRunner().run(spec), std::invalid_argument);
}

TEST(ScenarioRunnerRun, RejectsReductionPastObservationWindow) {
  ScenarioSpec spec = measure_only("too_late");
  ScenarioEvent e;
  e.kind = ScenarioEventKind::kServingReduction;
  e.datacenter = 0;
  e.pool = 0;
  e.start_hour = 30.0;  // past the 24 h observation
  e.serving = 4;
  spec.events.push_back(e);
  EXPECT_THROW((void)ScenarioRunner().run(spec), std::invalid_argument);
}

TEST(ScenarioRunnerRun, MeasureOnlyRunProducesMetricsAndSummary) {
  ScenarioSpec spec = measure_only("tiny_run");
  spec.assertions.push_back({"total_servers", AssertOp::kEq, 8.0});
  spec.assertions.push_back({"serving_final", AssertOp::kLe, 8.0});
  const ScenarioRunResult result = ScenarioRunner().run(spec);
  EXPECT_TRUE(result.assertions_pass);
  EXPECT_EQ(result.metrics.at("total_servers"), 8.0);
  EXPECT_EQ(result.metrics.at("datacenters"), 1.0);
  EXPECT_EQ(result.metrics.count("rsm_recommended"), 0u)
      << "optimize metrics must not appear for a measure-only run";
  const std::string summary = format_summary(result);
  EXPECT_NE(summary.find("scenario = tiny_run\n"), std::string::npos);
  EXPECT_NE(summary.find("metric total_servers = 8\n"), std::string::npos);
  EXPECT_NE(summary.find("assert total_servers == 8 : PASS (8)\n"),
            std::string::npos);
  EXPECT_NE(summary.find("result = PASS\n"), std::string::npos);
}

TEST(ScenarioRunnerRun, FailingAssertionFlipsResult) {
  ScenarioSpec spec = measure_only("failing");
  spec.assertions.push_back({"total_servers", AssertOp::kGt, 1000.0});
  const ScenarioRunResult result = ScenarioRunner().run(spec);
  EXPECT_FALSE(result.assertions_pass);
  const std::string summary = format_summary(result);
  EXPECT_NE(summary.find(" : FAIL ("), std::string::npos);
  EXPECT_NE(summary.find("result = FAIL\n"), std::string::npos);
}

}  // namespace
}  // namespace headroom::scenario
