#include "scenario/scenario_parser.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <string>
#include <vector>

#include "scenario/scenario_spec.h"

namespace headroom::scenario {
namespace {

// ---------------------------------------------------------------------------
// Happy path

constexpr const char* kMinimal =
    "[scenario]\n"
    "name = tiny\n";

TEST(ScenarioParser, MinimalFileUsesDefaults) {
  const ParseResult result = parse_scenario(kMinimal, "test.scn");
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.spec.name, "tiny");
  EXPECT_EQ(result.spec.seed, 5u);
  EXPECT_EQ(result.spec.days, 2);
  EXPECT_EQ(result.spec.steps, kAllSteps);
  EXPECT_EQ(result.spec.fleet, FleetKind::kSinglePool);
  EXPECT_EQ(result.spec.service, "D");
  EXPECT_EQ(result.spec.servers, 64u);
}

TEST(ScenarioParser, ParsesCommentsAndBlankLines) {
  const ParseResult result = parse_scenario(
      "# leading comment\n"
      "\n"
      "[scenario]\n"
      "  # indented comment\n"
      "name = commented\n"
      "\n",
      "test.scn");
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.spec.name, "commented");
}

TEST(ScenarioParser, ParsesFullSpec) {
  const ParseResult result = parse_scenario(
      "[scenario]\n"
      "name = full\n"
      "description = all the %CPU = knobs\n"
      "seed = 42\n"
      "days = 3\n"
      "threads = 2\n"
      "window_seconds = 60\n"
      "steps = measure, optimize\n"
      "\n"
      "[fleet]\n"
      "kind = multi_dc\n"
      "datacenters = 4\n"
      "service = B\n"
      "servers = 16\n"
      "\n"
      "[datacenter 1]\n"
      "demand_weight = 1.5\n"
      "timezone_offset_hours = -3\n"
      "\n"
      "[pool 0 0]\n"
      "servers = 20\n"
      "demand_multiplier = 1.8\n"
      "\n"
      "[event]\n"
      "kind = traffic_multiplier\n"
      "datacenter = 2\n"
      "start_hour = 30\n"
      "duration_hours = 2\n"
      "multiplier = 4\n"
      "\n"
      "[event]\n"
      "kind = serving_reduction\n"
      "datacenter = 0\n"
      "pool = 0\n"
      "start_hour = 40\n"
      "serving = 12\n"
      "\n"
      "[assert]\n"
      "expect = rsm_reduction_pct >= 20\n",
      "test.scn");
  ASSERT_TRUE(result.ok()) << result.error;
  const ScenarioSpec& spec = result.spec;
  EXPECT_EQ(spec.description, "all the %CPU = knobs");
  EXPECT_EQ(spec.seed, 42u);
  EXPECT_EQ(spec.threads, 2u);
  EXPECT_EQ(spec.window_seconds, 60);
  EXPECT_EQ(spec.steps, step_bit(PipelineStep::kMeasure) |
                            step_bit(PipelineStep::kOptimize));
  EXPECT_EQ(spec.fleet, FleetKind::kMultiDc);
  EXPECT_EQ(spec.datacenters, 4u);
  ASSERT_EQ(spec.datacenter_overrides.size(), 1u);
  EXPECT_EQ(spec.datacenter_overrides[0].datacenter, 1u);
  EXPECT_EQ(spec.datacenter_overrides[0].demand_weight, 1.5);
  ASSERT_EQ(spec.pool_overrides.size(), 1u);
  EXPECT_EQ(spec.pool_overrides[0].servers, 20u);
  ASSERT_EQ(spec.events.size(), 2u);
  EXPECT_EQ(spec.events[0].kind, ScenarioEventKind::kTrafficMultiplier);
  EXPECT_EQ(spec.events[0].multiplier, 4.0);
  EXPECT_EQ(spec.events[1].kind, ScenarioEventKind::kServingReduction);
  EXPECT_EQ(spec.events[1].serving, 12u);
  ASSERT_EQ(spec.assertions.size(), 1u);
  EXPECT_EQ(spec.assertions[0].metric, "rsm_reduction_pct");
  EXPECT_EQ(spec.assertions[0].op, AssertOp::kGe);
  EXPECT_EQ(spec.assertions[0].value, 20.0);
}

TEST(ScenarioParser, EventDatacenterAllMeansEveryDatacenter) {
  const ParseResult result = parse_scenario(
      "[scenario]\n"
      "name = global\n"
      "[fleet]\n"
      "kind = multi_dc\n"
      "datacenters = 3\n"
      "[event]\n"
      "kind = traffic_multiplier\n"
      "datacenter = all\n"
      "start_hour = 1\n"
      "duration_hours = 1\n"
      "multiplier = 2\n",
      "test.scn");
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_FALSE(result.spec.events[0].datacenter.has_value());
}

// ---------------------------------------------------------------------------
// Round trips

ScenarioSpec rich_spec() {
  ScenarioSpec spec;
  spec.name = "round_trip";
  spec.description = "all features, odd values: 0.1 + 0.2 != 0.3";
  spec.seed = 123456789012345ull;
  spec.days = 4;
  spec.threads = 3;
  spec.window_seconds = 90;
  spec.steps = step_bit(PipelineStep::kMeasure) |
               step_bit(PipelineStep::kOptimize) |
               step_bit(PipelineStep::kValidate);
  spec.fleet = FleetKind::kMultiDc;
  spec.service = "C";
  spec.servers = 17;
  spec.datacenters = 5;
  spec.datacenter_overrides.push_back(
      {.datacenter = 2, .demand_weight = 0.1 + 0.2,
       .timezone_offset_hours = -7.25});
  spec.pool_overrides.push_back({.datacenter = 1,
                                 .pool = 0,
                                 .servers = 23,
                                 .demand_multiplier = 1.7,
                                 .burst_multiplier = 3.3,
                                 .burst_start_hour = 14.5,
                                 .burst_hours = 2.2});
  ScenarioEvent traffic;
  traffic.kind = ScenarioEventKind::kTrafficMultiplier;
  traffic.datacenter = 3;
  traffic.start_hour = 30.5;
  traffic.duration_hours = 1.75;
  traffic.multiplier = 4.0;
  spec.events.push_back(traffic);
  ScenarioEvent outage;
  outage.kind = ScenarioEventKind::kDatacenterOutage;
  outage.datacenter = 0;
  outage.start_hour = 50.0;
  outage.duration_hours = 2.0;
  spec.events.push_back(outage);
  ScenarioEvent wave;
  wave.kind = ScenarioEventKind::kMaintenanceWave;
  wave.start_hour = 10.0;
  wave.duration_hours = 3.0;
  wave.offline_fraction = 0.25;
  spec.events.push_back(wave);
  ScenarioEvent reduction;
  reduction.kind = ScenarioEventKind::kServingReduction;
  reduction.datacenter = 0;
  reduction.pool = 0;
  reduction.start_hour = 72.0;
  reduction.serving = 9;
  spec.events.push_back(reduction);
  spec.assertions.push_back({"rsm_reduction_pct", AssertOp::kGe, 20.0});
  spec.assertions.push_back({"metric_valid", AssertOp::kEq, 1.0});
  spec.assertions.push_back({"plan_stressed_latency_ms", AssertOp::kLt, 61.5});
  return spec;
}

TEST(ScenarioParser, SerializeParseRoundTripIsExact) {
  const ScenarioSpec spec = rich_spec();
  ASSERT_EQ(validate(spec), "");
  const std::string text = serialize_scenario(spec);
  const ParseResult result = parse_scenario(text, "round.scn");
  ASSERT_TRUE(result.ok()) << result.error << "\n" << text;
  EXPECT_EQ(result.spec, spec);
}

TEST(ScenarioParser, RoundTripIsIdempotent) {
  const std::string once = serialize_scenario(rich_spec());
  const ParseResult reparsed = parse_scenario(once, "round.scn");
  ASSERT_TRUE(reparsed.ok()) << reparsed.error;
  EXPECT_EQ(serialize_scenario(reparsed.spec), once);
}

TEST(ScenarioParser, StandardFleetRoundTrips) {
  ScenarioSpec spec;
  spec.name = "std";
  spec.fleet = FleetKind::kStandard;
  spec.services = {"C", "D", "F"};
  spec.regional_peak_rps = 1234.5;
  spec.heterogeneous = true;
  spec.steps = step_bit(PipelineStep::kMeasure);
  ASSERT_EQ(validate(spec), "");
  const ParseResult result =
      parse_scenario(serialize_scenario(spec), "std.scn");
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.spec, spec);
}

// ---------------------------------------------------------------------------
// Fault grammar

TEST(ScenarioParser, ParsesFaultSections) {
  const ParseResult result = parse_scenario(
      "[scenario]\n"
      "name = faulty\n"
      "[fleet]\n"
      "kind = multi_dc\n"
      "datacenters = 2\n"
      "[fault]\n"
      "kind = telemetry_gap\n"
      "datacenter = 1\n"
      "pool = 0\n"
      "start_hour = 20\n"
      "duration_hours = 0.2\n"
      "[fault]\n"
      "kind = feed_stall\n"
      "start_hour = 30\n"
      "duration_hours = 0.5\n"
      "[fault]\n"
      "kind = clock_skew\n"
      "datacenter = 0\n"
      "pool = 0\n"
      "start_hour = 12\n"
      "duration_hours = 1\n"
      "skew_seconds = 30\n",
      "test.scn");
  ASSERT_TRUE(result.ok()) << result.error;
  const std::vector<FaultSpec>& faults = result.spec.faults;
  ASSERT_EQ(faults.size(), 3u);
  EXPECT_EQ(faults[0].kind, FaultKind::kTelemetryGap);
  EXPECT_EQ(faults[0].datacenter, 1u);
  EXPECT_EQ(faults[0].pool, 0u);
  EXPECT_EQ(faults[0].start_hour, 20.0);
  EXPECT_EQ(faults[0].duration_hours, 0.2);
  EXPECT_EQ(faults[1].kind, FaultKind::kFeedStall);
  EXPECT_FALSE(faults[1].datacenter.has_value());
  EXPECT_FALSE(faults[1].pool.has_value());
  EXPECT_EQ(faults[2].kind, FaultKind::kClockSkew);
  EXPECT_EQ(faults[2].skew_seconds, 30.0);
}

TEST(ScenarioParser, FaultsAndPoolAssertionsRoundTripExactly) {
  ScenarioSpec spec;
  spec.name = "fault_round_trip";
  spec.fleet = FleetKind::kMultiDc;
  spec.datacenters = 3;
  spec.steps = step_bit(PipelineStep::kMeasure);
  FaultSpec gap;
  gap.kind = FaultKind::kTelemetryGap;
  gap.datacenter = 2;
  gap.pool = 0;
  gap.start_hour = 20.5;
  gap.duration_hours = 0.25;
  spec.faults.push_back(gap);
  FaultSpec stall;
  stall.kind = FaultKind::kFeedStall;
  stall.start_hour = 30.0;
  stall.duration_hours = 0.5;
  spec.faults.push_back(stall);
  FaultSpec skew;
  skew.kind = FaultKind::kClockSkew;
  skew.datacenter = 0;
  skew.pool = 0;
  skew.start_hour = 1.75;
  skew.duration_hours = 1.0;
  skew.skew_seconds = -45.0;
  spec.faults.push_back(skew);
  spec.assertions.push_back({"pool(1,0).peak_rps", AssertOp::kGe, 1.0});
  spec.assertions.push_back(
      {"pool(0,0).min_active_servers", AssertOp::kEq, 64.0});
  ASSERT_EQ(validate(spec), "");
  const std::string text = serialize_scenario(spec);
  const ParseResult result = parse_scenario(text, "fault_round.scn");
  ASSERT_TRUE(result.ok()) << result.error << "\n" << text;
  EXPECT_EQ(result.spec, spec);
  EXPECT_EQ(serialize_scenario(result.spec), text);
}

// ---------------------------------------------------------------------------
// Malformed inputs: precise diagnostics, no crashes (runs under asan).

struct MalformedCase {
  const char* label;
  const char* input;
  const char* expected_error;
};

const MalformedCase kMalformed[] = {
    {"empty file", "", "test.scn: missing [scenario] section"},
    {"truncated after comment", "# a comment, then nothing\n",
     "test.scn: missing [scenario] section"},
    {"missing name", "[scenario]\nseed = 1\n",
     "test.scn: missing required key 'name' in [scenario]"},
    {"key before section", "name = x\n",
     "test.scn:1: key 'name' before any section"},
    {"unterminated header", "[scenario\nname = x\n",
     "test.scn:1: unterminated section header '[scenario'"},
    {"unknown section", "[scenarios]\nname = x\n",
     "test.scn:1: unknown section '[scenarios]'"},
    {"missing equals", "[scenario]\nname x\n",
     "test.scn:2: expected 'key = value', got 'name x'"},
    {"unknown key", "[scenario]\nname = x\nfoo = 1\n",
     "test.scn:3: unknown key 'foo' in [scenario]"},
    {"duplicate key", "[scenario]\nname = x\nname = y\n",
     "test.scn:3: duplicate key 'name' in [scenario]"},
    {"negative seed", "[scenario]\nname = x\nseed = -1\n",
     "test.scn:3: bad value '-1' for 'seed' (expected unsigned integer)"},
    {"days out of range", "[scenario]\nname = x\ndays = 0\n",
     "test.scn:3: bad value '0' for 'days' (expected integer 1..3650)"},
    {"unknown step", "[scenario]\nname = x\nsteps = measure,deploy\n",
     "test.scn:3: unknown step 'deploy' (expected measure, optimize, model, "
     "validate)"},
    {"empty steps", "[scenario]\nname = x\nsteps = ,\n",
     "test.scn:3: steps must be a non-empty comma list of measure, optimize, "
     "model, validate"},
    {"duplicate scenario section", "[scenario]\nname = x\n[scenario]\n",
     "test.scn:3: duplicate [scenario] section"},
    {"unknown fleet kind", "[scenario]\nname = x\n[fleet]\nkind = galaxy\n",
     "test.scn:4: unknown fleet kind 'galaxy' (expected single_pool, "
     "multi_dc, standard)"},
    {"datacenters out of range",
     "[scenario]\nname = x\n[fleet]\nkind = multi_dc\ndatacenters = 12\n",
     "test.scn:5: bad value '12' for 'datacenters' (expected integer 1..9)"},
    {"multi_dc with one datacenter",
     "[scenario]\nname = x\n[fleet]\nkind = multi_dc\n",
     "test.scn: multi_dc fleets need 2..9 datacenters"},
    {"datacenter section without index", "[scenario]\nname = x\n[datacenter]\n",
     "test.scn:3: [datacenter] needs a datacenter index 0..8"},
    {"pool section with one index", "[scenario]\nname = x\n[pool 0]\n",
     "test.scn:3: [pool] needs 'DC POOL' indices (DC 0..8, POOL 0..63)"},
    {"datacenter override out of range",
     "[scenario]\nname = x\n[datacenter 3]\ndemand_weight = 2\n",
     "test.scn: [datacenter 3] is out of range (fleet has 1 datacenter(s))"},
    {"event without kind", "[scenario]\nname = x\n[event]\n",
     "test.scn:3: [event] missing required key 'kind'"},
    {"event kind not first",
     "[scenario]\nname = x\n[event]\ndatacenter = 1\n",
     "test.scn:4: 'kind' must be the first key in [event]"},
    {"unknown event kind", "[scenario]\nname = x\n[event]\nkind = meteor\n",
     "test.scn:4: unknown event kind 'meteor' (expected traffic_multiplier, "
     "outage, maintenance_wave, serving_reduction)"},
    {"key invalid for event kind",
     "[scenario]\nname = x\n[event]\nkind = outage\nmultiplier = 2\n",
     "test.scn:5: key 'multiplier' is not valid for event kind 'outage'"},
    {"zero-length event",
     "[scenario]\nname = x\n[event]\nkind = outage\nstart_hour = 5\n"
     "duration_hours = 0\n",
     "test.scn: event 1: duration_hours must be positive"},
    {"truncated event misses duration",
     "[scenario]\nname = x\n[event]\nkind = traffic_multiplier\n"
     "start_hour = 5\nmultiplier = 2\n",
     "test.scn: event 1: duration_hours must be positive"},
    {"overlapping outages on one datacenter",
     "[scenario]\nname = x\n[fleet]\nkind = multi_dc\ndatacenters = 3\n"
     "[event]\nkind = outage\ndatacenter = 1\nstart_hour = 10\n"
     "duration_hours = 4\n"
     "[event]\nkind = outage\ndatacenter = 1\nstart_hour = 12\n"
     "duration_hours = 4\n",
     "test.scn: event 2: overlaps outage event 1 on the same datacenter"},
    {"serving reduction without pool",
     "[scenario]\nname = x\n[event]\nkind = serving_reduction\n"
     "datacenter = 0\nstart_hour = 5\nserving = 4\n",
     "test.scn: event 1: serving_reduction needs explicit datacenter and "
     "pool"},
    {"duplicate serving reduction instant",
     "[scenario]\nname = x\n"
     "[event]\nkind = serving_reduction\ndatacenter = 0\npool = 0\n"
     "start_hour = 5\nserving = 4\n"
     "[event]\nkind = serving_reduction\ndatacenter = 0\npool = 0\n"
     "start_hour = 5\nserving = 3\n",
     "test.scn: event 2: duplicate serving_reduction at hour 5 for the same "
     "pool"},
    {"assert without expect", "[scenario]\nname = x\n[assert]\n",
     "test.scn:3: [assert] missing required key 'expect'"},
    {"assert with wrong key", "[scenario]\nname = x\n[assert]\nwant = y\n",
     "test.scn:4: unknown key 'want' in [assert] (expected 'expect')"},
    {"assert arity", "[scenario]\nname = x\n[assert]\nexpect = rsm >=\n",
     "test.scn:4: bad assertion 'rsm >=' (expected 'metric OP value')"},
    {"assert bad operator",
     "[scenario]\nname = x\n[assert]\nexpect = metric_valid => 1\n",
     "test.scn:4: unknown operator '=>' in assertion (expected >=, <=, >, <, "
     "==, !=)"},
    {"assert non-numeric value",
     "[scenario]\nname = x\n[assert]\nexpect = metric_valid == yes\n",
     "test.scn:4: bad assertion value 'yes' (expected a number)"},
    {"assert unknown metric",
     "[scenario]\nname = x\n[assert]\nexpect = bogus_metric >= 1\n",
     "test.scn: unknown assertion metric 'bogus_metric'"},
    {"assert requires skipped step",
     "[scenario]\nname = x\nsteps = measure\n[assert]\n"
     "expect = rsm_reduction_pct >= 20\n",
     "test.scn: assertion on 'rsm_reduction_pct' requires the optimize step"},
    {"bad heterogeneous bool",
     "[scenario]\nname = x\n[fleet]\nkind = standard\nheterogeneous = maybe\n",
     "test.scn:5: bad value 'maybe' for 'heterogeneous' (expected true or "
     "false)"},
    {"fault without kind", "[scenario]\nname = x\n[fault]\n",
     "test.scn:3: [fault] missing required key 'kind'"},
    {"fault kind not first",
     "[scenario]\nname = x\n[fault]\nstart_hour = 1\n",
     "test.scn:4: 'kind' must be the first key in [fault]"},
    {"unknown fault kind", "[scenario]\nname = x\n[fault]\nkind = gremlins\n",
     "test.scn:4: unknown fault kind 'gremlins' (expected telemetry_gap, "
     "nan_burst, duplicate_window, out_of_order_window, corrupt_row, "
     "feed_stall, clock_skew)"},
    {"key invalid for fault kind",
     "[scenario]\nname = x\n[fault]\nkind = telemetry_gap\n"
     "skew_seconds = 30\n",
     "test.scn:5: key 'skew_seconds' is not valid for fault kind "
     "'telemetry_gap'"},
    {"feed stall rejects a pool target",
     "[scenario]\nname = x\n[fault]\nkind = feed_stall\ndatacenter = 0\n",
     "test.scn:5: key 'datacenter' is not valid for fault kind 'feed_stall'"},
    {"zero-length fault",
     "[scenario]\nname = x\n[fault]\nkind = telemetry_gap\nstart_hour = 5\n",
     "test.scn: fault 1: duration_hours must be positive"},
    {"fault datacenter out of range",
     "[scenario]\nname = x\n[fault]\nkind = telemetry_gap\ndatacenter = 2\n"
     "start_hour = 1\nduration_hours = 1\n",
     "test.scn: fault 1: datacenter 2 is out of range (fleet has 1 "
     "datacenter(s))"},
    {"clock skew wider than a window",
     "[scenario]\nname = x\n[fault]\nkind = clock_skew\nstart_hour = 1\n"
     "duration_hours = 1\nskew_seconds = 120\n",
     "test.scn: fault 1: clock_skew needs a non-zero skew_seconds smaller "
     "than one window"},
    {"pool assertion malformed target",
     "[scenario]\nname = x\n[assert]\nexpect = pool(0.peak_rps >= 1\n",
     "test.scn: bad pool assertion target 'pool(0.peak_rps' (expected "
     "pool(DC,POOL).metric)"},
    {"pool assertion unknown base metric",
     "[scenario]\nname = x\n[assert]\nexpect = pool(0,0).median_rps >= 1\n",
     "test.scn: unknown pool metric 'median_rps' in assertion "
     "'pool(0,0).median_rps'"},
    {"pool assertion datacenter out of range",
     "[scenario]\nname = x\n[assert]\nexpect = pool(1,0).peak_rps >= 1\n",
     "test.scn: assertion 'pool(1,0).peak_rps': datacenter 1 is out of "
     "range (fleet has 1 datacenter(s))"},
};

class ScenarioParserMalformed
    : public ::testing::TestWithParam<MalformedCase> {};

TEST_P(ScenarioParserMalformed, ReportsPreciseError) {
  const MalformedCase& c = GetParam();
  const ParseResult result = parse_scenario(c.input, "test.scn");
  EXPECT_FALSE(result.ok()) << "input unexpectedly parsed: " << c.input;
  EXPECT_EQ(result.error, c.expected_error);
}

INSTANTIATE_TEST_SUITE_P(
    Table, ScenarioParserMalformed, ::testing::ValuesIn(kMalformed),
    [](const ::testing::TestParamInfo<MalformedCase>& info) {
      std::string name = info.param.label;
      for (char& ch : name) {
        if (!(std::isalnum(static_cast<unsigned char>(ch)))) ch = '_';
      }
      return name;
    });

TEST(ScenarioParser, MissingFileReportsOpenError) {
  const ParseResult result =
      load_scenario_file("/nonexistent/definitely_missing.scn");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.error,
            "/nonexistent/definitely_missing.scn: cannot open scenario file");
}

// ---------------------------------------------------------------------------
// Spec helpers

TEST(ScenarioSpec, AssertionHoldsPerOperator) {
  EXPECT_TRUE((ScenarioAssertion{"m", AssertOp::kGe, 2.0}).holds(2.0));
  EXPECT_FALSE((ScenarioAssertion{"m", AssertOp::kGt, 2.0}).holds(2.0));
  EXPECT_TRUE((ScenarioAssertion{"m", AssertOp::kLe, 2.0}).holds(2.0));
  EXPECT_FALSE((ScenarioAssertion{"m", AssertOp::kLt, 2.0}).holds(2.0));
  EXPECT_TRUE((ScenarioAssertion{"m", AssertOp::kEq, 2.0}).holds(2.0));
  EXPECT_TRUE((ScenarioAssertion{"m", AssertOp::kNe, 2.0}).holds(3.0));
}

TEST(ScenarioSpec, ValidateRejectsPoolOnDemandLevelEvents) {
  // The parser refuses a `pool` key on traffic/outage events; validate()
  // must hold programmatic specs to the same rule so every accepted spec
  // survives a serialize/parse round trip.
  ScenarioSpec spec;
  spec.name = "x";
  ScenarioEvent e;
  e.kind = ScenarioEventKind::kDatacenterOutage;
  e.pool = 0;
  e.start_hour = 1.0;
  e.duration_hours = 1.0;
  spec.events.push_back(e);
  EXPECT_EQ(validate(spec),
            "event 1: 'pool' does not apply to this event kind");
  spec.events[0].kind = ScenarioEventKind::kTrafficMultiplier;
  EXPECT_EQ(validate(spec),
            "event 1: 'pool' does not apply to this event kind");
  spec.events[0].pool.reset();
  EXPECT_EQ(validate(spec), "");
}

// ---------------------------------------------------------------------------
// Failover policy selection

TEST(ScenarioParser, ParsesFailoverPolicy) {
  const ParseResult result = parse_scenario(
      "[scenario]\n"
      "name = fo\n"
      "failover = latency_aware\n",
      "test.scn");
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.spec.failover, sim::FailoverPolicyKind::kLatencyAware);
}

TEST(ScenarioParser, RejectsUnknownFailoverPolicyExactly) {
  const ParseResult result = parse_scenario(
      "[scenario]\n"
      "name = fo\n"
      "failover = closest\n",
      "test.scn");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error,
            "test.scn:3: bad value 'closest' for 'failover' (expected "
            "nearest_survivor, latency_aware, cost_aware)");
}

TEST(ScenarioParser, FailoverRoundTripsAndDefaultStaysImplicit) {
  // Non-default policies serialize and survive the round trip; the default
  // must NOT be emitted, so every pre-existing scenario file stays
  // byte-identical under serialize(parse(.)).
  ScenarioSpec spec = rich_spec();
  spec.failover = sim::FailoverPolicyKind::kCostAware;
  const std::string text = serialize_scenario(spec);
  EXPECT_NE(text.find("failover = cost_aware\n"), std::string::npos) << text;
  const ParseResult reparsed = parse_scenario(text, "round.scn");
  ASSERT_TRUE(reparsed.ok()) << reparsed.error;
  EXPECT_EQ(reparsed.spec, spec);

  spec.failover = sim::FailoverPolicyKind::kNearestSurvivor;
  EXPECT_EQ(serialize_scenario(spec).find("failover"), std::string::npos);
}

TEST(ScenarioSpec, KnownMetricsAreSortedAndNonEmpty) {
  const std::vector<std::string>& names = known_metrics();
  ASSERT_FALSE(names.empty());
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

}  // namespace
}  // namespace headroom::scenario
