// Golden report pins for the capacity-planning what-if harness.
//
// Every shipped scenario (except the dead-band 100x smoke, which the
// planner refuses by design) steps its observation phase once, then the
// full what-if sweep — growth multipliers x failover policies x the
// DC-outage timeline — is forecast and the machine-readable plan report is
// pinned byte-for-byte against tests/scenario/golden/plan/<name>.plan,
// serial and at 4 stepping threads. Regenerate after an intentional change
// with HEADROOM_UPDATE_GOLDENS=1.
#include "scenario/planning.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/scenario_parser.h"
#include "scenario/trace.h"

#ifndef HEADROOM_SCENARIO_DIR
#error "HEADROOM_SCENARIO_DIR must point at examples/scenarios"
#endif
#ifndef HEADROOM_GOLDEN_DIR
#error "HEADROOM_GOLDEN_DIR must point at tests/scenario/golden"
#endif

namespace headroom::scenario {
namespace {

namespace fs = std::filesystem;

std::vector<std::string> plan_stems() {
  std::vector<std::string> stems;
  for (const auto& entry : fs::directory_iterator(HEADROOM_SCENARIO_DIR)) {
    if (entry.is_regular_file() && entry.path().extension() == ".scn") {
      stems.push_back(entry.path().stem().string());
    }
  }
  // The 100x-scale smoke opts into approximate dead-band stepping;
  // run_plan() rejects it (tested below) rather than pinning an
  // approximate report.
  std::erase(stems, std::string("standard_fleet_x100"));
  std::sort(stems.begin(), stems.end());
  return stems;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class PlanGolden : public ::testing::TestWithParam<std::string> {};

TEST_P(PlanGolden, ReportMatchesPinAndIsThreadInvariant) {
  const fs::path scenario_path =
      fs::path(HEADROOM_SCENARIO_DIR) / (GetParam() + ".scn");
  ParseResult parsed = load_scenario_file(scenario_path.string());
  ASSERT_TRUE(parsed.ok()) << parsed.error;

  const PlanResult result = run_plan(parsed.spec);
  const std::string report = format_plan(result);

  // Structure: the default sweep is 3 growths x 3 policies x (1 + outage
  // targets) cases, every case carrying a forecast per surviving pool.
  const std::size_t per_policy = 1 + result.outage_datacenters.size();
  ASSERT_EQ(result.cases.size(), 3u * 3u * per_policy);
  for (const PlanCase& c : result.cases) {
    if (c.has_outage) {
      // The dark DC's pools drop out of the case.
      EXPECT_LT(c.pools.size(), result.total_pools);
      for (const core::PoolCapacityForecast& pool : c.pools) {
        EXPECT_NE(pool.datacenter, c.outage_datacenter);
      }
    } else {
      EXPECT_EQ(c.pools.size(), result.total_pools);
    }
  }

  // Thread invariance: the report must not depend on stepping lanes.
  ScenarioSpec threaded = parsed.spec;
  threaded.threads = 4;
  const std::string threaded_report = format_plan(run_plan(threaded));
  EXPECT_EQ(report, threaded_report) << "plan depends on the thread count";

  const fs::path golden_path =
      fs::path(HEADROOM_GOLDEN_DIR) / "plan" / (GetParam() + ".plan");
  if (std::getenv("HEADROOM_UPDATE_GOLDENS") != nullptr) {
    fs::create_directories(golden_path.parent_path());
    std::ofstream out(golden_path, std::ios::binary);
    out << report;
    ASSERT_TRUE(out.good()) << "failed to write " << golden_path;
    GTEST_SKIP() << "updated " << golden_path;
  }
  ASSERT_TRUE(fs::exists(golden_path))
      << "no plan pin for " << GetParam()
      << "; run with HEADROOM_UPDATE_GOLDENS=1 to create it";
  EXPECT_EQ(report, read_file(golden_path))
      << "plan drifted from " << golden_path
      << "; if intentional, regenerate with HEADROOM_UPDATE_GOLDENS=1";
}

INSTANTIATE_TEST_SUITE_P(Library, PlanGolden,
                         ::testing::ValuesIn(plan_stems()));

TEST(Plan, RejectsDeadBandScenarios) {
  const fs::path path =
      fs::path(HEADROOM_SCENARIO_DIR) / "standard_fleet_x100.scn";
  ParseResult parsed = load_scenario_file(path.string());
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ASSERT_GT(parsed.spec.quiescent_dead_band, 0.0);
  EXPECT_THROW((void)run_plan(parsed.spec), std::invalid_argument);
}

TEST(Plan, RejectsBadOptions) {
  ParseResult parsed = load_scenario_file(
      (fs::path(HEADROOM_SCENARIO_DIR) / "fig6_flash_crowd.scn").string());
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  PlanOptions bad_horizon;
  bad_horizon.horizon_seconds = 0;
  EXPECT_THROW((void)run_plan(parsed.spec, bad_horizon),
               std::invalid_argument);
  PlanOptions bad_growth;
  bad_growth.growths = {1.0, -0.5};
  EXPECT_THROW((void)run_plan(parsed.spec, bad_growth),
               std::invalid_argument);
}

TEST(Plan, RestrictedSweepAndOutageStress) {
  ParseResult parsed = load_scenario_file(
      (fs::path(HEADROOM_SCENARIO_DIR) / "fig45_dc_outage.scn").string());
  ASSERT_TRUE(parsed.ok()) << parsed.error;

  PlanOptions options;
  options.growths = {1.0};
  options.policies = {sim::FailoverPolicyKind::kCostAware};
  const PlanResult result = run_plan(parsed.spec, options);

  // One growth x one policy x (baseline + one outage target from the
  // timeline) = 2 cases.
  ASSERT_EQ(result.outage_datacenters.size(), 1u);
  ASSERT_EQ(result.cases.size(), 2u);
  EXPECT_FALSE(result.cases[0].has_outage);
  EXPECT_TRUE(result.cases[1].has_outage);

  // Cost-aware redistribution is weight-proportional: every survivor of
  // the outage case carries the same multiplier > 1.
  const PlanCase& outage = result.cases[1];
  ASSERT_FALSE(outage.stresses.empty());
  for (const PlanStress& s : outage.stresses) {
    EXPECT_GT(s.multiplier, 1.0);
    EXPECT_DOUBLE_EQ(s.multiplier, outage.stresses.front().multiplier);
  }
  // The dark DC's pools drop out of the case.
  EXPECT_LT(outage.pools.size(), result.cases[0].pools.size());
  for (const core::PoolCapacityForecast& pool : outage.pools) {
    EXPECT_NE(pool.datacenter, outage.outage_datacenter);
  }
}

TEST(Plan, TraceModeMatchesScenarioForecasts) {
  // Export a scenario as a trace, then plan from the recording: same
  // telemetry, no simulator — the per-pool forecasts must be identical
  // modulo the source header line.
  ParseResult parsed = load_scenario_file(
      (fs::path(HEADROOM_SCENARIO_DIR) / "fig6_flash_crowd.scn").string());
  ASSERT_TRUE(parsed.ok()) << parsed.error;

  const fs::path trace_dir =
      fs::path(::testing::TempDir()) / "plan_trace_roundtrip";
  fs::remove_all(trace_dir);
  const TraceExportResult exported =
      export_trace(parsed.spec, trace_dir.string(), nullptr);
  ASSERT_TRUE(exported.ok()) << exported.error;

  PlanOptions options;
  options.growths = {1.0};
  options.policies = {sim::FailoverPolicyKind::kNearestSurvivor};
  const std::string from_scenario =
      format_plan(run_plan(parsed.spec, options));
  const std::string from_trace =
      format_plan(run_plan_on_trace(trace_dir.string(), options));

  const auto strip_source = [](std::string text) {
    const std::size_t pos = text.find("source = ");
    const std::size_t end = text.find('\n', pos);
    text.erase(pos, end - pos + 1);
    return text;
  };
  EXPECT_EQ(strip_source(from_scenario), strip_source(from_trace));
  fs::remove_all(trace_dir);
}

}  // namespace
}  // namespace headroom::scenario
