// Golden end-to-end tests over the shipped scenario library.
//
// Every examples/scenarios/*.scn runs through the full ScenarioRunner at
// its committed seed and the machine-readable summary is pinned
// byte-for-byte against tests/scenario/golden/<name>.golden. The summary
// must also be bit-identical when the fleet steps on multiple threads —
// the determinism guarantee the scenario subsystem inherits from the
// parallel simulator.
//
// Regenerate the pins after an intentional behaviour change by running
// build/tests/scenario/headroom_scenario_golden_tests with
// HEADROOM_UPDATE_GOLDENS=1 in the environment.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/scenario_parser.h"
#include "scenario/scenario_runner.h"

#ifndef HEADROOM_SCENARIO_DIR
#error "HEADROOM_SCENARIO_DIR must point at examples/scenarios"
#endif
#ifndef HEADROOM_GOLDEN_DIR
#error "HEADROOM_GOLDEN_DIR must point at tests/scenario/golden"
#endif

namespace headroom::scenario {
namespace {

namespace fs = std::filesystem;

std::vector<std::string> scenario_stems() {
  std::vector<std::string> stems;
  for (const auto& entry : fs::directory_iterator(HEADROOM_SCENARIO_DIR)) {
    if (entry.is_regular_file() && entry.path().extension() == ".scn") {
      stems.push_back(entry.path().stem().string());
    }
  }
  std::sort(stems.begin(), stems.end());
  return stems;
}

/// The golden-pinned subset: every shipped scenario except the 100x-scale
/// smoke, which steps ~570k servers and opts into the approximate
/// dead-band stepping — it runs as a Release-only wall-clock smoke (cli
/// CMake), not through the exact-mode pin sweep. The serializer round-trip
/// test below still covers it.
std::vector<std::string> pinned_scenario_stems() {
  std::vector<std::string> stems = scenario_stems();
  std::erase(stems, std::string("standard_fleet_x100"));
  return stems;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class ScenarioGolden : public ::testing::TestWithParam<std::string> {};

TEST_P(ScenarioGolden, SummaryMatchesPinAndIsThreadInvariant) {
  const fs::path scenario_path =
      fs::path(HEADROOM_SCENARIO_DIR) / (GetParam() + ".scn");
  ParseResult parsed = load_scenario_file(scenario_path.string());
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ASSERT_EQ(parsed.spec.seed, 5u)
      << "shipped scenarios pin their summaries at seed 5";

  const ScenarioRunner runner;
  const ScenarioRunResult result = runner.run(parsed.spec);
  const std::string summary = format_summary(result);

  EXPECT_TRUE(result.assertions_pass)
      << "shipped scenario's own assertions failed:\n" << summary;

  // Thread invariance: any stepping-thread count must reproduce the
  // summary byte-for-byte (threads is the one knob excluded from it).
  ScenarioSpec threaded = parsed.spec;
  threaded.threads = 4;
  const std::string threaded_summary =
      format_summary(runner.run(threaded));
  EXPECT_EQ(summary, threaded_summary)
      << "summary depends on the thread count";

  const fs::path golden_path =
      fs::path(HEADROOM_GOLDEN_DIR) / (GetParam() + ".golden");
  if (std::getenv("HEADROOM_UPDATE_GOLDENS") != nullptr) {
    std::ofstream out(golden_path, std::ios::binary);
    out << summary;
    ASSERT_TRUE(out.good()) << "failed to write " << golden_path;
    GTEST_SKIP() << "updated " << golden_path;
  }
  ASSERT_TRUE(fs::exists(golden_path))
      << "no golden pin for " << GetParam()
      << "; run with HEADROOM_UPDATE_GOLDENS=1 to create it";
  EXPECT_EQ(summary, read_file(golden_path))
      << "summary drifted from " << golden_path
      << "; if intentional, regenerate with HEADROOM_UPDATE_GOLDENS=1";
}

INSTANTIATE_TEST_SUITE_P(Library, ScenarioGolden,
                         ::testing::ValuesIn(pinned_scenario_stems()));

TEST(ScenarioLibrary, ShipsTheAcceptanceScenarios) {
  const std::vector<std::string> stems = scenario_stems();
  ASSERT_GE(stems.size(), 10u);
  const auto has = [&](const char* name) {
    return std::find(stems.begin(), stems.end(), name) != stems.end();
  };
  EXPECT_TRUE(has("fig6_flash_crowd"));
  EXPECT_TRUE(has("fig45_dc_outage"));
  EXPECT_TRUE(has("flash_crowd_global"));
  EXPECT_TRUE(has("maintenance_peak"));
  EXPECT_TRUE(has("hot_cool_fleet"));
  EXPECT_TRUE(has("reduction_mid_run"));
  // The degraded-input pack: one scenario per fault family, each pinned
  // by a batch golden, a bakeoff frontier, and a serve health report.
  EXPECT_TRUE(has("fault_gap_heal"));
  EXPECT_TRUE(has("fault_nan_burst"));
  EXPECT_TRUE(has("fault_stalled_feed"));
  EXPECT_TRUE(has("fault_clock_skew"));
}

TEST(ScenarioLibrary, EveryShippedFileRoundTripsThroughTheSerializer) {
  for (const std::string& stem : scenario_stems()) {
    const fs::path path =
        fs::path(HEADROOM_SCENARIO_DIR) / (stem + ".scn");
    const ParseResult first = load_scenario_file(path.string());
    ASSERT_TRUE(first.ok()) << first.error;
    const ParseResult second =
        parse_scenario(serialize_scenario(first.spec), stem);
    ASSERT_TRUE(second.ok()) << second.error;
    EXPECT_EQ(first.spec, second.spec) << stem;
  }
}

}  // namespace
}  // namespace headroom::scenario
