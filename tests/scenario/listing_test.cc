// Scenario directory listing: one malformed file must not hide the rest.
// The regression pinned here: `headroom list-scenarios` used to abort on
// the first unparsable .scn; list_scenario_dir now reports per-file errors
// and keeps listing.
#include "scenario/listing.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

namespace headroom::scenario {
namespace {

namespace fs = std::filesystem;

class ListingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("headroom_listing_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  void write(const std::string& name, const std::string& body) const {
    std::ofstream out(dir_ / name, std::ios::binary);
    out << body;
  }

  fs::path dir_;
};

constexpr const char* kGoodScenario = R"([scenario]
name = good
seed = 5
days = 1

[fleet]
kind = single_pool
service = D
servers = 4
)";

TEST_F(ListingTest, MissingDirectoryIsAListingError) {
  const ScenarioListing listing =
      list_scenario_dir((dir_ / "does_not_exist").string());
  EXPECT_FALSE(listing.ok());
  EXPECT_NE(listing.error.find("not a directory"), std::string::npos)
      << listing.error;
  EXPECT_TRUE(listing.entries.empty());
}

TEST_F(ListingTest, EmptyDirectoryListsNothing) {
  const ScenarioListing listing = list_scenario_dir(dir_.string());
  EXPECT_TRUE(listing.ok());
  EXPECT_TRUE(listing.entries.empty());
}

TEST_F(ListingTest, MalformedFileDoesNotHideTheOthers) {
  write("aaa_good.scn", kGoodScenario);
  write("mmm_broken.scn", "days = banana\n");
  write("zzz_good.scn", kGoodScenario);
  write("notes.txt", "not a scenario");  // non-.scn files are ignored

  const ScenarioListing listing = list_scenario_dir(dir_.string());
  EXPECT_TRUE(listing.ok()) << listing.error;
  ASSERT_EQ(listing.entries.size(), 3u);

  // Sorted by file name, parse failures in place.
  EXPECT_EQ(listing.entries[0].file, "aaa_good.scn");
  EXPECT_TRUE(listing.entries[0].ok()) << listing.entries[0].error;
  EXPECT_EQ(listing.entries[0].spec.name, "good");

  EXPECT_EQ(listing.entries[1].file, "mmm_broken.scn");
  EXPECT_FALSE(listing.entries[1].ok());
  EXPECT_FALSE(listing.entries[1].error.empty());

  EXPECT_EQ(listing.entries[2].file, "zzz_good.scn");
  EXPECT_TRUE(listing.entries[2].ok());
}

TEST_F(ListingTest, EveryFileBrokenStillListsEveryFile) {
  write("a.scn", "garbage\n");
  write("b.scn", "[pool]\n");
  const ScenarioListing listing = list_scenario_dir(dir_.string());
  EXPECT_TRUE(listing.ok());
  ASSERT_EQ(listing.entries.size(), 2u);
  EXPECT_FALSE(listing.entries[0].ok());
  EXPECT_FALSE(listing.entries[1].ok());
}

TEST_F(ListingTest, ShippedScenarioDirectoryListsClean) {
  const ScenarioListing listing = list_scenario_dir(HEADROOM_SCENARIO_DIR);
  EXPECT_TRUE(listing.ok()) << listing.error;
  EXPECT_GE(listing.entries.size(), 6u);
  for (const ScenarioListEntry& entry : listing.entries) {
    EXPECT_TRUE(entry.ok()) << entry.file << ": " << entry.error;
  }
}

}  // namespace
}  // namespace headroom::scenario
