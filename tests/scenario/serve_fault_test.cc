// Degraded-input survival pins for `headroom serve`.
//
// Three contracts, each enforced here:
//
//  1. Every shipped fault scenario serves to the SAME machine summary as
//     its fault-free batch golden — injected faults are either healed,
//     quarantined, or summary-preserving by construction — and its health
//     report is deterministic and thread-count invariant, pinned
//     byte-for-byte in tests/scenario/golden/health/<name>.health
//     (regenerate with HEADROOM_UPDATE_GOLDENS=1).
//
//  2. A pool dark past the staleness budget mid-experiment fails safe:
//     the RSM reduction experiment is aborted back to its starting
//     serving count (never shrink on stale data) and the summary carries
//     rsm_failsafe = 1.
//
//  3. Follow mode survives damaged trace CSVs: duplicated or reordered
//     window_start rows (previously fatal in the tailer — the regression
//     this PR fixes), garbage rows, NaN values, and skewed timestamps are
//     quarantined and counted, never crashes.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/fault.h"
#include "scenario/scenario_parser.h"
#include "scenario/serve.h"
#include "scenario/trace.h"

#ifndef HEADROOM_SCENARIO_DIR
#error "HEADROOM_SCENARIO_DIR must point at examples/scenarios"
#endif
#ifndef HEADROOM_GOLDEN_DIR
#error "HEADROOM_GOLDEN_DIR must point at tests/scenario/golden"
#endif

namespace headroom::scenario {
namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

ParseResult load_library_scenario(const std::string& stem) {
  return load_scenario_file(
      (fs::path(HEADROOM_SCENARIO_DIR) / (stem + ".scn")).string());
}

// --- 1. Shipped fault pack: summary identity + pinned health reports --------

class ServeFaultGolden : public ::testing::TestWithParam<std::string> {};

TEST_P(ServeFaultGolden, SummaryMatchesBatchGoldenAndHealthReportIsPinned) {
  ParseResult parsed = load_library_scenario(GetParam());
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ASSERT_FALSE(parsed.spec.faults.empty())
      << GetParam() << " must declare at least one [fault]";

  const fs::path golden_path =
      fs::path(HEADROOM_GOLDEN_DIR) / (GetParam() + ".golden");
  ASSERT_TRUE(fs::exists(golden_path))
      << "no batch golden for " << GetParam();
  const std::string golden = read_file(golden_path);

  const ServeRunner runner;
  const ServeResult serial = runner.serve(parsed.spec, {});
  // The faults damaged the delivered feed, yet the summary is the
  // fault-free batch summary: healed, quarantined, or summary-preserving.
  EXPECT_EQ(serial.summary, golden)
      << "injected faults leaked into the machine summary";
  EXPECT_TRUE(serial.result.assertions_pass);
  EXPECT_TRUE(serial.health_active);
  EXPECT_TRUE(serial.degraded);
  ASSERT_FALSE(serial.health_report.empty());

  // Thread-count invariance of both artifacts.
  ScenarioSpec threaded = parsed.spec;
  threaded.threads = 4;
  const ServeResult parallel = runner.serve(threaded, {});
  EXPECT_EQ(parallel.summary, golden);
  EXPECT_EQ(parallel.health_report, serial.health_report)
      << "health report depends on the stepping thread count";

  const fs::path health_path =
      fs::path(HEADROOM_GOLDEN_DIR) / "health" / (GetParam() + ".health");
  if (std::getenv("HEADROOM_UPDATE_GOLDENS") != nullptr) {
    fs::create_directories(health_path.parent_path());
    std::ofstream out(health_path, std::ios::binary);
    out << serial.health_report;
    ASSERT_TRUE(out.good()) << "failed to write " << health_path;
    GTEST_SKIP() << "updated " << health_path;
  }
  ASSERT_TRUE(fs::exists(health_path))
      << "no health pin for " << GetParam()
      << "; run with HEADROOM_UPDATE_GOLDENS=1 to create it";
  EXPECT_EQ(serial.health_report, read_file(health_path))
      << "health report drifted from " << health_path
      << "; if intentional, regenerate with HEADROOM_UPDATE_GOLDENS=1";
}

INSTANTIATE_TEST_SUITE_P(FaultPack, ServeFaultGolden,
                         ::testing::Values("fault_gap_heal",
                                           "fault_nan_burst",
                                           "fault_stalled_feed",
                                           "fault_clock_skew"));

// --- Hardened fault-free serve stays byte-identical and un-degraded ---------

TEST(ServeHardened, FaultFreeHardenedServeMatchesGoldenAndIsNotDegraded) {
  ParseResult parsed = load_library_scenario("reduction_mid_run");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const std::string golden = read_file(
      fs::path(HEADROOM_GOLDEN_DIR) / "reduction_mid_run.golden");

  ServeOptions opt;
  opt.harden = true;
  const ServeResult served = ServeRunner(opt).serve(parsed.spec, {});
  EXPECT_EQ(served.summary, golden)
      << "--harden with a clean feed changed the summary";
  EXPECT_TRUE(served.health_active);
  EXPECT_FALSE(served.degraded);
  EXPECT_NE(served.health_report.find("health degraded = 0"),
            std::string::npos)
      << served.health_report;
}

// --- 2. Staleness budget exhausted mid-experiment => failsafe abort ---------

TEST(ServeFailsafe, TargetPoolDarkPastStalenessBudgetAbortsTheExperiment) {
  ParseResult parsed = load_library_scenario("fault_stalled_feed");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  // Replace the benign stall with a permanent gap on the target pool
  // opening mid-experiment: no catch-up ever arrives, so the pool walks
  // HEALING -> STALE -> FAILSAFE and the reduction experiment must be
  // abandoned rather than acted on.
  parsed.spec.faults.clear();
  FaultSpec gap;
  gap.kind = FaultKind::kTelemetryGap;
  gap.datacenter = 0;
  gap.pool = 0;
  gap.start_hour = 52.0;
  gap.duration_hours = 10000.0;
  parsed.spec.faults.push_back(gap);

  const ServeResult served = ServeRunner().serve(parsed.spec, {});
  EXPECT_TRUE(served.health_active);
  EXPECT_TRUE(served.degraded);
  EXPECT_NE(served.health_report.find("mode=failsafe"), std::string::npos)
      << served.health_report;
  EXPECT_NE(served.summary.find("metric rsm_failsafe = 1"), std::string::npos)
      << served.summary;
  // Never shrink on stale data: the abort restored the starting count.
  EXPECT_EQ(served.result.rsm.recommended_serving,
            served.result.rsm.starting_serving);
}

// --- 3. Follow mode over damaged trace CSVs ---------------------------------

/// One shared recording (a 2-day measure-only scenario, so exporting is
/// cheap) that each test damages into its own copy.
class DamagedTrace : public ::testing::Test {
 protected:
  static fs::path scratch_dir(const std::string& stem) {
    return fs::temp_directory_path() /
           (stem + "_" + std::to_string(::getpid()));
  }

  static void SetUpTestSuite() {
    dir_ = new fs::path(scratch_dir("headroom_damaged_trace"));
    fs::remove_all(*dir_);
    ParseResult parsed = load_library_scenario("reduction_mid_run");
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    ScenarioRunResult result;
    const TraceExportResult exported =
        export_trace(parsed.spec, dir_->string(), &result);
    ASSERT_TRUE(exported.ok()) << exported.error;
    summary_ = new std::string(read_file(*dir_ / "summary.txt"));
  }
  static void TearDownTestSuite() {
    fs::remove_all(*dir_);
    delete dir_;
    delete summary_;
    dir_ = nullptr;
    summary_ = nullptr;
  }

  /// Copies the pristine recording into a fresh scratch directory.
  static fs::path clone_trace(const std::string& stem) {
    const fs::path dst = scratch_dir(stem);
    fs::remove_all(dst);
    fs::copy(*dir_, dst);
    return dst;
  }

  static ServeOptions fast_poll() {
    ServeOptions opt;
    opt.poll_ms = 1;
    return opt;
  }

  static fs::path* dir_;
  static std::string* summary_;
};

fs::path* DamagedTrace::dir_ = nullptr;
std::string* DamagedTrace::summary_ = nullptr;

/// The satellite bugfix regression: a writer that re-emits an
/// already-written window (log rotation replay, double flush) used to be
/// fatal in the tailer — `trace csv: window_start moved backwards`. The
/// hardened tailer quarantines the duplicates and the follow completes
/// with the summary unchanged, since the first delivery of each window
/// already carried the true values.
TEST_F(DamagedTrace, DuplicatedWindowRowsAreQuarantinedNotFatal) {
  const fs::path dir = clone_trace("headroom_follow_duprows");
  // Duplicate a mid-file block of rows in every pool CSV: rows for
  // windows the reader has already consumed arrive again.
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("pool_", 0) != 0) continue;
    std::vector<std::string> lines;
    std::ifstream in(entry.path());
    for (std::string line; std::getline(in, line);) lines.push_back(line);
    in.close();
    ASSERT_GT(lines.size(), 200u);
    std::ofstream out(entry.path(), std::ios::binary | std::ios::trunc);
    for (std::size_t i = 0; i < lines.size(); ++i) {
      out << lines[i] << '\n';
      if (i == 150) {  // Re-emit the previous 50 rows.
        for (std::size_t j = 100; j <= 150; ++j) out << lines[j] << '\n';
      }
    }
  }
  const ServeResult followed =
      ServeRunner(fast_poll()).follow(dir.string(), {});
  EXPECT_EQ(followed.summary, *summary_)
      << "duplicated rows must not change what the pipeline computed";
  EXPECT_TRUE(followed.health_active);
  EXPECT_TRUE(followed.degraded);
  EXPECT_NE(followed.health_report.find("quarantined_duplicate="),
            std::string::npos);
  EXPECT_EQ(followed.health_report.find("quarantined_duplicate=0"),
            std::string::npos)
      << followed.health_report;
  fs::remove_all(dir);
}

TEST_F(DamagedTrace, CorruptTraceCsvsSurviveAsQuarantineAndHealing) {
  const fs::path dir = clone_trace("headroom_follow_corrupt");
  // The injector's follow-mode twin damages the recorded CSVs in place:
  // NaN values, garbage rows, and skewed timestamps, all on the target
  // pool, all inside day 1 so healing has history to fill from.
  ParseResult parsed = load_library_scenario("reduction_mid_run");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const auto add = [&](FaultKind kind, double start_hour, double hours,
                       double skew = 0.0) {
    FaultSpec f;
    f.kind = kind;
    f.datacenter = 0;
    f.pool = 0;
    f.start_hour = start_hour;
    f.duration_hours = hours;
    f.skew_seconds = skew;
    parsed.spec.faults.push_back(f);
  };
  add(FaultKind::kNanBurst, 10.0, 0.1);
  add(FaultKind::kCorruptRow, 14.0, 0.1);
  add(FaultKind::kClockSkew, 18.0, 0.1, 30.0);
  const std::size_t damaged = corrupt_trace_csvs(dir.string(), parsed.spec);
  ASSERT_GT(damaged, 0u);

  // Survival, not identity: healed fills approximate the lost values, so
  // the summary may legitimately differ — but the follow must complete
  // cleanly with every damage class counted.
  const ServeResult followed =
      ServeRunner(fast_poll()).follow(dir.string(), {});
  EXPECT_TRUE(followed.health_active);
  EXPECT_TRUE(followed.degraded);
  const std::string& report = followed.health_report;
  EXPECT_EQ(report.find("quarantined_nan=0 "), std::string::npos) << report;
  EXPECT_EQ(report.find("malformed_rows=0 "), std::string::npos) << report;
  EXPECT_EQ(report.find("realigned=0 "), std::string::npos) << report;
  fs::remove_all(dir);
}

TEST_F(DamagedTrace, StrictBatchReplayStillRejectsDamagedCsvs) {
  // The hardened path is serve --follow only: `run --trace` keeps its
  // strict contract and refuses a trace with duplicated window rows.
  const fs::path dir = clone_trace("headroom_replay_strict");
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("pool_", 0) != 0) continue;
    std::vector<std::string> lines;
    std::ifstream in(entry.path());
    for (std::string line; std::getline(in, line);) lines.push_back(line);
    in.close();
    std::ofstream out(entry.path(),
                      std::ios::binary | std::ios::app);
    out << lines[100] << '\n';  // One replayed row at the tail.
  }
  const TraceReplayResult replay = replay_trace(dir.string());
  EXPECT_FALSE(replay.ok());
  EXPECT_NE(replay.error.find("window_start"), std::string::npos)
      << replay.error;
  fs::remove_all(dir);
}

}  // namespace
}  // namespace headroom::scenario
