// Continuous-mode bit-identity pins.
//
// The contract the serve refactor must keep: a scenario streamed through
// `headroom serve` — windows arriving one at a time, pipeline stages
// advancing incrementally, rolling retention evicting consumed history —
// produces the identical final machine summary to the batch run, byte for
// byte, at any thread count. The batch summaries are already pinned in
// tests/scenario/golden/, so serving is compared against those same files.
//
// Follow mode gets the same treatment against a recorded trace directory:
// a complete recording, a recording growing under the reader, and a feed
// that dies mid-experiment.
#include "scenario/serve.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "scenario/scenario_parser.h"
#include "scenario/trace.h"

#ifndef HEADROOM_SCENARIO_DIR
#error "HEADROOM_SCENARIO_DIR must point at examples/scenarios"
#endif
#ifndef HEADROOM_GOLDEN_DIR
#error "HEADROOM_GOLDEN_DIR must point at tests/scenario/golden"
#endif

namespace headroom::scenario {
namespace {

namespace fs = std::filesystem;

std::vector<std::string> scenario_stems() {
  std::vector<std::string> stems;
  for (const auto& entry : fs::directory_iterator(HEADROOM_SCENARIO_DIR)) {
    if (entry.is_regular_file() && entry.path().extension() == ".scn") {
      // The 100x-scale smoke has no batch golden (it is budgeted, not
      // pinned — see scenario_golden_test.cc) and would serve ~470k
      // servers twice here; it runs as a Release-only cli smoke instead.
      if (entry.path().stem() == "standard_fleet_x100") continue;
      stems.push_back(entry.path().stem().string());
    }
  }
  std::sort(stems.begin(), stems.end());
  return stems;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class ServeIdentity : public ::testing::TestWithParam<std::string> {};

TEST_P(ServeIdentity, ServedSummaryMatchesTheBatchGoldenAtAnyThreadCount) {
  const fs::path scenario_path =
      fs::path(HEADROOM_SCENARIO_DIR) / (GetParam() + ".scn");
  ParseResult parsed = load_scenario_file(scenario_path.string());
  ASSERT_TRUE(parsed.ok()) << parsed.error;

  const fs::path golden_path =
      fs::path(HEADROOM_GOLDEN_DIR) / (GetParam() + ".golden");
  ASSERT_TRUE(fs::exists(golden_path))
      << "no golden pin for " << GetParam()
      << " (the batch golden test creates these)";
  const std::string golden = read_file(golden_path);

  const ServeRunner runner;
  const ServeResult serial = runner.serve(parsed.spec, {});
  EXPECT_EQ(serial.summary, golden)
      << "streaming the pipeline window-by-window changed the summary";
  EXPECT_TRUE(serial.result.assertions_pass);
  EXPECT_GT(serial.windows, 0u);
  EXPECT_GT(serial.reports, 0u);

  ScenarioSpec threaded = parsed.spec;
  threaded.threads = 4;
  const ServeResult parallel = runner.serve(threaded, {});
  EXPECT_EQ(parallel.summary, golden)
      << "served summary depends on the stepping thread count";
}

INSTANTIATE_TEST_SUITE_P(Library, ServeIdentity,
                         ::testing::ValuesIn(scenario_stems()));

TEST(ServeRetention, ExperimentPhaseEvictsConsumedHistory) {
  // fig6 runs measure+optimize over 2 observation days + 5 RSM days with
  // the default 2-day retention: most of the feed must have been evicted
  // by completion, with the resident set bounded by the retention window.
  ParseResult parsed = load_scenario_file(
      (fs::path(HEADROOM_SCENARIO_DIR) / "fig6_flash_crowd.scn").string());
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const ServeResult served = ServeRunner().serve(parsed.spec, {});
  EXPECT_GT(served.evicted_samples, 0u);
  EXPECT_GT(served.resident_samples, 0u);
  // The bulk of a 7-day feed is outside the 2-day retention window.
  EXPECT_LT(served.resident_samples, served.evicted_samples);
}

// --- Follow mode over a recorded trace --------------------------------------

/// One shared recording for every follow test: exporting runs the full
/// fleet simulation, so it happens once per suite.
class FollowTrace : public ::testing::Test {
 protected:
  /// Per-process scratch path: ctest runs each TEST_F as its own process,
  /// so a fixed name would race between concurrently running tests.
  static fs::path scratch_dir(const std::string& stem) {
    return fs::temp_directory_path() /
           (stem + "_" + std::to_string(::getpid()));
  }

  static void SetUpTestSuite() {
    dir_ = new fs::path(scratch_dir("headroom_follow_trace"));
    fs::remove_all(*dir_);
    ParseResult parsed = load_scenario_file(
        (fs::path(HEADROOM_SCENARIO_DIR) / "fig6_flash_crowd.scn").string());
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    ScenarioRunResult result;
    const TraceExportResult exported =
        export_trace(parsed.spec, dir_->string(), &result);
    ASSERT_TRUE(exported.ok()) << exported.error;
    summary_ = new std::string(read_file(*dir_ / "summary.txt"));
    ASSERT_FALSE(summary_->empty());
  }
  static void TearDownTestSuite() {
    fs::remove_all(*dir_);
    delete dir_;
    delete summary_;
    dir_ = nullptr;
    summary_ = nullptr;
  }

  static ServeOptions fast_poll() {
    ServeOptions opt;
    opt.poll_ms = 1;
    return opt;
  }

  static fs::path* dir_;
  static std::string* summary_;
};

fs::path* FollowTrace::dir_ = nullptr;
std::string* FollowTrace::summary_ = nullptr;

TEST_F(FollowTrace, CompleteRecordingReproducesTheRecordedSummary) {
  const ServeResult followed =
      ServeRunner(fast_poll()).follow(dir_->string(), {});
  EXPECT_EQ(followed.summary, *summary_)
      << "following a finished recording must reproduce its summary";
  EXPECT_TRUE(followed.result.assertions_pass);
  // The eviction floor released the observation phase but protected the
  // experiment windows the session had not consumed yet.
  EXPECT_GT(followed.evicted_samples, 0u);
}

TEST_F(FollowTrace, RecordingGrowingUnderTheReaderReproducesTheSummary) {
  const fs::path grow_dir = scratch_dir("headroom_follow_grow");
  fs::remove_all(grow_dir);
  fs::create_directories(grow_dir);
  for (const char* name :
       {"scenario.scn", "manifest.ini", "server_day_cpu.csv"}) {
    fs::copy_file(*dir_ / name, grow_dir / name);
  }
  // Every pool CSV split into joint chunks, appended while follow() runs.
  std::vector<fs::path> pool_files;
  std::vector<std::vector<std::string>> pool_lines;
  for (const auto& entry : fs::directory_iterator(*dir_)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("pool_", 0) != 0) continue;
    pool_files.push_back(grow_dir / name);
    std::vector<std::string> lines;
    std::ifstream in(entry.path());
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    pool_lines.push_back(std::move(lines));
  }
  ASSERT_FALSE(pool_files.empty());

  std::thread writer([&] {
    const std::size_t total = pool_lines[0].size();
    std::size_t written = 0;
    while (written < total) {
      const std::size_t next = std::min(written + 997, total);
      for (std::size_t p = 0; p < pool_files.size(); ++p) {
        std::ofstream out(pool_files[p], std::ios::app | std::ios::binary);
        for (std::size_t i = written; i < next; ++i) {
          out << pool_lines[p][i] << '\n';
        }
      }
      written = next;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  ServeOptions opt = fast_poll();
  opt.max_idle_polls = 200000;  // the writer paces the feed, not the poll
  ServeResult followed;
  try {
    followed = ServeRunner(opt).follow(grow_dir.string(), {});
  } catch (...) {
    writer.join();
    fs::remove_all(grow_dir);
    throw;
  }
  writer.join();
  fs::remove_all(grow_dir);
  EXPECT_EQ(followed.summary, *summary_)
      << "a trace growing under the reader must replay like a finished one";
}

TEST_F(FollowTrace, FeedDyingMidExperimentFailsSafeInsteadOfHanging) {
  const fs::path dead_dir = scratch_dir("headroom_follow_dead");
  fs::remove_all(dead_dir);
  fs::create_directories(dead_dir);
  for (const char* name :
       {"scenario.scn", "manifest.ini", "server_day_cpu.csv"}) {
    fs::copy_file(*dir_ / name, dead_dir / name);
  }
  // Three of the seven recorded days: past the observation horizon, well
  // short of what the RSM experiment needs.
  const std::size_t keep = 1 + 3 * 720;  // header + three days of windows
  for (const auto& entry : fs::directory_iterator(*dir_)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("pool_", 0) != 0) continue;
    std::ifstream in(entry.path());
    std::ofstream out(dead_dir / name, std::ios::binary);
    std::string line;
    for (std::size_t i = 0; i < keep && std::getline(in, line); ++i) {
      out << line << '\n';
    }
  }

  ServeOptions opt = fast_poll();
  opt.max_idle_polls = 5;
  // The watchdog used to throw here; now it fails safe: every pool is
  // degraded to FAILSAFE, the pending reduction experiment is aborted back
  // to its starting serving count, and follow() returns a clean result
  // flagged degraded instead of hanging or crashing.
  const ServeResult followed = ServeRunner(opt).follow(dead_dir.string(), {});
  EXPECT_TRUE(followed.health_active);
  EXPECT_TRUE(followed.degraded);
  EXPECT_NE(followed.health_report.find("mode=failsafe"), std::string::npos)
      << followed.health_report;
  EXPECT_NE(followed.health_report.find("feed watchdog"), std::string::npos)
      << followed.health_report;
  EXPECT_NE(followed.summary.find("metric rsm_failsafe = 1"),
            std::string::npos)
      << followed.summary;
  // Never shrink on stale data: the abort restored the starting count.
  EXPECT_EQ(followed.result.rsm.recommended_serving,
            followed.result.rsm.starting_serving);
  fs::remove_all(dead_dir);
}

TEST_F(FollowTrace, MalformedFeedSurfacesTheTraceDiagnostic) {
  const fs::path bad_dir = scratch_dir("headroom_follow_bad");
  fs::remove_all(bad_dir);
  fs::create_directories(bad_dir);
  try {
    (void)ServeRunner(fast_poll()).follow(bad_dir.string(), {});
    FAIL() << "expected a trace diagnostic";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("manifest"), std::string::npos)
        << e.what();
  }
  fs::remove_all(bad_dir);
}

}  // namespace
}  // namespace headroom::scenario
