// Property sweeps across the whole micro-service catalog: invariants every
// service profile must satisfy, regardless of its calibration. These are
// the guardrails that keep future catalog tuning honest.
#include <gtest/gtest.h>

#include <string>

#include "sim/fleet.h"
#include "sim/response.h"
#include "stats/linear_model.h"
#include "stats/percentile.h"

namespace headroom {
namespace {

constexpr telemetry::SimTime kDay = 86400;
using telemetry::MetricKind;

class ServiceSweep : public ::testing::TestWithParam<std::string> {
 protected:
  sim::MicroserviceCatalog catalog_;
  const sim::MicroserviceProfile& profile() {
    return catalog_.by_name(GetParam());
  }
};

TEST_P(ServiceSweep, CpuSlopeEqualsCostOverCores) {
  const sim::ResponseModel model(profile(), sim::HardwareGeneration{});
  const double slope = (model.cpu_attributed_pct(200.0) -
                        model.cpu_attributed_pct(100.0)) /
                       100.0;
  EXPECT_NEAR(slope, profile().cost_ms_per_request / (10.0 * 16.0), 1e-12);
}

TEST_P(ServiceSweep, LatencyHasColdDipShape) {
  // Every profile must show the paper's latency shape: elevated at near-
  // zero load, minimal somewhere in the operating range, rising after.
  const sim::ResponseModel model(profile(), sim::HardwareGeneration{});
  const double target = profile().target_rps_per_server_p95;
  const double at_idle = model.latency_p95_ms(target * 0.02, 1.0);
  const double at_target = model.latency_p95_ms(target, 1.0);
  EXPECT_GT(at_idle, at_target) << "no cold-start elevation";
  // Far past the operating point latency must exceed the target level
  // (queueing or the capacity knee must bite eventually).
  const double at_3x = model.latency_p95_ms(target * 3.0, 1.0);
  EXPECT_GT(at_3x, at_target);
}

TEST_P(ServiceSweep, LatencyMonotoneAboveTwiceTarget) {
  const sim::ResponseModel model(profile(), sim::HardwareGeneration{});
  const double target = profile().target_rps_per_server_p95;
  double prev = model.latency_p95_ms(2.0 * target, 1.0);
  for (double f = 2.1; f <= 3.5; f += 0.1) {
    const double cur = model.latency_p95_ms(f * target, 1.0);
    EXPECT_GE(cur, prev - 1e-9) << "f=" << f;
    prev = cur;
  }
}

TEST_P(ServiceSweep, SloSitsAboveOperatingLatency) {
  // The business SLO must leave nonzero budget at the operating point —
  // otherwise the pool is mis-provisioned by construction.
  const sim::ResponseModel model(profile(), sim::HardwareGeneration{});
  const double at_target =
      model.latency_p95_ms(profile().target_rps_per_server_p95, 1.0);
  EXPECT_GT(profile().latency_slo_ms, at_target);
}

TEST_P(ServiceSweep, SinglePoolFleetHitsOperatingPoint) {
  // single_pool_fleet must place every service at its published P95
  // operating point, not just pools B and D.
  sim::FleetSimulator fleet(
      sim::single_pool_fleet(catalog_, GetParam(), 24), catalog_);
  fleet.run_until(2 * kDay);
  const auto rps =
      fleet.store().pool_series(0, 0, MetricKind::kRequestsPerSecond).values();
  EXPECT_NEAR(stats::percentile(rps, 95.0),
              profile().target_rps_per_server_p95,
              profile().target_rps_per_server_p95 * 0.08);
}

TEST_P(ServiceSweep, CpuMetricValidatesLinearTight) {
  sim::FleetSimulator fleet(
      sim::single_pool_fleet(catalog_, GetParam(), 24), catalog_);
  fleet.run_until(kDay);
  const auto scatter = fleet.store().pool_scatter(
      0, 0, MetricKind::kRequestsPerSecond, MetricKind::kCpuPercentAttributed);
  const stats::LinearFit fit = stats::fit_linear(scatter.x, scatter.y);
  EXPECT_GT(fit.r_squared, 0.9) << "CPU-vs-RPS must be tight for planning";
  EXPECT_NEAR(fit.intercept, profile().process_base_cpu_pct,
              0.3 + profile().process_base_cpu_pct * 0.15);
}

TEST_P(ServiceSweep, ReductionRaisesLoadByExactRatio) {
  // Removing servers at constant demand must raise mean per-server load by
  // n_old/n_new — conservation through the load balancer.
  sim::FleetSimulator fleet(
      sim::single_pool_fleet(catalog_, GetParam(), 24), catalog_);
  fleet.run_until(kDay);
  fleet.set_serving_count(0, 0, 18);
  fleet.run_until(2 * kDay);
  const auto& series =
      fleet.store().pool_series(0, 0, MetricKind::kRequestsPerSecond);
  // Compare the same diurnal phase: window t vs t + kDay.
  const auto before = series.values_between(6 * 3600, 18 * 3600);
  const auto after = series.values_between(kDay + 6 * 3600, kDay + 18 * 3600);
  ASSERT_EQ(before.size(), after.size());
  double ratio = 0.0;
  for (std::size_t i = 0; i < before.size(); ++i) ratio += after[i] / before[i];
  ratio /= static_cast<double>(before.size());
  EXPECT_NEAR(ratio, 24.0 / 18.0, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Catalog, ServiceSweep,
                         ::testing::Values("A", "B", "C", "D", "E", "F", "G"),
                         [](const ::testing::TestParamInfo<std::string>& param_info) {
                           return param_info.param;
                         });

// --- Fleet-level conservation properties ------------------------------------

TEST(FleetProperties, FailoverConservesGlobalDemand) {
  const sim::MicroserviceCatalog catalog;
  sim::StandardFleetOptions opt;
  opt.services = {"B"};
  opt.regional_peak_rps = 1000.0;
  for (std::uint32_t down_dc = 0; down_dc < 9; down_dc += 3) {
    sim::FleetConfig config = sim::standard_fleet(catalog, opt);
    workload::CapacityEvent outage;
    outage.kind = workload::EventKind::kDatacenterOutage;
    outage.start = 0;
    outage.end = kDay;
    outage.datacenter = down_dc;
    config.events.add(outage);
    const sim::FleetSimulator with_outage(std::move(config), catalog);
    const sim::FleetSimulator without(sim::standard_fleet(catalog, opt),
                                      catalog);
    for (telemetry::SimTime t : {3600L, 12 * 3600L, 20 * 3600L}) {
      double sum_with = 0.0;
      double sum_without = 0.0;
      for (std::uint32_t dc = 0; dc < 9; ++dc) {
        sum_with += with_outage.datacenter_demand(t, dc);
        sum_without += without.datacenter_demand(t, dc);
      }
      EXPECT_NEAR(sum_with, sum_without, sum_without * 1e-9)
          << "down_dc=" << down_dc << " t=" << t;
      EXPECT_EQ(with_outage.datacenter_demand(t, down_dc), 0.0);
    }
  }
}

TEST(FleetProperties, NearestSurvivorAbsorbsMost) {
  const sim::MicroserviceCatalog catalog;
  sim::StandardFleetOptions opt;
  opt.services = {"B"};
  sim::FleetConfig config = sim::standard_fleet(catalog, opt);
  workload::CapacityEvent outage;
  outage.kind = workload::EventKind::kDatacenterOutage;
  outage.start = 0;
  outage.end = kDay;
  outage.datacenter = 4;  // tz +1
  config.events.add(outage);
  const sim::FleetSimulator with_outage(std::move(config), catalog);
  const sim::FleetSimulator without(sim::standard_fleet(catalog, opt), catalog);

  // Gain per unit of demand weight, by DC; the timezone-nearest survivors
  // (DC4 tz 0, DC6 tz +3) must gain more than the antipodal ones.
  auto gain = [&](std::uint32_t dc) {
    const double before = without.datacenter_demand(12 * 3600, dc);
    const double after = with_outage.datacenter_demand(12 * 3600, dc);
    return (after - before) / without.config().datacenters[dc].demand_weight;
  };
  EXPECT_GT(gain(3), gain(0));  // DC4 (tz 0) vs DC1 (tz -8)
  EXPECT_GT(gain(5), gain(8));  // DC6 (tz +3) vs DC9 (tz +9)
}

TEST(FleetProperties, WindowCountsExactOverMultipleDays) {
  const sim::MicroserviceCatalog catalog;
  sim::FleetSimulator fleet(sim::single_pool_fleet(catalog, "G", 8), catalog);
  fleet.run_until(3 * kDay);
  EXPECT_EQ(
      fleet.store().pool_series(0, 0, MetricKind::kRequestsPerSecond).size(),
      static_cast<std::size_t>(3 * kDay / 120));
}

TEST(FleetProperties, DigestDaysMatchServersTimesDays) {
  const sim::MicroserviceCatalog catalog;
  sim::FleetSimulator fleet(sim::single_pool_fleet(catalog, "F", 10), catalog);
  fleet.run_until(3 * kDay);
  fleet.finish_day();
  EXPECT_EQ(fleet.server_day_cpu().size(), 30u);
}

}  // namespace
}  // namespace headroom
