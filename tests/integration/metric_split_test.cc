// The §II-A1 anecdote, reproduced end to end: "when analyzing a
// micro-service similar to MemCached, we found the metric was noisy
// because the workload was measuring requests to multiple tables. After
// splitting workload into two metrics for each table, both exhibited a
// linear relationship with CPU."
//
// We synthesize two independent table workloads with very different
// per-request costs. The combined requests-per-second metric correlates
// poorly with CPU (the mix ratio varies), while each per-table metric —
// regressed against its own attributed CPU share — is tight. The
// MetricValidator's split_improves check must recommend the split.
#include <gtest/gtest.h>

#include <random>

#include "core/metric_validator.h"
#include "stats/linear_model.h"

namespace headroom {
namespace {

using telemetry::MetricKind;
using telemetry::SeriesKey;

class MetricSplitTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::mt19937_64 rng(7);
    std::uniform_real_distribution<double> r1(200.0, 1200.0);
    std::uniform_real_distribution<double> r2(100.0, 800.0);
    std::normal_distribution<double> noise(0.0, 0.15);
    // Table 1 costs 0.5 CPU-ms/request; table 2 costs 4 CPU-ms/request.
    constexpr double kCost1 = 0.005;
    constexpr double kCost2 = 0.040;
    for (int i = 0; i < 600; ++i) {
      const double t1 = r1(rng);
      const double t2 = r2(rng);
      const double cpu1 = kCost1 * t1 + noise(rng) * 0.1;
      const double cpu2 = kCost2 * t2 + noise(rng) * 0.1;
      table1_rps_.push_back(t1);
      table2_rps_.push_back(t2);
      combined_rps_.push_back(t1 + t2);
      cpu1_.push_back(cpu1);
      cpu2_.push_back(cpu2);
      combined_cpu_.push_back(cpu1 + cpu2 + 1.5 + noise(rng));
    }
  }

  std::vector<double> table1_rps_, table2_rps_, combined_rps_;
  std::vector<double> cpu1_, cpu2_, combined_cpu_;
};

TEST_F(MetricSplitTest, CombinedMetricIsNoisy) {
  const stats::LinearFit combined =
      stats::fit_linear(combined_rps_, combined_cpu_);
  // The mix ratio varies, so total-RPS explains total-CPU poorly.
  EXPECT_LT(combined.r_squared, 0.75);
}

TEST_F(MetricSplitTest, PerTableMetricsAreTight) {
  const stats::LinearFit fit1 = stats::fit_linear(table1_rps_, cpu1_);
  const stats::LinearFit fit2 = stats::fit_linear(table2_rps_, cpu2_);
  EXPECT_GT(fit1.r_squared, 0.97);
  EXPECT_GT(fit2.r_squared, 0.97);
  // And each recovers its own per-request cost.
  EXPECT_NEAR(fit1.slope, 0.005, 0.0005);
  EXPECT_NEAR(fit2.slope, 0.040, 0.002);
}

TEST_F(MetricSplitTest, ValidatorRecommendsTheSplit) {
  const stats::LinearFit combined =
      stats::fit_linear(combined_rps_, combined_cpu_);
  const double components[] = {
      stats::fit_linear(table1_rps_, cpu1_).r_squared,
      stats::fit_linear(table2_rps_, cpu2_).r_squared};
  EXPECT_TRUE(core::MetricValidator::split_improves(combined.r_squared,
                                                    components));
}

TEST_F(MetricSplitTest, ValidatorFeedbackLoopConverges) {
  // Step 1's loop: the combined metric fails the gate; the split metrics
  // pass it. Drive the actual MetricValidator via a MetricStore.
  telemetry::MetricStore store;
  const SeriesKey workload{0, 0, SeriesKey::kPoolScope,
                           MetricKind::kRequestsPerSecond};
  const SeriesKey resource{0, 0, SeriesKey::kPoolScope,
                           MetricKind::kCpuPercentAttributed};
  // Pool 1 holds the post-split view: table-1 workload vs its CPU share.
  const SeriesKey workload_split{0, 1, SeriesKey::kPoolScope,
                                 MetricKind::kRequestsPerSecond};
  const SeriesKey resource_split{0, 1, SeriesKey::kPoolScope,
                                 MetricKind::kCpuPercentAttributed};
  for (std::size_t i = 0; i < combined_rps_.size(); ++i) {
    const auto t = static_cast<telemetry::SimTime>(i) * 120;
    store.record(workload, t, combined_rps_[i]);
    store.record(resource, t, combined_cpu_[i]);
    store.record(workload_split, t, table1_rps_[i]);
    store.record(resource_split, t, cpu1_[i]);
  }
  const core::MetricValidator validator;
  const auto before = validator.assess(store, 0, 0,
                                       MetricKind::kRequestsPerSecond,
                                       MetricKind::kCpuPercentAttributed);
  const auto after = validator.assess(store, 0, 1,
                                      MetricKind::kRequestsPerSecond,
                                      MetricKind::kCpuPercentAttributed);
  EXPECT_NE(before.verdict, core::MetricVerdict::kLinearTight);
  EXPECT_EQ(after.verdict, core::MetricVerdict::kLinearTight);
}

}  // namespace
}  // namespace headroom
