// Calibration tests: the simulated pools must land on the paper's published
// curves and tables within tolerance. These are the quantitative guardrails
// behind EXPERIMENTS.md — if one of these moves, the bench outputs move.
#include <gtest/gtest.h>

#include "sim/fleet.h"
#include "stats/linear_model.h"
#include "stats/percentile.h"
#include "stats/polynomial.h"

namespace headroom {
namespace {

constexpr telemetry::SimTime kDay = 86400;
using telemetry::MetricKind;

struct PoolFits {
  stats::LinearFit cpu;
  stats::PolynomialFit latency;
  std::vector<double> rps;
};

PoolFits observe_pool(const std::string& service, std::size_t servers,
                      telemetry::SimTime duration) {
  sim::MicroserviceCatalog catalog;
  sim::FleetSimulator fleet(sim::single_pool_fleet(catalog, service, servers),
                           catalog);
  fleet.run_until(duration);
  PoolFits fits;
  const auto cpu_scatter = fleet.store().pool_scatter(
      0, 0, MetricKind::kRequestsPerSecond, MetricKind::kCpuPercentAttributed);
  fits.cpu = stats::fit_linear(cpu_scatter.x, cpu_scatter.y);
  const auto lat_scatter = fleet.store().pool_scatter(
      0, 0, MetricKind::kRequestsPerSecond, MetricKind::kLatencyP95Ms);
  fits.latency = stats::fit_quadratic(lat_scatter.x, lat_scatter.y);
  // Materialize: the fleet (and the span over its value column) dies here.
  const auto rps =
      fleet.store().pool_series(0, 0, MetricKind::kRequestsPerSecond).values();
  fits.rps.assign(rps.begin(), rps.end());
  return fits;
}

TEST(PaperCalibration, PoolBLinearCpuFit) {
  // Fig. 8: y = 0.028x + 1.37, R² = 0.984.
  const PoolFits fits = observe_pool("B", 64, 2 * kDay);
  EXPECT_NEAR(fits.cpu.slope, 0.028, 0.0015);
  EXPECT_NEAR(fits.cpu.intercept, 1.37, 0.3);
  EXPECT_GT(fits.cpu.r_squared, 0.95);
}

TEST(PaperCalibration, PoolBOperatingPoint) {
  // Table II original stage: P50 ≈ 250, P95 ≈ 377 RPS/server.
  const PoolFits fits = observe_pool("B", 64, 5 * kDay);
  EXPECT_NEAR(stats::percentile(fits.rps, 95.0), 377.0, 20.0);
  EXPECT_NEAR(stats::percentile(fits.rps, 50.0), 250.0, 35.0);
}

TEST(PaperCalibration, PoolBLatencyAnchors) {
  // Fig. 9 anchors: ~30.5 ms around the P95 operating point; the fitted
  // quadratic's value near 377 and 540 RPS matches the paper's curve.
  const PoolFits fits = observe_pool("B", 64, 5 * kDay);
  EXPECT_NEAR(fits.latency.predict(377.0), 30.6, 1.2);
  const double paper_at_540 = 4.028e-5 * 540 * 540 - 0.031 * 540 + 36.68;
  EXPECT_NEAR(fits.latency.predict(540.0), paper_at_540, 2.0);
}

TEST(PaperCalibration, PoolDLinearCpuFit) {
  // Fig. 10: y = 0.0916x + 5.0 (R² 0.94-0.97 in the paper).
  const PoolFits fits = observe_pool("D", 100, 2 * kDay);
  EXPECT_NEAR(fits.cpu.slope, 0.0916, 0.004);
  EXPECT_NEAR(fits.cpu.intercept, 5.0, 0.5);
  EXPECT_GT(fits.cpu.r_squared, 0.93);
}

TEST(PaperCalibration, PoolDOperatingPoint) {
  // Table III original stage: P50 ≈ 56.8, P95 ≈ 77.7 RPS/server.
  const PoolFits fits = observe_pool("D", 100, 5 * kDay);
  EXPECT_NEAR(stats::percentile(fits.rps, 95.0), 77.7, 5.0);
  EXPECT_NEAR(stats::percentile(fits.rps, 50.0), 56.8, 8.0);
}

TEST(PaperCalibration, PoolDLatencyQuadraticShape) {
  // Fig. 11: quadratic with a dip near 86 RPS; anchor values ~52-53 ms at
  // 78 RPS and ~50-53 at 95 RPS, elevated at low load.
  const PoolFits fits = observe_pool("D", 100, 5 * kDay);
  ASSERT_EQ(fits.latency.coeffs.size(), 3u);
  EXPECT_GT(fits.latency.coeffs[2], 0.0);   // convex
  EXPECT_LT(fits.latency.coeffs[1], 0.0);   // dips before rising
  EXPECT_NEAR(fits.latency.predict(77.7), 52.8, 2.5);
  EXPECT_GT(fits.latency.predict(20.0), 60.0);  // the cold-start elevation
}

TEST(PaperCalibration, PoolBReductionExperimentMatchesTableII) {
  sim::MicroserviceCatalog catalog;
  sim::FleetSimulator fleet(sim::single_pool_fleet(catalog, "B", 64), catalog);
  fleet.run_until(5 * kDay);
  fleet.set_serving_count(0, 0, 45);  // 30% reduction (64 -> 44.8)
  fleet.run_until(7 * kDay);

  const auto& series =
      fleet.store().pool_series(0, 0, MetricKind::kRequestsPerSecond);
  const auto before = series.values_between(0, 5 * kDay);
  const auto after = series.values_between(5 * kDay, 7 * kDay);
  // Table II: P95 377 -> 540 (the production traffic also grew 10%; our
  // fixed-demand reproduction gets the pure 1/0.7 factor ≈ 536).
  EXPECT_NEAR(stats::percentile(before, 95.0), 377.0, 20.0);
  EXPECT_NEAR(stats::percentile(after, 95.0), 536.0, 30.0);
}

TEST(PaperCalibration, PoolBForecastVsMeasuredWithinPaperGap) {
  // §III-A1 headline: predicted 31.5 ms vs measured 30.9 ms (gap 0.6).
  sim::MicroserviceCatalog catalog;
  sim::FleetSimulator fleet(sim::single_pool_fleet(catalog, "B", 64), catalog);
  fleet.run_until(5 * kDay);

  const auto cpu_scatter = fleet.store().pool_scatter(
      0, 0, MetricKind::kRequestsPerSecond, MetricKind::kCpuPercentAttributed);
  const auto lat_scatter = fleet.store().pool_scatter(
      0, 0, MetricKind::kRequestsPerSecond, MetricKind::kLatencyP95Ms);
  const auto latency_fit = stats::fit_quadratic(lat_scatter.x, lat_scatter.y);
  const auto cpu_fit = stats::fit_linear(cpu_scatter.x, cpu_scatter.y);

  fleet.set_serving_count(0, 0, 45);
  fleet.run_until(7 * kDay);
  const auto after_rps =
      fleet.store()
          .pool_series(0, 0, MetricKind::kRequestsPerSecond)
          .values_between(5 * kDay, 7 * kDay);
  const auto after_lat =
      fleet.store()
          .pool_series(0, 0, MetricKind::kLatencyP95Ms)
          .values_between(5 * kDay, 7 * kDay);
  const auto after_cpu =
      fleet.store()
          .pool_series(0, 0, MetricKind::kCpuPercentAttributed)
          .values_between(5 * kDay, 7 * kDay);

  const double p95_load = stats::percentile(after_rps, 95.0);
  // Average measured latency/CPU in the top-load windows:
  double lat = 0.0;
  double cpu = 0.0;
  int n = 0;
  for (std::size_t i = 0; i < after_rps.size(); ++i) {
    if (after_rps[i] >= p95_load * 0.97) {
      lat += after_lat[i];
      cpu += after_cpu[i];
      ++n;
    }
  }
  ASSERT_GT(n, 3);
  lat /= n;
  cpu /= n;
  // Forecast accuracy: the paper saw |pred - meas| of 0.6 ms and ~1% CPU.
  EXPECT_NEAR(latency_fit.predict(p95_load), lat, 1.2);
  EXPECT_NEAR(cpu_fit.predict(p95_load), cpu, 1.2);
}

TEST(PaperCalibration, PoolDForecastVsMeasured) {
  // §III-A2: 10% reduction; predicted 52.6 ms vs measured 50.7; predicted
  // CPU 13.7% vs measured 13.3%.
  sim::MicroserviceCatalog catalog;
  sim::FleetSimulator fleet(sim::single_pool_fleet(catalog, "D", 100), catalog);
  fleet.run_until(5 * kDay);

  const auto lat_scatter = fleet.store().pool_scatter(
      0, 0, MetricKind::kRequestsPerSecond, MetricKind::kLatencyP95Ms);
  const auto latency_fit = stats::fit_quadratic(lat_scatter.x, lat_scatter.y);

  fleet.set_serving_count(0, 0, 90);
  fleet.run_until(7 * kDay);
  const auto after_rps =
      fleet.store()
          .pool_series(0, 0, MetricKind::kRequestsPerSecond)
          .values_between(5 * kDay, 7 * kDay);
  const auto after_lat =
      fleet.store()
          .pool_series(0, 0, MetricKind::kLatencyP95Ms)
          .values_between(5 * kDay, 7 * kDay);
  const double p95_load = stats::percentile(after_rps, 95.0);
  double lat = 0.0;
  int n = 0;
  for (std::size_t i = 0; i < after_rps.size(); ++i) {
    if (after_rps[i] >= p95_load * 0.97) {
      lat += after_lat[i];
      ++n;
    }
  }
  ASSERT_GT(n, 3);
  lat /= n;
  EXPECT_NEAR(p95_load, 86.3, 6.0);  // 77.7 / 0.9
  EXPECT_NEAR(latency_fit.predict(p95_load), lat, 1.5);
  EXPECT_NEAR(lat, 51.5, 2.5);  // the paper's 50.7-52.6 band
}

}  // namespace
}  // namespace headroom
