// The PR's acceptance criterion, as a golden test: the fig6_flash_crowd
// scenario run through the simulator, exported as a CSV trace, and
// replayed with no simulator in the loop must reproduce the pipeline
// summary byte-for-byte — and that summary must match the committed
// scenario golden pin, so the round trip is anchored to the same bytes the
// scenario suite enforces.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "scenario/scenario_parser.h"
#include "scenario/scenario_runner.h"
#include "scenario/trace.h"

#ifndef HEADROOM_SCENARIO_DIR
#error "HEADROOM_SCENARIO_DIR must point at examples/scenarios"
#endif
#ifndef HEADROOM_SCENARIO_GOLDEN_DIR
#error "HEADROOM_SCENARIO_GOLDEN_DIR must point at tests/scenario/golden"
#endif

namespace headroom::scenario {
namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Scratch directory under the test's working directory, wiped per run.
fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("headroom_" + name);
  fs::remove_all(dir);
  return dir;
}

TEST(TraceRoundTrip, Fig6SummaryIsByteIdenticalThroughExportAndReplay) {
  const fs::path scenario_path =
      fs::path(HEADROOM_SCENARIO_DIR) / "fig6_flash_crowd.scn";
  ParseResult parsed = load_scenario_file(scenario_path.string());
  ASSERT_TRUE(parsed.ok()) << parsed.error;

  const fs::path dir = scratch_dir("trace_roundtrip_fig6");
  ScenarioRunResult recorded;
  const TraceExportResult exported =
      export_trace(parsed.spec, dir.string(), &recorded);
  ASSERT_TRUE(exported.ok()) << exported.error;
  const std::string recorded_summary = format_summary(recorded);

  // The export's summary.txt pins the recording run's bytes.
  EXPECT_EQ(read_file(dir / "summary.txt"), recorded_summary);

  // The recording run must match the committed scenario golden — the same
  // pin tests/scenario enforces, re-anchored here so a trace-path change
  // cannot drift both sides of the comparison together unnoticed.
  const fs::path golden_path =
      fs::path(HEADROOM_SCENARIO_GOLDEN_DIR) / "fig6_flash_crowd.golden";
  ASSERT_TRUE(fs::exists(golden_path)) << golden_path;
  EXPECT_EQ(recorded_summary, read_file(golden_path));

  // Replay: simulate -> export -> re-ingest -> replay, byte-for-byte.
  const TraceReplayResult replayed = replay_trace(dir.string());
  ASSERT_TRUE(replayed.ok()) << replayed.error;
  EXPECT_TRUE(replayed.result.assertions_pass);
  EXPECT_EQ(format_summary(replayed.result), recorded_summary);

  fs::remove_all(dir);
}

TEST(TraceRoundTrip, ReplayedTraceIsReExportableToIdenticalCsvs) {
  // Second-generation export: replaying a trace and re-recording it must
  // be impossible to distinguish at the file level (writer determinism +
  // lossless reader). Export the same spec twice and compare every file.
  const fs::path scenario_path =
      fs::path(HEADROOM_SCENARIO_DIR) / "fig6_flash_crowd.scn";
  ParseResult parsed = load_scenario_file(scenario_path.string());
  ASSERT_TRUE(parsed.ok()) << parsed.error;

  const fs::path first = scratch_dir("trace_gen1");
  const fs::path second = scratch_dir("trace_gen2");
  ASSERT_TRUE(export_trace(parsed.spec, first.string(), nullptr).ok());
  ASSERT_TRUE(export_trace(parsed.spec, second.string(), nullptr).ok());
  std::size_t files = 0;
  for (const auto& entry : fs::directory_iterator(first)) {
    ++files;
    const fs::path other = second / entry.path().filename();
    ASSERT_TRUE(fs::exists(other)) << other;
    EXPECT_EQ(read_file(entry.path()), read_file(other))
        << entry.path().filename();
  }
  EXPECT_GE(files, 5u);  // manifest, scenario, summary, server days, pools
  fs::remove_all(first);
  fs::remove_all(second);
}

}  // namespace
}  // namespace headroom::scenario
