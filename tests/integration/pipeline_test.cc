// End-to-end integration of the four methodology steps against the fleet
// simulator: Measure -> Optimize -> Model -> Validate. This is the test
// that proves the pieces compose the way Fig. 1 of the paper draws them.
#include <gtest/gtest.h>

#include "core/headroom_optimizer.h"
#include "core/metric_validator.h"
#include "core/pool_model.h"
#include "core/regression_gate.h"
#include "core/rsm_planner.h"
#include "core/server_grouper.h"
#include "core/sim_backend.h"
#include "sim/fleet.h"
#include "stats/percentile.h"
#include "workload/synthetic.h"

namespace headroom {
namespace {

constexpr telemetry::SimTime kDay = 86400;
using telemetry::MetricKind;

class PipelineTest : public ::testing::Test {
 protected:
  sim::MicroserviceCatalog catalog_;
};

TEST_F(PipelineTest, StepOneMeasureValidatesCpuAsLimitingResource) {
  sim::FleetSimulator fleet(sim::single_pool_fleet(catalog_, "B", 30), catalog_);
  fleet.run_until(kDay);

  const core::MetricValidator validator;
  const MetricKind resources[] = {
      MetricKind::kCpuPercentAttributed, MetricKind::kNetworkBytesPerSecond,
      MetricKind::kMemoryPagesPerSecond, MetricKind::kDiskQueueLength,
  };
  const auto assessments = validator.assess_all(
      fleet.store(), 0, 0, MetricKind::kRequestsPerSecond, resources);
  ASSERT_EQ(assessments.size(), 4u);
  EXPECT_TRUE(validator.workload_metric_valid(assessments));
  const auto limiting = validator.limiting_resource(assessments);
  ASSERT_TRUE(limiting.has_value());
  EXPECT_EQ(limiting->resource, MetricKind::kCpuPercentAttributed);
}

TEST_F(PipelineTest, StepOneGroupingFindsHardwareSplitInPoolI) {
  sim::FleetConfig config = sim::single_pool_fleet(catalog_, "I", 40);
  sim::HardwareGeneration gen2;
  gen2.name = "gen2";
  gen2.cpu_scale = 1.8;
  config.datacenters[0].pools[0].hardware = {
      sim::HardwareShare{sim::HardwareGeneration{}, 0.5},
      sim::HardwareShare{gen2, 0.5}};
  sim::FleetSimulator fleet(std::move(config), catalog_);
  fleet.run_until(kDay);
  fleet.finish_day();

  const auto snapshots =
      core::ServerGrouper::pool_snapshots(fleet.server_day_cpu(), 0, 0, 0);
  ASSERT_EQ(snapshots.size(), 40u);
  const core::ServerGrouper grouper;
  const core::PoolGrouping grouping = grouper.group_servers(snapshots);
  EXPECT_TRUE(grouping.multimodal());
  EXPECT_EQ(grouping.group_count, 2u);
}

TEST_F(PipelineTest, StepTwoRsmAgainstSimulatedPool) {
  sim::FleetSimulator fleet(sim::single_pool_fleet(catalog_, "B", 40), catalog_);
  core::SimPoolBackend backend(&fleet, 0, 0);

  core::RsmOptions opt;
  opt.latency_slo_ms = catalog_.by_name("B").latency_slo_ms;  // 32.8 ms
  opt.slo_margin_ms = 0.5;
  opt.baseline_duration = kDay;
  opt.iteration_duration = kDay;
  opt.max_iterations = 5;
  const core::RsmPlanner planner(opt);
  const core::RsmResult result = planner.optimize(backend);

  EXPECT_LT(result.recommended_serving, 40u);
  EXPECT_GE(result.iterations.size(), 2u);
  // Observed latency at the recommendation stays within the SLO.
  EXPECT_LE(result.iterations.back().observed_latency_p95_ms,
            opt.latency_slo_ms + 0.5);
  // And the savings are in the paper's 20-40% band.
  EXPECT_GE(result.reduction_fraction(), 0.10);
  EXPECT_LE(result.reduction_fraction(), 0.45);
}

TEST_F(PipelineTest, StepsThreeAndFourGateACleanAndADefectiveBuild) {
  // Step 3: fit a synthetic workload from "production" requests and check
  // equivalence; Step 4: gate a defective build with it.
  workload::RequestType lookup;
  lookup.weight = 0.8;
  lookup.cost_mean = 1.0;
  lookup.cost_sigma = 0.2;
  workload::RequestType render;
  render.weight = 0.2;
  render.cost_mean = 3.0;
  render.cost_sigma = 0.4;
  const workload::SyntheticWorkload production{
      workload::RequestMix({lookup, render})};
  const auto observed = production.generate(400.0, 120.0, 99);
  const auto fitted = workload::SyntheticWorkload::fit(observed, 2);
  const auto replay = fitted.generate(400.0, 120.0, 101);
  const auto comparison =
      workload::SyntheticWorkload::compare(replay, observed, 2);
  ASSERT_TRUE(comparison.equivalent);

  sim::RequestSimConfig pool;
  pool.servers = 4;
  pool.cores = 8.0;
  pool.base_service_ms = 4.0;
  pool.warmup_requests = 50;
  pool.window_seconds = 10;

  sim::RequestSimConfig broken = pool;
  broken.defect.overload_concurrency = 8;
  broken.defect.overload_extra_ms = 25.0;

  core::GateOptions gate_opt;
  gate_opt.nominal_rps_per_server = 600.0;
  gate_opt.step_duration_s = 20.0;
  const core::RegressionGate gate(gate_opt);

  const core::GateResult clean = gate.evaluate(pool, pool, fitted);
  EXPECT_TRUE(clean.pass);
  const core::GateResult dirty = gate.evaluate(pool, broken, fitted);
  EXPECT_FALSE(dirty.pass);
}

TEST_F(PipelineTest, ForecastThenVerifyReductionOnSim) {
  // The §III-A experiment shape: fit on the original pool, forecast the
  // reduction, apply it in the "production" sim, verify the observation.
  sim::FleetSimulator fleet(sim::single_pool_fleet(catalog_, "B", 40), catalog_);
  fleet.run_until(5 * kDay);  // five weekdays of history (paper's baseline)

  const auto& store = fleet.store();
  const auto cpu_scatter = store.pool_scatter(
      0, 0, MetricKind::kRequestsPerSecond, MetricKind::kCpuPercentAttributed);
  const auto lat_scatter = store.pool_scatter(
      0, 0, MetricKind::kRequestsPerSecond, MetricKind::kLatencyP95Ms);
  const auto model = core::PoolResponseModel::fit(cpu_scatter, lat_scatter);

  const auto rps = store.pool_series(0, 0, MetricKind::kRequestsPerSecond)
                       .values_between(0, 5 * kDay);
  const double p95 = stats::percentile(rps, 95.0);
  const core::ReductionForecast forecast =
      model.forecast_reduction(p95, 40, 28);  // -30%

  fleet.set_serving_count(0, 0, 28);
  fleet.run_until(7 * kDay);
  const auto after_latency =
      store.pool_series(0, 0, MetricKind::kLatencyP95Ms)
          .values_between(5 * kDay, 7 * kDay);
  const auto after_rps = store.pool_series(0, 0, MetricKind::kRequestsPerSecond)
                             .values_between(5 * kDay, 7 * kDay);

  // Compare forecast vs measured at the P95 of observed post-reduction load
  // (the paper: forecast 31.5 ms, measured 30.9 — within ~0.6 ms).
  const double measured_p95_load = stats::percentile(after_rps, 95.0);
  const double predicted = model.predict_latency_ms(measured_p95_load);
  double measured = 0.0;
  int n = 0;
  for (std::size_t i = 0; i < after_rps.size(); ++i) {
    if (after_rps[i] >= measured_p95_load * 0.95) {
      measured += after_latency[i];
      ++n;
    }
  }
  ASSERT_GT(n, 0);
  measured /= n;
  EXPECT_NEAR(predicted, measured, 1.5);
  EXPECT_NEAR(forecast.rps_per_server_after / forecast.rps_per_server_before,
              40.0 / 28.0, 1e-9);
}

TEST_F(PipelineTest, HeadroomPlanKeepsSimWithinSloUnderFailover) {
  // Right-size pool B, then hit the sim with a traffic surge equal to the
  // planned DR headroom and verify the latency SLO still holds.
  sim::FleetConfig config = sim::single_pool_fleet(catalog_, "B", 40);
  workload::CapacityEvent surge;
  surge.kind = workload::EventKind::kTrafficMultiplier;
  surge.start = 6 * kDay;
  surge.end = 6 * kDay + 4 * 3600;
  surge.multiplier = 1.125;  // the DR headroom the policy plans for
  config.events.add(surge);
  sim::FleetSimulator fleet(std::move(config), catalog_);
  fleet.run_until(3 * kDay);

  const auto& store = fleet.store();
  const auto model = core::PoolResponseModel::fit(
      store.pool_scatter(0, 0, MetricKind::kRequestsPerSecond,
                         MetricKind::kCpuPercentAttributed),
      store.pool_scatter(0, 0, MetricKind::kRequestsPerSecond,
                         MetricKind::kLatencyP95Ms));
  const auto rps =
      store.pool_series(0, 0, MetricKind::kRequestsPerSecond).values();
  const double p95 = stats::percentile(rps, 95.0);

  core::HeadroomPolicy policy;
  policy.qos.latency.p95_ms = catalog_.by_name("B").latency_slo_ms;
  const core::HeadroomOptimizer optimizer(policy);
  const core::HeadroomPlan plan = optimizer.plan(model, p95, 40);
  ASSERT_LT(plan.recommended_servers, 40u);

  fleet.set_serving_count(0, 0, plan.recommended_servers);
  fleet.run_until(7 * kDay);
  const auto surge_latency =
      store.pool_series(0, 0, MetricKind::kLatencyP95Ms)
          .values_between(surge.start, surge.end);
  ASSERT_FALSE(surge_latency.empty());
  for (double l : surge_latency) {
    EXPECT_LE(l, policy.qos.latency.p95_ms + 1.0);
  }
}

}  // namespace
}  // namespace headroom
