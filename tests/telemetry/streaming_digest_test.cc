#include "telemetry/streaming_digest.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <stdexcept>
#include <vector>

#include "stats/percentile.h"

namespace headroom::telemetry {
namespace {

TEST(StreamingDigest, EmptyDigestIsZero) {
  const StreamingDigest d;
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.count(), 0u);
  EXPECT_DOUBLE_EQ(d.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(d.mean(), 0.0);
  EXPECT_EQ(d.bucket_count(), 0u);
}

TEST(StreamingDigest, RejectsBadAccuracy) {
  EXPECT_THROW(StreamingDigest(0.0), std::invalid_argument);
  EXPECT_THROW(StreamingDigest(1.0), std::invalid_argument);
  EXPECT_THROW(StreamingDigest(-0.5), std::invalid_argument);
}

TEST(StreamingDigest, MomentsAreExact) {
  StreamingDigest d;
  d.add(2.0);
  d.add(-3.0);
  d.add(7.0);
  d.add(0.0);
  EXPECT_EQ(d.count(), 4u);
  EXPECT_DOUBLE_EQ(d.sum(), 6.0);
  EXPECT_DOUBLE_EQ(d.mean(), 1.5);
  EXPECT_DOUBLE_EQ(d.min(), -3.0);
  EXPECT_DOUBLE_EQ(d.max(), 7.0);
}

TEST(StreamingDigest, QuantilesWithinRelativeAccuracy) {
  std::mt19937_64 rng(7);
  std::lognormal_distribution<double> dist(3.0, 0.8);
  StreamingDigest d(0.01);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    const double x = dist(rng);
    samples.push_back(x);
    d.add(x);
  }
  for (const double p : {5.0, 25.0, 50.0, 75.0, 95.0, 99.0}) {
    const double exact = stats::percentile(samples, p);
    const double approx = d.percentile(p);
    // The bucket guarantee is 1% relative error on the order statistic; the
    // interpolating exact definition can land between two statistics, so
    // allow a hair over the bound.
    EXPECT_NEAR(approx, exact, 0.02 * exact + 1e-9)
        << "p" << p << " exact " << exact << " approx " << approx;
  }
}

TEST(StreamingDigest, ExtremesAreExact) {
  StreamingDigest d;
  for (double x : {3.5, 1.25, 9.75, 0.5}) d.add(x);
  EXPECT_DOUBLE_EQ(d.quantile(0.0), 0.5);
  EXPECT_DOUBLE_EQ(d.quantile(1.0), 9.75);
}

TEST(StreamingDigest, HandlesNegativeAndZeroValues) {
  StreamingDigest d;
  for (int i = -50; i <= 50; ++i) d.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(d.min(), -50.0);
  EXPECT_DOUBLE_EQ(d.max(), 50.0);
  EXPECT_NEAR(d.quantile(0.5), 0.0, 1.0);
  EXPECT_NEAR(d.quantile(0.25), -25.0, 1.0);
  EXPECT_NEAR(d.quantile(0.75), 25.0, 1.0);
}

TEST(StreamingDigest, RejectsNonFiniteSamples) {
  StreamingDigest d;
  EXPECT_THROW(d.add(std::nan("")), std::invalid_argument);
  EXPECT_THROW(d.add(std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_THROW(d.add(-std::numeric_limits<double>::infinity()),
               std::invalid_argument);
}

TEST(StreamingDigest, MergeMatchesSingleStream) {
  // Bucketing is value-determined, so splitting a stream across digests and
  // merging reproduces the single-stream sketch exactly.
  std::mt19937_64 rng(11);
  std::gamma_distribution<double> dist(2.0, 30.0);
  StreamingDigest whole;
  StreamingDigest a;
  StreamingDigest b;
  for (int i = 0; i < 5000; ++i) {
    const double x = dist(rng);
    whole.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a, whole);
  EXPECT_DOUBLE_EQ(a.quantile(0.5), whole.quantile(0.5));
  EXPECT_DOUBLE_EQ(a.quantile(0.95), whole.quantile(0.95));
}

TEST(StreamingDigest, MergeIsAssociativeAcrossShardOrders) {
  // The parallel fleet merges per-shard digests in shard order; the sketch
  // must not care. Build one digest per "shard" and fold in every order of
  // three shards: all six results must be identical sketches.
  std::mt19937_64 rng(23);
  std::lognormal_distribution<double> dist(2.0, 1.1);
  std::vector<StreamingDigest> shards(3, StreamingDigest(0.01));
  for (int i = 0; i < 3000; ++i) shards[i % 3].add(dist(rng));

  std::vector<int> order = {0, 1, 2};
  std::vector<StreamingDigest> folded;
  do {
    StreamingDigest acc(0.01);
    for (int s : order) acc.merge(shards[s]);
    folded.push_back(acc);
  } while (std::next_permutation(order.begin(), order.end()));

  for (std::size_t i = 1; i < folded.size(); ++i) {
    EXPECT_EQ(folded[i], folded[0]);
    EXPECT_DOUBLE_EQ(folded[i].quantile(0.5), folded[0].quantile(0.5));
    EXPECT_DOUBLE_EQ(folded[i].quantile(0.99), folded[0].quantile(0.99));
    EXPECT_DOUBLE_EQ(folded[i].min(), folded[0].min());
    EXPECT_DOUBLE_EQ(folded[i].max(), folded[0].max());
    // sum is a float fold, so merge order can move it by rounding only.
    EXPECT_NEAR(folded[i].sum(), folded[0].sum(),
                1e-9 * std::fabs(folded[0].sum()));
  }
  // ((a+b)+c) == (a+(b+c)) explicitly, not just all-left folds.
  StreamingDigest left = shards[0];
  left.merge(shards[1]);
  left.merge(shards[2]);
  StreamingDigest right_tail = shards[1];
  right_tail.merge(shards[2]);
  StreamingDigest right = shards[0];
  right.merge(right_tail);
  EXPECT_EQ(left, right);
}

TEST(StreamingDigest, MergeRejectsAccuracyMismatch) {
  StreamingDigest a(0.01);
  const StreamingDigest b(0.05);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(StreamingDigest, ResetClears) {
  StreamingDigest d;
  d.add(5.0);
  d.reset();
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.bucket_count(), 0u);
  d.add(2.0);  // usable after reset
  EXPECT_DOUBLE_EQ(d.max(), 2.0);
}

}  // namespace
}  // namespace headroom::telemetry
