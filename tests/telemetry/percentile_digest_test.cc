#include "telemetry/percentile_digest.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "stats/percentile.h"

namespace headroom::telemetry {
namespace {

TEST(PercentileDigest, EmptySnapshotIsZero) {
  PercentileDigest digest;
  const PercentileSnapshot s = digest.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.p95, 0.0);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(PercentileDigest, TracksAllFiveGroupingPercentiles) {
  PercentileDigest digest;
  std::vector<double> xs;
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> u(0.0, 100.0);
  for (int i = 0; i < 20000; ++i) {
    const double x = u(rng);
    digest.add(x);
    xs.push_back(x);
  }
  const PercentileSnapshot s = digest.snapshot();
  EXPECT_NEAR(s.p5, stats::percentile(xs, 5.0), 1.0);
  EXPECT_NEAR(s.p25, stats::percentile(xs, 25.0), 1.5);
  EXPECT_NEAR(s.p50, stats::percentile(xs, 50.0), 1.5);
  EXPECT_NEAR(s.p75, stats::percentile(xs, 75.0), 1.5);
  EXPECT_NEAR(s.p95, stats::percentile(xs, 95.0), 1.0);
  EXPECT_NEAR(s.mean, 50.0, 1.0);
  EXPECT_EQ(s.count, 20000u);
}

TEST(PercentileDigest, MinMaxAreExact) {
  PercentileDigest digest;
  for (double x : {5.0, 1.0, 9.0, 3.0}) digest.add(x);
  const PercentileSnapshot s = digest.snapshot();
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(PercentileDigest, SnapshotOrderIsAscending) {
  PercentileDigest digest;
  std::mt19937_64 rng(7);
  std::lognormal_distribution<double> dist(1.0, 0.8);
  for (int i = 0; i < 5000; ++i) digest.add(dist(rng));
  const PercentileSnapshot s = digest.snapshot();
  EXPECT_LE(s.p5, s.p25);
  EXPECT_LE(s.p25, s.p50);
  EXPECT_LE(s.p50, s.p75);
  EXPECT_LE(s.p75, s.p95);
  EXPECT_LE(s.min, s.p5);
  EXPECT_LE(s.p95, s.max);
}

TEST(PercentileDigest, GroupingValuesMatchSnapshotFields) {
  PercentileDigest digest;
  for (int i = 0; i < 100; ++i) digest.add(static_cast<double>(i));
  const PercentileSnapshot s = digest.snapshot();
  const auto values = s.grouping_values();
  EXPECT_DOUBLE_EQ(values[0], s.p5);
  EXPECT_DOUBLE_EQ(values[4], s.p95);
}

TEST(PercentileDigest, ResetClearsState) {
  PercentileDigest digest;
  for (int i = 0; i < 50; ++i) digest.add(100.0);
  digest.reset();
  EXPECT_EQ(digest.count(), 0u);
  digest.add(1.0);
  EXPECT_DOUBLE_EQ(digest.snapshot().p95, 1.0);
}

}  // namespace
}  // namespace headroom::telemetry
