#include "telemetry/percentile_digest.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "stats/percentile.h"

namespace headroom::telemetry {
namespace {

TEST(PercentileDigest, EmptySnapshotIsZero) {
  PercentileDigest digest;
  const PercentileSnapshot s = digest.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.p95, 0.0);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(PercentileDigest, TracksAllFiveGroupingPercentiles) {
  PercentileDigest digest;
  std::vector<double> xs;
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> u(0.0, 100.0);
  for (int i = 0; i < 20000; ++i) {
    const double x = u(rng);
    digest.add(x);
    xs.push_back(x);
  }
  const PercentileSnapshot s = digest.snapshot();
  EXPECT_NEAR(s.p5, stats::percentile(xs, 5.0), 1.0);
  EXPECT_NEAR(s.p25, stats::percentile(xs, 25.0), 1.5);
  EXPECT_NEAR(s.p50, stats::percentile(xs, 50.0), 1.5);
  EXPECT_NEAR(s.p75, stats::percentile(xs, 75.0), 1.5);
  EXPECT_NEAR(s.p95, stats::percentile(xs, 95.0), 1.0);
  EXPECT_NEAR(s.mean, 50.0, 1.0);
  EXPECT_EQ(s.count, 20000u);
}

TEST(PercentileDigest, MinMaxAreExact) {
  PercentileDigest digest;
  for (double x : {5.0, 1.0, 9.0, 3.0}) digest.add(x);
  const PercentileSnapshot s = digest.snapshot();
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(PercentileDigest, SnapshotOrderIsAscending) {
  PercentileDigest digest;
  std::mt19937_64 rng(7);
  std::lognormal_distribution<double> dist(1.0, 0.8);
  for (int i = 0; i < 5000; ++i) digest.add(dist(rng));
  const PercentileSnapshot s = digest.snapshot();
  EXPECT_LE(s.p5, s.p25);
  EXPECT_LE(s.p25, s.p50);
  EXPECT_LE(s.p50, s.p75);
  EXPECT_LE(s.p75, s.p95);
  EXPECT_LE(s.min, s.p5);
  EXPECT_LE(s.p95, s.max);
}

TEST(PercentileDigest, GroupingValuesMatchSnapshotFields) {
  PercentileDigest digest;
  for (int i = 0; i < 100; ++i) digest.add(static_cast<double>(i));
  const PercentileSnapshot s = digest.snapshot();
  const auto values = s.grouping_values();
  EXPECT_DOUBLE_EQ(values[0], s.p5);
  EXPECT_DOUBLE_EQ(values[4], s.p95);
}

TEST(PercentileDigest, SnapshotIsMonotoneAtSmallSampleCounts) {
  // Regression: the five P² estimators are independent, and on this stream
  // (found by search) the pre-fix snapshot had p5 ≈ 27.43 > p25 ≈ 27.04.
  const double stream[] = {
      63.733814239871286, 82.654975580241569, 94.569848660247899,
      75.321851049722625, 44.891607574777694, 4.6803017420987638,
      6.4594519318487658, 74.760259212611388, 14.931846620549621,
      42.525489172200899,
  };
  PercentileDigest digest;
  for (const double x : stream) digest.add(x);
  const PercentileSnapshot s = digest.snapshot();
  EXPECT_LE(s.p5, s.p25);
  EXPECT_LE(s.p25, s.p50);
  EXPECT_LE(s.p50, s.p75);
  EXPECT_LE(s.p75, s.p95);
}

TEST(PercentileDigest, SnapshotIsMonotoneOverRandomSmallStreams) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> value(0.0, 100.0);
  std::uniform_int_distribution<int> length(1, 20);
  for (int trial = 0; trial < 2000; ++trial) {
    PercentileDigest digest;
    const int n = length(rng);
    for (int i = 0; i < n; ++i) digest.add(value(rng));
    const PercentileSnapshot s = digest.snapshot();
    ASSERT_LE(s.p5, s.p25) << "trial " << trial;
    ASSERT_LE(s.p25, s.p50) << "trial " << trial;
    ASSERT_LE(s.p50, s.p75) << "trial " << trial;
    ASSERT_LE(s.p75, s.p95) << "trial " << trial;
  }
}

TEST(PercentileDigest, ResetClearsState) {
  PercentileDigest digest;
  for (int i = 0; i < 50; ++i) digest.add(100.0);
  digest.reset();
  EXPECT_EQ(digest.count(), 0u);
  digest.add(1.0);
  EXPECT_DOUBLE_EQ(digest.snapshot().p95, 1.0);
}

}  // namespace
}  // namespace headroom::telemetry
