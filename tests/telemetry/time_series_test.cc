#include "telemetry/time_series.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace headroom::telemetry {
namespace {

TEST(TimeSeries, AppendsInOrder) {
  TimeSeries s;
  s.append(0, 1.0);
  s.append(120, 2.0);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.at(1).window_start, 120);
  EXPECT_DOUBLE_EQ(s.at(1).value, 2.0);
}

TEST(TimeSeries, RejectsOutOfOrderAppend) {
  TimeSeries s;
  s.append(120, 1.0);
  EXPECT_THROW(s.append(120, 2.0), std::invalid_argument);  // duplicate
  EXPECT_THROW(s.append(0, 2.0), std::invalid_argument);    // backwards
}

TEST(TimeSeries, ValuesPreservesOrder) {
  TimeSeries s;
  s.append(0, 3.0);
  s.append(60, 1.0);
  s.append(120, 2.0);
  const std::vector<double> vals = s.values();
  ASSERT_EQ(vals.size(), 3u);
  EXPECT_DOUBLE_EQ(vals[0], 3.0);
  EXPECT_DOUBLE_EQ(vals[2], 2.0);
}

TEST(TimeSeries, ValuesBetweenIsHalfOpen) {
  TimeSeries s;
  for (SimTime t = 0; t < 600; t += 120) {
    s.append(t, static_cast<double>(t));
  }
  const std::vector<double> vals = s.values_between(120, 360);
  ASSERT_EQ(vals.size(), 2u);  // 120, 240; 360 excluded
  EXPECT_DOUBLE_EQ(vals[0], 120.0);
  EXPECT_DOUBLE_EQ(vals[1], 240.0);
}

TEST(TimeSeries, SlicePreservesTimestamps) {
  TimeSeries s;
  s.append(0, 1.0);
  s.append(120, 2.0);
  s.append(240, 3.0);
  const TimeSeries sliced = s.slice(120, 240);
  ASSERT_EQ(sliced.size(), 1u);
  EXPECT_EQ(sliced.at(0).window_start, 120);
}

TEST(Align, InnerJoinOnTimestamps) {
  TimeSeries x;
  TimeSeries y;
  x.append(0, 1.0);
  x.append(120, 2.0);
  x.append(240, 3.0);
  y.append(120, 20.0);
  y.append(240, 30.0);
  y.append(360, 40.0);
  const AlignedPair pair = align(x, y);
  ASSERT_EQ(pair.x.size(), 2u);
  EXPECT_DOUBLE_EQ(pair.x[0], 2.0);
  EXPECT_DOUBLE_EQ(pair.y[0], 20.0);
  EXPECT_DOUBLE_EQ(pair.x[1], 3.0);
  EXPECT_DOUBLE_EQ(pair.y[1], 30.0);
}

TEST(Align, DisjointSeriesYieldEmpty) {
  TimeSeries x;
  TimeSeries y;
  x.append(0, 1.0);
  y.append(120, 2.0);
  const AlignedPair pair = align(x, y);
  EXPECT_TRUE(pair.x.empty());
  EXPECT_TRUE(pair.y.empty());
}

TEST(Align, EmptySeriesYieldEmpty) {
  TimeSeries x;
  TimeSeries y;
  y.append(0, 1.0);
  const AlignedPair pair = align(x, y);
  EXPECT_TRUE(pair.x.empty());
}

TEST(Align, IdenticalTimestampsFullJoin) {
  TimeSeries x;
  TimeSeries y;
  for (SimTime t = 0; t < 1200; t += 120) {
    x.append(t, static_cast<double>(t));
    y.append(t, static_cast<double>(t) * 2.0);
  }
  const AlignedPair pair = align(x, y);
  EXPECT_EQ(pair.x.size(), 10u);
  for (std::size_t i = 0; i < pair.x.size(); ++i) {
    EXPECT_DOUBLE_EQ(pair.y[i], pair.x[i] * 2.0);
  }
}

}  // namespace
}  // namespace headroom::telemetry
