#include "telemetry/time_series.h"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <vector>

namespace headroom::telemetry {
namespace {

TEST(TimeSeries, AppendsInOrder) {
  TimeSeries s;
  s.append(0, 1.0);
  s.append(120, 2.0);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.at(1).window_start, 120);
  EXPECT_DOUBLE_EQ(s.at(1).value, 2.0);
}

TEST(TimeSeries, RejectsOutOfOrderAppend) {
  TimeSeries s;
  s.append(120, 1.0);
  EXPECT_THROW(s.append(120, 2.0), std::invalid_argument);  // duplicate
  EXPECT_THROW(s.append(0, 2.0), std::invalid_argument);    // backwards
}

TEST(TimeSeries, RejectsOutOfOrderAfterStrideFallback) {
  TimeSeries s;
  s.append(0, 1.0);
  s.append(120, 2.0);
  s.append(300, 3.0);  // breaks the stride -> explicit times
  ASSERT_FALSE(s.regular());
  EXPECT_THROW(s.append(300, 4.0), std::invalid_argument);
  EXPECT_THROW(s.append(200, 4.0), std::invalid_argument);
}

TEST(TimeSeries, AtThrowsOutOfRange) {
  TimeSeries s;
  s.append(0, 1.0);
  EXPECT_THROW((void)s.at(1), std::out_of_range);
}

TEST(TimeSeries, DetectsRegularStride) {
  TimeSeries s;
  for (SimTime t = 60; t < 60 + 5 * 120; t += 120) {
    s.append(t, static_cast<double>(t));
  }
  EXPECT_TRUE(s.regular());
  EXPECT_EQ(s.start(), 60);
  EXPECT_EQ(s.stride(), 120);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(s.time_at(i), 60 + static_cast<SimTime>(i) * 120);
  }
}

TEST(TimeSeries, FallsBackToExplicitTimesOnCadenceBreak) {
  TimeSeries s;
  s.append(0, 1.0);
  s.append(120, 2.0);
  s.append(240, 3.0);
  ASSERT_TRUE(s.regular());
  s.append(500, 4.0);  // off-cadence
  EXPECT_FALSE(s.regular());
  EXPECT_EQ(s.stride(), 0);
  // Every timestamp, including the pre-fallback ones, survives.
  EXPECT_EQ(s.time_at(0), 0);
  EXPECT_EQ(s.time_at(1), 120);
  EXPECT_EQ(s.time_at(2), 240);
  EXPECT_EQ(s.time_at(3), 500);
  // And later appends keep working in explicit mode.
  s.append(501, 5.0);
  EXPECT_EQ(s.time_at(4), 501);
}

TEST(TimeSeries, SingleAndEmptySeriesAreTriviallyRegular) {
  TimeSeries s;
  EXPECT_TRUE(s.regular());
  EXPECT_EQ(s.stride(), 0);
  s.append(42, 1.0);
  EXPECT_TRUE(s.regular());
  EXPECT_EQ(s.start(), 42);
  EXPECT_EQ(s.stride(), 0);  // not yet established
}

TEST(TimeSeries, ValuesPreservesOrder) {
  TimeSeries s;
  s.append(0, 3.0);
  s.append(60, 1.0);
  s.append(120, 2.0);
  const std::span<const double> vals = s.values();
  ASSERT_EQ(vals.size(), 3u);
  EXPECT_DOUBLE_EQ(vals[0], 3.0);
  EXPECT_DOUBLE_EQ(vals[2], 2.0);
}

TEST(TimeSeries, ValuesBetweenIsHalfOpen) {
  TimeSeries s;
  for (SimTime t = 0; t < 600; t += 120) {
    s.append(t, static_cast<double>(t));
  }
  const std::span<const double> vals = s.values_between(120, 360);
  ASSERT_EQ(vals.size(), 2u);  // 120, 240; 360 excluded
  EXPECT_DOUBLE_EQ(vals[0], 120.0);
  EXPECT_DOUBLE_EQ(vals[1], 240.0);
}

TEST(TimeSeries, ValuesBetweenOnIrregularSeries) {
  TimeSeries s;
  s.append(0, 1.0);
  s.append(100, 2.0);
  s.append(150, 3.0);
  s.append(400, 4.0);
  ASSERT_FALSE(s.regular());
  const std::span<const double> vals = s.values_between(100, 400);
  ASSERT_EQ(vals.size(), 2u);
  EXPECT_DOUBLE_EQ(vals[0], 2.0);
  EXPECT_DOUBLE_EQ(vals[1], 3.0);
  EXPECT_TRUE(s.values_between(401, 500).empty());
  EXPECT_TRUE(s.values_between(400, 400).empty());
}

TEST(TimeSeries, ValuesBetweenBoundariesOffTheStrideGrid) {
  TimeSeries s;
  for (SimTime t = 0; t < 600; t += 120) {
    s.append(t, static_cast<double>(t));
  }
  // [119, 361) must behave exactly like the sample-by-sample filter.
  const std::span<const double> vals = s.values_between(119, 361);
  ASSERT_EQ(vals.size(), 3u);  // 120, 240, 360
  EXPECT_DOUBLE_EQ(vals[0], 120.0);
  EXPECT_DOUBLE_EQ(vals[2], 360.0);
  EXPECT_TRUE(s.values_between(-500, 0).empty());
  EXPECT_EQ(s.values_between(-500, 1).size(), 1u);
}

TEST(TimeSeries, ValuesBetweenSentinelBoundsSelectTheTail) {
  TimeSeries s;
  for (SimTime t = 0; t < 600; t += 120) {
    s.append(t, static_cast<double>(t));
  }
  // INT64 extremes are legal half-open bounds (the "rest of the series"
  // idiom) and must not overflow the stride arithmetic.
  constexpr SimTime kMax = std::numeric_limits<SimTime>::max();
  constexpr SimTime kMin = std::numeric_limits<SimTime>::min();
  EXPECT_EQ(s.values_between(240, kMax).size(), 3u);  // 240, 360, 480
  EXPECT_EQ(s.values_between(kMin, kMax).size(), 5u);
  EXPECT_TRUE(s.values_between(kMin, 0).empty());
  EXPECT_EQ(s.slice(360, kMax).size(), 2u);
}

TEST(TimeSeries, SlicePreservesTimestamps) {
  TimeSeries s;
  s.append(0, 1.0);
  s.append(120, 2.0);
  s.append(240, 3.0);
  const SeriesView sliced = s.slice(120, 240);
  ASSERT_EQ(sliced.size(), 1u);
  EXPECT_EQ(sliced.at(0).window_start, 120);
  EXPECT_DOUBLE_EQ(sliced.at(0).value, 2.0);
  EXPECT_THROW((void)sliced.at(1), std::out_of_range);
}

TEST(SeriesView, DefaultConstructedViewIsSafelyEmpty) {
  const SeriesView view;
  EXPECT_TRUE(view.empty());
  EXPECT_EQ(view.size(), 0u);
  EXPECT_EQ(view.time_at(0), 0);
  EXPECT_DOUBLE_EQ(view.value_at(0), 0.0);
  EXPECT_TRUE(view.values().empty());
  EXPECT_TRUE(view.regular());
  EXPECT_EQ(view.stride(), 0);
  EXPECT_THROW((void)view.at(0), std::out_of_range);
}

TEST(SeriesView, StaysValidAcrossParentAppends) {
  TimeSeries s;
  for (SimTime t = 0; t < 480; t += 120) {
    s.append(t, static_cast<double>(t));
  }
  const SeriesView view = s.slice(120, 360);
  ASSERT_EQ(view.size(), 2u);
  // Appends only extend the series past the view: the (offset, length)
  // window still denotes the same samples afterwards.
  s.append(480, 480.0);
  s.append(600, 600.0);
  ASSERT_EQ(view.size(), 2u);
  EXPECT_EQ(view.time_at(0), 120);
  EXPECT_DOUBLE_EQ(view.value_at(0), 120.0);
  EXPECT_EQ(view.time_at(1), 240);
}

TEST(TimeSeries, ReservedAppendsKeepValueSpanStable) {
  TimeSeries s;
  s.reserve(16);
  s.append(0, 1.0);
  const std::span<const double> before = s.values();
  for (SimTime t = 120; t < 16 * 120; t += 120) {
    s.append(t, static_cast<double>(t));
  }
  // No reallocation happened within the reserved capacity, so the earlier
  // span still points at live storage.
  EXPECT_EQ(before.data(), s.values().data());
  EXPECT_GE(s.capacity(), 16u);
}

TEST(Align, InnerJoinOnTimestamps) {
  TimeSeries x;
  TimeSeries y;
  x.append(0, 1.0);
  x.append(120, 2.0);
  x.append(240, 3.0);
  y.append(120, 20.0);
  y.append(240, 30.0);
  y.append(360, 40.0);
  const AlignedPair pair = align(x, y);
  ASSERT_EQ(pair.x.size(), 2u);
  EXPECT_DOUBLE_EQ(pair.x[0], 2.0);
  EXPECT_DOUBLE_EQ(pair.y[0], 20.0);
  EXPECT_DOUBLE_EQ(pair.x[1], 3.0);
  EXPECT_DOUBLE_EQ(pair.y[1], 30.0);
}

TEST(Align, DisjointSeriesYieldEmpty) {
  TimeSeries x;
  TimeSeries y;
  x.append(0, 1.0);
  y.append(120, 2.0);
  const AlignedPair pair = align(x, y);
  EXPECT_TRUE(pair.x.empty());
  EXPECT_TRUE(pair.y.empty());
}

TEST(Align, EmptySeriesYieldEmpty) {
  TimeSeries x;
  TimeSeries y;
  y.append(0, 1.0);
  const AlignedPair pair = align(x, y);
  EXPECT_TRUE(pair.x.empty());
}

TEST(Align, IdenticalTimestampsFullJoin) {
  TimeSeries x;
  TimeSeries y;
  for (SimTime t = 0; t < 1200; t += 120) {
    x.append(t, static_cast<double>(t));
    y.append(t, static_cast<double>(t) * 2.0);
  }
  const AlignedPair pair = align(x, y);
  EXPECT_EQ(pair.x.size(), 10u);
  for (std::size_t i = 0; i < pair.x.size(); ++i) {
    EXPECT_DOUBLE_EQ(pair.y[i], pair.x[i] * 2.0);
  }
}

TEST(Align, StrideFastPathMatchesWalkOnOffsetSeries) {
  // Same cadence, different spans: x covers [0, 1200), y covers [360, 1560).
  TimeSeries x;
  TimeSeries y;
  for (SimTime t = 0; t < 1200; t += 120) x.append(t, static_cast<double>(t) + 0.5);
  for (SimTime t = 360; t < 1560; t += 120) y.append(t, static_cast<double>(t) * 3.0);
  ASSERT_TRUE(x.regular());
  ASSERT_TRUE(y.regular());
  const AlignedPair pair = align(x, y);
  ASSERT_EQ(pair.x.size(), 7u);  // 360..1080
  for (std::size_t i = 0; i < pair.x.size(); ++i) {
    const auto t = static_cast<double>(360 + 120 * static_cast<SimTime>(i));
    EXPECT_DOUBLE_EQ(pair.x[i], t + 0.5);
    EXPECT_DOUBLE_EQ(pair.y[i], t * 3.0);
  }
}

TEST(Align, IncongruentStridesNeverMatch) {
  TimeSeries x;
  TimeSeries y;
  for (SimTime t = 0; t < 600; t += 120) x.append(t, 1.0);
  for (SimTime t = 60; t < 660; t += 120) y.append(t, 2.0);  // offset by 60
  const AlignedPair pair = align(x, y);
  EXPECT_TRUE(pair.x.empty());
}

TEST(Align, MixedRegularAndIrregularFallsBackToWalk) {
  TimeSeries x;
  for (SimTime t = 0; t < 600; t += 120) x.append(t, static_cast<double>(t));
  TimeSeries y;
  y.append(0, 10.0);
  y.append(120, 20.0);
  y.append(300, 30.0);  // irregular
  ASSERT_FALSE(y.regular());
  const AlignedPair pair = align(x, y);
  ASSERT_EQ(pair.x.size(), 2u);  // 0 and 120 match; 300 is off x's grid...
  EXPECT_DOUBLE_EQ(pair.y[1], 20.0);
}

TEST(Align, SlicedViewsJoinLikeMaterializedSlices) {
  TimeSeries x;
  TimeSeries y;
  for (SimTime t = 0; t < 2400; t += 120) {
    x.append(t, static_cast<double>(t) + 1.0);
    y.append(t, static_cast<double>(t) + 2.0);
  }
  const AlignedPair pair = align(x.slice(240, 1200), y.slice(480, 2400));
  ASSERT_EQ(pair.x.size(), 6u);  // 480..1080
  EXPECT_DOUBLE_EQ(pair.x[0], 481.0);
  EXPECT_DOUBLE_EQ(pair.y[0], 482.0);
  EXPECT_DOUBLE_EQ(pair.x[5], 1081.0);
}

TEST(TimeSeries, DropFrontKeepsStrideEncoding) {
  TimeSeries s;
  for (SimTime t = 0; t < 10 * 120; t += 120) {
    s.append(t, static_cast<double>(t));
  }
  ASSERT_TRUE(s.regular());
  EXPECT_EQ(s.drop_front(3), 3u);
  EXPECT_TRUE(s.regular());  // eviction must not force explicit times
  EXPECT_EQ(s.size(), 7u);
  EXPECT_EQ(s.start(), 360);
  EXPECT_EQ(s.time_at(0), 360);
  EXPECT_DOUBLE_EQ(s.at(0).value, 360.0);
  // Appends after eviction continue the same stride.
  s.append(10 * 120, 1200.0);
  EXPECT_TRUE(s.regular());
  EXPECT_EQ(s.time_at(s.size() - 1), 1200);
}

TEST(TimeSeries, DropFrontOnIrregularSeries) {
  TimeSeries s;
  s.append(0, 1.0);
  s.append(120, 2.0);
  s.append(500, 3.0);  // cadence break
  ASSERT_FALSE(s.regular());
  EXPECT_EQ(s.drop_front(2), 2u);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.time_at(0), 500);
}

TEST(TimeSeries, DropFrontClampsAndEmpties) {
  TimeSeries s;
  s.append(0, 1.0);
  s.append(120, 2.0);
  EXPECT_EQ(s.drop_front(99), 2u);  // clamped to size()
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.drop_front(1), 0u);  // empty series drops nothing
  // An emptied series accepts a fresh history, including earlier times.
  s.append(0, 3.0);
  EXPECT_EQ(s.size(), 1u);
}

TEST(TimeSeries, FirstIndexAtOrAfterOnRegularSeries) {
  TimeSeries s;
  for (SimTime t = 120; t <= 5 * 120; t += 120) {
    s.append(t, 1.0);
  }
  EXPECT_EQ(s.first_index_at_or_after(0), 0u);
  EXPECT_EQ(s.first_index_at_or_after(120), 0u);
  EXPECT_EQ(s.first_index_at_or_after(121), 1u);
  EXPECT_EQ(s.first_index_at_or_after(240), 1u);
  EXPECT_EQ(s.first_index_at_or_after(600), 4u);
  EXPECT_EQ(s.first_index_at_or_after(601), 5u);  // past the end
}

TEST(TimeSeries, FirstIndexAtOrAfterOnIrregularSeries) {
  TimeSeries s;
  s.append(0, 1.0);
  s.append(120, 2.0);
  s.append(500, 3.0);
  ASSERT_FALSE(s.regular());
  EXPECT_EQ(s.first_index_at_or_after(120), 1u);
  EXPECT_EQ(s.first_index_at_or_after(121), 2u);
  EXPECT_EQ(s.first_index_at_or_after(501), 3u);
}

}  // namespace
}  // namespace headroom::telemetry
