#include "telemetry/csv.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <vector>

namespace headroom::telemetry {
namespace {

/// The awkward doubles: plenty of mantissa bits, negatives, subnormals,
/// huge magnitudes — everything the old default-precision (6 significant
/// digits) writers silently truncated.
const std::vector<double> kAwkwardDoubles = {
    0.0,
    -0.0,
    1.0 / 3.0,
    -2.0 / 3.0,
    0.1,
    -123456.789012345,
    1.7976931348623157e308,   // DBL_MAX
    -1.7976931348623157e308,
    2.2250738585072014e-308,  // DBL_MIN (smallest normal)
    4.9406564584124654e-324,  // smallest subnormal
    -4.9406564584124654e-324,
    3.141592653589793,
    std::nextafter(1.0, 2.0),
    std::nextafter(100.0, 0.0),
    -9.8765432109876543e-7,
};

TEST(Csv, SeriesExport) {
  TimeSeries s;
  s.append(0, 1.5);
  s.append(120, 2.5);
  std::ostringstream out;
  write_series_csv(out, s, "rps");
  EXPECT_EQ(out.str(), "window_start,rps\n0,1.5\n120,2.5\n");
}

TEST(Csv, EmptySeriesHeaderOnly) {
  TimeSeries s;
  std::ostringstream out;
  write_series_csv(out, s);
  EXPECT_EQ(out.str(), "window_start,value\n");
}

TEST(Csv, ScatterExport) {
  AlignedPair pair;
  pair.x = {10.0, 20.0};
  pair.y = {1.0, 2.0};
  std::ostringstream out;
  write_scatter_csv(out, pair, "rps", "cpu");
  EXPECT_EQ(out.str(), "rps,cpu\n10,1\n20,2\n");
}

TEST(Csv, ScatterMismatchedLengthsEmitCommonPrefix) {
  // Regression: y shorter than x used to be read out of bounds.
  AlignedPair pair;
  pair.x = {10.0, 20.0, 30.0};
  pair.y = {1.0};
  std::ostringstream out;
  write_scatter_csv(out, pair, "rps", "cpu");
  EXPECT_EQ(out.str(), "rps,cpu\n10,1\n");

  AlignedPair longer_y;
  longer_y.x = {10.0};
  longer_y.y = {1.0, 2.0, 3.0};
  std::ostringstream out2;
  write_scatter_csv(out2, longer_y, "rps", "cpu");
  EXPECT_EQ(out2.str(), "rps,cpu\n10,1\n");
}

TEST(Csv, PoolExportJoinsMetrics) {
  MetricStore store;
  const SeriesKey rps{0, 0, SeriesKey::kPoolScope,
                      MetricKind::kRequestsPerSecond};
  const SeriesKey cpu{0, 0, SeriesKey::kPoolScope,
                      MetricKind::kCpuPercentTotal};
  for (SimTime t : {0L, 120L, 240L}) {
    store.record(rps, t, static_cast<double>(t));
  }
  // CPU is missing the middle window: only aligned rows are emitted.
  store.record(cpu, 0, 5.0);
  store.record(cpu, 240, 7.0);

  std::ostringstream out;
  const MetricKind metrics[] = {MetricKind::kRequestsPerSecond,
                                MetricKind::kCpuPercentTotal};
  const std::size_t columns = write_pool_csv(out, store, 0, 0, metrics);
  EXPECT_EQ(columns, 2u);
  EXPECT_EQ(out.str(),
            "window_start,rps,cpu_pct_total\n0,0,5\n240,240,7\n");
}

TEST(Csv, PoolExportSkipsAbsentMetrics) {
  MetricStore store;
  store.record({0, 0, SeriesKey::kPoolScope, MetricKind::kRequestsPerSecond},
               0, 1.0);
  std::ostringstream out;
  const MetricKind metrics[] = {MetricKind::kRequestsPerSecond,
                                MetricKind::kLatencyP95Ms};
  EXPECT_EQ(write_pool_csv(out, store, 0, 0, metrics), 1u);
  EXPECT_EQ(out.str(), "window_start,rps\n0,1\n");
}

TEST(Csv, PoolExportEmptyStore) {
  MetricStore store;
  std::ostringstream out;
  const MetricKind metrics[] = {MetricKind::kRequestsPerSecond};
  EXPECT_EQ(write_pool_csv(out, store, 0, 0, metrics), 0u);
}

// --- Precision / round-trip regression (the exporter used to write at
// --- default ostream precision, losing bits) --------------------------------

TEST(CsvFormatDouble, RoundTripsAwkwardValuesExactly) {
  for (const double v : kAwkwardDoubles) {
    const std::string text = format_double(v);
    const double back = std::strtod(text.c_str(), nullptr);
    EXPECT_EQ(back, v) << "'" << text << "'";
    // Bit-exactness, not just ==: -0.0 must come back signed.
    EXPECT_EQ(std::signbit(back), std::signbit(v)) << "'" << text << "'";
  }
}

TEST(CsvFormatDouble, PrefersTheShortestForm) {
  EXPECT_EQ(format_double(10.0), "10");    // not "1e+01"
  EXPECT_EQ(format_double(240.0), "240");  // not "2.4e+02"
  // Length ties keep the lowest-precision form ("20000" is no shorter).
  EXPECT_EQ(format_double(20000.0), "2e+04");
  EXPECT_EQ(format_double(0.5), "0.5");
  EXPECT_EQ(format_double(1e300), "1e+300");
}

TEST(Csv, SeriesExportRoundTripsBitExactly) {
  TimeSeries s;
  SimTime t = 0;
  for (const double v : kAwkwardDoubles) s.append(t += 120, v);
  std::ostringstream out;
  write_series_csv(out, s, "cpu_pct_total");

  // Parse the rows back with strtod and compare bits.
  std::istringstream in(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));  // header
  for (const double expected : kAwkwardDoubles) {
    ASSERT_TRUE(std::getline(in, line));
    const std::size_t comma = line.find(',');
    ASSERT_NE(comma, std::string::npos);
    const double v = std::strtod(line.c_str() + comma + 1, nullptr);
    EXPECT_EQ(v, expected) << line;
    EXPECT_EQ(std::signbit(v), std::signbit(expected)) << line;
  }
}

TEST(Csv, ScatterExportRoundTripsBitExactly) {
  AlignedPair pair;
  for (const double v : kAwkwardDoubles) {
    pair.x.push_back(v);
    pair.y.push_back(-v);
  }
  std::ostringstream out;
  write_scatter_csv(out, pair, "x", "y");
  std::istringstream in(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  for (const double expected : kAwkwardDoubles) {
    ASSERT_TRUE(std::getline(in, line));
    const std::size_t comma = line.find(',');
    ASSERT_NE(comma, std::string::npos);
    char* end = nullptr;
    EXPECT_EQ(std::strtod(line.c_str(), &end), expected) << line;
    EXPECT_EQ(std::strtod(line.c_str() + comma + 1, nullptr), -expected)
        << line;
  }
}

// --- Inner-join edge cases --------------------------------------------------

TEST(Csv, PoolExportJoinHandlesGapsOnBothSides) {
  MetricStore store;
  const SeriesKey rps{0, 0, SeriesKey::kPoolScope,
                      MetricKind::kRequestsPerSecond};
  const SeriesKey cpu{0, 0, SeriesKey::kPoolScope,
                      MetricKind::kCpuPercentTotal};
  // rps misses 240; cpu misses 120 — only 0 and 360 align.
  for (SimTime t : {0L, 120L, 360L}) store.record(rps, t, 1.0 + t);
  for (SimTime t : {0L, 240L, 360L}) store.record(cpu, t, 2.0 + t);
  std::ostringstream out;
  const MetricKind metrics[] = {MetricKind::kRequestsPerSecond,
                                MetricKind::kCpuPercentTotal};
  EXPECT_EQ(write_pool_csv(out, store, 0, 0, metrics), 2u);
  EXPECT_EQ(out.str(),
            "window_start,rps,cpu_pct_total\n0,1,2\n360,361,362\n");
}

TEST(Csv, PoolExportJoinHandlesMismatchedCadences) {
  MetricStore store;
  const SeriesKey rps{0, 0, SeriesKey::kPoolScope,
                      MetricKind::kRequestsPerSecond};
  const SeriesKey cpu{0, 0, SeriesKey::kPoolScope,
                      MetricKind::kCpuPercentTotal};
  for (SimTime t = 0; t < 600; t += 120) store.record(rps, t, 1.0);
  for (SimTime t = 0; t < 600; t += 240) store.record(cpu, t, 2.0);
  std::ostringstream out;
  const MetricKind metrics[] = {MetricKind::kRequestsPerSecond,
                                MetricKind::kCpuPercentTotal};
  EXPECT_EQ(write_pool_csv(out, store, 0, 0, metrics), 2u);
  // Every other rps window matches a cpu window: 0, 240, 480.
  EXPECT_EQ(out.str(),
            "window_start,rps,cpu_pct_total\n0,1,2\n240,1,2\n480,1,2\n");
}

TEST(Csv, PoolExportJoinTerminatesWhenOneSeriesExhaustsMidJoin) {
  MetricStore store;
  const SeriesKey rps{0, 0, SeriesKey::kPoolScope,
                      MetricKind::kRequestsPerSecond};
  const SeriesKey cpu{0, 0, SeriesKey::kPoolScope,
                      MetricKind::kCpuPercentTotal};
  const SeriesKey lat{0, 0, SeriesKey::kPoolScope, MetricKind::kLatencyP95Ms};
  // cpu runs out two windows early, lat one window early; the join must
  // stop at the shortest series without reading past its end (asan-clean).
  for (SimTime t = 0; t < 600; t += 120) store.record(rps, t, 1.0);
  for (SimTime t = 0; t < 360; t += 120) store.record(cpu, t, 2.0);
  for (SimTime t = 0; t < 480; t += 120) store.record(lat, t, 3.0);
  std::ostringstream out;
  const MetricKind metrics[] = {MetricKind::kRequestsPerSecond,
                                MetricKind::kCpuPercentTotal,
                                MetricKind::kLatencyP95Ms};
  EXPECT_EQ(write_pool_csv(out, store, 0, 0, metrics), 3u);
  EXPECT_EQ(out.str(),
            "window_start,rps,cpu_pct_total,latency_p95_ms\n"
            "0,1,2,3\n120,1,2,3\n240,1,2,3\n");
}

TEST(Csv, PoolExportJoinExhaustionWhileAdvancingALaggard) {
  MetricStore store;
  const SeriesKey rps{0, 0, SeriesKey::kPoolScope,
                      MetricKind::kRequestsPerSecond};
  const SeriesKey cpu{0, 0, SeriesKey::kPoolScope,
                      MetricKind::kCpuPercentTotal};
  // After the shared window at 0, cpu's remaining windows all precede
  // rps's next one: the laggard advance must hit cpu's end and stop.
  store.record(rps, 0, 1.0);
  store.record(rps, 1000, 1.0);
  store.record(cpu, 0, 2.0);
  store.record(cpu, 120, 2.0);
  store.record(cpu, 240, 2.0);
  std::ostringstream out;
  const MetricKind metrics[] = {MetricKind::kRequestsPerSecond,
                                MetricKind::kCpuPercentTotal};
  EXPECT_EQ(write_pool_csv(out, store, 0, 0, metrics), 2u);
  EXPECT_EQ(out.str(), "window_start,rps,cpu_pct_total\n0,1,2\n");
}

// --- Reader -----------------------------------------------------------------

TEST(CsvRead, RoundTripsAWrittenPoolCsvBitExactly) {
  MetricStore original;
  const SeriesKey rps{2, 3, SeriesKey::kPoolScope,
                      MetricKind::kRequestsPerSecond};
  const SeriesKey cpu{2, 3, SeriesKey::kPoolScope,
                      MetricKind::kCpuPercentAttributed};
  SimTime t = 0;
  for (const double v : kAwkwardDoubles) {
    t += 120;
    original.record(rps, t, v);
    original.record(cpu, t, v * (1.0 / 3.0));
  }
  const MetricKind metrics[] = {MetricKind::kRequestsPerSecond,
                                MetricKind::kCpuPercentAttributed};
  std::ostringstream first;
  ASSERT_EQ(write_pool_csv(first, original, 2, 3, metrics), 2u);

  MetricStore ingested;
  std::istringstream in(first.str());
  const CsvReadResult read = read_pool_csv(in, "trace.csv", &ingested, 2, 3);
  ASSERT_TRUE(read.ok()) << read.error;
  EXPECT_EQ(read.rows, kAwkwardDoubles.size());
  ASSERT_EQ(read.columns.size(), 2u);
  EXPECT_EQ(read.columns[0], MetricKind::kRequestsPerSecond);
  EXPECT_EQ(read.columns[1], MetricKind::kCpuPercentAttributed);
  EXPECT_EQ(ingested.sample_count(), 2 * kAwkwardDoubles.size());

  // Byte-stable: exporting the re-ingested store reproduces the file.
  std::ostringstream second;
  ASSERT_EQ(write_pool_csv(second, ingested, 2, 3, metrics), 2u);
  EXPECT_EQ(second.str(), first.str());

  // And the value columns are bit-identical.
  const auto& s1 = original.pool_series(2, 3, MetricKind::kRequestsPerSecond);
  const auto& s2 = ingested.pool_series(2, 3, MetricKind::kRequestsPerSecond);
  ASSERT_EQ(s1.size(), s2.size());
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1.time_at(i), s2.time_at(i));
    EXPECT_EQ(s1.value_at(i), s2.value_at(i)) << i;
  }
}

TEST(CsvRead, BatchesThroughTheMergePathOnLongFiles) {
  // More rows than one ingest batch (512), so the reader's repeated
  // MetricBuffer refill exercises the store's memoized merge plans.
  std::string csv = "window_start,rps,active_servers\n";
  const std::size_t rows = 1500;
  for (std::size_t i = 0; i < rows; ++i) {
    csv += std::to_string(120 * static_cast<SimTime>(i)) + "," +
           format_double(0.5 + static_cast<double>(i)) + ",64\n";
  }
  MetricStore store;
  std::istringstream in(csv);
  const CsvReadResult read = read_pool_csv(in, "long.csv", &store, 0, 0);
  ASSERT_TRUE(read.ok()) << read.error;
  EXPECT_EQ(read.rows, rows);
  const auto& series =
      store.pool_series(0, 0, MetricKind::kRequestsPerSecond);
  ASSERT_EQ(series.size(), rows);
  EXPECT_TRUE(series.regular());  // fixed cadence reconstructed as stride
  EXPECT_EQ(series.stride(), 120);
  EXPECT_EQ(series.value_at(1499), 0.5 + 1499.0);
}

TEST(CsvRead, ToleratesCrlfAndTrailingBlankLine) {
  MetricStore store;
  std::istringstream in("window_start,rps\r\n0,1.5\r\n120,2.5\r\n\r\n");
  const CsvReadResult read = read_pool_csv(in, "crlf.csv", &store, 0, 0);
  ASSERT_TRUE(read.ok()) << read.error;
  EXPECT_EQ(read.rows, 2u);
  EXPECT_EQ(store.pool_series(0, 0, MetricKind::kRequestsPerSecond).size(),
            2u);
}

TEST(CsvRead, DiagnosesMalformedInputWithFileAndLine) {
  const struct {
    const char* text;
    const char* expected_error;
  } cases[] = {
      {"", "t.csv: empty file (missing header)"},
      {"time,rps\n",
       "t.csv:1: bad header: first column must be 'window_start', got "
       "'time'"},
      {"window_start\n", "t.csv:1: bad header: no metric columns"},
      {"window_start,bogus\n", "t.csv:1: unknown metric column 'bogus'"},
      {"window_start,rps,rps\n", "t.csv:1: duplicate metric column 'rps'"},
      {"window_start,rps\n0\n", "t.csv:2: expected 2 fields, got 1"},
      {"window_start,rps\n0,1,2\n", "t.csv:2: expected 2 fields, got 3"},
      {"window_start,rps\nx,1\n",
       "t.csv:2: bad window_start 'x' (expected an integer)"},
      {"window_start,rps\n0,1\n0,2\n",
       "t.csv:3: window_start 0 is not after the previous row (0); rows "
       "must be strictly time-ordered"},
      {"window_start,rps\n120,1\n0,2\n",
       "t.csv:3: window_start 0 is not after the previous row (120); rows "
       "must be strictly time-ordered"},
      {"window_start,rps\n0,abc\n",
       "t.csv:2: bad value 'abc' for column 'rps' (expected a finite "
       "number)"},
      {"window_start,rps\n0,inf\n",
       "t.csv:2: bad value 'inf' for column 'rps' (expected a finite "
       "number)"},
      {"window_start,rps\n0,\n",
       "t.csv:2: bad value '' for column 'rps' (expected a finite number)"},
  };
  for (const auto& c : cases) {
    MetricStore store;
    std::istringstream in(c.text);
    const CsvReadResult read = read_pool_csv(in, "t.csv", &store, 0, 0);
    EXPECT_EQ(read.error, c.expected_error);
  }
}

TEST(CsvRead, MetricFromStringCoversTheWholeVocabulary) {
  for (std::size_t i = 0; i < kMetricKindCount; ++i) {
    const auto kind = static_cast<MetricKind>(i);
    const auto back = metric_from_string(to_string(kind));
    ASSERT_TRUE(back.has_value()) << to_string(kind);
    EXPECT_EQ(*back, kind);
  }
  EXPECT_FALSE(metric_from_string("rpz").has_value());
  EXPECT_FALSE(metric_from_string("").has_value());
}

}  // namespace
}  // namespace headroom::telemetry
