#include "telemetry/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace headroom::telemetry {
namespace {

TEST(Csv, SeriesExport) {
  TimeSeries s;
  s.append(0, 1.5);
  s.append(120, 2.5);
  std::ostringstream out;
  write_series_csv(out, s, "rps");
  EXPECT_EQ(out.str(), "window_start,rps\n0,1.5\n120,2.5\n");
}

TEST(Csv, EmptySeriesHeaderOnly) {
  TimeSeries s;
  std::ostringstream out;
  write_series_csv(out, s);
  EXPECT_EQ(out.str(), "window_start,value\n");
}

TEST(Csv, ScatterExport) {
  AlignedPair pair;
  pair.x = {10.0, 20.0};
  pair.y = {1.0, 2.0};
  std::ostringstream out;
  write_scatter_csv(out, pair, "rps", "cpu");
  EXPECT_EQ(out.str(), "rps,cpu\n10,1\n20,2\n");
}

TEST(Csv, ScatterMismatchedLengthsEmitCommonPrefix) {
  // Regression: y shorter than x used to be read out of bounds.
  AlignedPair pair;
  pair.x = {10.0, 20.0, 30.0};
  pair.y = {1.0};
  std::ostringstream out;
  write_scatter_csv(out, pair, "rps", "cpu");
  EXPECT_EQ(out.str(), "rps,cpu\n10,1\n");

  AlignedPair longer_y;
  longer_y.x = {10.0};
  longer_y.y = {1.0, 2.0, 3.0};
  std::ostringstream out2;
  write_scatter_csv(out2, longer_y, "rps", "cpu");
  EXPECT_EQ(out2.str(), "rps,cpu\n10,1\n");
}

TEST(Csv, PoolExportJoinsMetrics) {
  MetricStore store;
  const SeriesKey rps{0, 0, SeriesKey::kPoolScope,
                      MetricKind::kRequestsPerSecond};
  const SeriesKey cpu{0, 0, SeriesKey::kPoolScope,
                      MetricKind::kCpuPercentTotal};
  for (SimTime t : {0L, 120L, 240L}) {
    store.record(rps, t, static_cast<double>(t));
  }
  // CPU is missing the middle window: only aligned rows are emitted.
  store.record(cpu, 0, 5.0);
  store.record(cpu, 240, 7.0);

  std::ostringstream out;
  const MetricKind metrics[] = {MetricKind::kRequestsPerSecond,
                                MetricKind::kCpuPercentTotal};
  const std::size_t columns = write_pool_csv(out, store, 0, 0, metrics);
  EXPECT_EQ(columns, 2u);
  EXPECT_EQ(out.str(),
            "window_start,rps,cpu_pct_total\n0,0,5\n240,240,7\n");
}

TEST(Csv, PoolExportSkipsAbsentMetrics) {
  MetricStore store;
  store.record({0, 0, SeriesKey::kPoolScope, MetricKind::kRequestsPerSecond},
               0, 1.0);
  std::ostringstream out;
  const MetricKind metrics[] = {MetricKind::kRequestsPerSecond,
                                MetricKind::kLatencyP95Ms};
  EXPECT_EQ(write_pool_csv(out, store, 0, 0, metrics), 1u);
  EXPECT_EQ(out.str(), "window_start,rps\n0,1\n");
}

TEST(Csv, PoolExportEmptyStore) {
  MetricStore store;
  std::ostringstream out;
  const MetricKind metrics[] = {MetricKind::kRequestsPerSecond};
  EXPECT_EQ(write_pool_csv(out, store, 0, 0, metrics), 0u);
}

}  // namespace
}  // namespace headroom::telemetry
