#include "telemetry/metric_store.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

namespace headroom::telemetry {
namespace {

TEST(MetricStore, EmptyLookupIsEmptySeries) {
  MetricStore store;
  const SeriesKey key{0, 0, 0, MetricKind::kRequestsPerSecond};
  EXPECT_FALSE(store.contains(key));
  EXPECT_TRUE(store.series(key).empty());
}

TEST(MetricStore, RecordAndRetrieve) {
  MetricStore store;
  const SeriesKey key{1, 2, 3, MetricKind::kCpuPercentTotal};
  store.record(key, 0, 10.0);
  store.record(key, 120, 12.0);
  EXPECT_TRUE(store.contains(key));
  EXPECT_EQ(store.series(key).size(), 2u);
  EXPECT_EQ(store.sample_count(), 2u);
  EXPECT_EQ(store.series_count(), 1u);
}

TEST(MetricStore, MergeReplaysBufferInOrder) {
  const SeriesKey rps{0, 0, SeriesKey::kPoolScope,
                      MetricKind::kRequestsPerSecond};
  const SeriesKey cpu{0, 0, SeriesKey::kPoolScope,
                      MetricKind::kCpuPercentTotal};

  MetricStore direct;
  direct.record(rps, 0, 100.0);
  direct.record(cpu, 0, 25.0);
  direct.record(rps, 120, 110.0);

  MetricBuffer buffer;
  buffer.record(rps, 0, 100.0);
  buffer.record(cpu, 0, 25.0);
  buffer.record(rps, 120, 110.0);
  EXPECT_EQ(buffer.size(), 3u);
  MetricStore merged;
  merged.merge(buffer);

  EXPECT_EQ(merged.sample_count(), direct.sample_count());
  EXPECT_EQ(merged.series_count(), direct.series_count());
  for (const SeriesKey& key : {rps, cpu}) {
    const TimeSeries& a = merged.series(key);
    const TimeSeries& b = direct.series(key);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a.at(i).window_start, b.at(i).window_start);
      EXPECT_DOUBLE_EQ(a.at(i).value, b.at(i).value);
    }
  }

  buffer.clear();
  EXPECT_TRUE(buffer.empty());
  merged.merge(buffer);  // merging an empty buffer is a no-op
  EXPECT_EQ(merged.sample_count(), 3u);
}

TEST(MetricStore, BatchedMergeIsBitIdenticalToReplay) {
  // A multi-window buffer with interleaved keys (the shape a simulator
  // shard emits across several barriers, or a trace ingester in one go):
  // the grouped-per-key merge must equal naive entry-by-entry replay on
  // every byte the store exposes.
  std::vector<SeriesKey> keys;
  for (std::uint32_t server : {0u, 1u, SeriesKey::kPoolScope}) {
    keys.push_back({0, 0, server, MetricKind::kRequestsPerSecond});
    keys.push_back({0, 0, server, MetricKind::kCpuPercentTotal});
  }
  MetricBuffer buffer;
  std::uint64_t salt = 0x9E3779B97F4A7C15ull;
  for (SimTime t = 0; t < 40 * 120; t += 120) {
    for (const SeriesKey& key : keys) {
      salt ^= salt << 13;
      salt ^= salt >> 7;
      salt ^= salt << 17;
      buffer.record(key, t, static_cast<double>(salt % 100003) / 97.0);
    }
  }

  MetricStore replayed;
  for (const MetricBuffer::Entry& e : buffer.entries()) {
    replayed.record(e.key, e.window_start, e.value);
  }
  MetricStore merged;
  merged.merge(buffer);

  EXPECT_EQ(merged.sample_count(), replayed.sample_count());
  ASSERT_EQ(merged.series_count(), replayed.series_count());
  for (const SeriesKey& key : replayed.keys()) {
    const TimeSeries& a = merged.series(key);
    const TimeSeries& b = replayed.series(key);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(a.regular(), b.regular());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a.time_at(i), b.time_at(i));
      // Bit-identical, not approximately equal.
      EXPECT_EQ(a.value_at(i), b.value_at(i));
    }
  }
}

TEST(MetricStore, MergeAcceptsRepeatedBuffersPerKey) {
  // Window-barrier shape: the same buffer object, cleared and refilled each
  // window, merged repeatedly — series must keep extending in time order.
  const SeriesKey key{0, 0, SeriesKey::kPoolScope, MetricKind::kActiveServers};
  MetricStore store;
  MetricBuffer buffer;
  for (SimTime t = 0; t < 5 * 120; t += 120) {
    buffer.clear();
    buffer.record(key, t, static_cast<double>(t));
    store.merge(buffer);
  }
  const TimeSeries& s = store.series(key);
  ASSERT_EQ(s.size(), 5u);
  EXPECT_TRUE(s.regular());
  EXPECT_EQ(s.stride(), 120);
}

TEST(MetricStore, RejectedMergeEntryDoesNotInflateSampleCount) {
  const SeriesKey key{0, 0, SeriesKey::kPoolScope, MetricKind::kRequestsPerSecond};
  MetricStore store;
  MetricBuffer buffer;
  buffer.record(key, 0, 1.0);
  buffer.record(key, 120, 2.0);
  buffer.record(key, 120, 3.0);  // duplicate timestamp: rejected mid-merge
  EXPECT_THROW(store.merge(buffer), std::invalid_argument);
  // Only the entries that actually landed are counted.
  EXPECT_EQ(store.sample_count(), 2u);
  EXPECT_EQ(store.series(key).size(), 2u);
}

TEST(MetricStore, SummaryMatchesMaintainedDigest) {
  const SeriesKey key{0, 0, SeriesKey::kPoolScope, MetricKind::kLatencyP95Ms};
  MetricStore eager;  // digests maintained at append time
  eager.set_summaries_enabled(true);
  MetricStore lazy;  // digests built on demand
  MetricStore backfilled;  // enabled after the fact

  std::uint64_t salt = 42;
  for (SimTime t = 0; t < 500 * 120; t += 120) {
    salt = salt * 6364136223846793005ull + 1442695040888963407ull;
    const double v = 20.0 + static_cast<double>(salt >> 40) / 1000.0;
    eager.record(key, t, v);
    lazy.record(key, t, v);
    backfilled.record(key, t, v);
  }
  backfilled.set_summaries_enabled(true);

  const StreamingDigest a = eager.summary(key);
  const StreamingDigest b = lazy.summary(key);
  const StreamingDigest c = backfilled.summary(key);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
  EXPECT_EQ(a.count(), 500u);
  // The sketch answer lands within its accuracy bound of the exact
  // percentile over the materialized column.
  const auto values = lazy.series(key).values();
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double exact = sorted[static_cast<std::size_t>(0.95 * 499.0)];
  EXPECT_NEAR(a.percentile(95.0), exact, 0.02 * exact);
}

TEST(MetricStore, SummaryOfMissingKeyIsEmpty) {
  const MetricStore store;
  EXPECT_TRUE(store.summary({9, 9, 9, MetricKind::kErrorsPerSecond}).empty());
}

TEST(MetricStore, NonFiniteSampleWithSummariesRejectedBeforeMutation) {
  const SeriesKey key{0, 0, SeriesKey::kPoolScope, MetricKind::kLatencyP95Ms};
  MetricStore store;
  store.set_summaries_enabled(true);
  store.record(key, 0, 1.0);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(store.record(key, 120, inf), std::invalid_argument);
  MetricBuffer buffer;
  buffer.record(key, 120, 2.0);
  buffer.record(key, 240, inf);
  EXPECT_THROW(store.merge(buffer), std::invalid_argument);
  // Series, counter, and digest all agree: the rejected samples are in
  // none of them.
  EXPECT_EQ(store.series(key).size(), 2u);
  EXPECT_EQ(store.sample_count(), 2u);
  EXPECT_EQ(store.maintained_summary(key).count(), 2u);
  EXPECT_DOUBLE_EQ(store.maintained_summary(key).max(), 2.0);
}

TEST(MetricStore, FailedBackfillLeavesSummariesConsistentlyDisabled) {
  const SeriesKey key{0, 0, SeriesKey::kPoolScope, MetricKind::kErrorsPerSecond};
  MetricStore store;
  store.record(key, 0, 1.0);
  // Legal while summaries are off: the series layer accepts any double.
  store.record(key, 120, std::numeric_limits<double>::infinity());
  EXPECT_THROW(store.set_summaries_enabled(true), std::invalid_argument);
  EXPECT_FALSE(store.summaries_enabled());
  EXPECT_TRUE(store.maintained_summary(key).empty());
  // The store still records normally in the disabled state.
  store.record(key, 240, 2.0);
  EXPECT_EQ(store.series(key).size(), 3u);
}

TEST(MetricStore, MaintainedSummaryIsZeroCopyViewOfTheDigest) {
  const SeriesKey key{0, 0, SeriesKey::kPoolScope, MetricKind::kCpuPercentTotal};
  MetricStore store;
  store.record(key, 0, 5.0);
  // Disabled (and missing keys): the static empty digest.
  EXPECT_TRUE(store.maintained_summary(key).empty());
  store.set_summaries_enabled(true);
  const StreamingDigest& maintained = store.maintained_summary(key);
  EXPECT_EQ(maintained.count(), 1u);
  EXPECT_EQ(maintained, store.summary(key));
  // The view tracks subsequent appends in place.
  store.record(key, 120, 7.0);
  EXPECT_EQ(maintained.count(), 2u);
  EXPECT_DOUBLE_EQ(maintained.max(), 7.0);
  EXPECT_TRUE(store.maintained_summary({1, 1, 1, MetricKind::kErrorsPerSecond})
                  .empty());
}

TEST(MetricStore, MergeFeedsMaintainedDigests) {
  const SeriesKey key{0, 0, SeriesKey::kPoolScope, MetricKind::kRequestsPerSecond};
  MetricStore store;
  store.set_summaries_enabled(true);
  MetricBuffer buffer;
  for (SimTime t = 0; t < 10 * 120; t += 120) {
    buffer.record(key, t, static_cast<double>(t) + 1.0);
  }
  store.merge(buffer);
  const StreamingDigest d = store.summary(key);
  EXPECT_EQ(d.count(), 10u);
  EXPECT_DOUBLE_EQ(d.min(), 1.0);
  EXPECT_DOUBLE_EQ(d.max(), 1081.0);
}

TEST(MetricStore, ReserveAdditionalPreservesContentAndStabilizesSpans) {
  const SeriesKey key{0, 0, SeriesKey::kPoolScope, MetricKind::kCpuPercentTotal};
  MetricStore store;
  store.record(key, 0, 1.0);
  store.reserve_additional(100);
  const TimeSeries& s = store.series(key);
  EXPECT_GE(s.capacity(), 101u);
  const std::span<const double> before = s.values();
  MetricBuffer buffer;
  for (SimTime t = 120; t <= 100 * 120; t += 120) {
    buffer.record(key, t, static_cast<double>(t));
  }
  store.merge(buffer);
  EXPECT_EQ(s.size(), 101u);
  // All appends fit in the reservation: the earlier span is still live.
  EXPECT_EQ(before.data(), s.values().data());
}

TEST(MetricStore, KeysAreDistinguishedByAllFields) {
  MetricStore store;
  const SeriesKey a{1, 2, 3, MetricKind::kCpuPercentTotal};
  SeriesKey b = a;
  b.metric = MetricKind::kLatencyP95Ms;
  SeriesKey c = a;
  c.server = 4;
  SeriesKey d = a;
  d.datacenter = 9;
  store.record(a, 0, 1.0);
  store.record(b, 0, 2.0);
  store.record(c, 0, 3.0);
  store.record(d, 0, 4.0);
  EXPECT_EQ(store.series_count(), 4u);
  EXPECT_DOUBLE_EQ(store.series(a).at(0).value, 1.0);
  EXPECT_DOUBLE_EQ(store.series(d).at(0).value, 4.0);
}

TEST(MetricStore, PoolSeriesUsesPoolScope) {
  MetricStore store;
  const SeriesKey pool_key{0, 1, SeriesKey::kPoolScope,
                           MetricKind::kRequestsPerSecond};
  store.record(pool_key, 0, 100.0);
  EXPECT_EQ(store.pool_series(0, 1, MetricKind::kRequestsPerSecond).size(), 1u);
  // Server-scope record does not pollute pool scope.
  store.record({0, 1, 7, MetricKind::kRequestsPerSecond}, 0, 50.0);
  EXPECT_EQ(store.pool_series(0, 1, MetricKind::kRequestsPerSecond).size(), 1u);
}

TEST(MetricStore, ServerKeysFiltersScopeAndPool) {
  MetricStore store;
  store.record({0, 1, 0, MetricKind::kCpuPercentTotal}, 0, 1.0);
  store.record({0, 1, 1, MetricKind::kCpuPercentTotal}, 0, 2.0);
  store.record({0, 1, SeriesKey::kPoolScope, MetricKind::kCpuPercentTotal}, 0, 3.0);
  store.record({0, 2, 0, MetricKind::kCpuPercentTotal}, 0, 4.0);
  store.record({0, 1, 0, MetricKind::kRequestsPerSecond}, 0, 5.0);
  const auto keys = store.server_keys(0, 1, MetricKind::kCpuPercentTotal);
  EXPECT_EQ(keys.size(), 2u);
}

TEST(MetricStore, PoolScatterAlignsTwoMetrics) {
  MetricStore store;
  for (SimTime t = 0; t < 600; t += 120) {
    store.record({0, 0, SeriesKey::kPoolScope, MetricKind::kRequestsPerSecond},
                 t, static_cast<double>(t));
    store.record({0, 0, SeriesKey::kPoolScope, MetricKind::kCpuPercentTotal},
                 t, static_cast<double>(t) * 0.028 + 1.37);
  }
  const AlignedPair pair = store.pool_scatter(
      0, 0, MetricKind::kRequestsPerSecond, MetricKind::kCpuPercentTotal);
  ASSERT_EQ(pair.x.size(), 5u);
  EXPECT_DOUBLE_EQ(pair.y[2], pair.x[2] * 0.028 + 1.37);
}

TEST(MetricStore, ClearResets) {
  MetricStore store;
  store.record({0, 0, 0, MetricKind::kErrorsPerSecond}, 0, 1.0);
  store.clear();
  EXPECT_EQ(store.series_count(), 0u);
  EXPECT_EQ(store.sample_count(), 0u);
}

// --- Rolling retention ------------------------------------------------------

TEST(MetricStoreRetention, EvictsWindowsOlderThanLookback) {
  MetricStore store;
  const SeriesKey key{0, 0, SeriesKey::kPoolScope,
                      MetricKind::kRequestsPerSecond};
  store.set_retention(480);  // keep four 120 s windows behind the watermark
  for (SimTime t = 0; t < 10 * 120; t += 120) {
    store.record(key, t, static_cast<double>(t));
  }
  // Watermark 1080, cutoff 600: windows 0..480 are gone.
  EXPECT_EQ(store.series(key).size(), 5u);
  EXPECT_EQ(store.series(key).time_at(0), 600);
  EXPECT_EQ(store.sample_count(), 5u);
  EXPECT_EQ(store.evicted_samples(), 5u);
}

TEST(MetricStoreRetention, SweepsEverySeriesAgainstOneWatermark) {
  MetricStore store;
  const SeriesKey rps{0, 0, SeriesKey::kPoolScope,
                      MetricKind::kRequestsPerSecond};
  const SeriesKey cpu{0, 0, 7, MetricKind::kCpuPercentTotal};
  store.set_retention(240);
  for (SimTime t = 0; t < 6 * 120; t += 120) {
    store.record(rps, t, 1.0);
    store.record(cpu, t, 2.0);
  }
  EXPECT_EQ(store.series(rps).time_at(0), store.series(cpu).time_at(0));
  EXPECT_EQ(store.series(rps).size(), store.series(cpu).size());
}

TEST(MetricStoreRetention, EnablingOnAGrownStoreSweepsImmediately) {
  MetricStore store;
  const SeriesKey key{0, 0, SeriesKey::kPoolScope,
                      MetricKind::kRequestsPerSecond};
  for (SimTime t = 0; t < 10 * 120; t += 120) {
    store.record(key, t, 1.0);
  }
  EXPECT_EQ(store.evicted_samples(), 0u);
  store.set_retention(240);  // takes effect without waiting for an append
  EXPECT_EQ(store.series(key).time_at(0), 840);
  EXPECT_GT(store.evicted_samples(), 0u);
}

TEST(MetricStoreRetention, ArchiveDigestPreservesLifetimeStatistics) {
  MetricStore store;
  const SeriesKey key{0, 0, SeriesKey::kPoolScope, MetricKind::kLatencyP95Ms};
  store.set_retention(240);
  for (SimTime t = 0; t < 8 * 120; t += 120) {
    store.record(key, t, static_cast<double>(t + 1));
  }
  StreamingDigest lifetime = store.archived_summary(key);
  lifetime.merge(store.summary(key));
  EXPECT_EQ(lifetime.count(), 8u);
  double expected_sum = 0.0;
  for (SimTime t = 0; t < 8 * 120; t += 120) expected_sum += t + 1;
  EXPECT_DOUBLE_EQ(lifetime.sum(), expected_sum);
}

TEST(MetricStoreRetention, ZeroRestoresKeepEverything) {
  MetricStore store;
  const SeriesKey key{0, 0, SeriesKey::kPoolScope,
                      MetricKind::kRequestsPerSecond};
  store.set_retention(240);
  store.set_retention(0);
  for (SimTime t = 0; t < 10 * 120; t += 120) {
    store.record(key, t, 1.0);
  }
  EXPECT_EQ(store.series(key).size(), 10u);
  EXPECT_EQ(store.evicted_samples(), 0u);
  EXPECT_THROW(store.set_retention(-1), std::invalid_argument);
}

TEST(MetricStoreRetention, EvictionFloorHaltsTheSweep) {
  // A bulk-ingested recording puts the watermark far ahead of the slowest
  // consumer; the floor keeps its unread windows resident (the serve
  // --follow starvation regression).
  MetricStore store;
  const SeriesKey key{0, 0, SeriesKey::kPoolScope,
                      MetricKind::kRequestsPerSecond};
  for (SimTime t = 0; t < 50 * 120; t += 120) {
    store.record(key, t, 1.0);
  }
  store.set_eviction_floor(600);  // consumer cursor: window 5
  store.set_retention(240);       // watermark cutoff would be 5520
  EXPECT_EQ(store.series(key).time_at(0), 600);
  EXPECT_EQ(store.evicted_samples(), 5u);

  // Raising the floor releases exactly the windows the consumer passed.
  store.set_eviction_floor(1200);
  EXPECT_EQ(store.series(key).time_at(0), 1200);
  EXPECT_EQ(store.evicted_samples(), 10u);
  EXPECT_EQ(store.eviction_floor(), 1200);
  EXPECT_THROW(store.set_eviction_floor(-1), std::invalid_argument);
}

TEST(MetricStoreRetention, FloorBeyondCutoffLeavesWatermarkRuleInCharge) {
  MetricStore store;
  const SeriesKey key{0, 0, SeriesKey::kPoolScope,
                      MetricKind::kRequestsPerSecond};
  store.set_eviction_floor(100000);  // far ahead: never the binding bound
  store.set_retention(240);
  for (SimTime t = 0; t < 6 * 120; t += 120) {
    store.record(key, t, 1.0);
  }
  EXPECT_EQ(store.series(key).time_at(0), 360);  // watermark 600 - 240
}

TEST(MetricStoreRetention, ClearResetsRetentionStateToo) {
  MetricStore store;
  const SeriesKey key{0, 0, SeriesKey::kPoolScope,
                      MetricKind::kRequestsPerSecond};
  store.set_retention(240);
  store.set_eviction_floor(0);
  for (SimTime t = 0; t < 6 * 120; t += 120) {
    store.record(key, t, 1.0);
  }
  store.clear();
  EXPECT_EQ(store.retention(), 0);
  EXPECT_EQ(store.evicted_samples(), 0u);
  // A cleared store keeps full history again.
  for (SimTime t = 0; t < 6 * 120; t += 120) {
    store.record(key, t, 1.0);
  }
  EXPECT_EQ(store.series(key).size(), 6u);
}

TEST(SeriesKeyHash, DistinctKeysUsuallyDistinctHashes) {
  SeriesKeyHash hash;
  const SeriesKey a{1, 2, 3, MetricKind::kCpuPercentTotal};
  SeriesKey b = a;
  b.server = 4;
  EXPECT_NE(hash(a), hash(b));
}

TEST(MetricKind, NamesAreUniqueAndNonEmpty) {
  for (std::size_t i = 0; i < kMetricKindCount; ++i) {
    const auto kind = static_cast<MetricKind>(i);
    EXPECT_FALSE(to_string(kind).empty());
    for (std::size_t j = i + 1; j < kMetricKindCount; ++j) {
      EXPECT_NE(to_string(kind), to_string(static_cast<MetricKind>(j)));
    }
  }
}

}  // namespace
}  // namespace headroom::telemetry
