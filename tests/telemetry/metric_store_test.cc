#include "telemetry/metric_store.h"

#include <gtest/gtest.h>

namespace headroom::telemetry {
namespace {

TEST(MetricStore, EmptyLookupIsEmptySeries) {
  MetricStore store;
  const SeriesKey key{0, 0, 0, MetricKind::kRequestsPerSecond};
  EXPECT_FALSE(store.contains(key));
  EXPECT_TRUE(store.series(key).empty());
}

TEST(MetricStore, RecordAndRetrieve) {
  MetricStore store;
  const SeriesKey key{1, 2, 3, MetricKind::kCpuPercentTotal};
  store.record(key, 0, 10.0);
  store.record(key, 120, 12.0);
  EXPECT_TRUE(store.contains(key));
  EXPECT_EQ(store.series(key).size(), 2u);
  EXPECT_EQ(store.sample_count(), 2u);
  EXPECT_EQ(store.series_count(), 1u);
}

TEST(MetricStore, MergeReplaysBufferInOrder) {
  const SeriesKey rps{0, 0, SeriesKey::kPoolScope,
                      MetricKind::kRequestsPerSecond};
  const SeriesKey cpu{0, 0, SeriesKey::kPoolScope,
                      MetricKind::kCpuPercentTotal};

  MetricStore direct;
  direct.record(rps, 0, 100.0);
  direct.record(cpu, 0, 25.0);
  direct.record(rps, 120, 110.0);

  MetricBuffer buffer;
  buffer.record(rps, 0, 100.0);
  buffer.record(cpu, 0, 25.0);
  buffer.record(rps, 120, 110.0);
  EXPECT_EQ(buffer.size(), 3u);
  MetricStore merged;
  merged.merge(buffer);

  EXPECT_EQ(merged.sample_count(), direct.sample_count());
  EXPECT_EQ(merged.series_count(), direct.series_count());
  for (const SeriesKey& key : {rps, cpu}) {
    const TimeSeries& a = merged.series(key);
    const TimeSeries& b = direct.series(key);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a.at(i).window_start, b.at(i).window_start);
      EXPECT_DOUBLE_EQ(a.at(i).value, b.at(i).value);
    }
  }

  buffer.clear();
  EXPECT_TRUE(buffer.empty());
  merged.merge(buffer);  // merging an empty buffer is a no-op
  EXPECT_EQ(merged.sample_count(), 3u);
}

TEST(MetricStore, KeysAreDistinguishedByAllFields) {
  MetricStore store;
  const SeriesKey a{1, 2, 3, MetricKind::kCpuPercentTotal};
  SeriesKey b = a;
  b.metric = MetricKind::kLatencyP95Ms;
  SeriesKey c = a;
  c.server = 4;
  SeriesKey d = a;
  d.datacenter = 9;
  store.record(a, 0, 1.0);
  store.record(b, 0, 2.0);
  store.record(c, 0, 3.0);
  store.record(d, 0, 4.0);
  EXPECT_EQ(store.series_count(), 4u);
  EXPECT_DOUBLE_EQ(store.series(a).at(0).value, 1.0);
  EXPECT_DOUBLE_EQ(store.series(d).at(0).value, 4.0);
}

TEST(MetricStore, PoolSeriesUsesPoolScope) {
  MetricStore store;
  const SeriesKey pool_key{0, 1, SeriesKey::kPoolScope,
                           MetricKind::kRequestsPerSecond};
  store.record(pool_key, 0, 100.0);
  EXPECT_EQ(store.pool_series(0, 1, MetricKind::kRequestsPerSecond).size(), 1u);
  // Server-scope record does not pollute pool scope.
  store.record({0, 1, 7, MetricKind::kRequestsPerSecond}, 0, 50.0);
  EXPECT_EQ(store.pool_series(0, 1, MetricKind::kRequestsPerSecond).size(), 1u);
}

TEST(MetricStore, ServerKeysFiltersScopeAndPool) {
  MetricStore store;
  store.record({0, 1, 0, MetricKind::kCpuPercentTotal}, 0, 1.0);
  store.record({0, 1, 1, MetricKind::kCpuPercentTotal}, 0, 2.0);
  store.record({0, 1, SeriesKey::kPoolScope, MetricKind::kCpuPercentTotal}, 0, 3.0);
  store.record({0, 2, 0, MetricKind::kCpuPercentTotal}, 0, 4.0);
  store.record({0, 1, 0, MetricKind::kRequestsPerSecond}, 0, 5.0);
  const auto keys = store.server_keys(0, 1, MetricKind::kCpuPercentTotal);
  EXPECT_EQ(keys.size(), 2u);
}

TEST(MetricStore, PoolScatterAlignsTwoMetrics) {
  MetricStore store;
  for (SimTime t = 0; t < 600; t += 120) {
    store.record({0, 0, SeriesKey::kPoolScope, MetricKind::kRequestsPerSecond},
                 t, static_cast<double>(t));
    store.record({0, 0, SeriesKey::kPoolScope, MetricKind::kCpuPercentTotal},
                 t, static_cast<double>(t) * 0.028 + 1.37);
  }
  const AlignedPair pair = store.pool_scatter(
      0, 0, MetricKind::kRequestsPerSecond, MetricKind::kCpuPercentTotal);
  ASSERT_EQ(pair.x.size(), 5u);
  EXPECT_DOUBLE_EQ(pair.y[2], pair.x[2] * 0.028 + 1.37);
}

TEST(MetricStore, ClearResets) {
  MetricStore store;
  store.record({0, 0, 0, MetricKind::kErrorsPerSecond}, 0, 1.0);
  store.clear();
  EXPECT_EQ(store.series_count(), 0u);
  EXPECT_EQ(store.sample_count(), 0u);
}

TEST(SeriesKeyHash, DistinctKeysUsuallyDistinctHashes) {
  SeriesKeyHash hash;
  const SeriesKey a{1, 2, 3, MetricKind::kCpuPercentTotal};
  SeriesKey b = a;
  b.server = 4;
  EXPECT_NE(hash(a), hash(b));
}

TEST(MetricKind, NamesAreUniqueAndNonEmpty) {
  for (std::size_t i = 0; i < kMetricKindCount; ++i) {
    const auto kind = static_cast<MetricKind>(i);
    EXPECT_FALSE(to_string(kind).empty());
    for (std::size_t j = i + 1; j < kMetricKindCount; ++j) {
      EXPECT_NE(to_string(kind), to_string(static_cast<MetricKind>(j)));
    }
  }
}

}  // namespace
}  // namespace headroom::telemetry
