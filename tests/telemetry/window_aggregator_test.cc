#include "telemetry/window_aggregator.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace headroom::telemetry {
namespace {

const SeriesKey kCpuKey{0, 0, 0, MetricKind::kCpuPercentTotal};
const SeriesKey kLatencyKey{0, 0, 0, MetricKind::kLatencyP95Ms};

TEST(WindowAggregator, RejectsBadConstruction) {
  MetricStore store;
  EXPECT_THROW(WindowAggregator(nullptr, 120), std::invalid_argument);
  EXPECT_THROW(WindowAggregator(&store, 0), std::invalid_argument);
  EXPECT_THROW(WindowAggregator(&store, -5), std::invalid_argument);
}

TEST(WindowAggregator, MeansSamplesWithinWindow) {
  MetricStore store;
  WindowAggregator agg(&store, 120);
  agg.add(kCpuKey, 0, 10.0);
  agg.add(kCpuKey, 40, 20.0);
  agg.add(kCpuKey, 80, 30.0);
  agg.add(kCpuKey, 120, 99.0);  // crosses the boundary; flushes first window
  const TimeSeries& series = store.series(kCpuKey);
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series.at(0).window_start, 0);
  EXPECT_DOUBLE_EQ(series.at(0).value, 20.0);
}

TEST(WindowAggregator, FlushEmitsPartialWindows) {
  MetricStore store;
  WindowAggregator agg(&store, 120);
  agg.add(kCpuKey, 10, 5.0);
  EXPECT_EQ(store.series(kCpuKey).size(), 0u);
  agg.flush();
  ASSERT_EQ(store.series(kCpuKey).size(), 1u);
  EXPECT_DOUBLE_EQ(store.series(kCpuKey).at(0).value, 5.0);
}

TEST(WindowAggregator, WindowStartsAreMultiplesOfWindow) {
  MetricStore store;
  WindowAggregator agg(&store, 120);
  agg.add(kCpuKey, 250, 1.0);  // inside window [240, 360)
  agg.flush();
  EXPECT_EQ(store.series(kCpuKey).at(0).window_start, 240);
}

TEST(WindowAggregator, SkippedWindowsAreAbsentNotZero) {
  MetricStore store;
  WindowAggregator agg(&store, 120);
  agg.add(kCpuKey, 0, 1.0);
  agg.add(kCpuKey, 500, 2.0);  // windows 1,2,3 skipped entirely
  agg.flush();
  const TimeSeries& series = store.series(kCpuKey);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series.at(0).window_start, 0);
  EXPECT_EQ(series.at(1).window_start, 480);
}

TEST(WindowAggregator, LatencyAggregatesAsP95) {
  MetricStore store;
  WindowAggregator agg(&store, 120);
  // 100 request latencies 1..100 in one window: P95 ≈ 95, mean 50.5 — the
  // aggregate must be the percentile, not the mean.
  for (int i = 1; i <= 100; ++i) {
    agg.add(kLatencyKey, 10, static_cast<double>(i));
  }
  agg.flush();
  ASSERT_EQ(store.series(kLatencyKey).size(), 1u);
  EXPECT_NEAR(store.series(kLatencyKey).at(0).value, 95.0, 2.0);
}

TEST(WindowAggregator, NonLatencyUsesMeanNotP95) {
  MetricStore store;
  WindowAggregator agg(&store, 120);
  for (int i = 1; i <= 100; ++i) {
    agg.add(kCpuKey, 10, static_cast<double>(i));
  }
  agg.flush();
  EXPECT_NEAR(store.series(kCpuKey).at(0).value, 50.5, 1e-9);
}

TEST(WindowAggregator, IndependentKeysIndependentBuckets) {
  MetricStore store;
  WindowAggregator agg(&store, 120);
  SeriesKey other = kCpuKey;
  other.server = 9;
  agg.add(kCpuKey, 0, 10.0);
  agg.add(other, 0, 90.0);
  agg.flush();
  EXPECT_DOUBLE_EQ(store.series(kCpuKey).at(0).value, 10.0);
  EXPECT_DOUBLE_EQ(store.series(other).at(0).value, 90.0);
}

TEST(WindowAggregator, NegativeTimeThrows) {
  MetricStore store;
  WindowAggregator agg(&store, 120);
  EXPECT_THROW(agg.add(kCpuKey, -1, 1.0), std::invalid_argument);
}

TEST(WindowAggregator, BackwardsTimeThrows) {
  MetricStore store;
  WindowAggregator agg(&store, 120);
  agg.add(kCpuKey, 500, 1.0);
  EXPECT_THROW(agg.add(kCpuKey, 100, 1.0), std::invalid_argument);
}

TEST(WindowAggregator, PaperDefaultWindowIs120s) {
  MetricStore store;
  WindowAggregator agg(&store);
  EXPECT_EQ(agg.window_seconds(), 120);
}

}  // namespace
}  // namespace headroom::telemetry
