#include "telemetry/window_aggregator.h"

#include <gtest/gtest.h>

#include <iterator>
#include <stdexcept>
#include <vector>

namespace headroom::telemetry {
namespace {

const SeriesKey kCpuKey{0, 0, 0, MetricKind::kCpuPercentTotal};
const SeriesKey kLatencyKey{0, 0, 0, MetricKind::kLatencyP95Ms};

TEST(WindowAggregator, RejectsBadConstruction) {
  MetricStore store;
  EXPECT_THROW(WindowAggregator(nullptr, 120), std::invalid_argument);
  EXPECT_THROW(WindowAggregator(&store, 0), std::invalid_argument);
  EXPECT_THROW(WindowAggregator(&store, -5), std::invalid_argument);
}

TEST(WindowAggregator, MeansSamplesWithinWindow) {
  MetricStore store;
  WindowAggregator agg(&store, 120);
  agg.add(kCpuKey, 0, 10.0);
  agg.add(kCpuKey, 40, 20.0);
  agg.add(kCpuKey, 80, 30.0);
  agg.add(kCpuKey, 120, 99.0);  // crosses the boundary; flushes first window
  const TimeSeries& series = store.series(kCpuKey);
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series.at(0).window_start, 0);
  EXPECT_DOUBLE_EQ(series.at(0).value, 20.0);
}

TEST(WindowAggregator, FlushEmitsPartialWindows) {
  MetricStore store;
  WindowAggregator agg(&store, 120);
  agg.add(kCpuKey, 10, 5.0);
  EXPECT_EQ(store.series(kCpuKey).size(), 0u);
  agg.flush();
  ASSERT_EQ(store.series(kCpuKey).size(), 1u);
  EXPECT_DOUBLE_EQ(store.series(kCpuKey).at(0).value, 5.0);
}

TEST(WindowAggregator, WindowStartsAreMultiplesOfWindow) {
  MetricStore store;
  WindowAggregator agg(&store, 120);
  agg.add(kCpuKey, 250, 1.0);  // inside window [240, 360)
  agg.flush();
  EXPECT_EQ(store.series(kCpuKey).at(0).window_start, 240);
}

TEST(WindowAggregator, SkippedWindowsAreAbsentNotZero) {
  MetricStore store;
  WindowAggregator agg(&store, 120);
  agg.add(kCpuKey, 0, 1.0);
  agg.add(kCpuKey, 500, 2.0);  // windows 1,2,3 skipped entirely
  agg.flush();
  const TimeSeries& series = store.series(kCpuKey);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series.at(0).window_start, 0);
  EXPECT_EQ(series.at(1).window_start, 480);
}

TEST(WindowAggregator, LatencyAggregatesAsP95) {
  MetricStore store;
  WindowAggregator agg(&store, 120);
  // 100 request latencies 1..100 in one window: P95 ≈ 95, mean 50.5 — the
  // aggregate must be the percentile, not the mean.
  for (int i = 1; i <= 100; ++i) {
    agg.add(kLatencyKey, 10, static_cast<double>(i));
  }
  agg.flush();
  ASSERT_EQ(store.series(kLatencyKey).size(), 1u);
  EXPECT_NEAR(store.series(kLatencyKey).at(0).value, 95.0, 2.0);
}

TEST(WindowAggregator, NonLatencyUsesMeanNotP95) {
  MetricStore store;
  WindowAggregator agg(&store, 120);
  for (int i = 1; i <= 100; ++i) {
    agg.add(kCpuKey, 10, static_cast<double>(i));
  }
  agg.flush();
  EXPECT_NEAR(store.series(kCpuKey).at(0).value, 50.5, 1e-9);
}

TEST(WindowAggregator, IndependentKeysIndependentBuckets) {
  MetricStore store;
  WindowAggregator agg(&store, 120);
  SeriesKey other = kCpuKey;
  other.server = 9;
  agg.add(kCpuKey, 0, 10.0);
  agg.add(other, 0, 90.0);
  agg.flush();
  EXPECT_DOUBLE_EQ(store.series(kCpuKey).at(0).value, 10.0);
  EXPECT_DOUBLE_EQ(store.series(other).at(0).value, 90.0);
}

TEST(WindowAggregator, NegativeTimeThrows) {
  MetricStore store;
  WindowAggregator agg(&store, 120);
  EXPECT_THROW(agg.add(kCpuKey, -1, 1.0), std::invalid_argument);
}

TEST(WindowAggregator, BackwardsTimeThrows) {
  MetricStore store;
  WindowAggregator agg(&store, 120);
  agg.add(kCpuKey, 500, 1.0);
  EXPECT_THROW(agg.add(kCpuKey, 100, 1.0), std::invalid_argument);
}

TEST(WindowAggregator, PaperDefaultWindowIs120s) {
  MetricStore store;
  WindowAggregator agg(&store);
  EXPECT_EQ(agg.window_seconds(), 120);
}

TEST(WindowAggregator, FlushEmitsPartialWindowsInSortedKeyOrder) {
  // Regression: flush() used to iterate the bucket unordered_map, so the
  // end-of-run partials reached the store in platform-dependent order.
  MetricStore store;
  WindowAggregator agg(&store, 120);
  // Insert in deliberately scrambled key order, across every key field.
  const SeriesKey scrambled[] = {
      {1, 0, 7, MetricKind::kCpuPercentTotal},
      {0, 2, SeriesKey::kPoolScope, MetricKind::kRequestsPerSecond},
      {1, 0, 3, MetricKind::kCpuPercentTotal},
      {0, 2, SeriesKey::kPoolScope, MetricKind::kCpuPercentTotal},
      {0, 1, 5, MetricKind::kLatencyP95Ms},
      {1, 0, 3, MetricKind::kRequestsPerSecond},
  };
  for (const SeriesKey& key : scrambled) agg.add(key, 30, 1.0);

  const std::vector<SeriesKey> pending = agg.pending_keys();
  ASSERT_EQ(pending.size(), 6u);
  for (std::size_t i = 1; i < pending.size(); ++i) {
    EXPECT_TRUE(pending[i - 1] < pending[i])
        << "pending_keys() not sorted at " << i;
  }
  // kPoolScope (0xFFFFFFFF) sorts after concrete server indices.
  EXPECT_EQ(pending.front().datacenter, 0u);
  EXPECT_EQ(pending.front().pool, 1u);
  EXPECT_EQ(pending.back().datacenter, 1u);
  EXPECT_EQ(pending.back().server, 7u);

  agg.flush();
  EXPECT_TRUE(agg.pending_keys().empty());
  EXPECT_EQ(store.sample_count(), 6u);
  for (const SeriesKey& key : scrambled) {
    EXPECT_EQ(store.series(key).size(), 1u);
  }
}

TEST(WindowAggregator, FlushedStoreIsInsertionOrderInvariant) {
  // Two aggregators fed the same samples in different key orders must
  // produce stores with identical contents and key listings.
  const SeriesKey keys[] = {
      {0, 0, 4, MetricKind::kCpuPercentTotal},
      {0, 0, 1, MetricKind::kCpuPercentTotal},
      {2, 0, SeriesKey::kPoolScope, MetricKind::kLatencyP95Ms},
  };
  MetricStore forward_store;
  WindowAggregator forward(&forward_store, 120);
  for (const SeriesKey& key : keys) forward.add(key, 10, 5.0);
  forward.flush();

  MetricStore reverse_store;
  WindowAggregator reverse(&reverse_store, 120);
  for (auto it = std::rbegin(keys); it != std::rend(keys); ++it) {
    reverse.add(*it, 10, 5.0);
  }
  reverse.flush();

  const auto forward_keys = forward_store.keys();
  ASSERT_EQ(forward_keys.size(), reverse_store.keys().size());
  EXPECT_TRUE(forward_keys == reverse_store.keys());
  for (const SeriesKey& key : forward_keys) {
    ASSERT_EQ(forward_store.series(key).size(),
              reverse_store.series(key).size());
    EXPECT_EQ(forward_store.series(key).at(0).value,
              reverse_store.series(key).at(0).value);
  }
}

TEST(WindowAggregator, WindowCallbackFiresOnEmitAndFlush) {
  MetricStore store;
  WindowAggregator agg(&store, 120);
  struct Emitted {
    SeriesKey key;
    SimTime start;
    double value;
  };
  std::vector<Emitted> seen;
  agg.set_window_callback([&](const SeriesKey& key, SimTime start,
                              double value) {
    seen.push_back({key, start, value});
  });
  agg.add(kCpuKey, 0, 10.0);
  agg.add(kCpuKey, 60, 30.0);
  EXPECT_TRUE(seen.empty());  // window still open
  agg.add(kCpuKey, 120, 50.0);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].key, kCpuKey);
  EXPECT_EQ(seen[0].start, 0);
  EXPECT_DOUBLE_EQ(seen[0].value, 20.0);
  // The callback observes the sample already landed in the store.
  EXPECT_EQ(store.series(kCpuKey).size(), 1u);
  agg.flush();  // the partial second window emits through the hook too
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[1].start, 120);
  EXPECT_DOUBLE_EQ(seen[1].value, 50.0);
}

TEST(WindowAggregator, DetachedCallbackStopsFiring) {
  MetricStore store;
  WindowAggregator agg(&store, 120);
  int calls = 0;
  agg.set_window_callback([&](const SeriesKey&, SimTime, double) { ++calls; });
  agg.add(kCpuKey, 0, 1.0);
  agg.add(kCpuKey, 120, 1.0);
  EXPECT_EQ(calls, 1);
  agg.set_window_callback({});
  agg.add(kCpuKey, 240, 1.0);
  agg.flush();
  EXPECT_EQ(calls, 1);  // detached: later windows emit silently
}

TEST(WindowAggregator, StoreRetentionPassThroughBoundsTheStore) {
  MetricStore store;
  WindowAggregator agg(&store, 120);
  agg.set_store_retention(240);
  for (SimTime t = 0; t < 10 * 120; t += 120) {
    agg.add(kCpuKey, t, 1.0);
  }
  agg.flush();
  EXPECT_EQ(store.retention(), 240);
  EXPECT_GT(store.evicted_samples(), 0u);
  // Resident span is bounded by the lookback, not the feed length.
  EXPECT_LE(store.series(kCpuKey).size(), 3u);
}

}  // namespace
}  // namespace headroom::telemetry
