#include "telemetry/availability.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace headroom::telemetry {
namespace {

constexpr SimTime kDay = 86400;
const ServerId kServer{0, 0, 0};

TEST(AvailabilityLedger, RejectsBadDayLength) {
  EXPECT_THROW(AvailabilityLedger(0), std::invalid_argument);
  EXPECT_THROW(AvailabilityLedger(-1), std::invalid_argument);
}

TEST(AvailabilityLedger, UnknownServerIsFullyAvailable) {
  AvailabilityLedger ledger;
  EXPECT_DOUBLE_EQ(ledger.server_availability(kServer, 0), 1.0);
}

TEST(AvailabilityLedger, SimpleOnlineFraction) {
  AvailabilityLedger ledger;
  ledger.record(kServer, 0, kDay / 2, true);
  ledger.record(kServer, kDay / 2, kDay / 2, false);
  EXPECT_DOUBLE_EQ(ledger.server_availability(kServer, 0), 0.5);
}

TEST(AvailabilityLedger, RecordAllMatchesDirectRecording) {
  AvailabilityLedger direct;
  direct.record(kServer, 0, kDay / 2, true);
  direct.record(kServer, kDay / 2, kDay / 4, false);
  direct.record({0, 0, 1}, 0, kDay, true);

  const AvailabilityEvent events[] = {
      {kServer, 0, kDay / 2, true},
      {kServer, kDay / 2, kDay / 4, false},
      {{0, 0, 1}, 0, kDay, true},
  };
  AvailabilityLedger replayed;
  replayed.record_all(events);

  EXPECT_DOUBLE_EQ(replayed.server_availability(kServer, 0),
                   direct.server_availability(kServer, 0));
  EXPECT_DOUBLE_EQ(replayed.pool_availability(0, 0, 0),
                   direct.pool_availability(0, 0, 0));
  EXPECT_DOUBLE_EQ(replayed.fleet_average(), direct.fleet_average());
  EXPECT_EQ(replayed.last_day(), direct.last_day());
}

TEST(AvailabilityLedger, SplitsIntervalsAcrossDayBoundary) {
  AvailabilityLedger ledger;
  // 12h online starting at 18:00 of day 0: 6h on day 0, 6h on day 1.
  ledger.record(kServer, kDay * 3 / 4, kDay / 2, true);
  // Fill the rest of both days offline.
  ledger.record(kServer, 0, kDay * 3 / 4, false);
  ledger.record(kServer, kDay + kDay / 4, kDay * 3 / 4, false);
  EXPECT_DOUBLE_EQ(ledger.server_availability(kServer, 0), 0.25);
  EXPECT_DOUBLE_EQ(ledger.server_availability(kServer, 1), 0.25);
}

TEST(AvailabilityLedger, NegativeArgumentsThrow) {
  AvailabilityLedger ledger;
  EXPECT_THROW(ledger.record(kServer, -1, 10, true), std::invalid_argument);
  EXPECT_THROW(ledger.record(kServer, 0, -10, true), std::invalid_argument);
}

TEST(AvailabilityLedger, PoolAvailabilityAveragesServers) {
  AvailabilityLedger ledger;
  const ServerId a{0, 1, 0};
  const ServerId b{0, 1, 1};
  ledger.record(a, 0, kDay, true);          // 100%
  ledger.record(b, 0, kDay / 2, true);      // 50%
  ledger.record(b, kDay / 2, kDay / 2, false);
  EXPECT_DOUBLE_EQ(ledger.pool_availability(0, 1, 0), 0.75);
}

TEST(AvailabilityLedger, PoolAvailabilityIgnoresOtherPools) {
  AvailabilityLedger ledger;
  ledger.record({0, 1, 0}, 0, kDay, true);
  ledger.record({0, 2, 0}, 0, kDay, false);  // different pool
  EXPECT_DOUBLE_EQ(ledger.pool_availability(0, 1, 0), 1.0);
}

TEST(AvailabilityLedger, AllDailyAvailabilitiesEnumeratesServerDays) {
  AvailabilityLedger ledger;
  ledger.record({0, 0, 0}, 0, kDay, true);
  ledger.record({0, 0, 1}, 0, kDay, false);
  ledger.record({0, 0, 0}, kDay, kDay, true);  // second day
  const auto all = ledger.all_daily_availabilities();
  EXPECT_EQ(all.size(), 3u);
}

TEST(AvailabilityLedger, FleetAverage) {
  AvailabilityLedger ledger;
  ledger.record({0, 0, 0}, 0, kDay, true);
  ledger.record({0, 0, 1}, 0, kDay / 2, true);
  ledger.record({0, 0, 1}, kDay / 2, kDay / 2, false);
  EXPECT_DOUBLE_EQ(ledger.fleet_average(), 0.75);
}

TEST(AvailabilityLedger, EmptyFleetAverageIsOne) {
  AvailabilityLedger ledger;
  EXPECT_DOUBLE_EQ(ledger.fleet_average(), 1.0);
}

TEST(AvailabilityLedger, LastDayAdvances) {
  AvailabilityLedger ledger;
  EXPECT_EQ(ledger.last_day(), 0);
  ledger.record(kServer, kDay * 5, 100, true);
  EXPECT_EQ(ledger.last_day(), 5);
}

TEST(AvailabilityLedger, ShortDayLengthForTests) {
  AvailabilityLedger ledger(100);  // 100-second "days"
  ledger.record(kServer, 0, 350, true);  // spans days 0-3
  EXPECT_EQ(ledger.last_day(), 3);
  EXPECT_DOUBLE_EQ(ledger.server_availability(kServer, 0), 1.0);
  EXPECT_DOUBLE_EQ(ledger.server_availability(kServer, 3), 1.0);
}

}  // namespace
}  // namespace headroom::telemetry
