#include "telemetry/downsample.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "stats/percentile.h"
#include "telemetry/metric_store.h"

namespace headroom::telemetry {
namespace {

TEST(DownsampledTier, RejectsNonPositiveBucketWidth) {
  EXPECT_THROW(DownsampledTier(0), std::invalid_argument);
  EXPECT_THROW(DownsampledTier(-60), std::invalid_argument);
}

TEST(DownsampledTier, FoldsSamplesIntoTimeBuckets) {
  DownsampledTier tier(60);
  tier.fold(0, 1.0);
  tier.fold(30, 2.0);
  tier.fold(59, 3.0);
  tier.fold(60, 4.0);
  tier.fold(300, 5.0);  // gap: no empty buckets materialize in between

  ASSERT_EQ(tier.bucket_count(), 3u);
  EXPECT_EQ(tier.sample_count(), 5u);
  EXPECT_EQ(tier.buckets()[0].start, 0);
  EXPECT_EQ(tier.buckets()[1].start, 60);
  EXPECT_EQ(tier.buckets()[2].start, 300);
  EXPECT_EQ(tier.start(), 0);
  EXPECT_EQ(tier.end(), 360);

  EXPECT_EQ(tier.buckets()[0].digest.count(), 3u);
  EXPECT_DOUBLE_EQ(tier.buckets()[0].digest.sum(), 6.0);
  EXPECT_DOUBLE_EQ(tier.buckets()[0].digest.min(), 1.0);
  EXPECT_DOUBLE_EQ(tier.buckets()[0].digest.max(), 3.0);
}

TEST(DownsampledTier, FoldRejectsSamplesOlderThanNewestBucket) {
  DownsampledTier tier(60);
  tier.fold(120, 1.0);
  // Within the newest bucket is fine (eviction order is per window start,
  // which is non-decreasing bucket-wise).
  tier.fold(140, 2.0);
  EXPECT_THROW(tier.fold(59, 3.0), std::invalid_argument);
}

TEST(DownsampledTier, PromoteIsExactDigestMerge) {
  // Promoting fine buckets into a coarse tier must yield the same sketch as
  // folding the raw samples into the coarse tier directly.
  DownsampledTier fine(3600);
  DownsampledTier direct(86400);
  std::uint64_t state = 0x9E3779B97F4A7C15ull;
  for (SimTime t = 0; t < 2 * 86400; t += 120) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const double v = 10.0 + static_cast<double>(state >> 40) / 1e4;
    fine.fold(t, v);
    direct.fold(t, v);
  }

  DownsampledTier promoted(86400);
  const std::size_t moved = fine.promote_into(promoted, 2 * 86400);
  EXPECT_EQ(moved, 48u);
  EXPECT_TRUE(fine.empty());
  EXPECT_EQ(fine.sample_count(), 0u);

  ASSERT_EQ(promoted.bucket_count(), direct.bucket_count());
  EXPECT_EQ(promoted.sample_count(), direct.sample_count());
  for (std::size_t i = 0; i < promoted.bucket_count(); ++i) {
    EXPECT_EQ(promoted.buckets()[i].start, direct.buckets()[i].start);
    EXPECT_TRUE(promoted.buckets()[i].digest == direct.buckets()[i].digest);
  }
}

TEST(DownsampledTier, PromoteHonorsCutoffAndTierOrder) {
  DownsampledTier fine(3600);
  for (SimTime t = 0; t < 3 * 3600; t += 1200) fine.fold(t, 1.0);

  DownsampledTier coarse(86400);
  // Cutoff mid-second-bucket: only the first (fully ended) bucket moves.
  EXPECT_EQ(fine.promote_into(coarse, 2 * 3600 - 1), 1u);
  EXPECT_EQ(fine.bucket_count(), 2u);
  EXPECT_EQ(coarse.sample_count(), 3u);

  DownsampledTier finer(60);
  EXPECT_THROW(fine.promote_into(finer, 86400), std::invalid_argument);
}

TEST(DownsampledTier, BucketRangeFindsOverlaps) {
  DownsampledTier tier(60);
  for (SimTime t = 0; t < 600; t += 60) tier.fold(t, 1.0);

  // Whole span.
  auto [a0, a1] = tier.bucket_range(0, 600);
  EXPECT_EQ(a0, 0u);
  EXPECT_EQ(a1, 10u);
  // Straddling partial buckets on both sides.
  auto [b0, b1] = tier.bucket_range(90, 250);
  EXPECT_EQ(b0, 1u);
  EXPECT_EQ(b1, 5u);
  // Empty and out-of-range requests.
  auto [c0, c1] = tier.bucket_range(600, 9000);
  EXPECT_EQ(c0, c1);
  auto [d0, d1] = tier.bucket_range(100, 100);
  EXPECT_EQ(d0, d1);
}

TEST(DownsampledTier, MemoryBytesTracksOccupancy) {
  DownsampledTier tier(3600);
  EXPECT_EQ(tier.memory_bytes(), 0u);
  for (SimTime t = 0; t < 7200; t += 120) {
    tier.fold(t, 50.0 + static_cast<double>(t % 977));
  }
  EXPECT_GT(tier.memory_bytes(), 0u);
  const std::size_t before = tier.memory_bytes();
  tier.clear();
  EXPECT_EQ(tier.sample_count(), 0u);
  EXPECT_LE(tier.memory_bytes(), before);  // capacity may be retained
}

TEST(MetricStoreTiering, SweepFoldsEvictedSamplesIntoWindowTier) {
  MetricStore store;
  MetricStore::TieringPolicy policy;
  policy.window_bucket_seconds = 3600;
  policy.day_bucket_seconds = 86400;
  policy.window_tier_retention = 7 * 86400;
  store.set_tiering(policy);
  store.set_retention(3600);  // keep one hour raw

  const SeriesKey key{0, 0, SeriesKey::kPoolScope,
                      MetricKind::kCpuPercentTotal};
  std::vector<double> values;
  for (SimTime t = 0; t < 4 * 3600; t += 120) {
    const double v = 40.0 + static_cast<double>((t / 120) % 13);
    store.record(key, t, v);
    values.push_back(v);
  }

  // Raw coverage is the trailing hour; everything older lives in the tier.
  EXPECT_GT(store.evicted_before(), 0);
  const DownsampledTier& window = store.window_tier(key);
  EXPECT_FALSE(window.empty());
  std::size_t tiered = 0;
  for (const auto& bucket : window.buckets()) tiered += bucket.digest.count();
  EXPECT_EQ(tiered + store.series(key).size(), values.size());

  // Tier moments are exact: the first (fully evicted) hour's bucket matches
  // a direct scan of the raw values that were folded into it.
  const auto& first = window.buckets().front();
  ASSERT_EQ(first.start, 0);
  double sum = 0.0;
  for (std::size_t i = 0; i < 30; ++i) sum += values[i];
  EXPECT_EQ(first.digest.count(), 30u);
  EXPECT_DOUBLE_EQ(first.digest.sum(), sum);
}

TEST(MetricStoreTiering, EvictionMidBucketSplitsWithoutLossOrOverlap) {
  // drop_front lands mid-tier-bucket: the bucket keeps accumulating across
  // several sweeps and no sample is double-counted or lost.
  MetricStore store;
  store.set_tiering({});
  store.set_retention(1000);  // not a multiple of the 3600 s bucket width

  const SeriesKey key{1, 2, SeriesKey::kPoolScope,
                      MetricKind::kRequestsPerSecond};
  const SimTime horizon = 3 * 3600;
  for (SimTime t = 0; t < horizon; t += 120) {
    store.record(key, t, static_cast<double>(t));
  }

  const DownsampledTier& window = store.window_tier(key);
  std::size_t tiered = 0;
  for (const auto& bucket : window.buckets()) tiered += bucket.digest.count();
  EXPECT_EQ(tiered, window.sample_count());
  EXPECT_EQ(tiered + store.series(key).size(),
            static_cast<std::size_t>(horizon / 120));
  // The newest tier bucket ends exactly at the eviction cutoff's bucket:
  // nothing at or past evicted_before() has been folded.
  EXPECT_LE(window.end() - 3600, store.evicted_before());
  const TimeSeries& raw = store.series(key);
  for (std::size_t i = 0; i < raw.size(); ++i) {
    EXPECT_GE(raw.time_at(i), store.evicted_before());
  }
}

TEST(MetricStoreTiering, PromotionMovesOldWindowsToDayTier) {
  MetricStore store;
  MetricStore::TieringPolicy policy;
  policy.window_bucket_seconds = 3600;
  policy.day_bucket_seconds = 86400;
  policy.window_tier_retention = 86400;  // promote after one day
  store.set_tiering(policy);
  store.set_retention(7200);

  const SeriesKey key{0, 0, SeriesKey::kPoolScope,
                      MetricKind::kLatencyP95Ms};
  for (SimTime t = 0; t < 3 * 86400; t += 600) {
    store.record(key, t, 5.0 + static_cast<double>((t / 600) % 7));
  }

  const DownsampledTier& window = store.window_tier(key);
  const DownsampledTier& day = store.day_tier(key);
  ASSERT_FALSE(day.empty());
  EXPECT_EQ(day.bucket_seconds(), 86400);
  // The tiers are time-ordered: promotion moves the oldest window buckets,
  // so every surviving window bucket starts after the last day bucket does
  // (the last day bucket may be partially filled — samples stay disjoint,
  // which the conservation check below pins).
  EXPECT_GT(window.start(), day.buckets().back().start);
  // Nothing went missing across raw, window tier, and day tier.
  EXPECT_EQ(store.series(key).size() + window.sample_count() +
                day.sample_count(),
            static_cast<std::size_t>(3 * 86400 / 600));
  EXPECT_GT(store.tier_memory_bytes(), 0u);
}

TEST(MetricStoreTiering, DigestQuantileWithinRelativeAccuracyOfExact) {
  // Pinned tolerance: tier p95 vs exact stats::percentile of the same
  // samples, within the digest's advertised relative accuracy (plus a hair
  // of float slack).
  DownsampledTier tier(86400);
  std::vector<double> values;
  std::uint64_t state = 42;
  for (SimTime t = 0; t < 86400; t += 120) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const double v = 1.0 + static_cast<double>(state >> 33) / 1e6;
    tier.fold(t, v);
    values.push_back(v);
  }
  const double exact = stats::percentile(values, 95.0);
  const double approx = tier.buckets().front().digest.percentile(95.0);
  const double alpha = tier.buckets().front().digest.relative_accuracy();
  EXPECT_NEAR(approx, exact, exact * (2.0 * alpha + 1e-12));
}

TEST(MetricStoreTiering, AccessorsAreSafeWhenDisabledOrAbsent) {
  MetricStore store;
  const SeriesKey key{0, 0, SeriesKey::kPoolScope,
                      MetricKind::kActiveServers};
  EXPECT_FALSE(store.tiering_enabled());
  EXPECT_TRUE(store.window_tier(key).empty());
  EXPECT_TRUE(store.day_tier(key).empty());
  EXPECT_EQ(store.tier_memory_bytes(), 0u);
  EXPECT_THROW(static_cast<void>(store.tiering_policy()), std::logic_error);

  store.set_tiering({});
  EXPECT_TRUE(store.tiering_enabled());
  EXPECT_THROW(store.set_tiering({}), std::logic_error);
  MetricStore::TieringPolicy inverted;
  inverted.window_bucket_seconds = 86400;
  inverted.day_bucket_seconds = 3600;
  MetricStore other;
  EXPECT_THROW(other.set_tiering(inverted), std::invalid_argument);

  // Promotion folds whole window buckets, so the day width must be a
  // multiple of the window width — a ragged policy would misattribute
  // straddling buckets in time.
  MetricStore::TieringPolicy ragged;
  ragged.window_bucket_seconds = 3600;
  ragged.day_bucket_seconds = 5000;
  MetricStore third;
  EXPECT_THROW(third.set_tiering(ragged), std::invalid_argument);
}

}  // namespace
}  // namespace headroom::telemetry
