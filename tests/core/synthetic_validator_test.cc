#include "core/synthetic_validator.h"

#include <gtest/gtest.h>

#include <random>

namespace headroom::core {
namespace {

telemetry::AlignedPair profile(double latency_scale, double cpu_scale,
                               std::uint64_t seed, bool cpu, double lo = 50.0,
                               double hi = 400.0) {
  telemetry::AlignedPair pair;
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> noise(0.0, 0.3);
  for (int i = 0; i < 300; ++i) {
    const double rps = lo + (hi - lo) * static_cast<double>(i % 100) / 99.0;
    pair.x.push_back(rps);
    if (cpu) {
      pair.y.push_back((0.03 * rps + 2.0) * cpu_scale + noise(rng) * 0.1);
    } else {
      pair.y.push_back((25.0 + 0.01 * rps) * latency_scale + noise(rng));
    }
  }
  return pair;
}

TEST(SyntheticValidator, AcceptsMatchingProfiles) {
  const SyntheticWorkloadValidator validator;
  const ProfileComparison cmp = validator.compare(
      profile(1.0, 1.0, 1, false), profile(1.0, 1.0, 2, false),
      profile(1.0, 1.0, 3, true), profile(1.0, 1.0, 4, true));
  EXPECT_TRUE(cmp.equivalent);
  EXPECT_LT(cmp.worst_latency_gap_frac, 0.10);
  EXPECT_LT(cmp.worst_cpu_gap_frac, 0.10);
  EXPECT_GE(cmp.coverage, 0.9);
}

TEST(SyntheticValidator, RejectsLatencyMismatch) {
  // Synthetic workload 30% too cheap -> latency profile sits 30% low.
  const SyntheticWorkloadValidator validator;
  const ProfileComparison cmp = validator.compare(
      profile(1.0, 1.0, 5, false), profile(0.7, 1.0, 6, false),
      profile(1.0, 1.0, 7, true), profile(1.0, 1.0, 8, true));
  EXPECT_FALSE(cmp.equivalent);
  EXPECT_GT(cmp.worst_latency_gap_frac, 0.2);
}

TEST(SyntheticValidator, RejectsCpuMismatch) {
  const SyntheticWorkloadValidator validator;
  const ProfileComparison cmp = validator.compare(
      profile(1.0, 1.0, 9, false), profile(1.0, 1.0, 10, false),
      profile(1.0, 1.0, 11, true), profile(1.0, 1.4, 12, true));
  EXPECT_FALSE(cmp.equivalent);
  EXPECT_GT(cmp.worst_cpu_gap_frac, 0.2);
}

TEST(SyntheticValidator, RejectsInsufficientCoverage) {
  // Synthetic stream only exercised the bottom fifth of the load range:
  // even if those buckets match, the comparison must not pass.
  const SyntheticWorkloadValidator validator;
  const ProfileComparison cmp = validator.compare(
      profile(1.0, 1.0, 13, false, 50.0, 400.0),
      profile(1.0, 1.0, 14, false, 50.0, 110.0),
      profile(1.0, 1.0, 15, true, 50.0, 400.0),
      profile(1.0, 1.0, 16, true, 50.0, 110.0));
  EXPECT_FALSE(cmp.equivalent);
  EXPECT_LT(cmp.coverage, 0.6);
}

TEST(SyntheticValidator, EmptyProfilesAreNotEquivalent) {
  const SyntheticWorkloadValidator validator;
  const telemetry::AlignedPair empty;
  const ProfileComparison cmp =
      validator.compare(empty, empty, empty, empty);
  EXPECT_FALSE(cmp.equivalent);
}

TEST(SyntheticValidator, BucketsSpanLoadRange) {
  const SyntheticWorkloadValidator validator;
  const ProfileComparison cmp = validator.compare(
      profile(1.0, 1.0, 17, false), profile(1.0, 1.0, 18, false),
      profile(1.0, 1.0, 19, true), profile(1.0, 1.0, 20, true));
  ASSERT_EQ(cmp.buckets.size(), 6u);
  EXPECT_NEAR(cmp.buckets.front().rps_lo, 50.0, 2.0);
  EXPECT_NEAR(cmp.buckets.back().rps_hi, 400.0, 2.0);
  for (std::size_t i = 1; i < cmp.buckets.size(); ++i) {
    EXPECT_DOUBLE_EQ(cmp.buckets[i].rps_lo, cmp.buckets[i - 1].rps_hi);
  }
}

TEST(SyntheticValidator, ToleranceOptionsRespected) {
  SyntheticValidatorOptions lax;
  lax.latency_tolerance_frac = 0.5;
  lax.cpu_tolerance_frac = 0.5;
  const SyntheticWorkloadValidator validator(lax);
  const ProfileComparison cmp = validator.compare(
      profile(1.0, 1.0, 21, false), profile(0.8, 1.0, 22, false),
      profile(1.0, 1.0, 23, true), profile(1.0, 1.2, 24, true));
  EXPECT_TRUE(cmp.equivalent);  // 20% gaps pass under 50% tolerance
}

}  // namespace
}  // namespace headroom::core
