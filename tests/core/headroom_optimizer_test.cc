#include "core/headroom_optimizer.h"

#include <gtest/gtest.h>

namespace headroom::core {
namespace {

// Pool-B-shaped fitted model.
PoolResponseModel pool_b_model() {
  telemetry::AlignedPair cpu;
  telemetry::AlignedPair latency;
  for (int i = 0; i < 200; ++i) {
    const double rps = 150.0 + 500.0 * static_cast<double>(i) / 199.0;
    cpu.x.push_back(rps);
    cpu.y.push_back(0.028 * rps + 1.37);
    latency.x.push_back(rps);
    latency.y.push_back(4.028e-5 * rps * rps - 0.031 * rps + 36.68);
  }
  return PoolResponseModel::fit(cpu, latency);
}

HeadroomPolicy relaxed_policy(double slo_ms) {
  HeadroomPolicy policy;
  policy.qos.latency.p95_ms = slo_ms;
  policy.dr_headroom_fraction = 0.125;
  policy.forecast_margin_fraction = 0.05;
  policy.maintenance_unavailable_fraction = 0.02;
  policy.max_extrapolation = 2.0;
  return policy;
}

TEST(HeadroomOptimizer, RejectsBadInputs) {
  EXPECT_THROW(HeadroomOptimizer(HeadroomPolicy{.qos = {{0.0}, {}}}),
               std::invalid_argument);
  const HeadroomOptimizer opt(relaxed_policy(33.5));
  const PoolResponseModel model = pool_b_model();
  EXPECT_THROW((void)opt.plan(model, 377.0, 0), std::invalid_argument);
  EXPECT_THROW((void)opt.plan(model, 0.0, 100), std::invalid_argument);
}

TEST(HeadroomOptimizer, StressMultiplierComposes) {
  const HeadroomOptimizer opt(relaxed_policy(33.5));
  // (1+0.125) * (1+0.05) / (1-0.02) ≈ 1.205
  EXPECT_NEAR(opt.stress_multiplier(), 1.205, 0.002);
}

TEST(HeadroomOptimizer, PoolBPlanSavesServersWithinSlo) {
  const HeadroomOptimizer opt(relaxed_policy(33.5));
  const HeadroomPlan plan = opt.plan(pool_b_model(), 377.0, 100);
  EXPECT_LT(plan.recommended_servers, 100u);
  EXPECT_GT(plan.efficiency_savings(), 0.10);
  // Predicted latency at the new operating point within SLO:
  EXPECT_LE(plan.predicted_latency_after_ms, 33.5);
  // And even under the stressed (DR + forecast + maintenance) load:
  EXPECT_LE(plan.predicted_latency_stressed_ms, 33.5 + 1e-9);
}

TEST(HeadroomOptimizer, TighterSloSavesLess) {
  const PoolResponseModel model = pool_b_model();
  const HeadroomPlan generous =
      HeadroomOptimizer(relaxed_policy(33.5)).plan(model, 377.0, 100);
  const HeadroomPlan tight =
      HeadroomOptimizer(relaxed_policy(31.2)).plan(model, 377.0, 100);
  EXPECT_LE(tight.efficiency_savings(), generous.efficiency_savings());
}

TEST(HeadroomOptimizer, ImpossibleSloKeepsEverything) {
  const HeadroomPlan plan =
      HeadroomOptimizer(relaxed_policy(25.0)).plan(pool_b_model(), 377.0, 100);
  // The anchor itself violates a 25 ms SLO (latency ≈ 30.7): no cut.
  EXPECT_EQ(plan.recommended_servers, 100u);
  EXPECT_DOUBLE_EQ(plan.efficiency_savings(), 0.0);
}

TEST(HeadroomOptimizer, MoreDrHeadroomMeansMoreServers) {
  const PoolResponseModel model = pool_b_model();
  HeadroomPolicy small_dr = relaxed_policy(33.5);
  small_dr.dr_headroom_fraction = 0.0;
  HeadroomPolicy big_dr = relaxed_policy(33.5);
  big_dr.dr_headroom_fraction = 0.30;
  const HeadroomPlan small_plan =
      HeadroomOptimizer(small_dr).plan(model, 377.0, 100);
  const HeadroomPlan big_plan =
      HeadroomOptimizer(big_dr).plan(model, 377.0, 100);
  EXPECT_LT(small_plan.recommended_servers, big_plan.recommended_servers);
}

TEST(HeadroomOptimizer, LatencyImpactIsDeltaAtAnchorLoad) {
  const HeadroomPlan plan =
      HeadroomOptimizer(relaxed_policy(33.5)).plan(pool_b_model(), 377.0, 100);
  EXPECT_NEAR(plan.latency_impact_ms(),
              plan.predicted_latency_after_ms - plan.predicted_latency_before_ms,
              1e-12);
  // Pool B's published impact is ~2 ms.
  EXPECT_GE(plan.latency_impact_ms(), -1.0);
  EXPECT_LE(plan.latency_impact_ms(), 4.0);
}

TEST(HeadroomOptimizer, RecommendedNeverExceedsCurrent) {
  const PoolResponseModel model = pool_b_model();
  for (std::size_t servers : {10u, 50u, 250u}) {
    const HeadroomPlan plan =
        HeadroomOptimizer(relaxed_policy(40.0)).plan(model, 377.0, servers);
    EXPECT_LE(plan.recommended_servers, servers);
    EXPECT_GE(plan.recommended_servers, 1u);
  }
}

TEST(HeadroomOptimizer, StressedLoadReflectsPolicy) {
  const HeadroomOptimizer opt(relaxed_policy(33.5));
  const HeadroomPlan plan = opt.plan(pool_b_model(), 377.0, 100);
  const double total = 377.0 * 100.0;
  const double after =
      total / static_cast<double>(plan.recommended_servers);
  EXPECT_NEAR(plan.stressed_rps_per_server, after * opt.stress_multiplier(),
              1e-9);
}

}  // namespace
}  // namespace headroom::core
