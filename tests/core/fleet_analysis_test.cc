#include "core/fleet_analysis.h"

#include <gtest/gtest.h>

namespace headroom::core {
namespace {

sim::ServerDayCpu day_with(double mean, double p95, double max) {
  sim::ServerDayCpu d;
  d.cpu.mean = mean;
  d.cpu.p95 = p95;
  d.cpu.max = max;
  d.cpu.count = 720;
  return d;
}

TEST(FleetAnalysis, EmptyInputYieldsZeroReport) {
  const FleetUtilizationReport report = analyze_fleet_utilization({});
  EXPECT_EQ(report.server_days, 0u);
  EXPECT_EQ(report.global_utilization_pct, 0.0);
}

TEST(FleetAnalysis, GlobalUtilizationIsMeanOfMeans) {
  std::vector<sim::ServerDayCpu> days;
  days.push_back(day_with(10.0, 15.0, 20.0));
  days.push_back(day_with(30.0, 45.0, 60.0));
  const FleetUtilizationReport report = analyze_fleet_utilization(days);
  EXPECT_DOUBLE_EQ(report.global_utilization_pct, 20.0);
  EXPECT_DOUBLE_EQ(report.headroom_upper_bound(), 0.80);
}

TEST(FleetAnalysis, Fig12Checkpoints) {
  // Paper-shaped fleet: 60% of servers at P95 <= 15, 80% < 30, 15% spiky.
  std::vector<sim::ServerDayCpu> days;
  for (int i = 0; i < 60; ++i) days.push_back(day_with(8.0, 12.0, 25.0));
  for (int i = 0; i < 20; ++i) days.push_back(day_with(15.0, 25.0, 35.0));
  for (int i = 0; i < 15; ++i) days.push_back(day_with(35.0, 60.0, 85.0));
  for (int i = 0; i < 5; ++i) days.push_back(day_with(20.0, 28.0, 55.0));
  const FleetUtilizationReport report = analyze_fleet_utilization(days);
  EXPECT_NEAR(report.fraction_p95_at_or_below_15, 0.60, 1e-12);
  EXPECT_NEAR(report.fraction_p95_at_or_below_30, 0.85, 1e-12);
  EXPECT_NEAR(report.fraction_max_above_40, 0.20, 1e-12);
}

TEST(FleetAnalysis, CdfIsMonotone) {
  std::vector<sim::ServerDayCpu> days;
  for (int i = 0; i < 50; ++i) {
    days.push_back(day_with(10.0, static_cast<double>(i), 50.0));
  }
  const auto cdf = p95_cpu_cdf(days);
  ASSERT_FALSE(cdf.empty());
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].value, cdf[i - 1].value);
    EXPECT_GE(cdf[i].fraction, cdf[i - 1].fraction);
  }
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
}

TEST(FleetAnalysis, SampleCheckpointsFromHistogram) {
  stats::Histogram hist(0.0, 100.0, 100);
  // 990 samples below 25, 9 in (25,40], 1 above 40.
  for (int i = 0; i < 990; ++i) hist.add(10.0);
  for (int i = 0; i < 9; ++i) hist.add(30.0);
  hist.add(45.0);
  const SampleDistributionCheckpoints c = sample_checkpoints(hist);
  EXPECT_NEAR(c.fraction_above_25, 0.01, 1e-3);     // paper: ~1%
  EXPECT_NEAR(c.fraction_above_40, 0.001, 1e-4);    // paper: <0.1%
  EXPECT_NEAR(c.fraction_above_50, 0.0, 1e-4);
}

}  // namespace
}  // namespace headroom::core
