// RollingPoolPlanner: the O(1)-per-window incremental fits behind serve
// mode's per-window recommendations. The invariants under test: the
// running-sum OLS recovers the generating curves exactly (and matches the
// batch fitter on the same ring), eviction forgets the pre-lookback
// regime, periodic rebuilds bound floating-point drift, and plan() only
// speaks once the ring holds enough windows to trust.
#include "core/rolling_plan.h"

#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <stdexcept>

#include "core/pool_model.h"
#include "telemetry/time_series.h"

namespace headroom::core {
namespace {

HeadroomPolicy test_policy() {
  HeadroomPolicy policy;
  policy.qos.latency.p95_ms = 100.0;
  return policy;
}

RollingPoolPlanner::Options small_ring(std::size_t lookback,
                                       std::size_t min_windows = 4) {
  RollingPoolPlanner::Options opt;
  opt.lookback_windows = lookback;
  opt.min_windows = min_windows;
  return opt;
}

double cpu_curve(double rps) { return 2.0 + 0.03 * rps; }
double latency_curve(double rps) {
  return 20.0 + 0.004 * rps + 0.00002 * rps * rps;
}

TEST(RollingPoolPlanner, RejectsZeroLookback) {
  EXPECT_THROW(RollingPoolPlanner(test_policy(), small_ring(0)),
               std::invalid_argument);
}

TEST(RollingPoolPlanner, NoPlanBelowMinWindows) {
  RollingPoolPlanner planner(test_policy(), small_ring(64, 4));
  for (int i = 0; i < 3; ++i) {
    planner.add_window(100.0 + i, cpu_curve(100.0 + i),
                       latency_curve(100.0 + i));
    EXPECT_EQ(planner.plan(10), std::nullopt) << "after window " << i;
  }
  planner.add_window(104.0, cpu_curve(104.0), latency_curve(104.0));
  EXPECT_TRUE(planner.plan(10).has_value());
  EXPECT_EQ(planner.plan(0), std::nullopt);  // no servers, no plan
}

TEST(RollingPoolPlanner, RecoversGeneratingCurvesExactly) {
  RollingPoolPlanner planner(test_policy(), small_ring(256));
  for (int i = 0; i < 100; ++i) {
    const double rps = 80.0 + 1.7 * i;
    planner.add_window(rps, cpu_curve(rps), latency_curve(rps));
  }
  const PoolResponseModel model = planner.model();
  for (const double rps : {90.0, 150.0, 230.0}) {
    EXPECT_NEAR(model.predict_cpu_pct(rps), cpu_curve(rps), 1e-6);
    EXPECT_NEAR(model.predict_latency_ms(rps), latency_curve(rps), 1e-6);
  }
  EXPECT_GT(model.cpu_fit().r_squared, 0.999);
  EXPECT_GT(model.latency_fit().r_squared, 0.999);
}

TEST(RollingPoolPlanner, MatchesTheBatchFitterOnTheSameRing) {
  RollingPoolPlanner planner(test_policy(), small_ring(256));
  telemetry::AlignedPair rps_vs_cpu;
  telemetry::AlignedPair rps_vs_latency;
  for (int i = 0; i < 64; ++i) {
    // Deterministic wobble so neither fit is exact — the comparison is
    // between two fitting procedures, not against the ground truth.
    const double rps = 100.0 + 2.0 * i;
    const double wobble = (i % 7 - 3) * 0.05;
    const double cpu = cpu_curve(rps) + wobble;
    const double latency = latency_curve(rps) - wobble;
    planner.add_window(rps, cpu, latency);
    rps_vs_cpu.x.push_back(rps);
    rps_vs_cpu.y.push_back(cpu);
    rps_vs_latency.x.push_back(rps);
    rps_vs_latency.y.push_back(latency);
  }
  PoolModelOptions plain;
  plain.ransac_threshold_ms = 0.0;  // plain least squares, like the sums
  const PoolResponseModel batch =
      PoolResponseModel::fit(rps_vs_cpu, rps_vs_latency, plain);
  const PoolResponseModel rolling = planner.model();
  for (const double rps : {110.0, 160.0, 220.0}) {
    EXPECT_NEAR(rolling.predict_cpu_pct(rps), batch.predict_cpu_pct(rps),
                1e-7);
    EXPECT_NEAR(rolling.predict_latency_ms(rps),
                batch.predict_latency_ms(rps), 1e-6);
  }
}

TEST(RollingPoolPlanner, EvictionForgetsThePreLookbackRegime) {
  const std::size_t lookback = 32;
  RollingPoolPlanner planner(test_policy(), small_ring(lookback));
  // Regime A: steep latency. Entirely evicted by the end of the test.
  for (int i = 0; i < 64; ++i) {
    const double rps = 100.0 + i;
    planner.add_window(rps, cpu_curve(rps), 200.0 + 3.0 * rps);
  }
  // Regime B: the gentle curve, filling the whole ring.
  for (int i = 0; i < 64; ++i) {
    const double rps = 100.0 + i;
    planner.add_window(rps, cpu_curve(rps), latency_curve(rps));
  }
  EXPECT_EQ(planner.size(), lookback);
  const PoolResponseModel model = planner.model();
  EXPECT_NEAR(model.predict_latency_ms(140.0), latency_curve(140.0), 1e-5);
}

TEST(RollingPoolPlanner, PeriodicRebuildWashesOutDrift) {
  const std::size_t lookback = 16;
  RollingPoolPlanner planner(test_policy(), small_ring(lookback));
  // Thousands of evictions of awkward magnitudes accumulate subtraction
  // error in the running sums; the periodic rebuild bounds it.
  for (int i = 0; i < 5000; ++i) {
    const double rps = 1000.0 + 900.0 * std::sin(0.1 * i);
    planner.add_window(rps, cpu_curve(rps), latency_curve(rps));
  }
  EXPECT_GE(planner.rebuilds(), (5000u - lookback) / lookback);
  // A fresh planner fed only the resident windows is the drift-free
  // reference; the long-lived planner must still agree closely.
  RollingPoolPlanner fresh(test_policy(), small_ring(lookback));
  for (int i = 5000 - static_cast<int>(lookback); i < 5000; ++i) {
    const double rps = 1000.0 + 900.0 * std::sin(0.1 * i);
    fresh.add_window(rps, cpu_curve(rps), latency_curve(rps));
  }
  const PoolResponseModel aged = planner.model();
  const PoolResponseModel reference = fresh.model();
  for (const double rps : {400.0, 1000.0, 1800.0}) {
    EXPECT_NEAR(aged.predict_latency_ms(rps),
                reference.predict_latency_ms(rps), 1e-5);
    EXPECT_NEAR(aged.predict_cpu_pct(rps), reference.predict_cpu_pct(rps),
                1e-6);
  }
}

TEST(RollingPoolPlanner, ConstantLoadFallsBackToFlatFits) {
  RollingPoolPlanner planner(test_policy(), small_ring(64));
  for (int i = 0; i < 10; ++i) {
    planner.add_window(100.0, 5.0, 30.0);  // zero variance in x
  }
  const PoolResponseModel model = planner.model();
  EXPECT_DOUBLE_EQ(model.predict_cpu_pct(100.0), 5.0);
  EXPECT_DOUBLE_EQ(model.predict_cpu_pct(500.0), 5.0);
  EXPECT_DOUBLE_EQ(model.predict_latency_ms(500.0), 30.0);
}

TEST(RollingPoolPlanner, SlackLatencyMeansAReductionPlan) {
  RollingPoolPlanner planner(test_policy(), small_ring(256, 8));
  for (int i = 0; i < 64; ++i) {
    const double rps = 100.0 + i;
    planner.add_window(rps, cpu_curve(rps), latency_curve(rps));
  }
  const std::optional<HeadroomPlan> plan = planner.plan(24);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->current_servers, 24u);
  EXPECT_GE(plan->recommended_servers, 1u);
  // Latency ~25 ms against a 100 ms SLO: the pool is oversized.
  EXPECT_LT(plan->recommended_servers, 24u);
  // Headroom demands push the stressed operating point above the anchor.
  EXPECT_GT(plan->stressed_rps_per_server, plan->anchor_rps_per_server);
}

}  // namespace
}  // namespace headroom::core
