#include "core/regression_gate.h"

#include <gtest/gtest.h>

namespace headroom::core {
namespace {

workload::SyntheticWorkload gate_workload() {
  workload::RequestType t;
  t.name = "page";
  t.weight = 1.0;
  t.cost_mean = 1.0;
  t.cost_sigma = 0.15;
  return workload::SyntheticWorkload(workload::RequestMix({t}));
}

sim::RequestSimConfig pool_config() {
  sim::RequestSimConfig config;
  config.servers = 4;
  config.cores = 8.0;
  config.base_service_ms = 5.0;
  config.warmup_requests = 50;
  config.window_seconds = 10;
  return config;
}

GateOptions fast_gate() {
  GateOptions opt;
  opt.nominal_rps_per_server = 800.0;  // ~50% utilization at nominal
  opt.step_duration_s = 20.0;
  opt.latency_threshold_ms = 1.5;
  opt.latency_threshold_frac = 0.05;
  opt.cpu_threshold_pct = 2.0;
  return opt;
}

TEST(RegressionGate, RequiresIdenticalPools) {
  const RegressionGate gate(fast_gate());
  sim::RequestSimConfig bigger = pool_config();
  bigger.servers = 8;
  EXPECT_THROW((void)gate.evaluate(pool_config(), bigger, gate_workload()),
               std::invalid_argument);
}

TEST(RegressionGate, IdenticalBuildsPass) {
  const RegressionGate gate(fast_gate());
  const GateResult result =
      gate.evaluate(pool_config(), pool_config(), gate_workload());
  EXPECT_TRUE(result.pass);
  ASSERT_EQ(result.steps.size(), 8u);  // default ladder
  for (const LoadStepComparison& step : result.steps) {
    EXPECT_FALSE(step.latency_regressed);
    EXPECT_FALSE(step.cpu_regressed);
    // Identical pools on identical streams: byte-identical results.
    EXPECT_DOUBLE_EQ(step.baseline_latency_p95_ms,
                     step.candidate_latency_p95_ms);
  }
  EXPECT_DOUBLE_EQ(result.max_clean_rps, result.steps.back().rps_per_server);
}

TEST(RegressionGate, FlatCpuRegressionCaught) {
  const RegressionGate gate(fast_gate());
  sim::RequestSimConfig candidate = pool_config();
  candidate.defect.service_factor = 1.25;  // +25% CPU per request
  const GateResult result =
      gate.evaluate(pool_config(), candidate, gate_workload());
  EXPECT_FALSE(result.pass);
  bool any_cpu_flag = false;
  for (const auto& step : result.steps) any_cpu_flag |= step.cpu_regressed;
  EXPECT_TRUE(any_cpu_flag);
}

TEST(RegressionGate, LoadDependentLatencyRegressionCaught) {
  // The paper's Fig. 16 bug class: fine at low load, blows up under load.
  const RegressionGate gate(fast_gate());
  sim::RequestSimConfig candidate = pool_config();
  candidate.defect.overload_concurrency = 24;
  candidate.defect.overload_extra_ms = 30.0;
  const GateResult result =
      gate.evaluate(pool_config(), candidate, gate_workload());
  EXPECT_FALSE(result.pass);
  // Low steps clean, high steps regressed.
  EXPECT_FALSE(result.steps.front().latency_regressed);
  EXPECT_TRUE(result.steps.back().latency_regressed);
  EXPECT_LT(result.max_clean_rps, result.steps.back().rps_per_server);
}

TEST(RegressionGate, DeltaCurveQuantifiesMagnitude) {
  const RegressionGate gate(fast_gate());
  sim::RequestSimConfig candidate = pool_config();
  candidate.defect.overload_concurrency = 24;
  candidate.defect.overload_extra_ms = 30.0;
  const GateResult result =
      gate.evaluate(pool_config(), candidate, gate_workload());
  // The fitted delta curve must predict a bigger delta at high load than
  // low load — "we also determine the curve describing the change".
  const double lo = result.steps.front().rps_per_server;
  const double hi = result.steps.back().rps_per_server;
  EXPECT_GT(result.delta_curve.predict(hi), result.delta_curve.predict(lo) + 3.0);
}

TEST(RegressionGate, ImprovementIsNotARegression) {
  const RegressionGate gate(fast_gate());
  sim::RequestSimConfig candidate = pool_config();
  candidate.defect.service_factor = 0.8;  // the change makes things faster
  const GateResult result =
      gate.evaluate(pool_config(), candidate, gate_workload());
  EXPECT_TRUE(result.pass);
}

TEST(RegressionGate, CustomLadderRespected) {
  GateOptions opt = fast_gate();
  opt.rps_per_server_steps = {100.0, 500.0, 900.0};
  const RegressionGate gate(opt);
  const GateResult result =
      gate.evaluate(pool_config(), pool_config(), gate_workload());
  ASSERT_EQ(result.steps.size(), 3u);
  EXPECT_DOUBLE_EQ(result.steps[0].rps_per_server, 100.0);
  EXPECT_DOUBLE_EQ(result.steps[2].rps_per_server, 900.0);
}

TEST(RegressionGate, SmallDeltasBelowThresholdPass) {
  GateOptions opt = fast_gate();
  opt.latency_threshold_ms = 50.0;  // very lax
  opt.latency_threshold_frac = 2.0;
  opt.cpu_threshold_pct = 50.0;
  const RegressionGate gate(opt);
  sim::RequestSimConfig candidate = pool_config();
  candidate.defect.service_factor = 1.05;
  const GateResult result =
      gate.evaluate(pool_config(), candidate, gate_workload());
  EXPECT_TRUE(result.pass);
}

}  // namespace
}  // namespace headroom::core
