#include "core/availability_analyzer.h"

#include <gtest/gtest.h>

namespace headroom::core {
namespace {

constexpr telemetry::SimTime kDay = 86400;

// Records `fraction` of a day online for server (pool, index) on `day`.
void record_day(telemetry::AvailabilityLedger* ledger, std::uint32_t pool,
                std::uint32_t server, std::int64_t day, double fraction) {
  const auto online = static_cast<telemetry::SimTime>(fraction * kDay);
  ledger->record({0, pool, server}, day * kDay, online, true);
  ledger->record({0, pool, server}, day * kDay + online, kDay - online, false);
}

TEST(AvailabilityAnalyzer, EmptyLedgerIsPerfect) {
  const telemetry::AvailabilityLedger ledger;
  const AvailabilityAnalyzer analyzer;
  const AvailabilityReport report = analyzer.analyze(ledger);
  EXPECT_DOUBLE_EQ(report.fleet_average, 1.0);
  EXPECT_DOUBLE_EQ(report.planned_overhead(), 0.0);
  EXPECT_TRUE(report.daily_availabilities.empty());
}

TEST(AvailabilityAnalyzer, PaperShapedFleet) {
  // 60% of server-days at 98% (well managed), 30% at 85% (heavy deploys),
  // 10% at 70% (re-purposed) → mean ≈ 0.916, P95 ≈ 0.98.
  telemetry::AvailabilityLedger ledger;
  std::uint32_t server = 0;
  for (int i = 0; i < 60; ++i) record_day(&ledger, 0, server++, 0, 0.98);
  for (int i = 0; i < 30; ++i) record_day(&ledger, 1, server++, 0, 0.85);
  for (int i = 0; i < 10; ++i) record_day(&ledger, 2, server++, 0, 0.70);

  const AvailabilityAnalyzer analyzer;
  const AvailabilityReport report = analyzer.analyze(ledger);
  EXPECT_NEAR(report.fleet_average, 0.6 * 0.98 + 0.3 * 0.85 + 0.1 * 0.70, 0.005);
  EXPECT_NEAR(report.well_managed, 0.98, 0.005);
  EXPECT_NEAR(report.planned_overhead(), 0.02, 0.005);
  EXPECT_NEAR(report.below_80_fraction, 0.10, 0.01);
}

TEST(AvailabilityAnalyzer, PoolAvailabilityAveragesDays) {
  telemetry::AvailabilityLedger ledger;
  record_day(&ledger, 3, 0, 0, 1.0);
  record_day(&ledger, 3, 0, 1, 0.8);
  const AvailabilityAnalyzer analyzer;
  EXPECT_NEAR(analyzer.pool_availability(ledger, 0, 3, 0, 1), 0.9, 1e-9);
}

TEST(AvailabilityAnalyzer, PoolAvailabilityRejectsInvertedRange) {
  const telemetry::AvailabilityLedger ledger;
  const AvailabilityAnalyzer analyzer;
  EXPECT_THROW((void)analyzer.pool_availability(ledger, 0, 0, 5, 2),
               std::invalid_argument);
}

TEST(OnlineSavings, PaperPoolBNumbers) {
  // Pool B ran ~73% available; bringing it to the 98% practice level
  // saves 1 - 0.73/0.98 ≈ 25-27% of its servers (Table IV "Online" col).
  EXPECT_NEAR(AvailabilityAnalyzer::online_savings(0.73, 0.98), 0.255, 0.01);
}

TEST(OnlineSavings, NoSavingsWhenAlreadyAtCeiling) {
  EXPECT_DOUBLE_EQ(AvailabilityAnalyzer::online_savings(0.98, 0.98), 0.0);
  EXPECT_DOUBLE_EQ(AvailabilityAnalyzer::online_savings(0.99, 0.98), 0.0);
}

TEST(OnlineSavings, RejectsNonPositive) {
  EXPECT_THROW((void)AvailabilityAnalyzer::online_savings(0.0, 0.98),
               std::invalid_argument);
  EXPECT_THROW((void)AvailabilityAnalyzer::online_savings(0.9, 0.0),
               std::invalid_argument);
}

TEST(AvailabilityHistogram, BinsCoverUnitInterval) {
  telemetry::AvailabilityLedger ledger;
  std::uint32_t server = 0;
  for (int i = 0; i < 50; ++i) record_day(&ledger, 0, server++, 0, 0.98);
  for (int i = 0; i < 50; ++i) record_day(&ledger, 0, server++, 0, 0.85);
  const AvailabilityAnalyzer analyzer;
  const AvailabilityReport report = analyzer.analyze(ledger);
  const stats::Histogram hist =
      AvailabilityAnalyzer::availability_histogram(report, 20);
  EXPECT_EQ(hist.total(), 100u);
  // Mass concentrates around the two modes (bins at 0.85 and 0.95-1.0).
  EXPECT_GT(hist.fraction_above(0.90), 0.45);
}

}  // namespace
}  // namespace headroom::core
