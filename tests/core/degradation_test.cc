// HealthMonitor / DegradationTracker unit coverage: sanitization classes,
// lazy gap healing (seasonal vs last-value fill), the four-mode state
// machine, watchdog escalation, and the report format other layers pin.
#include "core/degradation.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "telemetry/metric_store.h"

namespace headroom::core {
namespace {

using telemetry::MetricKind;
using telemetry::MetricStore;
using telemetry::SeriesKey;
using telemetry::SimTime;

constexpr SimTime kWindow = 120;
constexpr SimTime kDay = 86400;

SeriesKey pool_key(MetricKind metric, std::uint32_t dc = 0,
                   std::uint32_t pool = 0) {
  return {dc, pool, SeriesKey::kPoolScope, metric};
}

DegradationOptions small_budgets() {
  DegradationOptions opt;
  opt.window_seconds = kWindow;
  opt.heal_budget_seconds = 4 * kWindow;
  opt.staleness_budget_seconds = 10 * kWindow;
  return opt;
}

class DegradationTest : public ::testing::Test {
 protected:
  DegradationTest() : monitor_(&store_, small_budgets()) {
    monitor_.add_pool(0, 0);
  }

  MetricStore store_;
  HealthMonitor monitor_;
};

TEST_F(DegradationTest, CleanStreamStaysNominalAndStoresEverything) {
  const SeriesKey key = pool_key(MetricKind::kRequestsPerSecond);
  for (SimTime t = 0; t < 10 * kWindow; t += kWindow) {
    monitor_.ingest(key, t, 100.0 + static_cast<double>(t));
    monitor_.advance(t + kWindow);
  }
  EXPECT_EQ(monitor_.mode(0, 0), HealthMode::kNominal);
  EXPECT_FALSE(monitor_.any_degraded());
  EXPECT_TRUE(monitor_.transitions().empty());
  EXPECT_EQ(store_.series(key).size(), 10u);
  EXPECT_EQ(monitor_.find(0, 0)->last_real_time(), 9 * kWindow);
}

TEST_F(DegradationTest, NonFiniteValuesAreQuarantinedNotStored) {
  const SeriesKey key = pool_key(MetricKind::kCpuPercentAttributed);
  monitor_.ingest(key, 0, std::numeric_limits<double>::quiet_NaN());
  monitor_.ingest(key, kWindow, std::numeric_limits<double>::infinity());
  EXPECT_EQ(store_.series(key).size(), 0u);
  EXPECT_EQ(monitor_.find(0, 0)->counters().quarantined_nan, 2u);
  EXPECT_TRUE(monitor_.any_degraded());
}

TEST_F(DegradationTest, NegativeValuesAreQuarantinedAsImplausible) {
  const SeriesKey key = pool_key(MetricKind::kRequestsPerSecond);
  monitor_.ingest(key, 0, -1.0e6);
  EXPECT_EQ(store_.series(key).size(), 0u);
  EXPECT_EQ(monitor_.find(0, 0)->counters().quarantined_implausible, 1u);
}

TEST_F(DegradationTest, DuplicateAndOutOfOrderWindowsAreDropped) {
  const SeriesKey key = pool_key(MetricKind::kRequestsPerSecond);
  monitor_.ingest(key, 0, 10.0);
  monitor_.ingest(key, kWindow, 11.0);
  monitor_.ingest(key, kWindow, 99.0);  // Duplicate: first value wins.
  monitor_.ingest(key, 0, 99.0);        // Time-reversed.
  const telemetry::TimeSeries& series = store_.series(key);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series.value_at(1), 11.0);
  EXPECT_EQ(monitor_.find(0, 0)->counters().quarantined_duplicate, 1u);
  EXPECT_EQ(monitor_.find(0, 0)->counters().quarantined_out_of_order, 1u);
}

TEST_F(DegradationTest, OffGridTimestampsSnapDownToTheirWindow) {
  const SeriesKey key = pool_key(MetricKind::kRequestsPerSecond);
  monitor_.ingest(key, kWindow + 30, 42.0);  // 30s of clock skew.
  const telemetry::TimeSeries& series = store_.series(key);
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series.time_at(0), kWindow);
  EXPECT_DOUBLE_EQ(series.value_at(0), 42.0);
  EXPECT_EQ(monitor_.find(0, 0)->counters().realigned, 1u);
}

TEST_F(DegradationTest, GapBackfillsWithLastValueWhenNoSeasonExists) {
  const SeriesKey key = pool_key(MetricKind::kRequestsPerSecond);
  monitor_.ingest(key, 0, 50.0);
  // Windows 1 and 2 never arrive; the resume at window 3 heals them.
  monitor_.ingest(key, 3 * kWindow, 80.0);
  const telemetry::TimeSeries& series = store_.series(key);
  ASSERT_EQ(series.size(), 4u);
  EXPECT_DOUBLE_EQ(series.value_at(1), 50.0);
  EXPECT_DOUBLE_EQ(series.value_at(2), 50.0);
  EXPECT_DOUBLE_EQ(series.value_at(3), 80.0);
  EXPECT_EQ(monitor_.find(0, 0)->counters().healed, 2u);
  // Workload fills are flagged so the rolling planner can discount them.
  EXPECT_TRUE(monitor_.find(0, 0)->window_healed(kWindow));
  EXPECT_TRUE(monitor_.find(0, 0)->window_healed(2 * kWindow));
  EXPECT_FALSE(monitor_.find(0, 0)->window_healed(3 * kWindow));
}

TEST_F(DegradationTest, GapPrefersTheSeasonalValueADayBack) {
  const SeriesKey key = pool_key(MetricKind::kRequestsPerSecond);
  // A full prior day, then a one-window hole on day two: the fill must be
  // the value one season (day) earlier, not the last value before the gap.
  for (SimTime t = 0; t < kDay; t += kWindow) {
    monitor_.ingest(key, t, t == 5 * kWindow ? 777.0 : 100.0);
  }
  monitor_.ingest(key, kDay + 4 * kWindow, 200.0);
  monitor_.ingest(key, kDay + 6 * kWindow, 210.0);  // Heals day+5w.
  const telemetry::TimeSeries& series = store_.series(key);
  double healed = 0.0;
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (series.time_at(i) == kDay + 5 * kWindow) healed = series.value_at(i);
  }
  EXPECT_DOUBLE_EQ(healed, 777.0);
}

TEST_F(DegradationTest, ModeWalksTheFullLadderAsTheGapGrows) {
  const SeriesKey key = pool_key(MetricKind::kRequestsPerSecond);
  monitor_.ingest(key, 0, 10.0);
  monitor_.advance(kWindow);
  EXPECT_EQ(monitor_.mode(0, 0), HealthMode::kNominal);

  monitor_.advance(3 * kWindow);  // Gap of 2 windows: within heal budget.
  EXPECT_EQ(monitor_.mode(0, 0), HealthMode::kHealing);

  monitor_.advance(7 * kWindow);  // Past the 4-window heal budget.
  EXPECT_EQ(monitor_.mode(0, 0), HealthMode::kStale);
  EXPECT_GT(monitor_.find(0, 0)->counters().stale_windows, 0u);

  monitor_.advance(13 * kWindow);  // Past the 10-window staleness budget.
  EXPECT_EQ(monitor_.mode(0, 0), HealthMode::kFailsafe);

  // Real data resuming heals the hole and recovers the pool.
  monitor_.ingest(key, 13 * kWindow, 12.0);
  monitor_.advance(14 * kWindow);
  EXPECT_EQ(monitor_.mode(0, 0), HealthMode::kNominal);

  ASSERT_EQ(monitor_.transitions().size(), 4u);
  EXPECT_EQ(monitor_.transitions()[0].to, HealthMode::kHealing);
  EXPECT_EQ(monitor_.transitions()[1].to, HealthMode::kStale);
  EXPECT_EQ(monitor_.transitions()[2].to, HealthMode::kFailsafe);
  EXPECT_EQ(monitor_.transitions()[3].to, HealthMode::kNominal);
  EXPECT_EQ(monitor_.transitions()[3].reason, "recovered");
}

TEST_F(DegradationTest, PoolsWithNoDataYetAreTheWatchdogsProblem) {
  monitor_.advance(100 * kWindow);
  EXPECT_EQ(monitor_.mode(0, 0), HealthMode::kNominal);
  EXPECT_FALSE(monitor_.any_degraded());
}

TEST_F(DegradationTest, ForceDegradeFloorsEveryPoolButNeverDowngrades) {
  monitor_.add_pool(0, 1);
  const SeriesKey key = pool_key(MetricKind::kRequestsPerSecond);
  monitor_.ingest(key, 0, 10.0);
  monitor_.advance(13 * kWindow);  // Pool (0,0) is already FAILSAFE.
  monitor_.force_degrade(13 * kWindow, HealthMode::kStale, "feed watchdog");
  EXPECT_EQ(monitor_.mode(0, 0), HealthMode::kFailsafe);  // Not lowered.
  EXPECT_EQ(monitor_.mode(0, 1), HealthMode::kStale);     // Raised.
  EXPECT_EQ(monitor_.transitions().back().reason, "feed watchdog");
}

TEST_F(DegradationTest, TransientHealingExcursionIsNotDegraded) {
  // A tailed pool CSV lagging one poll behind the others produces
  // NOMINAL -> HEALING -> NOMINAL with nothing healed; a healthy follow
  // run must not be flagged degraded for it.
  const SeriesKey key = pool_key(MetricKind::kRequestsPerSecond);
  monitor_.ingest(key, 0, 10.0);
  monitor_.advance(2 * kWindow);
  EXPECT_EQ(monitor_.mode(0, 0), HealthMode::kHealing);
  monitor_.ingest(key, kWindow, 11.0);
  monitor_.advance(2 * kWindow);
  EXPECT_EQ(monitor_.mode(0, 0), HealthMode::kNominal);
  // The catch-up row is counted late but the data is complete and
  // correct, so the run is not degraded.
  EXPECT_EQ(monitor_.find(0, 0)->counters().late_windows, 1u);
  EXPECT_FALSE(monitor_.any_degraded());
  // Reaching STALE, by contrast, is always degradation.
  monitor_.advance(7 * kWindow);
  monitor_.ingest(key, 7 * kWindow, 12.0);
  monitor_.advance(8 * kWindow);
  EXPECT_TRUE(monitor_.any_degraded());
}

TEST_F(DegradationTest, TailerIncidentCountersRegisterAndFlagDegradation) {
  monitor_.note_malformed_row(0, 0);
  monitor_.note_io_retry(0, 0);
  EXPECT_EQ(monitor_.find(0, 0)->counters().malformed_rows, 1u);
  EXPECT_EQ(monitor_.find(0, 0)->counters().io_retries, 1u);
  EXPECT_TRUE(monitor_.any_degraded());
}

TEST_F(DegradationTest, ReportFormatIsThePinnedContract) {
  const SeriesKey key = pool_key(MetricKind::kRequestsPerSecond);
  monitor_.ingest(key, 0, 10.0);
  monitor_.ingest(key, 2 * kWindow, 12.0);  // Heals one window.
  monitor_.advance(3 * kWindow);
  const std::string report = monitor_.format_report();
  EXPECT_EQ(report,
            "health overall = nominal\n"
            "health degraded = 1\n"
            "health pools = 1\n"
            "health pool 0 0 : mode=nominal healed=1 quarantined_nan=0"
            " quarantined_implausible=0 quarantined_duplicate=0"
            " quarantined_out_of_order=0 realigned=0 late_windows=0"
            " malformed_rows=0 io_retries=0 stale_windows=0\n"
            "health transitions = 0\n");
}

TEST_F(DegradationTest, ReportOverallIsTheWorstPoolMode) {
  monitor_.add_pool(1, 0);
  const SeriesKey healthy = pool_key(MetricKind::kRequestsPerSecond, 0, 0);
  const SeriesKey dark = pool_key(MetricKind::kRequestsPerSecond, 1, 0);
  monitor_.ingest(healthy, 0, 10.0);
  monitor_.ingest(dark, 0, 10.0);
  monitor_.ingest(healthy, 6 * kWindow, 10.0);
  monitor_.advance(7 * kWindow);  // (1,0) dark past the heal budget.
  const std::string report = monitor_.format_report();
  EXPECT_NE(report.find("health overall = stale"), std::string::npos)
      << report;
  EXPECT_NE(report.find("health pool 1 0 : mode=stale"), std::string::npos)
      << report;
  EXPECT_NE(report.find("-> stale (gap exceeded heal budget)"),
            std::string::npos)
      << report;
}

TEST(HealthModeTest, NamesAreStable) {
  EXPECT_EQ(to_string(HealthMode::kNominal), "nominal");
  EXPECT_EQ(to_string(HealthMode::kHealing), "healing");
  EXPECT_EQ(to_string(HealthMode::kStale), "stale");
  EXPECT_EQ(to_string(HealthMode::kFailsafe), "failsafe");
}

}  // namespace
}  // namespace headroom::core
