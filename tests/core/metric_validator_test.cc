#include "core/metric_validator.h"

#include <gtest/gtest.h>

#include <random>

namespace headroom::core {
namespace {

using telemetry::MetricKind;
using telemetry::MetricStore;
using telemetry::SeriesKey;
using telemetry::SimTime;

// Builds pool-scope series where `resource = slope*workload + noise`.
void fill_pool(MetricStore* store, MetricKind resource, double slope,
               double intercept, double noise_sigma, std::uint64_t seed,
               std::size_t windows = 300) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> noise(0.0, noise_sigma);
  const SeriesKey wkey{0, 0, SeriesKey::kPoolScope,
                       MetricKind::kRequestsPerSecond};
  const SeriesKey rkey{0, 0, SeriesKey::kPoolScope, resource};
  const bool workload_exists = store->contains(wkey);
  for (std::size_t i = 0; i < windows; ++i) {
    const auto t = static_cast<SimTime>(i) * 120;
    const double rps = 100.0 + 300.0 * (static_cast<double>(i % 100) / 100.0);
    if (!workload_exists) store->record(wkey, t, rps);
    store->record(rkey, t, slope * rps + intercept + noise(rng));
  }
}

TEST(MetricValidator, TightLinearResourceDetected) {
  MetricStore store;
  fill_pool(&store, MetricKind::kCpuPercentAttributed, 0.028, 1.37, 0.15, 1);
  const MetricValidator validator;
  const MetricAssessment a =
      validator.assess(store, 0, 0, MetricKind::kRequestsPerSecond,
                       MetricKind::kCpuPercentAttributed);
  EXPECT_EQ(a.verdict, MetricVerdict::kLinearTight);
  EXPECT_NEAR(a.fit.slope, 0.028, 0.003);
  EXPECT_GT(a.pearson, 0.95);
}

TEST(MetricValidator, NoisyLinearResourceDetected) {
  MetricStore store;
  fill_pool(&store, MetricKind::kNetworkBytesPerSecond, 50.0, 0.0, 4200.0, 2);
  const MetricValidator validator;
  const MetricAssessment a =
      validator.assess(store, 0, 0, MetricKind::kRequestsPerSecond,
                       MetricKind::kNetworkBytesPerSecond);
  EXPECT_EQ(a.verdict, MetricVerdict::kLinearNoisy);
}

TEST(MetricValidator, UncorrelatedResourceDetected) {
  MetricStore store;
  fill_pool(&store, MetricKind::kMemoryPagesPerSecond, 0.0, 3000.0, 2000.0, 3);
  const MetricValidator validator;
  const MetricAssessment a =
      validator.assess(store, 0, 0, MetricKind::kRequestsPerSecond,
                       MetricKind::kMemoryPagesPerSecond);
  EXPECT_EQ(a.verdict, MetricVerdict::kUncorrelated);
}

TEST(MetricValidator, StaticCounterDetected) {
  MetricStore store;
  fill_pool(&store, MetricKind::kDiskQueueLength, 0.0, 5.0, 0.0, 4);
  const MetricValidator validator;
  const MetricAssessment a =
      validator.assess(store, 0, 0, MetricKind::kRequestsPerSecond,
                       MetricKind::kDiskQueueLength);
  EXPECT_EQ(a.verdict, MetricVerdict::kStatic);
}

TEST(MetricValidator, EmptySeriesIsStatic) {
  MetricStore store;
  const MetricValidator validator;
  const MetricAssessment a =
      validator.assess(store, 0, 0, MetricKind::kRequestsPerSecond,
                       MetricKind::kCpuPercentTotal);
  EXPECT_EQ(a.verdict, MetricVerdict::kStatic);
  EXPECT_EQ(a.samples, 0u);
}

TEST(MetricValidator, LimitingResourceIsTightestPositiveSlope) {
  MetricStore store;
  fill_pool(&store, MetricKind::kCpuPercentAttributed, 0.03, 1.0, 0.1, 5);
  fill_pool(&store, MetricKind::kNetworkBytesPerSecond, 40.0, 0.0, 5000.0, 6);
  fill_pool(&store, MetricKind::kMemoryPagesPerSecond, 0.0, 2000.0, 1500.0, 7);
  const MetricValidator validator;
  const MetricKind resources[] = {MetricKind::kCpuPercentAttributed,
                                  MetricKind::kNetworkBytesPerSecond,
                                  MetricKind::kMemoryPagesPerSecond};
  const auto assessments = validator.assess_all(
      store, 0, 0, MetricKind::kRequestsPerSecond, resources);
  const auto limiting = validator.limiting_resource(assessments);
  ASSERT_TRUE(limiting.has_value());
  EXPECT_EQ(limiting->resource, MetricKind::kCpuPercentAttributed);
  EXPECT_TRUE(validator.workload_metric_valid(assessments));
}

TEST(MetricValidator, NegativeSlopeIsNotLimiting) {
  MetricStore store;
  fill_pool(&store, MetricKind::kDiskReadBytesPerSecond, -10.0, 10000.0, 1.0, 8);
  const MetricValidator validator;
  const auto assessments = validator.assess_all(
      store, 0, 0, MetricKind::kRequestsPerSecond,
      std::vector<MetricKind>{MetricKind::kDiskReadBytesPerSecond});
  EXPECT_FALSE(validator.limiting_resource(assessments).has_value());
  EXPECT_FALSE(validator.workload_metric_valid(assessments));
}

TEST(MetricValidator, InvalidWhenOnlyNoisyRelationship) {
  MetricStore store;
  fill_pool(&store, MetricKind::kCpuPercentTotal, 0.03, 1.0, 3.0, 9);
  const MetricValidator validator;
  const auto assessments = validator.assess_all(
      store, 0, 0, MetricKind::kRequestsPerSecond,
      std::vector<MetricKind>{MetricKind::kCpuPercentTotal});
  // Noisy linear: the feedback loop must keep iterating on attribution.
  EXPECT_FALSE(validator.workload_metric_valid(assessments));
}

TEST(MetricValidator, SplitImprovesRequiresAllComponentsBetter) {
  // The MemCached two-tables example: per-table metrics both fit better.
  const double components_good[] = {0.97, 0.95};
  EXPECT_TRUE(MetricValidator::split_improves(0.6, components_good));
  const double components_mixed[] = {0.97, 0.61};
  EXPECT_FALSE(MetricValidator::split_improves(0.6, components_mixed));
  EXPECT_FALSE(MetricValidator::split_improves(0.6, {}));
}

TEST(MetricValidator, ThresholdsAreConfigurable) {
  MetricStore store;
  fill_pool(&store, MetricKind::kCpuPercentTotal, 0.03, 1.0, 1.2, 10);
  ValidatorOptions strict;
  strict.tight_r_squared = 0.999;
  ValidatorOptions lax;
  lax.tight_r_squared = 0.5;
  const MetricAssessment strict_a =
      MetricValidator(strict).assess(store, 0, 0,
                                     MetricKind::kRequestsPerSecond,
                                     MetricKind::kCpuPercentTotal);
  const MetricAssessment lax_a =
      MetricValidator(lax).assess(store, 0, 0, MetricKind::kRequestsPerSecond,
                                  MetricKind::kCpuPercentTotal);
  EXPECT_NE(strict_a.verdict, MetricVerdict::kLinearTight);
  EXPECT_EQ(lax_a.verdict, MetricVerdict::kLinearTight);
}

TEST(MetricVerdictToString, AllNamed) {
  EXPECT_EQ(to_string(MetricVerdict::kLinearTight), "linear-tight");
  EXPECT_EQ(to_string(MetricVerdict::kLinearNoisy), "linear-noisy");
  EXPECT_EQ(to_string(MetricVerdict::kUncorrelated), "uncorrelated");
  EXPECT_EQ(to_string(MetricVerdict::kStatic), "static");
}

}  // namespace
}  // namespace headroom::core
