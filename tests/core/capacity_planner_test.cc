#include "core/capacity_planner.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace headroom::core {
namespace {

// Synthetic response surface with closed-form inverses:
//   latency(r) = 5 + 0.0005 r^2  ms  (50 ms SLO crossed at r = 300)
//   cpu(r)     = 0.08 r + 2      %   (95% saturation at r = 1162.5)
PoolResponseModel test_surface() {
  stats::LinearFit cpu;
  cpu.slope = 0.08;
  cpu.intercept = 2.0;
  cpu.r_squared = 1.0;
  cpu.n = 100;
  stats::PolynomialFit latency;
  latency.coeffs = {5.0, 0.0, 0.0005};
  latency.r_squared = 1.0;
  latency.n = 100;
  return PoolResponseModel::from_fits(cpu, latency);
}

PlannerContext test_context(const PoolResponseModel* model,
                            std::size_t pool_size = 32) {
  PlannerContext ctx;
  ctx.model = model;
  ctx.latency_slo_ms = 50.0;
  ctx.pool_size = pool_size;
  ctx.min_servers = 1;
  ctx.window_seconds = 120;
  return ctx;
}

std::vector<PlannerWindow> flat_grid(std::size_t windows, double total_rps,
                                     telemetry::SimTime seconds = 120) {
  std::vector<PlannerWindow> grid(windows);
  for (std::size_t i = 0; i < windows; ++i) {
    grid[i].start = static_cast<telemetry::SimTime>(i) * seconds;
    grid[i].seconds = seconds;
    grid[i].total_rps = total_rps;
  }
  return grid;
}

TEST(ServersWithinSlo, FindsSmallestFeasibleCount) {
  const PoolResponseModel surface = test_surface();
  const PlannerContext ctx = test_context(&surface);
  // 900 total rps: 3 servers put each at exactly 300 rps -> 50 ms, on the
  // SLO; 2 servers (450 rps each) predict ~106 ms, over it.
  EXPECT_EQ(servers_within_slo(ctx, 900.0), 3u);
  EXPECT_EQ(servers_within_slo(ctx, 0.0), 1u);
  // A positive margin pushes the 300 rps/server point over the line.
  EXPECT_EQ(servers_within_slo(ctx, 900.0, 1.0), 4u);
}

TEST(ServersWithinSlo, RespectsMinServersFloor) {
  const PoolResponseModel surface = test_surface();
  PlannerContext ctx = test_context(&surface);
  ctx.min_servers = 7;
  EXPECT_EQ(servers_within_slo(ctx, 900.0), 7u);
}

TEST(ServersWithinSlo, ReturnsPoolSizeWhenUnattainable) {
  const PoolResponseModel surface = test_surface();
  const PlannerContext ctx = test_context(&surface, /*pool_size=*/2);
  // Even the whole pool (2 servers, 5000 rps each) blows the SLO.
  EXPECT_EQ(servers_within_slo(ctx, 10000.0), 2u);
}

TEST(ServersWithinSlo, CpuSaturationBindsWhenLatencyIsFlat) {
  // Flat 1 ms latency: only the CPU guard can force capacity.
  stats::LinearFit cpu;
  cpu.slope = 0.08;
  cpu.intercept = 2.0;
  stats::PolynomialFit latency;
  latency.coeffs = {1.0};
  const PoolResponseModel surface = PoolResponseModel::from_fits(cpu, latency);
  const PlannerContext ctx = test_context(&surface);
  // 4000 rps: 3 servers -> 1333 rps each -> 108% cpu; 4 -> 1000 -> 82%.
  EXPECT_EQ(servers_within_slo(ctx, 4000.0), 4u);
}

TEST(ServersWithinSlo, RejectsDegenerateContext) {
  const PoolResponseModel surface = test_surface();
  PlannerContext no_model = test_context(nullptr);
  EXPECT_THROW((void)servers_within_slo(no_model, 1.0),
               std::invalid_argument);
  PlannerContext no_pool = test_context(&surface, /*pool_size=*/0);
  EXPECT_THROW((void)servers_within_slo(no_pool, 1.0), std::invalid_argument);
}

TEST(StaticCapacityPlanner, RejectsZeroServing) {
  EXPECT_THROW(StaticCapacityPlanner("rsm", 0), std::invalid_argument);
}

TEST(Replay, ScoresAFeasibleStaticPlanClean) {
  const PoolResponseModel surface = test_surface();
  const PlannerContext ctx = test_context(&surface);
  const auto grid = flat_grid(10, 900.0);

  StaticCapacityPlanner planner("static4", 4);
  const PlannerScore score = replay_capacity_planner(planner, grid, ctx, 4);

  EXPECT_EQ(score.planner, "static4");
  EXPECT_DOUBLE_EQ(score.total_seconds, 10.0 * 120.0);
  EXPECT_DOUBLE_EQ(score.server_seconds, 4.0 * 10.0 * 120.0);
  EXPECT_DOUBLE_EQ(score.violation_seconds, 0.0);
  EXPECT_DOUBLE_EQ(score.violation_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(score.mean_serving(), 4.0);
  EXPECT_EQ(score.switches, 0u);
  EXPECT_DOUBLE_EQ(score.switched_servers, 0.0);
  EXPECT_EQ(score.peak_serving, 4u);
  EXPECT_EQ(score.min_serving, 4u);
}

TEST(Replay, CountsEveryUnderProvisionedWindowAsViolation) {
  const PoolResponseModel surface = test_surface();
  const PlannerContext ctx = test_context(&surface);
  const auto grid = flat_grid(8, 900.0);

  // 2 servers at 450 rps each: ~106 ms predicted, over the 50 ms SLO.
  StaticCapacityPlanner planner("static2", 2);
  const PlannerScore score = replay_capacity_planner(planner, grid, ctx, 2);
  EXPECT_DOUBLE_EQ(score.violation_seconds, score.total_seconds);
  EXPECT_DOUBLE_EQ(score.violation_fraction(), 1.0);
}

TEST(Replay, ClampsThePlannerToPoolBounds) {
  const PoolResponseModel surface = test_surface();
  const PlannerContext ctx = test_context(&surface, /*pool_size=*/10);
  const auto grid = flat_grid(4, 900.0);

  StaticCapacityPlanner oversized("big", 1000);
  const PlannerScore big = replay_capacity_planner(oversized, grid, ctx, 5);
  EXPECT_EQ(big.peak_serving, 10u);

  // An initial serving below min_servers is clamped up before scoring.
  PlannerContext floored = ctx;
  floored.min_servers = 6;
  StaticCapacityPlanner fixed("fixed", 7);
  const PlannerScore lo = replay_capacity_planner(fixed, grid, floored, 1);
  EXPECT_EQ(lo.min_serving, 6u);
}

// Alternates between two serving counts every window.
class FlipFlopPlanner final : public CapacityPlanner {
 public:
  FlipFlopPlanner(std::size_t a, std::size_t b) : a_(a), b_(b) {}
  [[nodiscard]] std::string name() const override { return "flipflop"; }
  void start(const PlannerContext&, std::size_t) override { next_a_ = true; }
  [[nodiscard]] std::size_t plan_window(const PlannerWindow&) override {
    next_a_ = !next_a_;
    return next_a_ ? a_ : b_;
  }

 private:
  std::size_t a_, b_;
  bool next_a_ = true;
};

TEST(Replay, AccountsSwitchingChurn) {
  const PoolResponseModel surface = test_surface();
  const PlannerContext ctx = test_context(&surface);
  const auto grid = flat_grid(6, 900.0);

  FlipFlopPlanner planner(4, 9);
  const PlannerScore score = replay_capacity_planner(planner, grid, ctx, 4);
  // Starts at 4; plans 9, 4, 9, 4, 9, 4 -> six switches of 5 servers each.
  EXPECT_EQ(score.switches, 6u);
  EXPECT_DOUBLE_EQ(score.switched_servers, 30.0);
  EXPECT_EQ(score.peak_serving, 9u);
  EXPECT_EQ(score.min_serving, 4u);
}

TEST(Replay, EmptyGridScoresZero) {
  const PoolResponseModel surface = test_surface();
  const PlannerContext ctx = test_context(&surface);
  StaticCapacityPlanner planner("static", 4);
  const PlannerScore score =
      replay_capacity_planner(planner, {}, ctx, 4);
  EXPECT_DOUBLE_EQ(score.total_seconds, 0.0);
  EXPECT_DOUBLE_EQ(score.violation_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(score.mean_serving(), 0.0);
}

TEST(ModelExperimentBackend, CyclesTheDemandTrace) {
  const PoolResponseModel surface = test_surface();
  ModelExperimentBackend::Options opt;
  opt.pool_size = 8;
  opt.serving = 4;
  opt.window_seconds = 120;
  ModelExperimentBackend backend(&surface, {400.0, 800.0, 1200.0}, opt);

  EXPECT_EQ(backend.pool_size(), 8u);
  EXPECT_EQ(backend.serving_count(), 4u);

  // Four windows off a three-entry trace: the cursor wraps.
  const ExperimentObservations obs = backend.observe(4 * 120);
  ASSERT_EQ(obs.size(), 4u);
  EXPECT_DOUBLE_EQ(obs.total_rps[0], 400.0);
  EXPECT_DOUBLE_EQ(obs.total_rps[1], 800.0);
  EXPECT_DOUBLE_EQ(obs.total_rps[2], 1200.0);
  EXPECT_DOUBLE_EQ(obs.total_rps[3], 400.0);
  for (std::size_t i = 0; i < obs.size(); ++i) {
    const double per_server = obs.total_rps[i] / 4.0;
    EXPECT_DOUBLE_EQ(obs.servers[i], 4.0);
    EXPECT_DOUBLE_EQ(obs.latency_p95_ms[i],
                     surface.predict_latency_ms(per_server));
    EXPECT_DOUBLE_EQ(obs.cpu_pct[i], surface.predict_cpu_pct(per_server));
  }

  // A non-multiple duration overshoots to whole windows, continuing the
  // cycle where the previous observe left off.
  EXPECT_EQ(backend.observe(121).size(), 2u);
}

TEST(ModelExperimentBackend, ReducedServingRaisesPerServerLoad) {
  const PoolResponseModel surface = test_surface();
  ModelExperimentBackend::Options opt;
  opt.pool_size = 8;
  opt.serving = 8;
  opt.window_seconds = 120;
  ModelExperimentBackend backend(&surface, {1600.0}, opt);

  const double before = backend.observe(120).latency_p95_ms[0];
  backend.set_serving_count(2);
  const double after = backend.observe(120).latency_p95_ms[0];
  EXPECT_DOUBLE_EQ(before, surface.predict_latency_ms(200.0));
  EXPECT_DOUBLE_EQ(after, surface.predict_latency_ms(800.0));
  EXPECT_GT(after, before);
}

TEST(ModelExperimentBackend, RejectsBadConstructionAndUse) {
  const PoolResponseModel surface = test_surface();
  ModelExperimentBackend::Options opt;
  opt.pool_size = 8;
  opt.serving = 4;
  EXPECT_THROW(ModelExperimentBackend(nullptr, {1.0}, opt),
               std::invalid_argument);
  EXPECT_THROW(ModelExperimentBackend(&surface, {}, opt),
               std::invalid_argument);
  ModelExperimentBackend::Options oversub = opt;
  oversub.serving = 9;
  EXPECT_THROW(ModelExperimentBackend(&surface, {1.0}, oversub),
               std::invalid_argument);

  ModelExperimentBackend backend(&surface, {1.0}, opt);
  EXPECT_THROW(backend.set_serving_count(0), std::invalid_argument);
  EXPECT_THROW(backend.set_serving_count(9), std::invalid_argument);
  EXPECT_THROW((void)backend.observe(0), std::invalid_argument);
}

}  // namespace
}  // namespace headroom::core
