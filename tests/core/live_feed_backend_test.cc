// LiveFeedBackend: the append-only-store backend behind both trace replay
// (sealed) and continuous serve mode (live). The contract under test:
// observe() walks the simulator's stepping grid, try_observe() reports
// pending without moving the cursor, a pump can extend a live feed inside
// a blocking observe(), and serving-count changes validate against the
// recorded active-servers column only when asked to.
#include "core/live_feed_backend.h"

#include <gtest/gtest.h>

#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "telemetry/metric_store.h"

namespace headroom::core {
namespace {

using telemetry::MetricKind;
using telemetry::MetricStore;
using telemetry::SeriesKey;
using telemetry::SimTime;

constexpr SimTime kWindow = 120;

SeriesKey pool_key(MetricKind kind) {
  return {0, 0, SeriesKey::kPoolScope, kind};
}

/// Appends `count` windows starting at `from`, one sample per metric the
/// observation join needs. Values encode the window start so tests can
/// check which windows an observation actually contains.
void append_windows(MetricStore* store, SimTime from, std::size_t count,
                    double servers = 8.0) {
  for (std::size_t i = 0; i < count; ++i) {
    const SimTime t = from + static_cast<SimTime>(i) * kWindow;
    const auto tv = static_cast<double>(t);
    store->record(pool_key(MetricKind::kRequestsPerSecond), t, 100.0 + tv);
    store->record(pool_key(MetricKind::kCpuPercentAttributed), t, 10.0);
    store->record(pool_key(MetricKind::kLatencyP95Ms), t, 50.0);
    store->record(pool_key(MetricKind::kActiveServers), t, servers);
  }
}

LiveFeedBackend::Options live_options() {
  LiveFeedBackend::Options opt;
  opt.pool_size = 10;
  opt.serving = 8;
  opt.window_seconds = kWindow;
  opt.sealed = false;
  opt.validate_serving = false;
  opt.label = "test feed";
  return opt;
}

TEST(LiveFeedBackend, RejectsUnderspecifiedFeeds) {
  MetricStore store;
  LiveFeedBackend::Options opt = live_options();
  EXPECT_THROW(LiveFeedBackend(nullptr, opt), std::invalid_argument);
  opt.window_seconds = 0;
  EXPECT_THROW(LiveFeedBackend(&store, opt), std::invalid_argument);
  opt = live_options();
  opt.pool_size = 0;
  EXPECT_THROW(LiveFeedBackend(&store, opt), std::invalid_argument);
  opt = live_options();
  opt.serving = 11;  // more than the pool holds
  EXPECT_THROW(LiveFeedBackend(&store, opt), std::invalid_argument);
}

TEST(LiveFeedBackend, SealedFeedRequiresWorkloadSeries) {
  MetricStore store;
  LiveFeedBackend::Options opt = live_options();
  opt.sealed = true;
  EXPECT_THROW(LiveFeedBackend(&store, opt), std::invalid_argument);
  append_windows(&store, 0, 1);
  EXPECT_NO_THROW(LiveFeedBackend(&store, opt));
  // A live feed may start empty: windows have simply not arrived yet.
  opt.sealed = false;
  MetricStore empty;
  EXPECT_NO_THROW(LiveFeedBackend(&empty, opt));
}

TEST(LiveFeedBackend, ObserveWalksWholeWindowsAndAdvancesCursor) {
  MetricStore store;
  append_windows(&store, 0, 10);
  LiveFeedBackend backend(&store, live_options());
  EXPECT_EQ(backend.cursor(), 0);
  EXPECT_EQ(backend.feed_end(), 10 * kWindow);

  // The recorded kRequestsPerSecond is per-server; an observation's
  // total_rps is that times the recorded active-server count.
  const ExperimentObservations first = backend.observe(3 * kWindow);
  ASSERT_EQ(first.total_rps.size(), 3u);
  EXPECT_DOUBLE_EQ(first.total_rps[0], 100.0 * 8.0);
  EXPECT_EQ(backend.cursor(), 3 * kWindow);

  const ExperimentObservations second = backend.observe(2 * kWindow);
  ASSERT_EQ(second.total_rps.size(), 2u);
  EXPECT_DOUBLE_EQ(second.total_rps[0], (100.0 + 3 * kWindow) * 8.0);
  EXPECT_EQ(backend.cursor(), 5 * kWindow);
}

TEST(LiveFeedBackend, NonMultipleDurationOvershootsLikeRunUntil) {
  MetricStore store;
  append_windows(&store, 0, 4);
  LiveFeedBackend backend(&store, live_options());
  // 150 s is 1.25 windows; the simulator steps whole windows and lands on
  // the next boundary, so the observation must hold 2 windows.
  const ExperimentObservations obs = backend.observe(150);
  EXPECT_EQ(obs.total_rps.size(), 2u);
  EXPECT_EQ(backend.cursor(), 2 * kWindow);
  EXPECT_THROW(backend.observe(0), std::invalid_argument);
  EXPECT_THROW(backend.observe(-kWindow), std::invalid_argument);
}

TEST(LiveFeedBackend, TryObservePendingLeavesCursorUntouched) {
  MetricStore store;
  append_windows(&store, 0, 2);
  LiveFeedBackend backend(&store, live_options());
  EXPECT_EQ(backend.try_observe(3 * kWindow), std::nullopt);
  EXPECT_EQ(backend.cursor(), 0);  // a pending poll must not consume
  // The feed grows; the identical call now succeeds from the same cursor.
  append_windows(&store, 2 * kWindow, 1);
  const auto ready = backend.try_observe(3 * kWindow);
  ASSERT_TRUE(ready.has_value());
  EXPECT_EQ(ready->total_rps.size(), 3u);
  EXPECT_DOUBLE_EQ(ready->total_rps[0], 100.0 * 8.0);
  EXPECT_EQ(backend.cursor(), 3 * kWindow);
}

TEST(LiveFeedBackend, SealedFeedThrowsTraceExhausted) {
  MetricStore store;
  append_windows(&store, 0, 2);
  LiveFeedBackend::Options opt = live_options();
  opt.sealed = true;
  LiveFeedBackend backend(&store, opt);
  try {
    backend.observe(3 * kWindow);
    FAIL() << "expected trace exhausted";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("trace exhausted at t=0"), std::string::npos) << what;
    EXPECT_NE(what.find("recording ends at t=240"), std::string::npos) << what;
  }
}

TEST(LiveFeedBackend, LiveFeedWithoutPumpThrowsFeedExhausted) {
  MetricStore store;
  append_windows(&store, 0, 2);
  LiveFeedBackend backend(&store, live_options());
  try {
    backend.observe(3 * kWindow);
    FAIL() << "expected feed exhausted";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("feed exhausted"), std::string::npos) << what;
    EXPECT_NE(what.find("feed ends at t=240"), std::string::npos) << what;
  }
}

TEST(LiveFeedBackend, PumpExtendsTheFeedInsideBlockingObserve) {
  MetricStore store;
  LiveFeedBackend backend(&store, live_options());
  std::vector<SimTime> asked;
  backend.set_pump([&](SimTime needed_end) {
    asked.push_back(needed_end);
    // Grow one window per call, like a simulator stepping on demand.
    append_windows(&store, backend.feed_end() == 0 ? 0 : backend.feed_end(),
                   1);
    return true;
  });
  const ExperimentObservations obs = backend.observe(3 * kWindow);
  EXPECT_EQ(obs.total_rps.size(), 3u);
  ASSERT_GE(asked.size(), 3u);
  EXPECT_EQ(asked.front(), 3 * kWindow);  // always the span it still needs
}

TEST(LiveFeedBackend, ClosedPumpMeansExhausted) {
  MetricStore store;
  append_windows(&store, 0, 1);
  LiveFeedBackend backend(&store, live_options());
  backend.set_pump([](SimTime) { return false; });  // feed closed
  EXPECT_THROW(backend.observe(2 * kWindow), std::runtime_error);
  EXPECT_EQ(backend.cursor(), 0);
}

TEST(LiveFeedBackend, ServingChangesRangeCheckAndNotifyHook) {
  MetricStore store;
  append_windows(&store, 0, 2);
  LiveFeedBackend backend(&store, live_options());
  std::vector<std::size_t> hook_calls;
  backend.set_serving_hook(
      [&](std::size_t servers) { hook_calls.push_back(servers); });
  backend.set_serving_count(6);
  EXPECT_EQ(backend.serving_count(), 6u);
  ASSERT_EQ(hook_calls.size(), 1u);
  EXPECT_EQ(hook_calls[0], 6u);
  EXPECT_THROW(backend.set_serving_count(0), std::invalid_argument);
  EXPECT_THROW(backend.set_serving_count(11), std::invalid_argument);
  EXPECT_EQ(hook_calls.size(), 1u);  // rejected counts never reach the hook
}

TEST(LiveFeedBackend, ValidationCatchesReplayDivergence) {
  MetricStore store;
  append_windows(&store, 0, 2, /*servers=*/8.0);
  LiveFeedBackend::Options opt = live_options();
  opt.validate_serving = true;
  LiveFeedBackend backend(&store, opt);
  // The trace recorded 8 active servers in the cursor window; asking for 4
  // means the replay diverged from the recorded experiment.
  try {
    backend.set_serving_count(4);
    FAIL() << "expected divergence";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("replay diverged"),
              std::string::npos);
  }
  EXPECT_EQ(backend.serving_count(), 8u);  // the rejected count not adopted
  // Fewer active servers on record than requested is legal (maintenance
  // takes rotation members offline); so is a change past the recording.
  EXPECT_NO_THROW(backend.set_serving_count(9));
  (void)backend.observe(2 * kWindow);  // cursor now past the recorded end
  EXPECT_NO_THROW(backend.set_serving_count(4));
}

TEST(LiveFeedBackend, ValidationOffAcceptsAnyInRangeCount) {
  MetricStore store;
  append_windows(&store, 0, 2, /*servers=*/8.0);
  LiveFeedBackend backend(&store, live_options());
  EXPECT_NO_THROW(backend.set_serving_count(4));
  EXPECT_EQ(backend.serving_count(), 4u);
}

}  // namespace
}  // namespace headroom::core
