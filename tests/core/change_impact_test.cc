#include "core/change_impact.h"

#include <gtest/gtest.h>

namespace headroom::core {
namespace {

// Pool-B-shaped production model.
PoolResponseModel production_model() {
  telemetry::AlignedPair cpu;
  telemetry::AlignedPair latency;
  for (int i = 0; i < 300; ++i) {
    const double rps = 150.0 + 550.0 * static_cast<double>(i) / 299.0;
    cpu.x.push_back(rps);
    cpu.y.push_back(0.028 * rps + 1.37);
    latency.x.push_back(rps);
    latency.y.push_back(4.028e-5 * rps * rps - 0.031 * rps + 36.68);
  }
  return PoolResponseModel::fit(cpu, latency);
}

// Builds a synthetic gate result with the given flat latency delta and CPU
// delta at every step.
GateResult gate_with(double latency_delta_ms, double cpu_delta_pct,
                     double load_slope_ms_per_rps = 0.0) {
  GateResult gate;
  std::vector<double> xs;
  std::vector<double> ys;
  for (double rps : {100.0, 200.0, 300.0, 400.0, 500.0}) {
    LoadStepComparison step;
    step.rps_per_server = rps;
    step.baseline_latency_p95_ms = 30.0;
    step.candidate_latency_p95_ms =
        30.0 + latency_delta_ms + load_slope_ms_per_rps * rps;
    step.baseline_mean_cpu_pct = 10.0;
    step.candidate_mean_cpu_pct = 10.0 + cpu_delta_pct;
    gate.steps.push_back(step);
    xs.push_back(rps);
    ys.push_back(step.candidate_latency_p95_ms - step.baseline_latency_p95_ms);
  }
  gate.delta_curve = stats::fit_quadratic(xs, ys);
  gate.pass = latency_delta_ms <= 0.0;
  return gate;
}

HeadroomPolicy policy_32_8() {
  HeadroomPolicy policy;
  policy.qos.latency.p95_ms = 32.8;
  return policy;
}

TEST(ChangeImpact, NeutralChangeKeepsSizing) {
  const ChangeImpactPlanner planner(policy_32_8());
  const PoolResponseModel model = production_model();
  const ChangeImpactPlan plan =
      planner.plan(model, gate_with(0.0, 0.0), 377.0, 100);
  EXPECT_EQ(plan.servers_after, plan.servers_before);
  EXPECT_FALSE(plan.slo_unreachable);
  EXPECT_NEAR(plan.cpu_delta_pct, 0.0, 1e-9);
}

TEST(ChangeImpact, RegressionNeedsMoreServers) {
  const ChangeImpactPlanner planner(policy_32_8());
  const PoolResponseModel model = production_model();
  // +1.5 ms flat latency: eats most of the 32.8 - 30.7 SLO budget.
  const ChangeImpactPlan plan =
      planner.plan(model, gate_with(1.5, 3.0), 377.0, 100);
  EXPECT_GT(plan.servers_after, plan.servers_before);
  EXPECT_NEAR(plan.cpu_delta_pct, 3.0, 0.1);
  EXPECT_GT(plan.additional_servers_fraction(), 0.0);
}

TEST(ChangeImpact, ImprovementNeedsFewerServers) {
  const ChangeImpactPlanner planner(policy_32_8());
  const PoolResponseModel model = production_model();
  const ChangeImpactPlan plan =
      planner.plan(model, gate_with(-1.5, -2.0), 377.0, 100);
  EXPECT_LT(plan.servers_after, plan.servers_before);
  EXPECT_LT(plan.additional_servers_fraction(), 0.0);
}

TEST(ChangeImpact, LoadDependentRegressionShrinksFeasibleLoad) {
  const ChangeImpactPlanner planner(policy_32_8());
  const PoolResponseModel model = production_model();
  // Delta grows 0.01 ms per RPS: small at 100 RPS, ~4 ms at 400.
  const ChangeImpactPlan flat =
      planner.plan(model, gate_with(0.5, 0.0), 377.0, 100);
  const ChangeImpactPlan sloped =
      planner.plan(model, gate_with(0.5, 0.0, 0.01), 377.0, 100);
  EXPECT_GT(sloped.servers_after, flat.servers_after);
}

TEST(ChangeImpact, HopelessChangeFlaggedUnreachable) {
  const ChangeImpactPlanner planner(policy_32_8());
  const PoolResponseModel model = production_model();
  // +30 ms everywhere: no pool size can meet a 32.8 ms SLO.
  const ChangeImpactPlan plan =
      planner.plan(model, gate_with(30.0, 0.0), 377.0, 100);
  EXPECT_TRUE(plan.slo_unreachable);
  EXPECT_EQ(plan.servers_after, 100u);
}

TEST(ChangeImpact, PredictedLatencyComposesCurves) {
  const PoolResponseModel model = production_model();
  const GateResult gate = gate_with(2.0, 0.0);
  const ShiftedResponseModel shifted(model, gate);
  EXPECT_NEAR(shifted.predict_latency_ms(377.0),
              model.predict_latency_ms(377.0) + 2.0, 0.05);
}

TEST(ChangeImpact, RejectsBadInputs) {
  EXPECT_THROW(ChangeImpactPlanner(HeadroomPolicy{.qos = {{0.0}, {}}}),
               std::invalid_argument);
  const ChangeImpactPlanner planner(policy_32_8());
  const PoolResponseModel model = production_model();
  EXPECT_THROW((void)planner.plan(model, gate_with(0, 0), 377.0, 0),
               std::invalid_argument);
  EXPECT_THROW((void)planner.plan(model, gate_with(0, 0), 0.0, 10),
               std::invalid_argument);
}

}  // namespace
}  // namespace headroom::core
