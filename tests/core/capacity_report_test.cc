#include "core/capacity_report.h"

#include <gtest/gtest.h>

namespace headroom::core {
namespace {

CapacityReport paper_table_iv() {
  // The published rows (Table IV), efficiency/online as fractions.
  CapacityReport report;
  report.add_row({"A", 0.15, 9.0, 0.04});
  report.add_row({"B", 0.33, 2.0, 0.27});
  report.add_row({"C", 0.04, 7.0, 0.07});
  report.add_row({"D", 0.33, 8.0, 0.00});
  report.add_row({"E", 0.33, 2.0, 0.02});
  report.add_row({"F", 0.33, 4.0, 0.00});
  report.add_row({"G", 0.05, 1.0, 0.00});
  return report;
}

TEST(CapacityReport, TotalComposesMultiplicatively) {
  PoolSavingsRow row{"X", 0.2, 0.0, 0.1};
  EXPECT_NEAR(row.total_savings(), 1.0 - 0.8 * 0.9, 1e-12);  // 28%
}

TEST(CapacityReport, ZeroSavingsZeroTotal) {
  PoolSavingsRow row{"X", 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(row.total_savings(), 0.0);
}

TEST(CapacityReport, PaperMeansReproduced) {
  // The paper's summary row: ~20% efficiency, ~5 ms, ~10% online, ~30% total.
  const CapacityReport report = paper_table_iv();
  EXPECT_NEAR(report.mean_efficiency_savings(), 0.22, 0.03);
  EXPECT_NEAR(report.mean_latency_impact_ms(), 4.7, 0.5);
  EXPECT_NEAR(report.mean_online_savings(), 0.057, 0.01);
  EXPECT_NEAR(report.mean_total_savings(), 0.27, 0.04);
}

TEST(CapacityReport, PoolBRowMatchesPaperTotal) {
  const CapacityReport report = paper_table_iv();
  // B: 33% efficiency + 27% online → ~51% multiplicative (paper prints 60%
  // by additive composition; ours is the conservative compounding).
  EXPECT_NEAR(report.rows()[1].total_savings(), 0.51, 0.01);
}

TEST(CapacityReport, EmptyReportMeansAreZero) {
  const CapacityReport report;
  EXPECT_EQ(report.mean_efficiency_savings(), 0.0);
  EXPECT_EQ(report.mean_total_savings(), 0.0);
}

TEST(CapacityReport, TableRendersAllRows) {
  const CapacityReport report = paper_table_iv();
  const std::string table = report.to_table();
  for (const char* pool : {"A", "B", "C", "D", "E", "F", "G", "Mean"}) {
    EXPECT_NE(table.find(pool), std::string::npos) << pool;
  }
  EXPECT_NE(table.find("Efficiency"), std::string::npos);
  EXPECT_NE(table.find("33%"), std::string::npos);
}

}  // namespace
}  // namespace headroom::core
