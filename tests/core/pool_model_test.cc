#include "core/pool_model.h"

#include <gtest/gtest.h>

#include <random>

namespace headroom::core {
namespace {

// Builds aligned scatters following pool B's published curves.
struct PoolBData {
  telemetry::AlignedPair cpu;
  telemetry::AlignedPair latency;
};

PoolBData pool_b_data(double noise_sigma = 0.0, std::uint64_t seed = 1,
                      double lo = 150.0, double hi = 650.0) {
  PoolBData d;
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> noise(0.0, noise_sigma);
  for (int i = 0; i < 400; ++i) {
    const double rps =
        lo + (hi - lo) * static_cast<double>(i % 100) / 99.0;
    d.cpu.x.push_back(rps);
    d.cpu.y.push_back(0.028 * rps + 1.37 + noise(rng) * 0.1);
    d.latency.x.push_back(rps);
    d.latency.y.push_back(4.028e-5 * rps * rps - 0.031 * rps + 36.68 +
                          noise(rng));
  }
  return d;
}

TEST(PoolResponseModel, RecoversPaperCurves) {
  const PoolBData d = pool_b_data(0.3, 2);
  const PoolResponseModel model = PoolResponseModel::fit(d.cpu, d.latency);
  EXPECT_NEAR(model.cpu_fit().slope, 0.028, 0.001);
  EXPECT_NEAR(model.cpu_fit().intercept, 1.37, 0.15);
  EXPECT_NEAR(model.latency_fit().coeffs[2], 4.028e-5, 2e-5);
  EXPECT_GT(model.latency_inlier_fraction(), 0.9);
}

TEST(PoolResponseModel, PredictionsEvaluateFits) {
  const PoolBData d = pool_b_data();
  const PoolResponseModel model = PoolResponseModel::fit(d.cpu, d.latency);
  EXPECT_NEAR(model.predict_cpu_pct(377.0), 0.028 * 377 + 1.37, 0.05);
  EXPECT_NEAR(model.predict_latency_ms(377.0),
              4.028e-5 * 377 * 377 - 0.031 * 377 + 36.68, 0.2);
}

TEST(PoolResponseModel, PaperPoolBForecast) {
  // §III-A1: 30% reduction at P95 load 377 RPS/server: forecast 31.5 ms
  // (and ~16.5% CPU) at the resulting 540 RPS/server.
  const PoolBData d = pool_b_data();
  const PoolResponseModel model = PoolResponseModel::fit(d.cpu, d.latency);
  const ReductionForecast f = model.forecast_reduction(377.0, 100, 70);
  EXPECT_NEAR(f.rps_per_server_after, 538.6, 1.0);
  EXPECT_NEAR(f.latency_after_ms, 31.5, 0.5);
  EXPECT_NEAR(f.cpu_after_pct, 16.5, 0.3);
  EXPECT_NEAR(f.latency_delta_ms(),
              f.latency_after_ms - f.latency_before_ms, 1e-12);
}

TEST(PoolResponseModel, ForecastValidatesCounts) {
  const PoolBData d = pool_b_data();
  const PoolResponseModel model = PoolResponseModel::fit(d.cpu, d.latency);
  EXPECT_THROW((void)model.forecast_reduction(377.0, 0, 10),
               std::invalid_argument);
  EXPECT_THROW((void)model.forecast_reduction(377.0, 10, 0),
               std::invalid_argument);
}

TEST(PoolResponseModel, GrowingPoolLowersPerServerLoad) {
  const PoolBData d = pool_b_data();
  const PoolResponseModel model = PoolResponseModel::fit(d.cpu, d.latency);
  const ReductionForecast f = model.forecast_reduction(377.0, 70, 100);
  EXPECT_LT(f.rps_per_server_after, 377.0);
  EXPECT_LT(f.cpu_after_pct, f.cpu_before_pct);
}

TEST(PoolResponseModel, RansacSurvivesDeploymentContamination) {
  PoolBData d = pool_b_data(0.3, 3);
  // Contaminate 10% of latency samples with +25 ms deployment noise.
  for (std::size_t i = 0; i < d.latency.y.size(); i += 10) {
    d.latency.y[i] += 25.0;
  }
  PoolModelOptions opt;
  opt.ransac_threshold_ms = 2.0;
  const PoolResponseModel model = PoolResponseModel::fit(d.cpu, d.latency, opt);
  EXPECT_NEAR(model.predict_latency_ms(377.0), 30.7, 0.8);
  EXPECT_LT(model.latency_inlier_fraction(), 0.95);

  // Plain least squares (RANSAC off) is biased upward by the same data.
  PoolModelOptions plain;
  plain.ransac_threshold_ms = 0.0;
  const PoolResponseModel biased = PoolResponseModel::fit(d.cpu, d.latency, plain);
  EXPECT_GT(biased.predict_latency_ms(377.0),
            model.predict_latency_ms(377.0) + 1.0);
}

TEST(PoolResponseModel, MaxRpsWithinSloRespectsThreshold) {
  const PoolBData d = pool_b_data();
  const PoolResponseModel model = PoolResponseModel::fit(d.cpu, d.latency);
  const double max_rps = model.max_rps_within_slo(377.0, 33.5, 2.0);
  EXPECT_GT(max_rps, 377.0);
  EXPECT_LE(model.predict_latency_ms(max_rps), 33.5 + 1e-6);
  // Just beyond, the SLO is violated (unless capped by extrapolation).
  if (max_rps < 377.0 * 2.0 * 0.999) {
    EXPECT_GT(model.predict_latency_ms(max_rps * 1.02), 33.5);
  }
}

TEST(PoolResponseModel, MaxRpsCappedByExtrapolationLimit) {
  // A flat latency curve would allow unbounded extrapolation; the cap must
  // bite ("data is insufficient to forecast ... at even higher loads").
  telemetry::AlignedPair flat_cpu;
  telemetry::AlignedPair flat_latency;
  for (int i = 0; i < 50; ++i) {
    const double rps = 100.0 + i;
    flat_cpu.x.push_back(rps);
    flat_cpu.y.push_back(0.01 * rps);
    flat_latency.x.push_back(rps);
    flat_latency.y.push_back(20.0);
  }
  const PoolResponseModel model = PoolResponseModel::fit(flat_cpu, flat_latency);
  EXPECT_NEAR(model.max_rps_within_slo(100.0, 100.0, 1.5), 150.0, 2.0);
}

TEST(PoolResponseModel, MaxRpsAnchorsWhenAlreadyViolating) {
  const PoolBData d = pool_b_data();
  const PoolResponseModel model = PoolResponseModel::fit(d.cpu, d.latency);
  // SLO below current latency: no headroom at all.
  EXPECT_DOUBLE_EQ(model.max_rps_within_slo(377.0, 10.0), 377.0);
}

TEST(PoolResponseModel, MaxRpsRejectsBadAnchor) {
  const PoolBData d = pool_b_data();
  const PoolResponseModel model = PoolResponseModel::fit(d.cpu, d.latency);
  EXPECT_THROW((void)model.max_rps_within_slo(0.0, 30.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace headroom::core
