// CapacityForecaster: exhaustion dates with bands over QueryEngine-read
// history. The synthetic linear-growth case pins the forecast against the
// analytic crossing; the tiered fixture pins that forecasts survive raw
// eviction and stay bit-identical to raw wherever raw coverage exists.
#include "core/capacity_forecast.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "telemetry/metric_store.h"
#include "telemetry/metrics.h"

namespace headroom::core {
namespace {

using telemetry::MetricKind;
using telemetry::MetricStore;
using telemetry::SeriesKey;
using telemetry::SimTime;

constexpr SimTime kWindow = 120;
const SeriesKey kRps{0, 0, SeriesKey::kPoolScope,
                     MetricKind::kRequestsPerSecond};
const SeriesKey kServers{0, 0, SeriesKey::kPoolScope,
                         MetricKind::kActiveServers};

/// Records a pool whose TOTAL demand is 100 + 0.01 t RPS, served by 10
/// online servers (pool-scope kRequestsPerSecond is mean per-server RPS).
void record_linear_history(MetricStore* store, SimTime until) {
  for (SimTime t = 0; t < until; t += kWindow) {
    const double total = 100.0 + 0.01 * static_cast<double>(t);
    store->record(kRps, t, total / 10.0);
    store->record(kServers, t, 10.0);
  }
}

CapacityForecaster::PoolSpec ten_server_pool() {
  CapacityForecaster::PoolSpec pool;
  pool.servers = 10;
  pool.target_rps_per_server = 20.0;  // capacity line at 200 total RPS
  return pool;
}

TEST(CapacityForecaster, RejectsBadConstruction) {
  MetricStore store;
  const query::QueryEngine engine(&store);
  EXPECT_THROW(CapacityForecaster(nullptr, {}), std::invalid_argument);
  CapacityForecastOptions bad;
  bad.window_seconds = 0;
  EXPECT_THROW(CapacityForecaster(&engine, bad), std::invalid_argument);
  bad = {};
  bad.critical_seconds = bad.horizon_seconds + 1;
  EXPECT_THROW(CapacityForecaster(&engine, bad), std::invalid_argument);
  bad = {};
  bad.growth_multiplier = 0.0;
  EXPECT_THROW(CapacityForecaster(&engine, bad), std::invalid_argument);

  const CapacityForecaster forecaster(&engine, {});
  CapacityForecaster::PoolSpec empty;
  empty.servers = 0;
  EXPECT_THROW((void)forecaster.forecast_pool(empty, 0, 7200),
               std::invalid_argument);
}

TEST(CapacityForecaster, LinearGrowthExhaustionMatchesAnalyticAnswer) {
  // demand(t) = 100 + 0.01 t crosses the 200 RPS capacity line at exactly
  // t* = 10000 s. History stops at 7200 s; the forecast's crossing must
  // land within one window of t*, and the band must bracket it.
  MetricStore store;
  record_linear_history(&store, 7200);
  const query::QueryEngine engine(&store);

  CapacityForecastOptions options;
  options.window_seconds = kWindow;
  options.horizon_seconds = 86400;
  options.critical_seconds = 86400;
  const CapacityForecaster forecaster(&engine, options);

  const PoolCapacityForecast f =
      forecaster.forecast_pool(ten_server_pool(), 0, 7200);
  EXPECT_EQ(f.windows_observed, 60u);
  EXPECT_TRUE(f.history_exact);
  EXPECT_DOUBLE_EQ(f.capacity_rps, 200.0);
  EXPECT_NEAR(f.last_demand_rps, 100.0 + 0.01 * 7080.0, 1e-9);
  EXPECT_NEAR(f.growth_per_day, 0.01 * 86400.0, 1e-6);

  constexpr double kAnalytic = 10000.0;
  ASSERT_TRUE(f.exhausts);
  EXPECT_LE(std::abs(static_cast<double>(f.exhaustion_time) - kAnalytic),
            static_cast<double>(kWindow))
      << "crossing must land within one window of the analytic date";
  ASSERT_TRUE(f.earliest_within_horizon);
  ASSERT_TRUE(f.latest_within_horizon);
  EXPECT_LE(f.exhaustion_earliest, f.exhaustion_time);
  EXPECT_GE(f.exhaustion_latest, f.exhaustion_time);
  EXPECT_LE(static_cast<double>(f.exhaustion_earliest),
            kAnalytic + static_cast<double>(kWindow));
  EXPECT_GE(static_cast<double>(f.exhaustion_latest),
            kAnalytic - static_cast<double>(kWindow))
      << "band must contain the analytic crossing";

  EXPECT_EQ(f.risk, HeadroomRisk::kCritical) << "crossing inside critical";
  EXPECT_GT(f.recommended_additional_servers, 0u);
  // Buying the recommendation clears the horizon's upper-band peak.
  const double new_capacity =
      static_cast<double>(f.servers + f.recommended_additional_servers) * 20.0;
  EXPECT_GE(new_capacity, f.peak_upper_rps);
}

TEST(CapacityForecaster, RiskCategories) {
  MetricStore store;
  record_linear_history(&store, 7200);
  const query::QueryEngine engine(&store);

  CapacityForecastOptions options;
  options.window_seconds = kWindow;
  options.horizon_seconds = 86400;
  options.critical_seconds = 1800;  // crossing ~2900 s out is past critical
  const CapacityForecaster forecaster(&engine, options);
  const PoolCapacityForecast warning =
      forecaster.forecast_pool(ten_server_pool(), 0, 7200);
  EXPECT_EQ(warning.risk, HeadroomRisk::kWarning);

  // Demand already over the line -> exhausted.
  CapacityForecaster::PoolSpec tiny = ten_server_pool();
  tiny.servers = 5;  // capacity 100 < last demand 170.8
  const PoolCapacityForecast exhausted =
      forecaster.forecast_pool(tiny, 0, 7200);
  EXPECT_EQ(exhausted.risk, HeadroomRisk::kExhausted);

  // Huge pool, growing demand, crossing beyond the horizon -> ok.
  CapacityForecaster::PoolSpec huge = ten_server_pool();
  huge.servers = 1000;
  const PoolCapacityForecast ok = forecaster.forecast_pool(huge, 0, 7200);
  EXPECT_FALSE(ok.exhausts);
  EXPECT_EQ(ok.risk, HeadroomRisk::kOk);
  EXPECT_EQ(ok.recommended_additional_servers, 0u);

  // Shrinking demand -> no_growth.
  MetricStore shrinking;
  for (SimTime t = 0; t < 7200; t += kWindow) {
    shrinking.record(kRps, t, (150.0 - 0.005 * static_cast<double>(t)) / 10.0);
    shrinking.record(kServers, t, 10.0);
  }
  const query::QueryEngine shrink_engine(&shrinking);
  const CapacityForecaster shrink_forecaster(&shrink_engine, options);
  const PoolCapacityForecast flat =
      shrink_forecaster.forecast_pool(ten_server_pool(), 0, 7200);
  EXPECT_LT(flat.growth_per_day, 0.0);
  EXPECT_EQ(flat.risk, HeadroomRisk::kNoGrowth);
}

TEST(CapacityForecaster, GrowthMultiplierScalesTheWhatIf) {
  MetricStore store;
  record_linear_history(&store, 7200);
  const query::QueryEngine engine(&store);

  CapacityForecastOptions options;
  options.window_seconds = kWindow;
  options.horizon_seconds = 86400;
  options.critical_seconds = 86400;
  const CapacityForecaster base(&engine, options);
  options.growth_multiplier = 2.0;
  const CapacityForecaster doubled(&engine, options);

  const PoolCapacityForecast f1 =
      base.forecast_pool(ten_server_pool(), 0, 7200);
  const PoolCapacityForecast f2 =
      doubled.forecast_pool(ten_server_pool(), 0, 7200);
  EXPECT_DOUBLE_EQ(f2.last_demand_rps, 2.0 * f1.last_demand_rps);
  EXPECT_DOUBLE_EQ(f2.growth_per_day, 2.0 * f1.growth_per_day);
  EXPECT_DOUBLE_EQ(f2.peak_forecast_rps, 2.0 * f1.peak_forecast_rps);
  // Doubled demand is over the 200 RPS line from the start.
  EXPECT_EQ(f2.risk, HeadroomRisk::kExhausted);
  ASSERT_TRUE(f2.exhausts);
  EXPECT_LE(f2.exhaustion_time, f1.exhaustion_time);
}

TEST(CapacityForecaster, DarkWindowsAreSkippedNotZeroed) {
  MetricStore store;
  for (SimTime t = 0; t < 7200; t += kWindow) {
    if (t >= 2400 && t < 3600) continue;  // a 20-minute outage gap
    store.record(kRps, t, 10.0);
    store.record(kServers, t, 10.0);
  }
  const query::QueryEngine engine(&store);
  CapacityForecastOptions options;
  options.window_seconds = kWindow;
  const CapacityForecaster forecaster(&engine, options);
  const PoolCapacityForecast f =
      forecaster.forecast_pool(ten_server_pool(), 0, 7200);
  EXPECT_EQ(f.windows_observed, 50u);  // 60 minus the 10 dark windows
  // Flat 100 RPS against a 200 RPS line: nothing exhausts.
  EXPECT_FALSE(f.exhausts);
}

TEST(CapacityForecaster, TieredHistoryKeepsForecastingAfterRawEviction) {
  // Two identical histories; one store evicts raw aggressively into a
  // 120 s window tier (bucket == window, so tier means ARE the raw window
  // values). The forecast must keep working after eviction and, because
  // every per-window read is numerically unchanged, stay bit-identical to
  // the all-raw forecast.
  constexpr SimTime kEnd = 2 * 86400;
  MetricStore raw;
  record_linear_history(&raw, kEnd);

  MetricStore tiered;
  MetricStore::TieringPolicy policy;
  policy.window_bucket_seconds = kWindow;
  policy.day_bucket_seconds = 86400;
  policy.window_tier_retention = 0;  // keep the window tier forever
  tiered.set_tiering(policy);
  tiered.set_retention(3600);
  record_linear_history(&tiered, kEnd);

  const query::QueryEngine raw_engine(&raw);
  const query::QueryEngine tiered_engine(&tiered);
  ASSERT_TRUE(raw_engine.raw_covers(0, kEnd));
  ASSERT_FALSE(tiered_engine.raw_covers(0, kEnd));

  CapacityForecastOptions options;
  options.window_seconds = kWindow;
  options.horizon_seconds = 86400;
  options.critical_seconds = 86400;
  const CapacityForecaster raw_forecaster(&raw_engine, options);
  const CapacityForecaster tiered_forecaster(&tiered_engine, options);

  const PoolCapacityForecast a =
      raw_forecaster.forecast_pool(ten_server_pool(), 0, kEnd);
  const PoolCapacityForecast b =
      tiered_forecaster.forecast_pool(ten_server_pool(), 0, kEnd);

  EXPECT_TRUE(a.history_exact);
  EXPECT_FALSE(b.history_exact) << "tiered history must be flagged";
  EXPECT_EQ(a.windows_observed, b.windows_observed);
  // Bit-identical, not just close: the report pins depend on it.
  EXPECT_EQ(a.last_demand_rps, b.last_demand_rps);
  EXPECT_EQ(a.growth_per_day, b.growth_per_day);
  EXPECT_EQ(a.peak_forecast_rps, b.peak_forecast_rps);
  EXPECT_EQ(a.peak_upper_rps, b.peak_upper_rps);
  EXPECT_EQ(a.exhausts, b.exhausts);
  EXPECT_EQ(a.exhaustion_time, b.exhaustion_time);
  EXPECT_EQ(a.exhaustion_earliest, b.exhaustion_earliest);
  EXPECT_EQ(a.exhaustion_latest, b.exhaustion_latest);
  EXPECT_EQ(a.risk, b.risk);
  EXPECT_EQ(a.recommended_additional_servers,
            b.recommended_additional_servers);

  // The formatted report lines agree except for the history_exact flag.
  std::string line_a = format_capacity_forecasts({a});
  std::string line_b = format_capacity_forecasts({b});
  const auto scrub = [](std::string* s) {
    const std::size_t pos = s->find(" history_exact = ");
    const std::size_t end = s->find(" last_demand_rps", pos);
    s->erase(pos, end - pos);
  };
  scrub(&line_a);
  scrub(&line_b);
  EXPECT_EQ(line_a, line_b);
}

TEST(CapacityForecastFormat, LinesAreMachineReadable) {
  MetricStore store;
  record_linear_history(&store, 7200);
  const query::QueryEngine engine(&store);
  CapacityForecastOptions options;
  options.window_seconds = kWindow;
  const CapacityForecaster forecaster(&engine, options);
  const PoolCapacityForecast f =
      forecaster.forecast_pool(ten_server_pool(), 0, 7200);

  const std::string text = format_capacity_forecasts({f});
  EXPECT_EQ(text.rfind("pool dc=0 pool=0 ", 0), 0u) << text;
  for (const char* field :
       {" servers = ", " capacity_rps = ", " windows = ", " history_exact = ",
        " last_demand_rps = ", " growth_per_day = ", " peak_forecast_rps = ",
        " peak_upper_rps = ", " exhaustion = ", " earliest = ", " latest = ",
        " risk = ", " buy_servers = "}) {
    EXPECT_NE(text.find(field), std::string::npos) << field;
  }
  EXPECT_EQ(format_capacity_forecasts({}), "");
}

}  // namespace
}  // namespace headroom::core
