#include "core/server_grouper.h"

#include <gtest/gtest.h>

#include <random>

namespace headroom::core {
namespace {

telemetry::PercentileSnapshot snapshot_around(double level, double spread,
                                              std::mt19937_64& rng) {
  std::normal_distribution<double> jitter(0.0, spread * 0.05);
  telemetry::PercentileSnapshot s;
  s.p5 = level - spread + jitter(rng);
  s.p25 = level - spread / 2 + jitter(rng);
  s.p50 = level + jitter(rng);
  s.p75 = level + spread / 2 + jitter(rng);
  s.p95 = level + spread + jitter(rng);
  s.mean = level;
  s.min = s.p5 - spread * 0.2;
  s.max = s.p95 + spread * 0.2;
  s.count = 720;
  return s;
}

TEST(FeaturesFromSnapshot, PercentilesCopiedAndRegressionComputed) {
  telemetry::PercentileSnapshot s;
  s.p5 = 5.0;
  s.p25 = 25.0;
  s.p50 = 50.0;
  s.p75 = 75.0;
  s.p95 = 95.0;
  const GroupingFeatures f = features_from_snapshot(s);
  EXPECT_DOUBLE_EQ(f.p5, 5.0);
  EXPECT_DOUBLE_EQ(f.p95, 95.0);
  // Value == percentile rank: slope 1, intercept 0, perfect fit.
  EXPECT_NEAR(f.slope, 1.0, 1e-12);
  EXPECT_NEAR(f.intercept, 0.0, 1e-10);
  EXPECT_NEAR(f.r_squared, 1.0, 1e-12);
}

TEST(FeaturesFromSnapshot, AsRowMatchesNames) {
  const GroupingFeatures f = features_from_snapshot({});
  EXPECT_EQ(f.as_row().size(), GroupingFeatures::names().size());
}

TEST(ServerGrouper, UniformPoolIsOneGroup) {
  std::mt19937_64 rng(3);
  std::vector<telemetry::PercentileSnapshot> servers;
  for (int i = 0; i < 60; ++i) servers.push_back(snapshot_around(12.0, 4.0, rng));
  const ServerGrouper grouper;
  const PoolGrouping g = grouper.group_servers(servers);
  EXPECT_EQ(g.group_count, 1u);
  EXPECT_FALSE(g.multimodal());
}

TEST(ServerGrouper, HardwareRefreshPoolSplitsInTwo) {
  // Fig. 3's bimodal pool: newer hardware runs visibly cooler.
  std::mt19937_64 rng(5);
  std::vector<telemetry::PercentileSnapshot> servers;
  for (int i = 0; i < 40; ++i) servers.push_back(snapshot_around(18.0, 5.0, rng));
  for (int i = 0; i < 40; ++i) servers.push_back(snapshot_around(7.0, 2.0, rng));
  const ServerGrouper grouper;
  const PoolGrouping g = grouper.group_servers(servers);
  EXPECT_EQ(g.group_count, 2u);
  EXPECT_TRUE(g.multimodal());
  // First 40 and last 40 land in different groups.
  EXPECT_NE(g.assignment[0], g.assignment[79]);
  EXPECT_EQ(g.assignment[0], g.assignment[39]);
  EXPECT_EQ(g.assignment[40], g.assignment[79]);
  EXPECT_GT(g.silhouette, 0.55);
}

TEST(ServerGrouper, TinyPoolNeverSplits) {
  std::mt19937_64 rng(7);
  std::vector<telemetry::PercentileSnapshot> servers;
  servers.push_back(snapshot_around(5.0, 1.0, rng));
  servers.push_back(snapshot_around(50.0, 1.0, rng));
  const ServerGrouper grouper;
  const PoolGrouping g = grouper.group_servers(servers);
  EXPECT_EQ(g.group_count, 1u);  // below the 4-server minimum
}

TEST(ServerGrouper, MinSilhouetteGatesSplitting) {
  // Overlapping populations: a strict threshold keeps one group.
  std::mt19937_64 rng(9);
  std::vector<telemetry::PercentileSnapshot> servers;
  for (int i = 0; i < 40; ++i) servers.push_back(snapshot_around(10.0, 4.0, rng));
  for (int i = 0; i < 40; ++i) servers.push_back(snapshot_around(11.0, 4.0, rng));
  GrouperOptions strict;
  strict.min_silhouette = 0.9;
  const PoolGrouping g = ServerGrouper(strict).group_servers(servers);
  EXPECT_EQ(g.group_count, 1u);
}

TEST(ServerGrouper, PoolSnapshotsFiltersFleetOutput) {
  std::vector<sim::ServerDayCpu> days;
  for (std::uint32_t s = 0; s < 5; ++s) {
    days.push_back({0, 0, s, 0, {}});
    days.push_back({0, 0, s, 1, {}});  // second day
    days.push_back({0, 1, s, 0, {}});  // other pool
    days.push_back({1, 0, s, 0, {}});  // other DC
  }
  const auto snaps = ServerGrouper::pool_snapshots(days, 0, 0, 0);
  EXPECT_EQ(snaps.size(), 5u);
}

TEST(ServerGrouper, FeatureDatasetHasEightColumns) {
  std::vector<GroupingFeatures> features(3);
  const ml::Dataset data = ServerGrouper::feature_dataset(features);
  EXPECT_EQ(data.rows(), 3u);
  EXPECT_EQ(data.cols(), 8u);
  EXPECT_EQ(data.feature_name(0), "p5");
  EXPECT_EQ(data.feature_name(7), "r2");
}

TEST(ServerGrouper, ThreeGenerationPoolFindsThreeGroups) {
  std::mt19937_64 rng(11);
  std::vector<telemetry::PercentileSnapshot> servers;
  for (int i = 0; i < 30; ++i) servers.push_back(snapshot_around(30.0, 3.0, rng));
  for (int i = 0; i < 30; ++i) servers.push_back(snapshot_around(15.0, 2.0, rng));
  for (int i = 0; i < 30; ++i) servers.push_back(snapshot_around(5.0, 1.0, rng));
  const ServerGrouper grouper;
  const PoolGrouping g = grouper.group_servers(servers);
  EXPECT_EQ(g.group_count, 3u);
}

}  // namespace
}  // namespace headroom::core
