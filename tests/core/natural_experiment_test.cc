#include "core/natural_experiment.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>

namespace headroom::core {
namespace {

using telemetry::SimTime;
using telemetry::TimeSeries;

constexpr std::size_t kWindowsPerDay = 720;  // 120 s windows

// Four days of diurnal workload with an injected multiplicative spike on
// day 2 — the shape of the paper's Figs. 4-6 events.
struct EventWorld {
  TimeSeries rps;
  TimeSeries cpu;
  TimeSeries latency;
  SimTime event_start = 0;
  SimTime event_end = 0;
};

EventWorld make_world(double spike_factor, std::uint64_t seed = 3,
                      std::size_t event_windows = 60) {
  EventWorld w;
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> noise(0.0, 1.5);
  const std::size_t event_begin = 2 * kWindowsPerDay + 300;
  w.event_start = static_cast<SimTime>(event_begin) * 120;
  w.event_end = static_cast<SimTime>(event_begin + event_windows) * 120;
  for (std::size_t i = 0; i < 4 * kWindowsPerDay; ++i) {
    const auto t = static_cast<SimTime>(i) * 120;
    const double phase = 2.0 * std::numbers::pi *
                         static_cast<double>(i % kWindowsPerDay) /
                         static_cast<double>(kWindowsPerDay);
    double rps = 100.0 + 20.0 * std::sin(phase) + noise(rng);
    if (t >= w.event_start && t < w.event_end) rps *= spike_factor;
    w.rps.append(t, rps);
    w.cpu.append(t, 0.028 * rps + 1.37 + noise(rng) * 0.05);
    w.latency.append(t, 4.028e-5 * rps * rps - 0.031 * rps + 36.68 +
                            noise(rng) * 0.1);
  }
  return w;
}

TEST(NaturalExperiment, DetectsInjectedEvent) {
  const EventWorld w = make_world(1.56);  // the paper's median +56% event
  const NaturalExperimentAnalyzer analyzer;
  const auto events = analyzer.detect(w.rps);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_NEAR(static_cast<double>(events[0].start),
              static_cast<double>(w.event_start), 3.0 * 120);
  EXPECT_NEAR(events[0].increase_fraction(), 0.56, 0.15);
}

TEST(NaturalExperiment, QuietSeriesHasNoEvents) {
  const EventWorld w = make_world(1.0);
  const NaturalExperimentAnalyzer analyzer;
  EXPECT_TRUE(analyzer.detect(w.rps).empty());
}

TEST(NaturalExperiment, SmallBlipBelowThresholdIgnored) {
  const EventWorld w = make_world(1.15);  // +15% < default 1.30 factor
  const NaturalExperimentAnalyzer analyzer;
  EXPECT_TRUE(analyzer.detect(w.rps).empty());
}

TEST(NaturalExperiment, ShortSeriesYieldsNothing) {
  TimeSeries rps;
  for (int i = 0; i < 10; ++i) rps.append(i * 120, 100.0);
  const NaturalExperimentAnalyzer analyzer;
  EXPECT_TRUE(analyzer.detect(rps).empty());
}

TEST(NaturalExperiment, DiurnalPeaksAreNotEventsEvenWithDeepSwings) {
  // A 2.2x daily swing (trough 45 -> peak 100) must not trigger: the
  // seasonal baseline knows what each hour usually looks like.
  TimeSeries rps;
  std::mt19937_64 rng(5);
  std::normal_distribution<double> noise(0.0, 1.0);
  for (std::size_t i = 0; i < 4 * kWindowsPerDay; ++i) {
    const double phase = 2.0 * std::numbers::pi *
                         static_cast<double>(i % kWindowsPerDay) /
                         static_cast<double>(kWindowsPerDay);
    rps.append(static_cast<SimTime>(i) * 120,
               72.5 + 27.5 * std::sin(phase) + noise(rng));
  }
  const NaturalExperimentAnalyzer analyzer;
  EXPECT_TRUE(analyzer.detect(rps).empty());
}

TEST(NaturalExperiment, FourTimesEventDetectedWithMagnitude) {
  const EventWorld w = make_world(4.0, 7);  // the Fig. 6 event
  const NaturalExperimentAnalyzer analyzer;
  const auto events = analyzer.detect(w.rps);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_GT(events[0].increase_fraction(), 2.5);
}

TEST(NaturalExperiment, CpuModelHoldsThroughEvent) {
  // Fig. 5's claim: the linear CPU model fit on normal data predicts the
  // event data too.
  const EventWorld w = make_world(1.56, 11);
  const NaturalExperimentAnalyzer analyzer;
  const auto events = analyzer.detect(w.rps);
  ASSERT_FALSE(events.empty());
  const ModelHoldReport report =
      analyzer.validate_cpu_model(w.rps, w.cpu, events[0]);
  EXPECT_TRUE(report.holds);
  // The event spans a narrow load band, so R² is a weak statistic there;
  // the load-bearing check is that every event residual stays small
  // relative to the prediction (Fig. 5's "followed the predicted linear
  // relationship").
  EXPECT_LT(report.max_relative_residual, 0.08);
  EXPECT_GT(report.event_r_squared, 0.5);
  EXPECT_NEAR(report.pre_event_cpu_fit.slope, 0.028, 0.002);
}

TEST(NaturalExperiment, ModelBreakDetected) {
  // Counter-scenario: during the event the CPU relationship *changes*
  // (e.g. a fallback path doubles per-request cost) — holds must be false.
  EventWorld w = make_world(1.56, 13);
  TimeSeries broken_cpu;
  for (std::size_t i = 0; i < w.cpu.size(); ++i) {
    const telemetry::SimTime t = w.cpu.time_at(i);
    const bool in_event = t >= w.event_start && t < w.event_end;
    broken_cpu.append(t, in_event ? w.cpu.value_at(i) * 2.2 : w.cpu.value_at(i));
  }
  const NaturalExperimentAnalyzer analyzer;
  const auto events = analyzer.detect(w.rps);
  ASSERT_FALSE(events.empty());
  const ModelHoldReport report =
      analyzer.validate_cpu_model(w.rps, broken_cpu, events[0]);
  EXPECT_FALSE(report.holds);
  EXPECT_GT(report.max_abs_residual, 3.0);
}

TEST(NaturalExperiment, FitWithEventsExtendsRange) {
  // Without event data, extrapolating the latency quadratic to 4x load is
  // soft; with it, the fit must be anchored out there. We check the fitted
  // model predicts the true curve at 4x within tolerance.
  const EventWorld w = make_world(4.0, 17);
  const NaturalExperimentAnalyzer analyzer;
  const PoolResponseModel model =
      analyzer.fit_with_events(w.rps, w.cpu, w.latency);
  const double rps4x = 400.0;
  const double truth = 4.028e-5 * rps4x * rps4x - 0.031 * rps4x + 36.68;
  EXPECT_NEAR(model.predict_latency_ms(rps4x), truth, 1.0);
}

TEST(NaturalExperiment, EventWindowIncreaseFractionArithmetic) {
  EventWindow e;
  e.baseline_rps = 100.0;
  e.peak_rps = 227.0;
  EXPECT_NEAR(e.increase_fraction(), 1.27, 1e-12);  // the +127% DC
  e.baseline_rps = 0.0;
  EXPECT_EQ(e.increase_fraction(), 0.0);
}

}  // namespace
}  // namespace headroom::core
