#include "core/rsm_planner.h"

#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <random>
#include <stdexcept>

namespace headroom::core {
namespace {

// Analytic stand-in for a production pool: latency = warm + load/(n*k),
// sampled with noise. Lets us test the planner loop without the fleet sim.
class FakePoolBackend final : public PoolExperimentBackend {
 public:
  FakePoolBackend(std::size_t servers, double warm_ms, double k,
                  double load_mean)
      : pool_size_(servers),
        serving_(servers),
        warm_ms_(warm_ms),
        k_(k),
        load_mean_(load_mean) {}

  [[nodiscard]] std::size_t pool_size() const override { return pool_size_; }
  [[nodiscard]] std::size_t serving_count() const override { return serving_; }
  void set_serving_count(std::size_t servers) override {
    ++set_calls_;
    serving_ = servers;
  }

  ExperimentObservations observe(telemetry::SimTime duration) override {
    ExperimentObservations obs;
    std::normal_distribution<double> noise(0.0, 0.05);
    std::uniform_real_distribution<double> load_u(load_mean_ * 0.6,
                                                  load_mean_ * 1.1);
    const auto windows = static_cast<std::size_t>(duration / 120);
    for (std::size_t i = 0; i < windows; ++i) {
      const double load = load_u(rng_);
      obs.total_rps.push_back(load);
      obs.servers.push_back(static_cast<double>(serving_));
      obs.latency_p95_ms.push_back(
          warm_ms_ + load / (static_cast<double>(serving_) * k_) + noise(rng_));
      obs.cpu_pct.push_back(load / static_cast<double>(serving_) * 0.03);
    }
    return obs;
  }

  int set_calls() const { return set_calls_; }

 private:
  std::size_t pool_size_;
  std::size_t serving_;
  double warm_ms_;
  double k_;
  double load_mean_;
  std::mt19937_64 rng_{42};
  int set_calls_ = 0;
};

RsmOptions fast_options(double slo_ms) {
  RsmOptions opt;
  opt.latency_slo_ms = slo_ms;
  opt.slo_margin_ms = 0.3;
  opt.baseline_duration = 86400;     // 720 windows
  opt.iteration_duration = 86400;
  opt.max_iterations = 8;
  opt.max_step_fraction = 0.15;
  return opt;
}

TEST(RsmPlanner, StopsAtSloLimit) {
  // Ground truth: latency = 10 + load/(n*10); at P95 load ~11000 and SLO
  // 14 ms (the paper's Fig. 7 limit), minimum n ≈ 11000/(10*(14-10)) ≈ 275.
  FakePoolBackend backend(400, 10.0, 10.0, 10000.0);
  const RsmPlanner planner(fast_options(14.0));
  const RsmResult result = planner.optimize(backend);

  EXPECT_EQ(result.starting_serving, 400u);
  EXPECT_GE(result.iterations.size(), 2u);
  EXPECT_LT(result.recommended_serving, 400u);
  EXPECT_GE(result.recommended_serving, 260u);  // never below the SLO floor
  // The observed latency at the final serving count stays within SLO.
  EXPECT_LE(result.iterations.back().observed_latency_p95_ms, 14.0 + 0.5);
}

TEST(RsmPlanner, ReductionsAreGradual) {
  FakePoolBackend backend(400, 10.0, 10.0, 10000.0);
  const RsmPlanner planner(fast_options(14.0));
  const RsmResult result = planner.optimize(backend);
  for (std::size_t i = 1; i < result.iterations.size(); ++i) {
    const double prev = static_cast<double>(result.iterations[i - 1].serving);
    const double cur = static_cast<double>(result.iterations[i].serving);
    EXPECT_LE(prev - cur, std::ceil(prev * 0.15) + 1.0)
        << "iteration " << i;  // per-step cap
    EXPECT_LT(cur, prev);      // monotone reductions
  }
}

TEST(RsmPlanner, GenerousSloHitsFloorNotSlo) {
  FakePoolBackend backend(100, 10.0, 10.0, 1000.0);
  RsmOptions opt = fast_options(200.0);  // absurdly generous SLO
  opt.min_serving_fraction = 0.5;
  const RsmPlanner planner(opt);
  const RsmResult result = planner.optimize(backend);
  EXPECT_EQ(result.recommended_serving, 50u);  // the floor
  EXPECT_FALSE(result.slo_limit_reached);
}

TEST(RsmPlanner, TightSloMeansNoReduction) {
  // Current latency is already ~11; SLO 11.2 leaves no room.
  FakePoolBackend backend(400, 10.0, 10.0, 4000.0);
  const RsmPlanner planner(fast_options(11.2));
  const RsmResult result = planner.optimize(backend);
  EXPECT_NEAR(static_cast<double>(result.recommended_serving), 400.0, 40.0);
}

TEST(RsmPlanner, BackendLeftAtRecommendedCount) {
  FakePoolBackend backend(400, 10.0, 10.0, 10000.0);
  const RsmPlanner planner(fast_options(14.0));
  const RsmResult result = planner.optimize(backend);
  EXPECT_EQ(backend.serving_count(), result.recommended_serving);
}

TEST(RsmPlanner, PredictionsTrackObservations) {
  FakePoolBackend backend(400, 10.0, 10.0, 10000.0);
  const RsmPlanner planner(fast_options(14.0));
  const RsmResult result = planner.optimize(backend);
  // Skip the baseline (no prediction); later iterations' predictions
  // should be close to what was then observed — the paper's §III-A
  // forecast-accuracy story.
  for (std::size_t i = 1; i < result.iterations.size(); ++i) {
    const RsmIteration& it = result.iterations[i];
    if (it.predicted_latency_ms == 0.0) continue;
    EXPECT_NEAR(it.predicted_latency_ms, it.observed_latency_p95_ms, 1.5)
        << "iteration " << i;
  }
}

TEST(RsmPlanner, HistoryAccumulatesAcrossIterations) {
  FakePoolBackend backend(400, 10.0, 10.0, 10000.0);
  const RsmPlanner planner(fast_options(14.0));
  const RsmResult result = planner.optimize(backend);
  EXPECT_EQ(result.history.size(),
            result.iterations.size() * 720u);  // windows per day
}

TEST(RsmPlanner, ReductionFractionConsistent) {
  FakePoolBackend backend(400, 10.0, 10.0, 10000.0);
  const RsmPlanner planner(fast_options(14.0));
  const RsmResult result = planner.optimize(backend);
  EXPECT_NEAR(result.reduction_fraction(),
              1.0 - static_cast<double>(result.recommended_serving) / 400.0,
              1e-12);
}

// --- Incremental sessions ----------------------------------------------------

/// FakePoolBackend with a window budget: try_observe() reports pending
/// until grant() releases enough windows, modelling a live feed that grows
/// between polls. observe() keeps the base class's always-succeeds
/// behaviour so the same dynamics drive both paths.
class ThrottledPoolBackend final : public PoolExperimentBackend {
 public:
  explicit ThrottledPoolBackend(FakePoolBackend* inner) : inner_(inner) {}

  [[nodiscard]] std::size_t pool_size() const override {
    return inner_->pool_size();
  }
  [[nodiscard]] std::size_t serving_count() const override {
    return inner_->serving_count();
  }
  void set_serving_count(std::size_t servers) override {
    inner_->set_serving_count(servers);
  }
  ExperimentObservations observe(telemetry::SimTime duration) override {
    return inner_->observe(duration);
  }
  std::optional<ExperimentObservations> try_observe(
      telemetry::SimTime duration) override {
    const auto needed = static_cast<std::size_t>(duration / 120);
    if (available_ < needed) {
      ++pending_polls_;
      return std::nullopt;
    }
    available_ -= needed;
    return inner_->observe(duration);
  }
  void grant(std::size_t windows) { available_ += windows; }
  [[nodiscard]] std::size_t pending_polls() const { return pending_polls_; }

 private:
  FakePoolBackend* inner_;
  std::size_t available_ = 0;
  std::size_t pending_polls_ = 0;
};

TEST(RsmSession, DrivenToCompletionMatchesBatchOptimize) {
  // The batch planner is itself a session advanced to completion; a
  // hand-driven session over an identically seeded backend must land on
  // the identical result — the equivalence the serve goldens lean on.
  FakePoolBackend batch_backend(400, 10.0, 10.0, 10000.0);
  const RsmPlanner planner(fast_options(14.0));
  const RsmResult batch = planner.optimize(batch_backend);

  FakePoolBackend session_backend(400, 10.0, 10.0, 10000.0);
  RsmSession session(fast_options(14.0), &session_backend);
  EXPECT_FALSE(session.done());
  EXPECT_TRUE(session.advance());  // a complete backend finishes in one call
  EXPECT_TRUE(session.done());
  const RsmResult& incremental = session.result();

  EXPECT_EQ(incremental.recommended_serving, batch.recommended_serving);
  EXPECT_EQ(incremental.starting_serving, batch.starting_serving);
  ASSERT_EQ(incremental.iterations.size(), batch.iterations.size());
  for (std::size_t i = 0; i < batch.iterations.size(); ++i) {
    EXPECT_EQ(incremental.iterations[i].serving, batch.iterations[i].serving);
    EXPECT_EQ(incremental.iterations[i].observed_latency_p95_ms,
              batch.iterations[i].observed_latency_p95_ms)
        << "iteration " << i;  // bit-equal, not merely close
    EXPECT_EQ(incremental.iterations[i].predicted_latency_ms,
              batch.iterations[i].predicted_latency_ms);
  }
  EXPECT_EQ(incremental.history.size(), batch.history.size());
}

TEST(RsmSession, PendingFeedParksAndResumesWithoutReobserving) {
  FakePoolBackend inner(400, 10.0, 10.0, 10000.0);
  ThrottledPoolBackend backend(&inner);
  RsmSession session(fast_options(14.0), &backend);

  EXPECT_FALSE(session.advance());  // nothing granted: parked on baseline
  EXPECT_FALSE(session.done());
  EXPECT_EQ(session.pending_duration(), 86400);
  EXPECT_FALSE(session.advance());  // pending polls are idempotent
  EXPECT_GE(backend.pending_polls(), 2u);

  // Release one day per poll until the optimization completes. The
  // reference run consumed (iterations * 720) windows; granting exactly
  // that much must be enough — a session that re-observed after a pending
  // poll would starve.
  std::size_t grants = 0;
  while (!session.advance()) {
    backend.grant(720);
    ++grants;
    ASSERT_LT(grants, 100u) << "session failed to make progress";
  }
  EXPECT_TRUE(session.done());
  const RsmResult& result = session.result();
  EXPECT_EQ(result.iterations.size(), grants);
  EXPECT_EQ(result.history.size(), grants * 720u);
  EXPECT_EQ(session.pending_duration(), 0);
  EXPECT_EQ(inner.serving_count(), result.recommended_serving);
}

TEST(RsmSession, SeededBaselineSkipsTheBaselineObservation) {
  FakePoolBackend reference_backend(400, 10.0, 10.0, 10000.0);
  RsmSession reference(fast_options(14.0), &reference_backend);
  ASSERT_TRUE(reference.advance());
  const ExperimentObservations baseline_history = [&] {
    // Re-observe a fresh identically seeded backend for one day: the same
    // windows the reference session's baseline consumed.
    FakePoolBackend replay(400, 10.0, 10.0, 10000.0);
    return replay.observe(86400);
  }();

  FakePoolBackend seeded_backend(400, 10.0, 10.0, 10000.0);
  RsmSession seeded(fast_options(14.0), &seeded_backend);
  seeded.seed_baseline(baseline_history);
  ASSERT_TRUE(seeded.advance());
  // The seeded session spends no backend windows on a baseline, so its
  // first decision comes from the same fit but its iterations consume a
  // shifted window stream; the shape invariants still hold.
  const RsmResult& result = seeded.result();
  ASSERT_GE(result.iterations.size(), 1u);
  EXPECT_EQ(result.iterations.front().serving, 400u);
  EXPECT_EQ(result.starting_serving, 400u);
  EXPECT_LE(result.recommended_serving, 400u);

  EXPECT_THROW(seeded.seed_baseline(baseline_history), std::logic_error);
  RsmSession empty_seed(fast_options(14.0), &seeded_backend);
  EXPECT_THROW(empty_seed.seed_baseline(ExperimentObservations{}),
               std::invalid_argument);
}

TEST(RsmSession, ResultBeforeDoneThrows) {
  FakePoolBackend inner(400, 10.0, 10.0, 10000.0);
  ThrottledPoolBackend backend(&inner);
  RsmSession session(fast_options(14.0), &backend);
  EXPECT_THROW((void)session.result(), std::logic_error);
  EXPECT_FALSE(session.advance());
  EXPECT_THROW((void)session.result(), std::logic_error);
}

TEST(RsmPlanner, BatchOptimizeRefusesAPendingBackend) {
  FakePoolBackend inner(400, 10.0, 10.0, 10000.0);
  ThrottledPoolBackend backend(&inner);  // never granted: always pending
  const RsmPlanner planner(fast_options(14.0));
  EXPECT_THROW((void)planner.optimize(backend), std::runtime_error);
}

}  // namespace
}  // namespace headroom::core
