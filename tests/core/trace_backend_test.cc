#include "core/trace_backend.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/sim_backend.h"
#include "sim/fleet.h"
#include "sim/topology.h"

namespace headroom::core {
namespace {

using telemetry::MetricKind;
using telemetry::MetricStore;
using telemetry::SeriesKey;
using telemetry::SimTime;

constexpr SimTime kWindow = 120;

/// A hand-built recording: `windows` consecutive windows of the four
/// observation series for pool (0, 0), starting at t = 0.
MetricStore make_trace(std::size_t windows, double active = 8.0) {
  MetricStore store;
  const auto key = [](MetricKind kind) {
    return SeriesKey{0, 0, SeriesKey::kPoolScope, kind};
  };
  for (std::size_t i = 0; i < windows; ++i) {
    const SimTime t = static_cast<SimTime>(i) * kWindow;
    const double x = static_cast<double>(i);
    store.record(key(MetricKind::kRequestsPerSecond), t, 100.0 + x);
    store.record(key(MetricKind::kActiveServers), t, active);
    store.record(key(MetricKind::kLatencyP95Ms), t, 20.0 + 0.5 * x);
    store.record(key(MetricKind::kCpuPercentAttributed), t, 40.0 + 0.25 * x);
  }
  return store;
}

TraceExperimentBackend::Options options_for(std::size_t serving = 8,
                                            SimTime start = 0) {
  TraceExperimentBackend::Options opt;
  opt.pool_size = 10;
  opt.serving = serving;
  opt.start = start;
  opt.window_seconds = kWindow;
  return opt;
}

TEST(TraceBackend, ObserveReturnsConsecutiveWindowSlices) {
  const MetricStore trace = make_trace(10);
  TraceExperimentBackend backend(&trace, options_for());
  EXPECT_EQ(backend.pool_size(), 10u);
  EXPECT_EQ(backend.serving_count(), 8u);
  EXPECT_EQ(backend.trace_end(), 10 * kWindow);

  const ExperimentObservations first = backend.observe(4 * kWindow);
  ASSERT_EQ(first.size(), 4u);
  EXPECT_DOUBLE_EQ(first.total_rps[0], 100.0 * 8.0);
  EXPECT_DOUBLE_EQ(first.servers[0], 8.0);
  EXPECT_DOUBLE_EQ(first.latency_p95_ms[3], 21.5);
  EXPECT_DOUBLE_EQ(first.cpu_pct[3], 40.75);
  EXPECT_EQ(backend.cursor(), 4 * kWindow);

  const ExperimentObservations second = backend.observe(6 * kWindow);
  ASSERT_EQ(second.size(), 6u);
  EXPECT_DOUBLE_EQ(second.total_rps[0], 104.0 * 8.0);
  EXPECT_EQ(backend.cursor(), backend.trace_end());
}

TEST(TraceBackend, ObservationsMatchTheSimBackendOnTheSameStore) {
  // The two backends share observations_between, so identical stores must
  // yield identical observation vectors — the bit-for-bit guarantee the
  // trace round trip rests on. Drive a real fleet, then replay its store.
  const sim::MicroserviceCatalog catalog;
  sim::FleetConfig config = sim::single_pool_fleet(catalog, "D", 12, 5);
  sim::FleetSimulator fleet(std::move(config), catalog);
  SimPoolBackend live(&fleet, 0, 0);
  const ExperimentObservations from_sim = live.observe(6 * 3600);

  TraceExperimentBackend::Options opt;
  opt.pool_size = fleet.pool_size(0, 0);
  opt.serving = fleet.serving_count(0, 0);
  opt.start = 0;
  opt.window_seconds = fleet.config().window_seconds;
  TraceExperimentBackend replayed(&fleet.store(), opt);
  const ExperimentObservations from_trace = replayed.observe(6 * 3600);

  ASSERT_EQ(from_trace.size(), from_sim.size());
  for (std::size_t i = 0; i < from_sim.size(); ++i) {
    EXPECT_EQ(from_trace.total_rps[i], from_sim.total_rps[i]) << i;
    EXPECT_EQ(from_trace.servers[i], from_sim.servers[i]) << i;
    EXPECT_EQ(from_trace.latency_p95_ms[i], from_sim.latency_p95_ms[i]) << i;
    EXPECT_EQ(from_trace.cpu_pct[i], from_sim.cpu_pct[i]) << i;
  }
}

TEST(TraceBackend, NonMultipleDurationOvershootsToTheWindowGridLikeTheSim) {
  // FleetSimulator::run_until steps whole windows past a non-multiple
  // horizon; the trace cursor must land on the same boundary or every
  // later observation would be shifted against the recording.
  const MetricStore trace = make_trace(10);
  TraceExperimentBackend backend(&trace, options_for());
  const ExperimentObservations obs = backend.observe(kWindow * 5 / 2);
  EXPECT_EQ(obs.size(), 3u);               // ceil(2.5 windows) observed...
  EXPECT_EQ(backend.cursor(), 3 * kWindow);  // ...and cursor on the grid
}

TEST(TraceBackend, ThrowsWhenTheTraceRunsOut) {
  const MetricStore trace = make_trace(5);
  TraceExperimentBackend backend(&trace, options_for());
  (void)backend.observe(3 * kWindow);
  try {
    (void)backend.observe(3 * kWindow);  // only 2 windows remain
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("trace exhausted"),
              std::string::npos)
        << e.what();
  }
  // The failed observation must not advance the cursor.
  EXPECT_EQ(backend.cursor(), 3 * kWindow);
}

TEST(TraceBackend, SetServingCountAcceptsTheRecordedReduction) {
  MetricStore trace = make_trace(4, 8.0);
  const SeriesKey active{0, 0, SeriesKey::kPoolScope,
                         MetricKind::kActiveServers};
  // Windows 4..5 recorded with 6 active servers (the recorded experiment
  // reduced the pool); maintenance-style dips below the control are legal.
  trace.record(active, 4 * kWindow, 6.0);
  trace.record(active, 5 * kWindow, 5.0);

  TraceExperimentBackend backend(&trace, options_for(8, 4 * kWindow));
  EXPECT_NO_THROW(backend.set_serving_count(6));
  EXPECT_EQ(backend.serving_count(), 6u);
  EXPECT_NO_THROW(backend.set_serving_count(7));  // recorded 6 <= 7: fine
}

TEST(TraceBackend, SetServingCountRejectsDivergenceFromTheRecording) {
  const MetricStore trace = make_trace(6, 8.0);
  TraceExperimentBackend backend(&trace, options_for());
  try {
    backend.set_serving_count(5);  // trace shows 8 active at the cursor
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("diverged"), std::string::npos)
        << e.what();
  }
  EXPECT_EQ(backend.serving_count(), 8u);  // rejected change not adopted
}

TEST(TraceBackend, SetServingCountPastTheRecordingIsUnchecked) {
  const MetricStore trace = make_trace(4);
  TraceExperimentBackend backend(&trace, options_for());
  (void)backend.observe(4 * kWindow);
  // Cursor is at the end of the trace — the planner's final adoption of
  // its recommendation has no recorded window to validate against.
  EXPECT_NO_THROW(backend.set_serving_count(3));
  EXPECT_EQ(backend.serving_count(), 3u);
}

TEST(TraceBackend, RejectsInvalidConstructionAndArguments) {
  const MetricStore trace = make_trace(4);
  EXPECT_THROW(TraceExperimentBackend(nullptr, options_for()),
               std::invalid_argument);

  TraceExperimentBackend::Options bad_window = options_for();
  bad_window.window_seconds = 0;
  EXPECT_THROW(TraceExperimentBackend(&trace, bad_window),
               std::invalid_argument);

  TraceExperimentBackend::Options empty_pool = options_for();
  empty_pool.pool_size = 0;
  EXPECT_THROW(TraceExperimentBackend(&trace, empty_pool),
               std::invalid_argument);

  TraceExperimentBackend::Options over_serving = options_for(11);
  EXPECT_THROW(TraceExperimentBackend(&trace, over_serving),
               std::invalid_argument);

  const MetricStore empty;
  EXPECT_THROW(TraceExperimentBackend(&empty, options_for()),
               std::invalid_argument);

  TraceExperimentBackend backend(&trace, options_for());
  EXPECT_THROW(backend.set_serving_count(0), std::invalid_argument);
  EXPECT_THROW(backend.set_serving_count(11), std::invalid_argument);
  EXPECT_THROW((void)backend.observe(0), std::invalid_argument);
  EXPECT_THROW((void)backend.observe(-kWindow), std::invalid_argument);
}

}  // namespace
}  // namespace headroom::core
