#include "core/load_partition.h"

#include <gtest/gtest.h>

#include <random>

namespace headroom::core {
namespace {

TEST(PartitionByLoad, SplitsIntoEqualPopulations) {
  std::vector<double> load;
  for (int i = 0; i < 100; ++i) load.push_back(static_cast<double>(i));
  const auto parts = partition_by_load(load, 4);
  ASSERT_EQ(parts.size(), 4u);
  for (const LoadPartition& p : parts) {
    EXPECT_EQ(p.indices.size(), 25u);
    EXPECT_LE(p.load_lo, p.load_hi);
  }
}

TEST(PartitionByLoad, PartitionsAreOrderedAndDisjoint) {
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> u(0.0, 1000.0);
  std::vector<double> load;
  for (int i = 0; i < 333; ++i) load.push_back(u(rng));
  const auto parts = partition_by_load(load, 5);
  std::vector<bool> seen(load.size(), false);
  double prev_hi = -1.0;
  std::size_t total = 0;
  for (const LoadPartition& p : parts) {
    EXPECT_GE(p.load_lo, prev_hi);
    prev_hi = p.load_hi;
    for (std::size_t idx : p.indices) {
      EXPECT_FALSE(seen[idx]);
      seen[idx] = true;
      EXPECT_GE(load[idx], p.load_lo);
      EXPECT_LE(load[idx], p.load_hi);
      ++total;
    }
  }
  EXPECT_EQ(total, load.size());
}

TEST(PartitionByLoad, FewerPointsThanPartitions) {
  const std::vector<double> load = {5.0, 1.0};
  const auto parts = partition_by_load(load, 10);
  std::size_t total = 0;
  for (const auto& p : parts) total += p.indices.size();
  EXPECT_EQ(total, 2u);
}

TEST(PartitionByLoad, ZeroPartitionsThrows) {
  const std::vector<double> load = {1.0};
  EXPECT_THROW((void)partition_by_load(load, 0), std::invalid_argument);
}

TEST(PartitionByLoad, EmptyInputEmptyOutput) {
  EXPECT_TRUE(partition_by_load({}, 3).empty());
}

// Synthetic Eq.-1 world: latency = a2 n² + a1 n + a0 with per-partition
// coefficients scaling with load.
struct Eq1World {
  std::vector<double> load;
  std::vector<double> servers;
  std::vector<double> latency;
};

Eq1World make_world(std::uint64_t seed, double noise_sigma = 0.1) {
  Eq1World w;
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> noise(0.0, noise_sigma);
  std::uniform_real_distribution<double> load_u(5000.0, 20000.0);
  std::uniform_int_distribution<int> server_u(60, 100);
  for (int i = 0; i < 800; ++i) {
    const double load = load_u(rng);
    const double n = server_u(rng);
    // True model: latency = 20 + load/(n * 25) (convex in 1/n; a quadratic
    // in n approximates it well over the observed range).
    w.load.push_back(load);
    w.servers.push_back(n);
    w.latency.push_back(20.0 + load / (n * 25.0) + noise(rng));
  }
  return w;
}

TEST(ServerCountLatencyModel, FitsUsablePartitions) {
  const Eq1World w = make_world(5);
  const auto model =
      ServerCountLatencyModel::fit(w.load, w.servers, w.latency);
  ASSERT_EQ(model.partitions().size(), 4u);
  for (const PartitionModel& pm : model.partitions()) {
    EXPECT_TRUE(pm.usable);
    EXPECT_EQ(pm.fit.coeffs.size(), 3u);
  }
}

TEST(ServerCountLatencyModel, PredictsLatencyRiseWhenShrinking) {
  const Eq1World w = make_world(7);
  const auto model =
      ServerCountLatencyModel::fit(w.load, w.servers, w.latency);
  const double at100 = model.predict_latency_ms(12000.0, 100.0).value();
  const double at70 = model.predict_latency_ms(12000.0, 70.0).value();
  EXPECT_GT(at70, at100);
  // Ground truth: 20 + 12000/(n*25).
  EXPECT_NEAR(at100, 20.0 + 12000.0 / 2500.0, 1.0);
  EXPECT_NEAR(at70, 20.0 + 12000.0 / 1750.0, 1.0);
}

TEST(ServerCountLatencyModel, HigherLoadPartitionPredictsHigherLatency) {
  const Eq1World w = make_world(9);
  const auto model =
      ServerCountLatencyModel::fit(w.load, w.servers, w.latency);
  EXPECT_GT(model.predict_latency_ms(19000.0, 80.0).value(),
            model.predict_latency_ms(6000.0, 80.0).value());
}

TEST(ServerCountLatencyModel, MinServersForSloMatchesGroundTruth) {
  const Eq1World w = make_world(11, 0.05);
  const auto model =
      ServerCountLatencyModel::fit(w.load, w.servers, w.latency);
  // SLO 26 ms at load 12000: ground truth needs n >= 12000/(25*(26-20)) = 80.
  // The quadratic-in-n approximation of the true 1/n curve carries a few
  // servers of model error — exactly why the RSM loop steps gradually and
  // re-fits instead of trusting one fit (paper §III-A).
  const auto n = model.min_servers_for_slo(12000.0, 26.0, 100);
  ASSERT_TRUE(n.has_value());
  EXPECT_NEAR(static_cast<double>(*n), 80.0, 10.0);
}

TEST(ServerCountLatencyModel, MinServersNulloptWhenCurrentViolates) {
  const Eq1World w = make_world(13);
  const auto model =
      ServerCountLatencyModel::fit(w.load, w.servers, w.latency);
  // SLO 21 ms at load 19000 needs n ≈ 760 — far above current 100.
  EXPECT_FALSE(model.min_servers_for_slo(19000.0, 21.0, 100).has_value());
}

TEST(ServerCountLatencyModel, UnusableWithTooFewPoints) {
  const std::vector<double> load = {1.0, 2.0, 3.0};
  const std::vector<double> servers = {10.0, 10.0, 10.0};
  const std::vector<double> latency = {5.0, 5.0, 5.0};
  const auto model = ServerCountLatencyModel::fit(load, servers, latency);
  EXPECT_FALSE(model.predict_latency_ms(2.0, 10.0).has_value());
  EXPECT_FALSE(model.min_servers_for_slo(2.0, 10.0, 10).has_value());
}

TEST(ServerCountLatencyModel, SizeMismatchThrows) {
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> b = {1.0};
  EXPECT_THROW((void)ServerCountLatencyModel::fit(a, b, a),
               std::invalid_argument);
}

TEST(ServerCountLatencyModel, PartitionCountConfigurable) {
  const Eq1World w = make_world(17);
  ServerCountModelOptions opt;
  opt.partitions = 8;
  const auto model =
      ServerCountLatencyModel::fit(w.load, w.servers, w.latency, opt);
  EXPECT_EQ(model.partitions().size(), 8u);
}

}  // namespace
}  // namespace headroom::core
