#include "workload/synthetic.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace headroom::workload {
namespace {

RequestMix production_mix() {
  RequestType lookup;
  lookup.name = "lookup";
  lookup.weight = 0.7;
  lookup.cost_mean = 1.0;
  lookup.cost_sigma = 0.3;
  RequestType render;
  render.name = "render";
  render.weight = 0.3;
  render.cost_mean = 4.0;
  render.cost_sigma = 0.5;
  render.dependency_latency_ms = 10.0;
  return RequestMix({lookup, render});
}

TEST(SyntheticWorkload, GenerateRejectsBadArgs) {
  const SyntheticWorkload synth(production_mix());
  EXPECT_THROW((void)synth.generate(0.0, 10.0, 1), std::invalid_argument);
  EXPECT_THROW((void)synth.generate(10.0, 0.0, 1), std::invalid_argument);
}

TEST(SyntheticWorkload, GenerateIsExactlyReplayable) {
  // The paper's Step-4 harness depends on generating *identical* workloads
  // for the baseline and candidate pools.
  const SyntheticWorkload synth(production_mix());
  const auto a = synth.generate(100.0, 30.0, 777);
  const auto b = synth.generate(100.0, 30.0, 777);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].arrival_s, b[i].arrival_s);
    EXPECT_EQ(a[i].type, b[i].type);
    EXPECT_DOUBLE_EQ(a[i].cost, b[i].cost);
  }
}

TEST(SyntheticWorkload, DifferentSeedsDiffer) {
  const SyntheticWorkload synth(production_mix());
  const auto a = synth.generate(100.0, 10.0, 1);
  const auto b = synth.generate(100.0, 10.0, 2);
  ASSERT_FALSE(a.empty());
  ASSERT_FALSE(b.empty());
  EXPECT_NE(a.size(), b.size());  // Poisson counts differ w.h.p.
}

TEST(SyntheticWorkload, GeneratedRateMatchesRequested) {
  const SyntheticWorkload synth(production_mix());
  const auto stream = synth.generate(200.0, 100.0, 3);
  EXPECT_NEAR(static_cast<double>(stream.size()), 20000.0, 500.0);
}

TEST(SyntheticWorkload, ArrivalsAreOrderedAndWithinDuration) {
  const SyntheticWorkload synth(production_mix());
  const auto stream = synth.generate(50.0, 20.0, 5);
  for (std::size_t i = 1; i < stream.size(); ++i) {
    EXPECT_GE(stream[i].arrival_s, stream[i - 1].arrival_s);
  }
  EXPECT_LT(stream.back().arrival_s, 20.0);
}

TEST(SyntheticWorkload, FitRecoversTypeFractionsAndCosts) {
  const SyntheticWorkload truth(production_mix());
  const auto observed = truth.generate(500.0, 200.0, 7);
  const SyntheticWorkload fitted = SyntheticWorkload::fit(observed, 2);
  const auto p = fitted.mix().probabilities();
  EXPECT_NEAR(p[0], 0.7, 0.02);
  EXPECT_NEAR(p[1], 0.3, 0.02);
  EXPECT_NEAR(fitted.mix().types()[0].cost_mean, 1.0, 0.05);
  EXPECT_NEAR(fitted.mix().types()[1].cost_mean, 4.0, 0.2);
  EXPECT_NEAR(fitted.mix().types()[1].cost_sigma, 0.5, 0.05);
  EXPECT_NEAR(fitted.mix().types()[1].dependency_latency_ms, 10.0, 0.5);
}

TEST(SyntheticWorkload, FitRejectsBadInputs) {
  EXPECT_THROW((void)SyntheticWorkload::fit({}, 2), std::invalid_argument);
  std::vector<Request> stream(1);
  stream[0].type = 5;
  EXPECT_THROW((void)SyntheticWorkload::fit(stream, 2), std::invalid_argument);
}

TEST(SyntheticWorkload, CompareAcceptsFaithfulSynthetic) {
  // The full Step-3 loop: fit production, regenerate, verify equivalence.
  const SyntheticWorkload truth(production_mix());
  const auto production = truth.generate(300.0, 150.0, 11);
  const SyntheticWorkload fitted = SyntheticWorkload::fit(production, 2);
  const auto synthetic = fitted.generate(300.0, 150.0, 13);
  const StreamComparison cmp =
      SyntheticWorkload::compare(synthetic, production, 2);
  EXPECT_TRUE(cmp.equivalent);
  EXPECT_LT(cmp.type_distance, 0.05);
  EXPECT_NEAR(cmp.cost_mean_ratio, 1.0, 0.05);
  EXPECT_NEAR(cmp.rate_ratio, 1.0, 0.05);
}

TEST(SyntheticWorkload, CompareRejectsWrongMix) {
  const SyntheticWorkload truth(production_mix());
  const auto production = truth.generate(300.0, 100.0, 17);

  RequestType only_lookup;
  only_lookup.weight = 1.0;
  only_lookup.cost_mean = 1.0;
  RequestType pad;
  pad.weight = 1e-12;
  const SyntheticWorkload wrong{RequestMix({only_lookup, pad})};
  const auto synthetic = wrong.generate(300.0, 100.0, 19);
  const StreamComparison cmp =
      SyntheticWorkload::compare(synthetic, production, 2);
  EXPECT_FALSE(cmp.equivalent);
  EXPECT_GT(cmp.type_distance, 0.2);
}

TEST(SyntheticWorkload, CompareRejectsWrongRate) {
  const SyntheticWorkload truth(production_mix());
  const auto production = truth.generate(300.0, 100.0, 23);
  const auto synthetic = truth.generate(200.0, 100.0, 29);  // 33% low
  const StreamComparison cmp =
      SyntheticWorkload::compare(synthetic, production, 2);
  EXPECT_FALSE(cmp.equivalent);
  EXPECT_LT(cmp.rate_ratio, 0.75);
}

TEST(SyntheticWorkload, RareTypesPooledByMinFraction) {
  const SyntheticWorkload truth(production_mix());
  const auto observed = truth.generate(500.0, 100.0, 31);
  SyntheticFitOptions opt;
  opt.min_type_fraction = 0.5;  // only the 70% type survives
  const SyntheticWorkload fitted = SyntheticWorkload::fit(observed, 2, opt);
  const auto p = fitted.mix().probabilities();
  EXPECT_NEAR(p[0], 1.0, 1e-9);
  EXPECT_NEAR(p[1], 0.0, 1e-9);
}

}  // namespace
}  // namespace headroom::workload
