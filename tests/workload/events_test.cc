#include "workload/events.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace headroom::workload {
namespace {

TEST(EventSchedule, EmptyScheduleIsNeutral) {
  EventSchedule schedule;
  EXPECT_DOUBLE_EQ(schedule.traffic_multiplier(0, 0), 1.0);
  EXPECT_FALSE(schedule.datacenter_down(0, 0));
}

TEST(EventSchedule, RejectsInvalidEvents) {
  EventSchedule schedule;
  CapacityEvent bad;
  bad.start = 100;
  bad.end = 100;
  EXPECT_THROW(schedule.add(bad), std::invalid_argument);
  bad.end = 50;
  EXPECT_THROW(schedule.add(bad), std::invalid_argument);
  CapacityEvent zero_mult;
  zero_mult.start = 0;
  zero_mult.end = 10;
  zero_mult.multiplier = 0.0;
  EXPECT_THROW(schedule.add(zero_mult), std::invalid_argument);
}

TEST(EventSchedule, MultiplierActiveOnlyInWindow) {
  EventSchedule schedule;
  CapacityEvent e;
  e.kind = EventKind::kTrafficMultiplier;
  e.start = 100;
  e.end = 200;
  e.multiplier = 4.0;  // the paper's Fig. 6 event
  schedule.add(e);
  EXPECT_DOUBLE_EQ(schedule.traffic_multiplier(99, 0), 1.0);
  EXPECT_DOUBLE_EQ(schedule.traffic_multiplier(100, 0), 4.0);
  EXPECT_DOUBLE_EQ(schedule.traffic_multiplier(199, 0), 4.0);
  EXPECT_DOUBLE_EQ(schedule.traffic_multiplier(200, 0), 1.0);  // end exclusive
}

TEST(EventSchedule, TargetedEventOnlyAffectsItsDatacenter) {
  EventSchedule schedule;
  CapacityEvent e;
  e.start = 0;
  e.end = 100;
  e.multiplier = 2.0;
  e.datacenter = 3;
  schedule.add(e);
  EXPECT_DOUBLE_EQ(schedule.traffic_multiplier(50, 3), 2.0);
  EXPECT_DOUBLE_EQ(schedule.traffic_multiplier(50, 4), 1.0);
}

TEST(EventSchedule, GlobalEventAffectsAll) {
  EventSchedule schedule;
  CapacityEvent e;
  e.start = 0;
  e.end = 100;
  e.multiplier = 1.5;
  schedule.add(e);
  for (std::uint32_t dc = 0; dc < 9; ++dc) {
    EXPECT_DOUBLE_EQ(schedule.traffic_multiplier(10, dc), 1.5);
  }
}

TEST(EventSchedule, OverlappingMultipliersCompose) {
  EventSchedule schedule;
  CapacityEvent a;
  a.start = 0;
  a.end = 100;
  a.multiplier = 2.0;
  CapacityEvent b;
  b.start = 50;
  b.end = 150;
  b.multiplier = 3.0;
  schedule.add(a);
  schedule.add(b);
  EXPECT_DOUBLE_EQ(schedule.traffic_multiplier(25, 0), 2.0);
  EXPECT_DOUBLE_EQ(schedule.traffic_multiplier(75, 0), 6.0);
  EXPECT_DOUBLE_EQ(schedule.traffic_multiplier(125, 0), 3.0);
}

TEST(EventSchedule, OutageDetection) {
  EventSchedule schedule;
  CapacityEvent outage;
  outage.kind = EventKind::kDatacenterOutage;
  outage.start = 1000;
  outage.end = 8200;  // the paper's first event spanned two hours
  outage.datacenter = 5;
  schedule.add(outage);
  EXPECT_TRUE(schedule.datacenter_down(1000, 5));
  EXPECT_TRUE(schedule.datacenter_down(8199, 5));
  EXPECT_FALSE(schedule.datacenter_down(8200, 5));
  EXPECT_FALSE(schedule.datacenter_down(1000, 4));
}

TEST(EventSchedule, OutageDoesNotAffectMultiplier) {
  EventSchedule schedule;
  CapacityEvent outage;
  outage.kind = EventKind::kDatacenterOutage;
  outage.start = 0;
  outage.end = 100;
  outage.multiplier = 99.0;  // must be ignored for outages
  schedule.add(outage);
  EXPECT_DOUBLE_EQ(schedule.traffic_multiplier(50, 0), 1.0);
}

TEST(EventSchedule, ZeroLengthEventIsRejected) {
  // A [t, t) window is empty: accepting it would silently do nothing, so
  // add() refuses it outright (for both event kinds).
  EventSchedule schedule;
  CapacityEvent zero;
  zero.kind = EventKind::kTrafficMultiplier;
  zero.start = 3600;
  zero.end = 3600;
  zero.multiplier = 2.0;
  EXPECT_THROW(schedule.add(zero), std::invalid_argument);
  zero.kind = EventKind::kDatacenterOutage;
  EXPECT_THROW(schedule.add(zero), std::invalid_argument);
  EXPECT_TRUE(schedule.events().empty());
}

TEST(EventSchedule, OverlappingMultipliersOnOneDatacenterCompound) {
  // Two targeted events plus a global one: the targeted DC sees the full
  // product, everyone else only the global factor.
  EventSchedule schedule;
  CapacityEvent first;
  first.datacenter = 2;
  first.start = 0;
  first.end = 200;
  first.multiplier = 4.0;
  CapacityEvent second;
  second.datacenter = 2;
  second.start = 100;
  second.end = 300;
  second.multiplier = 1.5;
  CapacityEvent global;
  global.start = 150;
  global.end = 400;
  global.multiplier = 2.0;
  schedule.add(first);
  schedule.add(second);
  schedule.add(global);
  EXPECT_DOUBLE_EQ(schedule.traffic_multiplier(50, 2), 4.0);
  EXPECT_DOUBLE_EQ(schedule.traffic_multiplier(120, 2), 6.0);
  EXPECT_DOUBLE_EQ(schedule.traffic_multiplier(175, 2), 12.0);
  EXPECT_DOUBLE_EQ(schedule.traffic_multiplier(250, 2), 3.0);
  EXPECT_DOUBLE_EQ(schedule.traffic_multiplier(175, 1), 2.0);
  EXPECT_DOUBLE_EQ(schedule.traffic_multiplier(350, 2), 2.0);
}

TEST(EventSchedule, BackToBackOutagesLeaveNoGap) {
  // [0, 100) followed by [100, 200): continuously down, end exclusive.
  EventSchedule schedule;
  CapacityEvent a;
  a.kind = EventKind::kDatacenterOutage;
  a.start = 0;
  a.end = 100;
  a.datacenter = 1;
  CapacityEvent b = a;
  b.start = 100;
  b.end = 200;
  schedule.add(a);
  schedule.add(b);
  EXPECT_TRUE(schedule.datacenter_down(99, 1));
  EXPECT_TRUE(schedule.datacenter_down(100, 1));
  EXPECT_TRUE(schedule.datacenter_down(199, 1));
  EXPECT_FALSE(schedule.datacenter_down(200, 1));
}

TEST(EventSchedule, GlobalOutageTakesEveryDatacenterDown) {
  EventSchedule schedule;
  CapacityEvent outage;
  outage.kind = EventKind::kDatacenterOutage;
  outage.start = 0;
  outage.end = 100;  // datacenter unset: applies everywhere
  schedule.add(outage);
  for (std::uint32_t dc = 0; dc < 9; ++dc) {
    EXPECT_TRUE(schedule.datacenter_down(50, dc));
  }
}

TEST(CapacityEvent, AppliesToHelper) {
  CapacityEvent e;
  EXPECT_TRUE(e.applies_to(0));
  EXPECT_TRUE(e.applies_to(7));
  e.datacenter = 2;
  EXPECT_TRUE(e.applies_to(2));
  EXPECT_FALSE(e.applies_to(3));
}

}  // namespace
}  // namespace headroom::workload
