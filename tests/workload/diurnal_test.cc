#include "workload/diurnal.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace headroom::workload {
namespace {

constexpr SimTime kHour = 3600;
constexpr SimTime kDay = 86400;

DiurnalParams base_params() {
  DiurnalParams p;
  p.peak_rps = 1000.0;
  p.trough_fraction = 0.4;
  p.peak_hour = 20.0;
  p.weekend_factor = 1.0;  // disable weekly effect unless a test wants it
  p.noise_sigma = 0.0;
  return p;
}

TEST(DiurnalTraffic, RejectsBadParams) {
  DiurnalParams p = base_params();
  p.peak_rps = 0.0;
  EXPECT_THROW(DiurnalTraffic{p}, std::invalid_argument);
  p = base_params();
  p.trough_fraction = 1.5;
  EXPECT_THROW(DiurnalTraffic{p}, std::invalid_argument);
}

TEST(DiurnalTraffic, PeakAtPeakHour) {
  const DiurnalTraffic traffic(base_params());
  EXPECT_NEAR(traffic.demand(20 * kHour), 1000.0, 1e-9);
}

TEST(DiurnalTraffic, TroughTwelveHoursLater) {
  const DiurnalTraffic traffic(base_params());
  EXPECT_NEAR(traffic.demand(8 * kHour), 400.0, 1e-9);
}

TEST(DiurnalTraffic, DailyPeriodicity) {
  const DiurnalTraffic traffic(base_params());
  for (SimTime t : {SimTime{0}, 5 * kHour, 13 * kHour}) {
    EXPECT_NEAR(traffic.demand(t), traffic.demand(t + kDay), 1e-9);
    EXPECT_NEAR(traffic.demand(t), traffic.demand(t + 3 * kDay), 1e-9);
  }
}

TEST(DiurnalTraffic, DemandAlwaysWithinTroughPeakBand) {
  const DiurnalTraffic traffic(base_params());
  for (SimTime t = 0; t < kDay; t += 600) {
    const double d = traffic.demand(t);
    EXPECT_GE(d, 400.0 - 1e-9);
    EXPECT_LE(d, 1000.0 + 1e-9);
  }
}

TEST(DiurnalTraffic, TimezoneOffsetShiftsPeak) {
  DiurnalParams east = base_params();
  east.timezone_offset_hours = 8.0;  // local 20:00 == UTC 12:00
  const DiurnalTraffic traffic(east);
  EXPECT_NEAR(traffic.demand(12 * kHour), 1000.0, 1e-9);
}

TEST(DiurnalTraffic, OppositeTimezonesAreAntiphase) {
  // The paper's motivation: one region peaks while the antipode troughs.
  DiurnalParams here = base_params();
  DiurnalParams antipode = base_params();
  antipode.timezone_offset_hours = 12.0;
  const DiurnalTraffic a(here);
  const DiurnalTraffic b(antipode);
  const SimTime t_peak_a = 20 * kHour;
  EXPECT_NEAR(a.demand(t_peak_a), 1000.0, 1e-9);
  EXPECT_NEAR(b.demand(t_peak_a), 400.0, 1e-9);
}

TEST(DiurnalTraffic, WeekendFactorAppliesOnDays5And6) {
  DiurnalParams p = base_params();
  p.weekend_factor = 0.8;
  const DiurnalTraffic traffic(p);
  const SimTime weekday_peak = 20 * kHour;           // day 0
  const SimTime saturday_peak = 5 * kDay + 20 * kHour;  // day 5
  EXPECT_NEAR(traffic.demand(saturday_peak),
              traffic.demand(weekday_peak) * 0.8, 1e-9);
}

TEST(DiurnalTraffic, NoiseIsMultiplicativeAndMeanPreserving) {
  DiurnalParams p = base_params();
  p.noise_sigma = 0.05;
  const DiurnalTraffic traffic(p);
  std::mt19937_64 rng(3);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += traffic.sample(20 * kHour, rng);
  EXPECT_NEAR(sum / n, 1000.0, 5.0);  // lognormal configured mean-1
}

TEST(DiurnalTraffic, ZeroNoiseSampleEqualsDemand) {
  const DiurnalTraffic traffic(base_params());
  std::mt19937_64 rng(1);
  EXPECT_DOUBLE_EQ(traffic.sample(1234, rng), traffic.demand(1234));
}

TEST(DiurnalTraffic, NegativeTimeIsWellDefined) {
  const DiurnalTraffic traffic(base_params());
  const double d = traffic.demand(-kDay + 20 * kHour);
  EXPECT_NEAR(d, 1000.0, 1e-9);  // periodic extension backwards
}

TEST(DiurnalTraffic, PeakTroughAccessors) {
  const DiurnalTraffic traffic(base_params());
  EXPECT_DOUBLE_EQ(traffic.daily_peak(), 1000.0);
  EXPECT_DOUBLE_EQ(traffic.daily_trough(), 400.0);
}

// --- Degenerate-parameter edges ---------------------------------------------

TEST(DiurnalTraffic, TroughFractionOneIsAFlatCurve) {
  // trough == peak collapses the day shape to a constant; the seasonal
  // healing fill and the forecaster both lean on this degenerate case
  // behaving exactly, not approximately.
  DiurnalParams p = base_params();
  p.trough_fraction = 1.0;
  const DiurnalTraffic traffic(p);
  for (SimTime t = 0; t < 2 * kDay; t += 900) {
    EXPECT_DOUBLE_EQ(traffic.demand(t), 1000.0) << t;
  }
}

TEST(DiurnalTraffic, TroughFractionZeroTouchesZeroOppositeThePeak) {
  DiurnalParams p = base_params();
  p.trough_fraction = 0.0;
  const DiurnalTraffic traffic(p);
  EXPECT_NEAR(traffic.demand(8 * kHour), 0.0, 1e-9);   // 12h after peak.
  EXPECT_NEAR(traffic.demand(20 * kHour), 1000.0, 1e-9);
}

TEST(DiurnalTraffic, FlatCurveStillCarriesTheWeekendFactor) {
  DiurnalParams p = base_params();
  p.trough_fraction = 1.0;
  p.weekend_factor = 0.85;
  const DiurnalTraffic traffic(p);
  EXPECT_DOUBLE_EQ(traffic.demand(0), 1000.0);            // Day 0: weekday.
  EXPECT_DOUBLE_EQ(traffic.demand(5 * kDay), 850.0);      // Day 5: weekend.
  EXPECT_DOUBLE_EQ(traffic.demand(6 * kDay + kHour), 850.0);
}

TEST(DiurnalTraffic, WeekendFactorZeroSilencesWeekends) {
  DiurnalParams p = base_params();
  p.weekend_factor = 0.0;
  const DiurnalTraffic traffic(p);
  EXPECT_DOUBLE_EQ(traffic.demand(5 * kDay + 20 * kHour), 0.0);
  EXPECT_GT(traffic.demand(4 * kDay + 20 * kHour), 0.0);
}

}  // namespace
}  // namespace headroom::workload
