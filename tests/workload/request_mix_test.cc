#include "workload/request_mix.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace headroom::workload {
namespace {

std::vector<RequestType> two_types() {
  RequestType cheap;
  cheap.name = "lookup";
  cheap.weight = 3.0;
  cheap.cost_mean = 1.0;
  cheap.cost_sigma = 0.0;
  RequestType expensive;
  expensive.name = "render";
  expensive.weight = 1.0;
  expensive.cost_mean = 5.0;
  expensive.cost_sigma = 0.0;
  return {cheap, expensive};
}

TEST(RequestMix, RejectsDegenerateInputs) {
  EXPECT_THROW(RequestMix({}), std::invalid_argument);
  RequestType negative;
  negative.weight = -1.0;
  EXPECT_THROW(RequestMix({negative}), std::invalid_argument);
  RequestType zero_cost;
  zero_cost.cost_mean = 0.0;
  EXPECT_THROW(RequestMix({zero_cost}), std::invalid_argument);
  RequestType zero_weight;
  zero_weight.weight = 0.0;
  EXPECT_THROW(RequestMix({zero_weight}), std::invalid_argument);
}

TEST(RequestMix, ProbabilitiesNormalize) {
  const RequestMix mix(two_types());
  const std::vector<double> p = mix.probabilities();
  ASSERT_EQ(p.size(), 2u);
  EXPECT_DOUBLE_EQ(p[0], 0.75);
  EXPECT_DOUBLE_EQ(p[1], 0.25);
}

TEST(RequestMix, MeanCostIsMixtureMean) {
  const RequestMix mix(two_types());
  EXPECT_DOUBLE_EQ(mix.mean_cost(), 0.75 * 1.0 + 0.25 * 5.0);
}

TEST(RequestMix, SampleTypeFollowsWeights) {
  const RequestMix mix(two_types());
  std::mt19937_64 rng(3);
  std::size_t expensive_count = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    if (mix.sample_type(rng) == 1) ++expensive_count;
  }
  EXPECT_NEAR(static_cast<double>(expensive_count) / n, 0.25, 0.01);
}

TEST(RequestMix, SampleCarriesArrivalAndType) {
  const RequestMix mix(two_types());
  std::mt19937_64 rng(5);
  const Request r = mix.sample(12.5, rng);
  EXPECT_DOUBLE_EQ(r.arrival_s, 12.5);
  EXPECT_LT(r.type, 2u);
  EXPECT_GT(r.cost, 0.0);
}

TEST(RequestMix, ZeroSigmaCostIsDeterministic) {
  const RequestMix mix(two_types());
  std::mt19937_64 rng(7);
  for (int i = 0; i < 50; ++i) {
    const Request r = mix.sample(0.0, rng);
    EXPECT_DOUBLE_EQ(r.cost, r.type == 0 ? 1.0 : 5.0);
  }
}

TEST(RequestMix, LognormalCostMeanMatchesConfigured) {
  RequestType t;
  t.cost_mean = 4.0;
  t.cost_sigma = 0.5;
  const RequestMix mix({t});
  std::mt19937_64 rng(9);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += mix.sample(0.0, rng).cost;
  EXPECT_NEAR(sum / n, 4.0, 0.05);
}

TEST(RequestMix, DependencyLatencySampledWhenConfigured) {
  RequestType t;
  t.cost_mean = 1.0;
  t.dependency_latency_ms = 8.0;
  const RequestMix mix({t});
  std::mt19937_64 rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += mix.sample(0.0, rng).dependency_ms;
  EXPECT_NEAR(sum / n, 8.0, 0.3);
}

TEST(RequestMix, TypeDistanceZeroForIdenticalMixes) {
  const RequestMix a(two_types());
  const RequestMix b(two_types());
  EXPECT_DOUBLE_EQ(RequestMix::type_distance(a, b), 0.0);
}

TEST(RequestMix, TypeDistanceOneForDisjointSupport) {
  RequestType t0;
  t0.weight = 1.0;
  RequestType t1_zero;
  t1_zero.weight = 1e-12;  // placeholder slot
  // Mix A is all type 0; mix B is all type 1 (by padding A's slot).
  const RequestMix a({t0, t1_zero});
  const RequestMix b({t1_zero, t0});
  EXPECT_NEAR(RequestMix::type_distance(a, b), 1.0, 1e-9);
}

TEST(RequestMix, TypeDistanceSymmetric) {
  RequestType x;
  x.weight = 2.0;
  RequestType y;
  y.weight = 1.0;
  const RequestMix a({x, y});
  const RequestMix b({y, x});
  EXPECT_DOUBLE_EQ(RequestMix::type_distance(a, b),
                   RequestMix::type_distance(b, a));
}

}  // namespace
}  // namespace headroom::workload
