// CLI argument parsing rules, including the per-flag value-consumption
// regression: flags without a value (--help, --quiet) must never swallow
// the following argument.
#include "cli/args.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace headroom::cli {
namespace {

using Args = std::vector<std::string>;

TEST(CliArgs, NoArgumentsIsDefaultPipeline) {
  const ParseOutcome outcome = parse_args({});
  ASSERT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.options.command, Command::kPipeline);
  EXPECT_EQ(outcome.options.fleet, 64u);
  EXPECT_EQ(outcome.options.days, 3);
  EXPECT_EQ(outcome.options.pools, 1u);
  EXPECT_EQ(outcome.options.seed, 5u);
  EXPECT_EQ(outcome.options.service, "D");
  EXPECT_FALSE(outcome.options.threads_set);
}

TEST(CliArgs, ParsesAllPipelineFlags) {
  const ParseOutcome outcome = parse_args(
      Args{"--fleet", "200", "--days", "7", "--pools", "5", "--seed", "42",
           "--service", "B", "--threads", "8"});
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.options.fleet, 200u);
  EXPECT_EQ(outcome.options.days, 7);
  EXPECT_EQ(outcome.options.pools, 5u);
  EXPECT_EQ(outcome.options.seed, 42u);
  EXPECT_EQ(outcome.options.service, "B");
  EXPECT_EQ(outcome.options.threads, 8u);
  EXPECT_TRUE(outcome.options.threads_set);
}

TEST(CliArgs, HelpShortCircuits) {
  const ParseOutcome outcome = parse_args(Args{"--help"});
  EXPECT_FALSE(outcome.ok);
  EXPECT_TRUE(outcome.show_help);
  EXPECT_TRUE(parse_args(Args{"-h"}).show_help);
  EXPECT_TRUE(parse_args(Args{"run", "--help"}).show_help);
}

// The historical bug: the parse loop consumed a "value" after every flag,
// so a value-less flag silently ate its right-hand neighbour. --quiet
// directly before --scenario is the sharpest probe.
TEST(CliArgs, ValuelessFlagDoesNotConsumeNextArgument) {
  const ParseOutcome outcome =
      parse_args(Args{"run", "--quiet", "--scenario", "x.scn"});
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_TRUE(outcome.options.quiet);
  EXPECT_EQ(outcome.options.scenario_path, "x.scn");
}

TEST(CliArgs, ValueFlagConsumesExactlyOneArgument) {
  const ParseOutcome outcome =
      parse_args(Args{"run", "--scenario", "a.scn", "--quiet"});
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.options.scenario_path, "a.scn");
  EXPECT_TRUE(outcome.options.quiet);
}

TEST(CliArgs, MissingValueIsAnError) {
  const ParseOutcome outcome = parse_args(Args{"--fleet"});
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.error, "--fleet needs a value");
  EXPECT_EQ(parse_args(Args{"run", "--scenario"}).error,
            "--scenario needs a value");
}

TEST(CliArgs, RejectsBadNumbers) {
  EXPECT_EQ(parse_args(Args{"--fleet", "abc"}).error,
            "bad value for --fleet: 'abc' (expected 1..1000000)");
  EXPECT_EQ(parse_args(Args{"--seed", "-1"}).error,
            "bad value for --seed: '-1' (expected 0.." +
                std::to_string(UINT64_MAX) + ")");
  EXPECT_EQ(parse_args(Args{"--days", "0"}).error,
            "bad value for --days: '0' (expected 1..3650)");
  EXPECT_EQ(parse_args(Args{"--pools", "10"}).error,
            "bad value for --pools: '10' (expected 1..9)");
}

TEST(CliArgs, RejectsUnknownFlagsPerCommand) {
  EXPECT_EQ(parse_args(Args{"--bogus"}).error, "unknown argument '--bogus'");
  EXPECT_EQ(parse_args(Args{"run", "--fleet", "3"}).error,
            "unknown argument '--fleet' for run");
  EXPECT_EQ(parse_args(Args{"list-scenarios", "--scenario", "x"}).error,
            "unknown argument '--scenario' for list-scenarios");
}

TEST(CliArgs, RejectsUnknownCommand) {
  const ParseOutcome outcome = parse_args(Args{"frobnicate"});
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.error,
            "unknown command 'frobnicate' (expected run, serve, bakeoff, "
            "plan, export-trace, list-scenarios, or flags)");
}

TEST(CliArgs, RunRequiresScenario) {
  const ParseOutcome outcome = parse_args(Args{"run"});
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.error, "run needs --scenario FILE or --trace DIR");
}

TEST(CliArgs, RunParsesTraceDirectory) {
  const ParseOutcome outcome = parse_args(Args{"run", "--trace", "traces/t1"});
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.options.command, Command::kRunScenario);
  EXPECT_EQ(outcome.options.trace_dir, "traces/t1");
  EXPECT_TRUE(outcome.options.scenario_path.empty());
}

TEST(CliArgs, RunRejectsScenarioAndTraceTogether) {
  const ParseOutcome outcome =
      parse_args(Args{"run", "--scenario", "f.scn", "--trace", "d"});
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.error, "run takes --scenario or --trace, not both");
}

TEST(CliArgs, RunRejectsThreadsWithTrace) {
  // Replay never steps a simulator; swallowing the flag silently would be
  // the bug class this parser exists to prevent.
  const ParseOutcome outcome =
      parse_args(Args{"run", "--trace", "d", "--threads", "4"});
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.error,
            "--threads does not apply to run --trace (replay does not step "
            "a simulator)");
}

TEST(CliArgs, ExportTraceParsesScenarioAndOut) {
  const ParseOutcome outcome =
      parse_args(Args{"export-trace", "--scenario", "f.scn", "--out", "d",
                      "--threads", "2", "--quiet"});
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.options.command, Command::kExportTrace);
  EXPECT_EQ(outcome.options.scenario_path, "f.scn");
  EXPECT_EQ(outcome.options.trace_out, "d");
  EXPECT_EQ(outcome.options.threads, 2u);
  EXPECT_TRUE(outcome.options.threads_set);
  EXPECT_TRUE(outcome.options.quiet);
}

TEST(CliArgs, ExportTraceRequiresScenarioAndOut) {
  EXPECT_EQ(parse_args(Args{"export-trace", "--out", "d"}).error,
            "export-trace needs --scenario FILE");
  EXPECT_EQ(parse_args(Args{"export-trace", "--scenario", "f.scn"}).error,
            "export-trace needs --out DIR");
  EXPECT_EQ(parse_args(Args{"export-trace", "--dir", "d"}).error,
            "unknown argument '--dir' for export-trace");
}

TEST(CliArgs, RunParsesScenarioAndThreadOverride) {
  const ParseOutcome outcome =
      parse_args(Args{"run", "--scenario", "f.scn", "--threads", "2"});
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.options.command, Command::kRunScenario);
  EXPECT_EQ(outcome.options.scenario_path, "f.scn");
  EXPECT_EQ(outcome.options.threads, 2u);
  EXPECT_TRUE(outcome.options.threads_set);
}

TEST(CliArgs, ListScenariosParsesDir) {
  const ParseOutcome defaults = parse_args(Args{"list-scenarios"});
  ASSERT_TRUE(defaults.ok);
  EXPECT_EQ(defaults.options.command, Command::kListScenarios);
  EXPECT_EQ(defaults.options.scenario_dir, "examples/scenarios");
  const ParseOutcome custom =
      parse_args(Args{"list-scenarios", "--dir", "/tmp/scn"});
  ASSERT_TRUE(custom.ok);
  EXPECT_EQ(custom.options.scenario_dir, "/tmp/scn");
}

TEST(CliArgs, ServeParsesScenarioAndKnobs) {
  const ParseOutcome outcome = parse_args(
      Args{"serve", "--scenario", "f.scn", "--extra-days", "2",
           "--retention-days", "3", "--reuse-baseline", "--out", "logs",
           "--threads", "2", "--quiet"});
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.options.command, Command::kServe);
  EXPECT_EQ(outcome.options.scenario_path, "f.scn");
  EXPECT_EQ(outcome.options.extra_days, 2);
  EXPECT_EQ(outcome.options.retention_days, 3);
  EXPECT_TRUE(outcome.options.reuse_baseline);
  EXPECT_EQ(outcome.options.serve_out, "logs");
  EXPECT_EQ(outcome.options.threads, 2u);
  EXPECT_TRUE(outcome.options.quiet);
}

TEST(CliArgs, ServeDefaultsMatchTheDocumentedKnobs) {
  const ParseOutcome outcome = parse_args(Args{"serve", "--scenario", "f.scn"});
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.options.extra_days, 0);
  EXPECT_EQ(outcome.options.retention_days, 2);
  EXPECT_FALSE(outcome.options.reuse_baseline);
  EXPECT_FALSE(outcome.options.follow);
  EXPECT_EQ(outcome.options.poll_ms, 20);
  EXPECT_EQ(outcome.options.max_idle_polls, 250);
}

TEST(CliArgs, ServeParsesFollowMode) {
  const ParseOutcome outcome =
      parse_args(Args{"serve", "--trace", "traces/t1", "--follow",
                      "--poll-ms", "5", "--max-idle-polls", "10"});
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.options.command, Command::kServe);
  EXPECT_EQ(outcome.options.trace_dir, "traces/t1");
  EXPECT_TRUE(outcome.options.follow);
  EXPECT_EQ(outcome.options.poll_ms, 5);
  EXPECT_EQ(outcome.options.max_idle_polls, 10);
}

TEST(CliArgs, ServeRequiresAFeed) {
  EXPECT_EQ(parse_args(Args{"serve"}).error,
            "serve needs --scenario FILE or --trace DIR --follow");
  EXPECT_EQ(parse_args(Args{"serve", "--scenario", "f.scn", "--trace", "d"})
                .error,
            "serve takes --scenario or --trace, not both");
  EXPECT_EQ(parse_args(Args{"serve", "--trace", "d"}).error,
            "serve --trace requires --follow (a recorded trace is replayed "
            "with 'run --trace'; serve tails a growing one)");
  EXPECT_EQ(parse_args(Args{"serve", "--follow", "--scenario", "f.scn"})
                .error,
            "--follow requires --trace DIR");
}

TEST(CliArgs, ServeFollowRejectsSimulationOnlyKnobs) {
  EXPECT_EQ(
      parse_args(Args{"serve", "--trace", "d", "--follow", "--threads", "4"})
          .error,
      "--threads does not apply to serve --trace (follow mode does not step "
      "a simulator)");
  EXPECT_EQ(parse_args(
                Args{"serve", "--trace", "d", "--follow", "--extra-days", "1"})
                .error,
            "--extra-days does not apply to serve --trace (the feed decides "
            "when the stream ends)");
}

TEST(CliArgs, ServeRejectsOutOfRangeKnobs) {
  EXPECT_EQ(parse_args(Args{"serve", "--scenario", "f.scn", "--retention-days",
                            "-1"})
                .error,
            "bad value for --retention-days: '-1' (expected 0..3650)");
  EXPECT_EQ(parse_args(Args{"serve", "--trace", "d", "--follow", "--poll-ms",
                            "0"})
                .error,
            "bad value for --poll-ms: '0' (expected 1..60000)");
}

TEST(CliArgs, EmptyServiceIsAnError) {
  const ParseOutcome outcome = parse_args(Args{"--service", ""});
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.error, "--service needs a value");
}

TEST(CliArgs, BakeoffDefaultsToTheScenarioLibrary) {
  const ParseOutcome outcome = parse_args(Args{"bakeoff"});
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.options.command, Command::kBakeoff);
  EXPECT_EQ(outcome.options.scenario_dir, "examples/scenarios");
  EXPECT_FALSE(outcome.options.dir_set);
  EXPECT_TRUE(outcome.options.scenario_path.empty());
  EXPECT_TRUE(outcome.options.bakeoff_out.empty());
  EXPECT_FALSE(outcome.options.quiet);
}

TEST(CliArgs, BakeoffParsesAllFlags) {
  const ParseOutcome outcome = parse_args(
      Args{"bakeoff", "--dir", "scns", "--out", "frontiers", "--quiet",
           "--threads", "4"});
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.options.scenario_dir, "scns");
  EXPECT_TRUE(outcome.options.dir_set);
  EXPECT_EQ(outcome.options.bakeoff_out, "frontiers");
  EXPECT_TRUE(outcome.options.quiet);
  EXPECT_EQ(outcome.options.threads, 4u);
  EXPECT_TRUE(outcome.options.threads_set);
}

TEST(CliArgs, BakeoffParsesSingleScenario) {
  const ParseOutcome outcome =
      parse_args(Args{"bakeoff", "--scenario", "f.scn"});
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.options.scenario_path, "f.scn");
  EXPECT_FALSE(outcome.options.dir_set);
}

TEST(CliArgs, BakeoffRejectsScenarioAndDirTogether) {
  const ParseOutcome outcome =
      parse_args(Args{"bakeoff", "--scenario", "f.scn", "--dir", "d"});
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.error, "bakeoff takes --scenario or --dir, not both");
}

TEST(CliArgs, BakeoffRejectsForeignFlags) {
  EXPECT_EQ(parse_args(Args{"bakeoff", "--fleet", "3"}).error,
            "unknown argument '--fleet' for bakeoff");
  EXPECT_EQ(parse_args(Args{"bakeoff", "--follow"}).error,
            "unknown argument '--follow' for bakeoff");
}

TEST(CliArgs, BakeoffValueFlagsRequireValues) {
  EXPECT_EQ(parse_args(Args{"bakeoff", "--out"}).error,
            "--out needs a value");
  EXPECT_EQ(parse_args(Args{"bakeoff", "--dir"}).error,
            "--dir needs a value");
}

TEST(CliArgs, PlanDefaults) {
  const ParseOutcome outcome = parse_args(Args{"plan"});
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.options.command, Command::kPlan);
  EXPECT_EQ(outcome.options.scenario_dir, "examples/scenarios");
  EXPECT_EQ(outcome.options.horizon_days, 90);
  EXPECT_EQ(outcome.options.growth, 0.0);
  EXPECT_TRUE(outcome.options.failover.empty());
  EXPECT_TRUE(outcome.options.plan_out.empty());
}

TEST(CliArgs, ParsesAllPlanFlags) {
  const ParseOutcome outcome = parse_args(
      Args{"plan", "--scenario", "x.scn", "--horizon", "30", "--growth",
           "1.75", "--failover", "latency_aware", "--out", "plans",
           "--threads", "4", "--quiet"});
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.options.scenario_path, "x.scn");
  EXPECT_EQ(outcome.options.horizon_days, 30);
  EXPECT_DOUBLE_EQ(outcome.options.growth, 1.75);
  EXPECT_EQ(outcome.options.failover, "latency_aware");
  EXPECT_EQ(outcome.options.plan_out, "plans");
  EXPECT_EQ(outcome.options.threads, 4u);
  EXPECT_TRUE(outcome.options.quiet);
}

TEST(CliArgs, PlanValidatesFailoverPolicyName) {
  for (const char* good : {"nearest_survivor", "latency_aware", "cost_aware"}) {
    EXPECT_TRUE(parse_args(Args{"plan", "--failover", good}).ok) << good;
  }
  EXPECT_EQ(parse_args(Args{"plan", "--failover", "closest"}).error,
            "bad value for --failover: 'closest' (expected nearest_survivor, "
            "latency_aware, cost_aware)");
}

TEST(CliArgs, PlanValidatesGrowthAndHorizon) {
  EXPECT_EQ(parse_args(Args{"plan", "--growth", "0"}).error,
            "bad value for --growth: '0' (expected a positive number)");
  EXPECT_EQ(parse_args(Args{"plan", "--growth", "-1.5"}).error,
            "bad value for --growth: '-1.5' (expected a positive number)");
  EXPECT_EQ(parse_args(Args{"plan", "--growth", "abc"}).error,
            "bad value for --growth: 'abc' (expected a positive number)");
  EXPECT_EQ(parse_args(Args{"plan", "--horizon", "0"}).error,
            "bad value for --horizon: '0' (expected 1..3650)");
  EXPECT_EQ(parse_args(Args{"plan", "--horizon", "2.5"}).error,
            "bad value for --horizon: '2.5' (expected 1..3650)");
}

TEST(CliArgs, PlanSourceFlagsAreMutuallyExclusive) {
  EXPECT_EQ(
      parse_args(Args{"plan", "--scenario", "x.scn", "--trace", "d"}).error,
      "plan takes --scenario or --trace, not both");
  EXPECT_EQ(parse_args(Args{"plan", "--trace", "d", "--dir", "e"}).error,
            "plan takes --trace or --dir, not both");
  EXPECT_EQ(parse_args(Args{"plan", "--scenario", "x.scn", "--dir", "e"}).error,
            "plan takes --scenario or --dir, not both");
  EXPECT_EQ(parse_args(Args{"plan", "--trace", "d", "--threads", "4"}).error,
            "--threads does not apply to plan --trace "
            "(replay does not step a simulator)");
  // Each source alone is fine.
  EXPECT_TRUE(parse_args(Args{"plan", "--trace", "d"}).ok);
  EXPECT_TRUE(parse_args(Args{"plan", "--dir", "e"}).ok);
}

TEST(CliArgs, PlanRejectsUnknownFlags) {
  EXPECT_EQ(parse_args(Args{"plan", "--follow"}).error,
            "unknown argument '--follow' for plan");
  EXPECT_EQ(parse_args(Args{"plan", "--growth"}).error,
            "--growth needs a value");
}

TEST(CliArgs, UsageMentionsEveryCommand) {
  const std::string text = usage();
  EXPECT_NE(text.find("run --scenario"), std::string::npos);
  EXPECT_NE(text.find("list-scenarios"), std::string::npos);
  EXPECT_NE(text.find("--threads"), std::string::npos);
  EXPECT_NE(text.find("bakeoff"), std::string::npos);
  EXPECT_NE(text.find("plan"), std::string::npos);
  EXPECT_NE(text.find("--failover"), std::string::npos);
}

}  // namespace
}  // namespace headroom::cli
