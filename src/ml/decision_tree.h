// CART binary decision tree with probability leaves.
//
// Reproduces the paper's server-group classifier (§II-A2): a tree trained
// on per-server/pool feature vectors — CPU utilization percentiles plus the
// slope/intercept/R² of a linear fit across those percentiles — predicting
// whether a pool is "tightly bound" (predictable workload→CPU response).
// The paper's tree had 34 splits, R² = 0.746 on the predicted probability,
// and AUC = 0.9804; options below expose the same knobs (minimum leaf size
// of 2000 machines, split budget).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ml/dataset.h"

namespace headroom::ml {

struct DecisionTreeOptions {
  std::size_t max_depth = 16;
  std::size_t min_leaf_size = 1;        ///< Paper uses 2000 machines.
  std::size_t max_splits = 0;           ///< 0 = unlimited; paper's tree: 34.
  double min_impurity_decrease = 1e-9;  ///< Gini decrease required to split.
};

/// Binary CART classifier (Gini impurity, axis-aligned threshold splits).
class DecisionTree {
 public:
  /// Fits the tree. `labels[i]` is the class of `data.row(i)`.
  /// Splits are grown best-first so a `max_splits` budget keeps the most
  /// informative splits (matching how a pruned production tree looks).
  void fit(const Dataset& data, std::span<const std::uint8_t> labels,
           const DecisionTreeOptions& options = {});

  /// Probability that the row is in the positive class (leaf frequency).
  [[nodiscard]] double predict_proba(std::span<const double> features) const;
  /// predict_proba >= 0.5.
  [[nodiscard]] bool predict(std::span<const double> features) const;

  [[nodiscard]] bool trained() const noexcept { return !nodes_.empty(); }
  /// Number of internal (split) nodes.
  [[nodiscard]] std::size_t split_count() const noexcept;
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t depth() const noexcept;

  /// Human-readable rendering for debugging/reporting.
  [[nodiscard]] std::string to_string(const Dataset& data) const;

 private:
  struct Node {
    bool is_leaf = true;
    std::size_t feature = 0;
    double threshold = 0.0;
    double probability = 0.0;  ///< Positive-class frequency in this node.
    std::size_t samples = 0;
    std::size_t left = 0;   ///< Child indices (valid when !is_leaf).
    std::size_t right = 0;
    std::size_t level = 0;
  };

  [[nodiscard]] std::size_t leaf_for(std::span<const double> features) const;

  std::vector<Node> nodes_;
};

}  // namespace headroom::ml
