#include "ml/forecaster.h"

#include <stdexcept>

namespace headroom::ml {

namespace {

SeasonalOptions seasonal_options(const ForecasterOptions& options) {
  // Validate here (with this class's messages) rather than letting the
  // profile constructor throw its own.
  if (options.season_seconds <= 0 || options.buckets == 0) {
    throw std::invalid_argument("DemandForecaster: bad season/buckets");
  }
  if (options.level_smoothing <= 0.0 || options.level_smoothing > 1.0 ||
      options.ratio_smoothing <= 0.0 || options.ratio_smoothing > 1.0) {
    throw std::invalid_argument(
        "DemandForecaster: smoothing must be in (0, 1]");
  }
  return SeasonalOptions{.season_seconds = options.season_seconds,
                         .buckets = options.buckets,
                         .smoothing = options.level_smoothing};
}

}  // namespace

DemandForecaster::DemandForecaster(ForecasterOptions options)
    : options_(options), seasonal_(seasonal_options(options)) {}

void DemandForecaster::observe(telemetry::SimTime t, double value) {
  const std::size_t b = seasonal_.bucket_of(t);
  if (seasonal_.seen(b)) {
    // Ratio first, against the level *before* this observation updates it —
    // the same prediction a caller would have gotten for `t`.
    const double level = seasonal_.level(b);
    if (level > 0.0) {
      const double r = value / level;
      ratio_ += options_.ratio_smoothing * (r - ratio_);
    }
  }
  seasonal_.observe(t, value);
  last_value_ = value;
  ++count_;
}

double DemandForecaster::predict(telemetry::SimTime t) const {
  const std::size_t b = seasonal_.bucket_of(t);
  // Until one full season has been seen the bucket ahead may be empty;
  // persistence is the honest fallback.
  if (!seasonal_.seen(b) || count_ == 0) return last_value_;
  return seasonal_.level(b) * ratio_;
}

}  // namespace headroom::ml
