#include "ml/forecaster.h"

#include <stdexcept>

namespace headroom::ml {

DemandForecaster::DemandForecaster(ForecasterOptions options)
    : options_(options) {
  if (options_.season_seconds <= 0 || options_.buckets == 0) {
    throw std::invalid_argument("DemandForecaster: bad season/buckets");
  }
  if (options_.level_smoothing <= 0.0 || options_.level_smoothing > 1.0 ||
      options_.ratio_smoothing <= 0.0 || options_.ratio_smoothing > 1.0) {
    throw std::invalid_argument(
        "DemandForecaster: smoothing must be in (0, 1]");
  }
  level_.assign(options_.buckets, 0.0);
  seen_.assign(options_.buckets, false);
}

std::size_t DemandForecaster::bucket_of(telemetry::SimTime t) const noexcept {
  const telemetry::SimTime season = options_.season_seconds;
  telemetry::SimTime phase = t % season;
  if (phase < 0) phase += season;  // negative timestamps wrap consistently
  return static_cast<std::size_t>(
      (static_cast<unsigned long long>(phase) * options_.buckets) /
      static_cast<unsigned long long>(season));
}

void DemandForecaster::observe(telemetry::SimTime t, double value) {
  const std::size_t b = bucket_of(t);
  if (!seen_[b]) {
    level_[b] = value;
    seen_[b] = true;
  } else {
    // Ratio first, against the level *before* this observation updates it —
    // the same prediction a caller would have gotten for `t`.
    if (level_[b] > 0.0) {
      const double r = value / level_[b];
      ratio_ += options_.ratio_smoothing * (r - ratio_);
    }
    level_[b] += options_.level_smoothing * (value - level_[b]);
  }
  last_value_ = value;
  ++count_;
}

double DemandForecaster::predict(telemetry::SimTime t) const {
  const std::size_t b = bucket_of(t);
  // Until one full season has been seen the bucket ahead may be empty;
  // persistence is the honest fallback.
  if (!seen_[b] || count_ == 0) return last_value_;
  return level_[b] * ratio_;
}

}  // namespace headroom::ml
