#include "ml/cross_validation.h"

#include <algorithm>
#include <numeric>
#include <random>
#include <stdexcept>

#include "stats/linear_model.h"
#include "stats/roc.h"

namespace headroom::ml {

CrossValidationResult cross_validate(const Dataset& data,
                                     std::span<const std::uint8_t> labels,
                                     std::size_t k,
                                     const DecisionTreeOptions& options,
                                     std::uint64_t seed) {
  if (k < 2) throw std::invalid_argument("cross_validate: k must be >= 2");
  if (data.rows() != labels.size()) {
    throw std::invalid_argument("cross_validate: label count mismatch");
  }
  if (data.rows() < k) {
    throw std::invalid_argument("cross_validate: fewer rows than folds");
  }

  std::vector<std::size_t> order(data.rows());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::mt19937_64 rng(seed);
  std::shuffle(order.begin(), order.end(), rng);

  CrossValidationResult result;
  for (std::size_t fold = 0; fold < k; ++fold) {
    Dataset train(data.feature_names().empty()
                      ? std::vector<std::string>{}
                      : data.feature_names());
    std::vector<std::uint8_t> train_labels;
    Dataset test(train.feature_names());
    std::vector<std::uint8_t> test_labels;

    for (std::size_t i = 0; i < order.size(); ++i) {
      const std::size_t r = order[i];
      std::vector<double> row(data.row(r).begin(), data.row(r).end());
      if (i % k == fold) {
        test.add_row(std::move(row));
        test_labels.push_back(labels[r]);
      } else {
        train.add_row(std::move(row));
        train_labels.push_back(labels[r]);
      }
    }

    DecisionTree tree;
    tree.fit(train, train_labels, options);

    std::vector<double> probs;
    std::vector<double> label_values;
    probs.reserve(test.rows());
    std::size_t correct = 0;
    for (std::size_t r = 0; r < test.rows(); ++r) {
      const double p = tree.predict_proba(test.row(r));
      probs.push_back(p);
      label_values.push_back(test_labels[r] ? 1.0 : 0.0);
      if ((p >= 0.5) == test_labels[r]) ++correct;
    }

    FoldMetrics m;
    m.accuracy = test.rows() == 0
                     ? 0.0
                     : static_cast<double>(correct) / static_cast<double>(test.rows());
    m.auc = stats::auc(probs, test_labels);
    m.r_squared = stats::r_squared(label_values, probs);
    result.folds.push_back(m);
  }

  for (const FoldMetrics& m : result.folds) {
    result.mean.accuracy += m.accuracy;
    result.mean.auc += m.auc;
    result.mean.r_squared += m.r_squared;
  }
  const auto n = static_cast<double>(result.folds.size());
  result.mean.accuracy /= n;
  result.mean.auc /= n;
  result.mean.r_squared /= n;
  return result;
}

}  // namespace headroom::ml
