// k-fold cross-validation for the server-grouping classifier.
//
// The paper trains its tree "with 5 fold cross validation" on manually
// labeled pools (§II-A2) and reports R² of the predicted probability and
// AUC of the Yes/No prediction. This helper produces exactly those metrics.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/dataset.h"
#include "ml/decision_tree.h"

namespace headroom::ml {

struct FoldMetrics {
  double accuracy = 0.0;
  double auc = 0.0;        ///< AUC of predicted probability vs label.
  double r_squared = 0.0;  ///< R² of predicted probability vs 0/1 label.
};

struct CrossValidationResult {
  std::vector<FoldMetrics> folds;
  FoldMetrics mean;  ///< Averages across folds.
};

/// Deterministically shuffles rows (by `seed`), splits into `k` folds,
/// trains on k-1, evaluates on the held-out fold.
[[nodiscard]] CrossValidationResult cross_validate(
    const Dataset& data, std::span<const std::uint8_t> labels, std::size_t k,
    const DecisionTreeOptions& options, std::uint64_t seed = 7);

}  // namespace headroom::ml
