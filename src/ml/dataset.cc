#include "ml/dataset.h"

#include <stdexcept>

namespace headroom::ml {

Dataset::Dataset(std::vector<std::string> feature_names)
    : names_(std::move(feature_names)) {}

void Dataset::add_row(std::vector<double> features) {
  if (!rows_.empty() && features.size() != rows_.front().size()) {
    throw std::invalid_argument("Dataset::add_row: column count mismatch");
  }
  if (!names_.empty() && features.size() != names_.size()) {
    throw std::invalid_argument("Dataset::add_row: row width != name count");
  }
  rows_.push_back(std::move(features));
}

std::size_t Dataset::cols() const noexcept {
  if (!rows_.empty()) return rows_.front().size();
  return names_.size();
}

std::span<const double> Dataset::row(std::size_t r) const {
  if (r >= rows_.size()) throw std::out_of_range("Dataset::row");
  return rows_[r];
}

double Dataset::at(std::size_t r, std::size_t c) const {
  const auto rr = row(r);
  if (c >= rr.size()) throw std::out_of_range("Dataset::at");
  return rr[c];
}

std::string Dataset::feature_name(std::size_t c) const {
  if (c < names_.size()) return names_[c];
  // Built via += rather than `"f" + std::to_string(c)`: the rvalue
  // operator+ trips GCC 12's -Wrestrict false positive (PR 105329).
  std::string name("f");
  name += std::to_string(c);
  return name;
}

std::vector<double> Dataset::column(std::size_t c) const {
  std::vector<double> out;
  out.reserve(rows_.size());
  for (std::size_t r = 0; r < rows_.size(); ++r) out.push_back(at(r, c));
  return out;
}

}  // namespace headroom::ml
