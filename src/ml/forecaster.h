// Online demand forecaster: seasonal level model with a recency ratio.
//
// Demand for global online services is dominantly diurnal (the paper's
// Figs. 2-4), so the forecaster keeps one exponentially-weighted level per
// time-of-day bucket (a ml::SeasonalProfile — shared with the
// trend-season decomposition, not a private copy) plus a global ratio
// tracking how far the most recent observations sit above/below their
// bucket levels (slow growth, regional failover). Predictions for a future
// timestamp read the bucket level and scale by the ratio. Deliberately
// simple, fully deterministic, and *unreliable in exactly the interesting
// way*: it nails the diurnal shape and is blind to unforecastable events
// (flash crowds, outages) — the prediction-augmented planner's trust
// parameter exists to hedge that.
#pragma once

#include <cstddef>

#include "ml/seasonal.h"
#include "telemetry/time_series.h"

namespace headroom::ml {

struct ForecasterOptions {
  telemetry::SimTime season_seconds = 86400;  ///< Diurnal period.
  std::size_t buckets = 48;                   ///< Levels per season (30 min).
  double level_smoothing = 0.25;              ///< EWMA alpha per bucket.
  double ratio_smoothing = 0.10;              ///< EWMA alpha for the ratio.
};

class DemandForecaster {
 public:
  explicit DemandForecaster(ForecasterOptions options = {});

  /// Folds one observed window (timestamp, pool-total demand).
  void observe(telemetry::SimTime t, double value);

  /// Forecast demand at absolute time `t` (typically a few windows ahead).
  /// Falls back to persistence (the last observed value) until the target
  /// bucket has a level.
  [[nodiscard]] double predict(telemetry::SimTime t) const;

  [[nodiscard]] std::size_t observations() const noexcept { return count_; }
  [[nodiscard]] const ForecasterOptions& options() const noexcept {
    return options_;
  }

 private:
  ForecasterOptions options_;
  SeasonalProfile seasonal_;
  double ratio_ = 1.0;
  double last_value_ = 0.0;
  std::size_t count_ = 0;
};

}  // namespace headroom::ml
