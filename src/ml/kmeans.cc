#include "ml/kmeans.h"

#include <cmath>
#include <limits>
#include <random>
#include <stdexcept>

namespace headroom::ml {

namespace {

double squared_distance(std::span<const double> a, std::span<const double> b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

}  // namespace

KMeansResult kmeans(const Dataset& data, const KMeansOptions& options) {
  if (options.k == 0) throw std::invalid_argument("kmeans: k must be positive");
  if (data.rows() < options.k) {
    throw std::invalid_argument("kmeans: fewer rows than clusters");
  }
  const std::size_t n = data.rows();
  const std::size_t dims = data.cols();
  std::mt19937_64 rng(options.seed);

  // k-means++ seeding: first centroid uniform, then proportional to D².
  KMeansResult result;
  std::uniform_int_distribution<std::size_t> uniform(0, n - 1);
  const std::size_t first = uniform(rng);
  result.centroids.push_back(
      {data.row(first).begin(), data.row(first).end()});
  std::vector<double> d2(n, 0.0);
  while (result.centroids.size() < options.k) {
    double total = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      double best = std::numeric_limits<double>::max();
      for (const auto& c : result.centroids) {
        best = std::min(best, squared_distance(data.row(r), c));
      }
      d2[r] = best;
      total += best;
    }
    std::size_t chosen = 0;
    if (total > 0.0) {
      std::uniform_real_distribution<double> pick(0.0, total);
      double target = pick(rng);
      for (std::size_t r = 0; r < n; ++r) {
        target -= d2[r];
        if (target <= 0.0) {
          chosen = r;
          break;
        }
      }
    } else {
      chosen = uniform(rng);  // all points identical to some centroid
    }
    result.centroids.push_back(
        {data.row(chosen).begin(), data.row(chosen).end()});
  }

  result.assignment.assign(n, 0);
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    bool changed = false;
    for (std::size_t r = 0; r < n; ++r) {
      double best = std::numeric_limits<double>::max();
      std::size_t best_c = 0;
      for (std::size_t c = 0; c < options.k; ++c) {
        const double d = squared_distance(data.row(r), result.centroids[c]);
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      if (result.assignment[r] != best_c) {
        result.assignment[r] = best_c;
        changed = true;
      }
    }
    result.iterations = iter + 1;
    if (!changed && iter > 0) break;

    std::vector<std::vector<double>> sums(options.k,
                                          std::vector<double>(dims, 0.0));
    std::vector<std::size_t> counts(options.k, 0);
    for (std::size_t r = 0; r < n; ++r) {
      const std::size_t c = result.assignment[r];
      ++counts[c];
      const auto row = data.row(r);
      for (std::size_t i = 0; i < dims; ++i) sums[c][i] += row[i];
    }
    for (std::size_t c = 0; c < options.k; ++c) {
      if (counts[c] == 0) continue;  // keep previous centroid for empty cluster
      for (std::size_t i = 0; i < dims; ++i) {
        result.centroids[c][i] = sums[c][i] / static_cast<double>(counts[c]);
      }
    }
  }

  result.inertia = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    result.inertia +=
        squared_distance(data.row(r), result.centroids[result.assignment[r]]);
  }
  return result;
}

double silhouette_score(const Dataset& data,
                        const std::vector<std::size_t>& assignment,
                        std::size_t k) {
  const std::size_t n = data.rows();
  if (assignment.size() != n) {
    throw std::invalid_argument("silhouette_score: assignment size mismatch");
  }
  if (k < 2 || n < 2) return 0.0;

  std::vector<std::size_t> sizes(k, 0);
  for (std::size_t c : assignment) {
    if (c >= k) throw std::invalid_argument("silhouette_score: cluster id >= k");
    ++sizes[c];
  }
  for (std::size_t c = 0; c < k; ++c) {
    if (sizes[c] == 0) return 0.0;
  }

  double total = 0.0;
  std::vector<double> dist_sum(k, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    std::fill(dist_sum.begin(), dist_sum.end(), 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      dist_sum[assignment[j]] +=
          std::sqrt(squared_distance(data.row(i), data.row(j)));
    }
    const std::size_t own = assignment[i];
    const double a = sizes[own] > 1
                         ? dist_sum[own] / static_cast<double>(sizes[own] - 1)
                         : 0.0;
    double b = std::numeric_limits<double>::max();
    for (std::size_t c = 0; c < k; ++c) {
      if (c == own) continue;
      b = std::min(b, dist_sum[c] / static_cast<double>(sizes[c]));
    }
    const double denom = std::max(a, b);
    total += denom == 0.0 ? 0.0 : (b - a) / denom;
  }
  return total / static_cast<double>(n);
}

std::size_t choose_k(const Dataset& data, std::size_t max_k,
                     double min_silhouette, std::uint64_t seed) {
  if (data.rows() == 0) throw std::invalid_argument("choose_k: empty data");
  std::size_t best_k = 1;
  double best_score = min_silhouette;
  for (std::size_t k = 2; k <= max_k && k <= data.rows(); ++k) {
    KMeansOptions opt;
    opt.k = k;
    opt.seed = seed;
    const KMeansResult res = kmeans(data, opt);
    const double score = silhouette_score(data, res.assignment, k);
    if (score > best_score) {
      best_score = score;
      best_k = k;
    }
  }
  return best_k;
}

}  // namespace headroom::ml
