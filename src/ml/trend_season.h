// Trend x season demand decomposition with residual-quantile bands.
//
// Factors a demand history into (1) a growth trend — rolling OLS of demand
// on time over a bounded lookback ring (stats::RollingOls, the
// RollingPoolPlanner running-sum machinery) — and (2) a multiplicative
// seasonal profile: per-bucket EWMA levels of the observed/trend ratio,
// held in the same ml::SeasonalProfile the DemandForecaster uses. A
// forecast for time t is trend(t) x season(bucket(t)); the spread of
// recent one-step residuals (observed minus reconstructed) supplies
// quantile confidence bands around it, in the spirit of trusting a
// prediction only as far as its recent errors warrant.
//
// Fully deterministic and online: observations fold in one at a time in
// timestamp order, so replaying the same history (from raw telemetry or a
// downsampled tier carrying the same window values) reproduces the same
// decomposition bit for bit.
#pragma once

#include <cstddef>
#include <deque>

#include "ml/seasonal.h"
#include "stats/rolling_ols.h"
#include "telemetry/time_series.h"

namespace headroom::ml {

struct TrendSeasonOptions {
  telemetry::SimTime season_seconds = 86400;  ///< Diurnal period.
  std::size_t buckets = 48;                   ///< Seasonal levels (30 min).
  double seasonal_smoothing = 0.25;           ///< EWMA alpha per bucket.
  /// Observations retained in the trend ring. Spanning several seasons
  /// keeps the slope from chasing the diurnal wave; the default holds two
  /// weeks of 120 s windows.
  std::size_t trend_lookback = 14 * 720;
  /// Residuals retained for the band quantiles.
  std::size_t residual_lookback = 2 * 720;
  /// Upper band quantile (lower band is its mirror, 100 - this).
  double band_percentile = 95.0;
};

/// One forecast: reconstructed value plus its residual-quantile band and
/// the factors it came from.
struct TrendSeasonForecast {
  double value = 0.0;   ///< trend x season.
  double lower = 0.0;   ///< value + residual lower quantile.
  double upper = 0.0;   ///< value + residual upper quantile.
  double trend = 0.0;   ///< Trend component alone.
  double season = 1.0;  ///< Seasonal multiplier (1 for unseen buckets).
};

class TrendSeasonDecomposition {
 public:
  explicit TrendSeasonDecomposition(TrendSeasonOptions options = {});

  /// Folds one observed window. Call in non-decreasing timestamp order.
  void observe(telemetry::SimTime t, double value);

  /// Forecast at absolute time `t` (past or future). Until anything has
  /// been observed the forecast is zero with a degenerate band.
  [[nodiscard]] TrendSeasonForecast predict(telemetry::SimTime t) const;

  /// Trend component alone at `t` (the de-seasonalized growth line).
  [[nodiscard]] double trend_at(telemetry::SimTime t) const;

  /// Trend slope expressed per day of sim time.
  [[nodiscard]] double growth_per_day() const;

  [[nodiscard]] std::size_t observations() const noexcept { return count_; }
  /// Seasonal buckets with at least one observation (coverage gauge).
  [[nodiscard]] std::size_t seasonal_coverage() const noexcept {
    return seasonal_.seen_count();
  }
  [[nodiscard]] const TrendSeasonOptions& options() const noexcept {
    return options_;
  }

 private:
  TrendSeasonOptions options_;
  stats::RollingOls trend_;
  SeasonalProfile seasonal_;
  std::deque<double> residuals_;
  std::size_t count_ = 0;
  /// Band offsets are a function of the residual ring alone, not of the
  /// forecast time, and horizon sweeps call predict() once per window —
  /// cache the two quantiles between observes.
  mutable bool band_valid_ = false;
  mutable double band_lower_ = 0.0;
  mutable double band_upper_ = 0.0;
};

}  // namespace headroom::ml
