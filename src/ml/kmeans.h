// k-means clustering (k-means++ seeding, Lloyd iterations).
//
// Used for the Fig. 3 analysis: servers plotted by (P5 CPU, P95 CPU) fall
// into tight per-datacenter clusters, and one pool splits into two clusters
// because half its servers are a newer hardware generation. The grouper
// clusters the scatter and flags multi-modal pools for sub-group planning.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/dataset.h"

namespace headroom::ml {

struct KMeansOptions {
  std::size_t k = 2;
  std::size_t max_iterations = 100;
  std::uint64_t seed = 17;
};

struct KMeansResult {
  std::vector<std::vector<double>> centroids;  ///< k centroid vectors.
  std::vector<std::size_t> assignment;          ///< Cluster id per row.
  double inertia = 0.0;  ///< Sum of squared distances to assigned centroid.
  std::size_t iterations = 0;
};

/// Lloyd's algorithm with k-means++ initialization. Deterministic for a
/// given seed. Requires data.rows() >= k.
[[nodiscard]] KMeansResult kmeans(const Dataset& data, const KMeansOptions& options);

/// Mean silhouette coefficient of a clustering in [-1,1]; higher means
/// better-separated clusters. Returns 0 when k==1 or any cluster is empty.
[[nodiscard]] double silhouette_score(const Dataset& data,
                                      const std::vector<std::size_t>& assignment,
                                      std::size_t k);

/// Picks k in [1, max_k] by best silhouette (k=1 wins only when every
/// candidate k>=2 scores below `min_silhouette`). This is how the grouper
/// decides whether a pool is uni-modal (one planning group) or needs to be
/// partitioned (e.g. the two-hardware-generation pool of Fig. 3).
[[nodiscard]] std::size_t choose_k(const Dataset& data, std::size_t max_k,
                                   double min_silhouette = 0.5,
                                   std::uint64_t seed = 17);

}  // namespace headroom::ml
