#include "ml/seasonal.h"

#include <stdexcept>

namespace headroom::ml {

SeasonalProfile::SeasonalProfile(SeasonalOptions options) : options_(options) {
  if (options_.season_seconds <= 0 || options_.buckets == 0) {
    throw std::invalid_argument("SeasonalProfile: bad season/buckets");
  }
  if (options_.smoothing <= 0.0 || options_.smoothing > 1.0) {
    throw std::invalid_argument("SeasonalProfile: smoothing must be in (0, 1]");
  }
  level_.assign(options_.buckets, 0.0);
  seen_.assign(options_.buckets, false);
}

std::size_t SeasonalProfile::bucket_of(telemetry::SimTime t) const noexcept {
  const telemetry::SimTime season = options_.season_seconds;
  telemetry::SimTime phase = t % season;
  if (phase < 0) phase += season;  // negative timestamps wrap consistently
  return static_cast<std::size_t>(
      (static_cast<unsigned long long>(phase) * options_.buckets) /
      static_cast<unsigned long long>(season));
}

void SeasonalProfile::observe(telemetry::SimTime t, double value) {
  const std::size_t b = bucket_of(t);
  if (!seen_[b]) {
    level_[b] = value;
    seen_[b] = true;
    ++seen_count_;
  } else {
    level_[b] += options_.smoothing * (value - level_[b]);
  }
}

}  // namespace headroom::ml
