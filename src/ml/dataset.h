// Row-oriented feature dataset shared by the tree and clustering code.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace headroom::ml {

/// A dense feature matrix with optional column names. Rows are examples
/// (servers or pools in this project), columns are features (CPU
/// percentiles, regression slope/intercept/R², ...).
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<std::string> feature_names);

  /// Appends a row; the first row fixes the column count.
  void add_row(std::vector<double> features);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t cols() const noexcept;
  [[nodiscard]] std::span<const double> row(std::size_t r) const;
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;
  [[nodiscard]] const std::vector<std::string>& feature_names() const noexcept {
    return names_;
  }
  /// Column name, or "f<index>" when names were not provided.
  [[nodiscard]] std::string feature_name(std::size_t c) const;

  /// All values of one column, in row order.
  [[nodiscard]] std::vector<double> column(std::size_t c) const;

 private:
  std::vector<std::string> names_;
  std::vector<std::vector<double>> rows_;
};

}  // namespace headroom::ml
