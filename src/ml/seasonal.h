// Seasonal bucket profile: one EWMA level per time-of-season bucket.
//
// The single seasonal-modeling implementation in the tree — both
// DemandForecaster (absolute demand levels, scaled by its recency ratio)
// and TrendSeasonDecomposition (multiplicative ratios around a growth
// trend) observe into one of these rather than keeping private copies of
// the bucket math. A bucket's first observation initializes its level;
// later observations fold in with EWMA smoothing.
#pragma once

#include <cstddef>
#include <vector>

#include "telemetry/time_series.h"

namespace headroom::ml {

struct SeasonalOptions {
  telemetry::SimTime season_seconds = 86400;  ///< Diurnal period.
  std::size_t buckets = 48;                   ///< Levels per season (30 min).
  double smoothing = 0.25;                    ///< EWMA alpha per bucket.
};

class SeasonalProfile {
 public:
  explicit SeasonalProfile(SeasonalOptions options = {});

  /// Bucket index of absolute time `t`; negative timestamps wrap
  /// consistently.
  [[nodiscard]] std::size_t bucket_of(telemetry::SimTime t) const noexcept;

  /// Folds one observation into `t`'s bucket (init-on-first, then EWMA).
  void observe(telemetry::SimTime t, double value);

  [[nodiscard]] bool seen(std::size_t bucket) const { return seen_[bucket]; }
  [[nodiscard]] double level(std::size_t bucket) const {
    return level_[bucket];
  }
  /// Buckets with at least one observation.
  [[nodiscard]] std::size_t seen_count() const noexcept { return seen_count_; }
  [[nodiscard]] const SeasonalOptions& options() const noexcept {
    return options_;
  }

 private:
  SeasonalOptions options_;
  std::vector<double> level_;
  std::vector<bool> seen_;
  std::size_t seen_count_ = 0;
};

}  // namespace headroom::ml
