#include "ml/trend_season.h"

#include <stdexcept>
#include <vector>

#include "stats/percentile.h"

namespace headroom::ml {

TrendSeasonDecomposition::TrendSeasonDecomposition(TrendSeasonOptions options)
    : options_(options),
      trend_(options.trend_lookback == 0 ? 1 : options.trend_lookback),
      seasonal_(SeasonalOptions{.season_seconds = options.season_seconds,
                                .buckets = options.buckets,
                                .smoothing = options.seasonal_smoothing}) {
  if (options_.trend_lookback == 0 || options_.residual_lookback == 0) {
    throw std::invalid_argument(
        "TrendSeasonDecomposition: lookbacks must be positive");
  }
  if (options_.band_percentile <= 50.0 || options_.band_percentile >= 100.0) {
    throw std::invalid_argument(
        "TrendSeasonDecomposition: band percentile must be in (50, 100)");
  }
}

void TrendSeasonDecomposition::observe(telemetry::SimTime t, double value) {
  trend_.add(static_cast<double>(t), value);
  // Seasonal ratio against the just-updated trend: during warmup the trend
  // is a flat mean (ratio ~ shape/mean); once the slope settles the ratios
  // converge on the pure seasonal shape regardless of growth.
  const double trend_value = trend_at(t);
  const double ratio = trend_value > 0.0 ? value / trend_value : 1.0;
  seasonal_.observe(t, ratio);
  // One-step residual of the reconstruction the caller would have read for
  // `t` after this fold — what the bands should cover.
  const std::size_t b = seasonal_.bucket_of(t);
  const double season = seasonal_.seen(b) ? seasonal_.level(b) : 1.0;
  residuals_.push_back(value - trend_value * season);
  if (residuals_.size() > options_.residual_lookback) residuals_.pop_front();
  band_valid_ = false;
  ++count_;
}

double TrendSeasonDecomposition::trend_at(telemetry::SimTime t) const {
  return trend_.fit().predict(static_cast<double>(t));
}

double TrendSeasonDecomposition::growth_per_day() const {
  return trend_.fit().slope * 86400.0;
}

TrendSeasonForecast TrendSeasonDecomposition::predict(
    telemetry::SimTime t) const {
  TrendSeasonForecast f;
  if (count_ == 0) return f;
  f.trend = trend_at(t);
  const std::size_t b = seasonal_.bucket_of(t);
  f.season = seasonal_.seen(b) ? seasonal_.level(b) : 1.0;
  f.value = f.trend * f.season;
  f.lower = f.value;
  f.upper = f.value;
  if (!residuals_.empty()) {
    if (!band_valid_) {
      const std::vector<double> sample(residuals_.begin(), residuals_.end());
      band_lower_ = stats::percentile(sample, 100.0 - options_.band_percentile);
      band_upper_ = stats::percentile(sample, options_.band_percentile);
      band_valid_ = true;
    }
    f.lower = f.value + band_lower_;
    f.upper = f.value + band_upper_;
  }
  return f;
}

}  // namespace headroom::ml
