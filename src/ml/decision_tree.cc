#include "ml/decision_tree.h"

#include <algorithm>
#include <numeric>
#include <queue>
#include <sstream>
#include <stdexcept>

namespace headroom::ml {

namespace {

double gini(std::size_t positives, std::size_t total) {
  if (total == 0) return 0.0;
  const double p = static_cast<double>(positives) / static_cast<double>(total);
  return 2.0 * p * (1.0 - p);
}

struct SplitCandidate {
  bool valid = false;
  std::size_t feature = 0;
  double threshold = 0.0;
  double impurity_decrease = 0.0;
  // Row indices going to each side; filled lazily at apply time.
};

// Best axis-aligned split of `rows` by exhaustive threshold scan.
SplitCandidate find_best_split(const Dataset& data, std::span<const std::uint8_t> labels,
                               const std::vector<std::size_t>& rows,
                               std::size_t min_leaf_size) {
  SplitCandidate best;
  const std::size_t n = rows.size();
  if (n < 2 * min_leaf_size) return best;

  std::size_t total_pos = 0;
  for (std::size_t r : rows) total_pos += labels[r] ? 1u : 0u;
  const double parent_impurity =
      static_cast<double>(n) * gini(total_pos, n);
  if (total_pos == 0 || total_pos == n) return best;  // already pure

  std::vector<std::size_t> sorted = rows;
  for (std::size_t f = 0; f < data.cols(); ++f) {
    std::sort(sorted.begin(), sorted.end(), [&](std::size_t a, std::size_t b) {
      return data.at(a, f) < data.at(b, f);
    });
    std::size_t left_pos = 0;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      left_pos += labels[sorted[i]] ? 1u : 0u;
      const double v = data.at(sorted[i], f);
      const double next = data.at(sorted[i + 1], f);
      if (v == next) continue;  // can't split between equal values
      const std::size_t nl = i + 1;
      const std::size_t nr = n - nl;
      if (nl < min_leaf_size || nr < min_leaf_size) continue;
      const double child_impurity =
          static_cast<double>(nl) * gini(left_pos, nl) +
          static_cast<double>(nr) * gini(total_pos - left_pos, nr);
      const double decrease = parent_impurity - child_impurity;
      if (decrease > best.impurity_decrease) {
        best.valid = true;
        best.feature = f;
        best.threshold = (v + next) / 2.0;
        best.impurity_decrease = decrease;
      }
    }
  }
  return best;
}

}  // namespace

void DecisionTree::fit(const Dataset& data, std::span<const std::uint8_t> labels,
                       const DecisionTreeOptions& options) {
  if (data.rows() != labels.size()) {
    throw std::invalid_argument("DecisionTree::fit: label count mismatch");
  }
  if (data.rows() == 0) throw std::invalid_argument("DecisionTree::fit: empty data");
  nodes_.clear();

  // Per-node row sets, kept only during fitting (indices parallel nodes_).
  std::vector<std::vector<std::size_t>> node_rows;

  auto make_node = [&](std::vector<std::size_t> rows, std::size_t level) {
    Node node;
    node.level = level;
    node.samples = rows.size();
    std::size_t pos = 0;
    for (std::size_t r : rows) pos += labels[r] ? 1u : 0u;
    node.probability = rows.empty()
                           ? 0.0
                           : static_cast<double>(pos) / static_cast<double>(rows.size());
    nodes_.push_back(node);
    node_rows.push_back(std::move(rows));
    return nodes_.size() - 1;
  };

  std::vector<std::size_t> all(data.rows());
  std::iota(all.begin(), all.end(), std::size_t{0});
  make_node(std::move(all), 0);

  struct HeapEntry {
    double decrease;
    std::size_t node;
    SplitCandidate split;
    bool operator<(const HeapEntry& o) const { return decrease < o.decrease; }
  };
  std::priority_queue<HeapEntry> frontier;

  auto consider = [&](std::size_t node_id) {
    if (nodes_[node_id].level >= options.max_depth) return;
    SplitCandidate split = find_best_split(data, labels, node_rows[node_id],
                                           options.min_leaf_size);
    if (split.valid && split.impurity_decrease >= options.min_impurity_decrease) {
      frontier.push({split.impurity_decrease, node_id, split});
    }
  };
  consider(0);

  std::size_t splits_done = 0;
  while (!frontier.empty()) {
    if (options.max_splits != 0 && splits_done >= options.max_splits) break;
    const HeapEntry entry = frontier.top();
    frontier.pop();

    std::vector<std::size_t> left_rows;
    std::vector<std::size_t> right_rows;
    for (std::size_t r : node_rows[entry.node]) {
      if (data.at(r, entry.split.feature) <= entry.split.threshold) {
        left_rows.push_back(r);
      } else {
        right_rows.push_back(r);
      }
    }
    const std::size_t level = nodes_[entry.node].level + 1;
    const std::size_t li = make_node(std::move(left_rows), level);
    const std::size_t ri = make_node(std::move(right_rows), level);
    Node& parent = nodes_[entry.node];
    parent.is_leaf = false;
    parent.feature = entry.split.feature;
    parent.threshold = entry.split.threshold;
    parent.left = li;
    parent.right = ri;
    node_rows[entry.node].clear();
    ++splits_done;
    consider(li);
    consider(ri);
  }
}

std::size_t DecisionTree::leaf_for(std::span<const double> features) const {
  if (nodes_.empty()) throw std::logic_error("DecisionTree: not trained");
  std::size_t i = 0;
  while (!nodes_[i].is_leaf) {
    const Node& n = nodes_[i];
    if (n.feature >= features.size()) {
      throw std::invalid_argument("DecisionTree: feature vector too short");
    }
    i = features[n.feature] <= n.threshold ? n.left : n.right;
  }
  return i;
}

double DecisionTree::predict_proba(std::span<const double> features) const {
  return nodes_[leaf_for(features)].probability;
}

bool DecisionTree::predict(std::span<const double> features) const {
  return predict_proba(features) >= 0.5;
}

std::size_t DecisionTree::split_count() const noexcept {
  std::size_t c = 0;
  for (const Node& n : nodes_) c += n.is_leaf ? 0u : 1u;
  return c;
}

std::size_t DecisionTree::depth() const noexcept {
  std::size_t d = 0;
  for (const Node& n : nodes_) d = std::max(d, n.level);
  return d;
}

std::string DecisionTree::to_string(const Dataset& data) const {
  std::ostringstream os;
  // Depth-first rendering with explicit stack; (node, indent).
  std::vector<std::pair<std::size_t, std::size_t>> stack{{0, 0}};
  while (!stack.empty()) {
    const auto [i, indent] = stack.back();
    stack.pop_back();
    const Node& n = nodes_[i];
    os << std::string(indent * 2, ' ');
    if (n.is_leaf) {
      os << "leaf p=" << n.probability << " n=" << n.samples << "\n";
    } else {
      os << data.feature_name(n.feature) << " <= " << n.threshold << " (n="
         << n.samples << ")\n";
      stack.emplace_back(n.right, indent + 1);
      stack.emplace_back(n.left, indent + 1);
    }
  }
  return os.str();
}

}  // namespace headroom::ml
