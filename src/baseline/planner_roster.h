// The bake-off roster: every baseline policy adapted to the common
// core::CapacityPlanner plan-per-window contract.
//
// The two pre-existing planners keep their own decision logic and gain
// thin window adapters:
//  - QueueingWindowPlanner re-plans the M/M/c sizing each window for the
//    running peak demand. Its service time is, deliberately, a *belief*:
//    auto-calibrated once from the response surface's warm-latency floor
//    (or pinned by hand), never refit — the paper's stale-white-box-model
//    argument as a tournament entrant.
//  - ReactiveWindowPlanner drives the exact ReactiveAutoscaler::decide()
//    control law, CPU thresholds derived from the surface, provisioning
//    lag modeled by delaying when a decision's capacity starts serving.
// The three new policies (prediction_scaling.h, right_sizing.h,
// throughput_probing.h) implement the interface natively.
#pragma once

#include <memory>
#include <vector>

#include "baseline/prediction_scaling.h"
#include "baseline/queueing_planner.h"
#include "baseline/reactive_autoscaler.h"
#include "baseline/right_sizing.h"
#include "baseline/throughput_probing.h"
#include "core/capacity_planner.h"

namespace headroom::baseline {

struct QueueingWindowOptions {
  /// <= 0 auto-calibrates from the surface's warm-latency floor (the
  /// latency-fit intercept read as an exponential service P95).
  double service_time_ms = 0.0;
  double concurrency_per_server = 16.0;
  double max_utilization = 0.85;
};

class QueueingWindowPlanner final : public core::CapacityPlanner {
 public:
  explicit QueueingWindowPlanner(QueueingWindowOptions options = {});

  [[nodiscard]] std::string name() const override { return "queueing"; }
  void start(const core::PlannerContext& context,
             std::size_t initial_serving) override;
  [[nodiscard]] std::size_t plan_window(
      const core::PlannerWindow& window) override;

 private:
  QueueingWindowOptions options_;
  core::PlannerContext context_;
  std::unique_ptr<QueueingPlanner> planner_;
  double peak_rps_ = 0.0;
};

struct ReactiveWindowOptions {
  AutoscalerOptions autoscaler;  ///< CPU model/thresholds overwritten by
                                 ///< start() from the response surface.
  /// Fraction of the surface-implied SLO operating CPU to hold as target.
  double target_fraction = 0.80;
  double scale_out_fraction = 0.90;
  double scale_in_fraction = 0.55;
};

class ReactiveWindowPlanner final : public core::CapacityPlanner {
 public:
  explicit ReactiveWindowPlanner(ReactiveWindowOptions options = {});

  [[nodiscard]] std::string name() const override { return "reactive"; }
  void start(const core::PlannerContext& context,
             std::size_t initial_serving) override;
  [[nodiscard]] std::size_t plan_window(
      const core::PlannerWindow& window) override;

 private:
  ReactiveWindowOptions options_;
  core::PlannerContext context_;
  std::unique_ptr<ReactiveAutoscaler> scaler_;
  std::size_t committed_target_ = 0;
  std::size_t serving_ = 0;
  /// Decisions whose capacity has not finished provisioning/draining:
  /// (window index at which it starts serving, target).
  std::vector<std::pair<std::size_t, std::size_t>> pending_;
  std::size_t index_ = 0;
  std::size_t decide_every_ = 1;
};

struct RosterOptions {
  QueueingWindowOptions queueing;
  ReactiveWindowOptions reactive;
  PredictionScalingOptions prediction;
  RightSizingOptions right_sizing;
  ThroughputProbingOptions probing;
};

/// The five baseline entrants in fixed frontier order: queueing, reactive,
/// prediction_ml, right_sizing, probing. The harness prepends the RSM
/// entrant itself.
[[nodiscard]] std::vector<std::unique_ptr<core::CapacityPlanner>>
default_roster(const RosterOptions& options = {});

}  // namespace headroom::baseline
