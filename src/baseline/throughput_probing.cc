#include "baseline/throughput_probing.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace headroom::baseline {

ThroughputProbingPlanner::ThroughputProbingPlanner(
    ThroughputProbingOptions options)
    : options_(options) {
  if (options_.settle_windows == 0) {
    throw std::invalid_argument(
        "ThroughputProbingPlanner: settle_windows must be positive");
  }
  if (options_.probe_step_fraction <= 0.0 ||
      options_.probe_step_fraction >= 1.0) {
    throw std::invalid_argument(
        "ThroughputProbingPlanner: probe_step_fraction must be in (0, 1)");
  }
}

void ThroughputProbingPlanner::start(const core::PlannerContext& context,
                                     std::size_t initial_serving) {
  context_ = context;
  phase_ = Phase::kHold;
  current_ = initial_serving;
  revert_to_ = initial_serving;
  windows_in_phase_ = 0;
  cooldown_ = 0;
  worst_latency_ms_ = 0.0;
}

std::size_t ThroughputProbingPlanner::step_of(std::size_t serving) const {
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(
             static_cast<double>(serving) * options_.probe_step_fraction)));
}

std::size_t ThroughputProbingPlanner::plan_window(
    const core::PlannerWindow& window) {
  // A measured violation preempts everything: step up now, abandon any
  // probe in flight, and restart the measurement clock.
  if (window.latency_p95_ms > context_.latency_slo_ms) {
    current_ = std::min(context_.pool_size, current_ + step_of(current_));
    phase_ = Phase::kHold;
    windows_in_phase_ = 0;
    cooldown_ = 0;  // a violation is fresh evidence; probe freely later
    worst_latency_ms_ = 0.0;
    return current_;
  }

  worst_latency_ms_ = std::max(worst_latency_ms_, window.latency_p95_ms);
  ++windows_in_phase_;
  if (windows_in_phase_ < options_.settle_windows) return current_;

  // Settle period complete: judge it.
  const double comfort = context_.latency_slo_ms - options_.latency_headroom_ms;
  const bool comfortable = worst_latency_ms_ <= comfort;
  windows_in_phase_ = 0;
  worst_latency_ms_ = 0.0;

  switch (phase_) {
    case Phase::kHold:
      if (!comfortable) {
        // Creeping toward the SLO without violating it yet: proactive step
        // up rather than waiting for the violation.
        current_ = std::min(context_.pool_size, current_ + step_of(current_));
      } else if (cooldown_ > 0) {
        --cooldown_;
      } else if (current_ > context_.min_servers) {
        revert_to_ = current_;
        current_ = std::max(context_.min_servers, current_ - step_of(current_));
        phase_ = Phase::kProbeDown;
      }
      break;
    case Phase::kProbeDown:
      if (comfortable) {
        // Probe adopted; keep walking down from here next period.
        phase_ = Phase::kHold;
      } else {
        current_ = revert_to_;
        phase_ = Phase::kHold;
        cooldown_ = options_.backoff_periods;
      }
      break;
  }
  return current_;
}

}  // namespace headroom::baseline
