#include "baseline/planner_roster.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace headroom::baseline {

namespace {

/// Exponential P95 is -ln(0.05) ~= 3.0 service times; the warm-latency
/// floor (the latency fit's zero-load value) read backwards through that
/// relationship is the queueing model's "measured" service time.
constexpr double kExpP95Factor = 2.9957322735539909;

}  // namespace

// ---------------------------------------------------------------------------
// QueueingWindowPlanner

QueueingWindowPlanner::QueueingWindowPlanner(QueueingWindowOptions options)
    : options_(options) {}

void QueueingWindowPlanner::start(const core::PlannerContext& context,
                                  std::size_t initial_serving) {
  context_ = context;
  peak_rps_ = 0.0;
  (void)initial_serving;

  QueueingPlannerOptions qopt;
  qopt.concurrency_per_server = options_.concurrency_per_server;
  qopt.max_utilization = options_.max_utilization;
  qopt.service_time_ms = options_.service_time_ms;
  if (qopt.service_time_ms <= 0.0) {
    // Auto-calibrate from the surface's warm floor. This is the planner's
    // stale belief, fixed at start: the floor includes cold-start and
    // constant overheads the M/M/c structure does not model, which is the
    // mis-sizing the bake-off is designed to expose.
    qopt.service_time_ms =
        context.model != nullptr
            ? context.model->predict_latency_ms(0.0) / kExpP95Factor
            : 5.0;
  }
  // Keep the belief satisfiable: a service P95 above the SLO would make
  // every plan() search run off to infinity.
  const double ceiling = context.latency_slo_ms * 0.9 / kExpP95Factor;
  qopt.service_time_ms = std::clamp(qopt.service_time_ms, 0.1,
                                    std::max(0.1, ceiling));
  planner_ = std::make_unique<QueueingPlanner>(qopt);
}

std::size_t QueueingWindowPlanner::plan_window(
    const core::PlannerWindow& window) {
  peak_rps_ = std::max(peak_rps_, window.total_rps);
  if (peak_rps_ <= 0.0) {
    return static_cast<std::size_t>(window.serving);
  }
  // Plan for the running peak — the white-box posture: size once for the
  // worst observed load, never release.
  return planner_->plan(peak_rps_, core::LatencySlo{context_.latency_slo_ms})
      .servers;
}

// ---------------------------------------------------------------------------
// ReactiveWindowPlanner

ReactiveWindowPlanner::ReactiveWindowPlanner(ReactiveWindowOptions options)
    : options_(options) {}

void ReactiveWindowPlanner::start(const core::PlannerContext& context,
                                  std::size_t initial_serving) {
  context_ = context;
  serving_ = initial_serving;
  committed_target_ = initial_serving;
  pending_.clear();
  index_ = 0;

  AutoscalerOptions opt = options_.autoscaler;
  // CPU response straight from the surface's linear fit.
  opt.cpu_per_rps = std::max(context.model->cpu_fit().slope, 1e-9);
  opt.cpu_base = std::max(context.model->cpu_fit().intercept, 0.0);

  // Operating point: the per-server CPU where the surface's latency curve
  // crosses the SLO, found by scanning per-server load up to CPU
  // saturation (the quadratic is not monotone out-of-range, so scan).
  const double rps_at_saturation =
      (core::kSaturationCpuPct - opt.cpu_base) / opt.cpu_per_rps;
  double cpu_slo = core::kSaturationCpuPct;
  constexpr int kSteps = 512;
  for (int i = 1; i <= kSteps; ++i) {
    const double r = rps_at_saturation * static_cast<double>(i) /
                     static_cast<double>(kSteps);
    if (context.model->predict_latency_ms(r) > context.latency_slo_ms) {
      cpu_slo = context.model->predict_cpu_pct(
          rps_at_saturation * static_cast<double>(i - 1) /
          static_cast<double>(kSteps));
      break;
    }
  }
  const double span = std::max(cpu_slo - opt.cpu_base, 1.0);
  opt.cpu_slo_pct = cpu_slo;
  opt.target_cpu_pct = opt.cpu_base + options_.target_fraction * span;
  opt.scale_out_threshold = opt.cpu_base + options_.scale_out_fraction * span;
  opt.scale_in_threshold = opt.cpu_base + options_.scale_in_fraction * span;
  opt.min_servers = std::max<std::size_t>(1, context.min_servers);
  opt.max_servers = std::max(opt.min_servers, context.pool_size);
  scaler_ = std::make_unique<ReactiveAutoscaler>(opt);

  decide_every_ = static_cast<std::size_t>(
      std::max<telemetry::SimTime>(1, opt.control_interval_s /
                                          context.window_seconds));
}

std::size_t ReactiveWindowPlanner::plan_window(
    const core::PlannerWindow& window) {
  const AutoscalerOptions& opt = scaler_->options();
  if (index_ % decide_every_ == 0) {
    const std::size_t target =
        scaler_->decide(window.total_rps, window.cpu_pct, committed_target_);
    if (target != committed_target_) {
      const telemetry::SimTime lag = target > committed_target_
                                         ? opt.provision_lag_s
                                         : opt.drain_lag_s;
      const auto lag_windows = static_cast<std::size_t>(
          (lag + context_.window_seconds - 1) / context_.window_seconds);
      pending_.emplace_back(index_ + 1 + lag_windows, target);
      committed_target_ = target;
    }
  }
  // Capacity changes whose provisioning/draining lag has elapsed start
  // serving with the next window (which this return value controls).
  std::erase_if(pending_, [&](const auto& p) {
    if (p.first <= index_ + 1) {
      serving_ = p.second;
      return true;
    }
    return false;
  });
  ++index_;
  return serving_;
}

// ---------------------------------------------------------------------------

std::vector<std::unique_ptr<core::CapacityPlanner>> default_roster(
    const RosterOptions& options) {
  std::vector<std::unique_ptr<core::CapacityPlanner>> roster;
  roster.push_back(std::make_unique<QueueingWindowPlanner>(options.queueing));
  roster.push_back(std::make_unique<ReactiveWindowPlanner>(options.reactive));
  roster.push_back(
      std::make_unique<PredictionScalingPlanner>(options.prediction));
  roster.push_back(std::make_unique<RightSizingPlanner>(options.right_sizing));
  roster.push_back(
      std::make_unique<ThroughputProbingPlanner>(options.probing));
  return roster;
}

}  // namespace headroom::baseline
