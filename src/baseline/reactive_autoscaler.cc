#include "baseline/reactive_autoscaler.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <stdexcept>

namespace headroom::baseline {

ReactiveAutoscaler::ReactiveAutoscaler(AutoscalerOptions options)
    : options_(options) {
  if (options_.min_servers == 0 ||
      options_.min_servers > options_.max_servers) {
    throw std::invalid_argument("ReactiveAutoscaler: bad server bounds");
  }
  if (options_.control_interval_s <= 0) {
    throw std::invalid_argument("ReactiveAutoscaler: bad control interval");
  }
  if (options_.max_step_fraction <= 0.0 || options_.max_step_fraction >= 1.0) {
    throw std::invalid_argument(
        "ReactiveAutoscaler: max_step_fraction must be in (0, 1)");
  }
  if (options_.scale_in_threshold >= options_.scale_out_threshold) {
    throw std::invalid_argument(
        "ReactiveAutoscaler: scale_in_threshold must be below "
        "scale_out_threshold");
  }
  if (options_.cpu_per_rps <= 0.0) {
    throw std::invalid_argument(
        "ReactiveAutoscaler: cpu_per_rps must be positive");
  }
  if (options_.target_cpu_pct <= options_.cpu_base) {
    throw std::invalid_argument(
        "ReactiveAutoscaler: target_cpu_pct must exceed cpu_base");
  }
}

std::size_t ReactiveAutoscaler::decide(double total_rps, double cpu_pct,
                                       std::size_t committed_target) const {
  if (cpu_pct <= options_.scale_out_threshold &&
      cpu_pct >= options_.scale_in_threshold) {
    return committed_target;
  }
  // Servers needed to hold per-server CPU at the target. The constructor
  // guarantees target_cpu_pct > cpu_base, so the division is positive.
  const double desired_raw = options_.cpu_per_rps * total_rps /
                             (options_.target_cpu_pct - options_.cpu_base);
  const double damped = std::clamp(
      desired_raw,
      static_cast<double>(committed_target) *
          (1.0 - options_.max_step_fraction),
      static_cast<double>(committed_target) *
          (1.0 + options_.max_step_fraction));
  return std::clamp(static_cast<std::size_t>(std::max(1.0, std::ceil(damped))),
                    options_.min_servers, options_.max_servers);
}

AutoscalerRun ReactiveAutoscaler::replay(
    const telemetry::TimeSeries& offered_rps,
    std::size_t initial_servers) const {
  AutoscalerRun run;
  if (offered_rps.empty()) return run;

  // Pending capacity changes: (effective_at, new_target).
  struct Pending {
    telemetry::SimTime at;
    std::size_t target;
  };
  std::deque<Pending> pending;
  std::size_t serving =
      std::clamp(initial_servers, options_.min_servers, options_.max_servers);
  std::size_t committed_target = serving;  // includes in-flight changes

  telemetry::SimTime last_decision =
      offered_rps.time_at(0) - options_.control_interval_s;

  for (std::size_t i = 0; i < offered_rps.size(); ++i) {
    const telemetry::SimTime t = offered_rps.time_at(i);
    const telemetry::SimTime dt =
        i + 1 < offered_rps.size()
            ? offered_rps.time_at(i + 1) - t
            : options_.control_interval_s;

    // Apply any capacity change that has finished provisioning/draining.
    while (!pending.empty() && pending.front().at <= t) {
      serving = pending.front().target;
      pending.pop_front();
    }

    const double rps = offered_rps.value_at(i);
    const double per_server = rps / static_cast<double>(serving);
    const double cpu = options_.cpu_base + options_.cpu_per_rps * per_server;

    AutoscalerSample s;
    s.t = t;
    s.offered_rps = rps;
    s.serving = serving;
    s.cpu_pct = cpu;
    s.slo_violated = cpu > options_.cpu_slo_pct;

    // Control decision at the configured cadence, based on *current* CPU.
    if (t - last_decision >= options_.control_interval_s) {
      last_decision = t;
      const std::size_t target = decide(rps, cpu, committed_target);
      if (target != committed_target) {
        const telemetry::SimTime lag = target > committed_target
                                           ? options_.provision_lag_s
                                           : options_.drain_lag_s;
        pending.push_back({t + lag, target});
        committed_target = target;
      }
    }
    s.target = committed_target;
    run.samples.push_back(s);

    run.server_seconds += static_cast<double>(serving) * static_cast<double>(dt);
    run.total_seconds += static_cast<double>(dt);
    if (s.slo_violated) run.violation_seconds += static_cast<double>(dt);
    run.peak_serving = std::max(run.peak_serving, serving);
  }
  return run;
}

}  // namespace headroom::baseline
