// Queueing-theory primitives: Erlang B/C and M/M/c waiting times.
//
// The white-box comparator. The paper argues this family of models
// (§I: "forecast capacity requirements using a queuing theory based model")
// is impractical at scale because its parameters (service rates, the shape
// of the latency curve) drift as the system evolves — the baseline-
// comparison bench quantifies exactly that failure mode against the
// black-box planner.
#pragma once

#include <cstddef>

namespace headroom::baseline {

/// Erlang-B blocking probability for offered load `a` Erlangs, `c` servers.
[[nodiscard]] double erlang_b(double a, std::size_t c);

/// Erlang-C probability an arrival waits (M/M/c). Returns 1.0 when the
/// system is unstable (a >= c).
[[nodiscard]] double erlang_c(double a, std::size_t c);

/// Mean waiting time (seconds) in M/M/c queue with per-server service rate
/// `mu` (req/s) and arrival rate `lambda` (req/s). Infinite when unstable.
[[nodiscard]] double mm_c_mean_wait_s(double lambda, double mu, std::size_t c);

/// Mean sojourn (wait + service) time in seconds.
[[nodiscard]] double mm_c_mean_sojourn_s(double lambda, double mu, std::size_t c);

/// Approximate P95 sojourn time in seconds for M/M/c: service quantile plus
/// the conditional-wait exponential tail.
[[nodiscard]] double mm_c_p95_sojourn_s(double lambda, double mu, std::size_t c);

}  // namespace headroom::baseline
