// Prediction-augmented online scaling (after Rutten & Mukherjee, and the
// broader learning-augmented online algorithms line): a reactive base
// policy blended with an untrusted demand forecaster through a single
// trust parameter lambda.
//
//   lambda = 1  follow the forecast: pre-provision for the predicted
//               demand a provisioning lead ahead and release capacity the
//               moment the forecast says it is safe — optimal when the
//               predictor is right, badly burned by a flash crowd it
//               never saw coming.
//   lambda = 0  ignore the forecast: size for current demand only and
//               release capacity lazily after a ski-rental break-even
//               wait — the classic robust online algorithm.
//
// Intermediate lambda interpolates both the pre-provisioning target and
// the scale-down laziness, which is the consistency-vs-robustness tradeoff
// those papers formalize. Sizing itself (demand -> servers) is delegated
// to the shared response surface via core::servers_within_slo, so this
// planner competes on *policy*, not on a private model of the pool.
#pragma once

#include <cstddef>

#include "core/capacity_planner.h"
#include "ml/forecaster.h"

namespace headroom::baseline {

struct PredictionScalingOptions {
  /// Trust in the forecaster, in [0, 1].
  double trust = 0.5;
  /// How many windows ahead the forecast targets (the provisioning lead
  /// the predictor is supposed to buy).
  std::size_t lead_windows = 15;
  /// Ski-rental break-even: the fully-robust policy (trust = 0) releases a
  /// server only after it sat unneeded for this many windows.
  std::size_t switch_cost_windows = 15;
  /// Safety margin under the latency SLO when sizing.
  double slo_margin_ms = 1.0;
  ml::ForecasterOptions forecaster;
};

class PredictionScalingPlanner final : public core::CapacityPlanner {
 public:
  explicit PredictionScalingPlanner(PredictionScalingOptions options = {});

  [[nodiscard]] std::string name() const override { return "prediction_ml"; }
  void start(const core::PlannerContext& context,
             std::size_t initial_serving) override;
  [[nodiscard]] std::size_t plan_window(
      const core::PlannerWindow& window) override;

 private:
  PredictionScalingOptions options_;
  core::PlannerContext context_;
  ml::DemandForecaster forecaster_;
  std::size_t current_ = 0;
  std::size_t idle_run_ = 0;       ///< Consecutive windows wanting less.
  std::size_t hold_windows_ = 0;   ///< (1 - trust) * switch_cost_windows.
};

}  // namespace headroom::baseline
