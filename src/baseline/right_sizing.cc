#include "baseline/right_sizing.h"

namespace headroom::baseline {

RightSizingPlanner::RightSizingPlanner(RightSizingOptions options)
    : options_(options) {}

void RightSizingPlanner::start(const core::PlannerContext& context,
                               std::size_t /*initial_serving*/) {
  context_ = context;
  window_max_.clear();
  index_ = 0;
}

std::size_t RightSizingPlanner::plan_window(
    const core::PlannerWindow& window) {
  const std::size_t need = core::servers_within_slo(
      context_, window.total_rps, options_.slo_margin_ms);

  // Sliding-window maximum over the last (beta + 1) needs: a level stays
  // provisioned until beta windows have passed since it was last needed.
  const std::size_t horizon = options_.switching_cost_windows + 1;
  while (!window_max_.empty() && window_max_.back().second <= need) {
    window_max_.pop_back();
  }
  window_max_.emplace_back(index_, need);
  if (window_max_.front().first + horizon <= index_) {
    window_max_.pop_front();
  }
  ++index_;
  return window_max_.front().second;
}

}  // namespace headroom::baseline
