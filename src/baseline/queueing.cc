#include "baseline/queueing.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace headroom::baseline {

double erlang_b(double a, std::size_t c) {
  if (a < 0.0) throw std::invalid_argument("erlang_b: negative load");
  if (c == 0) return 1.0;
  // Stable recurrence: B(0) = 1; B(k) = a B(k-1) / (k + a B(k-1)).
  double b = 1.0;
  for (std::size_t k = 1; k <= c; ++k) {
    b = a * b / (static_cast<double>(k) + a * b);
  }
  return b;
}

double erlang_c(double a, std::size_t c) {
  if (a < 0.0) throw std::invalid_argument("erlang_c: negative load");
  if (c == 0 || a >= static_cast<double>(c)) return 1.0;
  const double b = erlang_b(a, c);
  const double rho = a / static_cast<double>(c);
  return b / (1.0 - rho * (1.0 - b));
}

double mm_c_mean_wait_s(double lambda, double mu, std::size_t c) {
  if (lambda < 0.0 || mu <= 0.0) {
    throw std::invalid_argument("mm_c_mean_wait_s: bad rates");
  }
  if (lambda == 0.0) return 0.0;
  const double a = lambda / mu;
  if (c == 0 || a >= static_cast<double>(c)) {
    return std::numeric_limits<double>::infinity();
  }
  const double pw = erlang_c(a, c);
  return pw / (static_cast<double>(c) * mu - lambda);
}

double mm_c_mean_sojourn_s(double lambda, double mu, std::size_t c) {
  return mm_c_mean_wait_s(lambda, mu, c) + 1.0 / mu;
}

double mm_c_p95_sojourn_s(double lambda, double mu, std::size_t c) {
  if (mu <= 0.0) throw std::invalid_argument("mm_c_p95_sojourn_s: bad mu");
  const double a = lambda / mu;
  if (c == 0 || a >= static_cast<double>(c)) {
    return std::numeric_limits<double>::infinity();
  }
  // Service-time P95 (exponential): -ln(0.05)/mu. Conditional wait given
  // waiting is exponential with rate (c mu - lambda); combine via the
  // waiting probability.
  const double pw = erlang_c(a, c);
  const double service_p95 = -std::log(0.05) / mu;
  if (pw <= 0.05) return service_p95;
  // P(W > t) = pw * exp(-(c mu - lambda) t) = 0.05  =>  t.
  const double rate = static_cast<double>(c) * mu - lambda;
  const double wait_p95 = std::log(pw / 0.05) / rate;
  return wait_p95 + service_p95;
}

}  // namespace headroom::baseline
