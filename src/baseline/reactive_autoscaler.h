// Reactive autoscaler: the dynamic-allocation comparator.
//
// Scales a pool on CPU feedback with a *provisioning lag* — the paper's
// core criticism: "prior work underestimated the time required to change
// the capacity of a system" (start-up in minutes for cache/JIT warm-up;
// fleet-level changes in weeks). The comparison bench replays a diurnal
// day-with-spike trace through this policy and counts SLO violations and
// server-hours versus the static right-sized headroom plan.
#pragma once

#include <cstddef>
#include <vector>

#include "telemetry/time_series.h"

namespace headroom::baseline {

struct AutoscalerOptions {
  double target_cpu_pct = 50.0;     ///< Scale to hold mean CPU here.
  double scale_out_threshold = 60.0;
  double scale_in_threshold = 35.0;
  /// Seconds between a scale-out decision and the capacity serving traffic
  /// (VM allocation + state load + JIT + cache priming).
  telemetry::SimTime provision_lag_s = 1800;
  /// Seconds a scale-in takes to drain.
  telemetry::SimTime drain_lag_s = 300;
  /// Decision cadence.
  telemetry::SimTime control_interval_s = 120;
  std::size_t min_servers = 1;
  std::size_t max_servers = 1 << 16;
  /// Max fractional change per decision (damping).
  double max_step_fraction = 0.25;
};

/// One control-loop sample of the replay.
struct AutoscalerSample {
  telemetry::SimTime t = 0;
  double offered_rps = 0.0;
  std::size_t serving = 0;     ///< Capacity actually serving traffic.
  std::size_t target = 0;      ///< Policy's desired capacity.
  double cpu_pct = 0.0;        ///< Realized per-server CPU.
  bool slo_violated = false;
};

struct AutoscalerRun {
  std::vector<AutoscalerSample> samples;
  double server_seconds = 0.0;       ///< Integrated capacity footprint.
  double violation_seconds = 0.0;    ///< Time above the CPU/latency limit.
  double total_seconds = 0.0;
  std::size_t peak_serving = 0;
  [[nodiscard]] double violation_fraction() const noexcept {
    return total_seconds > 0.0 ? violation_seconds / total_seconds : 0.0;
  }
  /// Mean serving capacity over the run.
  [[nodiscard]] double mean_serving() const noexcept {
    return total_seconds > 0.0 ? server_seconds / total_seconds : 0.0;
  }
};

/// Pure-function replay: drives the policy over an offered-load trace.
/// `cpu_per_rps` and `cpu_base` give realized CPU = base + slope * rps/server;
/// `cpu_slo_pct` is the violation line (utilization proxy for latency SLO).
class ReactiveAutoscaler {
 public:
  explicit ReactiveAutoscaler(AutoscalerOptions options);

  [[nodiscard]] AutoscalerRun replay(const telemetry::TimeSeries& offered_rps,
                                     std::size_t initial_servers,
                                     double cpu_per_rps, double cpu_base,
                                     double cpu_slo_pct) const;

  [[nodiscard]] const AutoscalerOptions& options() const noexcept {
    return options_;
  }

 private:
  AutoscalerOptions options_;
};

}  // namespace headroom::baseline
