// Reactive autoscaler: the dynamic-allocation comparator.
//
// Scales a pool on CPU feedback with a *provisioning lag* — the paper's
// core criticism: "prior work underestimated the time required to change
// the capacity of a system" (start-up in minutes for cache/JIT warm-up;
// fleet-level changes in weeks). The comparison bench replays a diurnal
// day-with-spike trace through this policy and counts SLO violations and
// server-hours versus the static right-sized headroom plan.
//
// The linear CPU response (cpu = cpu_base + cpu_per_rps * rps/server) is
// part of the options rather than a replay argument so the constructor can
// reject misconfigurations outright: a target_cpu_pct at or below cpu_base
// makes the sizing division negative, which the damping clamp then
// silently turns into a *scale-in* on every scale-out decision — the
// classic silent-misconfiguration failure this class used to have.
#pragma once

#include <cstddef>
#include <vector>

#include "telemetry/time_series.h"

namespace headroom::baseline {

struct AutoscalerOptions {
  double target_cpu_pct = 50.0;     ///< Scale to hold mean CPU here.
  double scale_out_threshold = 60.0;
  double scale_in_threshold = 35.0;
  /// Seconds between a scale-out decision and the capacity serving traffic
  /// (VM allocation + state load + JIT + cache priming).
  telemetry::SimTime provision_lag_s = 1800;
  /// Seconds a scale-in takes to drain.
  telemetry::SimTime drain_lag_s = 300;
  /// Decision cadence.
  telemetry::SimTime control_interval_s = 120;
  std::size_t min_servers = 1;
  std::size_t max_servers = 1 << 16;
  /// Max fractional change per decision (damping). Must be in (0, 1):
  /// at >= 1 the lower damping bound goes non-positive and a scale-out
  /// decision may collapse the pool instead of growing it.
  double max_step_fraction = 0.25;

  // --- CPU response model (what the controller believes about the pool) --
  /// Realized CPU = cpu_base + cpu_per_rps * rps/server.
  double cpu_per_rps = 0.028;
  /// CPU floor at zero load. Must be strictly below target_cpu_pct.
  double cpu_base = 1.4;
  /// The violation line (utilization proxy for the latency SLO).
  double cpu_slo_pct = 75.0;
};

/// One control-loop sample of the replay.
struct AutoscalerSample {
  telemetry::SimTime t = 0;
  double offered_rps = 0.0;
  std::size_t serving = 0;     ///< Capacity actually serving traffic.
  std::size_t target = 0;      ///< Policy's desired capacity.
  double cpu_pct = 0.0;        ///< Realized per-server CPU.
  bool slo_violated = false;
};

struct AutoscalerRun {
  std::vector<AutoscalerSample> samples;
  double server_seconds = 0.0;       ///< Integrated capacity footprint.
  double violation_seconds = 0.0;    ///< Time above the CPU/latency limit.
  double total_seconds = 0.0;
  std::size_t peak_serving = 0;
  [[nodiscard]] double violation_fraction() const noexcept {
    return total_seconds > 0.0 ? violation_seconds / total_seconds : 0.0;
  }
  /// Mean serving capacity over the run.
  [[nodiscard]] double mean_serving() const noexcept {
    return total_seconds > 0.0 ? server_seconds / total_seconds : 0.0;
  }
};

/// Pure-function replay: drives the policy over an offered-load trace.
/// The CPU response model and violation line come from AutoscalerOptions.
class ReactiveAutoscaler {
 public:
  /// Validates the options. Throws std::invalid_argument with an exact
  /// message for each misconfiguration (see the .cc); in particular the
  /// option sets that used to silently misbehave — target_cpu_pct <=
  /// cpu_base, max_step_fraction outside (0, 1), scale_in_threshold >=
  /// scale_out_threshold — are rejected here.
  explicit ReactiveAutoscaler(AutoscalerOptions options);

  [[nodiscard]] AutoscalerRun replay(const telemetry::TimeSeries& offered_rps,
                                     std::size_t initial_servers) const;

  /// The pure control law: given the pool-total offered load and realized
  /// per-server CPU at the committed target, the damped and clamped desired
  /// serving count. Returns `committed_target` unchanged while CPU sits
  /// inside the [scale_in, scale_out] band. Shared by replay() and the
  /// bake-off window adapter so both drive identical decisions.
  [[nodiscard]] std::size_t decide(double total_rps, double cpu_pct,
                                   std::size_t committed_target) const;

  [[nodiscard]] const AutoscalerOptions& options() const noexcept {
    return options_;
  }

 private:
  AutoscalerOptions options_;
};

}  // namespace headroom::baseline
