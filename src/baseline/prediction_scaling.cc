#include "baseline/prediction_scaling.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace headroom::baseline {

PredictionScalingPlanner::PredictionScalingPlanner(
    PredictionScalingOptions options)
    : options_(options), forecaster_(options.forecaster) {
  if (options_.trust < 0.0 || options_.trust > 1.0) {
    throw std::invalid_argument(
        "PredictionScalingPlanner: trust must be in [0, 1]");
  }
}

void PredictionScalingPlanner::start(const core::PlannerContext& context,
                                     std::size_t initial_serving) {
  context_ = context;
  forecaster_ = ml::DemandForecaster(options_.forecaster);
  current_ = initial_serving;
  idle_run_ = 0;
  // Full trust releases immediately; zero trust waits out the break-even.
  hold_windows_ = static_cast<std::size_t>(std::llround(
      (1.0 - options_.trust) *
      static_cast<double>(options_.switch_cost_windows)));
}

std::size_t PredictionScalingPlanner::plan_window(
    const core::PlannerWindow& window) {
  forecaster_.observe(window.start, window.total_rps);

  const std::size_t need_now =
      core::servers_within_slo(context_, window.total_rps,
                               options_.slo_margin_ms);
  const telemetry::SimTime horizon =
      window.start + static_cast<telemetry::SimTime>(options_.lead_windows) *
                         context_.window_seconds;
  const std::size_t need_pred = core::servers_within_slo(
      context_, forecaster_.predict(horizon), options_.slo_margin_ms);

  // Consistency side: pre-provision toward the forecast, weighted by trust.
  // Current demand is always served — the blend only ever *adds* capacity.
  const auto blended = static_cast<std::size_t>(std::ceil(
      options_.trust * static_cast<double>(need_pred) +
      (1.0 - options_.trust) * static_cast<double>(need_now)));
  const std::size_t target = std::max(need_now, blended);

  if (target > current_) {
    current_ = target;
    idle_run_ = 0;
  } else if (target < current_) {
    // Robustness side: lazy release. The idle run must survive
    // hold_windows consecutive lower-target windows before capacity goes.
    ++idle_run_;
    if (idle_run_ > hold_windows_) {
      current_ = target;
      idle_run_ = 0;
    }
  } else {
    idle_run_ = 0;
  }
  return current_;
}

}  // namespace headroom::baseline
