// Throughput-probing capacity controller (after MongoDB's execution
// control: probe the concurrency level up and down, measure, adapt).
//
// The controller holds a stable capacity, then periodically probes one
// step *down* and watches the measured latency for a settle period: if the
// smaller pool still clears the SLO with headroom, the probe is adopted
// and probing continues; if not, it reverts and backs off. A measured SLO
// violation at any point forces an immediate step up. Entirely
// measurement-driven — no forecaster and no response surface; its frontier
// position shows what pure local search buys (tight steady-state sizing)
// and what it costs (oscillation, and latency excursions on every demand
// shift, since every fact it learns costs a probe).
#pragma once

#include <cstddef>

#include "core/capacity_planner.h"

namespace headroom::baseline {

struct ThroughputProbingOptions {
  /// Windows a probe (or a fresh capacity) is measured before judging it.
  std::size_t settle_windows = 5;
  /// Capacity step per probe, as a fraction of current serving (>= 1
  /// server always).
  double probe_step_fraction = 0.10;
  /// Required gap below the latency SLO for a probe-down to be adopted —
  /// and, symmetrically, the "getting close" line that triggers a
  /// proactive step up.
  double latency_headroom_ms = 3.0;
  /// Probe pause after a failed probe-down, in settle periods (back-off so
  /// a pool at its floor is not perpetually re-probed).
  std::size_t backoff_periods = 3;
};

class ThroughputProbingPlanner final : public core::CapacityPlanner {
 public:
  explicit ThroughputProbingPlanner(ThroughputProbingOptions options = {});

  [[nodiscard]] std::string name() const override { return "probing"; }
  void start(const core::PlannerContext& context,
             std::size_t initial_serving) override;
  [[nodiscard]] std::size_t plan_window(
      const core::PlannerWindow& window) override;

 private:
  [[nodiscard]] std::size_t step_of(std::size_t serving) const;

  ThroughputProbingOptions options_;
  core::PlannerContext context_;
  enum class Phase { kHold, kProbeDown };
  Phase phase_ = Phase::kHold;
  std::size_t current_ = 0;
  std::size_t revert_to_ = 0;      ///< Pre-probe capacity.
  std::size_t windows_in_phase_ = 0;
  std::size_t cooldown_ = 0;       ///< Windows left before probing again.
  double worst_latency_ms_ = 0.0;  ///< Max observed latency this phase.
};

}  // namespace headroom::baseline
