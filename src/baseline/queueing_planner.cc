#include "baseline/queueing_planner.h"

#include <cmath>
#include <stdexcept>

#include "baseline/queueing.h"

namespace headroom::baseline {

QueueingPlanner::QueueingPlanner(QueueingPlannerOptions options)
    : options_(options) {
  if (options_.service_time_ms <= 0.0 || options_.concurrency_per_server <= 0.0) {
    throw std::invalid_argument("QueueingPlanner: bad options");
  }
}

double QueueingPlanner::predict_p95_latency_ms(double total_rps,
                                               std::size_t servers) const {
  if (servers == 0) throw std::invalid_argument("predict: no servers");
  // Treat the pool as M/M/c with c = servers * concurrency logical servers.
  const double mu = 1000.0 / options_.service_time_ms;  // per logical server
  const auto c = static_cast<std::size_t>(
      static_cast<double>(servers) * options_.concurrency_per_server);
  return mm_c_p95_sojourn_s(total_rps, mu, c) * 1000.0;
}

QueueingPlan QueueingPlanner::plan(double peak_rps,
                                   const core::LatencySlo& slo) const {
  if (peak_rps <= 0.0) throw std::invalid_argument("plan: peak must be positive");
  const double mu = 1000.0 / options_.service_time_ms;
  // Utilization floor: lambda <= max_util * c * mu.
  const double min_c =
      peak_rps / (options_.max_utilization * mu * options_.concurrency_per_server);
  auto servers = static_cast<std::size_t>(std::max(1.0, std::ceil(min_c)));

  QueueingPlan result;
  constexpr std::size_t kMaxServers = 1u << 20;
  while (servers < kMaxServers) {
    const double p95 = predict_p95_latency_ms(peak_rps, servers);
    if (p95 <= slo.p95_ms) {
      result.servers = servers;
      result.predicted_p95_latency_ms = p95;
      result.utilization =
          peak_rps / (static_cast<double>(servers) *
                      options_.concurrency_per_server * mu);
      return result;
    }
    ++servers;
  }
  throw std::runtime_error("QueueingPlanner::plan: SLO unsatisfiable");
}

}  // namespace headroom::baseline
