#include "baseline/queueing_planner.h"

#include <cmath>
#include <stdexcept>

#include "baseline/queueing.h"

namespace headroom::baseline {

QueueingPlanner::QueueingPlanner(QueueingPlannerOptions options)
    : options_(options) {
  if (options_.service_time_ms <= 0.0 || options_.concurrency_per_server <= 0.0) {
    throw std::invalid_argument("QueueingPlanner: bad options");
  }
  if (options_.max_utilization <= 0.0 || options_.max_utilization > 1.0) {
    throw std::invalid_argument(
        "QueueingPlanner: max_utilization must be in (0, 1]");
  }
}

std::size_t QueueingPlanner::effective_servers(std::size_t servers) const {
  // The M/M/c formulas need an integer c; truncation is the one lossy step,
  // so it happens here and *only* here — plan()'s utilization floor and
  // predict_p95_latency_ms() must agree on the logical server count or the
  // search can start below the real floor (returning over-utilized plans)
  // with fractional concurrency_per_server.
  return static_cast<std::size_t>(static_cast<double>(servers) *
                                  options_.concurrency_per_server);
}

double QueueingPlanner::predict_p95_latency_ms(double total_rps,
                                               std::size_t servers) const {
  if (servers == 0) throw std::invalid_argument("predict: no servers");
  // Treat the pool as M/M/c with c = servers * concurrency logical servers.
  const double mu = 1000.0 / options_.service_time_ms;  // per logical server
  return mm_c_p95_sojourn_s(total_rps, mu, effective_servers(servers)) * 1000.0;
}

QueueingPlan QueueingPlanner::plan(double peak_rps,
                                   const core::LatencySlo& slo) const {
  if (peak_rps <= 0.0) throw std::invalid_argument("plan: peak must be positive");
  const double mu = 1000.0 / options_.service_time_ms;
  // Utilization floor on *effective* (truncated) logical servers:
  // lambda <= max_util * c_eff * mu. The smallest admissible integer c_eff,
  // then the smallest physical server count whose truncated product reaches
  // it — the same c_eff computation predict_p95_latency_ms() evaluates.
  const auto min_logical = static_cast<std::size_t>(
      std::ceil(peak_rps / (options_.max_utilization * mu)));
  auto servers = static_cast<std::size_t>(std::max(
      1.0, std::ceil(static_cast<double>(min_logical) /
                     options_.concurrency_per_server)));
  while (effective_servers(servers) < min_logical) ++servers;

  QueueingPlan result;
  constexpr std::size_t kMaxServers = 1u << 20;
  while (servers < kMaxServers) {
    const double p95 = predict_p95_latency_ms(peak_rps, servers);
    if (p95 <= slo.p95_ms) {
      result.servers = servers;
      result.predicted_p95_latency_ms = p95;
      result.utilization =
          peak_rps / (static_cast<double>(effective_servers(servers)) * mu);
      return result;
    }
    ++servers;
  }
  throw std::runtime_error("QueueingPlanner::plan: SLO unsatisfiable");
}

}  // namespace headroom::baseline
