// Data-center right-sizing with switching costs (after Albers &
// Quedenfeld, and Lin et al.'s dynamic right-sizing): scale up
// immediately — demand must be served — and power a server down only after
// it has been idle for the break-even duration beta, the point where the
// accumulated idle running cost equals the cost of switching it back on.
//
// Implemented as the exact lazy form: serving(t) = max over the trailing
// beta windows of the per-window server need. Each capacity level k is
// released precisely beta windows after demand last required k — the
// ski-rental threshold rule applied per server, which is what gives the
// deterministic algorithm its 2-competitiveness against the offline
// optimum in these models.
#pragma once

#include <cstddef>
#include <deque>

#include "core/capacity_planner.h"

namespace headroom::baseline {

struct RightSizingOptions {
  /// Break-even idle time before a server is released, in windows: the
  /// switching (power-up) cost expressed in window-widths of idle running
  /// cost. 0 degenerates to purely-reactive follow-the-need.
  std::size_t switching_cost_windows = 15;
  /// Safety margin under the latency SLO when sizing.
  double slo_margin_ms = 1.0;
};

class RightSizingPlanner final : public core::CapacityPlanner {
 public:
  explicit RightSizingPlanner(RightSizingOptions options = {});

  [[nodiscard]] std::string name() const override { return "right_sizing"; }
  void start(const core::PlannerContext& context,
             std::size_t initial_serving) override;
  [[nodiscard]] std::size_t plan_window(
      const core::PlannerWindow& window) override;

 private:
  RightSizingOptions options_;
  core::PlannerContext context_;
  /// Monotone (decreasing) deque of (window index, need) for the trailing
  /// maximum over the break-even horizon.
  std::deque<std::pair<std::size_t, std::size_t>> window_max_;
  std::size_t index_ = 0;
};

}  // namespace headroom::baseline
