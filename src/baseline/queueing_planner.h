// White-box capacity planner built on the M/M/c model.
//
// Sizes a pool from first principles: measured (or assumed) service time,
// target latency SLO, peak arrival rate. Its accuracy is hostage to its
// parameters: the comparison bench shows that a stale service-time estimate
// (the system evolved) or an unmodeled cold-start effect produces a
// systematically wrong pool size, while the black-box planner just refits.
#pragma once

#include <cstddef>

#include "core/slo.h"

namespace headroom::baseline {

struct QueueingPlannerOptions {
  /// Assumed mean single-request service time (what the model *believes*;
  /// may be stale relative to the real system).
  double service_time_ms = 5.0;
  /// Servers process this many requests concurrently (cores).
  double concurrency_per_server = 16.0;
  /// Utilization ceiling the planner refuses to exceed even when the
  /// latency target would allow it.
  double max_utilization = 0.85;
};

struct QueueingPlan {
  std::size_t servers = 0;
  double predicted_p95_latency_ms = 0.0;
  double utilization = 0.0;
};

class QueueingPlanner {
 public:
  explicit QueueingPlanner(QueueingPlannerOptions options);

  /// Minimal servers such that predicted P95 sojourn <= SLO and utilization
  /// <= ceiling at `peak_rps` total workload.
  [[nodiscard]] QueueingPlan plan(double peak_rps,
                                  const core::LatencySlo& slo) const;

  /// Predicted P95 latency at the given operating point.
  [[nodiscard]] double predict_p95_latency_ms(double total_rps,
                                              std::size_t servers) const;

  /// The integer M/M/c logical-server count for a physical server count:
  /// floor(servers * concurrency_per_server). The single definition shared
  /// by plan()'s utilization floor and predict_p95_latency_ms(), so a
  /// fractional concurrency cannot make the two disagree.
  [[nodiscard]] std::size_t effective_servers(std::size_t servers) const;

 private:
  QueueingPlannerOptions options_;
};

}  // namespace headroom::baseline
