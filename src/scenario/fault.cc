#include "scenario/fault.h"

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "scenario/trace.h"
#include "telemetry/csv.h"

namespace headroom::scenario {

namespace {

using telemetry::SimTime;

[[nodiscard]] SimTime hours_to_seconds(double hours) {
  return static_cast<SimTime>(std::llround(hours * 3600.0));
}

/// splitmix64: the deterministic per-(fault, window) coin. Statelessness
/// is what makes injection order-free and thread-count invariant.
[[nodiscard]] std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

[[nodiscard]] std::uint64_t fault_coin(std::uint64_t seed, std::size_t fault,
                                       SimTime window_index) noexcept {
  return mix(mix(seed ^ (0xFA17ull + fault)) ^
             static_cast<std::uint64_t>(window_index));
}

/// The value corrupt_row plants: finite but violently implausible, so the
/// sanitizer's bounds check (not NaN handling) has to catch it.
constexpr double kCorruptValue = -1.0e6;

}  // namespace

FaultInjector::FaultInjector(const ScenarioSpec& spec)
    : seed_(spec.seed), window_(spec.window_seconds) {
  ranges_.reserve(spec.faults.size());
  for (std::size_t i = 0; i < spec.faults.size(); ++i) {
    const FaultSpec& f = spec.faults[i];
    Range r;
    r.kind = f.kind;
    r.global = f.kind == FaultKind::kFeedStall;
    r.datacenter = f.datacenter.value_or(0);
    r.pool = f.pool.value_or(0);
    // Window-aligned span: begin snaps down to the grid, end snaps up, and
    // every fault covers at least one whole window.
    const SimTime raw_begin = hours_to_seconds(f.start_hour);
    const SimTime raw_end = hours_to_seconds(f.start_hour + f.duration_hours);
    r.begin = raw_begin / window_ * window_;
    r.end = (raw_end + window_ - 1) / window_ * window_;
    if (r.end <= r.begin) r.end = r.begin + window_;
    r.skew = static_cast<SimTime>(std::llround(f.skew_seconds));
    r.index = i;
    ranges_.push_back(r);
  }
}

std::vector<DeliveredSample>& FaultInjector::slot(
    std::vector<std::pair<std::uint64_t, std::vector<DeliveredSample>>>& v,
    std::uint64_t key) {
  for (auto& [k, buf] : v) {
    if (k == key) return buf;
  }
  v.emplace_back(key, std::vector<DeliveredSample>{});
  return v.back().second;
}

void FaultInjector::deliver(std::uint32_t datacenter, std::uint32_t pool,
                            SimTime t, std::vector<DeliveredSample>* samples) {
  const std::uint64_t pool_key = std::uint64_t{datacenter} * 64 + pool;

  // Value- and time-level transforms first (they shape *this* window),
  // then the reorder swap, then the stall freeze — a stalled feed buffers
  // whatever the upstream faults already did to the window.
  bool stalled = false;
  bool swap_here = false;
  for (const Range& r : ranges_) {
    if (!applies(r, datacenter, pool, t)) continue;
    switch (r.kind) {
      case FaultKind::kTelemetryGap:
        samples->clear();
        break;
      case FaultKind::kNanBurst:
        for (DeliveredSample& s : *samples) {
          s.value = std::numeric_limits<double>::quiet_NaN();
        }
        break;
      case FaultKind::kCorruptRow:
        if (!samples->empty()) {
          const std::uint64_t coin = fault_coin(seed_, r.index, t / window_);
          (*samples)[coin % samples->size()].value = kCorruptValue;
        }
        break;
      case FaultKind::kClockSkew:
        for (DeliveredSample& s : *samples) s.time += r.skew;
        break;
      case FaultKind::kDuplicateWindow: {
        const std::size_t n = samples->size();
        samples->reserve(n * 2);
        for (std::size_t i = 0; i < n; ++i) {
          samples->push_back((*samples)[i]);
        }
        break;
      }
      case FaultKind::kOutOfOrderWindow:
        swap_here = true;
        break;
      case FaultKind::kFeedStall:
        stalled = true;
        break;
    }
  }

  if (swap_here) {
    std::vector<DeliveredSample>& held = slot(swap_, pool_key);
    if (held.empty()) {
      // First window of a swap pair: hold it back...
      held = std::move(*samples);
      samples->clear();
    } else {
      // ...and release it *behind* the next one.
      samples->insert(samples->end(), held.begin(), held.end());
      held.clear();
    }
  } else {
    // Fault range ended with an odd window still held: release it in
    // front, where it lands in order (no damage observable downstream).
    std::vector<DeliveredSample>& held = slot(swap_, pool_key);
    if (!held.empty()) {
      held.insert(held.end(), samples->begin(), samples->end());
      *samples = std::move(held);
      held.clear();
    }
  }

  std::vector<DeliveredSample>& frozen = slot(held_, pool_key);
  if (stalled) {
    frozen.insert(frozen.end(), samples->begin(), samples->end());
    samples->clear();
  } else if (!frozen.empty()) {
    // Stall over: the writer catches up, delivering every frozen window
    // (real data, correct timestamps, in order) ahead of the current one.
    frozen.insert(frozen.end(), samples->begin(), samples->end());
    *samples = std::move(frozen);
    frozen.clear();
  }
}

std::size_t corrupt_trace_csvs(const std::string& dir,
                               const ScenarioSpec& spec) {
  TraceFeedInfo feed;
  const std::string problem = load_trace_feed(dir, &feed);
  if (!problem.empty()) {
    throw std::runtime_error("corrupt_trace_csvs: " + problem);
  }
  const SimTime window = spec.window_seconds;
  std::size_t changed = 0;

  for (const TracePoolFeed& pool : feed.pools) {
    // Collect this pool's applicable row-level faults.
    std::vector<FaultSpec> faults;
    for (const FaultSpec& f : spec.faults) {
      if (f.kind == FaultKind::kFeedStall) continue;
      if (f.datacenter.value_or(0) == pool.datacenter &&
          f.pool.value_or(0) == pool.pool) {
        faults.push_back(f);
      }
    }
    if (faults.empty()) continue;

    std::ifstream in(pool.path, std::ios::binary);
    if (!in) {
      throw std::runtime_error("corrupt_trace_csvs: cannot open " + pool.path);
    }
    std::vector<std::string> out_lines;
    std::string line;
    bool header = true;
    std::string held_row;  // out_of_order swap slot.
    while (telemetry::read_csv_line(in, &line)) {
      if (header) {
        out_lines.push_back(line);
        header = false;
        continue;
      }
      if (line.empty()) continue;
      std::int64_t start = 0;
      const std::size_t comma = line.find(',');
      if (!telemetry::parse_int64(line.substr(0, comma), &start)) {
        out_lines.push_back(line);
        continue;
      }
      bool dropped = false;
      bool swap_row = false;
      for (const FaultSpec& f : faults) {
        const SimTime begin =
            hours_to_seconds(f.start_hour) / window * window;
        SimTime end = (hours_to_seconds(f.start_hour + f.duration_hours) +
                       window - 1) /
                      window * window;
        if (end <= begin) end = begin + window;
        if (start < begin || start >= end) continue;
        ++changed;
        switch (f.kind) {
          case FaultKind::kTelemetryGap:
            dropped = true;
            break;
          case FaultKind::kNanBurst: {
            std::string poisoned = line.substr(0, comma);
            for (std::size_t i = 1;
                 i < telemetry::split_csv_fields(line).size(); ++i) {
              poisoned += ",nan";
            }
            line = poisoned;
            break;
          }
          case FaultKind::kDuplicateWindow:
            out_lines.push_back(line);
            break;
          case FaultKind::kCorruptRow:
            line = "<<corrupt telemetry row " + std::to_string(start) + ">>";
            break;
          case FaultKind::kClockSkew:
            line = std::to_string(
                       start + static_cast<SimTime>(
                                   std::llround(f.skew_seconds))) +
                   line.substr(comma);
            break;
          case FaultKind::kOutOfOrderWindow:
            swap_row = true;
            break;
          case FaultKind::kFeedStall:
            break;
        }
        if (dropped) break;
      }
      if (dropped) continue;
      if (swap_row) {
        if (held_row.empty()) {
          held_row = line;
        } else {
          out_lines.push_back(line);
          out_lines.push_back(held_row);
          held_row.clear();
        }
        continue;
      }
      if (!held_row.empty()) {
        out_lines.push_back(held_row);
        held_row.clear();
      }
      out_lines.push_back(line);
    }
    if (!held_row.empty()) out_lines.push_back(held_row);
    in.close();

    std::ofstream out(pool.path, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("corrupt_trace_csvs: cannot rewrite " +
                               pool.path);
    }
    for (const std::string& l : out_lines) out << l << '\n';
  }
  return changed;
}

}  // namespace headroom::scenario
