// The optimizer bake-off: every capacity planner against every scenario,
// on bit-identical inputs.
//
// For one scenario the harness (1) steps the simulator through the spec's
// observation phase exactly as `headroom run` does (same fleet build, same
// event timeline, same serving reductions), (2) reads the resulting
// telemetry back window-by-window through a sealed core::LiveFeedBackend —
// the same observation grid and observations_between() definition the RSM
// session consumes, so every planner sees the very bytes the paper's
// planner would — (3) fits the black-box response surface from the same
// scatters the Optimize step fits, (4) runs the RSM planner itself against
// a ModelExperimentBackend over that surface and demand stream, and
// (5) replays the full roster (RSM-static + the five baselines) over the
// identical window grid, scoring each serving path counterfactually on the
// shared surface.
//
// The output frontier — server-seconds (cost) vs violation-seconds (SLO
// debt) vs switching churn per planner — is machine-readable, byte-stable
// across thread counts, and golden-pinned per scenario.
#pragma once

#include <string>
#include <vector>

#include "core/capacity_planner.h"
#include "core/rsm_planner.h"
#include "scenario/scenario_spec.h"

namespace headroom::scenario {

struct BakeoffResult {
  ScenarioSpec spec;
  std::size_t windows = 0;          ///< Observation windows replayed.
  double latency_slo_ms = 0.0;
  std::size_t pool_size = 0;
  std::size_t initial_serving = 0;  ///< Serving in the grid's first window.
  core::RsmResult rsm;              ///< The RSM run behind the rsm entrant.
  std::vector<core::PlannerScore> scores;  ///< rsm first, then the roster.

  /// Resolved stepping lanes; NOT part of the frontier (thread-invariance).
  std::size_t thread_count = 1;
};

/// Runs the bake-off for one scenario spec. Throws std::invalid_argument
/// for invalid specs and for specs with a quiescent dead band (approximate
/// stepping is not golden-pinnable; the runner CLI skips those).
[[nodiscard]] BakeoffResult run_bakeoff(const ScenarioSpec& spec);

/// Machine-readable per-scenario frontier: header lines, then one
/// `frontier <planner> ...` line per entrant in roster order.
/// Byte-identical for any thread count.
[[nodiscard]] std::string format_frontier(const BakeoffResult& result);

}  // namespace headroom::scenario
