// Capacity planning harness: what-if sweeps over forecasts ("headroom
// plan").
//
// For one scenario the harness steps the observation phase exactly as
// `headroom run` does (same fleet build, same event timeline, same serving
// reductions), then — with the simulator out of the loop — forecasts every
// pool's exhaustion date through core::CapacityForecaster reading the
// stepped telemetry via query::QueryEngine, once per what-if case in the
// sweep
//
//   growth multipliers x failover policies x the DC-outage timeline.
//
// An outage case asks "if DC f went dark for good, how do the survivors'
// exhaustion dates move?": the failed DC's demand is redistributed by the
// case's failover policy (the very sim/failover.h implementations the
// simulator steps with, reused via their share matrices), each survivor's
// forecast is stressed by the resulting multiplier, and the failed DC's
// own pools drop out of that case. Trace mode (`headroom plan --trace`)
// replays the same forecasts from a recorded trace directory instead of
// stepping a simulator.
//
// Everything downstream of the (thread-invariant) telemetry store is
// serial deterministic arithmetic, so plan reports are byte-identical for
// any thread count and golden-pinnable.
#pragma once

#include <string>
#include <vector>

#include "core/capacity_forecast.h"
#include "scenario/scenario_spec.h"

namespace headroom::scenario {

struct PlanOptions {
  /// Forecast horizon past the end of the observed history.
  telemetry::SimTime horizon_seconds = 90 * 86400;
  /// Growth multipliers swept (sorted, deduplicated by the harness).
  std::vector<double> growths = {1.0, 1.5, 2.0};
  /// Failover policies swept. Empty = all three.
  std::vector<sim::FailoverPolicyKind> policies;
};

/// One per-DC stress factor of an outage case: surviving DC `datacenter`'s
/// demand is `multiplier` x its baseline under the case's policy.
struct PlanStress {
  std::uint32_t datacenter = 0;
  double multiplier = 1.0;
};

/// One what-if case: a (growth, policy, outage) cell of the sweep with its
/// per-pool forecasts (failed DC's pools omitted).
struct PlanCase {
  double growth = 1.0;
  sim::FailoverPolicyKind policy = sim::FailoverPolicyKind::kNearestSurvivor;
  bool has_outage = false;
  std::uint32_t outage_datacenter = 0;
  std::vector<PlanStress> stresses;  ///< Survivors with multiplier != 1.
  std::vector<core::PoolCapacityForecast> pools;
};

struct PlanResult {
  ScenarioSpec spec;
  PlanOptions options;
  std::string source;               ///< "scenario" or "trace".
  std::size_t windows = 0;          ///< History windows per pool (grid).
  telemetry::SimTime history_end = 0;
  std::size_t datacenters = 0;
  std::size_t total_pools = 0;
  std::vector<std::uint32_t> outage_datacenters;  ///< From the timeline.
  std::vector<PlanCase> cases;

  /// Resolved stepping lanes; NOT part of the report (thread-invariance).
  std::size_t thread_count = 1;
};

/// Runs the plan for one scenario spec, stepping its observation phase.
/// Throws std::invalid_argument for invalid specs and for specs with a
/// quiescent dead band (approximate stepping is not golden-pinnable; the
/// CLI skips those).
[[nodiscard]] PlanResult run_plan(const ScenarioSpec& spec,
                                  const PlanOptions& options = {});

/// Runs the plan from a recorded trace directory (no simulator). Returns
/// a result with `error` semantics via exceptions for spec problems;
/// malformed trace directories throw std::runtime_error carrying the
/// file-level diagnostic.
[[nodiscard]] PlanResult run_plan_on_trace(const std::string& dir,
                                           const PlanOptions& options = {});

/// Machine-readable planning report: header lines, then per case a `case`
/// line, its `stress` lines, and its per-pool forecast lines.
/// Byte-identical for any thread count.
[[nodiscard]] std::string format_plan(const PlanResult& result);

}  // namespace headroom::scenario
