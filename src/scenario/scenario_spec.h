// Declarative scenario specification.
//
// A scenario bundles everything one `headroom run` needs: the fleet
// topology (single pool, replicated multi-DC, or the full standard fleet),
// an event timeline (DC outages, flash-crowd traffic multipliers,
// maintenance waves, mid-run serving reductions), pipeline knobs (days,
// seed, threads, which methodology steps to run), and expected-outcome
// assertions checked against the run's summary metrics. Specs are built by
// the parser (scenario_parser.h) from a small self-contained text format,
// or programmatically (the CLI's legacy flag mode builds one from flags).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/topology.h"
#include "telemetry/time_series.h"

namespace headroom::scenario {

/// Fleet topology families, mapping onto the sim/topology.h presets.
enum class FleetKind : std::uint8_t {
  kSinglePool,  ///< One DC, one pool (single_pool_fleet).
  kMultiDc,     ///< One service replicated across N DCs (multi_dc_pool_fleet).
  kStandard,    ///< The full nine-region standard_fleet.
};

/// The four methodology steps; a scenario may run any subset (later steps
/// never depend on skipped earlier ones at the code level).
enum class PipelineStep : std::uint8_t {
  kMeasure = 0,
  kOptimize = 1,
  kModel = 2,
  kValidate = 3,
};

inline constexpr std::uint8_t step_bit(PipelineStep s) noexcept {
  return static_cast<std::uint8_t>(1u << static_cast<std::uint8_t>(s));
}
inline constexpr std::uint8_t kAllSteps =
    step_bit(PipelineStep::kMeasure) | step_bit(PipelineStep::kOptimize) |
    step_bit(PipelineStep::kModel) | step_bit(PipelineStep::kValidate);

/// Timeline event classes. The first two install into the simulator's
/// workload::EventSchedule; maintenance waves become PoolIncidents on the
/// targeted pools; serving reductions are applied mid-run by the runner
/// (the paper's §II-B2 production reduction experiments).
enum class ScenarioEventKind : std::uint8_t {
  kTrafficMultiplier,
  kDatacenterOutage,
  kMaintenanceWave,
  kServingReduction,
};

struct ScenarioEvent {
  ScenarioEventKind kind = ScenarioEventKind::kTrafficMultiplier;
  /// Target datacenter, or nullopt for all (traffic/maintenance only).
  std::optional<std::uint32_t> datacenter;
  /// Target pool within the DC (maintenance_wave / serving_reduction);
  /// nullopt = every pool of the targeted DC(s).
  std::optional<std::uint32_t> pool;
  double start_hour = 0.0;      ///< Hours from simulation start.
  double duration_hours = 0.0;  ///< Ignored for serving reductions.
  double multiplier = 1.0;      ///< kTrafficMultiplier only.
  double offline_fraction = 0.0;  ///< kMaintenanceWave only.
  std::size_t serving = 0;        ///< kServingReduction target count.

  [[nodiscard]] bool operator==(const ScenarioEvent&) const = default;
};

/// Optional per-datacenter topology tweaks (demand weight, timezone).
struct DatacenterOverride {
  std::uint32_t datacenter = 0;
  std::optional<double> demand_weight;
  std::optional<double> timezone_offset_hours;

  [[nodiscard]] bool operator==(const DatacenterOverride&) const = default;
};

/// Optional per-pool tweaks: heterogeneous utilization knobs and sizes.
struct PoolOverride {
  std::uint32_t datacenter = 0;
  std::uint32_t pool = 0;
  std::optional<std::size_t> servers;
  std::optional<double> demand_multiplier;
  std::optional<double> burst_multiplier;
  std::optional<double> burst_start_hour;
  std::optional<double> burst_hours;

  [[nodiscard]] bool operator==(const PoolOverride&) const = default;
};

/// Telemetry fault classes injected between the simulator (or trace
/// writer) and the planning pipeline. Faults are window-aligned and
/// deterministic in (seed, fault index, window index), so injection is
/// thread-count invariant; they never touch the simulator's ground truth.
enum class FaultKind : std::uint8_t {
  kTelemetryGap,      ///< Windows silently dropped before delivery.
  kNanBurst,          ///< Delivered values replaced with quiet NaNs.
  kDuplicateWindow,   ///< Each window delivered twice (same timestamp).
  kOutOfOrderWindow,  ///< Adjacent windows delivered swapped.
  kCorruptRow,        ///< One metric per window replaced with garbage.
  kFeedStall,         ///< Whole feed frozen; real data delivered late.
  kClockSkew,         ///< Timestamps shifted off the window grid.
};

[[nodiscard]] std::string_view to_string(FaultKind kind) noexcept;
[[nodiscard]] std::optional<FaultKind> fault_kind_from_string(
    std::string_view name) noexcept;

/// One `[fault]` section. `datacenter`/`pool` default to (0,0) when absent
/// and are rejected for feed_stall (a stall freezes every pool's feed).
struct FaultSpec {
  FaultKind kind = FaultKind::kTelemetryGap;
  std::optional<std::uint32_t> datacenter;
  std::optional<std::uint32_t> pool;
  double start_hour = 0.0;
  double duration_hours = 0.0;
  double skew_seconds = 0.0;  ///< kClockSkew only.

  [[nodiscard]] bool operator==(const FaultSpec&) const = default;
};

enum class AssertOp : std::uint8_t { kGe, kLe, kGt, kLt, kEq, kNe };

[[nodiscard]] std::string_view to_string(AssertOp op) noexcept;

/// One expected-outcome check: `metric op value` against the run summary
/// (e.g. "rsm_reduction_pct >= 20"). Metric names are validated at parse
/// time against scenario::known_metrics().
struct ScenarioAssertion {
  std::string metric;
  AssertOp op = AssertOp::kGe;
  double value = 0.0;

  [[nodiscard]] bool operator==(const ScenarioAssertion&) const = default;
  [[nodiscard]] bool holds(double observed) const noexcept;
};

struct ScenarioSpec {
  // --- [scenario] ---------------------------------------------------------
  std::string name;
  std::string description;
  std::uint64_t seed = 5;
  std::int64_t days = 2;              ///< Observation days before optimizing.
  std::size_t threads = 1;            ///< 0 = hardware concurrency.
  telemetry::SimTime window_seconds = 120;
  std::uint8_t steps = kAllSteps;     ///< OR of step_bit().
  /// Quiescent-pool dead band (FleetConfig::quiescent_dead_band): 0 = the
  /// exact simulator goldens pin; ~0.02 for million-server scenarios.
  double quiescent_dead_band = 0.0;
  /// FleetConfig::per_server_accounting: ledger + per-server-day digests.
  bool per_server_accounting = true;
  /// Outage redistribution policy (sim/failover.h). The default is the
  /// original nearest-survivor behaviour every golden pins.
  sim::FailoverPolicyKind failover = sim::FailoverPolicyKind::kNearestSurvivor;

  // --- [fleet] ------------------------------------------------------------
  FleetKind fleet = FleetKind::kSinglePool;
  std::string service = "D";          ///< single_pool / multi_dc.
  std::size_t servers = 64;           ///< Servers per pool.
  std::size_t datacenters = 1;        ///< multi_dc replica count.
  std::vector<std::string> services;  ///< standard fleet service list.
  double regional_peak_rps = 20000.0; ///< standard fleet demand scale.
  bool heterogeneous = false;         ///< standard fleet hot/cool mix.

  // --- Overrides / timeline / expectations --------------------------------
  std::vector<DatacenterOverride> datacenter_overrides;
  std::vector<PoolOverride> pool_overrides;
  std::vector<ScenarioEvent> events;
  std::vector<FaultSpec> faults;
  std::vector<ScenarioAssertion> assertions;

  [[nodiscard]] bool operator==(const ScenarioSpec&) const = default;
  [[nodiscard]] bool runs(PipelineStep step) const noexcept {
    return (steps & step_bit(step)) != 0;
  }
};

/// The assertion metric vocabulary the runner produces. Sorted.
[[nodiscard]] const std::vector<std::string>& known_metrics();

/// Per-pool assertion targets: `pool(DC,POOL).base` resolves a base metric
/// over one pool's observation-phase series instead of the default summary
/// scope (which covers pool (0,0)).
struct PoolMetricRef {
  std::uint32_t datacenter = 0;
  std::uint32_t pool = 0;
  std::string base;
};

/// Parses `pool(DC,POOL).base`. Returns nullopt when `name` does not use
/// the pool() syntax at all; sets `*error` (and returns nullopt) when it
/// does but is malformed. The base metric is NOT vocabulary-checked here —
/// validate() does that against known_pool_metrics().
[[nodiscard]] std::optional<PoolMetricRef> parse_pool_metric(
    std::string_view name, std::string* error);

/// The per-pool base metric vocabulary (peak/mean of the observation
/// series plus active-server extremes). Sorted.
[[nodiscard]] const std::vector<std::string>& known_pool_metrics();

/// Structural validation beyond per-key parsing: cross-field consistency,
/// overlapping outages / serving reductions, assertion metric names, step
/// availability for asserted metrics. Returns "" when valid, otherwise a
/// one-line description of the first problem found.
[[nodiscard]] std::string validate(const ScenarioSpec& spec);

}  // namespace headroom::scenario
