#include "scenario/trace.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <span>
#include <sstream>
#include <string_view>

#include "scenario/scenario_parser.h"
#include "telemetry/csv.h"

namespace headroom::scenario {

namespace {

namespace fs = std::filesystem;

constexpr int kTraceFormatVersion = 1;
constexpr telemetry::SimTime kDay = 86400;
constexpr std::string_view kManifestName = "manifest.ini";
constexpr std::string_view kScenarioName = "scenario.scn";
constexpr std::string_view kServerDayName = "server_day_cpu.csv";
constexpr std::string_view kSummaryName = "summary.txt";
constexpr std::string_view kServerDayHeader =
    "datacenter,pool,server,day,p5,p25,p50,p75,p95,mean,min,max,count";

/// Every metric kind, enum order — write_pool_csv skips absent ones.
[[nodiscard]] std::vector<telemetry::MetricKind> all_metric_kinds() {
  std::vector<telemetry::MetricKind> kinds;
  kinds.reserve(telemetry::kMetricKindCount);
  for (std::size_t i = 0; i < telemetry::kMetricKindCount; ++i) {
    kinds.push_back(static_cast<telemetry::MetricKind>(i));
  }
  return kinds;
}

[[nodiscard]] std::string pool_file_name(std::uint32_t dc, std::uint32_t pool) {
  return "pool_" + std::to_string(dc) + "_" + std::to_string(pool) + ".csv";
}

[[nodiscard]] bool parse_u32(const std::string& text, std::uint32_t* out) {
  if (text.empty() || text[0] == '-' || text[0] == '+') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE ||
      v > 0xFFFFFFFFull) {
    return false;
  }
  *out = static_cast<std::uint32_t>(v);
  return true;
}

[[nodiscard]] std::string_view trim(std::string_view s) noexcept {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

// --- Export ----------------------------------------------------------------

[[nodiscard]] std::string write_text_file(const fs::path& path,
                                          const std::string& contents) {
  std::ofstream out(path, std::ios::binary);
  out << contents;
  if (!out.good()) return "cannot write " + path.string();
  return "";
}

[[nodiscard]] std::string serialize_server_days(
    std::span<const sim::ServerDayCpu> rows) {
  std::string out{kServerDayHeader};
  out += "\n";
  for (const sim::ServerDayCpu& row : rows) {
    // Sequential appends: GCC 12's -Wrestrict mis-fires on
    // `"literal" + std::to_string(...)` chains here.
    out += std::to_string(row.datacenter);
    out += ',';
    out += std::to_string(row.pool);
    out += ',';
    out += std::to_string(row.server);
    out += ',';
    out += std::to_string(row.day);
    const telemetry::PercentileSnapshot& s = row.cpu;
    for (const double v : {s.p5, s.p25, s.p50, s.p75, s.p95, s.mean, s.min,
                           s.max}) {
      out += ',';
      out += telemetry::format_double(v);
    }
    out += ',';
    out += std::to_string(s.count);
    out += '\n';
  }
  return out;
}

// --- Replay: manifest ------------------------------------------------------

struct PoolEntry {
  std::uint32_t datacenter = 0;
  std::uint32_t pool = 0;
  std::string file;
};

struct Manifest {
  std::string scenario_file;
  std::string server_day_file;
  telemetry::SimTime window_seconds = 0;
  telemetry::SimTime horizon_seconds = 0;
  std::vector<PoolEntry> pools;
};

/// Parses manifest.ini; returns "" or a `source:line: message` diagnostic.
[[nodiscard]] std::string parse_manifest(std::istream& in,
                                         const std::string& source,
                                         Manifest* manifest) {
  const auto fail = [&source](std::size_t line, const std::string& message) {
    return source + ":" + std::to_string(line) + ": " + message;
  };
  bool seen_version = false;
  std::string line;
  std::size_t line_no = 0;
  while (telemetry::read_csv_line(in, &line)) {
    ++line_no;
    const std::string_view trimmed = trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const std::size_t eq = trimmed.find('=');
    if (eq == std::string_view::npos) {
      return fail(line_no, "expected 'key = value', got '" +
                               std::string(trimmed) + "'");
    }
    const std::string key{trim(trimmed.substr(0, eq))};
    const std::string value{trim(trimmed.substr(eq + 1))};
    if (key == "version") {
      std::int64_t v = 0;
      if (!telemetry::parse_int64(value, &v) || v != kTraceFormatVersion) {
        return fail(line_no, "unsupported trace format version '" + value +
                                 "' (this build reads version " +
                                 std::to_string(kTraceFormatVersion) + ")");
      }
      seen_version = true;
    } else if (key == "scenario") {
      manifest->scenario_file = value;
    } else if (key == "server_day_cpu") {
      manifest->server_day_file = value;
    } else if (key == "summary") {
      // Informational: the recording's summary; not needed for replay.
    } else if (key == "window_seconds") {
      std::int64_t v = 0;
      if (!telemetry::parse_int64(value, &v) || v <= 0) {
        return fail(line_no, "bad window_seconds '" + value + "'");
      }
      manifest->window_seconds = v;
    } else if (key == "horizon_seconds") {
      std::int64_t v = 0;
      if (!telemetry::parse_int64(value, &v) || v <= 0) {
        return fail(line_no, "bad horizon_seconds '" + value + "'");
      }
      manifest->horizon_seconds = v;
    } else if (key == "pool") {
      const std::vector<std::string> words =
          telemetry::split_csv_fields(value, ' ');
      PoolEntry entry;
      if (words.size() != 3 || !parse_u32(words[0], &entry.datacenter) ||
          !parse_u32(words[1], &entry.pool) || words[2].empty()) {
        return fail(line_no,
                    "bad pool entry '" + value + "' (expected 'DC POOL FILE')");
      }
      entry.file = words[2];
      manifest->pools.push_back(entry);
    } else {
      return fail(line_no, "unknown manifest key '" + key + "'");
    }
  }
  if (!seen_version) return source + ": missing 'version' key";
  if (manifest->scenario_file.empty()) {
    return source + ": missing 'scenario' key";
  }
  if (manifest->server_day_file.empty()) {
    return source + ": missing 'server_day_cpu' key";
  }
  if (manifest->window_seconds <= 0) {
    return source + ": missing 'window_seconds' key";
  }
  if (manifest->horizon_seconds <= 0) {
    return source + ": missing 'horizon_seconds' key";
  }
  if (manifest->pools.empty()) {
    return source + ": no 'pool' entries";
  }
  return "";
}

/// Parses server_day_cpu.csv; returns "" or a diagnostic.
[[nodiscard]] std::string parse_server_days(
    std::istream& in, const std::string& source,
    std::vector<sim::ServerDayCpu>* rows) {
  const auto fail = [&source](std::size_t line, const std::string& message) {
    return source + ":" + std::to_string(line) + ": " + message;
  };
  std::string line;
  std::size_t line_no = 1;
  if (!telemetry::read_csv_line(in, &line) || line != kServerDayHeader) {
    return fail(line_no, "bad header (expected '" +
                             std::string(kServerDayHeader) + "')");
  }
  while (telemetry::read_csv_line(in, &line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::vector<std::string> fields = telemetry::split_csv_fields(line, ',');
    if (fields.size() != 13) {
      return fail(line_no, "expected 13 fields, got " +
                               std::to_string(fields.size()));
    }
    sim::ServerDayCpu row;
    std::int64_t count = 0;
    if (!parse_u32(fields[0], &row.datacenter) ||
        !parse_u32(fields[1], &row.pool) ||
        !parse_u32(fields[2], &row.server) ||
        !telemetry::parse_int64(fields[3], &row.day)) {
      return fail(line_no, "bad row key '" + line + "'");
    }
    double* const snapshot_fields[] = {&row.cpu.p5,  &row.cpu.p25,
                                       &row.cpu.p50, &row.cpu.p75,
                                       &row.cpu.p95, &row.cpu.mean,
                                       &row.cpu.min, &row.cpu.max};
    for (std::size_t i = 0; i < 8; ++i) {
      if (!telemetry::parse_finite_double(fields[4 + i], snapshot_fields[i])) {
        return fail(line_no, "bad value '" + fields[4 + i] + "'");
      }
    }
    if (!telemetry::parse_int64(fields[12], &count) || count < 0) {
      return fail(line_no, "bad count '" + fields[12] + "'");
    }
    row.cpu.count = static_cast<std::size_t>(count);
    rows->push_back(row);
  }
  return "";
}

}  // namespace

TraceExportResult export_trace(const ScenarioSpec& spec,
                               const std::string& dir,
                               ScenarioRunResult* result) {
  TraceExportResult out;

  // Fail on an unwritable destination before paying for the simulation.
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    out.error = "cannot create trace directory '" + dir + "': " + ec.message();
    return out;
  }
  const fs::path root{dir};

  const sim::MicroserviceCatalog catalog;
  sim::FleetConfig config = ScenarioRunner::build_fleet(spec, catalog);
  sim::FleetSimulator fleet(std::move(config), catalog);
  ScenarioRunResult run = ScenarioRunner().run_on_fleet(spec, fleet, catalog);

  const auto write_file = [&](std::string_view name,
                              const std::string& contents) {
    const fs::path path = root / name;
    const std::string problem = write_text_file(path, contents);
    if (!problem.empty()) {
      out.error = problem;
      return false;
    }
    out.files.push_back(path.string());
    return true;
  };

  if (!write_file(kScenarioName, serialize_scenario(spec))) return out;

  std::string manifest;
  manifest += "# headroom trace manifest — see scenario/trace.h\n";
  manifest += "version = " + std::to_string(kTraceFormatVersion) + "\n";
  manifest += "scenario = " + std::string(kScenarioName) + "\n";
  manifest +=
      "window_seconds = " + std::to_string(spec.window_seconds) + "\n";
  manifest +=
      "horizon_seconds = " + std::to_string(spec.days * kDay) + "\n";
  manifest += "server_day_cpu = " + std::string(kServerDayName) + "\n";
  manifest += "summary = " + std::string(kSummaryName) + "\n";

  const std::vector<telemetry::MetricKind> kinds = all_metric_kinds();
  const sim::FleetConfig& built = fleet.config();
  for (std::uint32_t d = 0; d < built.datacenters.size(); ++d) {
    for (std::uint32_t p = 0; p < built.datacenters[d].pools.size(); ++p) {
      std::ostringstream csv;
      if (telemetry::write_pool_csv(csv, fleet.store(), d, p, kinds) == 0) {
        continue;  // pool recorded nothing (dark the whole run)
      }
      const std::string name = pool_file_name(d, p);
      if (!write_file(name, csv.str())) return out;
      manifest += "pool = " + std::to_string(d) + " " + std::to_string(p) +
                  " " + name + "\n";
    }
  }

  if (!write_file(kServerDayName,
                  serialize_server_days(fleet.server_day_cpu()))) {
    return out;
  }
  if (!write_file(kSummaryName, format_summary(run))) return out;
  if (!write_file(kManifestName, manifest)) return out;

  if (result != nullptr) *result = std::move(run);
  return out;
}

std::string load_trace_feed(const std::string& dir, TraceFeedInfo* out) {
  const fs::path root{dir};

  const fs::path manifest_path = root / kManifestName;
  std::ifstream manifest_in(manifest_path, std::ios::binary);
  if (!manifest_in) {
    return manifest_path.string() + ": cannot open trace manifest";
  }
  Manifest manifest;
  std::string problem =
      parse_manifest(manifest_in, manifest_path.string(), &manifest);
  if (!problem.empty()) return problem;

  const fs::path scenario_path = root / manifest.scenario_file;
  ParseResult parsed = load_scenario_file(scenario_path.string());
  if (!parsed.ok()) return parsed.error;
  if (parsed.spec.window_seconds != manifest.window_seconds) {
    return manifest_path.string() +
           ": window_seconds disagrees with the scenario (" +
           std::to_string(manifest.window_seconds) + " vs " +
           std::to_string(parsed.spec.window_seconds) + ")";
  }
  if (parsed.spec.days * kDay != manifest.horizon_seconds) {
    return manifest_path.string() +
           ": horizon_seconds disagrees with the scenario's days (" +
           std::to_string(manifest.horizon_seconds) + " vs " +
           std::to_string(parsed.spec.days * kDay) + ")";
  }

  bool has_target_pool = false;
  std::vector<TracePoolFeed> pools;
  for (const PoolEntry& entry : manifest.pools) {
    TracePoolFeed feed;
    feed.datacenter = entry.datacenter;
    feed.pool = entry.pool;
    feed.path = (root / entry.file).string();
    pools.push_back(std::move(feed));
    has_target_pool =
        has_target_pool || (entry.datacenter == 0 && entry.pool == 0);
  }
  if (!has_target_pool) {
    return manifest_path.string() +
           ": trace has no pool (0, 0) — the pipeline's target pool";
  }

  std::vector<sim::ServerDayCpu> server_days;
  const fs::path days_path = root / manifest.server_day_file;
  std::ifstream days_in(days_path, std::ios::binary);
  if (!days_in) {
    return days_path.string() + ": cannot open server-day trace";
  }
  problem = parse_server_days(days_in, days_path.string(), &server_days);
  if (!problem.empty()) return problem;

  out->spec = std::move(parsed.spec);
  out->server_days = std::move(server_days);
  out->pools = std::move(pools);
  return "";
}

TraceReplayResult replay_trace(const std::string& dir) {
  TraceReplayResult out;
  const fs::path root{dir};

  const fs::path manifest_path = root / kManifestName;
  std::ifstream manifest_in(manifest_path, std::ios::binary);
  if (!manifest_in) {
    out.error = manifest_path.string() + ": cannot open trace manifest";
    return out;
  }
  Manifest manifest;
  out.error = parse_manifest(manifest_in, manifest_path.string(), &manifest);
  if (!out.ok()) return out;

  const fs::path scenario_path = root / manifest.scenario_file;
  ParseResult parsed = load_scenario_file(scenario_path.string());
  if (!parsed.ok()) {
    out.error = parsed.error;
    return out;
  }
  const ScenarioSpec& spec = parsed.spec;
  if (spec.window_seconds != manifest.window_seconds) {
    out.error = manifest_path.string() +
                ": window_seconds disagrees with the scenario (" +
                std::to_string(manifest.window_seconds) + " vs " +
                std::to_string(spec.window_seconds) + ")";
    return out;
  }
  if (spec.days * kDay != manifest.horizon_seconds) {
    out.error = manifest_path.string() +
                ": horizon_seconds disagrees with the scenario's days (" +
                std::to_string(manifest.horizon_seconds) + " vs " +
                std::to_string(spec.days * kDay) + ")";
    return out;
  }

  telemetry::MetricStore trace;
  bool has_target_pool = false;
  for (const PoolEntry& entry : manifest.pools) {
    const fs::path pool_path = root / entry.file;
    std::ifstream pool_in(pool_path, std::ios::binary);
    if (!pool_in) {
      out.error = pool_path.string() + ": cannot open pool trace";
      return out;
    }
    const telemetry::CsvReadResult read = telemetry::read_pool_csv(
        pool_in, pool_path.string(), &trace, entry.datacenter, entry.pool);
    if (!read.ok()) {
      out.error = read.error;
      return out;
    }
    has_target_pool =
        has_target_pool || (entry.datacenter == 0 && entry.pool == 0);
  }
  if (!has_target_pool) {
    out.error = manifest_path.string() +
                ": trace has no pool (0, 0) — the pipeline's target pool";
    return out;
  }

  ReplayInputs inputs;
  inputs.trace = &trace;
  const fs::path days_path = root / manifest.server_day_file;
  std::ifstream days_in(days_path, std::ios::binary);
  if (!days_in) {
    out.error = days_path.string() + ": cannot open server-day trace";
    return out;
  }
  out.error =
      parse_server_days(days_in, days_path.string(), &inputs.server_days);
  if (!out.ok()) return out;

  out.result = ScenarioRunner().replay(spec, inputs);
  return out;
}

}  // namespace headroom::scenario
