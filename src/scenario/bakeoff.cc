#include "scenario/bakeoff.h"

#include <cmath>
#include <stdexcept>

#include "baseline/planner_roster.h"
#include "core/live_feed_backend.h"
#include "core/pool_model.h"
#include "scenario/pipeline_session.h"
#include "scenario/scenario_runner.h"
#include "telemetry/csv.h"
#include "telemetry/metrics.h"

namespace headroom::scenario {

namespace {

using telemetry::MetricKind;

/// Pulls the observation phase back out of the stepped fleet's store as a
/// per-window planner grid, through the same sealed-feed path the RSM
/// session reads (one window per observe()).
[[nodiscard]] std::vector<core::PlannerWindow> read_grid(
    const sim::FleetSimulator& fleet, const ScenarioSpec& spec,
    telemetry::SimTime horizon) {
  core::LiveFeedBackend::Options opt;
  opt.datacenter = 0;
  opt.pool = 0;
  opt.pool_size = fleet.pool_size(0, 0);
  opt.serving = fleet.serving_count(0, 0);
  opt.start = 0;
  opt.window_seconds = spec.window_seconds;
  opt.sealed = true;
  opt.label = "bakeoff feed";
  core::LiveFeedBackend feed(&fleet.store(), opt);

  const auto windows = static_cast<std::size_t>(
      (horizon + spec.window_seconds - 1) / spec.window_seconds);
  std::vector<core::PlannerWindow> grid;
  grid.reserve(windows);
  for (std::size_t i = 0; i < windows; ++i) {
    const telemetry::SimTime start = feed.cursor();
    const core::ExperimentObservations obs = feed.observe(spec.window_seconds);
    for (std::size_t j = 0; j < obs.size(); ++j) {
      core::PlannerWindow w;
      w.start = start +
                static_cast<telemetry::SimTime>(j) * spec.window_seconds;
      w.seconds = spec.window_seconds;
      w.total_rps = obs.total_rps[j];
      w.serving = obs.servers[j];
      w.latency_p95_ms = obs.latency_p95_ms[j];
      w.cpu_pct = obs.cpu_pct[j];
      grid.push_back(w);
    }
  }
  return grid;
}

}  // namespace

BakeoffResult run_bakeoff(const ScenarioSpec& spec) {
  const std::string problem = validate(spec);
  if (!problem.empty()) {
    throw std::invalid_argument("bakeoff: " + problem);
  }
  if (spec.quiescent_dead_band > 0.0) {
    throw std::invalid_argument(
        "bakeoff: scenario '" + spec.name +
        "' uses a quiescent dead band (approximate stepping); its frontier "
        "is not golden-pinnable");
  }

  BakeoffResult result;
  result.spec = spec;

  // --- Observation phase, exactly as `headroom run` executes it ----------
  const sim::MicroserviceCatalog catalog;
  sim::FleetConfig config = ScenarioRunner::build_fleet(spec, catalog);
  sim::FleetSimulator fleet(std::move(config), catalog);
  result.thread_count = fleet.thread_count();

  const telemetry::SimTime horizon = spec.days * kDaySeconds;
  apply_serving_reductions(fleet, spec, horizon, /*step_to_events=*/true);
  fleet.run_until(horizon);
  fleet.finish_day();

  const std::string& pool_service =
      fleet.config().datacenters[0].pools[0].service;
  result.latency_slo_ms = catalog.by_name(pool_service).latency_slo_ms;
  result.pool_size = fleet.pool_size(0, 0);

  // --- The shared inputs: window grid + fitted response surface -----------
  const std::vector<core::PlannerWindow> grid =
      read_grid(fleet, spec, horizon);
  if (grid.empty()) {
    throw std::runtime_error("bakeoff: empty observation grid");
  }
  result.windows = grid.size();
  result.initial_serving = static_cast<std::size_t>(
      std::max<long long>(1, std::llround(grid.front().serving)));

  const core::PoolResponseModel surface = core::PoolResponseModel::fit(
      fleet.store().pool_scatter(0, 0, MetricKind::kRequestsPerSecond,
                                 MetricKind::kCpuPercentAttributed),
      fleet.store().pool_scatter(0, 0, MetricKind::kRequestsPerSecond,
                                 MetricKind::kLatencyP95Ms));

  core::PlannerContext context;
  context.model = &surface;
  context.latency_slo_ms = result.latency_slo_ms;
  context.pool_size = result.pool_size;
  context.min_servers = 1;
  context.window_seconds = spec.window_seconds;

  // --- The RSM entrant: the paper's planner run over the surface ----------
  std::vector<double> demand;
  demand.reserve(grid.size());
  for (const core::PlannerWindow& w : grid) demand.push_back(w.total_rps);

  core::ModelExperimentBackend::Options mopt;
  mopt.pool_size = result.pool_size;
  mopt.serving = result.initial_serving;
  mopt.window_seconds = spec.window_seconds;
  core::ModelExperimentBackend rsm_backend(&surface, std::move(demand), mopt);

  core::RsmOptions ropt;
  ropt.latency_slo_ms = result.latency_slo_ms;
  result.rsm = core::RsmPlanner(ropt).optimize(rsm_backend);

  // --- Replay the full roster over the identical grid ---------------------
  core::StaticCapacityPlanner rsm_static("rsm",
                                         result.rsm.recommended_serving);
  result.scores.push_back(core::replay_capacity_planner(
      rsm_static, grid, context, result.initial_serving));
  for (const auto& planner : baseline::default_roster()) {
    result.scores.push_back(core::replay_capacity_planner(
        *planner, grid, context, result.initial_serving));
  }
  return result;
}

std::string format_frontier(const BakeoffResult& result) {
  const auto fmt = [](double v) { return telemetry::format_double(v); };
  std::string out;
  out += "bakeoff = " + result.spec.name + "\n";
  out += "seed = " + std::to_string(result.spec.seed) + "\n";
  out += "days = " + std::to_string(result.spec.days) + "\n";
  out += "window_seconds = " + std::to_string(result.spec.window_seconds) +
         "\n";
  out += "windows = " + std::to_string(result.windows) + "\n";
  out += "latency_slo_ms = " + fmt(result.latency_slo_ms) + "\n";
  out += "pool_size = " + std::to_string(result.pool_size) + "\n";
  out += "initial_serving = " + std::to_string(result.initial_serving) + "\n";
  out += "rsm_recommended = " +
         std::to_string(result.rsm.recommended_serving) + "\n";
  out += "planners = " + std::to_string(result.scores.size()) + "\n";
  for (const core::PlannerScore& s : result.scores) {
    out += "frontier " + s.planner;
    out += " server_seconds = " + fmt(s.server_seconds);
    out += " violation_seconds = " + fmt(s.violation_seconds);
    out += " violation_fraction = " + fmt(s.violation_fraction());
    out += " switched_servers = " + fmt(s.switched_servers);
    out += " switches = " + std::to_string(s.switches);
    out += " peak_serving = " + std::to_string(s.peak_serving);
    out += " min_serving = " + std::to_string(s.min_serving);
    out += " mean_serving = " + fmt(s.mean_serving());
    out += "\n";
  }
  return out;
}

}  // namespace headroom::scenario
