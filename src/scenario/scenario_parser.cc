#include "scenario/scenario_parser.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <vector>

#include "sim/failover.h"
#include "telemetry/csv.h"

namespace headroom::scenario {

namespace {

[[nodiscard]] std::string_view trim(std::string_view s) noexcept {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

[[nodiscard]] std::vector<std::string> split_list(std::string_view value,
                                                  char sep) {
  std::vector<std::string> out;
  while (!value.empty()) {
    const std::size_t pos = value.find(sep);
    const std::string_view item = trim(value.substr(0, pos));
    if (!item.empty()) out.emplace_back(item);
    if (pos == std::string_view::npos) break;
    value.remove_prefix(pos + 1);
  }
  return out;
}

enum class Section {
  kNone,
  kScenario,
  kFleet,
  kDatacenter,
  kPool,
  kEvent,
  kFault,
  kAssert,
};

class Parser {
 public:
  Parser(std::string_view text, std::string_view source)
      : text_(text), source_(source) {}

  ParseResult run() {
    std::size_t pos = 0;
    while (pos <= text_.size() && error_.empty()) {
      if (pos == text_.size()) break;
      std::size_t eol = text_.find('\n', pos);
      if (eol == std::string_view::npos) eol = text_.size();
      ++line_;
      handle_line(trim(text_.substr(pos, eol - pos)));
      pos = eol + 1;
    }
    if (error_.empty()) finish_section();
    if (error_.empty() && !seen_scenario_) {
      error_ = std::string(source_) + ": missing [scenario] section";
    }
    if (error_.empty() && spec_.name.empty()) {
      error_ = std::string(source_) + ": missing required key 'name' in [scenario]";
    }
    if (error_.empty()) {
      const std::string problem = validate(spec_);
      if (!problem.empty()) error_ = std::string(source_) + ": " + problem;
    }
    ParseResult result;
    result.error = std::move(error_);
    if (result.ok()) result.spec = std::move(spec_);
    return result;
  }

 private:
  void fail(const std::string& message) {
    error_ = std::string(source_) + ":" + std::to_string(line_) + ": " + message;
  }

  void handle_line(std::string_view line) {
    if (line.empty() || line.front() == '#') return;
    if (line.front() == '[') {
      if (line.back() != ']' || line.size() < 3) {
        fail("unterminated section header '" + std::string(line) + "'");
        return;
      }
      finish_section();
      if (!error_.empty()) return;
      open_section(trim(line.substr(1, line.size() - 2)));
      return;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos || trim(line.substr(0, eq)).empty()) {
      fail("expected 'key = value', got '" + std::string(line) + "'");
      return;
    }
    const std::string key{trim(line.substr(0, eq))};
    const std::string value{trim(line.substr(eq + 1))};
    if (section_ == Section::kNone) {
      fail("key '" + key + "' before any section");
      return;
    }
    if (!seen_keys_.insert(key).second) {
      fail("duplicate key '" + key + "' in " + section_name_);
      return;
    }
    handle_key(key, value);
  }

  void open_section(std::string_view header) {
    const std::vector<std::string> words = split_list(header, ' ');
    const std::string name = words.empty() ? std::string() : words[0];
    section_line_ = line_;
    seen_keys_.clear();
    if (name == "scenario" && words.size() == 1) {
      if (seen_scenario_) return fail("duplicate [scenario] section");
      seen_scenario_ = true;
      section_ = Section::kScenario;
    } else if (name == "fleet" && words.size() == 1) {
      if (seen_fleet_) return fail("duplicate [fleet] section");
      seen_fleet_ = true;
      section_ = Section::kFleet;
    } else if (name == "datacenter") {
      std::uint64_t index = 0;
      if (words.size() != 2 || !parse_u64(words[1], &index) || index > 8) {
        return fail("[datacenter] needs a datacenter index 0..8");
      }
      section_ = Section::kDatacenter;
      dc_ = DatacenterOverride{};
      dc_.datacenter = static_cast<std::uint32_t>(index);
    } else if (name == "pool") {
      std::uint64_t dc = 0;
      std::uint64_t pool = 0;
      if (words.size() != 3 || !parse_u64(words[1], &dc) ||
          !parse_u64(words[2], &pool) || dc > 8 || pool > 63) {
        return fail("[pool] needs 'DC POOL' indices (DC 0..8, POOL 0..63)");
      }
      section_ = Section::kPool;
      pool_ = PoolOverride{};
      pool_.datacenter = static_cast<std::uint32_t>(dc);
      pool_.pool = static_cast<std::uint32_t>(pool);
    } else if (name == "event" && words.size() == 1) {
      section_ = Section::kEvent;
      event_ = ScenarioEvent{};
      event_has_kind_ = false;
    } else if (name == "fault" && words.size() == 1) {
      section_ = Section::kFault;
      fault_ = FaultSpec{};
      fault_has_kind_ = false;
    } else if (name == "assert" && words.size() == 1) {
      section_ = Section::kAssert;
      assert_ = ScenarioAssertion{};
      assert_has_expect_ = false;
    } else {
      fail("unknown section '[" + std::string(header) + "]'");
    }
  }

  /// Closes the current section, committing repeatable-section objects.
  void finish_section() {
    const int at = section_line_;
    switch (section_) {
      case Section::kDatacenter:
        spec_.datacenter_overrides.push_back(dc_);
        break;
      case Section::kPool:
        spec_.pool_overrides.push_back(pool_);
        break;
      case Section::kEvent:
        if (!event_has_kind_) {
          line_ = at;
          fail("[event] missing required key 'kind'");
          return;
        }
        spec_.events.push_back(event_);
        break;
      case Section::kFault:
        if (!fault_has_kind_) {
          line_ = at;
          fail("[fault] missing required key 'kind'");
          return;
        }
        spec_.faults.push_back(fault_);
        break;
      case Section::kAssert:
        if (!assert_has_expect_) {
          line_ = at;
          fail("[assert] missing required key 'expect'");
          return;
        }
        spec_.assertions.push_back(assert_);
        break;
      case Section::kNone:
      case Section::kScenario:
      case Section::kFleet:
        break;
    }
    section_ = Section::kNone;
    section_name_.clear();
  }

  void handle_key(const std::string& key, const std::string& value) {
    switch (section_) {
      case Section::kScenario: return scenario_key(key, value);
      case Section::kFleet: return fleet_key(key, value);
      case Section::kDatacenter: return datacenter_key(key, value);
      case Section::kPool: return pool_key(key, value);
      case Section::kEvent: return event_key(key, value);
      case Section::kFault: return fault_key(key, value);
      case Section::kAssert: return assert_key(key, value);
      case Section::kNone: break;
    }
  }

  void scenario_key(const std::string& key, const std::string& value) {
    section_name_ = "[scenario]";
    if (key == "name") {
      if (value.empty()) return fail("scenario name is empty");
      spec_.name = value;
    } else if (key == "description") {
      spec_.description = value;
    } else if (key == "seed") {
      std::uint64_t v = 0;
      if (!parse_u64(value, &v)) return bad_value(key, value, "unsigned integer");
      spec_.seed = v;
    } else if (key == "days") {
      std::uint64_t v = 0;
      if (!parse_u64(value, &v) || v < 1 || v > 3650) {
        return bad_value(key, value, "integer 1..3650");
      }
      spec_.days = static_cast<std::int64_t>(v);
    } else if (key == "threads") {
      std::uint64_t v = 0;
      if (!parse_u64(value, &v) || v > 4096) {
        return bad_value(key, value, "integer 0..4096");
      }
      spec_.threads = v;
    } else if (key == "window_seconds") {
      std::uint64_t v = 0;
      if (!parse_u64(value, &v) || v < 1 || v > 86400) {
        return bad_value(key, value, "integer 1..86400");
      }
      spec_.window_seconds = static_cast<telemetry::SimTime>(v);
    } else if (key == "steps") {
      std::uint8_t steps = 0;
      for (const std::string& item : split_list(value, ',')) {
        if (item == "measure") {
          steps |= step_bit(PipelineStep::kMeasure);
        } else if (item == "optimize") {
          steps |= step_bit(PipelineStep::kOptimize);
        } else if (item == "model") {
          steps |= step_bit(PipelineStep::kModel);
        } else if (item == "validate") {
          steps |= step_bit(PipelineStep::kValidate);
        } else {
          return fail("unknown step '" + item +
                      "' (expected measure, optimize, model, validate)");
        }
      }
      if (steps == 0) {
        return fail("steps must be a non-empty comma list of "
                    "measure, optimize, model, validate");
      }
      spec_.steps = steps;
    } else if (key == "quiescent_dead_band") {
      double v = 0.0;
      if (!parse_double(value, &v) || v < 0.0 || v >= 1.0) {
        return bad_value(key, value, "number 0..1 (0 = exact stepping)");
      }
      spec_.quiescent_dead_band = v;
    } else if (key == "per_server_accounting") {
      if (!parse_bool(value, &spec_.per_server_accounting)) {
        return bad_value(key, value, "true or false");
      }
    } else if (key == "failover") {
      sim::FailoverPolicyKind kind{};
      if (!sim::failover_policy_from_string(value, kind)) {
        return bad_value(key, value,
                         "nearest_survivor, latency_aware, cost_aware");
      }
      spec_.failover = kind;
    } else {
      fail("unknown key '" + key + "' in [scenario]");
    }
  }

  void fleet_key(const std::string& key, const std::string& value) {
    section_name_ = "[fleet]";
    if (key == "kind") {
      if (value == "single_pool") {
        spec_.fleet = FleetKind::kSinglePool;
      } else if (value == "multi_dc") {
        spec_.fleet = FleetKind::kMultiDc;
      } else if (value == "standard") {
        spec_.fleet = FleetKind::kStandard;
      } else {
        fail("unknown fleet kind '" + value +
             "' (expected single_pool, multi_dc, standard)");
      }
    } else if (key == "service") {
      if (value.empty()) return fail("fleet service is empty");
      spec_.service = value;
    } else if (key == "servers") {
      std::uint64_t v = 0;
      if (!parse_u64(value, &v) || v < 1 || v > 1000000) {
        return bad_value(key, value, "integer 1..1000000");
      }
      spec_.servers = v;
    } else if (key == "datacenters") {
      std::uint64_t v = 0;
      if (!parse_u64(value, &v) || v < 1 || v > 9) {
        return bad_value(key, value, "integer 1..9");
      }
      spec_.datacenters = v;
    } else if (key == "services") {
      spec_.services = split_list(value, ',');
      if (spec_.services.empty()) {
        return fail("services must be a non-empty comma list");
      }
    } else if (key == "regional_peak_rps") {
      double v = 0.0;
      if (!parse_double(value, &v) || v <= 0.0) {
        return bad_value(key, value, "positive number");
      }
      spec_.regional_peak_rps = v;
    } else if (key == "heterogeneous") {
      if (!parse_bool(value, &spec_.heterogeneous)) {
        return bad_value(key, value, "true or false");
      }
    } else {
      fail("unknown key '" + key + "' in [fleet]");
    }
  }

  void datacenter_key(const std::string& key, const std::string& value) {
    section_name_ = "[datacenter]";
    double v = 0.0;
    if (key == "demand_weight") {
      if (!parse_double(value, &v) || v <= 0.0) {
        return bad_value(key, value, "positive number");
      }
      dc_.demand_weight = v;
    } else if (key == "timezone_offset_hours") {
      if (!parse_double(value, &v) || v < -12.0 || v > 14.0) {
        return bad_value(key, value, "number -12..14");
      }
      dc_.timezone_offset_hours = v;
    } else {
      fail("unknown key '" + key + "' in [datacenter]");
    }
  }

  void pool_key(const std::string& key, const std::string& value) {
    section_name_ = "[pool]";
    double v = 0.0;
    if (key == "servers") {
      std::uint64_t n = 0;
      if (!parse_u64(value, &n) || n < 1 || n > 1000000) {
        return bad_value(key, value, "integer 1..1000000");
      }
      pool_.servers = n;
    } else if (key == "demand_multiplier") {
      if (!parse_double(value, &v) || v <= 0.0) {
        return bad_value(key, value, "positive number");
      }
      pool_.demand_multiplier = v;
    } else if (key == "burst_multiplier") {
      if (!parse_double(value, &v) || v <= 0.0) {
        return bad_value(key, value, "positive number");
      }
      pool_.burst_multiplier = v;
    } else if (key == "burst_start_hour") {
      if (!parse_double(value, &v) || v < 0.0 || v >= 24.0) {
        return bad_value(key, value, "number 0..24");
      }
      pool_.burst_start_hour = v;
    } else if (key == "burst_hours") {
      if (!parse_double(value, &v) || v < 0.0 || v > 24.0) {
        return bad_value(key, value, "number 0..24");
      }
      pool_.burst_hours = v;
    } else {
      fail("unknown key '" + key + "' in [pool]");
    }
  }

  void event_key(const std::string& key, const std::string& value) {
    section_name_ = "[event]";
    if (key == "kind") {
      if (value == "traffic_multiplier") {
        event_.kind = ScenarioEventKind::kTrafficMultiplier;
      } else if (value == "outage") {
        event_.kind = ScenarioEventKind::kDatacenterOutage;
      } else if (value == "maintenance_wave") {
        event_.kind = ScenarioEventKind::kMaintenanceWave;
      } else if (value == "serving_reduction") {
        event_.kind = ScenarioEventKind::kServingReduction;
      } else {
        return fail("unknown event kind '" + value +
                    "' (expected traffic_multiplier, outage, "
                    "maintenance_wave, serving_reduction)");
      }
      event_has_kind_ = true;
      return;
    }
    if (!event_has_kind_) {
      return fail("'kind' must be the first key in [event]");
    }
    if (!event_key_allowed(key)) {
      return fail("key '" + key + "' is not valid for event kind '" +
                  std::string(event_kind_name(event_.kind)) + "'");
    }
    double v = 0.0;
    if (key == "datacenter") {
      if (value == "all") {
        event_.datacenter.reset();
        return;
      }
      std::uint64_t n = 0;
      if (!parse_u64(value, &n) || n > 8) {
        return bad_value(key, value, "index 0..8 or 'all'");
      }
      event_.datacenter = static_cast<std::uint32_t>(n);
    } else if (key == "pool") {
      std::uint64_t n = 0;
      if (!parse_u64(value, &n) || n > 63) {
        return bad_value(key, value, "index 0..63");
      }
      event_.pool = static_cast<std::uint32_t>(n);
    } else if (key == "start_hour") {
      if (!parse_double(value, &v) || v < 0.0) {
        return bad_value(key, value, "non-negative number");
      }
      event_.start_hour = v;
    } else if (key == "duration_hours") {
      if (!parse_double(value, &v) || v < 0.0) {
        return bad_value(key, value, "non-negative number");
      }
      event_.duration_hours = v;
    } else if (key == "multiplier") {
      if (!parse_double(value, &v) || v <= 0.0) {
        return bad_value(key, value, "positive number");
      }
      event_.multiplier = v;
    } else if (key == "offline_fraction") {
      if (!parse_double(value, &v) || v <= 0.0 || v > 1.0) {
        return bad_value(key, value, "number in (0, 1]");
      }
      event_.offline_fraction = v;
    } else if (key == "serving") {
      std::uint64_t n = 0;
      if (!parse_u64(value, &n) || n < 1 || n > 1000000) {
        return bad_value(key, value, "integer 1..1000000");
      }
      event_.serving = n;
    }
  }

  [[nodiscard]] bool event_key_allowed(const std::string& key) const {
    switch (event_.kind) {
      case ScenarioEventKind::kTrafficMultiplier:
        return key == "datacenter" || key == "start_hour" ||
               key == "duration_hours" || key == "multiplier";
      case ScenarioEventKind::kDatacenterOutage:
        return key == "datacenter" || key == "start_hour" ||
               key == "duration_hours";
      case ScenarioEventKind::kMaintenanceWave:
        return key == "datacenter" || key == "pool" || key == "start_hour" ||
               key == "duration_hours" || key == "offline_fraction";
      case ScenarioEventKind::kServingReduction:
        return key == "datacenter" || key == "pool" || key == "start_hour" ||
               key == "serving";
    }
    return false;
  }

  [[nodiscard]] static std::string_view event_kind_name(
      ScenarioEventKind kind) noexcept {
    switch (kind) {
      case ScenarioEventKind::kTrafficMultiplier: return "traffic_multiplier";
      case ScenarioEventKind::kDatacenterOutage: return "outage";
      case ScenarioEventKind::kMaintenanceWave: return "maintenance_wave";
      case ScenarioEventKind::kServingReduction: return "serving_reduction";
    }
    return "?";
  }

  void fault_key(const std::string& key, const std::string& value) {
    section_name_ = "[fault]";
    if (key == "kind") {
      const auto kind = fault_kind_from_string(value);
      if (!kind) {
        return fail("unknown fault kind '" + value +
                    "' (expected telemetry_gap, nan_burst, duplicate_window, "
                    "out_of_order_window, corrupt_row, feed_stall, "
                    "clock_skew)");
      }
      fault_.kind = *kind;
      fault_has_kind_ = true;
      return;
    }
    if (!fault_has_kind_) {
      return fail("'kind' must be the first key in [fault]");
    }
    if (!fault_key_allowed(key)) {
      return fail("key '" + key + "' is not valid for fault kind '" +
                  std::string(to_string(fault_.kind)) + "'");
    }
    double v = 0.0;
    if (key == "datacenter") {
      std::uint64_t n = 0;
      if (!parse_u64(value, &n) || n > 8) {
        return bad_value(key, value, "index 0..8");
      }
      fault_.datacenter = static_cast<std::uint32_t>(n);
    } else if (key == "pool") {
      std::uint64_t n = 0;
      if (!parse_u64(value, &n) || n > 63) {
        return bad_value(key, value, "index 0..63");
      }
      fault_.pool = static_cast<std::uint32_t>(n);
    } else if (key == "start_hour") {
      if (!parse_double(value, &v) || v < 0.0) {
        return bad_value(key, value, "non-negative number");
      }
      fault_.start_hour = v;
    } else if (key == "duration_hours") {
      if (!parse_double(value, &v) || v <= 0.0) {
        return bad_value(key, value, "positive number");
      }
      fault_.duration_hours = v;
    } else if (key == "skew_seconds") {
      if (!parse_double(value, &v) || v == 0.0) {
        return bad_value(key, value, "non-zero number");
      }
      fault_.skew_seconds = v;
    }
  }

  [[nodiscard]] bool fault_key_allowed(const std::string& key) const {
    switch (fault_.kind) {
      case FaultKind::kFeedStall:
        return key == "start_hour" || key == "duration_hours";
      case FaultKind::kClockSkew:
        return key == "datacenter" || key == "pool" || key == "start_hour" ||
               key == "duration_hours" || key == "skew_seconds";
      case FaultKind::kTelemetryGap:
      case FaultKind::kNanBurst:
      case FaultKind::kDuplicateWindow:
      case FaultKind::kOutOfOrderWindow:
      case FaultKind::kCorruptRow:
        return key == "datacenter" || key == "pool" || key == "start_hour" ||
               key == "duration_hours";
    }
    return false;
  }

  void assert_key(const std::string& key, const std::string& value) {
    section_name_ = "[assert]";
    if (key != "expect") {
      return fail("unknown key '" + key + "' in [assert] (expected 'expect')");
    }
    const std::vector<std::string> words = split_list(value, ' ');
    if (words.size() != 3) {
      return fail("bad assertion '" + value +
                  "' (expected 'metric OP value')");
    }
    assert_.metric = words[0];
    if (words[1] == ">=") {
      assert_.op = AssertOp::kGe;
    } else if (words[1] == "<=") {
      assert_.op = AssertOp::kLe;
    } else if (words[1] == ">") {
      assert_.op = AssertOp::kGt;
    } else if (words[1] == "<") {
      assert_.op = AssertOp::kLt;
    } else if (words[1] == "==") {
      assert_.op = AssertOp::kEq;
    } else if (words[1] == "!=") {
      assert_.op = AssertOp::kNe;
    } else {
      return fail("unknown operator '" + words[1] +
                  "' in assertion (expected >=, <=, >, <, ==, !=)");
    }
    if (!parse_double(words[2], &assert_.value)) {
      return fail("bad assertion value '" + words[2] +
                  "' (expected a number)");
    }
    assert_has_expect_ = true;
  }

  void bad_value(const std::string& key, const std::string& value,
                 const std::string& expected) {
    fail("bad value '" + value + "' for '" + key + "' (expected " + expected +
         ")");
  }

  [[nodiscard]] static bool parse_u64(const std::string& text,
                                      std::uint64_t* out) {
    if (text.empty() || text[0] == '-' || text[0] == '+') return false;
    char* end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || errno == ERANGE) return false;
    *out = v;
    return true;
  }

  [[nodiscard]] static bool parse_double(const std::string& text, double* out) {
    if (text.empty()) return false;
    char* end = nullptr;
    errno = 0;
    const double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0' || errno == ERANGE ||
        !std::isfinite(v)) {
      return false;
    }
    *out = v;
    return true;
  }

  [[nodiscard]] static bool parse_bool(const std::string& text, bool* out) {
    if (text == "true" || text == "1") {
      *out = true;
      return true;
    }
    if (text == "false" || text == "0") {
      *out = false;
      return true;
    }
    return false;
  }

  std::string_view text_;
  std::string_view source_;
  int line_ = 0;
  int section_line_ = 0;
  std::string error_;
  ScenarioSpec spec_;
  Section section_ = Section::kNone;
  std::string section_name_;
  std::set<std::string> seen_keys_;
  bool seen_scenario_ = false;
  bool seen_fleet_ = false;
  DatacenterOverride dc_;
  PoolOverride pool_;
  ScenarioEvent event_;
  bool event_has_kind_ = false;
  FaultSpec fault_;
  bool fault_has_kind_ = false;
  ScenarioAssertion assert_;
  bool assert_has_expect_ = false;
};

// Shortest-roundtrip formatting, shared with the CSV trace exporter so
// scenario files and traces pin the same byte representation of a double.
[[nodiscard]] std::string fmt_double(double v) {
  return telemetry::format_double(v);
}

[[nodiscard]] std::string join(const std::vector<std::string>& items,
                               std::string_view sep) {
  std::string out;
  for (const std::string& item : items) {
    if (!out.empty()) out += sep;
    out += item;
  }
  return out;
}

}  // namespace

ParseResult parse_scenario(std::string_view text, std::string_view source_name) {
  return Parser(text, source_name).run();
}

ParseResult load_scenario_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ParseResult result;
    result.error = path + ": cannot open scenario file";
    return result;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_scenario(buffer.str(), path);
}

std::string serialize_scenario(const ScenarioSpec& spec) {
  std::string out;
  out += "[scenario]\n";
  out += "name = " + spec.name + "\n";
  if (!spec.description.empty()) {
    out += "description = " + spec.description + "\n";
  }
  out += "seed = " + std::to_string(spec.seed) + "\n";
  out += "days = " + std::to_string(spec.days) + "\n";
  out += "threads = " + std::to_string(spec.threads) + "\n";
  out += "window_seconds = " + std::to_string(spec.window_seconds) + "\n";
  // Large-fleet stepping knobs: emitted only when non-default, so every
  // pre-existing scenario (and its embedded-trace golden) round-trips
  // byte-identically.
  if (spec.quiescent_dead_band != 0.0) {
    out += "quiescent_dead_band = " + fmt_double(spec.quiescent_dead_band) +
           "\n";
  }
  if (!spec.per_server_accounting) {
    out += "per_server_accounting = false\n";
  }
  if (spec.failover != sim::FailoverPolicyKind::kNearestSurvivor) {
    out += "failover = " + sim::to_string(spec.failover) + "\n";
  }
  std::vector<std::string> steps;
  if (spec.runs(PipelineStep::kMeasure)) steps.emplace_back("measure");
  if (spec.runs(PipelineStep::kOptimize)) steps.emplace_back("optimize");
  if (spec.runs(PipelineStep::kModel)) steps.emplace_back("model");
  if (spec.runs(PipelineStep::kValidate)) steps.emplace_back("validate");
  out += "steps = " + join(steps, ",") + "\n";

  out += "\n[fleet]\n";
  switch (spec.fleet) {
    case FleetKind::kSinglePool:
      out += "kind = single_pool\n";
      break;
    case FleetKind::kMultiDc:
      out += "kind = multi_dc\n";
      out += "datacenters = " + std::to_string(spec.datacenters) + "\n";
      break;
    case FleetKind::kStandard:
      out += "kind = standard\n";
      if (!spec.services.empty()) {
        out += "services = " + join(spec.services, ",") + "\n";
      }
      out += "regional_peak_rps = " + fmt_double(spec.regional_peak_rps) + "\n";
      out += std::string("heterogeneous = ") +
             (spec.heterogeneous ? "true" : "false") + "\n";
      break;
  }
  if (spec.fleet != FleetKind::kStandard) {
    out += "service = " + spec.service + "\n";
    out += "servers = " + std::to_string(spec.servers) + "\n";
  }

  for (const DatacenterOverride& dc : spec.datacenter_overrides) {
    out += "\n[datacenter " + std::to_string(dc.datacenter) + "]\n";
    if (dc.demand_weight) {
      out += "demand_weight = " + fmt_double(*dc.demand_weight) + "\n";
    }
    if (dc.timezone_offset_hours) {
      out += "timezone_offset_hours = " + fmt_double(*dc.timezone_offset_hours) +
             "\n";
    }
  }

  for (const PoolOverride& pool : spec.pool_overrides) {
    out += "\n[pool " + std::to_string(pool.datacenter) + " " +
           std::to_string(pool.pool) + "]\n";
    if (pool.servers) {
      out += "servers = " + std::to_string(*pool.servers) + "\n";
    }
    if (pool.demand_multiplier) {
      out += "demand_multiplier = " + fmt_double(*pool.demand_multiplier) + "\n";
    }
    if (pool.burst_multiplier) {
      out += "burst_multiplier = " + fmt_double(*pool.burst_multiplier) + "\n";
    }
    if (pool.burst_start_hour) {
      out += "burst_start_hour = " + fmt_double(*pool.burst_start_hour) + "\n";
    }
    if (pool.burst_hours) {
      out += "burst_hours = " + fmt_double(*pool.burst_hours) + "\n";
    }
  }

  for (const ScenarioEvent& e : spec.events) {
    out += "\n[event]\n";
    switch (e.kind) {
      case ScenarioEventKind::kTrafficMultiplier:
        out += "kind = traffic_multiplier\n";
        break;
      case ScenarioEventKind::kDatacenterOutage:
        out += "kind = outage\n";
        break;
      case ScenarioEventKind::kMaintenanceWave:
        out += "kind = maintenance_wave\n";
        break;
      case ScenarioEventKind::kServingReduction:
        out += "kind = serving_reduction\n";
        break;
    }
    out += "datacenter = " +
           (e.datacenter ? std::to_string(*e.datacenter) : std::string("all")) +
           "\n";
    // Only the pool-scoped event kinds take a pool key (the parser rejects
    // it elsewhere, and validate() rejects such specs outright).
    if (e.pool && (e.kind == ScenarioEventKind::kMaintenanceWave ||
                   e.kind == ScenarioEventKind::kServingReduction)) {
      out += "pool = " + std::to_string(*e.pool) + "\n";
    }
    out += "start_hour = " + fmt_double(e.start_hour) + "\n";
    if (e.kind != ScenarioEventKind::kServingReduction) {
      out += "duration_hours = " + fmt_double(e.duration_hours) + "\n";
    }
    if (e.kind == ScenarioEventKind::kTrafficMultiplier) {
      out += "multiplier = " + fmt_double(e.multiplier) + "\n";
    }
    if (e.kind == ScenarioEventKind::kMaintenanceWave) {
      out += "offline_fraction = " + fmt_double(e.offline_fraction) + "\n";
    }
    if (e.kind == ScenarioEventKind::kServingReduction) {
      out += "serving = " + std::to_string(e.serving) + "\n";
    }
  }

  for (const FaultSpec& f : spec.faults) {
    out += "\n[fault]\n";
    out += "kind = " + std::string(to_string(f.kind)) + "\n";
    if (f.datacenter) {
      out += "datacenter = " + std::to_string(*f.datacenter) + "\n";
    }
    if (f.pool) out += "pool = " + std::to_string(*f.pool) + "\n";
    out += "start_hour = " + fmt_double(f.start_hour) + "\n";
    out += "duration_hours = " + fmt_double(f.duration_hours) + "\n";
    if (f.kind == FaultKind::kClockSkew) {
      out += "skew_seconds = " + fmt_double(f.skew_seconds) + "\n";
    }
  }

  for (const ScenarioAssertion& a : spec.assertions) {
    out += "\n[assert]\n";
    out += "expect = " + a.metric + " " + std::string(to_string(a.op)) + " " +
           fmt_double(a.value) + "\n";
  }
  return out;
}

}  // namespace headroom::scenario
