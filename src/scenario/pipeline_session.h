// Resumable pipeline stages shared by batch runs, trace replay, and serve.
//
// ScenarioRunner::run_pipeline_steps used to be one straight-line function:
// Measure -> Optimize (plan + RSM experiment) -> Model -> Validate. Serve
// mode needs the same stages cut at their observation points — measure and
// plan fire once at the observation horizon, the RSM experiment advances
// window-by-window as the feed grows, and model/validate run at
// finalization — without the batch path and the streaming path ever
// diverging. PipelineSession is that cut: the batch runner drives a session
// start-to-finish in one call, serve drives the identical session one
// window at a time, and both fill the same ScenarioRunResult fields in the
// same order, which is what keeps the streaming pipeline's final summary
// byte-identical to the batch goldens.
//
// The free functions are the runner internals serve also needs (reduction
// timelines, the environment-metric oracle, store truncation, assertion
// evaluation) — pure functions shared rather than duplicated.
#pragma once

#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/rsm_planner.h"
#include "scenario/scenario_runner.h"
#include "scenario/scenario_spec.h"
#include "sim/fleet.h"

namespace headroom::scenario {

/// Seconds per simulated day — the unit scenario horizons are written in.
inline constexpr telemetry::SimTime kDaySeconds = 86400;

[[nodiscard]] telemetry::SimTime hours_to_sim(double hours) noexcept;

/// Everything the four pipeline steps read. `store` holds observation-phase
/// telemetry only (in simulator mode that is the live store, which the RSM
/// phase has not yet extended; in replay it is the recording truncated at
/// the horizon); `server_days` are the per-server-day CPU rows as of
/// measure time; `backend` is the RSM planner's experiment surface.
struct PipelineContext {
  const telemetry::MetricStore* store = nullptr;
  std::span<const sim::ServerDayCpu> server_days;
  core::PoolExperimentBackend* backend = nullptr;
  double latency_slo_ms = 0.0;
  std::size_t datacenter_count = 1;
};

class PipelineSession {
 public:
  /// `ctx`'s pointers must outlive the session.
  PipelineSession(const ScenarioSpec& spec, PipelineContext ctx);

  /// Step 1 (Measure) plus the headroom plan half of step 2 — everything
  /// that reads only the observation phase. No-ops for steps the spec does
  /// not run. Call once, before the RSM phase.
  void run_measure_and_plan(ScenarioRunResult& result);

  /// Starts step 2's RSM experiment (a no-op when the spec does not run
  /// the optimize step). `seed` optionally pre-loads the session baseline
  /// from already-observed history (serve's reuse-baseline mode) — batch
  /// and replay leave it null so the experiment observes its own baseline,
  /// which is what the goldens pin.
  void start_rsm(const core::ExperimentObservations* seed = nullptr);

  /// Advances the RSM experiment as far as the backend's data allows.
  /// Returns true when the experiment is complete (immediately true when
  /// the optimize step is off). Backend exceptions propagate.
  [[nodiscard]] bool advance_rsm();

  /// Records the RSM outcome and runs steps 3 (Model) and 4 (Validate) —
  /// then the session is complete. Requires advance_rsm() to have
  /// returned true (throws std::logic_error otherwise). When the RSM
  /// experiment was ended by abort_rsm_failsafe(), additionally emits
  /// `rsm_failsafe = 1` so summaries (and assertions) can see the
  /// degraded outcome.
  void finalize(ScenarioRunResult& result);

  /// Failsafe abort of a pending RSM experiment (the degradation layer
  /// declared the pool's feed past its staleness budget): serving returns
  /// to the validated pre-experiment count and the session becomes
  /// finalizable. No-op when the experiment is not running.
  void abort_rsm_failsafe();

  /// The live RSM session, null before start_rsm() (or when optimize is
  /// off). Serve reads its pending state for progress reporting.
  [[nodiscard]] const core::RsmSession* rsm() const noexcept {
    return rsm_ ? &*rsm_ : nullptr;
  }

 private:
  ScenarioSpec spec_;
  PipelineContext ctx_;
  std::optional<core::RsmSession> rsm_;
  bool rsm_started_ = false;
};

/// Serving reductions sorted by start time (stable for equal times, which
/// validate() has already ruled out per pool).
[[nodiscard]] std::vector<ScenarioEvent> sorted_reductions(
    const ScenarioSpec& spec);

/// Validates and applies the spec's serving reductions. In simulator mode
/// the fleet is stepped to each reduction boundary first (the observation
/// phase pauses there); replay applies only the control-variable changes —
/// the telemetry those reductions produced is already in the trace.
void apply_serving_reductions(sim::FleetSimulator& fleet,
                              const ScenarioSpec& spec,
                              telemetry::SimTime horizon, bool step_to_events);

/// Fleet-shape and event-timeline metrics. Everything here is a pure
/// function of the config and the demand oracle (datacenter_demand does
/// not depend on stepping state), so simulator runs, trace replays and
/// serve sessions compute identical values without sharing any telemetry.
void compute_environment_metrics(const sim::FleetSimulator& fleet,
                                 const ScenarioSpec& spec,
                                 std::map<std::string, double>& metrics);

/// Checks every spec assertion against the flat metric map.
void evaluate_assertions(const ScenarioSpec& spec, ScenarioRunResult& result);

/// Resolves every `pool(DC,POOL).base` assertion target the spec uses into
/// `metrics`, computed over that pool's observation-phase series in
/// [0, horizon). Pure store reads (peak/mean of rps, cpu, p95 latency;
/// min/max active servers), so batch, replay, serve, and follow agree
/// byte-for-byte on the same store contents. Pools absent from the store
/// are left unresolved — the assertion then fails as NaN, like any
/// missing metric.
void compute_pool_assertion_metrics(const telemetry::MetricStore& store,
                                    const ScenarioSpec& spec,
                                    std::map<std::string, double>& metrics);

/// The recording truncated at `end`: exactly the telemetry the pipeline's
/// measure/fit stages saw in the original run, rebuilt through the same
/// batched-merge write path the simulator records through.
[[nodiscard]] telemetry::MetricStore truncate_store(
    const telemetry::MetricStore& full, telemetry::SimTime end);

}  // namespace headroom::scenario
