#include "scenario/listing.h"

#include <algorithm>
#include <filesystem>
#include <system_error>

#include "scenario/scenario_parser.h"

namespace headroom::scenario {

namespace fs = std::filesystem;

ScenarioListing list_scenario_dir(const std::string& dir) {
  ScenarioListing out;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    out.error = "'" + dir + "' is not a directory";
    return out;
  }
  fs::directory_iterator it(dir, ec);
  if (ec) {
    out.error = "cannot list '" + dir + "': " + ec.message();
    return out;
  }

  // Collect candidate paths first (iteration itself can fail mid-stream on
  // hostile directories; increment with an error_code so one bad entry
  // cannot throw the rest of the listing away).
  const fs::directory_iterator end;
  while (it != end) {
    const fs::directory_entry entry = *it;
    it.increment(ec);
    if (entry.path().extension() != ".scn") {
      if (ec) break;
      continue;
    }
    ScenarioListEntry row;
    row.file = entry.path().filename().string();
    std::error_code stat_ec;
    const bool regular = entry.is_regular_file(stat_ec);
    if (stat_ec) {
      row.error = row.file + ": cannot stat: " + stat_ec.message();
      out.entries.push_back(std::move(row));
    } else if (regular) {
      ParseResult parsed = load_scenario_file(entry.path().string());
      if (parsed.ok()) {
        row.spec = std::move(parsed.spec);
      } else {
        row.error = std::move(parsed.error);
      }
      out.entries.push_back(std::move(row));
    }
    // Non-regular .scn entries (directories, sockets, dangling symlinks
    // whose target is simply absent) are skipped, as before.
    if (ec) break;  // iteration lost its footing; keep what we have
  }

  std::sort(out.entries.begin(), out.entries.end(),
            [](const ScenarioListEntry& a, const ScenarioListEntry& b) {
              return a.file < b.file;
            });
  return out;
}

}  // namespace headroom::scenario
