// Robust scenario-directory listing.
//
// `headroom list-scenarios` used to abort the whole listing on the first
// entry the filesystem refused to describe: directory_entry::is_regular_file
// (the throwing overload) propagated straight to main()'s catch-all, so one
// unreadable entry hid every other scenario in the directory. This module
// is the per-file-robust version: every .scn entry produces a row — either
// a parsed spec or that file's own diagnostic — and only a directory-level
// failure (not a directory, unreadable directory) fails the listing.
#pragma once

#include <string>
#include <vector>

#include "scenario/scenario_spec.h"

namespace headroom::scenario {

struct ScenarioListEntry {
  std::string file;   ///< File name (no directory).
  std::string error;  ///< Parse/filesystem diagnostic; empty when ok.
  ScenarioSpec spec;  ///< Valid only when `error` is empty.

  [[nodiscard]] bool ok() const noexcept { return error.empty(); }
};

struct ScenarioListing {
  std::string error;  ///< Directory-level failure only; "" otherwise.
  std::vector<ScenarioListEntry> entries;  ///< Sorted by file name.

  [[nodiscard]] bool ok() const noexcept { return error.empty(); }
};

/// Lists every `.scn` file under `dir` (non-recursive), parsing each one.
/// A file that cannot be statted or parsed contributes an entry carrying
/// its diagnostic instead of failing the listing; non-.scn entries and
/// non-files are skipped. Never throws filesystem errors.
[[nodiscard]] ScenarioListing list_scenario_dir(const std::string& dir);

}  // namespace headroom::scenario
