// Trace capture and replay: a scenario run serialized to a directory of
// CSVs, and the pipeline re-executed from that directory with no simulator
// in the loop (the paper's §II-B2 posture — the service is a black box
// observed through recorded telemetry).
//
// Trace directory layout (export_trace writes, replay_trace reads):
//   scenario.scn        canonical serialization of the spec (round-trip
//                       exact, so the replay reruns the identical config)
//   manifest.ini        format version, horizon, file index
//   pool_<dc>_<p>.csv   pool-scope windows, inner-joined on window_start
//                       (write_pool_csv format, shortest-roundtrip doubles)
//   server_day_cpu.csv  per-server-day CPU percentile snapshots (the
//                       grouping step's feature rows)
//   summary.txt         the machine summary of the recording run — the
//                       byte string a correct replay must reproduce
#pragma once

#include <string>
#include <vector>

#include "scenario/scenario_runner.h"

namespace headroom::scenario {

struct TraceExportResult {
  std::string error;               ///< Empty on success.
  std::vector<std::string> files;  ///< Paths written, in write order.

  [[nodiscard]] bool ok() const noexcept { return error.empty(); }
};

/// Runs the scenario and captures the run as a replayable trace directory
/// (created if needed). On success `*result` holds the run result, so the
/// caller can print the same summary `summary.txt` pins. Spec and runtime
/// problems throw (as ScenarioRunner::run does); filesystem problems are
/// reported in the returned error.
[[nodiscard]] TraceExportResult export_trace(const ScenarioSpec& spec,
                                             const std::string& dir,
                                             ScenarioRunResult* result);

struct TraceReplayResult {
  std::string error;  ///< Empty on success (file-level diagnostics).
  ScenarioRunResult result;

  [[nodiscard]] bool ok() const noexcept { return error.empty(); }
};

/// Loads a trace directory and replays the scenario's pipeline against the
/// recording (ScenarioRunner::replay). Malformed manifests/CSVs come back
/// as `source:line: message` diagnostics in `error`; a replay that diverges
/// from the recording throws std::runtime_error (TraceExperimentBackend).
[[nodiscard]] TraceReplayResult replay_trace(const std::string& dir);

/// One pool CSV of a trace directory, resolved to an openable path.
struct TracePoolFeed {
  std::uint32_t datacenter = 0;
  std::uint32_t pool = 0;
  std::string path;
};

/// The static parts of a trace directory: everything follow mode reads
/// once up front, before it starts tailing the (possibly still growing)
/// pool CSVs listed in `pools`.
struct TraceFeedInfo {
  ScenarioSpec spec;
  std::vector<sim::ServerDayCpu> server_days;
  std::vector<TracePoolFeed> pools;
};

/// Loads manifest, scenario, and server-day rows of a trace directory and
/// resolves the pool CSV paths without reading them (serve --follow tails
/// those as they grow on disk). Validates the same manifest/scenario
/// cross-checks replay_trace does. Returns "" on success, else a
/// `source:line: message` diagnostic.
[[nodiscard]] std::string load_trace_feed(const std::string& dir,
                                          TraceFeedInfo* out);

}  // namespace headroom::scenario
