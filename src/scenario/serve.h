// Continuous headroom service: the batch pipeline run as a stream.
//
// `headroom serve` keeps a scenario's pipeline alive instead of running it
// to completion and exiting. Telemetry arrives window-by-window — from a
// fleet simulator stepped one window at a time (serve mode) or from a
// growing trace directory tailed on disk (follow mode) — and every window
// the runner re-emits a per-pool machine summary line: the pool's workload,
// utilization, latency, serving count, and a rolling headroom
// recommendation (core/rolling_plan.h, O(1) per window regardless of
// history length).
//
// The pipeline stages are the batch ones, cut at their observation points
// (scenario/pipeline_session.h): measure + plan fire once when the feed
// reaches the scenario's observation horizon, the RSM reduction experiment
// then advances whenever the windows it is waiting for arrive
// (core::RsmSession over a LiveFeedBackend), and model/validate run at
// finalization. Because both paths drive the identical session, the final
// machine summary of a served scenario is byte-identical to the batch
// golden — pinned by tests/scenario/serve_identity_test.cc.
//
// Once the experiment phase begins, the store switches to rolling
// retention (MetricStore::set_retention): measure/plan have consumed the
// full observation history by then, the experiment only ever reads forward
// from its cursor, and the rolling planners hold their own ring — so
// resident telemetry is O(retention), not O(elapsed), under an endless
// feed. Evicted samples fold into per-series archive digests.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "scenario/scenario_runner.h"

namespace headroom::scenario {

struct ServeOptions {
  /// Extra whole days to keep serving after the RSM experiment completes
  /// (simulated feed only): the steady-state monitoring phase, emitting
  /// rolling reports with no further pipeline work.
  std::int64_t extra_days = 0;
  /// Rolling store retention once the experiment phase begins; 0 keeps
  /// full history. Must cover the longest single observation the RSM
  /// session requests (one day here), with one day of slack by default.
  telemetry::SimTime retention_seconds = 2 * 86400;
  /// Seed the RSM baseline from the observation phase's trailing history
  /// instead of spending feed windows observing one. Saves a baseline
  /// duration of feed, but the summary then (legitimately) diverges from
  /// the batch golden, which pins the observed baseline.
  bool reuse_observation_baseline = false;
  /// Rolling-planner window budget per pool (ring size).
  std::size_t rolling_lookback_windows = 720;
  /// Windows required before the rolling planner starts recommending.
  std::size_t rolling_min_windows = 8;
  /// Follow mode: delay between polls of a feed that had no new rows.
  std::int64_t poll_ms = 20;
  /// Follow mode: consecutive idle polls before declaring the feed dead.
  /// Before the pipeline's experiment phase an idle feed is fatal (there
  /// is nothing to finalize); mid-experiment the watchdog instead forces
  /// every pool to FAILSAFE, aborts the pending reduction experiment, and
  /// returns a clean degraded result.
  std::size_t max_idle_polls = 250;
  /// Runs the degraded-input delivery layer (fault injection surface,
  /// per-pool health state machine, gap healing, quarantine accounting)
  /// even when the spec declares no [fault] sections. Specs *with* faults
  /// always run it; fault-free un-hardened serves bypass it entirely,
  /// which is what keeps their summaries byte-identical to the era before
  /// the layer existed. Follow mode always hardens its tailer (malformed
  /// and misordered rows are quarantined, not fatal).
  bool harden = false;
  /// Gaps up to this long backfill transparently on resume (seasonal
  /// value a day back when available, else last value) and the pool
  /// returns to NOMINAL. Default: 15 minutes.
  telemetry::SimTime heal_budget_seconds = 900;
  /// A pool dark beyond this enters FAILSAFE: the last-known-good plan is
  /// replaced by the full pool and a pending RSM experiment is aborted
  /// back to its starting serving count. Default: 4 hours.
  telemetry::SimTime staleness_budget_seconds = 14400;
};

/// Sink for the per-window report lines and lifecycle events. Lines are
/// newline-free; the emitter appends its own framing.
using EmitFn = std::function<void(const std::string& line)>;

struct ServeResult {
  /// The completed pipeline outcome — format_summary(result) is
  /// byte-identical to the batch run of the same spec.
  ScenarioRunResult result;
  std::string summary;             ///< format_summary(result).
  std::size_t windows = 0;         ///< Feed windows ingested.
  std::size_t reports = 0;         ///< Per-pool report lines emitted.
  std::size_t resident_samples = 0;  ///< Store samples at completion.
  std::size_t evicted_samples = 0;   ///< Retention-evicted samples.
  /// True when the degraded-input delivery layer ran (spec faults,
  /// --harden, or follow mode).
  bool health_active = false;
  /// True when anything was healed, quarantined, or degraded — the CLI
  /// maps this to a dedicated exit code.
  bool degraded = false;
  /// HealthMonitor::format_report() at completion (empty when the layer
  /// was inactive). For simulated fault runs this is deterministic and
  /// thread-count invariant — golden-pinned; follow-mode reports depend
  /// on wall-clock poll timing and are not.
  std::string health_report;
};

class ServeRunner {
 public:
  explicit ServeRunner(ServeOptions options = {});

  /// Simulated feed: builds the scenario's fleet and steps it one window
  /// at a time, re-emitting per-pool reports each window and advancing the
  /// pipeline stages as their data arrives. Returns once the pipeline (and
  /// any extra_days of steady-state monitoring) completes. Throws what the
  /// batch runner throws for an invalid spec.
  [[nodiscard]] ServeResult serve(const ScenarioSpec& spec,
                                  const EmitFn& emit) const;

  /// Live trace feed: tails the pool CSVs of a trace directory (the
  /// export-trace layout, see scenario/trace.h) as they grow on disk,
  /// feeding new complete rows into the same streaming pipeline. The
  /// manifest and scenario file must exist when follow() starts; pool
  /// CSVs may grow (partial trailing lines are left for the next poll).
  /// The tailer is hardened: malformed rows, duplicated or reordered
  /// window_starts, and non-finite values are quarantined (skipped and
  /// counted per pool) rather than fatal — header and manifest errors
  /// stay fatal, and the strict batch path (`run --trace`) is untouched.
  /// Completes when the pipeline finishes. A feed idle for max_idle_polls
  /// before the experiment phase throws std::runtime_error; idle
  /// mid-experiment, the watchdog degrades every pool to FAILSAFE, aborts
  /// the reduction experiment, and returns a clean degraded result.
  /// Throws std::runtime_error with the trace diagnostics for a malformed
  /// manifest or header.
  [[nodiscard]] ServeResult follow(const std::string& trace_dir,
                                   const EmitFn& emit) const;

  [[nodiscard]] const ServeOptions& options() const noexcept {
    return options_;
  }

 private:
  ServeOptions options_;
};

}  // namespace headroom::scenario
