// Scenario file format: parse and canonical serialization.
//
// The format is a small self-contained INI dialect — sections of
// `key = value` lines, full-line `#` comments, no external dependencies:
//
//   [scenario]            # name/seed/days/threads/steps/window_seconds
//   [fleet]               # kind + topology knobs
//   [datacenter N]        # optional per-DC overrides (repeatable)
//   [pool DC POOL]        # optional per-pool overrides (repeatable)
//   [event]               # one timeline event (repeatable)
//   [assert]              # one `expect = metric OP value` (repeatable)
//
// Malformed input never throws: parse_scenario returns a ParseResult whose
// `error` carries a precise "<source>:<line>: message" diagnostic.
// serialize_scenario emits a canonical form that parses back to an equal
// spec (doubles are printed round-trip exact).
#pragma once

#include <string>
#include <string_view>

#include "scenario/scenario_spec.h"

namespace headroom::scenario {

struct ParseResult {
  ScenarioSpec spec;
  std::string error;  ///< Empty on success.

  [[nodiscard]] bool ok() const noexcept { return error.empty(); }
};

/// Parses scenario text. `source_name` prefixes diagnostics (file name).
[[nodiscard]] ParseResult parse_scenario(std::string_view text,
                                         std::string_view source_name = "scenario");

/// Reads and parses a scenario file.
[[nodiscard]] ParseResult load_scenario_file(const std::string& path);

/// Canonical text form: parse_scenario(serialize_scenario(s)).spec == s
/// for any spec that passes validate().
[[nodiscard]] std::string serialize_scenario(const ScenarioSpec& spec);

}  // namespace headroom::scenario
