// Deterministic telemetry fault injection.
//
// Faults model the failure classes real telemetry pipelines produce —
// gaps, NaN bursts, duplicated/reordered windows, corrupt rows, stalled
// feeds, clock skew — without ever touching the simulator's ground truth.
// The injector sits between the fleet's metric store and the serve
// pipeline's *delivered* store: each window's true pool-scope samples pass
// through it and come out dropped, poisoned, reordered, buffered, or
// skewed according to the spec's `[fault]` sections. Every decision is a
// pure function of (seed, fault index, window index), so injection is
// thread-count invariant and byte-reproducible.
//
// corrupt_trace_csvs() is the follow-mode twin: it applies the same fault
// classes to the pool CSVs of an exported trace directory at the row
// level, producing the damaged files a misbehaving trace writer would.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/scenario_spec.h"
#include "telemetry/metrics.h"

namespace headroom::scenario {

/// One (series, time, value) tuple in the delivery stream between the
/// simulator and the health monitor.
struct DeliveredSample {
  telemetry::SeriesKey key;
  telemetry::SimTime time = 0;
  double value = 0.0;
};

class FaultInjector {
 public:
  /// Precomputes the window-aligned fault ranges from `spec.faults`.
  explicit FaultInjector(const ScenarioSpec& spec);

  /// True when the spec declares at least one fault (the serve path keeps
  /// the delivery layer entirely out of the loop otherwise).
  [[nodiscard]] bool active() const noexcept { return !ranges_.empty(); }

  /// Transforms pool (dc, pool)'s true samples for grid window `t` into
  /// the delivered stream. On entry `samples` holds the window's true
  /// tuples; on exit it holds what the feed actually delivers — possibly
  /// empty (gap, stall, held for reordering) or carrying earlier windows
  /// (stall catch-up, reorder release) ahead of or behind the current one.
  void deliver(std::uint32_t datacenter, std::uint32_t pool,
               telemetry::SimTime t, std::vector<DeliveredSample>* samples);

 private:
  struct Range {
    FaultKind kind = FaultKind::kTelemetryGap;
    bool global = false;  ///< feed_stall: every pool.
    std::uint32_t datacenter = 0;
    std::uint32_t pool = 0;
    telemetry::SimTime begin = 0;  ///< Inclusive, in sim seconds.
    telemetry::SimTime end = 0;    ///< Exclusive.
    telemetry::SimTime skew = 0;   ///< clock_skew offset, in sim seconds.
    std::size_t index = 0;         ///< Position in spec.faults (hash salt).
  };

  [[nodiscard]] bool applies(const Range& r, std::uint32_t dc,
                             std::uint32_t pool,
                             telemetry::SimTime t) const noexcept {
    return t >= r.begin && t < r.end &&
           (r.global || (r.datacenter == dc && r.pool == pool));
  }

  std::vector<Range> ranges_;
  std::uint64_t seed_ = 0;
  telemetry::SimTime window_ = 120;
  /// Per-pool buffers, keyed dc * 64 + pool: windows frozen by feed_stall
  /// (released in order at stall end) and the swap slot out_of_order uses.
  std::vector<std::pair<std::uint64_t, std::vector<DeliveredSample>>> held_;
  std::vector<std::pair<std::uint64_t, std::vector<DeliveredSample>>> swap_;

  std::vector<DeliveredSample>& slot(
      std::vector<std::pair<std::uint64_t, std::vector<DeliveredSample>>>& v,
      std::uint64_t key);
};

/// Applies the spec's faults to an exported trace directory's pool CSVs in
/// place, at the row level: telemetry_gap drops rows, nan_burst poisons
/// values, duplicate_window repeats rows, out_of_order_window swaps
/// adjacent rows, corrupt_row replaces a row with garbage text, clock_skew
/// shifts window_start off the grid. feed_stall has no static-file
/// equivalent (it is writer behavior) and is ignored. Returns the number
/// of rows changed, dropped, or added; throws std::runtime_error on IO
/// failure.
std::size_t corrupt_trace_csvs(const std::string& dir,
                               const ScenarioSpec& spec);

}  // namespace headroom::scenario
