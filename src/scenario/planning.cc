#include "scenario/planning.h"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "query/query_engine.h"
#include "scenario/pipeline_session.h"
#include "scenario/scenario_runner.h"
#include "scenario/trace.h"
#include "sim/failover.h"
#include "sim/fleet.h"
#include "telemetry/csv.h"

namespace headroom::scenario {

namespace {

/// Default policy sweep: every implemented failover world.
std::vector<sim::FailoverPolicyKind> default_policies() {
  return {sim::FailoverPolicyKind::kNearestSurvivor,
          sim::FailoverPolicyKind::kLatencyAware,
          sim::FailoverPolicyKind::kCostAware};
}

/// Distinct outage-event target DCs of the spec's timeline, sorted. An
/// outage event without a datacenter (all-DC) contributes nothing: there
/// are no survivors to stress.
std::vector<std::uint32_t> outage_targets(const ScenarioSpec& spec) {
  std::vector<std::uint32_t> out;
  for (const ScenarioEvent& e : spec.events) {
    if (e.kind != ScenarioEventKind::kDatacenterOutage || !e.datacenter) {
      continue;
    }
    out.push_back(*e.datacenter);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

/// Per-DC stress multipliers for "DC f permanently dark under policy P":
/// seeds the policy's redistribution with the DCs' demand weights (regional
/// demand is weight-proportional), so survivor s comes back as
/// weight_s + share(f->s) * weight_f, i.e. multiplier = after / weight.
std::vector<PlanStress> outage_stresses(
    const std::vector<sim::DatacenterConfig>& datacenters,
    sim::FailoverPolicyKind policy, std::uint32_t failed) {
  const std::size_t n = datacenters.size();
  std::vector<double> demand(n, 0.0);
  std::vector<std::uint8_t> down(n, 0);
  for (std::size_t d = 0; d < n; ++d) demand[d] = datacenters[d].demand_weight;
  down[failed] = 1;
  const auto impl = sim::make_failover_policy(policy, datacenters);
  impl->redistribute(down, demand);

  std::vector<PlanStress> stresses;
  for (std::size_t d = 0; d < n; ++d) {
    if (d == failed) continue;
    const double weight = datacenters[d].demand_weight;
    if (weight <= 0.0) continue;
    const double multiplier = demand[d] / weight;
    if (multiplier == 1.0) continue;  // untouched survivor
    stresses.push_back({static_cast<std::uint32_t>(d), multiplier});
  }
  return stresses;
}

/// The sweep and forecasts shared by scenario and trace mode: everything
/// downstream of the telemetry store.
void forecast_cases(const sim::FleetConfig& config,
                    const sim::MicroserviceCatalog& catalog,
                    const telemetry::MetricStore& store, PlanResult& result) {
  const query::QueryEngine engine(&store);
  const ScenarioSpec& spec = result.spec;
  const PlanOptions& options = result.options;

  result.datacenters = config.datacenters.size();
  result.outage_datacenters = outage_targets(spec);
  for (const sim::DatacenterConfig& dc : config.datacenters) {
    result.total_pools += dc.pools.size();
  }

  std::vector<double> growths = options.growths;
  std::sort(growths.begin(), growths.end());
  growths.erase(std::unique(growths.begin(), growths.end()), growths.end());
  if (growths.empty()) growths.push_back(1.0);
  const std::vector<sim::FailoverPolicyKind> policies =
      options.policies.empty() ? default_policies() : options.policies;

  // Case order is the report order: growth-major, then policy, then the
  // baseline (no outage) before each outage target.
  for (const double growth : growths) {
    for (const sim::FailoverPolicyKind policy : policies) {
      for (std::size_t c = 0; c <= result.outage_datacenters.size(); ++c) {
        PlanCase plan_case;
        plan_case.growth = growth;
        plan_case.policy = policy;
        if (c > 0) {
          plan_case.has_outage = true;
          plan_case.outage_datacenter = result.outage_datacenters[c - 1];
          plan_case.stresses = outage_stresses(
              config.datacenters, policy, plan_case.outage_datacenter);
        }

        for (std::uint32_t d = 0; d < config.datacenters.size(); ++d) {
          if (plan_case.has_outage && d == plan_case.outage_datacenter) {
            continue;  // the dark DC's pools drop out of this case
          }
          double stress = 1.0;
          for (const PlanStress& s : plan_case.stresses) {
            if (s.datacenter == d) stress = s.multiplier;
          }
          const sim::DatacenterConfig& dc = config.datacenters[d];
          for (std::uint32_t p = 0; p < dc.pools.size(); ++p) {
            core::CapacityForecastOptions fopt;
            fopt.window_seconds = spec.window_seconds;
            fopt.horizon_seconds = options.horizon_seconds;
            fopt.critical_seconds =
                std::min<telemetry::SimTime>(30 * 86400,
                                             options.horizon_seconds);
            fopt.growth_multiplier = growth * stress;
            const core::CapacityForecaster forecaster(&engine, fopt);
            core::CapacityForecaster::PoolSpec pool_spec;
            pool_spec.datacenter = d;
            pool_spec.pool = p;
            pool_spec.servers = dc.pools[p].servers;
            pool_spec.target_rps_per_server =
                catalog.by_name(dc.pools[p].service).target_rps_per_server_p95;
            plan_case.pools.push_back(
                forecaster.forecast_pool(pool_spec, 0, result.history_end));
          }
        }
        result.cases.push_back(std::move(plan_case));
      }
    }
  }
  if (!result.cases.empty() && !result.cases.front().pools.empty()) {
    result.windows = result.cases.front().pools.front().windows_observed;
  }
}

void check_plannable(const ScenarioSpec& spec) {
  const std::string problem = validate(spec);
  if (!problem.empty()) {
    throw std::invalid_argument("plan: " + problem);
  }
  if (spec.quiescent_dead_band > 0.0) {
    throw std::invalid_argument(
        "plan: scenario '" + spec.name +
        "' uses a quiescent dead band (approximate stepping); its plan "
        "report is not golden-pinnable");
  }
}

void check_options(const PlanOptions& options) {
  if (options.horizon_seconds <= 0) {
    throw std::invalid_argument("plan: horizon must be positive");
  }
  for (const double g : options.growths) {
    if (g <= 0.0) {
      throw std::invalid_argument("plan: growth multipliers must be positive");
    }
  }
}

}  // namespace

PlanResult run_plan(const ScenarioSpec& spec, const PlanOptions& options) {
  check_plannable(spec);
  check_options(options);

  PlanResult result;
  result.spec = spec;
  result.options = options;
  result.source = "scenario";
  result.history_end = spec.days * kDaySeconds;

  // Observation phase, exactly as `headroom run` executes it.
  const sim::MicroserviceCatalog catalog;
  sim::FleetConfig config = ScenarioRunner::build_fleet(spec, catalog);
  sim::FleetSimulator fleet(std::move(config), catalog);
  result.thread_count = fleet.thread_count();
  apply_serving_reductions(fleet, spec, result.history_end,
                           /*step_to_events=*/true);
  fleet.run_until(result.history_end);
  fleet.finish_day();

  forecast_cases(fleet.config(), catalog, fleet.store(), result);
  return result;
}

PlanResult run_plan_on_trace(const std::string& dir,
                             const PlanOptions& options) {
  check_options(options);
  TraceFeedInfo info;
  const std::string problem = load_trace_feed(dir, &info);
  if (!problem.empty()) {
    throw std::runtime_error(problem);
  }
  check_plannable(info.spec);

  PlanResult result;
  result.spec = info.spec;
  result.options = options;
  result.source = "trace";
  result.history_end = info.spec.days * kDaySeconds;

  telemetry::MetricStore store;
  for (const TracePoolFeed& feed : info.pools) {
    std::ifstream in(feed.path);
    if (!in) {
      throw std::runtime_error(feed.path + ": cannot open pool trace");
    }
    const telemetry::CsvReadResult read = telemetry::read_pool_csv(
        in, feed.path, &store, feed.datacenter, feed.pool);
    if (!read.ok()) {
      throw std::runtime_error(read.error);
    }
  }

  const sim::MicroserviceCatalog catalog;
  const sim::FleetConfig config =
      ScenarioRunner::build_fleet(info.spec, catalog);
  forecast_cases(config, catalog, store, result);
  return result;
}

std::string format_plan(const PlanResult& result) {
  const auto fmt = [](double v) { return telemetry::format_double(v); };
  std::string out;
  out += "plan = " + result.spec.name + "\n";
  out += "source = " + result.source + "\n";
  out += "seed = " + std::to_string(result.spec.seed) + "\n";
  out += "days = " + std::to_string(result.spec.days) + "\n";
  out += "window_seconds = " + std::to_string(result.spec.window_seconds) +
         "\n";
  out += "windows = " + std::to_string(result.windows) + "\n";
  out += "horizon_seconds = " +
         std::to_string(result.options.horizon_seconds) + "\n";
  out += "failover = " + sim::to_string(result.spec.failover) + "\n";
  out += "datacenters = " + std::to_string(result.datacenters) + "\n";
  out += "pools = " + std::to_string(result.total_pools) + "\n";
  out += "outage_cases = " + std::to_string(result.outage_datacenters.size()) +
         "\n";
  out += "cases = " + std::to_string(result.cases.size()) + "\n";
  for (const PlanCase& c : result.cases) {
    out += "case growth = " + fmt(c.growth);
    out += " failover = " + sim::to_string(c.policy);
    out += " outage = ";
    out += c.has_outage ? std::to_string(c.outage_datacenter) : "none";
    out += " pools = " + std::to_string(c.pools.size());
    out += "\n";
    for (const PlanStress& s : c.stresses) {
      out += "stress dc=" + std::to_string(s.datacenter) +
             " multiplier = " + fmt(s.multiplier) + "\n";
    }
    out += core::format_capacity_forecasts(c.pools);
  }
  return out;
}

}  // namespace headroom::scenario
