#include "scenario/pipeline_session.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/metric_validator.h"
#include "core/pool_model.h"
#include "core/server_grouper.h"
#include "stats/percentile.h"
#include "workload/synthetic.h"

namespace headroom::scenario {

telemetry::SimTime hours_to_sim(double hours) noexcept {
  return static_cast<telemetry::SimTime>(std::llround(hours * 3600.0));
}

std::vector<ScenarioEvent> sorted_reductions(const ScenarioSpec& spec) {
  std::vector<ScenarioEvent> reductions;
  for (const ScenarioEvent& e : spec.events) {
    if (e.kind == ScenarioEventKind::kServingReduction) reductions.push_back(e);
  }
  std::stable_sort(reductions.begin(), reductions.end(),
                   [](const ScenarioEvent& a, const ScenarioEvent& b) {
                     return a.start_hour < b.start_hour;
                   });
  return reductions;
}

void apply_serving_reductions(sim::FleetSimulator& fleet,
                              const ScenarioSpec& spec,
                              telemetry::SimTime horizon,
                              bool step_to_events) {
  for (const ScenarioEvent& e : sorted_reductions(spec)) {
    const telemetry::SimTime at = hours_to_sim(e.start_hour);
    if (at >= horizon) {
      throw std::invalid_argument(
          "scenario: serving_reduction at hour " +
          std::to_string(e.start_hour) + " is past the observation window");
    }
    const std::size_t pool_size = fleet.pool_size(*e.datacenter, *e.pool);
    if (e.serving > pool_size) {
      throw std::invalid_argument(
          "scenario: serving_reduction to " + std::to_string(e.serving) +
          " exceeds pool size " + std::to_string(pool_size));
    }
    if (step_to_events) fleet.run_until(at);
    fleet.set_serving_count(*e.datacenter, *e.pool, e.serving);
  }
}

void compute_environment_metrics(const sim::FleetSimulator& fleet,
                                 const ScenarioSpec& spec,
                                 std::map<std::string, double>& metrics) {
  // Event-free baseline demand oracle the event metrics are measured
  // against. This is a pure function of the diurnal params and the DC
  // weights/timezones (exactly what FleetSimulator::regional_demands
  // computes when no event is active), so it needs no second simulator.
  const sim::FleetConfig& config = fleet.config();
  std::vector<workload::DiurnalTraffic> baseline_traffic;
  baseline_traffic.reserve(config.datacenters.size());
  for (const sim::DatacenterConfig& dc : config.datacenters) {
    workload::DiurnalParams params = config.diurnal;
    params.peak_rps = config.diurnal.peak_rps * dc.demand_weight;
    params.timezone_offset_hours = dc.timezone_offset_hours;
    baseline_traffic.emplace_back(params);
  }

  const telemetry::SimTime horizon = spec.days * kDaySeconds;

  metrics["datacenters"] = static_cast<double>(config.datacenters.size());
  metrics["total_pools"] = static_cast<double>(fleet.total_pools());
  metrics["total_servers"] = static_cast<double>(fleet.total_servers());
  metrics["serving_final"] = static_cast<double>(fleet.serving_count(0, 0));

  double max_ratio = 1.0;
  std::vector<double> survivor_max_ratio(config.datacenters.size(), 0.0);
  bool any_outage_window = false;
  for (telemetry::SimTime t = 0; t < horizon; t += spec.window_seconds) {
    bool any_down = false;
    for (std::uint32_t d = 0; d < config.datacenters.size(); ++d) {
      if (config.events.datacenter_down(t, d)) any_down = true;
    }
    for (std::uint32_t d = 0; d < config.datacenters.size(); ++d) {
      const double base = baseline_traffic[d].demand(t);
      if (base <= 1e-9) continue;
      const double ratio = fleet.datacenter_demand(t, d) / base;
      max_ratio = std::max(max_ratio, ratio);
      if (any_down && !config.events.datacenter_down(t, d)) {
        any_outage_window = true;
        survivor_max_ratio[d] = std::max(survivor_max_ratio[d], ratio);
      }
    }
  }
  metrics["max_traffic_ratio"] = max_ratio;
  double median_increase = 0.0;
  double max_increase = 0.0;
  if (any_outage_window) {
    std::vector<double> increases;
    for (const double ratio : survivor_max_ratio) {
      if (ratio > 0.0) increases.push_back((ratio - 1.0) * 100.0);
    }
    std::sort(increases.begin(), increases.end());
    if (!increases.empty()) {
      median_increase = increases[increases.size() / 2];
      max_increase = increases.back();
    }
  }
  metrics["median_survivor_increase_pct"] = median_increase;
  metrics["max_survivor_increase_pct"] = max_increase;
}

void evaluate_assertions(const ScenarioSpec& spec, ScenarioRunResult& result) {
  for (const ScenarioAssertion& assertion : spec.assertions) {
    AssertionOutcome outcome;
    outcome.assertion = assertion;
    const auto it = result.metrics.find(assertion.metric);
    if (it == result.metrics.end()) {
      outcome.observed = std::numeric_limits<double>::quiet_NaN();
      outcome.pass = false;
    } else {
      outcome.observed = it->second;
      outcome.pass = assertion.holds(it->second);
    }
    result.assertions_pass = result.assertions_pass && outcome.pass;
    result.assertions.push_back(outcome);
  }
}

void compute_pool_assertion_metrics(const telemetry::MetricStore& store,
                                    const ScenarioSpec& spec,
                                    std::map<std::string, double>& metrics) {
  using telemetry::MetricKind;
  const telemetry::SimTime horizon = spec.days * kDaySeconds;
  for (const ScenarioAssertion& assertion : spec.assertions) {
    std::string error;
    const std::optional<PoolMetricRef> ref =
        parse_pool_metric(assertion.metric, &error);
    if (!ref) continue;  // Flat registry metric; not ours to resolve.
    if (metrics.count(assertion.metric) != 0) continue;

    MetricKind kind = MetricKind::kRequestsPerSecond;
    enum class Agg { kPeak, kMean, kMin } agg = Agg::kPeak;
    if (ref->base == "peak_rps") {
      kind = MetricKind::kRequestsPerSecond;
    } else if (ref->base == "mean_rps") {
      kind = MetricKind::kRequestsPerSecond;
      agg = Agg::kMean;
    } else if (ref->base == "peak_cpu_pct") {
      kind = MetricKind::kCpuPercentAttributed;
    } else if (ref->base == "mean_cpu_pct") {
      kind = MetricKind::kCpuPercentAttributed;
      agg = Agg::kMean;
    } else if (ref->base == "peak_p95_ms") {
      kind = MetricKind::kLatencyP95Ms;
    } else if (ref->base == "mean_p95_ms") {
      kind = MetricKind::kLatencyP95Ms;
      agg = Agg::kMean;
    } else if (ref->base == "max_active_servers") {
      kind = MetricKind::kActiveServers;
    } else if (ref->base == "min_active_servers") {
      kind = MetricKind::kActiveServers;
      agg = Agg::kMin;
    } else {
      continue;  // validate() already rejected unknown bases.
    }

    const std::span<const double> values =
        store.pool_series(ref->datacenter, ref->pool, kind)
            .values_between(0, horizon);
    // A pool with no observation-phase samples stays unresolved and the
    // assertion fails as NaN, exactly like any other missing metric.
    if (values.empty()) continue;
    double out = values[0];
    if (agg == Agg::kMean) {
      double sum = 0.0;
      for (const double v : values) sum += v;
      out = sum / static_cast<double>(values.size());
    } else if (agg == Agg::kPeak) {
      for (const double v : values) out = std::max(out, v);
    } else {
      for (const double v : values) out = std::min(out, v);
    }
    metrics[assertion.metric] = out;
  }
}

telemetry::MetricStore truncate_store(const telemetry::MetricStore& full,
                                      telemetry::SimTime end) {
  telemetry::MetricStore out;
  telemetry::MetricBuffer buffer;
  for (const telemetry::SeriesKey& key : full.keys()) {
    const telemetry::SeriesView view =
        full.series(key).slice(std::numeric_limits<telemetry::SimTime>::min(),
                               end);
    for (std::size_t i = 0; i < view.size(); ++i) {
      buffer.record(key, view.time_at(i), view.value_at(i));
    }
    out.merge(buffer);
    buffer.clear();
  }
  return out;
}

PipelineSession::PipelineSession(const ScenarioSpec& spec, PipelineContext ctx)
    : spec_(spec), ctx_(ctx) {
  if (ctx_.store == nullptr) {
    throw std::invalid_argument("PipelineSession: null store");
  }
  if (ctx_.backend == nullptr) {
    throw std::invalid_argument("PipelineSession: null backend");
  }
}

void PipelineSession::run_measure_and_plan(ScenarioRunResult& result) {
  using telemetry::MetricKind;
  const telemetry::MetricStore& store = *ctx_.store;

  // --- Step 1: Measure ------------------------------------------------------
  if (spec_.runs(PipelineStep::kMeasure)) {
    const core::MetricValidator validator;
    const MetricKind resources[] = {MetricKind::kCpuPercentAttributed,
                                    MetricKind::kNetworkBytesPerSecond,
                                    MetricKind::kMemoryPagesPerSecond,
                                    MetricKind::kDiskQueueLength};
    result.assessments = validator.assess_all(
        store, 0, 0, MetricKind::kRequestsPerSecond, resources);
    result.metric_valid = validator.workload_metric_valid(result.assessments);
    result.metrics["metric_valid"] = result.metric_valid ? 1.0 : 0.0;
    const auto limiting = validator.limiting_resource(result.assessments);
    result.metrics["limiting_r2"] = limiting ? limiting->fit.r_squared : 0.0;

    std::int64_t last_day = 0;
    for (const auto& day : ctx_.server_days) {
      if (day.datacenter == 0 && day.pool == 0) {
        last_day = std::max(last_day, day.day);
      }
    }
    const auto snapshots = core::ServerGrouper::pool_snapshots(
        ctx_.server_days, 0, 0, last_day);
    result.grouping = core::ServerGrouper().group_servers(snapshots);
    result.metrics["server_groups"] =
        static_cast<double>(result.grouping.group_count);
    result.metrics["multimodal"] = result.grouping.multimodal() ? 1.0 : 0.0;
  }

  // --- Step 2a: Optimize — the headroom plan -------------------------------
  if (spec_.runs(PipelineStep::kOptimize)) {
    const auto model = core::PoolResponseModel::fit(
        store.pool_scatter(0, 0, MetricKind::kRequestsPerSecond,
                           MetricKind::kCpuPercentAttributed),
        store.pool_scatter(0, 0, MetricKind::kRequestsPerSecond,
                           MetricKind::kLatencyP95Ms));
    const auto rps =
        store.pool_series(0, 0, MetricKind::kRequestsPerSecond).values();
    const double p95_rps = stats::percentile(rps, 95.0);
    core::HeadroomPolicy policy;
    policy.qos.latency.p95_ms = ctx_.latency_slo_ms;
    policy.dr_headroom_fraction =
        ctx_.datacenter_count > 1
            ? 1.0 / static_cast<double>(ctx_.datacenter_count)
            : 0.125;
    const std::size_t current = ctx_.backend->serving_count();
    result.plan =
        core::HeadroomOptimizer(policy).plan(model, p95_rps, current);
    result.metrics["plan_current"] =
        static_cast<double>(result.plan.current_servers);
    result.metrics["plan_recommended"] =
        static_cast<double>(result.plan.recommended_servers);
    result.metrics["plan_savings_pct"] =
        result.plan.efficiency_savings() * 100.0;
    result.metrics["plan_stressed_latency_ms"] =
        result.plan.predicted_latency_stressed_ms;
  }
}

void PipelineSession::start_rsm(const core::ExperimentObservations* seed) {
  if (rsm_started_) {
    throw std::logic_error("PipelineSession::start_rsm: already started");
  }
  rsm_started_ = true;
  if (!spec_.runs(PipelineStep::kOptimize)) return;

  // --- Step 2b: Optimize — the RSM reduction experiment ---------------------
  core::RsmOptions rsm;
  rsm.latency_slo_ms = ctx_.latency_slo_ms;
  rsm.baseline_duration = kDaySeconds;
  rsm.iteration_duration = kDaySeconds;
  rsm.max_iterations = 4;
  rsm_.emplace(rsm, ctx_.backend);
  if (seed != nullptr) rsm_->seed_baseline(*seed);
}

bool PipelineSession::advance_rsm() {
  if (!rsm_started_) {
    throw std::logic_error("PipelineSession::advance_rsm: not started");
  }
  if (!rsm_) return true;
  return rsm_->advance();
}

void PipelineSession::abort_rsm_failsafe() {
  if (rsm_ && !rsm_->done()) rsm_->abort_failsafe();
}

void PipelineSession::finalize(ScenarioRunResult& result) {
  if (!rsm_started_ || (rsm_ && !rsm_->done())) {
    throw std::logic_error(
        "PipelineSession::finalize: RSM experiment not complete");
  }
  if (rsm_) {
    const bool failsafe = rsm_->aborted();
    result.rsm = rsm_->take_result();
    result.metrics["rsm_start"] =
        static_cast<double>(result.rsm.starting_serving);
    result.metrics["rsm_recommended"] =
        static_cast<double>(result.rsm.recommended_serving);
    result.metrics["rsm_reduction_pct"] =
        result.rsm.reduction_fraction() * 100.0;
    result.metrics["rsm_iterations"] =
        static_cast<double>(result.rsm.iterations.size());
    result.metrics["rsm_slo_limited"] =
        result.rsm.slo_limit_reached ? 1.0 : 0.0;
    // Emitted only on failsafe abort so fault-free summaries (and every
    // existing golden) are byte-identical to runs built before the
    // degradation layer existed.
    if (failsafe) result.metrics["rsm_failsafe"] = 1.0;
  }

  // --- Step 3: Model --------------------------------------------------------
  std::optional<workload::SyntheticWorkload> fitted;
  if (spec_.runs(PipelineStep::kModel) ||
      spec_.runs(PipelineStep::kValidate)) {
    workload::RequestType fetch;
    fetch.weight = 0.75;
    fetch.cost_mean = 1.0;
    fetch.cost_sigma = 0.25;
    workload::RequestType render;
    render.weight = 0.25;
    render.cost_mean = 3.2;
    render.cost_sigma = 0.4;
    render.dependency_latency_ms = 12.0;
    const workload::SyntheticWorkload production{
        workload::RequestMix({fetch, render})};
    const auto observed = production.generate(500.0, 120.0, spec_.seed + 6);
    fitted = workload::SyntheticWorkload::fit(observed, 2);
    if (spec_.runs(PipelineStep::kModel)) {
      const auto replay = fitted->generate(500.0, 120.0, spec_.seed + 8);
      result.model_cmp =
          workload::SyntheticWorkload::compare(replay, observed, 2);
      result.metrics["model_equivalent"] =
          result.model_cmp.equivalent ? 1.0 : 0.0;
      result.metrics["model_type_distance"] = result.model_cmp.type_distance;
    }
  }

  // --- Step 4: Validate -----------------------------------------------------
  if (spec_.runs(PipelineStep::kValidate) && fitted) {
    sim::RequestSimConfig pool;
    pool.servers = 4;
    pool.cores = 8.0;
    pool.base_service_ms = 4.0;
    pool.window_seconds = 10;
    sim::RequestSimConfig candidate = pool;
    candidate.defect.service_factor = 1.18;

    core::GateOptions gate_opt;
    gate_opt.nominal_rps_per_server = 500.0;
    gate_opt.step_duration_s = 20.0;
    result.gate =
        core::RegressionGate(gate_opt).evaluate(pool, candidate, *fitted);
    result.metrics["gate_blocked"] = result.gate.pass ? 0.0 : 1.0;
    result.metrics["gate_max_clean_rps"] = result.gate.max_clean_rps;
  }
}

}  // namespace headroom::scenario
