#include "scenario/serve.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "core/live_feed_backend.h"
#include "core/rolling_plan.h"
#include "query/query_engine.h"
#include "scenario/pipeline_session.h"
#include "scenario/trace.h"
#include "telemetry/csv.h"

namespace headroom::scenario {

namespace {

using telemetry::MetricKind;
using telemetry::SimTime;

/// One pool's rolling-report state: the O(1)-per-window planner plus the
/// identity the report lines carry.
struct PoolStream {
  std::uint32_t dc = 0;
  std::uint32_t pool = 0;
  core::RollingPoolPlanner planner;
};

/// One rolling planner per configured pool, each sized against its own
/// service's SLO — the same policy shape the pipeline's plan step uses.
[[nodiscard]] std::vector<PoolStream> build_streams(
    const sim::FleetConfig& config, const sim::MicroserviceCatalog& catalog,
    const ServeOptions& options) {
  core::RollingPoolPlanner::Options ropt;
  ropt.lookback_windows = options.rolling_lookback_windows;
  ropt.min_windows = options.rolling_min_windows;
  const std::size_t dc_count = config.datacenters.size();
  std::vector<PoolStream> streams;
  for (std::uint32_t d = 0; d < dc_count; ++d) {
    const sim::DatacenterConfig& dc = config.datacenters[d];
    for (std::uint32_t p = 0; p < dc.pools.size(); ++p) {
      core::HeadroomPolicy policy;
      policy.qos.latency.p95_ms =
          catalog.by_name(dc.pools[p].service).latency_slo_ms;
      policy.dr_headroom_fraction =
          dc_count > 1 ? 1.0 / static_cast<double>(dc_count) : 0.125;
      streams.push_back({d, p, core::RollingPoolPlanner(policy, ropt)});
    }
  }
  return streams;
}

/// Emits one report line per pool for the window starting at `t`, feeding
/// each pool's rolling planner along the way. Pools with no sample at `t`
/// (dark the whole window) are skipped. Reads go through the query layer:
/// raw windows come back bit-identical (report lines are golden-pinned),
/// and a window already evicted to the digest tiers still reports its
/// tier-bucket mean instead of going dark.
void emit_window_reports(const telemetry::MetricStore& store,
                         std::vector<PoolStream>& streams, SimTime t,
                         const char* phase, const EmitFn& emit,
                         std::size_t* reports) {
  const query::QueryEngine engine(&store);
  for (PoolStream& s : streams) {
    const auto value_at = [&](MetricKind kind, double* out) {
      const std::optional<double> v = engine.window_value(
          {s.dc, s.pool, telemetry::SeriesKey::kPoolScope, kind}, t);
      if (!v) return false;
      *out = *v;
      return true;
    };
    double rps = 0.0;
    double cpu = 0.0;
    double latency = 0.0;
    double active = 0.0;
    if (!value_at(MetricKind::kRequestsPerSecond, &rps) ||
        !value_at(MetricKind::kCpuPercentAttributed, &cpu) ||
        !value_at(MetricKind::kLatencyP95Ms, &latency) ||
        !value_at(MetricKind::kActiveServers, &active)) {
      continue;
    }
    s.planner.add_window(rps, cpu, latency);
    const auto serving = static_cast<long long>(active);
    std::string line;
    line += "window t=" + std::to_string(t);
    line += " dc=" + std::to_string(s.dc);
    line += " pool=" + std::to_string(s.pool);
    line += " phase=";
    line += phase;
    line += " rps=" + telemetry::format_double(rps);
    line += " cpu_pct=" + telemetry::format_double(cpu);
    line += " p95_ms=" + telemetry::format_double(latency);
    line += " serving=" + std::to_string(serving);
    const std::optional<core::HeadroomPlan> plan =
        s.planner.plan(serving > 0 ? static_cast<std::size_t>(serving) : 0);
    if (plan) {
      line += " plan=" + std::to_string(plan->recommended_servers);
    }
    ++*reports;
    if (emit) emit(line);
  }
}

/// The retention floor a live RSM session needs: every observation it
/// requests spans one day of windows, and the sweep must never evict the
/// head of a span that is still filling. Below this, try_observe would
/// starve forever.
[[nodiscard]] SimTime clamp_retention(SimTime requested, SimTime window) {
  if (requested <= 0) return 0;  // unbounded
  return std::max(requested, kDaySeconds + window);
}

/// Incremental reader of one growing pool CSV: remembers the byte offset
/// reached, ingests only complete new lines each poll (a partial trailing
/// line is carried to the next poll), and enforces the same header/field
/// validation as telemetry::read_pool_csv, with `path:line` diagnostics.
class CsvTailReader {
 public:
  CsvTailReader(std::string path, std::uint32_t datacenter,
                std::uint32_t pool)
      : path_(std::move(path)), datacenter_(datacenter), pool_(pool) {}

  /// Reads newly appended complete rows into `store`. Returns rows
  /// ingested; 0 when the file is absent or has not grown. Throws
  /// std::runtime_error on malformed content.
  std::size_t poll(telemetry::MetricStore* store) {
    std::ifstream in(path_, std::ios::binary);
    if (!in) return 0;  // not written yet — idle, not an error
    in.seekg(offset_);
    std::ostringstream chunk_stream;
    chunk_stream << in.rdbuf();
    const std::string chunk = chunk_stream.str();
    if (chunk.empty()) return 0;
    offset_ += static_cast<std::streamoff>(chunk.size());
    partial_ += chunk;

    std::size_t rows = 0;
    telemetry::MetricBuffer buffer;
    std::size_t begin = 0;
    while (true) {
      const std::size_t nl = partial_.find('\n', begin);
      if (nl == std::string::npos) break;
      std::string line = partial_.substr(begin, nl - begin);
      begin = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      ++line_no_;
      consume_line(line, &buffer, &rows);
    }
    partial_.erase(0, begin);
    if (!buffer.empty()) store->merge(buffer);
    return rows;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw std::runtime_error(path_ + ":" + std::to_string(line_no_) + ": " +
                             message);
  }

  void consume_line(const std::string& line, telemetry::MetricBuffer* buffer,
                    std::size_t* rows) {
    if (keys_.empty()) {
      parse_header(line);
      return;
    }
    if (line.empty()) return;  // tolerate blank lines, like read_pool_csv
    const std::vector<std::string> fields =
        telemetry::split_csv_fields(line, ',');
    if (fields.size() != keys_.size() + 1) {
      fail("expected " + std::to_string(keys_.size() + 1) + " fields, got " +
           std::to_string(fields.size()));
    }
    SimTime t = 0;
    if (!telemetry::parse_int64(fields[0], &t)) {
      fail("bad window_start '" + fields[0] + "' (expected an integer)");
    }
    if (have_last_ && t <= last_time_) {
      fail("window_start " + std::to_string(t) +
           " is not after the previous row (" + std::to_string(last_time_) +
           "); rows must be strictly time-ordered");
    }
    last_time_ = t;
    have_last_ = true;
    for (std::size_t c = 0; c < keys_.size(); ++c) {
      double v = 0.0;
      if (!telemetry::parse_finite_double(fields[c + 1], &v)) {
        fail("bad value '" + fields[c + 1] + "' for column '" +
             std::string(telemetry::to_string(keys_[c].metric)) +
             "' (expected a finite number)");
      }
      buffer->record(keys_[c], t, v);
    }
    ++*rows;
  }

  void parse_header(const std::string& line) {
    const std::vector<std::string> header =
        telemetry::split_csv_fields(line, ',');
    if (header.empty() || header[0] != "window_start") {
      fail("bad header: first column must be 'window_start', got '" +
           (header.empty() ? "" : header[0]) + "'");
    }
    if (header.size() < 2) fail("bad header: no metric columns");
    for (std::size_t c = 1; c < header.size(); ++c) {
      const auto kind = telemetry::metric_from_string(header[c]);
      if (!kind) fail("unknown metric column '" + header[c] + "'");
      const telemetry::SeriesKey key{datacenter_, pool_,
                                     telemetry::SeriesKey::kPoolScope, *kind};
      if (std::find(keys_.begin(), keys_.end(), key) != keys_.end()) {
        fail("duplicate metric column '" + header[c] + "'");
      }
      keys_.push_back(key);
    }
  }

  std::string path_;
  std::uint32_t datacenter_;
  std::uint32_t pool_;
  std::streamoff offset_ = 0;
  std::string partial_;
  std::vector<telemetry::SeriesKey> keys_;
  SimTime last_time_ = 0;
  bool have_last_ = false;
  std::size_t line_no_ = 0;
};

/// End (exclusive) of the target pool's workload feed: last window start
/// plus one window; 0 before any workload arrives.
[[nodiscard]] SimTime target_feed_end(const telemetry::MetricStore& store,
                                      SimTime window) {
  const telemetry::TimeSeries& rps =
      store.pool_series(0, 0, MetricKind::kRequestsPerSecond);
  if (rps.empty()) return 0;
  return rps.time_at(rps.size() - 1) + window;
}

}  // namespace

ServeRunner::ServeRunner(ServeOptions options) : options_(options) {}

ServeResult ServeRunner::serve(const ScenarioSpec& spec,
                               const EmitFn& emit) const {
  const sim::MicroserviceCatalog catalog;
  sim::FleetConfig config = ScenarioRunner::build_fleet(spec, catalog);
  sim::FleetSimulator fleet(std::move(config), catalog);

  ServeResult out;
  out.result.spec = spec;
  out.result.thread_count = fleet.thread_count();

  const SimTime window = spec.window_seconds;
  const SimTime horizon = spec.days * kDaySeconds;

  // Validate every reduction before stepping (the batch path interleaves
  // validation with stepping; failing early keeps the same error surface
  // without wasted simulation).
  const std::vector<ScenarioEvent> reductions = sorted_reductions(spec);
  for (const ScenarioEvent& e : reductions) {
    const SimTime at = hours_to_sim(e.start_hour);
    if (at >= horizon) {
      throw std::invalid_argument(
          "scenario: serving_reduction at hour " +
          std::to_string(e.start_hour) + " is past the observation window");
    }
    const std::size_t pool_size = fleet.pool_size(*e.datacenter, *e.pool);
    if (e.serving > pool_size) {
      throw std::invalid_argument(
          "scenario: serving_reduction to " + std::to_string(e.serving) +
          " exceeds pool size " + std::to_string(pool_size));
    }
  }

  std::vector<PoolStream> streams =
      build_streams(fleet.config(), catalog, options_);

  if (emit) {
    emit("serve phase=observe t=0 horizon=" + std::to_string(horizon));
  }

  // --- Observation phase, one window at a time ----------------------------
  // A reduction lands at the first window boundary at or after its start
  // hour — exactly where the batch path's run_until(at) pauses the fleet.
  std::size_t next_reduction = 0;
  while (fleet.now() < horizon) {
    const SimTime t = fleet.now();
    while (next_reduction < reductions.size() &&
           hours_to_sim(reductions[next_reduction].start_hour) <= t) {
      const ScenarioEvent& e = reductions[next_reduction++];
      fleet.set_serving_count(*e.datacenter, *e.pool, e.serving);
    }
    fleet.run_until(t + window);
    ++out.windows;
    emit_window_reports(fleet.store(), streams, t, "observe", emit,
                        &out.reports);
  }
  fleet.finish_day();

  compute_environment_metrics(fleet, spec, out.result.metrics);
  const std::string& pool_service =
      fleet.config().datacenters[0].pools[0].service;
  out.result.latency_slo_ms = catalog.by_name(pool_service).latency_slo_ms;

  // --- Pipeline over the live feed -----------------------------------------
  core::LiveFeedBackend::Options feed_opt;
  feed_opt.datacenter = 0;
  feed_opt.pool = 0;
  feed_opt.pool_size = fleet.pool_size(0, 0);
  feed_opt.serving = fleet.serving_count(0, 0);
  feed_opt.start = fleet.now();
  feed_opt.window_seconds = window;
  feed_opt.sealed = false;
  // The hook forwards serving changes into the simulator, which produces
  // the active-servers column — validating against it would be circular.
  feed_opt.validate_serving = false;
  feed_opt.label = "headroom serve";
  core::LiveFeedBackend backend(&fleet.store(), feed_opt);
  backend.set_serving_hook([&fleet](std::size_t servers) {
    fleet.set_serving_count(0, 0, servers);
  });

  PipelineContext ctx;
  ctx.store = &fleet.store();
  // Consumed synchronously by run_measure_and_plan below; the simulator
  // appends more rows during the experiment phase, which may reallocate.
  ctx.server_days = fleet.server_day_cpu();
  ctx.backend = &backend;
  ctx.latency_slo_ms = out.result.latency_slo_ms;
  ctx.datacenter_count = fleet.config().datacenters.size();

  PipelineSession session(spec, ctx);
  session.run_measure_and_plan(out.result);

  if (options_.reuse_observation_baseline &&
      spec.runs(PipelineStep::kOptimize)) {
    const core::ExperimentObservations seed = core::observations_between(
        fleet.store(), 0, 0, fleet.now() - kDaySeconds, fleet.now());
    session.start_rsm(&seed);
  } else {
    session.start_rsm();
  }

  // Measure and plan have consumed the full observation history; from here
  // the experiment only reads forward, so the store can roll.
  const SimTime retention = clamp_retention(options_.retention_seconds, window);
  if (retention > 0) fleet.set_store_retention(retention);

  if (emit) {
    emit("serve phase=experiment t=" + std::to_string(fleet.now()) +
         " serving=" + std::to_string(fleet.serving_count(0, 0)));
  }

  while (!session.advance_rsm()) {
    const SimTime t = fleet.now();
    fleet.run_until(t + window);
    ++out.windows;
    emit_window_reports(fleet.store(), streams, t, "experiment", emit,
                        &out.reports);
  }
  session.finalize(out.result);
  evaluate_assertions(spec, out.result);

  // --- Steady-state monitoring (optional) ----------------------------------
  const SimTime steady_end = fleet.now() + options_.extra_days * kDaySeconds;
  while (fleet.now() < steady_end) {
    const SimTime t = fleet.now();
    fleet.run_until(t + window);
    ++out.windows;
    emit_window_reports(fleet.store(), streams, t, "steady", emit,
                        &out.reports);
  }

  out.summary = format_summary(out.result);
  out.resident_samples = fleet.store().sample_count();
  out.evicted_samples = fleet.store().evicted_samples();
  if (emit) {
    emit("serve phase=done t=" + std::to_string(fleet.now()) +
         " windows=" + std::to_string(out.windows) +
         " rsm_recommended=" +
         std::to_string(out.result.rsm.recommended_serving));
  }
  return out;
}

ServeResult ServeRunner::follow(const std::string& trace_dir,
                                const EmitFn& emit) const {
  TraceFeedInfo info;
  const std::string problem = load_trace_feed(trace_dir, &info);
  if (!problem.empty()) throw std::runtime_error(problem);
  const ScenarioSpec& spec = info.spec;

  ServeResult out;
  out.result.spec = spec;

  // Config oracle, never stepped: pool sizes, SLOs, demand curves, and the
  // serving count the reductions leave behind (replay semantics).
  const sim::MicroserviceCatalog catalog;
  sim::FleetConfig config = ScenarioRunner::build_fleet(spec, catalog);
  sim::FleetSimulator fleet(std::move(config), catalog);
  out.result.thread_count = fleet.thread_count();

  const SimTime window = spec.window_seconds;
  const SimTime horizon = spec.days * kDaySeconds;
  const SimTime experiment_start =
      (horizon + window - 1) / window * window;

  apply_serving_reductions(fleet, spec, horizon, /*step_to_events=*/false);
  compute_environment_metrics(fleet, spec, out.result.metrics);
  const std::string& pool_service =
      fleet.config().datacenters[0].pools[0].service;
  out.result.latency_slo_ms = catalog.by_name(pool_service).latency_slo_ms;

  std::vector<PoolStream> streams =
      build_streams(fleet.config(), catalog, options_);

  telemetry::MetricStore feed;
  std::vector<CsvTailReader> tails;
  tails.reserve(info.pools.size());
  for (const TracePoolFeed& pool : info.pools) {
    tails.emplace_back(pool.path, pool.datacenter, pool.pool);
  }

  std::size_t idle_polls = 0;
  const auto ingest = [&]() {
    std::size_t rows = 0;
    for (CsvTailReader& tail : tails) rows += tail.poll(&feed);
    if (rows > 0) {
      idle_polls = 0;
      return true;
    }
    if (++idle_polls > options_.max_idle_polls) {
      throw std::runtime_error(
          "headroom follow: feed in '" + trace_dir + "' went idle after " +
          std::to_string(options_.max_idle_polls) +
          " polls with the pipeline still waiting at t=" +
          std::to_string(target_feed_end(feed, window)));
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.poll_ms > 0 ? options_.poll_ms : 1));
    return false;
  };

  // Reports trail the feed: a window is reported once the target pool's
  // workload covers it (pool CSVs are written jointly per window).
  SimTime reported_to = 0;
  const auto report_new_windows = [&]() {
    const SimTime covered = target_feed_end(feed, window);
    while (reported_to < covered) {
      const char* phase =
          reported_to < experiment_start ? "observe" : "experiment";
      emit_window_reports(feed, streams, reported_to, phase, emit,
                          &out.reports);
      reported_to += window;
      ++out.windows;
    }
  };

  if (emit) {
    emit("serve phase=observe t=0 horizon=" + std::to_string(horizon));
  }

  // --- Fill to the observation horizon -------------------------------------
  while (target_feed_end(feed, window) < experiment_start) {
    if (ingest()) report_new_windows();
  }
  report_new_windows();

  // The measure/plan stages see the recording truncated at the horizon —
  // exactly what the recording run's pipeline saw (replay semantics).
  const telemetry::MetricStore observation = truncate_store(feed, horizon);
  std::vector<sim::ServerDayCpu> observation_days;
  observation_days.reserve(info.server_days.size());
  for (const sim::ServerDayCpu& day : info.server_days) {
    if (day.day < spec.days) observation_days.push_back(day);
  }

  core::LiveFeedBackend::Options feed_opt;
  feed_opt.datacenter = 0;
  feed_opt.pool = 0;
  feed_opt.pool_size = fleet.pool_size(0, 0);
  feed_opt.serving = fleet.serving_count(0, 0);
  feed_opt.start = experiment_start;
  feed_opt.window_seconds = window;
  feed_opt.sealed = false;  // the trace is still growing
  feed_opt.validate_serving = true;  // recorded active_servers is the truth
  feed_opt.label = "headroom follow";
  core::LiveFeedBackend backend(&feed, feed_opt);

  PipelineContext ctx;
  ctx.store = &observation;
  ctx.server_days = observation_days;
  ctx.backend = &backend;
  ctx.latency_slo_ms = out.result.latency_slo_ms;
  ctx.datacenter_count = fleet.config().datacenters.size();

  PipelineSession session(spec, ctx);
  session.run_measure_and_plan(out.result);

  if (options_.reuse_observation_baseline &&
      spec.runs(PipelineStep::kOptimize)) {
    const core::ExperimentObservations seed = core::observations_between(
        feed, 0, 0, experiment_start - kDaySeconds, experiment_start);
    session.start_rsm(&seed);
  } else {
    session.start_rsm();
  }

  const SimTime retention = clamp_retention(options_.retention_seconds, window);
  if (retention > 0) {
    // A complete recording arrives in one poll, putting the watermark days
    // ahead of the RSM cursor; a watermark-driven sweep would evict windows
    // the session has not observed yet and starve it forever. Pin the
    // eviction floor to the slowest consumer before enabling retention.
    feed.set_eviction_floor(std::min(backend.cursor(), reported_to));
    feed.set_retention(retention);
  }

  if (emit) {
    emit("serve phase=experiment t=" + std::to_string(experiment_start) +
         " serving=" + std::to_string(fleet.serving_count(0, 0)));
  }

  // --- Experiment phase: advance whenever the tail grows -------------------
  while (!session.advance_rsm()) {
    if (retention > 0) {
      feed.set_eviction_floor(std::min(backend.cursor(), reported_to));
    }
    if (ingest()) report_new_windows();
  }
  report_new_windows();
  session.finalize(out.result);
  evaluate_assertions(spec, out.result);

  out.summary = format_summary(out.result);
  out.resident_samples = feed.sample_count();
  out.evicted_samples = feed.evicted_samples();
  if (emit) {
    emit("serve phase=done t=" + std::to_string(reported_to) +
         " windows=" + std::to_string(out.windows) +
         " rsm_recommended=" +
         std::to_string(out.result.rsm.recommended_serving));
  }
  return out;
}

}  // namespace headroom::scenario
