#include "scenario/serve.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "core/degradation.h"
#include "core/live_feed_backend.h"
#include "core/rolling_plan.h"
#include "query/query_engine.h"
#include "scenario/fault.h"
#include "scenario/pipeline_session.h"
#include "scenario/trace.h"
#include "telemetry/csv.h"

namespace headroom::scenario {

namespace {

using telemetry::MetricKind;
using telemetry::SimTime;

/// One pool's rolling-report state: the O(1)-per-window planner plus the
/// identity the report lines carry. pool_size / last_serving / last_plan
/// back the degraded path — a dark window reports the held plan (or the
/// whole pool in FAILSAFE) instead of going silent.
struct PoolStream {
  std::uint32_t dc = 0;
  std::uint32_t pool = 0;
  core::RollingPoolPlanner planner;
  std::size_t pool_size = 0;
  long long last_serving = 0;
  std::optional<core::HeadroomPlan> last_plan;
};

/// One rolling planner per configured pool, each sized against its own
/// service's SLO — the same policy shape the pipeline's plan step uses.
[[nodiscard]] std::vector<PoolStream> build_streams(
    const sim::FleetConfig& config, const sim::MicroserviceCatalog& catalog,
    const ServeOptions& options) {
  core::RollingPoolPlanner::Options ropt;
  ropt.lookback_windows = options.rolling_lookback_windows;
  ropt.min_windows = options.rolling_min_windows;
  const std::size_t dc_count = config.datacenters.size();
  std::vector<PoolStream> streams;
  for (std::uint32_t d = 0; d < dc_count; ++d) {
    const sim::DatacenterConfig& dc = config.datacenters[d];
    for (std::uint32_t p = 0; p < dc.pools.size(); ++p) {
      core::HeadroomPolicy policy;
      policy.qos.latency.p95_ms =
          catalog.by_name(dc.pools[p].service).latency_slo_ms;
      policy.dr_headroom_fraction =
          dc_count > 1 ? 1.0 / static_cast<double>(dc_count) : 0.125;
      streams.push_back({d, p, core::RollingPoolPlanner(policy, ropt),
                         dc.pools[p].servers, 0, std::nullopt});
    }
  }
  return streams;
}

/// Emits one report line per pool for the window starting at `t`, feeding
/// each pool's rolling planner along the way. Without a health monitor,
/// pools with no sample at `t` (dark the whole window) are skipped and the
/// line format is exactly the pre-degradation one. With a monitor, every
/// line carries the pool's health mode and tallies, healed windows are
/// discounted by the planner, and a dark pool still reports — holding its
/// last plan, or the whole pool once FAILSAFE. Reads go through the query
/// layer: raw windows come back bit-identical (report lines are
/// golden-pinned), and a window already evicted to the digest tiers still
/// reports its tier-bucket mean instead of going dark.
void emit_window_reports(const telemetry::MetricStore& store,
                         std::vector<PoolStream>& streams, SimTime t,
                         const char* phase, const EmitFn& emit,
                         std::size_t* reports,
                         const core::HealthMonitor* monitor = nullptr) {
  const query::QueryEngine engine(&store);
  for (PoolStream& s : streams) {
    const auto value_at = [&](MetricKind kind, double* out) {
      const std::optional<double> v = engine.window_value(
          {s.dc, s.pool, telemetry::SeriesKey::kPoolScope, kind}, t);
      if (!v) return false;
      *out = *v;
      return true;
    };
    double rps = 0.0;
    double cpu = 0.0;
    double latency = 0.0;
    double active = 0.0;
    const bool lit = value_at(MetricKind::kRequestsPerSecond, &rps) &&
                     value_at(MetricKind::kCpuPercentAttributed, &cpu) &&
                     value_at(MetricKind::kLatencyP95Ms, &latency) &&
                     value_at(MetricKind::kActiveServers, &active);
    const core::DegradationTracker* health =
        monitor != nullptr ? monitor->find(s.dc, s.pool) : nullptr;
    if (!lit && health == nullptr) continue;
    std::string line;
    line += "window t=" + std::to_string(t);
    line += " dc=" + std::to_string(s.dc);
    line += " pool=" + std::to_string(s.pool);
    line += " phase=";
    line += phase;
    if (lit) {
      s.planner.add_window(rps, cpu, latency,
                           health != nullptr && health->window_healed(t));
      const auto serving = static_cast<long long>(active);
      s.last_serving = serving;
      line += " rps=" + telemetry::format_double(rps);
      line += " cpu_pct=" + telemetry::format_double(cpu);
      line += " p95_ms=" + telemetry::format_double(latency);
      line += " serving=" + std::to_string(serving);
      const std::optional<core::HeadroomPlan> plan =
          s.planner.plan(serving > 0 ? static_cast<std::size_t>(serving) : 0);
      if (plan) {
        line += " plan=" + std::to_string(plan->recommended_servers);
        s.last_plan = plan;
      }
    } else {
      // Dark window: the feed delivered nothing for this pool. On stale
      // data capacity is never shrunk — hold the last-known-good plan,
      // and once the staleness budget is gone, fail safe to the full
      // pool (the paper's worst-case headroom posture).
      line += " dark=1 serving=" + std::to_string(s.last_serving);
      if (health->mode() == core::HealthMode::kFailsafe) {
        line += " plan=" + std::to_string(s.pool_size);
      } else if (s.last_plan) {
        line += " plan=" + std::to_string(s.last_plan->recommended_servers);
      }
    }
    if (health != nullptr) {
      line += " mode=";
      line += core::to_string(health->mode());
      line += " healed=" + std::to_string(health->counters().healed);
      line += " quarantined=" +
              std::to_string(health->counters().quarantined_total());
    }
    ++*reports;
    if (emit) emit(line);
  }
}

/// Reads the exact sample recorded at `t`, if any.
[[nodiscard]] bool sample_at(const telemetry::TimeSeries& series, SimTime t,
                             double* out) {
  const std::size_t i = series.first_index_at_or_after(t);
  if (i >= series.size() || series.time_at(i) != t) return false;
  *out = series.value_at(i);
  return true;
}

/// Routes one grid window of true samples from `source` through the fault
/// injector into the health monitor, which sanitizes and writes the
/// delivered store. Pool-scope samples take the fault surface; server-scope
/// rows (per-server accounting) bypass it verbatim — the faults model the
/// pool aggregation pipeline, and the monitor's grid accounting is per
/// pool. Keys are walked in the store's canonical sorted order, so the
/// delivery stream is deterministic at any thread count.
void deliver_window(const telemetry::MetricStore& source, SimTime t,
                    FaultInjector& injector, core::HealthMonitor& monitor,
                    telemetry::MetricStore& delivered) {
  const std::vector<telemetry::SeriesKey> keys = source.keys();
  std::vector<DeliveredSample> samples;
  std::size_t i = 0;
  while (i < keys.size()) {
    if (keys[i].server != telemetry::SeriesKey::kPoolScope) {
      double v = 0.0;
      if (sample_at(source.series(keys[i]), t, &v)) {
        delivered.record(keys[i], t, v);
      }
      ++i;
      continue;
    }
    const std::uint32_t dc = keys[i].datacenter;
    const std::uint32_t pool = keys[i].pool;
    samples.clear();
    while (i < keys.size() && keys[i].datacenter == dc &&
           keys[i].pool == pool &&
           keys[i].server == telemetry::SeriesKey::kPoolScope) {
      double v = 0.0;
      if (sample_at(source.series(keys[i]), t, &v)) {
        samples.push_back({keys[i], t, v});
      }
      ++i;
    }
    injector.deliver(dc, pool, t, &samples);
    for (const DeliveredSample& sample : samples) {
      monitor.ingest(sample.key, sample.time, sample.value);
    }
  }
}

/// The retention floor a live RSM session needs: every observation it
/// requests spans one day of windows, and the sweep must never evict the
/// head of a span that is still filling. Below this, try_observe would
/// starve forever.
[[nodiscard]] SimTime clamp_retention(SimTime requested, SimTime window) {
  if (requested <= 0) return 0;  // unbounded
  return std::max(requested, kDaySeconds + window);
}

/// Parses a double accepting the non-finite spellings strtod does ("nan",
/// "inf") — the hardened tailer lets those through so the health monitor
/// can quarantine them instead of the reader dying on them.
[[nodiscard]] bool parse_any_double(const std::string& field, double* out) {
  if (field.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(field.c_str(), &end);
  if (end != field.c_str() + field.size()) return false;
  *out = v;
  return true;
}

/// Incremental reader of one growing pool CSV: remembers the byte offset
/// reached, ingests only complete new lines each poll (a partial trailing
/// line is carried to the next poll), and enforces the same header/field
/// validation as telemetry::read_pool_csv, with `path:line` diagnostics.
///
/// Two dispositions. Strict (no monitor): any malformed or misordered row
/// throws — replay semantics, a recording must be perfect. Hardened (a
/// HealthMonitor attached): rows route sample-by-sample through the
/// monitor, which quarantines duplicates, reordering, and non-finite
/// values; rows that do not even parse are counted per pool
/// (note_malformed_row) and skipped. Header errors are fatal either way —
/// a wrong schema is a misconfiguration, not line noise.
class CsvTailReader {
 public:
  CsvTailReader(std::string path, std::uint32_t datacenter, std::uint32_t pool,
                core::HealthMonitor* monitor = nullptr)
      : path_(std::move(path)), datacenter_(datacenter), pool_(pool),
        monitor_(monitor) {}

  /// Reads newly appended complete rows into `store` (strict) or through
  /// the monitor (hardened). Returns rows handed on; 0 when the file is
  /// absent or has not grown. Throws std::runtime_error on malformed
  /// content in strict mode. A file that was readable before but fails to
  /// open now counts an IO retry (hardened) and reads as idle — the next
  /// poll is the retry, bounded by the caller's idle watchdog.
  std::size_t poll(telemetry::MetricStore* store) {
    std::ifstream in(path_, std::ios::binary);
    if (!in) {
      if (offset_ > 0 && monitor_ != nullptr) {
        monitor_->note_io_retry(datacenter_, pool_);
      }
      return 0;  // not written yet (or transiently unreadable) — idle
    }
    in.seekg(offset_);
    std::ostringstream chunk_stream;
    chunk_stream << in.rdbuf();
    const std::string chunk = chunk_stream.str();
    if (chunk.empty()) return 0;
    offset_ += static_cast<std::streamoff>(chunk.size());
    partial_ += chunk;

    std::size_t rows = 0;
    telemetry::MetricBuffer buffer;
    std::size_t begin = 0;
    while (true) {
      const std::size_t nl = partial_.find('\n', begin);
      if (nl == std::string::npos) break;
      std::string line = partial_.substr(begin, nl - begin);
      begin = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      ++line_no_;
      consume_line(line, &buffer, &rows);
    }
    partial_.erase(0, begin);
    if (!buffer.empty()) store->merge(buffer);
    return rows;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw std::runtime_error(path_ + ":" + std::to_string(line_no_) + ": " +
                             message);
  }

  void consume_line(const std::string& line, telemetry::MetricBuffer* buffer,
                    std::size_t* rows) {
    if (keys_.empty()) {
      parse_header(line);
      return;
    }
    if (line.empty()) return;  // tolerate blank lines, like read_pool_csv
    const bool hardened = monitor_ != nullptr;
    const std::vector<std::string> fields =
        telemetry::split_csv_fields(line, ',');
    if (fields.size() != keys_.size() + 1) {
      if (hardened) {
        monitor_->note_malformed_row(datacenter_, pool_);
        return;
      }
      fail("expected " + std::to_string(keys_.size() + 1) + " fields, got " +
           std::to_string(fields.size()));
    }
    SimTime t = 0;
    if (!telemetry::parse_int64(fields[0], &t)) {
      if (hardened) {
        monitor_->note_malformed_row(datacenter_, pool_);
        return;
      }
      fail("bad window_start '" + fields[0] + "' (expected an integer)");
    }
    if (!hardened && have_last_ && t <= last_time_) {
      // Hardened mode leaves ordering to the monitor, which quarantines
      // duplicated and time-reversed windows per series.
      fail("window_start " + std::to_string(t) +
           " is not after the previous row (" + std::to_string(last_time_) +
           "); rows must be strictly time-ordered");
    }
    // Parse the whole row before handing any of it on, so a malformed
    // field never leaves a half-ingested window behind.
    row_values_.clear();
    for (std::size_t c = 0; c < keys_.size(); ++c) {
      double v = 0.0;
      if (hardened ? !parse_any_double(fields[c + 1], &v)
                   : !telemetry::parse_finite_double(fields[c + 1], &v)) {
        if (hardened) {
          monitor_->note_malformed_row(datacenter_, pool_);
          return;
        }
        fail("bad value '" + fields[c + 1] + "' for column '" +
             std::string(telemetry::to_string(keys_[c].metric)) +
             "' (expected a finite number)");
      }
      row_values_.push_back(v);
    }
    last_time_ = t;
    have_last_ = true;
    for (std::size_t c = 0; c < keys_.size(); ++c) {
      if (hardened) {
        monitor_->ingest(keys_[c], t, row_values_[c]);
      } else {
        buffer->record(keys_[c], t, row_values_[c]);
      }
    }
    ++*rows;
  }

  void parse_header(const std::string& line) {
    const std::vector<std::string> header =
        telemetry::split_csv_fields(line, ',');
    if (header.empty() || header[0] != "window_start") {
      fail("bad header: first column must be 'window_start', got '" +
           (header.empty() ? "" : header[0]) + "'");
    }
    if (header.size() < 2) fail("bad header: no metric columns");
    for (std::size_t c = 1; c < header.size(); ++c) {
      const auto kind = telemetry::metric_from_string(header[c]);
      if (!kind) fail("unknown metric column '" + header[c] + "'");
      const telemetry::SeriesKey key{datacenter_, pool_,
                                     telemetry::SeriesKey::kPoolScope, *kind};
      if (std::find(keys_.begin(), keys_.end(), key) != keys_.end()) {
        fail("duplicate metric column '" + header[c] + "'");
      }
      keys_.push_back(key);
    }
  }

  std::string path_;
  std::uint32_t datacenter_;
  std::uint32_t pool_;
  core::HealthMonitor* monitor_ = nullptr;
  std::streamoff offset_ = 0;
  std::string partial_;
  std::vector<telemetry::SeriesKey> keys_;
  std::vector<double> row_values_;
  SimTime last_time_ = 0;
  bool have_last_ = false;
  std::size_t line_no_ = 0;
};

/// End (exclusive) of the target pool's workload feed: last window start
/// plus one window; 0 before any workload arrives.
[[nodiscard]] SimTime target_feed_end(const telemetry::MetricStore& store,
                                      SimTime window) {
  const telemetry::TimeSeries& rps =
      store.pool_series(0, 0, MetricKind::kRequestsPerSecond);
  if (rps.empty()) return 0;
  return rps.time_at(rps.size() - 1) + window;
}

}  // namespace

ServeRunner::ServeRunner(ServeOptions options) : options_(options) {}

ServeResult ServeRunner::serve(const ScenarioSpec& spec,
                               const EmitFn& emit) const {
  const sim::MicroserviceCatalog catalog;
  sim::FleetConfig config = ScenarioRunner::build_fleet(spec, catalog);
  sim::FleetSimulator fleet(std::move(config), catalog);

  ServeResult out;
  out.result.spec = spec;
  out.result.thread_count = fleet.thread_count();

  const SimTime window = spec.window_seconds;
  const SimTime horizon = spec.days * kDaySeconds;

  // Validate every reduction before stepping (the batch path interleaves
  // validation with stepping; failing early keeps the same error surface
  // without wasted simulation).
  const std::vector<ScenarioEvent> reductions = sorted_reductions(spec);
  for (const ScenarioEvent& e : reductions) {
    const SimTime at = hours_to_sim(e.start_hour);
    if (at >= horizon) {
      throw std::invalid_argument(
          "scenario: serving_reduction at hour " +
          std::to_string(e.start_hour) + " is past the observation window");
    }
    const std::size_t pool_size = fleet.pool_size(*e.datacenter, *e.pool);
    if (e.serving > pool_size) {
      throw std::invalid_argument(
          "scenario: serving_reduction to " + std::to_string(e.serving) +
          " exceeds pool size " + std::to_string(pool_size));
    }
  }

  std::vector<PoolStream> streams =
      build_streams(fleet.config(), catalog, options_);

  // --- Degraded-input delivery layer ---------------------------------------
  // Active only when the spec injects faults (or --harden opts in). The
  // fault-free un-hardened path never touches it, which is what keeps
  // every pre-existing golden byte-identical. When active, the pipeline
  // reads the *delivered* store the monitor writes, never the simulator's
  // ground truth.
  const bool health_active = !spec.faults.empty() || options_.harden;
  telemetry::MetricStore delivered;
  std::optional<FaultInjector> injector;
  std::optional<core::HealthMonitor> health_monitor;
  if (health_active) {
    injector.emplace(spec);
    core::DegradationOptions dopt;
    dopt.window_seconds = window;
    dopt.heal_budget_seconds = options_.heal_budget_seconds;
    dopt.staleness_budget_seconds = options_.staleness_budget_seconds;
    health_monitor.emplace(&delivered, dopt);
    const sim::FleetConfig& fleet_config = fleet.config();
    for (std::uint32_t d = 0; d < fleet_config.datacenters.size(); ++d) {
      for (std::uint32_t p = 0;
           p < fleet_config.datacenters[d].pools.size(); ++p) {
        health_monitor->add_pool(d, p);
      }
    }
  }
  core::HealthMonitor* health =
      health_monitor ? &*health_monitor : nullptr;
  const telemetry::MetricStore& read_store =
      health_active ? delivered : fleet.store();

  if (emit) {
    emit("serve phase=observe t=0 horizon=" + std::to_string(horizon));
  }

  // --- Observation phase, one window at a time ----------------------------
  // A reduction lands at the first window boundary at or after its start
  // hour — exactly where the batch path's run_until(at) pauses the fleet.
  std::size_t next_reduction = 0;
  while (fleet.now() < horizon) {
    const SimTime t = fleet.now();
    while (next_reduction < reductions.size() &&
           hours_to_sim(reductions[next_reduction].start_hour) <= t) {
      const ScenarioEvent& e = reductions[next_reduction++];
      fleet.set_serving_count(*e.datacenter, *e.pool, e.serving);
    }
    fleet.run_until(t + window);
    if (health != nullptr) {
      deliver_window(fleet.store(), t, *injector, *health, delivered);
      health->advance(t + window);
    }
    ++out.windows;
    emit_window_reports(read_store, streams, t, "observe", emit,
                        &out.reports, health);
  }
  fleet.finish_day();

  compute_environment_metrics(fleet, spec, out.result.metrics);
  // Pool-level assertion targets read the observation phase exactly — and
  // must be resolved now, before retention starts rolling it away.
  compute_pool_assertion_metrics(read_store, spec, out.result.metrics);
  const std::string& pool_service =
      fleet.config().datacenters[0].pools[0].service;
  out.result.latency_slo_ms = catalog.by_name(pool_service).latency_slo_ms;

  // --- Pipeline over the live feed -----------------------------------------
  core::LiveFeedBackend::Options feed_opt;
  feed_opt.datacenter = 0;
  feed_opt.pool = 0;
  feed_opt.pool_size = fleet.pool_size(0, 0);
  feed_opt.serving = fleet.serving_count(0, 0);
  feed_opt.start = fleet.now();
  feed_opt.window_seconds = window;
  feed_opt.sealed = false;
  // The hook forwards serving changes into the simulator, which produces
  // the active-servers column — validating against it would be circular.
  feed_opt.validate_serving = false;
  feed_opt.label = "headroom serve";
  core::LiveFeedBackend backend(&read_store, feed_opt);
  backend.set_serving_hook([&fleet](std::size_t servers) {
    fleet.set_serving_count(0, 0, servers);
  });
  backend.set_health_monitor(health);

  PipelineContext ctx;
  ctx.store = &read_store;
  // Consumed synchronously by run_measure_and_plan below; the simulator
  // appends more rows during the experiment phase, which may reallocate.
  ctx.server_days = fleet.server_day_cpu();
  ctx.backend = &backend;
  ctx.latency_slo_ms = out.result.latency_slo_ms;
  ctx.datacenter_count = fleet.config().datacenters.size();

  PipelineSession session(spec, ctx);
  session.run_measure_and_plan(out.result);

  if (options_.reuse_observation_baseline &&
      spec.runs(PipelineStep::kOptimize)) {
    const core::ExperimentObservations seed = core::observations_between(
        read_store, 0, 0, fleet.now() - kDaySeconds, fleet.now());
    session.start_rsm(&seed);
  } else {
    session.start_rsm();
  }

  // Measure and plan have consumed the full observation history; from here
  // the experiment only reads forward, so the store can roll.
  const SimTime retention = clamp_retention(options_.retention_seconds, window);
  if (retention > 0) {
    fleet.set_store_retention(retention);
    if (health_active) delivered.set_retention(retention);
  }

  if (emit) {
    emit("serve phase=experiment t=" + std::to_string(fleet.now()) +
         " serving=" + std::to_string(fleet.serving_count(0, 0)));
  }

  while (!session.advance_rsm()) {
    if (health != nullptr &&
        health->mode(0, 0) == core::HealthMode::kFailsafe) {
      // The experiment pool's staleness budget is gone. Never shrink on
      // stale data: restore the validated pre-experiment serving count
      // and finish the pipeline degraded instead of waiting forever.
      session.abort_rsm_failsafe();
      continue;
    }
    const SimTime t = fleet.now();
    fleet.run_until(t + window);
    if (health != nullptr) {
      deliver_window(fleet.store(), t, *injector, *health, delivered);
      health->advance(t + window);
    }
    ++out.windows;
    emit_window_reports(read_store, streams, t, "experiment", emit,
                        &out.reports, health);
  }
  session.finalize(out.result);
  evaluate_assertions(spec, out.result);

  // --- Steady-state monitoring (optional) ----------------------------------
  const SimTime steady_end = fleet.now() + options_.extra_days * kDaySeconds;
  while (fleet.now() < steady_end) {
    const SimTime t = fleet.now();
    fleet.run_until(t + window);
    if (health != nullptr) {
      deliver_window(fleet.store(), t, *injector, *health, delivered);
      health->advance(t + window);
    }
    ++out.windows;
    emit_window_reports(read_store, streams, t, "steady", emit,
                        &out.reports, health);
  }

  out.summary = format_summary(out.result);
  out.resident_samples = fleet.store().sample_count();
  out.evicted_samples = fleet.store().evicted_samples();
  if (health != nullptr) {
    out.health_active = true;
    out.degraded = health->any_degraded();
    out.health_report = health->format_report();
  }
  if (emit) {
    emit("serve phase=done t=" + std::to_string(fleet.now()) +
         " windows=" + std::to_string(out.windows) +
         " rsm_recommended=" +
         std::to_string(out.result.rsm.recommended_serving));
  }
  return out;
}

ServeResult ServeRunner::follow(const std::string& trace_dir,
                                const EmitFn& emit) const {
  TraceFeedInfo info;
  const std::string problem = load_trace_feed(trace_dir, &info);
  if (!problem.empty()) throw std::runtime_error(problem);
  const ScenarioSpec& spec = info.spec;

  ServeResult out;
  out.result.spec = spec;

  // Config oracle, never stepped: pool sizes, SLOs, demand curves, and the
  // serving count the reductions leave behind (replay semantics).
  const sim::MicroserviceCatalog catalog;
  sim::FleetConfig config = ScenarioRunner::build_fleet(spec, catalog);
  sim::FleetSimulator fleet(std::move(config), catalog);
  out.result.thread_count = fleet.thread_count();

  const SimTime window = spec.window_seconds;
  const SimTime horizon = spec.days * kDaySeconds;
  const SimTime experiment_start =
      (horizon + window - 1) / window * window;

  apply_serving_reductions(fleet, spec, horizon, /*step_to_events=*/false);
  compute_environment_metrics(fleet, spec, out.result.metrics);
  const std::string& pool_service =
      fleet.config().datacenters[0].pools[0].service;
  out.result.latency_slo_ms = catalog.by_name(pool_service).latency_slo_ms;

  std::vector<PoolStream> streams =
      build_streams(fleet.config(), catalog, options_);

  // Follow always hardens: the tailer routes every row through a health
  // monitor writing the feed store, so malformed, duplicated, reordered,
  // or non-finite rows are quarantined-and-counted instead of fatal, and
  // a stalled writer degrades the pools instead of hanging the reader.
  telemetry::MetricStore feed;
  core::DegradationOptions dopt;
  dopt.window_seconds = window;
  dopt.heal_budget_seconds = options_.heal_budget_seconds;
  dopt.staleness_budget_seconds = options_.staleness_budget_seconds;
  core::HealthMonitor monitor(&feed, dopt);
  for (const TracePoolFeed& pool : info.pools) {
    monitor.add_pool(pool.datacenter, pool.pool);
  }
  std::vector<CsvTailReader> tails;
  tails.reserve(info.pools.size());
  for (const TracePoolFeed& pool : info.pools) {
    tails.emplace_back(pool.path, pool.datacenter, pool.pool, &monitor);
  }

  // The watchdog: `experiment_running` flips the idle response from fatal
  // (nothing to finalize yet) to a clean failsafe exit, and `feed_dead`
  // tells the experiment loop to stop waiting.
  std::size_t idle_polls = 0;
  bool experiment_running = false;
  bool feed_dead = false;
  const auto ingest = [&]() {
    std::size_t rows = 0;
    for (CsvTailReader& tail : tails) rows += tail.poll(&feed);
    if (rows > 0) {
      idle_polls = 0;
      monitor.advance(target_feed_end(feed, window));
      return true;
    }
    if (++idle_polls > options_.max_idle_polls) {
      if (!experiment_running) {
        throw std::runtime_error(
            "headroom follow: feed in '" + trace_dir + "' went idle after " +
            std::to_string(options_.max_idle_polls) +
            " polls with the pipeline still waiting at t=" +
            std::to_string(target_feed_end(feed, window)));
      }
      // Mid-experiment a dead feed is a degraded outcome, not a crash:
      // every pool fails safe and the reduction experiment is abandoned.
      const SimTime now = target_feed_end(feed, window);
      monitor.force_degrade(now, core::HealthMode::kStale,
                            "feed watchdog: feed went idle");
      monitor.force_degrade(now, core::HealthMode::kFailsafe,
                            "feed watchdog: idle past the staleness budget");
      feed_dead = true;
      return false;
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.poll_ms > 0 ? options_.poll_ms : 1));
    return false;
  };

  // Reports trail the feed: a window is reported once the target pool's
  // workload covers it (pool CSVs are written jointly per window).
  SimTime reported_to = 0;
  const auto report_new_windows = [&]() {
    const SimTime covered = target_feed_end(feed, window);
    while (reported_to < covered) {
      const char* phase =
          reported_to < experiment_start ? "observe" : "experiment";
      emit_window_reports(feed, streams, reported_to, phase, emit,
                          &out.reports, &monitor);
      reported_to += window;
      ++out.windows;
    }
  };

  if (emit) {
    emit("serve phase=observe t=0 horizon=" + std::to_string(horizon));
  }

  // --- Fill to the observation horizon -------------------------------------
  while (target_feed_end(feed, window) < experiment_start) {
    if (ingest()) report_new_windows();
  }
  report_new_windows();

  // The measure/plan stages see the recording truncated at the horizon —
  // exactly what the recording run's pipeline saw (replay semantics).
  const telemetry::MetricStore observation = truncate_store(feed, horizon);
  compute_pool_assertion_metrics(observation, spec, out.result.metrics);
  std::vector<sim::ServerDayCpu> observation_days;
  observation_days.reserve(info.server_days.size());
  for (const sim::ServerDayCpu& day : info.server_days) {
    if (day.day < spec.days) observation_days.push_back(day);
  }

  core::LiveFeedBackend::Options feed_opt;
  feed_opt.datacenter = 0;
  feed_opt.pool = 0;
  feed_opt.pool_size = fleet.pool_size(0, 0);
  feed_opt.serving = fleet.serving_count(0, 0);
  feed_opt.start = experiment_start;
  feed_opt.window_seconds = window;
  feed_opt.sealed = false;  // the trace is still growing
  feed_opt.validate_serving = true;  // recorded active_servers is the truth
  feed_opt.label = "headroom follow";
  core::LiveFeedBackend backend(&feed, feed_opt);
  backend.set_health_monitor(&monitor);

  PipelineContext ctx;
  ctx.store = &observation;
  ctx.server_days = observation_days;
  ctx.backend = &backend;
  ctx.latency_slo_ms = out.result.latency_slo_ms;
  ctx.datacenter_count = fleet.config().datacenters.size();

  PipelineSession session(spec, ctx);
  session.run_measure_and_plan(out.result);

  if (options_.reuse_observation_baseline &&
      spec.runs(PipelineStep::kOptimize)) {
    const core::ExperimentObservations seed = core::observations_between(
        feed, 0, 0, experiment_start - kDaySeconds, experiment_start);
    session.start_rsm(&seed);
  } else {
    session.start_rsm();
  }

  const SimTime retention = clamp_retention(options_.retention_seconds, window);
  if (retention > 0) {
    // A complete recording arrives in one poll, putting the watermark days
    // ahead of the RSM cursor; a watermark-driven sweep would evict windows
    // the session has not observed yet and starve it forever. Pin the
    // eviction floor to the slowest consumer before enabling retention.
    feed.set_eviction_floor(std::min(backend.cursor(), reported_to));
    feed.set_retention(retention);
  }

  if (emit) {
    emit("serve phase=experiment t=" + std::to_string(experiment_start) +
         " serving=" + std::to_string(fleet.serving_count(0, 0)));
  }
  experiment_running = true;

  // --- Experiment phase: advance whenever the tail grows -------------------
  while (!session.advance_rsm()) {
    if (feed_dead ||
        monitor.mode(0, 0) == core::HealthMode::kFailsafe) {
      session.abort_rsm_failsafe();
      continue;
    }
    if (retention > 0) {
      feed.set_eviction_floor(std::min(backend.cursor(), reported_to));
    }
    if (ingest()) report_new_windows();
  }
  report_new_windows();
  session.finalize(out.result);
  evaluate_assertions(spec, out.result);

  out.summary = format_summary(out.result);
  out.resident_samples = feed.sample_count();
  out.evicted_samples = feed.evicted_samples();
  out.health_active = true;
  out.degraded = monitor.any_degraded();
  out.health_report = monitor.format_report();
  if (emit) {
    emit("serve phase=done t=" + std::to_string(reported_to) +
         " windows=" + std::to_string(out.windows) +
         " rsm_recommended=" +
         std::to_string(out.result.rsm.recommended_serving));
  }
  return out;
}

}  // namespace headroom::scenario
