#include "scenario/scenario_spec.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <string_view>

namespace headroom::scenario {

namespace {

/// Metric name -> the pipeline step that produces it (nullopt: always
/// available — fleet shape and demand-timeline metrics).
const std::map<std::string, std::optional<PipelineStep>, std::less<>>&
metric_registry() {
  static const std::map<std::string, std::optional<PipelineStep>, std::less<>>
      kMetrics = {
          {"datacenters", std::nullopt},
          {"total_pools", std::nullopt},
          {"total_servers", std::nullopt},
          {"serving_final", std::nullopt},
          {"max_traffic_ratio", std::nullopt},
          {"median_survivor_increase_pct", std::nullopt},
          {"max_survivor_increase_pct", std::nullopt},
          {"metric_valid", PipelineStep::kMeasure},
          {"limiting_r2", PipelineStep::kMeasure},
          {"server_groups", PipelineStep::kMeasure},
          {"multimodal", PipelineStep::kMeasure},
          {"plan_current", PipelineStep::kOptimize},
          {"plan_recommended", PipelineStep::kOptimize},
          {"plan_savings_pct", PipelineStep::kOptimize},
          {"plan_stressed_latency_ms", PipelineStep::kOptimize},
          {"rsm_start", PipelineStep::kOptimize},
          {"rsm_recommended", PipelineStep::kOptimize},
          {"rsm_reduction_pct", PipelineStep::kOptimize},
          {"rsm_iterations", PipelineStep::kOptimize},
          {"rsm_slo_limited", PipelineStep::kOptimize},
          {"rsm_failsafe", PipelineStep::kOptimize},
          {"model_equivalent", PipelineStep::kModel},
          {"model_type_distance", PipelineStep::kModel},
          {"gate_blocked", PipelineStep::kValidate},
          {"gate_max_clean_rps", PipelineStep::kValidate},
      };
  return kMetrics;
}

[[nodiscard]] std::string_view step_name(PipelineStep step) noexcept {
  switch (step) {
    case PipelineStep::kMeasure: return "measure";
    case PipelineStep::kOptimize: return "optimize";
    case PipelineStep::kModel: return "model";
    case PipelineStep::kValidate: return "validate";
  }
  return "?";
}

[[nodiscard]] std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

}  // namespace

std::string_view to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kTelemetryGap: return "telemetry_gap";
    case FaultKind::kNanBurst: return "nan_burst";
    case FaultKind::kDuplicateWindow: return "duplicate_window";
    case FaultKind::kOutOfOrderWindow: return "out_of_order_window";
    case FaultKind::kCorruptRow: return "corrupt_row";
    case FaultKind::kFeedStall: return "feed_stall";
    case FaultKind::kClockSkew: return "clock_skew";
  }
  return "?";
}

std::optional<FaultKind> fault_kind_from_string(std::string_view name) noexcept {
  if (name == "telemetry_gap") return FaultKind::kTelemetryGap;
  if (name == "nan_burst") return FaultKind::kNanBurst;
  if (name == "duplicate_window") return FaultKind::kDuplicateWindow;
  if (name == "out_of_order_window") return FaultKind::kOutOfOrderWindow;
  if (name == "corrupt_row") return FaultKind::kCorruptRow;
  if (name == "feed_stall") return FaultKind::kFeedStall;
  if (name == "clock_skew") return FaultKind::kClockSkew;
  return std::nullopt;
}

std::string_view to_string(AssertOp op) noexcept {
  switch (op) {
    case AssertOp::kGe: return ">=";
    case AssertOp::kLe: return "<=";
    case AssertOp::kGt: return ">";
    case AssertOp::kLt: return "<";
    case AssertOp::kEq: return "==";
    case AssertOp::kNe: return "!=";
  }
  return "?";
}

bool ScenarioAssertion::holds(double observed) const noexcept {
  switch (op) {
    case AssertOp::kGe: return observed >= value;
    case AssertOp::kLe: return observed <= value;
    case AssertOp::kGt: return observed > value;
    case AssertOp::kLt: return observed < value;
    case AssertOp::kEq: return observed == value;
    case AssertOp::kNe: return observed != value;
  }
  return false;
}

const std::vector<std::string>& known_metrics() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> names;
    for (const auto& [name, step] : metric_registry()) names.push_back(name);
    return names;
  }();
  return kNames;
}

const std::vector<std::string>& known_pool_metrics() {
  static const std::vector<std::string> kNames = {
      "max_active_servers", "mean_cpu_pct", "mean_p95_ms", "mean_rps",
      "min_active_servers", "peak_cpu_pct", "peak_p95_ms", "peak_rps",
  };
  return kNames;
}

std::optional<PoolMetricRef> parse_pool_metric(std::string_view name,
                                               std::string* error) {
  if (error != nullptr) error->clear();
  if (!name.starts_with("pool(")) return std::nullopt;
  const auto bad = [&]() -> std::optional<PoolMetricRef> {
    if (error != nullptr) {
      *error = "bad pool assertion target '" + std::string(name) +
               "' (expected pool(DC,POOL).metric)";
    }
    return std::nullopt;
  };
  const std::size_t close = name.find(')');
  if (close == std::string_view::npos) return bad();
  const std::string_view args = name.substr(5, close - 5);
  const std::size_t comma = args.find(',');
  if (comma == std::string_view::npos) return bad();
  const auto parse_u32 = [](std::string_view text,
                            std::uint32_t* out) -> bool {
    if (text.empty() || text.size() > 9) return false;
    std::uint32_t v = 0;
    for (char c : text) {
      if (c < '0' || c > '9') return false;
      v = v * 10 + static_cast<std::uint32_t>(c - '0');
    }
    *out = v;
    return true;
  };
  PoolMetricRef ref;
  if (!parse_u32(args.substr(0, comma), &ref.datacenter) ||
      !parse_u32(args.substr(comma + 1), &ref.pool)) {
    return bad();
  }
  if (close + 1 >= name.size() || name[close + 1] != '.') return bad();
  ref.base = std::string(name.substr(close + 2));
  if (ref.base.empty()) return bad();
  return ref;
}

std::string validate(const ScenarioSpec& spec) {
  if (spec.name.empty()) return "scenario name is empty";
  if (spec.days < 1) return "days must be >= 1";
  if (spec.window_seconds <= 0) return "window_seconds must be positive";
  if (spec.steps == 0) return "no pipeline steps selected";

  const std::size_t dc_count = spec.fleet == FleetKind::kSinglePool ? 1
                               : spec.fleet == FleetKind::kMultiDc
                                   ? spec.datacenters
                                   : 9;
  const std::size_t pools_per_dc =
      spec.fleet == FleetKind::kStandard
          ? (spec.services.empty() ? 7 : spec.services.size())
          : 1;

  if (spec.fleet != FleetKind::kStandard) {
    if (spec.service.empty()) return "fleet service is empty";
    if (spec.servers < 1) return "fleet servers must be >= 1";
  }
  if (spec.fleet == FleetKind::kSinglePool && spec.datacenters > 1) {
    return "single_pool fleets have exactly one datacenter";
  }
  if (spec.fleet == FleetKind::kMultiDc &&
      (spec.datacenters < 2 || spec.datacenters > 9)) {
    return "multi_dc fleets need 2..9 datacenters";
  }
  if (spec.fleet == FleetKind::kStandard && spec.regional_peak_rps <= 0.0) {
    return "regional_peak_rps must be positive";
  }

  for (std::size_t i = 0; i < spec.datacenter_overrides.size(); ++i) {
    const DatacenterOverride& o = spec.datacenter_overrides[i];
    if (o.datacenter >= dc_count) {
      return "[datacenter " + std::to_string(o.datacenter) +
             "] is out of range (fleet has " + std::to_string(dc_count) +
             " datacenter(s))";
    }
    if (o.demand_weight && *o.demand_weight <= 0.0) {
      return "[datacenter " + std::to_string(o.datacenter) +
             "] demand_weight must be positive";
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (spec.datacenter_overrides[j].datacenter == o.datacenter) {
        return "duplicate [datacenter " + std::to_string(o.datacenter) +
               "] section";
      }
    }
  }

  for (std::size_t i = 0; i < spec.pool_overrides.size(); ++i) {
    const PoolOverride& o = spec.pool_overrides[i];
    const std::string where = "[pool " + std::to_string(o.datacenter) + " " +
                              std::to_string(o.pool) + "]";
    if (o.datacenter >= dc_count || o.pool >= pools_per_dc) {
      return where + " is out of range (fleet has " +
             std::to_string(dc_count) + " datacenter(s) x " +
             std::to_string(pools_per_dc) + " pool(s))";
    }
    if (o.servers && *o.servers < 1) return where + " servers must be >= 1";
    if (o.demand_multiplier && *o.demand_multiplier <= 0.0) {
      return where + " demand_multiplier must be positive";
    }
    if (o.burst_multiplier && *o.burst_multiplier <= 0.0) {
      return where + " burst_multiplier must be positive";
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (spec.pool_overrides[j].datacenter == o.datacenter &&
          spec.pool_overrides[j].pool == o.pool) {
        return "duplicate " + where + " section";
      }
    }
  }

  for (std::size_t i = 0; i < spec.events.size(); ++i) {
    const ScenarioEvent& e = spec.events[i];
    const std::string where = "event " + std::to_string(i + 1);
    if (e.start_hour < 0.0 || !std::isfinite(e.start_hour)) {
      return where + ": start_hour must be >= 0";
    }
    if (e.datacenter && *e.datacenter >= dc_count) {
      return where + ": datacenter " + std::to_string(*e.datacenter) +
             " is out of range (fleet has " + std::to_string(dc_count) +
             " datacenter(s))";
    }
    if (e.pool && *e.pool >= pools_per_dc) {
      return where + ": pool " + std::to_string(*e.pool) +
             " is out of range (fleet has " + std::to_string(pools_per_dc) +
             " pool(s) per datacenter)";
    }
    // Keep programmatic specs as strict as parsed ones: a pool target on a
    // demand-level event would be silently ignored by the runner and
    // cannot survive a serialize/parse round trip.
    if (e.pool && (e.kind == ScenarioEventKind::kTrafficMultiplier ||
                   e.kind == ScenarioEventKind::kDatacenterOutage)) {
      return where + ": 'pool' does not apply to this event kind";
    }
    switch (e.kind) {
      case ScenarioEventKind::kTrafficMultiplier:
        if (e.duration_hours <= 0.0) {
          return where + ": duration_hours must be positive";
        }
        if (e.multiplier <= 0.0) {
          return where + ": multiplier must be positive";
        }
        break;
      case ScenarioEventKind::kDatacenterOutage:
        if (e.duration_hours <= 0.0) {
          return where + ": duration_hours must be positive";
        }
        break;
      case ScenarioEventKind::kMaintenanceWave:
        if (e.duration_hours <= 0.0) {
          return where + ": duration_hours must be positive";
        }
        if (e.offline_fraction <= 0.0 || e.offline_fraction > 1.0) {
          return where + ": offline_fraction must be in (0, 1]";
        }
        break;
      case ScenarioEventKind::kServingReduction:
        if (e.serving < 1) return where + ": serving must be >= 1";
        if (!e.datacenter || !e.pool) {
          return where + ": serving_reduction needs explicit datacenter "
                         "and pool";
        }
        break;
    }
    // Overlap rules: concurrent multipliers compound by design, but two
    // outages of one DC or two reductions of one pool at the same instant
    // are contradictory instructions.
    for (std::size_t j = 0; j < i; ++j) {
      const ScenarioEvent& p = spec.events[j];
      if (p.kind != e.kind) continue;
      if (e.kind == ScenarioEventKind::kDatacenterOutage) {
        const bool same_target = !e.datacenter || !p.datacenter ||
                                 *e.datacenter == *p.datacenter;
        const bool overlap =
            e.start_hour < p.start_hour + p.duration_hours &&
            p.start_hour < e.start_hour + e.duration_hours;
        if (same_target && overlap) {
          return where + ": overlaps outage event " + std::to_string(j + 1) +
                 " on the same datacenter";
        }
      } else if (e.kind == ScenarioEventKind::kServingReduction) {
        if (*e.datacenter == *p.datacenter && *e.pool == *p.pool &&
            e.start_hour == p.start_hour) {
          return where + ": duplicate serving_reduction at hour " +
                 format_double(e.start_hour) + " for the same pool";
        }
      }
    }
  }

  for (std::size_t i = 0; i < spec.faults.size(); ++i) {
    const FaultSpec& f = spec.faults[i];
    const std::string where = "fault " + std::to_string(i + 1);
    if (f.start_hour < 0.0 || !std::isfinite(f.start_hour)) {
      return where + ": start_hour must be >= 0";
    }
    if (f.duration_hours <= 0.0 || !std::isfinite(f.duration_hours)) {
      return where + ": duration_hours must be positive";
    }
    if (f.kind == FaultKind::kFeedStall) {
      if (f.datacenter || f.pool) {
        return where + ": feed_stall freezes every pool; 'datacenter' and "
                       "'pool' do not apply";
      }
    } else {
      if (f.datacenter && *f.datacenter >= dc_count) {
        return where + ": datacenter " + std::to_string(*f.datacenter) +
               " is out of range (fleet has " + std::to_string(dc_count) +
               " datacenter(s))";
      }
      if (f.pool && *f.pool >= pools_per_dc) {
        return where + ": pool " + std::to_string(*f.pool) +
               " is out of range (fleet has " + std::to_string(pools_per_dc) +
               " pool(s) per datacenter)";
      }
    }
    if (f.kind == FaultKind::kClockSkew) {
      if (f.skew_seconds == 0.0 || !std::isfinite(f.skew_seconds) ||
          std::abs(f.skew_seconds) >=
              static_cast<double>(spec.window_seconds)) {
        return where + ": clock_skew needs a non-zero skew_seconds smaller "
                       "than one window";
      }
    } else if (f.skew_seconds != 0.0) {
      return where + ": 'skew_seconds' only applies to clock_skew";
    }
  }

  for (const ScenarioAssertion& a : spec.assertions) {
    std::string pool_error;
    if (const auto ref = parse_pool_metric(a.metric, &pool_error)) {
      if (!std::binary_search(known_pool_metrics().begin(),
                              known_pool_metrics().end(), ref->base)) {
        return "unknown pool metric '" + ref->base + "' in assertion '" +
               a.metric + "'";
      }
      if (ref->datacenter >= dc_count) {
        return "assertion '" + a.metric + "': datacenter " +
               std::to_string(ref->datacenter) +
               " is out of range (fleet has " + std::to_string(dc_count) +
               " datacenter(s))";
      }
      if (ref->pool >= pools_per_dc) {
        return "assertion '" + a.metric + "': pool " +
               std::to_string(ref->pool) + " is out of range (fleet has " +
               std::to_string(pools_per_dc) + " pool(s) per datacenter)";
      }
    } else if (!pool_error.empty()) {
      return pool_error;
    } else {
      const auto it = metric_registry().find(a.metric);
      if (it == metric_registry().end()) {
        return "unknown assertion metric '" + a.metric + "'";
      }
      if (it->second && !spec.runs(*it->second)) {
        return "assertion on '" + a.metric + "' requires the " +
               std::string(step_name(*it->second)) + " step";
      }
    }
    if (!std::isfinite(a.value)) {
      return "assertion on '" + a.metric + "' has a non-finite value";
    }
  }
  return "";
}

}  // namespace headroom::scenario
