// Scenario execution: spec -> fleet -> events -> pipeline -> summary.
//
// The runner builds the FleetConfig a spec describes (topology preset plus
// per-DC / per-pool overrides), installs the event timeline (traffic
// multipliers and outages into the workload::EventSchedule, maintenance
// waves as PoolIncidents, serving reductions applied mid-run), steps the
// simulator through the observation phase, then executes the selected
// methodology steps against pool (0, 0) exactly as the CLI pipeline does.
// The outcome is both structured (per-step results for narrative display)
// and flat (a metric map the spec's assertions are checked against).
//
// Determinism: for a fixed spec (ignoring `threads`), every thread count
// yields a bit-identical metric map and summary — the simulator's
// parallel-stepping guarantee carries through, which is what lets golden
// tests pin format_summary() byte-for-byte.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/headroom_optimizer.h"
#include "core/metric_validator.h"
#include "core/regression_gate.h"
#include "core/rsm_planner.h"
#include "core/server_grouper.h"
#include "scenario/scenario_spec.h"
#include "sim/microservice.h"
#include "sim/topology.h"
#include "workload/synthetic.h"

namespace headroom::scenario {

struct AssertionOutcome {
  ScenarioAssertion assertion;
  double observed = 0.0;
  bool pass = false;
};

struct ScenarioRunResult {
  ScenarioSpec spec;

  // Structured per-step results (filled only for steps the spec ran).
  std::vector<core::MetricAssessment> assessments;
  bool metric_valid = false;
  core::PoolGrouping grouping;
  core::HeadroomPlan plan;
  core::RsmResult rsm;
  workload::StreamComparison model_cmp;
  core::GateResult gate;
  double latency_slo_ms = 0.0;  ///< Of the target pool's service.

  /// Flat summary metrics — the assertion vocabulary (known_metrics()).
  std::map<std::string, double> metrics;
  std::vector<AssertionOutcome> assertions;
  bool assertions_pass = true;

  /// Resolved stepping lanes. Deliberately NOT part of the summary.
  std::size_t thread_count = 1;
};

class ScenarioRunner {
 public:
  ScenarioRunner() = default;

  /// Executes the scenario. Throws std::invalid_argument for problems
  /// visible only at build/run time (spec fails validate(), a service name
  /// missing from the catalog, a serving reduction exceeding a pool size).
  [[nodiscard]] ScenarioRunResult run(const ScenarioSpec& spec) const;

  /// Builds the FleetConfig for a spec: topology preset, overrides, and
  /// schedule-level events (traffic, outage, maintenance waves). Serving
  /// reductions are runtime actions and are not represented in the config.
  [[nodiscard]] static sim::FleetConfig build_fleet(
      const ScenarioSpec& spec, const sim::MicroserviceCatalog& catalog);
};

/// Machine-readable run summary: header, `metric` lines in sorted key
/// order, `assert` verdicts in spec order, and a final `result` line.
/// Byte-identical for any thread count.
[[nodiscard]] std::string format_summary(const ScenarioRunResult& result);

}  // namespace headroom::scenario
