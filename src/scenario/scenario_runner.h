// Scenario execution: spec -> fleet -> events -> pipeline -> summary.
//
// The runner builds the FleetConfig a spec describes (topology preset plus
// per-DC / per-pool overrides), installs the event timeline (traffic
// multipliers and outages into the workload::EventSchedule, maintenance
// waves as PoolIncidents, serving reductions applied mid-run), steps the
// simulator through the observation phase, then executes the selected
// methodology steps against pool (0, 0) exactly as the CLI pipeline does.
// The outcome is both structured (per-step results for narrative display)
// and flat (a metric map the spec's assertions are checked against).
//
// Two execution modes share every pipeline stage:
//   run()    — simulator mode: steps a fleet for the observation phase and
//              hands the RSM planner a live SimPoolBackend.
//   replay() — trace mode: no stepping at all. Observation-phase telemetry
//              comes from a recorded MetricStore, the RSM planner reads a
//              TraceExperimentBackend over the same recording, and the
//              environment metrics are recomputed from the spec's demand
//              oracle (a pure function of the config, so they match the
//              recording run bit-for-bit). A lossless trace round-trip
//              therefore reproduces format_summary() byte-for-byte.
//
// Determinism: for a fixed spec (ignoring `threads`), every thread count
// yields a bit-identical metric map and summary — the simulator's
// parallel-stepping guarantee carries through, which is what lets golden
// tests pin format_summary() byte-for-byte.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/headroom_optimizer.h"
#include "core/metric_validator.h"
#include "core/regression_gate.h"
#include "core/rsm_planner.h"
#include "core/server_grouper.h"
#include "scenario/scenario_spec.h"
#include "sim/fleet.h"
#include "sim/microservice.h"
#include "sim/topology.h"
#include "workload/synthetic.h"

namespace headroom::scenario {

struct AssertionOutcome {
  ScenarioAssertion assertion;
  double observed = 0.0;
  bool pass = false;
};

struct ScenarioRunResult {
  ScenarioSpec spec;

  // Structured per-step results (filled only for steps the spec ran).
  std::vector<core::MetricAssessment> assessments;
  bool metric_valid = false;
  core::PoolGrouping grouping;
  core::HeadroomPlan plan;
  core::RsmResult rsm;
  workload::StreamComparison model_cmp;
  core::GateResult gate;
  double latency_slo_ms = 0.0;  ///< Of the target pool's service.

  /// Flat summary metrics — the assertion vocabulary (known_metrics()).
  std::map<std::string, double> metrics;
  std::vector<AssertionOutcome> assertions;
  bool assertions_pass = true;

  /// Resolved stepping lanes. Deliberately NOT part of the summary.
  std::size_t thread_count = 1;
};

/// Recorded inputs for replay(): the full telemetry of a prior run of the
/// same spec (observation phase and RSM experiment windows) plus the
/// per-server-day CPU snapshots the grouping step consumed.
struct ReplayInputs {
  const telemetry::MetricStore* trace = nullptr;
  std::vector<sim::ServerDayCpu> server_days;
};

class ScenarioRunner {
 public:
  ScenarioRunner() = default;

  /// Executes the scenario. Throws std::invalid_argument for problems
  /// visible only at build/run time (spec fails validate(), a service name
  /// missing from the catalog, a serving reduction exceeding a pool size).
  [[nodiscard]] ScenarioRunResult run(const ScenarioSpec& spec) const;

  /// run() on a caller-constructed fleet, which must be freshly built from
  /// build_fleet(spec) and never stepped. Trace export uses this: the
  /// stepped fleet's telemetry is what gets captured after the run.
  [[nodiscard]] ScenarioRunResult run_on_fleet(
      const ScenarioSpec& spec, sim::FleetSimulator& fleet,
      const sim::MicroserviceCatalog& catalog) const;

  /// Executes the scenario's pipeline against recorded telemetry instead
  /// of a simulator (see the header comment). Throws std::invalid_argument
  /// for spec problems and std::runtime_error when the replayed planner
  /// diverges from (or exhausts) the recording.
  [[nodiscard]] ScenarioRunResult replay(const ScenarioSpec& spec,
                                         const ReplayInputs& inputs) const;

  /// Builds the FleetConfig for a spec: topology preset, overrides, and
  /// schedule-level events (traffic, outage, maintenance waves). Serving
  /// reductions are runtime actions and are not represented in the config.
  [[nodiscard]] static sim::FleetConfig build_fleet(
      const ScenarioSpec& spec, const sim::MicroserviceCatalog& catalog);
};

/// Machine-readable run summary: header, `metric` lines in sorted key
/// order, `assert` verdicts in spec order, and a final `result` line.
/// Byte-identical for any thread count.
[[nodiscard]] std::string format_summary(const ScenarioRunResult& result);

}  // namespace headroom::scenario
