#include "scenario/scenario_runner.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <optional>
#include <span>
#include <stdexcept>

#include "core/pool_model.h"
#include "core/sim_backend.h"
#include "core/trace_backend.h"
#include "stats/percentile.h"
#include "workload/diurnal.h"
#include "workload/events.h"

namespace headroom::scenario {

namespace {

constexpr telemetry::SimTime kDay = 86400;

[[nodiscard]] telemetry::SimTime hours_to_sim(double hours) noexcept {
  return static_cast<telemetry::SimTime>(std::llround(hours * 3600.0));
}

void require_service(const sim::MicroserviceCatalog& catalog,
                     const std::string& service) {
  if (!catalog.index_of(service)) {
    throw std::invalid_argument("scenario: unknown service '" + service +
                                "' (not in the micro-service catalog)");
  }
}

/// Attaches one maintenance wave to every targeted pool as PoolIncidents.
/// Incident times are pool-local; the wave's absolute start hour is shifted
/// by each DC's timezone so the wave hits every pool at the same sim time.
/// MaintenanceSchedule evaluates an incident within one local day only, so
/// a wave whose local window crosses midnight is split into one incident
/// per touched day — without this, the post-midnight portion would be
/// silently dropped for DCs whose offset pushes the window over 24:00.
void attach_wave(sim::FleetConfig& config, const ScenarioEvent& event) {
  for (std::uint32_t d = 0; d < config.datacenters.size(); ++d) {
    if (event.datacenter && *event.datacenter != d) continue;
    sim::DatacenterConfig& dc = config.datacenters[d];
    double local_start_hour = event.start_hour + dc.timezone_offset_hours;
    double remaining_hours = event.duration_hours;
    std::vector<sim::PoolIncident> pieces;
    while (remaining_hours > 0.0) {
      sim::PoolIncident incident;
      incident.day =
          static_cast<std::int64_t>(std::floor(local_start_hour / 24.0));
      incident.start_hour =
          local_start_hour - 24.0 * static_cast<double>(incident.day);
      incident.duration_hours =
          std::min(remaining_hours, 24.0 - incident.start_hour);
      if (incident.duration_hours <= 0.0) break;  // FP guard at a boundary
      incident.offline_fraction = event.offline_fraction;
      pieces.push_back(incident);
      local_start_hour += incident.duration_hours;
      remaining_hours -= incident.duration_hours;
    }
    for (std::uint32_t p = 0; p < dc.pools.size(); ++p) {
      if (event.pool && *event.pool != p) continue;
      sim::PoolConfig& pool = dc.pools[p];
      pool.incidents.insert(pool.incidents.end(), pieces.begin(),
                            pieces.end());
    }
  }
}

/// Serving reductions sorted by start time (stable for equal times, which
/// validate() has already ruled out per pool).
[[nodiscard]] std::vector<ScenarioEvent> sorted_reductions(
    const ScenarioSpec& spec) {
  std::vector<ScenarioEvent> reductions;
  for (const ScenarioEvent& e : spec.events) {
    if (e.kind == ScenarioEventKind::kServingReduction) reductions.push_back(e);
  }
  std::stable_sort(reductions.begin(), reductions.end(),
                   [](const ScenarioEvent& a, const ScenarioEvent& b) {
                     return a.start_hour < b.start_hour;
                   });
  return reductions;
}

[[nodiscard]] std::string format_value(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

/// Validates and applies the spec's serving reductions. In simulator mode
/// the fleet is stepped to each reduction boundary first (the observation
/// phase pauses there); replay applies only the control-variable changes —
/// the telemetry those reductions produced is already in the trace.
void apply_serving_reductions(sim::FleetSimulator& fleet,
                              const ScenarioSpec& spec,
                              telemetry::SimTime horizon,
                              bool step_to_events) {
  for (const ScenarioEvent& e : sorted_reductions(spec)) {
    const telemetry::SimTime at = hours_to_sim(e.start_hour);
    if (at >= horizon) {
      throw std::invalid_argument(
          "scenario: serving_reduction at hour " +
          std::to_string(e.start_hour) + " is past the observation window");
    }
    const std::size_t pool_size = fleet.pool_size(*e.datacenter, *e.pool);
    if (e.serving > pool_size) {
      throw std::invalid_argument(
          "scenario: serving_reduction to " + std::to_string(e.serving) +
          " exceeds pool size " + std::to_string(pool_size));
    }
    if (step_to_events) fleet.run_until(at);
    fleet.set_serving_count(*e.datacenter, *e.pool, e.serving);
  }
}

/// Fleet-shape and event-timeline metrics. Everything here is a pure
/// function of the config and the demand oracle (datacenter_demand does
/// not depend on stepping state), so simulator runs and trace replays
/// compute identical values without sharing any telemetry.
void compute_environment_metrics(const sim::FleetSimulator& fleet,
                                 const ScenarioSpec& spec,
                                 std::map<std::string, double>& metrics) {
  // Event-free baseline demand oracle the event metrics are measured
  // against. This is a pure function of the diurnal params and the DC
  // weights/timezones (exactly what FleetSimulator::regional_demands
  // computes when no event is active), so it needs no second simulator.
  const sim::FleetConfig& config = fleet.config();
  std::vector<workload::DiurnalTraffic> baseline_traffic;
  baseline_traffic.reserve(config.datacenters.size());
  for (const sim::DatacenterConfig& dc : config.datacenters) {
    workload::DiurnalParams params = config.diurnal;
    params.peak_rps = config.diurnal.peak_rps * dc.demand_weight;
    params.timezone_offset_hours = dc.timezone_offset_hours;
    baseline_traffic.emplace_back(params);
  }

  const telemetry::SimTime horizon = spec.days * kDay;

  metrics["datacenters"] = static_cast<double>(config.datacenters.size());
  metrics["total_pools"] = static_cast<double>(fleet.total_pools());
  metrics["total_servers"] = static_cast<double>(fleet.total_servers());
  metrics["serving_final"] = static_cast<double>(fleet.serving_count(0, 0));

  double max_ratio = 1.0;
  std::vector<double> survivor_max_ratio(config.datacenters.size(), 0.0);
  bool any_outage_window = false;
  for (telemetry::SimTime t = 0; t < horizon; t += spec.window_seconds) {
    bool any_down = false;
    for (std::uint32_t d = 0; d < config.datacenters.size(); ++d) {
      if (config.events.datacenter_down(t, d)) any_down = true;
    }
    for (std::uint32_t d = 0; d < config.datacenters.size(); ++d) {
      const double base = baseline_traffic[d].demand(t);
      if (base <= 1e-9) continue;
      const double ratio = fleet.datacenter_demand(t, d) / base;
      max_ratio = std::max(max_ratio, ratio);
      if (any_down && !config.events.datacenter_down(t, d)) {
        any_outage_window = true;
        survivor_max_ratio[d] = std::max(survivor_max_ratio[d], ratio);
      }
    }
  }
  metrics["max_traffic_ratio"] = max_ratio;
  double median_increase = 0.0;
  double max_increase = 0.0;
  if (any_outage_window) {
    std::vector<double> increases;
    for (const double ratio : survivor_max_ratio) {
      if (ratio > 0.0) increases.push_back((ratio - 1.0) * 100.0);
    }
    std::sort(increases.begin(), increases.end());
    if (!increases.empty()) {
      median_increase = increases[increases.size() / 2];
      max_increase = increases.back();
    }
  }
  metrics["median_survivor_increase_pct"] = median_increase;
  metrics["max_survivor_increase_pct"] = max_increase;
}

/// Everything the four pipeline steps read. `store` holds observation-phase
/// telemetry only (in simulator mode that is the live store, which the RSM
/// phase has not yet extended; in replay it is the recording truncated at
/// the horizon); `server_days` are the per-server-day CPU rows as of
/// measure time; `backend` is the RSM planner's experiment surface.
struct PipelineContext {
  const telemetry::MetricStore* store = nullptr;
  std::span<const sim::ServerDayCpu> server_days;
  core::PoolExperimentBackend* backend = nullptr;
  double latency_slo_ms = 0.0;
  std::size_t datacenter_count = 1;
};

void run_pipeline_steps(const ScenarioSpec& spec, const PipelineContext& ctx,
                        ScenarioRunResult& result) {
  using telemetry::MetricKind;
  const telemetry::MetricStore& store = *ctx.store;

  // --- Step 1: Measure ------------------------------------------------------
  if (spec.runs(PipelineStep::kMeasure)) {
    const core::MetricValidator validator;
    const MetricKind resources[] = {MetricKind::kCpuPercentAttributed,
                                    MetricKind::kNetworkBytesPerSecond,
                                    MetricKind::kMemoryPagesPerSecond,
                                    MetricKind::kDiskQueueLength};
    result.assessments = validator.assess_all(
        store, 0, 0, MetricKind::kRequestsPerSecond, resources);
    result.metric_valid = validator.workload_metric_valid(result.assessments);
    result.metrics["metric_valid"] = result.metric_valid ? 1.0 : 0.0;
    const auto limiting = validator.limiting_resource(result.assessments);
    result.metrics["limiting_r2"] = limiting ? limiting->fit.r_squared : 0.0;

    std::int64_t last_day = 0;
    for (const auto& day : ctx.server_days) {
      if (day.datacenter == 0 && day.pool == 0) {
        last_day = std::max(last_day, day.day);
      }
    }
    const auto snapshots = core::ServerGrouper::pool_snapshots(
        ctx.server_days, 0, 0, last_day);
    result.grouping = core::ServerGrouper().group_servers(snapshots);
    result.metrics["server_groups"] =
        static_cast<double>(result.grouping.group_count);
    result.metrics["multimodal"] = result.grouping.multimodal() ? 1.0 : 0.0;
  }

  // --- Step 2: Optimize -----------------------------------------------------
  if (spec.runs(PipelineStep::kOptimize)) {
    const auto model = core::PoolResponseModel::fit(
        store.pool_scatter(0, 0, MetricKind::kRequestsPerSecond,
                           MetricKind::kCpuPercentAttributed),
        store.pool_scatter(0, 0, MetricKind::kRequestsPerSecond,
                           MetricKind::kLatencyP95Ms));
    const auto rps =
        store.pool_series(0, 0, MetricKind::kRequestsPerSecond).values();
    const double p95_rps = stats::percentile(rps, 95.0);
    core::HeadroomPolicy policy;
    policy.qos.latency.p95_ms = ctx.latency_slo_ms;
    policy.dr_headroom_fraction =
        ctx.datacenter_count > 1
            ? 1.0 / static_cast<double>(ctx.datacenter_count)
            : 0.125;
    const std::size_t current = ctx.backend->serving_count();
    result.plan = core::HeadroomOptimizer(policy).plan(model, p95_rps, current);
    result.metrics["plan_current"] =
        static_cast<double>(result.plan.current_servers);
    result.metrics["plan_recommended"] =
        static_cast<double>(result.plan.recommended_servers);
    result.metrics["plan_savings_pct"] =
        result.plan.efficiency_savings() * 100.0;
    result.metrics["plan_stressed_latency_ms"] =
        result.plan.predicted_latency_stressed_ms;

    core::RsmOptions rsm;
    rsm.latency_slo_ms = ctx.latency_slo_ms;
    rsm.baseline_duration = kDay;
    rsm.iteration_duration = kDay;
    rsm.max_iterations = 4;
    result.rsm = core::RsmPlanner(rsm).optimize(*ctx.backend);
    result.metrics["rsm_start"] =
        static_cast<double>(result.rsm.starting_serving);
    result.metrics["rsm_recommended"] =
        static_cast<double>(result.rsm.recommended_serving);
    result.metrics["rsm_reduction_pct"] =
        result.rsm.reduction_fraction() * 100.0;
    result.metrics["rsm_iterations"] =
        static_cast<double>(result.rsm.iterations.size());
    result.metrics["rsm_slo_limited"] = result.rsm.slo_limit_reached ? 1.0 : 0.0;
  }

  // --- Step 3: Model --------------------------------------------------------
  std::optional<workload::SyntheticWorkload> fitted;
  if (spec.runs(PipelineStep::kModel) || spec.runs(PipelineStep::kValidate)) {
    workload::RequestType fetch;
    fetch.weight = 0.75;
    fetch.cost_mean = 1.0;
    fetch.cost_sigma = 0.25;
    workload::RequestType render;
    render.weight = 0.25;
    render.cost_mean = 3.2;
    render.cost_sigma = 0.4;
    render.dependency_latency_ms = 12.0;
    const workload::SyntheticWorkload production{
        workload::RequestMix({fetch, render})};
    const auto observed = production.generate(500.0, 120.0, spec.seed + 6);
    fitted = workload::SyntheticWorkload::fit(observed, 2);
    if (spec.runs(PipelineStep::kModel)) {
      const auto replay = fitted->generate(500.0, 120.0, spec.seed + 8);
      result.model_cmp =
          workload::SyntheticWorkload::compare(replay, observed, 2);
      result.metrics["model_equivalent"] = result.model_cmp.equivalent ? 1.0 : 0.0;
      result.metrics["model_type_distance"] = result.model_cmp.type_distance;
    }
  }

  // --- Step 4: Validate -----------------------------------------------------
  if (spec.runs(PipelineStep::kValidate) && fitted) {
    sim::RequestSimConfig pool;
    pool.servers = 4;
    pool.cores = 8.0;
    pool.base_service_ms = 4.0;
    pool.window_seconds = 10;
    sim::RequestSimConfig candidate = pool;
    candidate.defect.service_factor = 1.18;

    core::GateOptions gate_opt;
    gate_opt.nominal_rps_per_server = 500.0;
    gate_opt.step_duration_s = 20.0;
    result.gate =
        core::RegressionGate(gate_opt).evaluate(pool, candidate, *fitted);
    result.metrics["gate_blocked"] = result.gate.pass ? 0.0 : 1.0;
    result.metrics["gate_max_clean_rps"] = result.gate.max_clean_rps;
  }
}

void evaluate_assertions(const ScenarioSpec& spec, ScenarioRunResult& result) {
  for (const ScenarioAssertion& assertion : spec.assertions) {
    AssertionOutcome outcome;
    outcome.assertion = assertion;
    const auto it = result.metrics.find(assertion.metric);
    if (it == result.metrics.end()) {
      outcome.observed = std::numeric_limits<double>::quiet_NaN();
      outcome.pass = false;
    } else {
      outcome.observed = it->second;
      outcome.pass = assertion.holds(it->second);
    }
    result.assertions_pass = result.assertions_pass && outcome.pass;
    result.assertions.push_back(outcome);
  }
}

/// The recording truncated at `end`: exactly the telemetry the pipeline's
/// measure/fit stages saw in the original run, rebuilt through the same
/// batched-merge write path the simulator records through.
[[nodiscard]] telemetry::MetricStore truncate_store(
    const telemetry::MetricStore& full, telemetry::SimTime end) {
  telemetry::MetricStore out;
  telemetry::MetricBuffer buffer;
  for (const telemetry::SeriesKey& key : full.keys()) {
    const telemetry::SeriesView view =
        full.series(key).slice(std::numeric_limits<telemetry::SimTime>::min(),
                               end);
    for (std::size_t i = 0; i < view.size(); ++i) {
      buffer.record(key, view.time_at(i), view.value_at(i));
    }
    out.merge(buffer);
    buffer.clear();
  }
  return out;
}

}  // namespace

sim::FleetConfig ScenarioRunner::build_fleet(
    const ScenarioSpec& spec, const sim::MicroserviceCatalog& catalog) {
  const std::string problem = validate(spec);
  if (!problem.empty()) {
    throw std::invalid_argument("scenario: " + problem);
  }

  sim::FleetConfig config;
  switch (spec.fleet) {
    case FleetKind::kSinglePool:
      require_service(catalog, spec.service);
      config = sim::single_pool_fleet(catalog, spec.service, spec.servers,
                                      spec.seed);
      break;
    case FleetKind::kMultiDc:
      require_service(catalog, spec.service);
      config = sim::multi_dc_pool_fleet(catalog, spec.service,
                                        spec.datacenters, spec.servers,
                                        spec.seed);
      break;
    case FleetKind::kStandard: {
      sim::StandardFleetOptions options;
      if (!spec.services.empty()) options.services = spec.services;
      for (const std::string& service : options.services) {
        require_service(catalog, service);
      }
      options.regional_peak_rps = spec.regional_peak_rps;
      options.heterogeneous_utilization = spec.heterogeneous;
      options.seed = spec.seed;
      config = sim::standard_fleet(catalog, options);
      break;
    }
  }
  config.window_seconds = spec.window_seconds;
  config.threads = spec.threads;

  for (const DatacenterOverride& o : spec.datacenter_overrides) {
    sim::DatacenterConfig& dc = config.datacenters.at(o.datacenter);
    if (o.demand_weight) dc.demand_weight = *o.demand_weight;
    if (o.timezone_offset_hours) {
      dc.timezone_offset_hours = *o.timezone_offset_hours;
    }
  }
  for (const PoolOverride& o : spec.pool_overrides) {
    sim::PoolConfig& pool =
        config.datacenters.at(o.datacenter).pools.at(o.pool);
    if (o.servers) pool.servers = *o.servers;
    if (o.demand_multiplier) pool.demand_multiplier = *o.demand_multiplier;
    if (o.burst_multiplier) pool.burst_multiplier = *o.burst_multiplier;
    if (o.burst_start_hour) pool.burst_start_hour = *o.burst_start_hour;
    if (o.burst_hours) pool.burst_hours = *o.burst_hours;
  }

  for (const ScenarioEvent& e : spec.events) {
    switch (e.kind) {
      case ScenarioEventKind::kTrafficMultiplier:
      case ScenarioEventKind::kDatacenterOutage: {
        workload::CapacityEvent event;
        event.kind = e.kind == ScenarioEventKind::kTrafficMultiplier
                         ? workload::EventKind::kTrafficMultiplier
                         : workload::EventKind::kDatacenterOutage;
        event.start = hours_to_sim(e.start_hour);
        event.end = hours_to_sim(e.start_hour + e.duration_hours);
        event.datacenter = e.datacenter;
        event.multiplier = e.multiplier;
        config.events.add(event);
        break;
      }
      case ScenarioEventKind::kMaintenanceWave:
        attach_wave(config, e);
        break;
      case ScenarioEventKind::kServingReduction:
        break;  // Runtime action; applied by run().
    }
  }
  return config;
}

ScenarioRunResult ScenarioRunner::run(const ScenarioSpec& spec) const {
  const sim::MicroserviceCatalog catalog;
  sim::FleetConfig config = build_fleet(spec, catalog);
  sim::FleetSimulator fleet(std::move(config), catalog);
  return run_on_fleet(spec, fleet, catalog);
}

ScenarioRunResult ScenarioRunner::run_on_fleet(
    const ScenarioSpec& spec, sim::FleetSimulator& fleet,
    const sim::MicroserviceCatalog& catalog) const {
  ScenarioRunResult result;
  result.spec = spec;
  result.thread_count = fleet.thread_count();

  const telemetry::SimTime horizon = spec.days * kDay;

  // --- Observation phase, pausing at serving-reduction boundaries ---------
  apply_serving_reductions(fleet, spec, horizon, /*step_to_events=*/true);
  fleet.run_until(horizon);
  fleet.finish_day();

  compute_environment_metrics(fleet, spec, result.metrics);

  const std::string& pool_service =
      fleet.config().datacenters[0].pools[0].service;
  const sim::MicroserviceProfile& profile = catalog.by_name(pool_service);
  result.latency_slo_ms = profile.latency_slo_ms;

  core::SimPoolBackend backend(&fleet, 0, 0);
  PipelineContext ctx;
  ctx.store = &fleet.store();
  ctx.server_days = fleet.server_day_cpu();
  ctx.backend = &backend;
  ctx.latency_slo_ms = profile.latency_slo_ms;
  ctx.datacenter_count = fleet.config().datacenters.size();
  run_pipeline_steps(spec, ctx, result);

  evaluate_assertions(spec, result);
  return result;
}

ScenarioRunResult ScenarioRunner::replay(const ScenarioSpec& spec,
                                         const ReplayInputs& inputs) const {
  if (inputs.trace == nullptr) {
    throw std::invalid_argument("ScenarioRunner::replay: null trace store");
  }

  ScenarioRunResult result;
  result.spec = spec;

  // Config oracle: built exactly as the recording run built it, but never
  // stepped — it answers pure-config questions (pool sizes, demand curves,
  // event windows) while every observation comes from the trace.
  const sim::MicroserviceCatalog catalog;
  sim::FleetConfig config = build_fleet(spec, catalog);
  sim::FleetSimulator fleet(std::move(config), catalog);
  result.thread_count = fleet.thread_count();

  const telemetry::SimTime horizon = spec.days * kDay;

  // Reductions move the control variable only; their telemetry is already
  // in the trace. Applying them yields the recording's serving count at
  // the horizon — the RSM planner's starting point.
  apply_serving_reductions(fleet, spec, horizon, /*step_to_events=*/false);

  compute_environment_metrics(fleet, spec, result.metrics);

  const std::string& pool_service =
      fleet.config().datacenters[0].pools[0].service;
  const sim::MicroserviceProfile& profile = catalog.by_name(pool_service);
  result.latency_slo_ms = profile.latency_slo_ms;

  const telemetry::MetricStore observation =
      truncate_store(*inputs.trace, horizon);

  core::TraceExperimentBackend::Options trace_opt;
  trace_opt.datacenter = 0;
  trace_opt.pool = 0;
  trace_opt.pool_size = fleet.pool_size(0, 0);
  trace_opt.serving = fleet.serving_count(0, 0);
  // The recording's RSM phase began where run_until left the fleet: the
  // first window boundary at or after the horizon (a horizon that is not
  // a window multiple is overshot by one partial step).
  trace_opt.start = (horizon + spec.window_seconds - 1) / spec.window_seconds *
                    spec.window_seconds;
  trace_opt.window_seconds = spec.window_seconds;
  core::TraceExperimentBackend backend(inputs.trace, trace_opt);

  // Per-server-day rows as of measure time: the recording kept appending
  // rows during the RSM phase (days at or past the horizon), which the
  // measure step had not seen.
  std::vector<sim::ServerDayCpu> observation_days;
  observation_days.reserve(inputs.server_days.size());
  for (const sim::ServerDayCpu& day : inputs.server_days) {
    if (day.day < spec.days) observation_days.push_back(day);
  }

  PipelineContext ctx;
  ctx.store = &observation;
  ctx.server_days = observation_days;
  ctx.backend = &backend;
  ctx.latency_slo_ms = profile.latency_slo_ms;
  ctx.datacenter_count = fleet.config().datacenters.size();
  run_pipeline_steps(spec, ctx, result);

  evaluate_assertions(spec, result);
  return result;
}

std::string format_summary(const ScenarioRunResult& result) {
  const ScenarioSpec& spec = result.spec;
  std::string out;
  out += "scenario = " + spec.name + "\n";
  out += "seed = " + std::to_string(spec.seed) + "\n";
  out += "days = " + std::to_string(spec.days) + "\n";
  out += "window_seconds = " + std::to_string(spec.window_seconds) + "\n";
  std::string steps;
  if (spec.runs(PipelineStep::kMeasure)) steps += "measure,";
  if (spec.runs(PipelineStep::kOptimize)) steps += "optimize,";
  if (spec.runs(PipelineStep::kModel)) steps += "model,";
  if (spec.runs(PipelineStep::kValidate)) steps += "validate,";
  if (!steps.empty()) steps.pop_back();
  out += "steps = " + steps + "\n";
  switch (spec.fleet) {
    case FleetKind::kSinglePool: out += "fleet = single_pool\n"; break;
    case FleetKind::kMultiDc: out += "fleet = multi_dc\n"; break;
    case FleetKind::kStandard: out += "fleet = standard\n"; break;
  }
  if (spec.fleet != FleetKind::kStandard) {
    out += "service = " + spec.service + "\n";
  }
  out += "events = " + std::to_string(spec.events.size()) + "\n";
  for (const auto& [name, value] : result.metrics) {
    out += "metric " + name + " = " + format_value(value) + "\n";
  }
  for (const AssertionOutcome& outcome : result.assertions) {
    out += "assert " + outcome.assertion.metric + " " +
           std::string(to_string(outcome.assertion.op)) + " " +
           format_value(outcome.assertion.value) + " : " +
           (outcome.pass ? "PASS" : "FAIL") + " (" +
           format_value(outcome.observed) + ")\n";
  }
  out += std::string("result = ") +
         (result.assertions_pass ? "PASS" : "FAIL") + "\n";
  return out;
}

}  // namespace headroom::scenario
