#include "scenario/scenario_runner.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "core/sim_backend.h"
#include "core/trace_backend.h"
#include "scenario/pipeline_session.h"
#include "workload/events.h"

namespace headroom::scenario {

namespace {

constexpr telemetry::SimTime kDay = kDaySeconds;

void require_service(const sim::MicroserviceCatalog& catalog,
                     const std::string& service) {
  if (!catalog.index_of(service)) {
    throw std::invalid_argument("scenario: unknown service '" + service +
                                "' (not in the micro-service catalog)");
  }
}

/// Attaches one maintenance wave to every targeted pool as PoolIncidents.
/// Incident times are pool-local; the wave's absolute start hour is shifted
/// by each DC's timezone so the wave hits every pool at the same sim time.
/// MaintenanceSchedule evaluates an incident within one local day only, so
/// a wave whose local window crosses midnight is split into one incident
/// per touched day — without this, the post-midnight portion would be
/// silently dropped for DCs whose offset pushes the window over 24:00.
void attach_wave(sim::FleetConfig& config, const ScenarioEvent& event) {
  for (std::uint32_t d = 0; d < config.datacenters.size(); ++d) {
    if (event.datacenter && *event.datacenter != d) continue;
    sim::DatacenterConfig& dc = config.datacenters[d];
    double local_start_hour = event.start_hour + dc.timezone_offset_hours;
    double remaining_hours = event.duration_hours;
    std::vector<sim::PoolIncident> pieces;
    while (remaining_hours > 0.0) {
      sim::PoolIncident incident;
      incident.day =
          static_cast<std::int64_t>(std::floor(local_start_hour / 24.0));
      incident.start_hour =
          local_start_hour - 24.0 * static_cast<double>(incident.day);
      incident.duration_hours =
          std::min(remaining_hours, 24.0 - incident.start_hour);
      if (incident.duration_hours <= 0.0) break;  // FP guard at a boundary
      incident.offline_fraction = event.offline_fraction;
      pieces.push_back(incident);
      local_start_hour += incident.duration_hours;
      remaining_hours -= incident.duration_hours;
    }
    for (std::uint32_t p = 0; p < dc.pools.size(); ++p) {
      if (event.pool && *event.pool != p) continue;
      sim::PoolConfig& pool = dc.pools[p];
      pool.incidents.insert(pool.incidents.end(), pieces.begin(),
                            pieces.end());
    }
  }
}

[[nodiscard]] std::string format_value(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

/// One PipelineSession driven start-to-finish: the batch pipeline is the
/// streaming pipeline replayed in a single call (see pipeline_session.h).
void run_pipeline_steps(const ScenarioSpec& spec, const PipelineContext& ctx,
                        ScenarioRunResult& result) {
  PipelineSession session(spec, ctx);
  session.run_measure_and_plan(result);
  session.start_rsm();
  if (!session.advance_rsm()) {
    throw std::runtime_error(
        "scenario: pipeline backend reported pending data in a batch run");
  }
  session.finalize(result);
}

}  // namespace

sim::FleetConfig ScenarioRunner::build_fleet(
    const ScenarioSpec& spec, const sim::MicroserviceCatalog& catalog) {
  const std::string problem = validate(spec);
  if (!problem.empty()) {
    throw std::invalid_argument("scenario: " + problem);
  }

  sim::FleetConfig config;
  switch (spec.fleet) {
    case FleetKind::kSinglePool:
      require_service(catalog, spec.service);
      config = sim::single_pool_fleet(catalog, spec.service, spec.servers,
                                      spec.seed);
      break;
    case FleetKind::kMultiDc:
      require_service(catalog, spec.service);
      config = sim::multi_dc_pool_fleet(catalog, spec.service,
                                        spec.datacenters, spec.servers,
                                        spec.seed);
      break;
    case FleetKind::kStandard: {
      sim::StandardFleetOptions options;
      if (!spec.services.empty()) options.services = spec.services;
      for (const std::string& service : options.services) {
        require_service(catalog, service);
      }
      options.regional_peak_rps = spec.regional_peak_rps;
      options.heterogeneous_utilization = spec.heterogeneous;
      options.seed = spec.seed;
      config = sim::standard_fleet(catalog, options);
      break;
    }
  }
  config.window_seconds = spec.window_seconds;
  config.threads = spec.threads;
  config.quiescent_dead_band = spec.quiescent_dead_band;
  config.per_server_accounting = spec.per_server_accounting;
  config.failover = spec.failover;

  for (const DatacenterOverride& o : spec.datacenter_overrides) {
    sim::DatacenterConfig& dc = config.datacenters.at(o.datacenter);
    if (o.demand_weight) dc.demand_weight = *o.demand_weight;
    if (o.timezone_offset_hours) {
      dc.timezone_offset_hours = *o.timezone_offset_hours;
    }
  }
  for (const PoolOverride& o : spec.pool_overrides) {
    sim::PoolConfig& pool =
        config.datacenters.at(o.datacenter).pools.at(o.pool);
    if (o.servers) pool.servers = *o.servers;
    if (o.demand_multiplier) pool.demand_multiplier = *o.demand_multiplier;
    if (o.burst_multiplier) pool.burst_multiplier = *o.burst_multiplier;
    if (o.burst_start_hour) pool.burst_start_hour = *o.burst_start_hour;
    if (o.burst_hours) pool.burst_hours = *o.burst_hours;
  }

  for (const ScenarioEvent& e : spec.events) {
    switch (e.kind) {
      case ScenarioEventKind::kTrafficMultiplier:
      case ScenarioEventKind::kDatacenterOutage: {
        workload::CapacityEvent event;
        event.kind = e.kind == ScenarioEventKind::kTrafficMultiplier
                         ? workload::EventKind::kTrafficMultiplier
                         : workload::EventKind::kDatacenterOutage;
        event.start = hours_to_sim(e.start_hour);
        event.end = hours_to_sim(e.start_hour + e.duration_hours);
        event.datacenter = e.datacenter;
        event.multiplier = e.multiplier;
        config.events.add(event);
        break;
      }
      case ScenarioEventKind::kMaintenanceWave:
        attach_wave(config, e);
        break;
      case ScenarioEventKind::kServingReduction:
        break;  // Runtime action; applied by run().
    }
  }
  return config;
}

ScenarioRunResult ScenarioRunner::run(const ScenarioSpec& spec) const {
  const sim::MicroserviceCatalog catalog;
  sim::FleetConfig config = build_fleet(spec, catalog);
  sim::FleetSimulator fleet(std::move(config), catalog);
  return run_on_fleet(spec, fleet, catalog);
}

ScenarioRunResult ScenarioRunner::run_on_fleet(
    const ScenarioSpec& spec, sim::FleetSimulator& fleet,
    const sim::MicroserviceCatalog& catalog) const {
  ScenarioRunResult result;
  result.spec = spec;
  result.thread_count = fleet.thread_count();

  const telemetry::SimTime horizon = spec.days * kDay;

  // --- Observation phase, pausing at serving-reduction boundaries ---------
  apply_serving_reductions(fleet, spec, horizon, /*step_to_events=*/true);
  fleet.run_until(horizon);
  fleet.finish_day();

  compute_environment_metrics(fleet, spec, result.metrics);

  const std::string& pool_service =
      fleet.config().datacenters[0].pools[0].service;
  const sim::MicroserviceProfile& profile = catalog.by_name(pool_service);
  result.latency_slo_ms = profile.latency_slo_ms;

  core::SimPoolBackend backend(&fleet, 0, 0);
  PipelineContext ctx;
  ctx.store = &fleet.store();
  ctx.server_days = fleet.server_day_cpu();
  ctx.backend = &backend;
  ctx.latency_slo_ms = profile.latency_slo_ms;
  ctx.datacenter_count = fleet.config().datacenters.size();
  run_pipeline_steps(spec, ctx, result);

  compute_pool_assertion_metrics(fleet.store(), spec, result.metrics);
  evaluate_assertions(spec, result);
  return result;
}

ScenarioRunResult ScenarioRunner::replay(const ScenarioSpec& spec,
                                         const ReplayInputs& inputs) const {
  if (inputs.trace == nullptr) {
    throw std::invalid_argument("ScenarioRunner::replay: null trace store");
  }

  ScenarioRunResult result;
  result.spec = spec;

  // Config oracle: built exactly as the recording run built it, but never
  // stepped — it answers pure-config questions (pool sizes, demand curves,
  // event windows) while every observation comes from the trace.
  const sim::MicroserviceCatalog catalog;
  sim::FleetConfig config = build_fleet(spec, catalog);
  sim::FleetSimulator fleet(std::move(config), catalog);
  result.thread_count = fleet.thread_count();

  const telemetry::SimTime horizon = spec.days * kDay;

  // Reductions move the control variable only; their telemetry is already
  // in the trace. Applying them yields the recording's serving count at
  // the horizon — the RSM planner's starting point.
  apply_serving_reductions(fleet, spec, horizon, /*step_to_events=*/false);

  compute_environment_metrics(fleet, spec, result.metrics);

  const std::string& pool_service =
      fleet.config().datacenters[0].pools[0].service;
  const sim::MicroserviceProfile& profile = catalog.by_name(pool_service);
  result.latency_slo_ms = profile.latency_slo_ms;

  const telemetry::MetricStore observation =
      truncate_store(*inputs.trace, horizon);

  core::TraceExperimentBackend::Options trace_opt;
  trace_opt.datacenter = 0;
  trace_opt.pool = 0;
  trace_opt.pool_size = fleet.pool_size(0, 0);
  trace_opt.serving = fleet.serving_count(0, 0);
  // The recording's RSM phase began where run_until left the fleet: the
  // first window boundary at or after the horizon (a horizon that is not
  // a window multiple is overshot by one partial step).
  trace_opt.start = (horizon + spec.window_seconds - 1) / spec.window_seconds *
                    spec.window_seconds;
  trace_opt.window_seconds = spec.window_seconds;
  core::TraceExperimentBackend backend(inputs.trace, trace_opt);

  // Per-server-day rows as of measure time: the recording kept appending
  // rows during the RSM phase (days at or past the horizon), which the
  // measure step had not seen.
  std::vector<sim::ServerDayCpu> observation_days;
  observation_days.reserve(inputs.server_days.size());
  for (const sim::ServerDayCpu& day : inputs.server_days) {
    if (day.day < spec.days) observation_days.push_back(day);
  }

  PipelineContext ctx;
  ctx.store = &observation;
  ctx.server_days = observation_days;
  ctx.backend = &backend;
  ctx.latency_slo_ms = profile.latency_slo_ms;
  ctx.datacenter_count = fleet.config().datacenters.size();
  run_pipeline_steps(spec, ctx, result);

  compute_pool_assertion_metrics(observation, spec, result.metrics);
  evaluate_assertions(spec, result);
  return result;
}

std::string format_summary(const ScenarioRunResult& result) {
  const ScenarioSpec& spec = result.spec;
  std::string out;
  out += "scenario = " + spec.name + "\n";
  out += "seed = " + std::to_string(spec.seed) + "\n";
  out += "days = " + std::to_string(spec.days) + "\n";
  out += "window_seconds = " + std::to_string(spec.window_seconds) + "\n";
  std::string steps;
  if (spec.runs(PipelineStep::kMeasure)) steps += "measure,";
  if (spec.runs(PipelineStep::kOptimize)) steps += "optimize,";
  if (spec.runs(PipelineStep::kModel)) steps += "model,";
  if (spec.runs(PipelineStep::kValidate)) steps += "validate,";
  if (!steps.empty()) steps.pop_back();
  out += "steps = " + steps + "\n";
  switch (spec.fleet) {
    case FleetKind::kSinglePool: out += "fleet = single_pool\n"; break;
    case FleetKind::kMultiDc: out += "fleet = multi_dc\n"; break;
    case FleetKind::kStandard: out += "fleet = standard\n"; break;
  }
  if (spec.fleet != FleetKind::kStandard) {
    out += "service = " + spec.service + "\n";
  }
  out += "events = " + std::to_string(spec.events.size()) + "\n";
  for (const auto& [name, value] : result.metrics) {
    out += "metric " + name + " = " + format_value(value) + "\n";
  }
  for (const AssertionOutcome& outcome : result.assertions) {
    out += "assert " + outcome.assertion.metric + " " +
           std::string(to_string(outcome.assertion.op)) + " " +
           format_value(outcome.assertion.value) + " : " +
           (outcome.pass ? "PASS" : "FAIL") + " (" +
           format_value(outcome.observed) + ")\n";
  }
  out += std::string("result = ") +
         (result.assertions_pass ? "PASS" : "FAIL") + "\n";
  return out;
}

}  // namespace headroom::scenario
