// Server hardware generations.
//
// Pools are nominally homogeneous, but the paper found one pool whose
// Fig. 3 CPU scatter split into two clusters because "all servers in the
// less utilized range are newer and more powerful" — a hardware refresh in
// flight. Generations scale per-request cost so the simulator can reproduce
// that bimodality (and the grouper can detect it).
#pragma once

#include <string>
#include <vector>

namespace headroom::sim {

struct HardwareGeneration {
  std::string name = "gen1";
  /// Relative CPU speed; per-request CPU cost divides by this.
  double cpu_scale = 1.0;
  /// Relative baseline service latency; warm latency multiplies by this.
  double latency_scale = 1.0;
  double cores = 16.0;
};

/// Share of a pool's servers on one generation.
struct HardwareShare {
  HardwareGeneration generation;
  double fraction = 1.0;
};

/// Expands shares into a per-server generation assignment (deterministic:
/// earlier shares take the lower server indices).
[[nodiscard]] std::vector<HardwareGeneration> assign_hardware(
    const std::vector<HardwareShare>& shares, std::size_t server_count);

}  // namespace headroom::sim
