// Request-level pool simulator for offline validation (Step 4).
//
// Simulates one micro-service pool at individual-request granularity:
// round-robin load balancing over N processor-sharing servers, per-request
// service demand from the workload's cost units, post-restart cold-start
// penalties, and an injectable performance defect. Two instances driven by
// the *identical* synthetic request stream are the paper's offline A/B
// harness: "two server pools of the same size and hardware, one running
// with the change and the other without" (§II-D, Fig. 16).
#pragma once

#include <cstdint>
#include <vector>

#include "stats/descriptive.h"
#include "telemetry/metric_store.h"
#include "workload/request_mix.h"

namespace headroom::sim {

/// A deliberately introduced (or accidentally shipped) performance change.
/// The defaults are "no defect"; the Fig. 16 bench injects a super-linear
/// latency regression that only shows at higher workloads — the class of
/// bug the paper's gate caught in the memory-leak fix.
struct PerformanceDefect {
  /// Multiplies every request's service demand (a flat CPU regression).
  double service_factor = 1.0;
  /// Service demand grows by this fraction per 1000 requests a server has
  /// handled since restart (a leak-like degradation).
  double leak_per_1k_requests = 0.0;
  /// When a server's concurrency exceeds this, each resident request takes
  /// `overload_extra_ms` longer (lock contention under load). 0 disables.
  std::size_t overload_concurrency = 0;
  double overload_extra_ms = 0.0;
};

struct RequestSimConfig {
  std::size_t servers = 10;
  double cores = 16.0;
  /// Single-core CPU milliseconds per request cost-unit.
  double base_service_ms = 4.0;
  /// Cold start: a freshly started server's requests cost extra until this
  /// many requests have warmed caches/JIT.
  std::size_t warmup_requests = 200;
  double cold_cost_multiplier = 2.5;
  telemetry::SimTime window_seconds = 60;
  PerformanceDefect defect;
  std::uint64_t seed = 99;
};

/// Outcome of one completed request.
struct CompletedRequest {
  double arrival_s = 0.0;
  double finish_s = 0.0;
  double latency_ms = 0.0;
  std::uint32_t server = 0;
  std::uint32_t type = 0;
};

struct RequestSimResult {
  std::vector<CompletedRequest> completed;
  /// Pool-scope series (windowed): kRequestsPerSecond, kLatencyP95Ms,
  /// kLatencyMeanMs, kCpuPercentAttributed.
  telemetry::MetricStore store;
  /// Overall latency summary (ms).
  stats::Summary latency;
  double latency_p95_ms = 0.0;
  double mean_cpu_pct = 0.0;
};

/// Runs the pool over an arrival-ordered request stream. The stream ends
/// the run: all in-flight requests are drained.
[[nodiscard]] RequestSimResult simulate_pool(
    const RequestSimConfig& config,
    std::span<const workload::Request> stream);

}  // namespace headroom::sim
