#include "sim/topology.h"

#include <cmath>
#include <stdexcept>

#include "sim/rng.h"

namespace headroom::sim {

std::size_t size_pool(double peak_pool_rps, double target_rps_per_server_p95) {
  if (peak_pool_rps <= 0.0 || target_rps_per_server_p95 <= 0.0) {
    throw std::invalid_argument("size_pool: arguments must be positive");
  }
  const double n = std::ceil(peak_pool_rps / target_rps_per_server_p95);
  return static_cast<std::size_t>(std::max(1.0, n));
}

std::vector<DatacenterConfig> standard_datacenters() {
  // Nine regions; timezone offsets stagger the diurnal peaks around the
  // globe, demand weights reflect unequal regional populations.
  const struct {
    const char* name;
    double tz;
    double weight;
  } kRegions[] = {
      {"DC1", -8.0, 1.20}, {"DC2", -5.0, 1.00}, {"DC3", -3.0, 0.50},
      {"DC4", 0.0, 1.10},  {"DC5", 1.0, 0.90},  {"DC6", 3.0, 0.60},
      {"DC7", 5.5, 0.80},  {"DC8", 8.0, 1.00},  {"DC9", 9.0, 0.70},
  };
  std::vector<DatacenterConfig> out;
  for (const auto& r : kRegions) {
    DatacenterConfig dc;
    dc.name = r.name;
    dc.timezone_offset_hours = r.tz;
    dc.demand_weight = r.weight;
    out.push_back(dc);
  }
  return out;
}

namespace {

/// Availability practices per service, calibrated to the paper's §III-B2
/// findings: well-managed pools (D, F, G, H) lose ~2% to deploys+infra;
/// pool C runs heavyweight deploys (~90% availability, Fig. 15); pool B's
/// servers are additionally re-purposed off-peak for offline validation
/// (the <80% cohort of Fig. 14); A and E sit in between (~85% mode).
MaintenancePolicy maintenance_for(const std::string& service) {
  MaintenancePolicy p;
  p.infra_event_daily_prob = 0.02;
  p.infra_event_hours = 4.0;
  if (service == "A") {
    p.deploy_offline_hours = 1.0;  // ~95.5% (Table IV online: 4%)
  } else if (service == "E") {
    p.deploy_offline_hours = 0.7;  // ~97% (Table IV online: 2%)
  } else if (service == "B") {
    p.deploy_offline_hours = 3.4;
    p.repurpose_fraction = 0.5;  // half the pool loaned out off-peak
    p.repurpose_start_hour = 1.0;
    p.repurpose_hours = 6.0;
  } else if (service == "C") {
    p.deploy_offline_hours = 2.2;  // ~90% (Fig. 15)
  } else if (service == "I") {
    p.deploy_offline_hours = 0.6;
  } else {
    p.deploy_offline_hours = 0.4;  // well-managed: ~98%
  }
  return p;
}

}  // namespace

namespace {

MaintenancePolicy quiet_maintenance() {
  MaintenancePolicy p;
  p.deploy_offline_hours = 0.0;
  p.repurpose_fraction = 0.0;
  p.infra_event_daily_prob = 0.0;
  return p;
}

}  // namespace

FleetConfig single_pool_fleet(const MicroserviceCatalog& catalog,
                              const std::string& service, std::size_t servers,
                              std::uint64_t seed) {
  const MicroserviceProfile& profile = catalog.by_name(service);
  FleetConfig config;
  config.seed = seed;
  DatacenterConfig dc;
  dc.name = "DC1";
  dc.demand_weight = 1.0;
  PoolConfig pool;
  pool.service = service;
  pool.servers = servers;
  pool.maintenance = quiet_maintenance();
  dc.pools.push_back(std::move(pool));
  config.datacenters.push_back(std::move(dc));
  // Size demand so the pool's P95 per-server RPS hits the operating point.
  config.diurnal.peak_rps = profile.target_rps_per_server_p95 *
                            static_cast<double>(servers) / profile.request_fan;
  config.diurnal.trough_fraction = 0.45;
  config.diurnal.noise_sigma = 0.03;
  // Experiments compare weekday baselines against weekday reductions
  // (the paper observed "over 5 weekdays"); no weekend dip.
  config.diurnal.weekend_factor = 1.0;
  return config;
}

FleetConfig multi_dc_pool_fleet(const MicroserviceCatalog& catalog,
                                const std::string& service,
                                std::size_t datacenter_count,
                                std::size_t servers_per_pool,
                                std::uint64_t seed) {
  const MicroserviceProfile& profile = catalog.by_name(service);
  FleetConfig config;
  config.seed = seed;
  std::vector<DatacenterConfig> all = standard_datacenters();
  if (datacenter_count > all.size()) datacenter_count = all.size();
  for (std::size_t d = 0; d < datacenter_count; ++d) {
    DatacenterConfig dc = all[d];
    PoolConfig pool;
    pool.service = service;
    pool.servers = servers_per_pool;
    pool.maintenance = quiet_maintenance();
    dc.pools.push_back(std::move(pool));
    config.datacenters.push_back(std::move(dc));
  }
  // Weight-1 region peak such that per-server P95 hits the target in an
  // average-weight region; heavier regions run their pools hotter (the
  // per-DC spread visible in Fig. 2's panels).
  config.diurnal.peak_rps = profile.target_rps_per_server_p95 *
                            static_cast<double>(servers_per_pool) /
                            profile.request_fan;
  config.diurnal.trough_fraction = 0.45;
  config.diurnal.noise_sigma = 0.03;
  config.diurnal.weekend_factor = 1.0;
  return config;
}

FleetConfig standard_fleet(const MicroserviceCatalog& catalog,
                           const StandardFleetOptions& options) {
  FleetConfig config;
  config.seed = options.seed;
  config.datacenters = standard_datacenters();
  config.diurnal.peak_rps = options.regional_peak_rps;
  config.diurnal.trough_fraction = 0.45;
  config.diurnal.peak_hour = 20.0;
  config.diurnal.noise_sigma = 0.03;

  for (std::size_t d = 0; d < config.datacenters.size(); ++d) {
    DatacenterConfig& dc = config.datacenters[d];
    for (const std::string& service : options.services) {
      const MicroserviceProfile& profile = catalog.by_name(service);
      PoolConfig pool;
      pool.service = service;
      const double peak_pool_rps =
          options.regional_peak_rps * dc.demand_weight * profile.request_fan;
      pool.servers = size_pool(peak_pool_rps, profile.target_rps_per_server_p95);
      pool.maintenance = maintenance_for(service);

      if (service == "I" && options.hardware_refresh_in_pool_i) {
        HardwareGeneration gen1;
        gen1.name = "gen1";
        HardwareGeneration gen2;
        gen2.name = "gen2";
        gen2.cpu_scale = 1.6;
        gen2.latency_scale = 0.9;
        pool.hardware = {HardwareShare{gen1, 0.5}, HardwareShare{gen2, 0.5}};
      }

      if (options.heterogeneous_utilization) {
        // Deterministically classify pools: ~60% cool, ~20% sustained-warm,
        // ~20% bursty. Bursty pools reproduce the paper's Figs. 12/13
        // shape — a fifth of servers show P95 CPU spikes of 30-100%, yet
        // only ~1% of all 120 s samples exceed 25% because the spikes are
        // short daily bursts, not sustained load.
        const double u = uniform01(
            mix_seed(options.seed, 0x07, d, catalog.index_of(service).value()));
        const double start = 14.0 + 4.0 * uniform01(mix_seed(
            options.seed, 0x0B, d, catalog.index_of(service).value()));
        if (u < 0.03) {
          pool.burst_multiplier = 5.0;   // the rare very-hot spikes
          pool.burst_hours = 2.2;
          pool.burst_start_hour = start;
          pool.hourly_spike_extra_pct = 12.0;
        } else if (u < 0.20) {
          pool.burst_multiplier = 3.3;   // spikes into the 30-45% band
          pool.burst_hours = 2.2;
          pool.burst_start_hour = start;
          pool.hourly_spike_extra_pct = 12.0;
        } else if (u < 0.40) {
          pool.demand_multiplier = 1.8;  // sustained-warm
        }
      }
      dc.pools.push_back(std::move(pool));
    }
  }
  return config;
}

}  // namespace headroom::sim
