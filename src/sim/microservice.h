// Micro-service profiles: the seven services of the paper's Table I.
//
// Each profile parameterizes the server response model (per-request CPU
// cost, latency curve, counter footprints) and the pool provisioning policy
// (target per-server load, over-provisioning headroom). Parameter values
// are calibrated so the simulated pools land on the paper's published
// curves — e.g. pool B's %CPU = 0.028·RPS + 1.37 (Fig. 8) and pool D's
// %CPU = 0.0916·RPS + 5.0 (Fig. 10).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace headroom::sim {

struct MicroserviceProfile {
  std::string name;         ///< "A".."G" (Table I key).
  std::string description;  ///< Table I text.

  // --- Workload shape -----------------------------------------------------
  /// Requests this micro-service processes per end-user service request
  /// (e.g. the metrics service G sees many internal calls per user hit).
  double request_fan = 1.0;

  // --- Response model (reference hardware, per server) --------------------
  double cost_ms_per_request = 4.0;  ///< CPU-ms consumed per request.
  double warm_latency_ms = 20.0;     ///< Plateau latency at moderate load.
  double cold_latency_ms = 5.0;      ///< Extra latency as load -> 0 (cache
                                     ///< priming / JIT; paper Fig. 6 note).
  double cold_decay_rps = 100.0;     ///< e-folding RPS of the cold term.
  double queue_gain = 6.0;           ///< Strength of the queueing-delay rise.
  /// Optional capacity knee: above `knee_rps` per server, latency rises as
  /// knee_gain_ms * (rps/knee - 1)². Models non-CPU cliffs (cache-partition
  /// exhaustion in in-memory stores, connection-table limits) that make
  /// some pools intolerant of even modest extra load — the small-savings
  /// rows of Table IV (A, C, G). 0 disables.
  double knee_rps = 0.0;
  double knee_gain_ms = 0.0;
  double latency_noise_frac = 0.01;  ///< Multiplicative latency jitter.

  /// Load-independent CPU of the service process itself (cache
  /// maintenance, heartbeats, JIT). Part of the *attributed* metric — this
  /// is the intercept of the paper's Fig. 8/10 linear fits.
  double process_base_cpu_pct = 1.5;
  double cpu_noise_rel = 0.02;       ///< Relative noise on attributed CPU.
  double cpu_noise_abs_pct = 0.10;   ///< Absolute noise on attributed CPU.

  // --- Background (non-primary-workload) resource usage -------------------
  double background_cpu_pct = 1.5;       ///< Mean background CPU.
  double background_cpu_noise_pct = 0.3; ///< Jitter of background CPU.
  /// Hourly background spike (log uploads etc.): extra %CPU for one window.
  double background_spike_pct = 0.0;

  // --- Other counters (Fig. 2 footprints) ---------------------------------
  double bytes_per_request = 20e3;
  double packets_per_request = 20.0;
  double memory_pages_base = 2000.0;     ///< Paging noise, load-independent.
  double memory_pages_noise = 4000.0;
  double disk_bytes_per_page = 2700.0;   ///< Disk reads driven by paging.
  double disk_queue_base = 0.1;

  // --- Provisioning policy -------------------------------------------------
  /// Pools are sized so the 95th-percentile per-server RPS lands here.
  double target_rps_per_server_p95 = 300.0;
  /// Extra capacity factor the service owner historically carried
  /// (the headroom this paper right-sizes). 1.0 = sized to target.
  double overprovision_factor = 1.0;

  // --- QoS -----------------------------------------------------------------
  double latency_slo_ms = 100.0;  ///< P95 latency objective.
};

/// The seven Table I micro-services, calibrated per DESIGN.md §5.
class MicroserviceCatalog {
 public:
  /// Builds the default catalog (services A-G).
  MicroserviceCatalog();

  [[nodiscard]] const MicroserviceProfile& by_name(std::string_view name) const;
  [[nodiscard]] const MicroserviceProfile& by_index(std::size_t index) const;
  [[nodiscard]] std::optional<std::size_t> index_of(std::string_view name) const;
  [[nodiscard]] std::size_t size() const noexcept { return profiles_.size(); }
  [[nodiscard]] const std::vector<MicroserviceProfile>& all() const noexcept {
    return profiles_;
  }

 private:
  std::vector<MicroserviceProfile> profiles_;
};

}  // namespace headroom::sim
