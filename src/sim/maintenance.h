// Planned-maintenance and failure scheduling for pool servers.
//
// Availability in the paper decomposes into: rolling software/config
// deployments (drain, apply, restart), pools re-purposed off-peak to run
// offline validation (the <80%-availability cohort of Fig. 14), uniform
// infrastructure maintenance (~2%, the floor the paper calls well-managed),
// and rare unplanned events. All four are modeled here, deterministically
// per (seed, server, day) so runs reproduce exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "telemetry/time_series.h"

namespace headroom::sim {

struct MaintenancePolicy {
  /// Hours per day each server spends offline for rolling deployments
  /// (staggered: each server gets its own slot).
  double deploy_offline_hours = 0.4;
  /// Fraction of the pool's servers loaned out for offline validation
  /// during the off-peak window (0 disables re-purposing).
  double repurpose_fraction = 0.0;
  double repurpose_start_hour = 1.0;  ///< Local time the loan starts.
  double repurpose_hours = 6.0;
  /// Per-server daily probability of an unplanned infra repair
  /// (OS upgrade, hardware swap, network change).
  double infra_event_daily_prob = 0.02;
  double infra_event_hours = 4.0;
};

/// A pool-wide incident: an extra fraction of servers offline for a window
/// on one day (the "occasional major unavailability days" of Fig. 15).
struct PoolIncident {
  std::int64_t day = 0;
  double offline_fraction = 0.3;
  double start_hour = 8.0;
  double duration_hours = 6.0;
};

/// Deterministic offline oracle for one pool.
class MaintenanceSchedule {
 public:
  MaintenanceSchedule(MaintenancePolicy policy, std::uint64_t seed,
                      double timezone_offset_hours);

  void add_incident(const PoolIncident& incident);

  /// Is server `index` (of `pool_size`) offline at absolute time `t`?
  [[nodiscard]] bool offline(std::uint32_t index, std::size_t pool_size,
                             telemetry::SimTime t) const noexcept;

  [[nodiscard]] const MaintenancePolicy& policy() const noexcept {
    return policy_;
  }

  /// Whether any pool-wide incident is scheduled. Pools with incidents are
  /// never held by the quiescent dead band: the incident's availability
  /// cliff is exactly what incident scenarios measure.
  [[nodiscard]] bool has_incidents() const noexcept {
    return !incidents_.empty();
  }

 private:
  MaintenancePolicy policy_;
  std::uint64_t seed_;
  double tz_seconds_;
  std::vector<PoolIncident> incidents_;
};

}  // namespace headroom::sim
