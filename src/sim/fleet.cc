#include "sim/fleet.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>

#include "sim/rng.h"

namespace headroom::sim {

namespace {

using telemetry::MetricKind;
using telemetry::SeriesKey;

constexpr double kSecondsPerDay = 86400.0;

/// Failover affinity: traffic from a failed region prefers nearby regions
/// (smaller timezone distance). This is what concentrates the load spike on
/// one neighbour (the paper's +127% DC) while the median survivor sees a
/// smaller increase.
double failover_affinity(double tz_a, double tz_b) noexcept {
  double d = std::fabs(tz_a - tz_b);
  if (d > 12.0) d = 24.0 - d;  // wrap around the globe
  return 1.0 / (1.0 + (d / 2.5) * (d / 2.5));
}

std::size_t resolve_threads(std::size_t configured) {
  if (configured != 0) return configured;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

FleetSimulator::FleetSimulator(FleetConfig config,
                               const MicroserviceCatalog& catalog)
    : config_(std::move(config)) {
  if (config_.datacenters.empty()) {
    throw std::invalid_argument("FleetSimulator: no datacenters");
  }
  if (config_.window_seconds <= 0) {
    throw std::invalid_argument("FleetSimulator: window must be positive");
  }

  regional_traffic_.reserve(config_.datacenters.size());
  for (const DatacenterConfig& dc : config_.datacenters) {
    workload::DiurnalParams params = config_.diurnal;
    params.peak_rps = config_.diurnal.peak_rps * dc.demand_weight;
    params.timezone_offset_hours = dc.timezone_offset_hours;
    regional_traffic_.emplace_back(params);
  }

  for (std::uint32_t d = 0; d < config_.datacenters.size(); ++d) {
    const DatacenterConfig& dc = config_.datacenters[d];
    for (std::uint32_t p = 0; p < dc.pools.size(); ++p) {
      const PoolConfig& pc = dc.pools[p];
      const MicroserviceProfile& profile = catalog.by_name(pc.service);

      PoolRuntime rt{.dc = d,
                     .pool = p,
                     .profile = &profile,
                     .demand_multiplier = pc.demand_multiplier,
                     .burst_multiplier = pc.burst_multiplier,
                     .burst_start_hour = pc.burst_start_hour,
                     .burst_hours = pc.burst_hours,
                     .hourly_spike_extra_pct = pc.hourly_spike_extra_pct,
                     .tz_offset_hours = dc.timezone_offset_hours,
                     .server_generation = {},
                     .models = {},
                     .maintenance = MaintenanceSchedule(
                         pc.maintenance,
                         mix_seed(config_.seed, 0xFA11, d, p),
                         dc.timezone_offset_hours),
                     .serving = pc.servers,
                     .cpu_digests = {},
                     .was_online = {}};
      for (const PoolIncident& inc : pc.incidents) {
        rt.maintenance.add_incident(inc);
      }

      const std::vector<HardwareGeneration> assignment =
          assign_hardware(pc.hardware, pc.servers);
      rt.server_generation.reserve(pc.servers);
      // Deduplicate response models by generation name. (Keying on the
      // floating-point effective cost wrongly merged distinct generations
      // whose scaled costs happened to collide, even though their latency
      // scale or core counts differed.)
      std::vector<std::string> model_names;
      for (const HardwareGeneration& gen : assignment) {
        std::size_t idx = model_names.size();
        for (std::size_t i = 0; i < model_names.size(); ++i) {
          if (model_names[i] == gen.name) {
            idx = i;
            break;
          }
        }
        if (idx == model_names.size()) {
          rt.models.emplace_back(profile, gen);
          model_names.push_back(gen.name);
        }
        rt.server_generation.push_back(static_cast<std::uint8_t>(idx));
      }
      rt.cpu_digests.resize(pc.servers);
      rt.was_online.assign(pc.servers, 1);
      pools_.push_back(std::move(rt));
    }
  }

  // Partition pools into per-thread shards: greedy largest-pool-first onto
  // the least-loaded shard (load = server count), breaking ties toward a
  // shard that already hosts the pool's datacenter. Deterministic, balanced
  // within one pool of optimal, and DC-affine when pool sizes repeat across
  // regions (the standard-fleet shape).
  const std::size_t lanes = std::max<std::size_t>(
      1, std::min(resolve_threads(config_.threads),
                  std::max<std::size_t>(pools_.size(), 1)));
  shards_.assign(lanes, {});
  std::vector<std::size_t> order(pools_.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return pools_[a].server_generation.size() >
           pools_[b].server_generation.size();
  });
  std::vector<std::size_t> load(lanes, 0);
  std::vector<std::vector<std::uint8_t>> hosts_dc(
      lanes, std::vector<std::uint8_t>(config_.datacenters.size(), 0));
  for (const std::size_t pool_index : order) {
    const std::uint32_t dc = pools_[pool_index].dc;
    std::size_t best = 0;
    for (std::size_t s = 1; s < lanes; ++s) {
      if (load[s] < load[best] ||
          (load[s] == load[best] && hosts_dc[s][dc] > hosts_dc[best][dc])) {
        best = s;
      }
    }
    shards_[best].push_back(pool_index);
    load[best] += pools_[pool_index].server_generation.size();
    hosts_dc[best][dc] = 1;
  }
  // Keep each shard's pools in topology order (cache-friendly, and the
  // serial path then walks pools exactly as the pre-sharding code did).
  for (std::vector<std::size_t>& shard : shards_) {
    std::sort(shard.begin(), shard.end());
  }
  shard_telemetry_.resize(shards_.size());
  // Size each shard's window buffers once, up front: the per-window entry
  // count is fixed by the topology (11 pool-scope series per pool, 3
  // per-server series when enabled, one availability event per rotation
  // member), so the stepping hot path never grows them.
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    std::size_t metric_entries = 0;
    std::size_t availability_entries = 0;
    for (const std::size_t pool_index : shards_[s]) {
      const std::size_t servers = pools_[pool_index].server_generation.size();
      if (config_.record_pool_series) metric_entries += 11;
      if (config_.record_server_series) metric_entries += servers * 3;
      availability_entries += servers;
    }
    shard_telemetry_[s].metrics.reserve(metric_entries);
    shard_telemetry_[s].availability.reserve(availability_entries);
  }
  if (shards_.size() > 1) {
    workers_ = std::make_unique<WorkerPool>(shards_.size());
  }
}

std::size_t FleetSimulator::total_servers() const noexcept {
  std::size_t n = 0;
  for (const PoolRuntime& rt : pools_) n += rt.server_generation.size();
  return n;
}

std::vector<double> FleetSimulator::regional_demands(SimTime t) const {
  const std::size_t n = config_.datacenters.size();
  std::vector<double> demand(n, 0.0);
  std::vector<std::uint8_t> down(n, 0);
  for (std::size_t d = 0; d < n; ++d) {
    down[d] = config_.events.datacenter_down(t, static_cast<std::uint32_t>(d))
                  ? 1u
                  : 0u;
    demand[d] = regional_traffic_[d].demand(t) *
                config_.events.traffic_multiplier(t, static_cast<std::uint32_t>(d));
  }
  // Outage failover: a down DC's demand redistributes to survivors,
  // weighted by capacity (demand weight) and geographic affinity.
  for (std::size_t f = 0; f < n; ++f) {
    if (!down[f]) continue;
    const double orphaned = demand[f];
    demand[f] = 0.0;
    double total_share = 0.0;
    for (std::size_t d = 0; d < n; ++d) {
      if (down[d]) continue;
      total_share += config_.datacenters[d].demand_weight *
                     failover_affinity(config_.datacenters[d].timezone_offset_hours,
                                       config_.datacenters[f].timezone_offset_hours);
    }
    if (total_share <= 0.0) continue;  // everything down: traffic dropped
    for (std::size_t d = 0; d < n; ++d) {
      if (down[d]) continue;
      const double share =
          config_.datacenters[d].demand_weight *
          failover_affinity(config_.datacenters[d].timezone_offset_hours,
                            config_.datacenters[f].timezone_offset_hours) /
          total_share;
      demand[d] += orphaned * share;
    }
  }
  return demand;
}

double FleetSimulator::datacenter_demand(SimTime t, std::uint32_t dc) const {
  const std::vector<double> demand = regional_demands(t);
  if (dc >= demand.size()) {
    throw std::out_of_range("FleetSimulator::datacenter_demand");
  }
  return demand[dc];
}

void FleetSimulator::set_serving_count(std::uint32_t dc, std::uint32_t pool,
                                       std::size_t servers) {
  for (PoolRuntime& rt : pools_) {
    if (rt.dc == dc && rt.pool == pool) {
      if (servers == 0 || servers > rt.server_generation.size()) {
        throw std::invalid_argument(
            "FleetSimulator::set_serving_count: count out of range");
      }
      rt.serving = servers;
      return;
    }
  }
  throw std::out_of_range("FleetSimulator::set_serving_count: no such pool");
}

std::size_t FleetSimulator::serving_count(std::uint32_t dc,
                                          std::uint32_t pool) const {
  for (const PoolRuntime& rt : pools_) {
    if (rt.dc == dc && rt.pool == pool) return rt.serving;
  }
  throw std::out_of_range("FleetSimulator::serving_count: no such pool");
}

std::size_t FleetSimulator::pool_size(std::uint32_t dc,
                                      std::uint32_t pool) const {
  for (const PoolRuntime& rt : pools_) {
    if (rt.dc == dc && rt.pool == pool) return rt.server_generation.size();
  }
  throw std::out_of_range("FleetSimulator::pool_size: no such pool");
}

void FleetSimulator::flush_digests(std::int64_t day) {
  for (PoolRuntime& rt : pools_) {
    for (std::uint32_t s = 0; s < rt.cpu_digests.size(); ++s) {
      telemetry::PercentileDigest& digest = rt.cpu_digests[s];
      if (digest.count() == 0) continue;
      server_days_.push_back(
          {rt.dc, rt.pool, s, day, digest.snapshot()});
      digest.reset();
    }
  }
}

void FleetSimulator::finish_day() { flush_digests(current_day_); }

void FleetSimulator::run_until(SimTime end) {
  if (end > now_) {
    // One-shot capacity hint: every pool-scope/per-server series gains one
    // sample per window, so reserving the remaining window count up front
    // removes all realloc churn (and span invalidation) from the run.
    const auto windows = static_cast<std::size_t>(
        (end - now_ + config_.window_seconds - 1) / config_.window_seconds);
    store_.reserve_additional(windows);
  }
  while (now_ < end) {
    const auto day = static_cast<std::int64_t>(
        static_cast<double>(now_) / kSecondsPerDay);
    if (day != current_day_) {
      flush_digests(current_day_);
      current_day_ = day;
    }
    step(now_);
    now_ += config_.window_seconds;
  }
}

void FleetSimulator::step(SimTime t) {
  const std::vector<double> demand = regional_demands(t);
  const auto window_index = static_cast<std::uint64_t>(t / config_.window_seconds);

  const auto run_shard = [&](std::size_t shard) {
    ShardTelemetry& out = shard_telemetry_[shard];
    for (const std::size_t pool_index : shards_[shard]) {
      step_pool(pools_[pool_index], t, demand, window_index, out);
    }
  };
  if (workers_) {
    workers_->run(shards_.size(), run_shard);
  } else {
    for (std::size_t s = 0; s < shards_.size(); ++s) run_shard(s);
  }

  // Window barrier: replay every shard's buffers in fixed shard order.
  // Series appends are single-writer per key and the ledger/histogram
  // updates are commutative sums, so the merged state is bit-identical to
  // the serial walk regardless of the thread count.
  for (ShardTelemetry& shard : shard_telemetry_) {
    store_.merge(shard.metrics);
    ledger_.record_all(shard.availability);
    cpu_histogram_.merge(shard.cpu_histogram);
    shard.clear();
  }
}

void FleetSimulator::step_pool(PoolRuntime& rt, SimTime t,
                               std::span<const double> demand,
                               std::uint64_t window_index,
                               ShardTelemetry& out) {
  const SimTime dt = config_.window_seconds;
  const std::size_t pool_servers = rt.server_generation.size();
  double pool_rps =
      demand[rt.dc] * rt.profile->request_fan * rt.demand_multiplier;
  if (rt.burst_hours > 0.0 && rt.burst_multiplier != 1.0) {
    const double local_hour = std::fmod(
        std::fmod(static_cast<double>(t) / 3600.0 + rt.tz_offset_hours,
                  24.0) + 24.0, 24.0);
    double delta = local_hour - rt.burst_start_hour;
    if (delta < 0.0) delta += 24.0;
    if (delta < rt.burst_hours) pool_rps *= rt.burst_multiplier;
  }

  // Which servers are online this window? Only the first `serving`
  // servers are in the rotation at all (reduction experiments remove the
  // tail); maintenance takes rotation members out temporarily.
  std::size_t online = 0;
  std::vector<std::uint8_t> is_online(rt.serving, 0);
  for (std::uint32_t s = 0; s < rt.serving; ++s) {
    const bool off = rt.maintenance.offline(s, pool_servers, t);
    is_online[s] = off ? 0u : 1u;
    online += off ? 0u : 1u;
  }

  // Availability accounting covers the whole configured pool; removed
  // servers (index >= serving) are deliberately NOT unavailable — they
  // left the pool, they are not broken.
  for (std::uint32_t s = 0; s < rt.serving; ++s) {
    out.availability.push_back(
        {{rt.dc, rt.pool, s}, t, dt, is_online[s] != 0});
  }

  if (online == 0) return;  // pool dark this window
  const double per_server_rps = pool_rps / static_cast<double>(online);

  stats::RunningStats agg_rps;
  stats::RunningStats agg_cpu_attr;
  stats::RunningStats agg_cpu_total;
  stats::RunningStats agg_latency;
  stats::RunningStats agg_net_bytes;
  stats::RunningStats agg_net_pkts;
  stats::RunningStats agg_mem_pages;
  stats::RunningStats agg_disk_bytes;
  stats::RunningStats agg_disk_q;
  stats::RunningStats agg_errors;

  const std::uint64_t pool_stream =
      mix_seed(config_.seed, rt.dc, rt.pool, window_index);
  // Pool-common measurement noise: request-mix drift, deploy churn and
  // collection jitter move the whole pool's counters together window to
  // window, which is what keeps pool-average fits from being noiselessly
  // perfect (the paper's Fig. 8 R² is 0.984, not 1.0).
  SplitMix64 common_rng(mix_seed(pool_stream, 0xC0117));
  std::normal_distribution<double> common_gauss(0.0, 1.0);
  const double cpu_common = 1.0 + 0.02 * common_gauss(common_rng);
  const double latency_common = 1.0 + 0.01 * common_gauss(common_rng);
  // Response payload sizes drift with the request mix far more than CPU
  // cost does — Fig. 2 shows network counters linear but visibly noisier.
  const double network_common = 1.0 + 0.06 * common_gauss(common_rng);
  for (std::uint32_t s = 0; s < rt.serving; ++s) {
    const bool restarted = is_online[s] != 0 && rt.was_online[s] == 0;
    rt.was_online[s] = is_online[s];
    if (is_online[s] == 0) continue;

    SplitMix64 rng(mix_seed(pool_stream, s));
    // Load-balancer imbalance: a few percent of jitter per server.
    std::normal_distribution<double> gauss(0.0, 1.0);
    const double rps = std::max(
        0.0, per_server_rps * (1.0 + 0.02 * gauss(rng)));

    const ResponseModel& model = rt.models[rt.server_generation[s]];
    ServerWindowMetrics m =
        model.sample(rps, t, rng, config_.background_spikes,
                     config_.background_noise_scale);
    m.cpu_pct_attributed *= cpu_common;
    m.cpu_pct_total = std::min(100.0, m.cpu_pct_total * cpu_common);
    if (rt.hourly_spike_extra_pct > 0.0 &&
        t % 3600 < config_.window_seconds) {
      m.cpu_pct_total =
          std::min(100.0, m.cpu_pct_total + rt.hourly_spike_extra_pct);
    }
    m.latency_p95_ms *= latency_common;
    m.network_bytes_per_s *= network_common;
    m.network_packets_per_s *= network_common;
    if (restarted) {
      // Post-restart penalty: cache priming and JIT warm-up (the paper's
      // "elevated latency ... caused by additional work performed when
      // the software starts").
      m.latency_p95_ms += rt.profile->cold_latency_ms;
      m.cpu_pct_total = std::min(100.0, m.cpu_pct_total + 5.0);
    }
    if (!config_.attribution_enabled) {
      // Blind measurement mode: the per-workload series is polluted with
      // everything running on the box.
      m.cpu_pct_attributed = m.cpu_pct_total;
    }

    rt.cpu_digests[s].add(m.cpu_pct_total);
    out.cpu_histogram.add(m.cpu_pct_total);

    agg_rps.add(m.rps);
    agg_cpu_attr.add(m.cpu_pct_attributed);
    agg_cpu_total.add(m.cpu_pct_total);
    agg_latency.add(m.latency_p95_ms);
    agg_net_bytes.add(m.network_bytes_per_s);
    agg_net_pkts.add(m.network_packets_per_s);
    agg_mem_pages.add(m.memory_pages_per_s);
    agg_disk_bytes.add(m.disk_read_bytes_per_s);
    agg_disk_q.add(m.disk_queue_length);
    agg_errors.add(m.errors_per_s);

    if (config_.record_server_series) {
      const SeriesKey base{rt.dc, rt.pool, s, MetricKind::kRequestsPerSecond};
      out.metrics.record(base, t, m.rps);
      SeriesKey cpu = base;
      cpu.metric = MetricKind::kCpuPercentTotal;
      out.metrics.record(cpu, t, m.cpu_pct_total);
      SeriesKey lat = base;
      lat.metric = MetricKind::kLatencyP95Ms;
      out.metrics.record(lat, t, m.latency_p95_ms);
    }
  }

  if (config_.record_pool_series && agg_rps.count() > 0) {
    auto pool_key = [&](MetricKind kind) {
      return SeriesKey{rt.dc, rt.pool, SeriesKey::kPoolScope, kind};
    };
    out.metrics.record(pool_key(MetricKind::kRequestsPerSecond), t,
                       agg_rps.mean());
    out.metrics.record(pool_key(MetricKind::kCpuPercentAttributed), t,
                       agg_cpu_attr.mean());
    out.metrics.record(pool_key(MetricKind::kCpuPercentTotal), t,
                       agg_cpu_total.mean());
    out.metrics.record(pool_key(MetricKind::kLatencyP95Ms), t,
                       agg_latency.mean());
    out.metrics.record(pool_key(MetricKind::kNetworkBytesPerSecond), t,
                       agg_net_bytes.mean());
    out.metrics.record(pool_key(MetricKind::kNetworkPacketsPerSecond), t,
                       agg_net_pkts.mean());
    out.metrics.record(pool_key(MetricKind::kMemoryPagesPerSecond), t,
                       agg_mem_pages.mean());
    out.metrics.record(pool_key(MetricKind::kDiskReadBytesPerSecond), t,
                       agg_disk_bytes.mean());
    out.metrics.record(pool_key(MetricKind::kDiskQueueLength), t,
                       agg_disk_q.mean());
    out.metrics.record(pool_key(MetricKind::kErrorsPerSecond), t,
                       agg_errors.mean());
    out.metrics.record(pool_key(MetricKind::kActiveServers), t,
                       static_cast<double>(online));
  }
}

}  // namespace headroom::sim
