#include "sim/fleet.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>

#include "sim/rng.h"

namespace headroom::sim {

namespace {

using telemetry::MetricKind;
using telemetry::SeriesKey;

constexpr double kSecondsPerDay = 86400.0;

/// Upper bound on consecutive dead-band replays of one cached window, so a
/// long flat plateau still refreshes its noise draws and maintenance
/// picture about once an hour (at the default 120 s window).
constexpr std::uint32_t kMaxHeldWindows = 30;

std::size_t resolve_threads(std::size_t configured) {
  if (configured != 0) return configured;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Construction-time pool staging in (dc, pool) order; the constructor
/// reorders it shard-by-shard into the columnar members.
struct StagingPool {
  std::uint32_t dc;
  std::uint32_t pool;
  const MicroserviceProfile* profile;
  double demand_multiplier;
  double burst_multiplier;
  double burst_start_hour;
  double burst_hours;
  double hourly_spike_extra_pct;
  double tz_offset_hours;
  std::vector<std::uint8_t> server_generation;
  std::vector<ResponseModel> models;
  MaintenanceSchedule maintenance;
  std::size_t serving;
};

}  // namespace

FleetSimulator::FleetSimulator(FleetConfig config,
                               const MicroserviceCatalog& catalog)
    : config_(std::move(config)) {
  if (config_.datacenters.empty()) {
    throw std::invalid_argument("FleetSimulator: no datacenters");
  }
  if (config_.window_seconds <= 0) {
    throw std::invalid_argument("FleetSimulator: window must be positive");
  }
  if (config_.quiescent_dead_band < 0.0 || config_.quiescent_dead_band >= 1.0) {
    throw std::invalid_argument(
        "FleetSimulator: quiescent_dead_band must be in [0, 1)");
  }

  regional_traffic_.reserve(config_.datacenters.size());
  for (const DatacenterConfig& dc : config_.datacenters) {
    workload::DiurnalParams params = config_.diurnal;
    params.peak_rps = config_.diurnal.peak_rps * dc.demand_weight;
    params.timezone_offset_hours = dc.timezone_offset_hours;
    regional_traffic_.emplace_back(params);
  }
  failover_ = make_failover_policy(config_.failover, config_.datacenters);

  std::vector<StagingPool> staging;
  for (std::uint32_t d = 0; d < config_.datacenters.size(); ++d) {
    const DatacenterConfig& dc = config_.datacenters[d];
    for (std::uint32_t p = 0; p < dc.pools.size(); ++p) {
      const PoolConfig& pc = dc.pools[p];
      const MicroserviceProfile& profile = catalog.by_name(pc.service);

      StagingPool rt{.dc = d,
                     .pool = p,
                     .profile = &profile,
                     .demand_multiplier = pc.demand_multiplier,
                     .burst_multiplier = pc.burst_multiplier,
                     .burst_start_hour = pc.burst_start_hour,
                     .burst_hours = pc.burst_hours,
                     .hourly_spike_extra_pct = pc.hourly_spike_extra_pct,
                     .tz_offset_hours = dc.timezone_offset_hours,
                     .server_generation = {},
                     .models = {},
                     .maintenance = MaintenanceSchedule(
                         pc.maintenance,
                         mix_seed(config_.seed, 0xFA11, d, p),
                         dc.timezone_offset_hours),
                     .serving = pc.servers};
      for (const PoolIncident& inc : pc.incidents) {
        rt.maintenance.add_incident(inc);
      }

      const std::vector<HardwareGeneration> assignment =
          assign_hardware(pc.hardware, pc.servers);
      rt.server_generation.reserve(pc.servers);
      // Deduplicate response models by generation name. (Keying on the
      // floating-point effective cost wrongly merged distinct generations
      // whose scaled costs happened to collide, even though their latency
      // scale or core counts differed.)
      std::vector<std::string> model_names;
      for (const HardwareGeneration& gen : assignment) {
        std::size_t idx = model_names.size();
        for (std::size_t i = 0; i < model_names.size(); ++i) {
          if (model_names[i] == gen.name) {
            idx = i;
            break;
          }
        }
        if (idx == model_names.size()) {
          rt.models.emplace_back(profile, gen);
          model_names.push_back(gen.name);
        }
        rt.server_generation.push_back(static_cast<std::uint8_t>(idx));
      }
      staging.push_back(std::move(rt));
    }
  }

  // Partition pools into per-thread shards: greedy largest-pool-first onto
  // the least-loaded shard (load = server count), breaking ties toward a
  // shard that already hosts the pool's datacenter. Deterministic, balanced
  // within one pool of optimal, and DC-affine when pool sizes repeat across
  // regions (the standard-fleet shape).
  const std::size_t lanes = std::max<std::size_t>(
      1, std::min(resolve_threads(config_.threads),
                  std::max<std::size_t>(staging.size(), 1)));
  std::vector<std::vector<std::size_t>> shards(lanes);
  std::vector<std::size_t> order(staging.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return staging[a].server_generation.size() >
           staging[b].server_generation.size();
  });
  std::vector<std::size_t> load(lanes, 0);
  std::vector<std::vector<std::uint8_t>> hosts_dc(
      lanes, std::vector<std::uint8_t>(config_.datacenters.size(), 0));
  for (const std::size_t pool_index : order) {
    const std::uint32_t dc = staging[pool_index].dc;
    std::size_t best = 0;
    for (std::size_t s = 1; s < lanes; ++s) {
      if (load[s] < load[best] ||
          (load[s] == load[best] && hosts_dc[s][dc] > hosts_dc[best][dc])) {
        best = s;
      }
    }
    shards[best].push_back(pool_index);
    load[best] += staging[pool_index].server_generation.size();
    hosts_dc[best][dc] = 1;
  }
  // Keep each shard's pools in topology order (cache-friendly, and the
  // serial path then walks pools exactly as the pre-sharding code did).
  for (std::vector<std::size_t>& shard : shards) {
    std::sort(shard.begin(), shard.end());
  }

  // Materialize the struct-of-arrays layout in shard-concatenated physical
  // order: shard s owns the contiguous pool range
  // [shard_begin_[s], shard_begin_[s+1]), and its servers/models are dense
  // sub-ranges of the fleet-wide arenas.
  const std::size_t n = staging.size();
  pool_dc_.reserve(n);
  pool_id_.reserve(n);
  pool_profile_.reserve(n);
  pool_demand_multiplier_.reserve(n);
  pool_burst_multiplier_.reserve(n);
  pool_burst_start_hour_.reserve(n);
  pool_burst_hours_.reserve(n);
  pool_hourly_spike_pct_.reserve(n);
  pool_tz_offset_.reserve(n);
  pool_serving_.reserve(n);
  pool_maintenance_.reserve(n);
  server_begin_.reserve(n + 1);
  server_begin_.push_back(0);
  model_begin_.reserve(n + 1);
  model_begin_.push_back(0);
  shard_begin_.reserve(lanes + 1);
  shard_begin_.push_back(0);
  std::vector<std::size_t> physical_of(n, 0);
  for (const std::vector<std::size_t>& shard : shards) {
    for (const std::size_t staging_index : shard) {
      StagingPool& rt = staging[staging_index];
      physical_of[staging_index] = pool_dc_.size();
      pool_dc_.push_back(rt.dc);
      pool_id_.push_back(rt.pool);
      pool_profile_.push_back(rt.profile);
      pool_demand_multiplier_.push_back(rt.demand_multiplier);
      pool_burst_multiplier_.push_back(rt.burst_multiplier);
      pool_burst_start_hour_.push_back(rt.burst_start_hour);
      pool_burst_hours_.push_back(rt.burst_hours);
      pool_hourly_spike_pct_.push_back(rt.hourly_spike_extra_pct);
      pool_tz_offset_.push_back(rt.tz_offset_hours);
      pool_serving_.push_back(rt.serving);
      pool_maintenance_.push_back(std::move(rt.maintenance));
      server_generation_.insert(server_generation_.end(),
                                rt.server_generation.begin(),
                                rt.server_generation.end());
      server_begin_.push_back(server_generation_.size());
      models_.insert(models_.end(),
                     std::make_move_iterator(rt.models.begin()),
                     std::make_move_iterator(rt.models.end()));
      model_begin_.push_back(models_.size());
    }
    shard_begin_.push_back(pool_dc_.size());
  }
  // Staging order is (dc, pool) order, so the physical-index permutation
  // of it is exactly the topology walk.
  topology_order_.assign(physical_of.begin(), physical_of.end());

  was_online_.assign(total_servers(), 1);
  if (config_.per_server_accounting) {
    cpu_digests_.resize(total_servers());
  }
  // The dead-band cache replays pool-scope telemetry only, so it stays off
  // (every window fully evaluated) when per-server series are recorded.
  if (config_.quiescent_dead_band > 0.0 && !config_.record_server_series) {
    pool_cache_.resize(n);
  }

  shard_telemetry_.resize(lanes);
  // Size each shard's window buffers once, up front: the per-window entry
  // count is fixed by the topology (11 pool-scope series per pool, 3
  // per-server series when enabled, one availability event per rotation
  // member), so the stepping hot path never grows them.
  for (std::size_t s = 0; s < lanes; ++s) {
    std::size_t metric_entries = 0;
    std::size_t availability_entries = 0;
    for (std::size_t p = shard_begin_[s]; p < shard_begin_[s + 1]; ++p) {
      const std::size_t servers = server_begin_[p + 1] - server_begin_[p];
      if (config_.record_pool_series) metric_entries += 11;
      if (config_.record_server_series) metric_entries += servers * 3;
      if (config_.per_server_accounting) availability_entries += servers;
    }
    shard_telemetry_[s].metrics.reserve(metric_entries);
    shard_telemetry_[s].availability.reserve(availability_entries);
  }
  if (lanes > 1) {
    workers_ = std::make_unique<WorkerPool>(lanes);
  }
}

std::vector<double> FleetSimulator::regional_demands(SimTime t) const {
  const std::size_t n = config_.datacenters.size();
  std::vector<double> demand(n, 0.0);
  std::vector<std::uint8_t> down(n, 0);
  for (std::size_t d = 0; d < n; ++d) {
    down[d] = config_.events.datacenter_down(t, static_cast<std::uint32_t>(d))
                  ? 1u
                  : 0u;
    demand[d] = regional_traffic_[d].demand(t) *
                config_.events.traffic_multiplier(t, static_cast<std::uint32_t>(d));
  }
  // Outage failover: a down DC's demand redistributes to survivors per the
  // configured policy (sim/failover.h), over its precomputed share matrix.
  failover_->redistribute(down, demand);
  return demand;
}

double FleetSimulator::datacenter_demand(SimTime t, std::uint32_t dc) const {
  const std::vector<double> demand = regional_demands(t);
  if (dc >= demand.size()) {
    throw std::out_of_range("FleetSimulator::datacenter_demand");
  }
  return demand[dc];
}

std::size_t FleetSimulator::find_pool(std::uint32_t dc, std::uint32_t pool,
                                      const char* caller) const {
  for (std::size_t p = 0; p < pool_dc_.size(); ++p) {
    if (pool_dc_[p] == dc && pool_id_[p] == pool) return p;
  }
  throw std::out_of_range(std::string(caller) + ": no such pool");
}

void FleetSimulator::set_serving_count(std::uint32_t dc, std::uint32_t pool,
                                       std::size_t servers) {
  const std::size_t p =
      find_pool(dc, pool, "FleetSimulator::set_serving_count");
  const std::size_t pool_servers = server_begin_[p + 1] - server_begin_[p];
  if (servers == 0 || servers > pool_servers) {
    throw std::invalid_argument(
        "FleetSimulator::set_serving_count: count out of range");
  }
  pool_serving_[p] = servers;
  // The cached window was evaluated at the old serving count.
  if (!pool_cache_.empty()) pool_cache_[p].valid = false;
}

std::size_t FleetSimulator::serving_count(std::uint32_t dc,
                                          std::uint32_t pool) const {
  return pool_serving_[find_pool(dc, pool, "FleetSimulator::serving_count")];
}

std::size_t FleetSimulator::pool_size(std::uint32_t dc,
                                      std::uint32_t pool) const {
  const std::size_t p = find_pool(dc, pool, "FleetSimulator::pool_size");
  return server_begin_[p + 1] - server_begin_[p];
}

void FleetSimulator::flush_digests(std::int64_t day) {
  if (cpu_digests_.empty()) return;  // per-server accounting off
  for (const std::size_t p : topology_order_) {
    const std::size_t begin = server_begin_[p];
    const std::size_t end = server_begin_[p + 1];
    for (std::size_t i = begin; i < end; ++i) {
      telemetry::PercentileDigest& digest = cpu_digests_[i];
      if (digest.count() == 0) continue;
      server_days_.push_back({pool_dc_[p], pool_id_[p],
                              static_cast<std::uint32_t>(i - begin), day,
                              digest.snapshot()});
      digest.reset();
    }
  }
}

void FleetSimulator::finish_day() { flush_digests(current_day_); }

void FleetSimulator::run_until(SimTime end) {
  if (end > now_) {
    // One-shot capacity hint: every pool-scope/per-server series gains one
    // sample per window, so reserving the remaining window count up front
    // removes all realloc churn (and span invalidation) from the run.
    const auto windows = static_cast<std::size_t>(
        (end - now_ + config_.window_seconds - 1) / config_.window_seconds);
    store_.reserve_additional(windows);
  }
  while (now_ < end) {
    const auto day = static_cast<std::int64_t>(
        static_cast<double>(now_) / kSecondsPerDay);
    if (day != current_day_) {
      flush_digests(current_day_);
      current_day_ = day;
    }
    step(now_);
    now_ += config_.window_seconds;
  }
}

void FleetSimulator::step(SimTime t) {
  const std::vector<double> demand = regional_demands(t);
  const auto window_index = static_cast<std::uint64_t>(t / config_.window_seconds);

  const auto run_shard = [&](std::size_t shard) {
    ShardTelemetry& out = shard_telemetry_[shard];
    for (std::size_t p = shard_begin_[shard]; p < shard_begin_[shard + 1];
         ++p) {
      step_pool(p, t, demand, window_index, out);
    }
  };
  const std::size_t lanes = thread_count();
  if (workers_) {
    workers_->run(lanes, run_shard);
  } else {
    for (std::size_t s = 0; s < lanes; ++s) run_shard(s);
  }

  // Window barrier: replay every shard's buffers in fixed shard order.
  // Series appends are single-writer per key and the ledger/histogram
  // updates are commutative sums, so the merged state is bit-identical to
  // the serial walk regardless of the thread count.
  for (ShardTelemetry& shard : shard_telemetry_) {
    store_.merge(shard.metrics);
    ledger_.record_all(shard.availability);
    cpu_histogram_.merge(shard.cpu_histogram);
    shard.clear();
  }
}

double FleetSimulator::pool_workload(std::size_t p, SimTime t,
                                     std::span<const double> demand) const {
  double pool_rps = demand[pool_dc_[p]] * pool_profile_[p]->request_fan *
                    pool_demand_multiplier_[p];
  if (pool_burst_hours_[p] > 0.0 && pool_burst_multiplier_[p] != 1.0) {
    const double local_hour = std::fmod(
        std::fmod(static_cast<double>(t) / 3600.0 + pool_tz_offset_[p],
                  24.0) + 24.0, 24.0);
    double delta = local_hour - pool_burst_start_hour_[p];
    if (delta < 0.0) delta += 24.0;
    if (delta < pool_burst_hours_[p]) pool_rps *= pool_burst_multiplier_[p];
  }
  return pool_rps;
}

bool FleetSimulator::replay_quiescent(std::size_t p, SimTime t,
                                      double pool_rps, ShardTelemetry& out) {
  PoolCache& cache = pool_cache_[p];
  if (!cache.valid || cache.held >= kMaxHeldWindows) return false;
  if (pool_serving_[p] != cache.serving) return false;
  // Hourly-spike windows carry their own CPU signal; evaluate them fully.
  if (pool_hourly_spike_pct_[p] > 0.0 && t % 3600 < config_.window_seconds) {
    return false;
  }
  const double base = std::max(std::fabs(cache.pool_rps), 1e-9);
  if (std::fabs(pool_rps - cache.pool_rps) >
      config_.quiescent_dead_band * base) {
    return false;
  }

  ++cache.held;
  const SimTime dt = config_.window_seconds;
  if (config_.per_server_accounting) {
    for (std::uint32_t s = 0; s < cache.serving; ++s) {
      out.availability.push_back({{pool_dc_[p], pool_id_[p], s}, t, dt,
                                  cache.online_flags[s] != 0});
    }
  }
  if (cache.dark) return true;

  if (config_.per_server_accounting) {
    const std::size_t arena = server_begin_[p];
    for (std::uint32_t s = 0; s < cache.serving; ++s) {
      if (cache.online_flags[s] != 0) {
        cpu_digests_[arena + s].add(cache.cpu_totals[s]);
      }
    }
  }
  out.cpu_histogram.merge(cache.cpu_histogram);

  if (config_.record_pool_series) {
    const auto pool_key = [&](MetricKind kind) {
      return SeriesKey{pool_dc_[p], pool_id_[p], SeriesKey::kPoolScope, kind};
    };
    static constexpr MetricKind kPoolKinds[11] = {
        MetricKind::kRequestsPerSecond,     MetricKind::kCpuPercentAttributed,
        MetricKind::kCpuPercentTotal,       MetricKind::kLatencyP95Ms,
        MetricKind::kNetworkBytesPerSecond, MetricKind::kNetworkPacketsPerSecond,
        MetricKind::kMemoryPagesPerSecond,  MetricKind::kDiskReadBytesPerSecond,
        MetricKind::kDiskQueueLength,       MetricKind::kErrorsPerSecond,
        MetricKind::kActiveServers};
    for (std::size_t k = 0; k < 11; ++k) {
      out.metrics.record(pool_key(kPoolKinds[k]), t, cache.recorded[k]);
    }
  }
  return true;
}

void FleetSimulator::step_pool(std::size_t p, SimTime t,
                               std::span<const double> demand,
                               std::uint64_t window_index,
                               ShardTelemetry& out) {
  const SimTime dt = config_.window_seconds;
  const std::size_t arena = server_begin_[p];
  const std::size_t pool_servers = server_begin_[p + 1] - arena;
  const std::size_t serving = pool_serving_[p];
  const double pool_rps = pool_workload(p, t, demand);

  // Quiescent fast path: pools whose inputs barely moved replay their last
  // full evaluation. Pools with scheduled incidents never use it — the
  // availability cliff is the scenario's signal.
  PoolCache* cache = pool_cache_.empty() ? nullptr : &pool_cache_[p];
  if (cache != nullptr) {
    if (pool_maintenance_[p].has_incidents()) {
      cache = nullptr;
    } else if (replay_quiescent(p, t, pool_rps, out)) {
      return;
    } else if (pool_hourly_spike_pct_[p] > 0.0 &&
               t % 3600 < config_.window_seconds) {
      // Spike windows evaluate fully (replay_quiescent refuses them) but
      // must not populate the cache either: their spike-elevated CPU would
      // replay into the quiescent windows that follow, turning a
      // one-window-per-hour spike into a near-constant offset. The
      // pre-spike cache stays valid for those windows instead.
      cache = nullptr;
    }
  }

  // Which servers are online this window? Only the first `serving`
  // servers are in the rotation at all (reduction experiments remove the
  // tail); maintenance takes rotation members out temporarily.
  std::size_t online = 0;
  std::vector<std::uint8_t>& is_online = out.online_scratch;
  is_online.assign(serving, 0);
  const MaintenanceSchedule& maintenance = pool_maintenance_[p];
  for (std::uint32_t s = 0; s < serving; ++s) {
    const bool off = maintenance.offline(s, pool_servers, t);
    is_online[s] = off ? 0u : 1u;
    online += off ? 0u : 1u;
  }

  // Availability accounting covers the whole configured pool; removed
  // servers (index >= serving) are deliberately NOT unavailable — they
  // left the pool, they are not broken.
  if (config_.per_server_accounting) {
    for (std::uint32_t s = 0; s < serving; ++s) {
      out.availability.push_back(
          {{pool_dc_[p], pool_id_[p], s}, t, dt, is_online[s] != 0});
    }
  }

  if (cache != nullptr) {
    cache->valid = true;
    cache->dark = online == 0;
    cache->held = 0;
    cache->pool_rps = pool_rps;
    cache->serving = serving;
    cache->online = online;
    cache->cpu_histogram.reset();
    cache->online_flags.assign(is_online.begin(), is_online.end());
    if (config_.per_server_accounting) {
      cache->cpu_totals.assign(serving, 0.0);
    }
  }

  if (online == 0) return;  // pool dark this window
  const double per_server_rps = pool_rps / static_cast<double>(online);

  stats::RunningStats agg_rps;
  stats::RunningStats agg_cpu_attr;
  stats::RunningStats agg_cpu_total;
  stats::RunningStats agg_latency;
  stats::RunningStats agg_net_bytes;
  stats::RunningStats agg_net_pkts;
  stats::RunningStats agg_mem_pages;
  stats::RunningStats agg_disk_bytes;
  stats::RunningStats agg_disk_q;
  stats::RunningStats agg_errors;

  const std::uint64_t pool_stream =
      mix_seed(config_.seed, pool_dc_[p], pool_id_[p], window_index);
  // Pool-common measurement noise: request-mix drift, deploy churn and
  // collection jitter move the whole pool's counters together window to
  // window, which is what keeps pool-average fits from being noiselessly
  // perfect (the paper's Fig. 8 R² is 0.984, not 1.0).
  SplitMix64 common_rng(mix_seed(pool_stream, 0xC0117));
  std::normal_distribution<double> common_gauss(0.0, 1.0);
  const double cpu_common = 1.0 + 0.02 * common_gauss(common_rng);
  const double latency_common = 1.0 + 0.01 * common_gauss(common_rng);
  // Response payload sizes drift with the request mix far more than CPU
  // cost does — Fig. 2 shows network counters linear but visibly noisier.
  const double network_common = 1.0 + 0.06 * common_gauss(common_rng);
  const ResponseModel* const pool_models = models_.data() + model_begin_[p];
  const std::uint8_t* const generation = server_generation_.data() + arena;
  for (std::uint32_t s = 0; s < serving; ++s) {
    const bool restarted = is_online[s] != 0 && was_online_[arena + s] == 0;
    was_online_[arena + s] = is_online[s];
    if (is_online[s] == 0) continue;

    SplitMix64 rng(mix_seed(pool_stream, s));
    // Load-balancer imbalance: a few percent of jitter per server.
    std::normal_distribution<double> gauss(0.0, 1.0);
    const double rps = std::max(
        0.0, per_server_rps * (1.0 + 0.02 * gauss(rng)));

    const ResponseModel& model = pool_models[generation[s]];
    ServerWindowMetrics m =
        model.sample(rps, t, rng, config_.background_spikes,
                     config_.background_noise_scale);
    m.cpu_pct_attributed *= cpu_common;
    m.cpu_pct_total = std::min(100.0, m.cpu_pct_total * cpu_common);
    if (pool_hourly_spike_pct_[p] > 0.0 &&
        t % 3600 < config_.window_seconds) {
      m.cpu_pct_total =
          std::min(100.0, m.cpu_pct_total + pool_hourly_spike_pct_[p]);
    }
    m.latency_p95_ms *= latency_common;
    m.network_bytes_per_s *= network_common;
    m.network_packets_per_s *= network_common;
    if (restarted) {
      // Post-restart penalty: cache priming and JIT warm-up (the paper's
      // "elevated latency ... caused by additional work performed when
      // the software starts").
      m.latency_p95_ms += pool_profile_[p]->cold_latency_ms;
      m.cpu_pct_total = std::min(100.0, m.cpu_pct_total + 5.0);
    }
    if (!config_.attribution_enabled) {
      // Blind measurement mode: the per-workload series is polluted with
      // everything running on the box.
      m.cpu_pct_attributed = m.cpu_pct_total;
    }

    if (config_.per_server_accounting) {
      cpu_digests_[arena + s].add(m.cpu_pct_total);
      if (cache != nullptr) cache->cpu_totals[s] = m.cpu_pct_total;
    }
    if (cache != nullptr) {
      cache->cpu_histogram.add(m.cpu_pct_total);
    } else {
      out.cpu_histogram.add(m.cpu_pct_total);
    }

    agg_rps.add(m.rps);
    agg_cpu_attr.add(m.cpu_pct_attributed);
    agg_cpu_total.add(m.cpu_pct_total);
    agg_latency.add(m.latency_p95_ms);
    agg_net_bytes.add(m.network_bytes_per_s);
    agg_net_pkts.add(m.network_packets_per_s);
    agg_mem_pages.add(m.memory_pages_per_s);
    agg_disk_bytes.add(m.disk_read_bytes_per_s);
    agg_disk_q.add(m.disk_queue_length);
    agg_errors.add(m.errors_per_s);

    if (config_.record_server_series) {
      const SeriesKey base{pool_dc_[p], pool_id_[p], s,
                           MetricKind::kRequestsPerSecond};
      out.metrics.record(base, t, m.rps);
      SeriesKey cpu = base;
      cpu.metric = MetricKind::kCpuPercentTotal;
      out.metrics.record(cpu, t, m.cpu_pct_total);
      SeriesKey lat = base;
      lat.metric = MetricKind::kLatencyP95Ms;
      out.metrics.record(lat, t, m.latency_p95_ms);
    }
  }

  // A cached evaluation keeps its own histogram contribution (for replay)
  // and folds it into the shard's — bucket counts add, so the merged
  // result is identical to direct adds.
  if (cache != nullptr) out.cpu_histogram.merge(cache->cpu_histogram);

  if (config_.record_pool_series && agg_rps.count() > 0) {
    const double recorded[11] = {
        agg_rps.mean(),        agg_cpu_attr.mean(),  agg_cpu_total.mean(),
        agg_latency.mean(),    agg_net_bytes.mean(), agg_net_pkts.mean(),
        agg_mem_pages.mean(),  agg_disk_bytes.mean(), agg_disk_q.mean(),
        agg_errors.mean(),     static_cast<double>(online)};
    auto pool_key = [&](MetricKind kind) {
      return SeriesKey{pool_dc_[p], pool_id_[p], SeriesKey::kPoolScope, kind};
    };
    out.metrics.record(pool_key(MetricKind::kRequestsPerSecond), t,
                       recorded[0]);
    out.metrics.record(pool_key(MetricKind::kCpuPercentAttributed), t,
                       recorded[1]);
    out.metrics.record(pool_key(MetricKind::kCpuPercentTotal), t,
                       recorded[2]);
    out.metrics.record(pool_key(MetricKind::kLatencyP95Ms), t, recorded[3]);
    out.metrics.record(pool_key(MetricKind::kNetworkBytesPerSecond), t,
                       recorded[4]);
    out.metrics.record(pool_key(MetricKind::kNetworkPacketsPerSecond), t,
                       recorded[5]);
    out.metrics.record(pool_key(MetricKind::kMemoryPagesPerSecond), t,
                       recorded[6]);
    out.metrics.record(pool_key(MetricKind::kDiskReadBytesPerSecond), t,
                       recorded[7]);
    out.metrics.record(pool_key(MetricKind::kDiskQueueLength), t,
                       recorded[8]);
    out.metrics.record(pool_key(MetricKind::kErrorsPerSecond), t,
                       recorded[9]);
    out.metrics.record(pool_key(MetricKind::kActiveServers), t, recorded[10]);
    if (cache != nullptr) {
      std::copy(std::begin(recorded), std::end(recorded),
                cache->recorded.begin());
    }
  }
}

}  // namespace headroom::sim
