// Outage failover policies: how a down datacenter's demand redistributes.
//
// The simulator's original hardcoded behaviour — survivors share orphaned
// traffic weighted by capacity (demand weight) times geographic affinity
// (timezone distance) — is `kNearestSurvivor`, still the default and
// bit-identical to the pre-refactor loop. Extracting it behind an interface
// lets what-if planning (headroom plan) explore alternative failover worlds:
//
//   nearest_survivor  capacity x affinity blend. Concentrates the spike on
//                     close neighbours (the paper's +127% DC) while the
//                     median survivor sees less.
//   latency_aware     all orphaned traffic to the survivors at minimal
//                     timezone distance from the failed DC (ties split by
//                     demand weight). Best user latency, worst hot-spot —
//                     the upper bound on single-DC headroom need.
//   cost_aware        spread proportional to demand weight alone, ignoring
//                     geography. Every survivor grows by the same relative
//                     amount — the cheapest procurement world, at the cost
//                     of cross-planet traffic.
//
// Policies precompute an n x n share matrix from the topology at
// construction (one row per hypothetical failed DC), so the per-window
// redistribution is a masked row walk with no trig/affinity math on the
// stepping hot path.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "sim/topology.h"

namespace headroom::sim {

// FailoverPolicyKind itself lives in sim/topology.h (FleetConfig carries
// the selection).

/// Canonical scenario-file spelling ("nearest_survivor", ...).
[[nodiscard]] std::string to_string(FailoverPolicyKind kind);

/// Inverse of to_string. Returns false (leaving `out` untouched) for
/// unknown names; the scenario parser turns that into an exact diagnostic.
[[nodiscard]] bool failover_policy_from_string(const std::string& name,
                                               FailoverPolicyKind& out);

/// Affinity between two timezones: traffic prefers nearby regions. Shared
/// by kNearestSurvivor's share matrix and by tests pinning the matrix math.
[[nodiscard]] double failover_affinity(double tz_a, double tz_b) noexcept;

/// Redistributes demand away from down datacenters, in place.
class FailoverPolicy {
 public:
  virtual ~FailoverPolicy() = default;

  /// For each down DC f (in index order), zeroes demand[f] and adds its
  /// orphaned demand to surviving DCs according to the policy. When every
  /// candidate is down the orphaned traffic is dropped (matching the
  /// pre-refactor behaviour).
  virtual void redistribute(std::span<const std::uint8_t> down,
                            std::span<double> demand) const = 0;

  [[nodiscard]] virtual FailoverPolicyKind kind() const noexcept = 0;
};

/// Builds the policy for `kind` over `datacenters`, precomputing its share
/// matrix once.
[[nodiscard]] std::unique_ptr<FailoverPolicy> make_failover_policy(
    FailoverPolicyKind kind, const std::vector<DatacenterConfig>& datacenters);

}  // namespace headroom::sim
