// Reusable fork-join worker pool for the fleet simulator's sharded step.
//
// The fleet step is a per-window fan-out over pool shards followed by a
// telemetry merge barrier. Windows are short (a 10k-server fleet does a few
// million ns of work per window), so spawning threads per window would
// dominate; this pool keeps its workers parked on a condition variable and
// reuses them for every window of every run_until() call.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace headroom::sim {

/// Fixed-size fork-join pool: run(tasks, fn) executes fn(0..tasks-1) across
/// `threads` lanes (the caller's thread participates as one lane) and
/// returns once every task finished.
class WorkerPool {
 public:
  /// `threads` lanes of parallelism including the caller; spawns threads-1
  /// workers (so 0 and 1 both mean "no extra threads").
  explicit WorkerPool(std::size_t threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Lanes of parallelism (worker threads + the calling thread).
  [[nodiscard]] std::size_t size() const noexcept { return workers_.size() + 1; }

  /// Runs fn(i) for every i in [0, tasks); blocks until all complete. Tasks
  /// are claimed dynamically, so `tasks` may exceed size(). The first
  /// exception thrown by any task is rethrown here (remaining tasks still
  /// run). Not reentrant: one run() at a time, from one thread.
  void run(std::size_t tasks, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();
  /// Claims and executes tasks until the current batch is exhausted.
  void drain();

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  const std::function<void(std::size_t)>* job_ = nullptr;  // guarded by mutex_
  std::size_t tasks_ = 0;
  std::atomic<std::size_t> next_{0};
  std::size_t working_ = 0;        ///< Workers not yet done with this batch.
  std::uint64_t generation_ = 0;   ///< Batch counter workers sync on.
  bool stop_ = false;
  std::exception_ptr error_;
};

}  // namespace headroom::sim
