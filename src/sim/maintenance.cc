#include "sim/maintenance.h"

#include <cmath>

#include "sim/rng.h"

namespace headroom::sim {

namespace {
constexpr double kSecondsPerHour = 3600.0;
constexpr double kSecondsPerDay = 86400.0;
}  // namespace

MaintenanceSchedule::MaintenanceSchedule(MaintenancePolicy policy,
                                         std::uint64_t seed,
                                         double timezone_offset_hours)
    : policy_(policy),
      seed_(seed),
      tz_seconds_(timezone_offset_hours * kSecondsPerHour) {}

void MaintenanceSchedule::add_incident(const PoolIncident& incident) {
  incidents_.push_back(incident);
}

bool MaintenanceSchedule::offline(std::uint32_t index, std::size_t pool_size,
                                  telemetry::SimTime t) const noexcept {
  const double local = static_cast<double>(t) + tz_seconds_;
  const auto day = static_cast<std::int64_t>(std::floor(local / kSecondsPerDay));
  const double second_of_day = local - static_cast<double>(day) * kSecondsPerDay;
  const double hour_of_day = second_of_day / kSecondsPerHour;

  // Rolling deployment: each server draws a daily slot start; the slot
  // stagger spreads the pool's deploy load across the day.
  if (policy_.deploy_offline_hours > 0.0) {
    const double start = 24.0 * uniform01(mix_seed(
        seed_, 0xDE, index, static_cast<std::uint64_t>(day)));
    double delta = hour_of_day - start;
    if (delta < 0.0) delta += 24.0;
    if (delta < policy_.deploy_offline_hours) return true;
  }

  // Re-purposing: the lowest-indexed fraction of servers is loaned out
  // during the off-peak window (the same servers every day, as in
  // production where specific racks are wired for validation duty).
  if (policy_.repurpose_fraction > 0.0 && pool_size > 0) {
    const auto loaned = static_cast<std::uint32_t>(
        policy_.repurpose_fraction * static_cast<double>(pool_size));
    if (index < loaned) {
      double delta = hour_of_day - policy_.repurpose_start_hour;
      if (delta < 0.0) delta += 24.0;
      if (delta < policy_.repurpose_hours) return true;
    }
  }

  // Unplanned infrastructure repair: rare whole-chunk outages.
  if (policy_.infra_event_daily_prob > 0.0) {
    const std::uint64_t h =
        mix_seed(seed_, 0x1F, index, static_cast<std::uint64_t>(day));
    if (uniform01(h) < policy_.infra_event_daily_prob) {
      const double start =
          (24.0 - policy_.infra_event_hours) * uniform01(mix_seed(h, 0xAB));
      if (hour_of_day >= start && hour_of_day < start + policy_.infra_event_hours) {
        return true;
      }
    }
  }

  // Pool-wide incidents.
  for (const PoolIncident& inc : incidents_) {
    if (inc.day != day) continue;
    if (pool_size == 0) continue;
    const auto affected = static_cast<std::uint32_t>(
        inc.offline_fraction * static_cast<double>(pool_size));
    // Spread affected servers across the pool by hashing, so incidents and
    // re-purposing don't always hit the same servers.
    const std::uint64_t slot = mix_seed(seed_, 0xC4, index,
                                        static_cast<std::uint64_t>(day));
    if (slot % pool_size < affected) {
      if (hour_of_day >= inc.start_hour &&
          hour_of_day < inc.start_hour + inc.duration_hours) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace headroom::sim
