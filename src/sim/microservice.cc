#include "sim/microservice.h"

#include <stdexcept>

namespace headroom::sim {

namespace {

// Calibration notes (see DESIGN.md §5):
//  - %CPU slope per RPS on reference hardware = cost_ms / (10 * cores);
//    with 16 cores, pool B's published 0.028 slope implies 4.48 CPU-ms per
//    request, pool D's 0.0916 implies 14.66 CPU-ms.
//  - The cold-start latency term reproduces the paper's elevated latency at
//    low workload (Fig. 6) and the negative linear coefficient of the
//    fitted quadratics (Figs. 9/11).
std::vector<MicroserviceProfile> build_profiles() {
  std::vector<MicroserviceProfile> out;

  MicroserviceProfile a;
  a.name = "A";
  a.description = "In-Memory Storage (similar to MemCached)";
  a.request_fan = 4.0;
  a.cost_ms_per_request = 0.5;
  a.warm_latency_ms = 11.0;
  a.cold_latency_ms = 3.0;
  a.cold_decay_rps = 600.0;
  a.queue_gain = 40.0;
  a.process_base_cpu_pct = 2.0;
  a.background_cpu_pct = 1.0;
  a.background_cpu_noise_pct = 0.4;
  a.background_spike_pct = 12.0;  // hourly multi-GB log uploads (paper §II-A1)
  a.bytes_per_request = 2.5e3;
  a.packets_per_request = 4.0;
  a.knee_rps = 2150.0;    // cache-partition exhaustion knee
  a.knee_gain_ms = 250.0;
  a.target_rps_per_server_p95 = 1800.0;
  a.overprovision_factor = 1.20;
  a.latency_slo_ms = 20.3;
  out.push_back(a);

  MicroserviceProfile b;
  b.name = "B";
  b.description = "Modifies incoming requests such as spelling corrections.";
  b.request_fan = 1.0;
  b.cost_ms_per_request = 4.48;   // -> 0.028 %CPU per RPS (Fig. 8)
  b.warm_latency_ms = 30.3;
  b.cold_latency_ms = 7.0;
  b.cold_decay_rps = 150.0;
  b.queue_gain = 8.0;
  b.process_base_cpu_pct = 1.37;
  b.background_cpu_pct = 1.2;    // -> Fig. 8 intercept
  b.background_cpu_noise_pct = 0.25;
  b.bytes_per_request = 8e3;
  b.packets_per_request = 10.0;
  b.target_rps_per_server_p95 = 377.0;  // Table II original stage
  b.overprovision_factor = 1.50;
  b.latency_slo_ms = 32.8;
  out.push_back(b);

  MicroserviceProfile c;
  c.name = "C";
  c.description = "Orchestrates a workflow of stateless processing modules.";
  c.request_fan = 1.0;
  c.cost_ms_per_request = 7.5;
  c.warm_latency_ms = 38.0;
  c.cold_latency_ms = 12.0;
  c.cold_decay_rps = 60.0;
  c.queue_gain = 7.0;
  c.process_base_cpu_pct = 2.5;
  c.background_cpu_pct = 1.5;
  c.background_cpu_noise_pct = 0.5;
  c.bytes_per_request = 30e3;
  c.packets_per_request = 30.0;
  c.knee_rps = 180.0;     // orchestration fan-out limit
  c.knee_gain_ms = 531.0;
  c.target_rps_per_server_p95 = 160.0;
  c.overprovision_factor = 1.05;  // already run tight (Table IV: 4%)
  c.latency_slo_ms = 47.0;
  out.push_back(c);

  MicroserviceProfile d;
  d.name = "D";
  d.description = "Converts responses from data to formatted web pages.";
  d.request_fan = 1.0;
  d.cost_ms_per_request = 14.66;  // -> 0.0916 %CPU per RPS (Fig. 10)
  d.warm_latency_ms = 49.0;
  d.cold_latency_ms = 45.0;       // strong cache/JIT warm-up (Fig. 11 dip)
  d.cold_decay_rps = 30.0;
  d.queue_gain = 5.0;
  d.process_base_cpu_pct = 5.0;
  d.background_cpu_pct = 1.8;     // -> Fig. 10 intercept
  d.background_cpu_noise_pct = 0.6;
  d.bytes_per_request = 45e3;     // Fig. 2: ~18 MB/s at 400 RPS
  d.packets_per_request = 40.0;
  d.memory_pages_base = 2000.0;
  d.memory_pages_noise = 4000.0;
  d.target_rps_per_server_p95 = 77.7;  // Table III original stage
  d.overprovision_factor = 1.50;
  d.latency_slo_ms = 61.0;
  out.push_back(d);

  MicroserviceProfile e;
  e.name = "E";
  e.description =
      "Split-TCP proxy, CDN, load balancer, and authentication service "
      "(similar to Squid)";
  e.request_fan = 2.0;
  e.cost_ms_per_request = 1.0;
  e.warm_latency_ms = 6.0;
  e.cold_latency_ms = 1.5;
  e.cold_decay_rps = 400.0;
  e.queue_gain = 12.0;
  e.process_base_cpu_pct = 1.0;
  e.background_cpu_pct = 0.8;
  e.background_cpu_noise_pct = 0.2;
  e.bytes_per_request = 60e3;  // proxies the full response payload
  e.packets_per_request = 55.0;
  e.target_rps_per_server_p95 = 1200.0;
  e.overprovision_factor = 1.50;
  e.latency_slo_ms = 8.2;
  out.push_back(e);

  MicroserviceProfile f;
  f.name = "F";
  f.description = "In-Memory storage with custom processing logic.";
  f.request_fan = 1.5;
  f.cost_ms_per_request = 2.2;
  f.warm_latency_ms = 12.0;
  f.cold_latency_ms = 5.0;
  f.cold_decay_rps = 120.0;
  f.queue_gain = 15.0;
  f.process_base_cpu_pct = 1.8;
  f.background_cpu_pct = 1.0;
  f.background_cpu_noise_pct = 0.35;
  f.bytes_per_request = 5e3;
  f.packets_per_request = 6.0;
  f.target_rps_per_server_p95 = 600.0;
  f.overprovision_factor = 1.50;
  f.latency_slo_ms = 16.5;
  out.push_back(f);

  MicroserviceProfile g;
  g.name = "G";
  g.description =
      "High volume, low latency, metrics collection system used for "
      "automated operational decisions.";
  g.request_fan = 8.0;
  g.cost_ms_per_request = 0.6;
  g.warm_latency_ms = 4.0;
  g.cold_latency_ms = 0.8;
  g.cold_decay_rps = 800.0;
  g.queue_gain = 25.0;
  g.process_base_cpu_pct = 1.2;
  g.background_cpu_pct = 0.8;
  g.background_cpu_noise_pct = 0.25;
  g.bytes_per_request = 1.2e3;
  g.packets_per_request = 2.0;
  g.knee_rps = 4400.0;    // ingest-buffer saturation knee
  g.knee_gain_ms = 30.0;
  g.target_rps_per_server_p95 = 4000.0;
  g.overprovision_factor = 1.05;  // Table IV: only 5% savings
  g.latency_slo_ms = 5.5;
  out.push_back(g);

  // Pools H and I appear in the paper's figures (Fig. 15 availability,
  // Fig. 3 hardware-bimodal scatter) without Table I descriptions.
  MicroserviceProfile h;
  h.name = "H";
  h.description =
      "Auxiliary index-serving pool (appears in the paper's availability "
      "analysis, Fig. 15; not part of Table I).";
  h.request_fan = 1.0;
  h.cost_ms_per_request = 5.5;
  h.warm_latency_ms = 22.0;
  h.cold_latency_ms = 6.0;
  h.cold_decay_rps = 90.0;
  h.queue_gain = 9.0;
  h.process_base_cpu_pct = 2.0;
  h.background_cpu_pct = 1.2;
  h.background_cpu_noise_pct = 0.4;
  h.target_rps_per_server_p95 = 300.0;
  h.overprovision_factor = 1.30;
  h.latency_slo_ms = 30.0;
  out.push_back(h);

  MicroserviceProfile i;
  i.name = "I";
  i.description =
      "Document ranking pool with an in-flight hardware refresh (the "
      "bimodal CPU scatter of the paper's Fig. 3; not part of Table I).";
  i.request_fan = 1.0;
  i.cost_ms_per_request = 6.0;
  i.warm_latency_ms = 25.0;
  i.cold_latency_ms = 8.0;
  i.cold_decay_rps = 100.0;
  i.queue_gain = 8.0;
  i.process_base_cpu_pct = 1.5;
  i.background_cpu_pct = 1.0;
  i.background_cpu_noise_pct = 0.3;
  i.target_rps_per_server_p95 = 260.0;
  i.overprovision_factor = 1.40;
  i.latency_slo_ms = 35.0;
  out.push_back(i);

  return out;
}

}  // namespace

MicroserviceCatalog::MicroserviceCatalog() : profiles_(build_profiles()) {}

const MicroserviceProfile& MicroserviceCatalog::by_name(
    std::string_view name) const {
  const auto idx = index_of(name);
  if (!idx) {
    throw std::invalid_argument("MicroserviceCatalog: unknown service " +
                                std::string(name));
  }
  return profiles_[*idx];
}

const MicroserviceProfile& MicroserviceCatalog::by_index(std::size_t index) const {
  if (index >= profiles_.size()) {
    throw std::out_of_range("MicroserviceCatalog::by_index");
  }
  return profiles_[index];
}

std::optional<std::size_t> MicroserviceCatalog::index_of(
    std::string_view name) const {
  for (std::size_t i = 0; i < profiles_.size(); ++i) {
    if (profiles_[i].name == name) return i;
  }
  return std::nullopt;
}

}  // namespace headroom::sim
