#include "sim/worker_pool.h"

namespace headroom::sim {

WorkerPool::WorkerPool(std::size_t threads) {
  const std::size_t extra = threads > 1 ? threads - 1 : 0;
  workers_.reserve(extra);
  for (std::size_t i = 0; i < extra; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void WorkerPool::drain() {
  while (true) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= tasks_) return;
    try {
      (*job_)(i);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!error_) error_ = std::current_exception();
    }
  }
}

void WorkerPool::worker_loop() {
  std::uint64_t seen = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    drain();
    bool batch_done = false;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      batch_done = --working_ == 0;
    }
    if (batch_done) done_cv_.notify_one();
  }
}

void WorkerPool::run(std::size_t tasks,
                     const std::function<void(std::size_t)>& fn) {
  if (tasks == 0) return;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    tasks_ = tasks;
    next_.store(0, std::memory_order_relaxed);
    working_ = workers_.size();
    error_ = nullptr;
    ++generation_;
  }
  start_cv_.notify_all();
  drain();  // the caller is a lane too
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return working_ == 0; });
    job_ = nullptr;
    error = error_;
    error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace headroom::sim
